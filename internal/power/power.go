// Package power is SYnergy's vendor-neutral energy/frequency binding
// layer (§4): one interface over the vendor-specific management
// libraries, with NVML and ROCm SMI backends. The runtime (internal/core)
// programs against this interface only, which is what makes the approach
// portable across NVIDIA and AMD GPUs.
package power

import (
	"errors"
	"fmt"

	"synergy/internal/hw"
	"synergy/internal/nvml"
	"synergy/internal/rapl"
	"synergy/internal/rocmsmi"
)

// Manager exposes the frequency-scaling and energy-profiling
// capabilities of one device.
type Manager interface {
	// VendorName identifies the backend ("NVIDIA" or "AMD").
	VendorName() string
	// DeviceName is the board's marketing name.
	DeviceName() string
	// SupportedCoreFreqs lists the core frequencies in ascending MHz.
	SupportedCoreFreqs() []int
	// MemFreqMHz is the (fixed) memory frequency.
	MemFreqMHz() int
	// DefaultCoreFreq is the driver-default core clock, or 0 when the
	// device auto-scales.
	DefaultCoreFreq() int
	// SetCoreFreq pins the core clock.
	SetCoreFreq(mhz int) error
	// ResetCoreFreq restores the driver default (or auto).
	ResetCoreFreq() error
	// CurrentCoreFreq reports the pinned clock, or 0 in auto mode.
	CurrentCoreFreq() int
	// PowerUsage returns the current board power in watts (as of the
	// last telemetry sample).
	PowerUsage() float64
	// SampledEnergy integrates the sampled power trace over a virtual
	// time window (what an async polling thread would accumulate).
	SampledEnergy(t0, t1 float64) float64
	// DeviceNow returns the device's virtual time.
	DeviceNow() float64
	// SamplingPeriod returns the telemetry period in seconds.
	SamplingPeriod() float64
	// Sleep advances the device's virtual time by dt seconds of idle —
	// the wait a host-side retry/backoff loop spends between attempts.
	Sleep(dtSec float64)
}

// IsPermissionDenied reports whether a vendor-library error means the
// caller lacks the privilege to change device state — the condition the
// runtime degrades gracefully on (the job runs at default clocks)
// rather than retries.
func IsPermissionDenied(err error) bool {
	return errors.Is(err, nvml.ErrNoPermission) ||
		errors.Is(err, rocmsmi.ErrNoPermission) ||
		errors.Is(err, rapl.ErrNoPermission)
}

// IsTransient reports whether a vendor-library error is a transient
// condition worth retrying (driver/SMU timeouts under load).
func IsTransient(err error) bool {
	return errors.Is(err, nvml.ErrTimeout) || errors.Is(err, rocmsmi.ErrTimeout)
}

// NewManager builds the appropriate backend for the device, with the
// given caller identity for state-changing calls.
func NewManager(dev *hw.Device, userName string, root bool) (Manager, error) {
	switch dev.Spec().Vendor {
	case hw.NVIDIA:
		lib, err := nvml.New(dev)
		if err != nil {
			return nil, err
		}
		if err := lib.Init(); err != nil {
			return nil, err
		}
		h, err := lib.DeviceGetHandleByIndex(0)
		if err != nil {
			return nil, err
		}
		return &nvmlManager{dev: dev, lib: lib, h: h, user: nvml.User{Name: userName, Root: root}}, nil
	case hw.Intel:
		pkg, err := rapl.New(dev)
		if err != nil {
			return nil, err
		}
		if err := pkg.Init(); err != nil {
			return nil, err
		}
		return &raplManager{dev: dev, pkg: pkg, user: rapl.User{Name: userName, Root: root}}, nil
	case hw.AMD:
		lib, err := rocmsmi.New(dev)
		if err != nil {
			return nil, err
		}
		if err := lib.Init(); err != nil {
			return nil, err
		}
		h, err := lib.DeviceByIndex(0)
		if err != nil {
			return nil, err
		}
		return &smiManager{dev: dev, lib: lib, h: h, user: rocmsmi.User{Name: userName, Root: root}}, nil
	default:
		return nil, fmt.Errorf("power: no backend for vendor %v", dev.Spec().Vendor)
	}
}

// NewPrivilegedManager is a convenience for tests and single-node tools:
// a manager whose state-changing calls run as root (on a cluster this is
// what the nvgpufreq plugin's privilege window grants, §7).
func NewPrivilegedManager(dev *hw.Device) (Manager, error) {
	return NewManager(dev, "root", true)
}

type nvmlManager struct {
	dev  *hw.Device
	lib  *nvml.Library
	h    *nvml.Device
	user nvml.User
}

func (m *nvmlManager) VendorName() string { return hw.NVIDIA.String() }
func (m *nvmlManager) DeviceName() string { return m.dev.Spec().Name }

func (m *nvmlManager) SupportedCoreFreqs() []int {
	fs, err := m.h.GetSupportedGraphicsClocks(m.dev.Spec().MemFreqMHz)
	if err != nil {
		return nil
	}
	return fs
}

func (m *nvmlManager) MemFreqMHz() int      { return m.dev.Spec().MemFreqMHz }
func (m *nvmlManager) DefaultCoreFreq() int { return m.dev.Spec().DefaultCoreMHz }

func (m *nvmlManager) SetCoreFreq(mhz int) error {
	return m.h.SetApplicationsClocks(m.user, m.dev.Spec().MemFreqMHz, mhz)
}

func (m *nvmlManager) ResetCoreFreq() error {
	return m.h.ResetApplicationsClocks(m.user)
}

func (m *nvmlManager) CurrentCoreFreq() int { return m.dev.AppClockMHz() }

func (m *nvmlManager) PowerUsage() float64 {
	mw, err := m.h.GetPowerUsage()
	if err != nil {
		return 0
	}
	return float64(mw) / 1000
}

func (m *nvmlManager) SampledEnergy(t0, t1 float64) float64 {
	e, err := m.h.SampledEnergyBetween(t0, t1)
	if err != nil {
		return 0
	}
	return e
}

func (m *nvmlManager) Sleep(dtSec float64)     { m.dev.AdvanceIdle(dtSec) }
func (m *nvmlManager) DeviceNow() float64      { return m.dev.Now() }
func (m *nvmlManager) SamplingPeriod() float64 { return nvml.SamplingPeriodSec }

type smiManager struct {
	dev  *hw.Device
	lib  *rocmsmi.Library
	h    *rocmsmi.Device
	user rocmsmi.User
}

func (m *smiManager) VendorName() string { return hw.AMD.String() }
func (m *smiManager) DeviceName() string { return m.dev.Spec().Name }

func (m *smiManager) SupportedCoreFreqs() []int {
	fs, err := m.h.ClockLevels()
	if err != nil {
		return nil
	}
	return fs
}

func (m *smiManager) MemFreqMHz() int      { return m.dev.Spec().MemFreqMHz }
func (m *smiManager) DefaultCoreFreq() int { return m.dev.Spec().DefaultCoreMHz }

func (m *smiManager) SetCoreFreq(mhz int) error {
	spec := m.dev.Spec()
	for i, f := range spec.CoreFreqsMHz {
		if f == mhz {
			return m.h.SetClockLevel(m.user, i)
		}
	}
	return fmt.Errorf("power: %s does not support %d MHz", spec.Name, mhz)
}

func (m *smiManager) ResetCoreFreq() error {
	return m.h.SetPerfLevelAuto(m.user)
}

func (m *smiManager) CurrentCoreFreq() int { return m.dev.AppClockMHz() }

func (m *smiManager) PowerUsage() float64 {
	p, err := m.h.PowerWatts()
	if err != nil {
		return 0
	}
	return p
}

func (m *smiManager) SampledEnergy(t0, t1 float64) float64 {
	e, err := m.h.SampledEnergyBetween(t0, t1)
	if err != nil {
		return 0
	}
	return e
}

func (m *smiManager) Sleep(dtSec float64)     { m.dev.AdvanceIdle(dtSec) }
func (m *smiManager) DeviceNow() float64      { return m.dev.Now() }
func (m *smiManager) SamplingPeriod() float64 { return rocmsmi.SamplingPeriodSec }

type raplManager struct {
	dev  *hw.Device
	pkg  *rapl.Package
	user rapl.User
}

func (m *raplManager) VendorName() string { return hw.Intel.String() }
func (m *raplManager) DeviceName() string { return m.dev.Spec().Name }

func (m *raplManager) SupportedCoreFreqs() []int {
	spec := m.dev.Spec()
	out := make([]int, len(spec.CoreFreqsMHz))
	copy(out, spec.CoreFreqsMHz)
	return out
}

func (m *raplManager) MemFreqMHz() int      { return m.dev.Spec().MemFreqMHz }
func (m *raplManager) DefaultCoreFreq() int { return m.dev.Spec().DefaultCoreMHz }

func (m *raplManager) SetCoreFreq(mhz int) error {
	if gov, err := m.pkg.CurrentGovernor(); err != nil {
		return err
	} else if gov != rapl.GovernorUserspace {
		if err := m.pkg.SetGovernor(m.user, rapl.GovernorUserspace); err != nil {
			return err
		}
	}
	return m.pkg.SetFrequency(m.user, mhz)
}

func (m *raplManager) ResetCoreFreq() error {
	return m.pkg.SetGovernor(m.user, rapl.GovernorOndemand)
}

func (m *raplManager) CurrentCoreFreq() int { return m.dev.AppClockMHz() }

func (m *raplManager) PowerUsage() float64 {
	p, err := m.pkg.PowerWatts()
	if err != nil {
		return 0
	}
	return p
}

func (m *raplManager) SampledEnergy(t0, t1 float64) float64 {
	e, err := m.pkg.SampledEnergyBetween(t0, t1)
	if err != nil {
		return 0
	}
	return e
}

func (m *raplManager) Sleep(dtSec float64)     { m.dev.AdvanceIdle(dtSec) }
func (m *raplManager) DeviceNow() float64      { return m.dev.Now() }
func (m *raplManager) SamplingPeriod() float64 { return rapl.SamplingPeriodSec }
