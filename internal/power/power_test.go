package power

import (
	"testing"

	"synergy/internal/hw"
)

func TestManagerBackendsForBothVendors(t *testing.T) {
	t.Parallel()
	for _, spec := range []*hw.Spec{hw.V100(), hw.MI100(), hw.Xeon8160()} {
		dev := hw.NewDevice(spec)
		m, err := NewPrivilegedManager(dev)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if m.VendorName() != spec.Vendor.String() {
			t.Errorf("%s: vendor %q", spec.Name, m.VendorName())
		}
		if m.DeviceName() != spec.Name {
			t.Errorf("device name %q, want %q", m.DeviceName(), spec.Name)
		}
		if got := len(m.SupportedCoreFreqs()); got != len(spec.CoreFreqsMHz) {
			t.Errorf("%s: %d core freqs, want %d", spec.Name, got, len(spec.CoreFreqsMHz))
		}
		if m.MemFreqMHz() != spec.MemFreqMHz {
			t.Errorf("%s: mem freq %d", spec.Name, m.MemFreqMHz())
		}
		if m.DefaultCoreFreq() != spec.DefaultCoreMHz {
			t.Errorf("%s: default %d, want %d", spec.Name, m.DefaultCoreFreq(), spec.DefaultCoreMHz)
		}
	}
}

func TestSetAndResetCoreFreqAcrossVendors(t *testing.T) {
	t.Parallel()
	for _, spec := range []*hw.Spec{hw.V100(), hw.MI100(), hw.Xeon8160()} {
		dev := hw.NewDevice(spec)
		m, err := NewPrivilegedManager(dev)
		if err != nil {
			t.Fatal(err)
		}
		target := spec.CoreFreqsMHz[2]
		if err := m.SetCoreFreq(target); err != nil {
			t.Fatalf("%s: SetCoreFreq: %v", spec.Name, err)
		}
		if m.CurrentCoreFreq() != target {
			t.Fatalf("%s: current %d, want %d", spec.Name, m.CurrentCoreFreq(), target)
		}
		if err := m.ResetCoreFreq(); err != nil {
			t.Fatalf("%s: ResetCoreFreq: %v", spec.Name, err)
		}
		if m.CurrentCoreFreq() != spec.DefaultCoreMHz {
			t.Fatalf("%s: after reset %d, want %d", spec.Name, m.CurrentCoreFreq(), spec.DefaultCoreMHz)
		}
	}
}

func TestSetCoreFreqRejectsUnsupported(t *testing.T) {
	t.Parallel()
	for _, spec := range []*hw.Spec{hw.V100(), hw.MI100(), hw.Xeon8160()} {
		m, err := NewPrivilegedManager(hw.NewDevice(spec))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetCoreFreq(12345); err == nil {
			t.Fatalf("%s: unsupported frequency accepted", spec.Name)
		}
	}
}

func TestUnprivilegedManagerCannotScaleNVIDIA(t *testing.T) {
	t.Parallel()
	// On a production NVIDIA node without the plugin's privilege window,
	// a regular user cannot change clocks (the motivation for §7).
	dev := hw.NewDevice(hw.V100())
	m, err := NewManager(dev, "alice", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetCoreFreq(dev.Spec().MinCoreMHz()); err == nil {
		t.Fatal("unprivileged frequency scaling succeeded")
	}
}

func TestSampledEnergyMatchesDevice(t *testing.T) {
	t.Parallel()
	dev := hw.NewDevice(hw.V100())
	m, err := NewPrivilegedManager(dev)
	if err != nil {
		t.Fatal(err)
	}
	dev.AdvanceIdle(1.0)
	got := m.SampledEnergy(0, 1.0)
	want := dev.SampledEnergyBetween(0, 1.0, m.SamplingPeriod())
	if got != want {
		t.Fatalf("SampledEnergy = %v, want %v", got, want)
	}
	if m.DeviceNow() != dev.Now() {
		t.Fatalf("DeviceNow = %v, want %v", m.DeviceNow(), dev.Now())
	}
}

func TestSamplingPeriodsDifferByVendor(t *testing.T) {
	t.Parallel()
	nv, err := NewPrivilegedManager(hw.NewDevice(hw.V100()))
	if err != nil {
		t.Fatal(err)
	}
	amd, err := NewPrivilegedManager(hw.NewDevice(hw.MI100()))
	if err != nil {
		t.Fatal(err)
	}
	if nv.SamplingPeriod() <= amd.SamplingPeriod() {
		t.Fatalf("NVML period %v should be coarser than SMI %v",
			nv.SamplingPeriod(), amd.SamplingPeriod())
	}
}
