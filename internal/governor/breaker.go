package governor

import (
	"synergy/internal/power"
	"synergy/internal/resilience"
)

// ApplyFrequencyGuarded is ApplyFrequency behind a per-device circuit
// breaker. When the breaker is open the governor does not burn the
// retry budget at all: the call degrades immediately (the queue runs at
// current clocks and records the forfeited saving) with zero SetCoreFreq
// attempts and zero backoff. Otherwise the attempt sequence runs as
// usual and its outcome feeds the breaker — only an applied clock set
// counts as healthy; a denial (degraded) or an exhausted retry budget
// counts as a failure, so denial storms and flaky drivers both trip the
// breaker and stop consuming attempts while the device is unhealthy.
//
// Breaker time is the device's virtual clock (power.Manager.DeviceNow),
// so cool-downs elapse with simulated work, never wall time. A nil
// breaker makes this exactly ApplyFrequency.
func ApplyFrequencyGuarded(pm power.Manager, coreMHz int, pol RetryPolicy, br *resilience.Breaker) ApplyResult {
	return ApplyFrequencyMetered(pm, coreMHz, pol, br, nil, "")
}
