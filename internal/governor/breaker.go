package governor

import (
	"fmt"

	"synergy/internal/power"
	"synergy/internal/resilience"
)

// ApplyFrequencyGuarded is ApplyFrequency behind a per-device circuit
// breaker. When the breaker is open the governor does not burn the
// retry budget at all: the call degrades immediately (the queue runs at
// current clocks and records the forfeited saving) with zero SetCoreFreq
// attempts and zero backoff. Otherwise the attempt sequence runs as
// usual and its outcome feeds the breaker — only an applied clock set
// counts as healthy; a denial (degraded) or an exhausted retry budget
// counts as a failure, so denial storms and flaky drivers both trip the
// breaker and stop consuming attempts while the device is unhealthy.
//
// Breaker time is the device's virtual clock (power.Manager.DeviceNow),
// so cool-downs elapse with simulated work, never wall time. A nil
// breaker makes this exactly ApplyFrequency.
func ApplyFrequencyGuarded(pm power.Manager, coreMHz int, pol RetryPolicy, br *resilience.Breaker) ApplyResult {
	if br == nil {
		return ApplyFrequency(pm, coreMHz, pol)
	}
	if !br.Allow(pm.DeviceNow()) {
		return ApplyResult{
			Degraded: true,
			Err: fmt.Errorf("governor: pinning %d MHz skipped, device %q unhealthy: %w",
				coreMHz, br.Name(), resilience.ErrOpen),
		}
	}
	res := ApplyFrequency(pm, coreMHz, pol)
	now := pm.DeviceNow()
	if res.Applied {
		br.RecordSuccess(now)
	} else {
		br.RecordFailure(now)
	}
	return res
}
