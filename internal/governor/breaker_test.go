package governor

import (
	"errors"
	"testing"

	"synergy/internal/fault"
	"synergy/internal/nvml"
	"synergy/internal/resilience"
)

// TestGuardedNilBreakerIsPlainApply: a nil breaker delegates unchanged.
func TestGuardedNilBreakerIsPlainApply(t *testing.T) {
	t.Parallel()
	pm, dev := v100Manager(t, true)
	res := ApplyFrequencyGuarded(pm, dev.Spec().MinCoreMHz(), DefaultRetryPolicy(), nil)
	if !res.Applied || res.Err != nil {
		t.Fatalf("guarded apply = %+v, want applied", res)
	}
}

// TestGuardedBreakerTripsOnRepeatedFailures: every exhausted retry
// budget feeds the breaker; at the failure threshold it opens and the
// next call degrades with zero attempts and zero backoff.
func TestGuardedBreakerTripsOnRepeatedFailures(t *testing.T) {
	t.Parallel()
	pm, dev := v100Manager(t, true, fault.Rule{
		Site: nvml.SiteSetAppClocks, Err: nvml.ErrTimeout, // sticky flaky driver
	})
	cfg := resilience.Config{FailureThreshold: 3, CooldownSec: 100, HalfOpenSuccesses: 1}
	br := resilience.NewBreaker("gpu0", cfg)
	pol := DefaultRetryPolicy()
	for i := 0; i < cfg.FailureThreshold; i++ {
		res := ApplyFrequencyGuarded(pm, 877, pol, br)
		if res.Applied || res.Degraded {
			t.Fatalf("call %d: %+v, want terminal failure", i, res)
		}
		if res.Attempts != pol.MaxAttempts {
			t.Fatalf("call %d: attempts = %d, want %d", i, res.Attempts, pol.MaxAttempts)
		}
	}
	if br.Current() != resilience.Open {
		t.Fatalf("breaker %v after %d failures, want open", br.Current(), cfg.FailureThreshold)
	}
	before := dev.Now()
	calls := dev.FaultInjector().CallCount(nvml.SiteSetAppClocks + ":gpu0")
	res := ApplyFrequencyGuarded(pm, 877, pol, br)
	if !res.Degraded || !errors.Is(res.Err, resilience.ErrOpen) {
		t.Fatalf("open-breaker apply = %+v, want degraded with ErrOpen", res)
	}
	if res.Attempts != 0 || res.BackoffSec != 0 {
		t.Fatalf("open breaker burned attempts=%d backoff=%v", res.Attempts, res.BackoffSec)
	}
	if got := dev.FaultInjector().CallCount(nvml.SiteSetAppClocks + ":gpu0"); got != calls {
		t.Fatalf("open breaker still reached the vendor layer (%d -> %d calls)", calls, got)
	}
	if dev.Now() != before {
		t.Fatalf("open breaker advanced device time %v -> %v", before, dev.Now())
	}
}

// TestGuardedBreakerHalfOpenRecovery: after the virtual-time cool-down
// a probe call passes through; a successful probe closes the breaker.
func TestGuardedBreakerHalfOpenRecovery(t *testing.T) {
	t.Parallel()
	// Two transient storms of MaxAttempts each, then a healthy driver.
	pol := DefaultRetryPolicy()
	pm, dev := v100Manager(t, true, fault.Rule{
		Site: nvml.SiteSetAppClocks, Count: 2 * pol.MaxAttempts, Err: nvml.ErrTimeout,
	})
	cfg := resilience.Config{FailureThreshold: 2, CooldownSec: 0.25, HalfOpenSuccesses: 1}
	br := resilience.NewBreaker("gpu0", cfg)
	for i := 0; i < 2; i++ {
		if res := ApplyFrequencyGuarded(pm, 877, pol, br); res.Applied {
			t.Fatalf("call %d unexpectedly applied", i)
		}
	}
	if br.Current() != resilience.Open {
		t.Fatalf("breaker %v, want open", br.Current())
	}
	// Cool-down elapses in device virtual time only.
	dev.AdvanceIdle(cfg.CooldownSec)
	res := ApplyFrequencyGuarded(pm, dev.Spec().MinCoreMHz(), pol, br)
	if !res.Applied {
		t.Fatalf("probe after cool-down = %+v, want applied", res)
	}
	if br.Current() != resilience.Closed {
		t.Fatalf("breaker %v after successful probe, want closed", br.Current())
	}
	// The half-open and re-close transitions are on the record.
	tr := br.Transitions()
	if len(tr) != 3 {
		t.Fatalf("transitions = %d, want 3 (open, half-open, closed): %v", len(tr), tr)
	}
	if tr[1].To != resilience.HalfOpen || tr[2].To != resilience.Closed {
		t.Fatalf("unexpected transition sequence %v", tr)
	}
}

// TestGuardedDenialStormTripsBreaker: permission-denial storms count as
// vendor-layer failures, so the breaker stops hammering a device that
// keeps refusing clock sets.
func TestGuardedDenialStormTripsBreaker(t *testing.T) {
	t.Parallel()
	pm, _ := v100Manager(t, false) // unprivileged: every set is denied
	cfg := resilience.Config{FailureThreshold: 2, CooldownSec: 1000, HalfOpenSuccesses: 1}
	br := resilience.NewBreaker("gpu0", cfg)
	pol := DefaultRetryPolicy()
	for i := 0; i < 2; i++ {
		res := ApplyFrequencyGuarded(pm, 877, pol, br)
		if !res.Degraded {
			t.Fatalf("call %d: %+v, want degraded", i, res)
		}
	}
	if br.Current() != resilience.Open {
		t.Fatalf("breaker %v after denial storm, want open", br.Current())
	}
	res := ApplyFrequencyGuarded(pm, 877, pol, br)
	if !res.Degraded || !errors.Is(res.Err, resilience.ErrOpen) {
		t.Fatalf("post-storm apply = %+v, want short-circuited degradation", res)
	}
}
