package governor

import (
	"errors"
	"testing"

	"synergy/internal/fault"
	"synergy/internal/hw"
	"synergy/internal/nvml"
	"synergy/internal/power"
)

func v100Manager(t *testing.T, root bool, rules ...fault.Rule) (power.Manager, *hw.Device) {
	t.Helper()
	dev := hw.NewDevice(hw.V100())
	dev.SetLabel("gpu0")
	if len(rules) > 0 {
		dev.SetFaultInjector(fault.New(1, rules...))
	}
	var pm power.Manager
	var err error
	if root {
		pm, err = power.NewPrivilegedManager(dev)
	} else {
		pm, err = power.NewManager(dev, "alice", false)
	}
	if err != nil {
		t.Fatal(err)
	}
	return pm, dev
}

func TestApplyFrequencyConvergesAfterTransientFaults(t *testing.T) {
	t.Parallel()
	pm, dev := v100Manager(t, true, fault.Rule{
		Site: nvml.SiteSetAppClocks, Count: 2, Err: nvml.ErrTimeout,
	})
	want := dev.Spec().MinCoreMHz()
	t0 := dev.Now()
	res := ApplyFrequency(pm, want, DefaultRetryPolicy())
	if !res.Applied || res.Err != nil {
		t.Fatalf("ApplyFrequency = %+v, want applied", res)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two transients then success)", res.Attempts)
	}
	if dev.AppClockMHz() != want {
		t.Fatalf("clock at %d MHz, want %d", dev.AppClockMHz(), want)
	}
	// The backoff waits are charged to the device's virtual time.
	if got := dev.Now() - t0; got < res.BackoffSec {
		t.Fatalf("device advanced %v, want >= backoff %v", got, res.BackoffSec)
	}
	if res.BackoffSec <= 0 {
		t.Fatal("no backoff recorded across retries")
	}
}

func TestApplyFrequencyDegradesOnPermissionDenied(t *testing.T) {
	t.Parallel()
	pm, dev := v100Manager(t, false)
	res := ApplyFrequency(pm, dev.Spec().MinCoreMHz(), DefaultRetryPolicy())
	if !res.Degraded || res.Applied {
		t.Fatalf("ApplyFrequency = %+v, want degraded", res)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (denials are not retried)", res.Attempts)
	}
	if !power.IsPermissionDenied(res.Err) {
		t.Fatalf("res.Err = %v, want a permission denial", res.Err)
	}
}

func TestApplyFrequencyBoundedOnPersistentTransients(t *testing.T) {
	t.Parallel()
	pm, _ := v100Manager(t, true, fault.Rule{
		Site: nvml.SiteSetAppClocks, Err: nvml.ErrTimeout, // sticky
	})
	pol := DefaultRetryPolicy()
	res := ApplyFrequency(pm, 877, pol)
	if res.Applied || res.Degraded {
		t.Fatalf("ApplyFrequency = %+v, want terminal failure", res)
	}
	if res.Attempts != pol.MaxAttempts {
		t.Fatalf("attempts = %d, want the policy bound %d", res.Attempts, pol.MaxAttempts)
	}
	if !errors.Is(res.Err, nvml.ErrTimeout) {
		t.Fatalf("res.Err = %v, want wrapped ErrTimeout", res.Err)
	}
}

func TestApplyFrequencySurfacesUnknownErrorsImmediately(t *testing.T) {
	t.Parallel()
	boom := errors.New("firmware exploded")
	pm, _ := v100Manager(t, true, fault.Rule{
		Site: nvml.SiteSetAppClocks, Err: boom,
	})
	res := ApplyFrequency(pm, 877, DefaultRetryPolicy())
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (unknown errors are not retried)", res.Attempts)
	}
	if !errors.Is(res.Err, boom) {
		t.Fatalf("res.Err = %v, want wrapped cause", res.Err)
	}
}

func TestApplyFrequencyBackoffCap(t *testing.T) {
	t.Parallel()
	pm, _ := v100Manager(t, true, fault.Rule{
		Site: nvml.SiteSetAppClocks, Err: nvml.ErrTimeout,
	})
	pol := RetryPolicy{MaxAttempts: 6, InitialBackoffSec: 1, BackoffFactor: 10, MaxBackoffSec: 2}
	res := ApplyFrequency(pm, 877, pol)
	// Waits: 1, then capped at 2 for the remaining three gaps.
	want := 1.0 + 2 + 2 + 2 + 2
	if res.BackoffSec != want {
		t.Fatalf("backoff = %v, want %v (capped)", res.BackoffSec, want)
	}
}
