// Package governor implements an online DVFS controller: a model-free,
// compiler-free baseline that hill-climbs each kernel's frequency from
// run-time feedback. Dynamic tuning like this is the classic alternative
// to SYnergy's static per-kernel prediction (cf. Sourouri et al. in the
// paper's related work): it needs no training phase, but pays an
// exploration cost — it runs kernels at suboptimal frequencies until it
// converges, and must re-explore whenever behaviour shifts.
package governor

import (
	"fmt"
	"sync"

	"synergy/internal/hw"
	"synergy/internal/metrics"
)

// Governor tunes one frequency per kernel name by coordinate descent on
// the frequency table, scoring each launch with the configured target's
// objective.
type Governor struct {
	spec   *hw.Spec
	target metrics.Target
	// step is the initial index step on the frequency table.
	step int

	mu    sync.Mutex
	state map[string]*kernelState
}

type kernelState struct {
	idx      int     // current frequency-table index
	dir      int     // current search direction (+1 / -1)
	step     int     // current index step
	best     float64 // best score seen
	bestIdx  int
	lastIdx  int
	launches int
	settled  bool
}

// New creates a governor for the device, optimising the given target's
// objective (energy for ES-family, time for PL/MAX_PERF, products for
// EDP/ED2P).
func New(spec *hw.Spec, target metrics.Target) (*Governor, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	step := len(spec.CoreFreqsMHz) / 8
	if step < 1 {
		step = 1
	}
	return &Governor{
		spec:   spec,
		target: target,
		step:   step,
		state:  map[string]*kernelState{},
	}, nil
}

// Decide returns the frequency to use for the next launch of the kernel.
func (g *Governor) Decide(kernel string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.state[kernel]
	if !ok {
		// Start from the baseline configuration.
		st = &kernelState{
			idx:  g.indexOf(g.spec.BaselineCoreMHz()),
			dir:  -1, // energy optima lie below the default
			step: g.step,
			best: -1,
		}
		st.bestIdx = st.idx
		g.state[kernel] = st
	}
	st.lastIdx = st.idx
	return g.spec.CoreFreqsMHz[st.idx]
}

func (g *Governor) indexOf(mhz int) int {
	for i, f := range g.spec.CoreFreqsMHz {
		if f == mhz {
			return i
		}
	}
	return len(g.spec.CoreFreqsMHz) - 1
}

// Observe feeds back one completed launch at the frequency last returned
// by Decide. The governor scores it and moves its search state.
func (g *Governor) Observe(kernel string, timeSec, energyJ float64) error {
	if timeSec <= 0 || energyJ <= 0 {
		return fmt.Errorf("governor: non-positive measurement for %q", kernel)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.state[kernel]
	if !ok {
		return fmt.Errorf("governor: Observe(%q) without a prior Decide", kernel)
	}
	st.launches++
	score := metrics.ObjectiveValue(g.target, metrics.Point{TimeSec: timeSec, EnergyJ: energyJ})

	if st.best < 0 || score < st.best {
		// Improved: remember and keep moving in the same direction.
		st.best = score
		st.bestIdx = st.lastIdx
	} else if !st.settled {
		// Worse: return to the best point, reverse, and halve the step.
		st.idx = st.bestIdx
		st.dir = -st.dir
		st.step /= 2
		if st.step == 0 {
			st.settled = true
			return nil
		}
	}
	if st.settled {
		st.idx = st.bestIdx
		return nil
	}
	next := st.idx + st.dir*st.step
	if next < 0 {
		next = 0
	}
	if next >= len(g.spec.CoreFreqsMHz) {
		next = len(g.spec.CoreFreqsMHz) - 1
	}
	if next == st.idx {
		// Pinned against a table edge: reverse and shrink instead.
		st.dir = -st.dir
		st.step /= 2
		if st.step == 0 {
			st.settled = true
		}
		return nil
	}
	st.idx = next
	return nil
}

// Settled reports whether the kernel's search has converged.
func (g *Governor) Settled(kernel string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.state[kernel]
	return ok && st.settled
}

// Launches returns the number of observed launches for the kernel.
func (g *Governor) Launches(kernel string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.state[kernel]
	if !ok {
		return 0
	}
	return st.launches
}
