package governor

import (
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/model"
)

// drive runs the governor loop on one benchmark's ground truth until it
// settles (or maxIters), returning the settled frequency and the
// cumulative objective paid during exploration.
func drive(t *testing.T, spec *hw.Spec, benchName string, target metrics.Target, maxIters int, stopWhenSettled bool) (int, float64) {
	t.Helper()
	b, err := benchsuite.ByName(benchName)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := model.GroundTruthSweep(spec, b.Kernel, b.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(spec, target)
	if err != nil {
		t.Fatal(err)
	}
	cum := 0.0
	freq := 0
	for i := 0; i < maxIters; i++ {
		freq = g.Decide(benchName)
		p, ok := gt.PointAt(freq)
		if !ok {
			t.Fatalf("governor chose %d MHz, not in sweep", freq)
		}
		cum += metrics.ObjectiveValue(target, p)
		if err := g.Observe(benchName, p.TimeSec, p.EnergyJ); err != nil {
			t.Fatal(err)
		}
		if stopWhenSettled && g.Settled(benchName) {
			break
		}
	}
	return g.Decide(benchName), cum
}

func TestGovernorConvergesNearOptimum(t *testing.T) {
	spec := hw.V100()
	for _, name := range []string{"median", "matmul", "black_scholes"} {
		b, err := benchsuite.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		gt, err := model.GroundTruthSweep(spec, b.Kernel, b.CharItems)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := gt.Select(metrics.MinEDP)
		if err != nil {
			t.Fatal(err)
		}
		settled, _ := drive(t, spec, name, metrics.MinEDP, 200, true)
		p, ok := gt.PointAt(settled)
		if !ok {
			t.Fatalf("%s: settled at unknown frequency %d", name, settled)
		}
		optObj := metrics.ObjectiveValue(metrics.MinEDP, opt)
		gotObj := metrics.ObjectiveValue(metrics.MinEDP, p)
		if gotObj > optObj*1.10 {
			t.Errorf("%s: governor settled at %d MHz with EDP %.4g, optimum %d MHz gives %.4g",
				name, settled, gotObj, opt.FreqMHz, optObj)
		}
	}
}

func TestGovernorSettlesQuickly(t *testing.T) {
	spec := hw.V100()
	g, err := New(spec, metrics.MinEDP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchsuite.ByName("median")
	if err != nil {
		t.Fatal(err)
	}
	gt, err := model.GroundTruthSweep(spec, b.Kernel, b.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	iters := 0
	for ; iters < 300 && !g.Settled("median"); iters++ {
		f := g.Decide("median")
		p, _ := gt.PointAt(f)
		if err := g.Observe("median", p.TimeSec, p.EnergyJ); err != nil {
			t.Fatal(err)
		}
	}
	if !g.Settled("median") {
		t.Fatal("governor did not settle in 300 launches")
	}
	if iters > 60 {
		t.Errorf("governor needed %d launches to settle; expected a few dozen", iters)
	}
	if g.Launches("median") != iters {
		t.Errorf("launch count %d, want %d", g.Launches("median"), iters)
	}
}

// TestGovernorExplorationCostVsStaticPlan quantifies why the paper's
// static approach wins on short-lived workloads: during its exploration
// phase the governor pays more than a model-predicted static frequency
// would.
func TestGovernorExplorationCostVsStaticPlan(t *testing.T) {
	spec := hw.V100()
	b, err := benchsuite.ByName("matmul")
	if err != nil {
		t.Fatal(err)
	}
	gt, err := model.GroundTruthSweep(spec, b.Kernel, b.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := gt.Select(metrics.MinEDP)
	if err != nil {
		t.Fatal(err)
	}
	const launches = 40
	_, cumGovernor := drive(t, spec, "matmul", metrics.MinEDP, launches, false)
	cumStatic := float64(launches) * metrics.ObjectiveValue(metrics.MinEDP, opt)
	if cumGovernor <= cumStatic {
		t.Errorf("governor exploration was free (%.4g <= %.4g); expected a cost vs static optimum",
			cumGovernor, cumStatic)
	}
}

func TestGovernorTracksKernelsIndependently(t *testing.T) {
	spec := hw.V100()
	g, err := New(spec, metrics.MinEDP)
	if err != nil {
		t.Fatal(err)
	}
	fa := g.Decide("a")
	fb := g.Decide("b")
	if fa != fb {
		t.Fatalf("initial decisions differ: %d vs %d", fa, fb)
	}
	// Feed divergent feedback: "a" improves at lower frequencies, "b"
	// explodes — their states must not interfere.
	if err := g.Observe("a", 1.0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := g.Observe("b", 100.0, 100.0); err != nil {
		t.Fatal(err)
	}
	if g.Launches("a") != 1 || g.Launches("b") != 1 {
		t.Fatal("per-kernel launch counts wrong")
	}
}

func TestGovernorValidation(t *testing.T) {
	spec := hw.V100()
	if _, err := New(spec, metrics.Target{Kind: metrics.KindES, X: -1}); err == nil {
		t.Error("invalid target accepted")
	}
	g, err := New(spec, metrics.MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Observe("ghost", 1, 1); err == nil {
		t.Error("Observe without Decide accepted")
	}
	g.Decide("k")
	if err := g.Observe("k", -1, 1); err == nil {
		t.Error("negative time accepted")
	}
}

func TestGovernorDecisionsAlwaysSupported(t *testing.T) {
	spec := hw.MI100() // small table exercises the edges
	g, err := New(spec, metrics.MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	gt, err := model.GroundTruthSweep(spec, b.Kernel, b.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f := g.Decide("vec_add")
		if !spec.SupportsCoreFreq(f) {
			t.Fatalf("decision %d MHz unsupported", f)
		}
		p, _ := gt.PointAt(f)
		if err := g.Observe("vec_add", p.TimeSec, p.EnergyJ); err != nil {
			t.Fatal(err)
		}
	}
}
