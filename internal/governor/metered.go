package governor

import (
	"fmt"

	"synergy/internal/power"
	"synergy/internal/resilience"
	"synergy/internal/telemetry"
)

// ApplyFrequencyMetered is ApplyFrequencyGuarded with telemetry: the
// outcome of every clock-set attempt sequence is recorded against the
// device label. A nil registry makes this exactly ApplyFrequencyGuarded
// (every telemetry method is nil-safe), and a nil breaker disables the
// guard as usual.
//
// The emitted counters satisfy an exact identity the cross-validation
// suite asserts: attempts - retries = applied + denied + exhausted
// (each sequence that reaches the vendor library makes 1 + retries
// attempts and ends in exactly one of the three outcomes; breaker
// short-circuits make no attempts at all).
func ApplyFrequencyMetered(pm power.Manager, coreMHz int, pol RetryPolicy, br *resilience.Breaker, tel *telemetry.Registry, device string) ApplyResult {
	if br != nil && !br.Allow(pm.DeviceNow()) {
		tel.Counter("synergy_clock_set_short_circuits_total", "device", device).Inc()
		return ApplyResult{
			Degraded: true,
			Err: fmt.Errorf("governor: pinning %d MHz skipped, device %q unhealthy: %w",
				coreMHz, br.Name(), resilience.ErrOpen),
		}
	}
	res := ApplyFrequency(pm, coreMHz, pol)
	if br != nil {
		now := pm.DeviceNow()
		if res.Applied {
			br.RecordSuccess(now)
		} else {
			br.RecordFailure(now)
		}
	}
	tel.Counter("synergy_clock_set_attempts_total", "device", device).Add(int64(res.Attempts))
	if res.Attempts > 1 {
		tel.Counter("synergy_clock_set_retries_total", "device", device).Add(int64(res.Attempts - 1))
	}
	switch {
	case res.Applied:
		tel.Counter("synergy_clock_sets_applied_total", "device", device).Inc()
	case res.Degraded:
		tel.Counter("synergy_clock_sets_denied_total", "device", device).Inc()
	default:
		tel.Counter("synergy_clock_sets_exhausted_total", "device", device).Inc()
	}
	if res.BackoffSec > 0 {
		tel.Histogram("synergy_clock_set_backoff_seconds", telemetry.TimeBuckets, "device", device).
			ObserveAt(res.BackoffSec, pm.DeviceNow())
	}
	return res
}
