package governor

import (
	"fmt"

	"synergy/internal/power"
)

// RetryPolicy bounds the clock-set retry loop used when a vendor
// library rejects a frequency change transiently (driver timeouts under
// load). Backoff waits are virtual device time, charged through
// power.Manager.Sleep.
type RetryPolicy struct {
	// MaxAttempts is the total number of SetCoreFreq attempts (>= 1).
	MaxAttempts int
	// InitialBackoffSec is the wait after the first failed attempt.
	InitialBackoffSec float64
	// BackoffFactor multiplies the wait after each further failure.
	BackoffFactor float64
	// MaxBackoffSec caps a single wait.
	MaxBackoffSec float64
}

// DefaultRetryPolicy mirrors a production DVFS daemon: a handful of
// quick retries, exponential backoff from 1 ms, capped well below a
// kernel duration so a flaky driver cannot stall the queue.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:       4,
		InitialBackoffSec: 1e-3,
		BackoffFactor:     2,
		MaxBackoffSec:     10e-3,
	}
}

// ApplyResult reports how a frequency-change attempt sequence ended.
type ApplyResult struct {
	// Applied: the requested frequency is now pinned.
	Applied bool
	// Degraded: the vendor layer denied permission; the caller should
	// proceed at current clocks (energy saving forfeited) and record the
	// degradation.
	Degraded bool
	// Attempts counts SetCoreFreq calls made.
	Attempts int
	// BackoffSec is the total virtual time spent waiting between
	// attempts.
	BackoffSec float64
	// Err is the terminal error when the sequence neither applied nor
	// degraded (retry budget exhausted on transient errors, or a
	// non-retryable failure).
	Err error
}

// ApplyFrequency pins the core clock with bounded retry-with-backoff:
// transient errors (power.IsTransient) are retried up to
// pol.MaxAttempts with exponentially growing virtual-time backoff;
// permission denials (power.IsPermissionDenied) degrade immediately —
// the caller keeps running at current clocks; any other error is
// returned after the first attempt. The sequence therefore always
// converges, degrades or fails within pol.MaxAttempts calls.
func ApplyFrequency(pm power.Manager, coreMHz int, pol RetryPolicy) ApplyResult {
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	res := ApplyResult{}
	wait := pol.InitialBackoffSec
	for {
		res.Attempts++
		err := pm.SetCoreFreq(coreMHz)
		if err == nil {
			res.Applied = true
			return res
		}
		if power.IsPermissionDenied(err) {
			res.Degraded = true
			res.Err = err
			return res
		}
		if !power.IsTransient(err) || res.Attempts >= pol.MaxAttempts {
			res.Err = fmt.Errorf("governor: pinning %d MHz failed after %d attempt(s): %w",
				coreMHz, res.Attempts, err)
			return res
		}
		if wait > pol.MaxBackoffSec && pol.MaxBackoffSec > 0 {
			wait = pol.MaxBackoffSec
		}
		if wait > 0 {
			pm.Sleep(wait)
			res.BackoffSec += wait
		}
		wait *= pol.BackoffFactor
	}
}
