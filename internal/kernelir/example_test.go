package kernelir_test

import (
	"fmt"

	"synergy/internal/kernelir"
)

// ExampleBuilder writes a small kernel with the fluent builder, runs it
// through the interpreter and prints the result.
func ExampleBuilder() {
	b := kernelir.NewBuilder("axpy")
	x := b.BufferF32("x", kernelir.Read)
	y := b.BufferF32("y", kernelir.ReadWrite)
	a := b.ScalarF("a")
	gid := b.GlobalID()
	b.StoreF(y, gid, b.AddF(b.MulF(a, b.LoadF(x, gid)), b.LoadF(y, gid)))
	kernel := b.MustBuild()

	xs := []float32{1, 2, 3, 4}
	ys := []float32{10, 10, 10, 10}
	err := kernelir.Execute(kernel, kernelir.Args{
		F32:     map[string][]float32{"x": xs, "y": ys},
		ScalarF: map[string]float64{"a": 2},
	}, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println(ys)
	// Output: [12 14 16 18]
}

// ExampleKernel_Disassemble inspects a kernel as pseudo-assembly — the
// program the feature-extraction pass analyses.
func ExampleKernel_Disassemble() {
	b := kernelir.NewBuilder("double")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	two := b.ConstF(2)
	b.StoreF(out, gid, b.MulF(two, b.LoadF(in, gid)))
	fmt.Print(b.MustBuild().Disassemble())
	// Output:
	// kernel double(read f32[in], write f32[out]) {
	//   i0 = gid
	//   f0 = const.f 2
	//   f1 = ld.g.f in[i0]
	//   f2 = mul.f f0, f1
	//   st.g.f out[i0], f2
	// }
}
