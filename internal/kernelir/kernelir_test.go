package kernelir

import (
	"math"
	"testing"
)

// buildSaxpy builds z = a*x + y.
func buildSaxpy(t *testing.T) *Kernel {
	t.Helper()
	b := NewBuilder("saxpy")
	x := b.BufferF32("x", Read)
	y := b.BufferF32("y", Read)
	z := b.BufferF32("z", Write)
	a := b.ScalarF("a")
	gid := b.GlobalID()
	xv := b.LoadF(x, gid)
	yv := b.LoadF(y, gid)
	prod := b.MulF(a, xv)
	sum := b.AddF(prod, yv)
	b.StoreF(z, gid, sum)
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSaxpyExecution(t *testing.T) {
	t.Parallel()
	k := buildSaxpy(t)
	n := 1000
	x := make([]float32, n)
	y := make([]float32, n)
	z := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(2 * i)
	}
	args := Args{
		F32:     map[string][]float32{"x": x, "y": y, "z": z},
		ScalarF: map[string]float64{"a": 3},
	}
	if err := Execute(k, args, n); err != nil {
		t.Fatal(err)
	}
	for i := range z {
		want := float32(3*i + 2*i)
		if z[i] != want {
			t.Fatalf("z[%d] = %v, want %v", i, z[i], want)
		}
	}
}

func TestRepeatAccumulation(t *testing.T) {
	t.Parallel()
	// out[gid] = sum over 16 iterations of in[gid] (i.e., 16*in[gid]).
	b := NewBuilder("acc")
	in := b.BufferF32("in", Read)
	out := b.BufferF32("out", Write)
	gid := b.GlobalID()
	acc := b.ConstF(0)
	b.Repeat(16, func() {
		v := b.LoadF(in, gid)
		s := b.AddF(acc, v)
		b.MoveF(acc, s)
	})
	b.StoreF(out, gid, acc)
	k := b.MustBuild()

	n := 64
	inBuf := make([]float32, n)
	outBuf := make([]float32, n)
	for i := range inBuf {
		inBuf[i] = float32(i) * 0.5
	}
	if err := Execute(k, Args{F32: map[string][]float32{"in": inBuf, "out": outBuf}}, n); err != nil {
		t.Fatal(err)
	}
	for i := range outBuf {
		if want := 16 * inBuf[i]; outBuf[i] != want {
			t.Fatalf("out[%d] = %v, want %v", i, outBuf[i], want)
		}
	}
}

func TestNestedRepeat(t *testing.T) {
	t.Parallel()
	// out[gid] = 3*4 = 12 increments of 1.
	b := NewBuilder("nested")
	out := b.BufferF32("out", Write)
	gid := b.GlobalID()
	one := b.ConstF(1)
	acc := b.ConstF(0)
	b.Repeat(3, func() {
		b.Repeat(4, func() {
			s := b.AddF(acc, one)
			b.MoveF(acc, s)
		})
	})
	b.StoreF(out, gid, acc)
	k := b.MustBuild()

	outBuf := make([]float32, 8)
	if err := Execute(k, Args{F32: map[string][]float32{"out": outBuf}}, len(outBuf)); err != nil {
		t.Fatal(err)
	}
	for i, v := range outBuf {
		if v != 12 {
			t.Fatalf("out[%d] = %v, want 12", i, v)
		}
	}
}

func TestIndexClamping(t *testing.T) {
	t.Parallel()
	// Stencil-style load at gid-1 must clamp at the left edge.
	b := NewBuilder("clamp")
	in := b.BufferF32("in", Read)
	out := b.BufferF32("out", Write)
	gid := b.GlobalID()
	one := b.ConstI(1)
	left := b.SubI(gid, one)
	v := b.LoadF(in, left)
	b.StoreF(out, gid, v)
	k := b.MustBuild()

	inBuf := []float32{10, 20, 30, 40}
	outBuf := make([]float32, 4)
	if err := Execute(k, Args{F32: map[string][]float32{"in": inBuf, "out": outBuf}}, 4); err != nil {
		t.Fatal(err)
	}
	want := []float32{10, 10, 20, 30}
	for i := range want {
		if outBuf[i] != want[i] {
			t.Fatalf("out = %v, want %v", outBuf, want)
		}
	}
}

func TestIntOpsSemantics(t *testing.T) {
	t.Parallel()
	// Each case computes one op over scalar params and stores to out[0].
	cases := []struct {
		name string
		op   func(b *Builder, x, y IntReg) IntReg
		x, y int64
		want int32
	}{
		{"add", (*Builder).AddI, 5, 3, 8},
		{"sub", (*Builder).SubI, 5, 3, 2},
		{"mul", (*Builder).MulI, 5, 3, 15},
		{"div", (*Builder).DivI, 17, 5, 3},
		{"div0", (*Builder).DivI, 17, 0, 0},
		{"rem", (*Builder).RemI, 17, 5, 2},
		{"rem0", (*Builder).RemI, 17, 0, 0},
		{"min", (*Builder).MinI, 5, 3, 3},
		{"max", (*Builder).MaxI, 5, 3, 5},
		{"and", (*Builder).AndI, 12, 10, 8},
		{"or", (*Builder).OrI, 12, 10, 14},
		{"xor", (*Builder).XorI, 12, 10, 6},
		{"shl", (*Builder).ShlI, 3, 2, 12},
		{"shr", (*Builder).ShrI, 12, 2, 3},
		{"cmplt", (*Builder).CmpLTI, 3, 5, 1},
		{"cmpeq", (*Builder).CmpEQI, 5, 5, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder(c.name)
			out := b.BufferI32("out", Write)
			x := b.ScalarI("x")
			y := b.ScalarI("y")
			zero := b.ConstI(0)
			r := c.op(b, x, y)
			b.StoreI(out, zero, r)
			k := b.MustBuild()
			outBuf := make([]int32, 1)
			args := Args{
				I32:     map[string][]int32{"out": outBuf},
				ScalarI: map[string]int64{"x": c.x, "y": c.y},
			}
			if err := Execute(k, args, 1); err != nil {
				t.Fatal(err)
			}
			if outBuf[0] != c.want {
				t.Fatalf("%s(%d, %d) = %d, want %d", c.name, c.x, c.y, outBuf[0], c.want)
			}
		})
	}
}

func TestSelectAndCompareFloat(t *testing.T) {
	t.Parallel()
	// out[gid] = in[gid] < 0 ? -in[gid] : in[gid]  (abs via select)
	b := NewBuilder("selabs")
	in := b.BufferF32("in", Read)
	out := b.BufferF32("out", Write)
	gid := b.GlobalID()
	v := b.LoadF(in, gid)
	zero := b.ConstF(0)
	neg := b.NegF(v)
	isNeg := b.CmpLTF(v, zero)
	r := b.SelF(isNeg, neg, v)
	b.StoreF(out, gid, r)
	k := b.MustBuild()

	inBuf := []float32{-2, 3, -0.5, 0}
	outBuf := make([]float32, 4)
	if err := Execute(k, Args{F32: map[string][]float32{"in": inBuf, "out": outBuf}}, 4); err != nil {
		t.Fatal(err)
	}
	for i, v := range inBuf {
		want := float32(math.Abs(float64(v)))
		if outBuf[i] != want {
			t.Fatalf("out[%d] = %v, want %v", i, outBuf[i], want)
		}
	}
}

func TestSpecialFunctions(t *testing.T) {
	t.Parallel()
	b := NewBuilder("sf")
	out := b.BufferF32("out", Write)
	x := b.ScalarF("x")
	i0 := b.ConstI(0)
	i1 := b.ConstI(1)
	i2 := b.ConstI(2)
	i3 := b.ConstI(3)
	b.StoreF(out, i0, b.SqrtF(x))
	b.StoreF(out, i1, b.ExpF(x))
	b.StoreF(out, i2, b.SinF(x))
	b.StoreF(out, i3, b.ErfF(x))
	k := b.MustBuild()
	outBuf := make([]float32, 4)
	args := Args{F32: map[string][]float32{"out": outBuf}, ScalarF: map[string]float64{"x": 0.7}}
	if err := Execute(k, args, 1); err != nil {
		t.Fatal(err)
	}
	want := []float64{math.Sqrt(0.7), math.Exp(0.7), math.Sin(0.7), math.Erf(0.7)}
	for i := range want {
		if math.Abs(float64(outBuf[i])-want[i]) > 1e-6 {
			t.Fatalf("sf[%d] = %v, want %v", i, outBuf[i], want[i])
		}
	}
}

func TestLocalMemory(t *testing.T) {
	t.Parallel()
	// Write gid to local[0], read it back, store to out.
	b := NewBuilder("local")
	out := b.BufferF32("out", Write)
	b.Local(4)
	gid := b.GlobalID()
	zero := b.ConstI(0)
	gf := b.IntToFloat(gid)
	b.StoreLocal(zero, gf)
	v := b.LoadLocal(zero)
	b.StoreF(out, gid, v)
	k := b.MustBuild()
	outBuf := make([]float32, 16)
	if err := Execute(k, Args{F32: map[string][]float32{"out": outBuf}}, 16); err != nil {
		t.Fatal(err)
	}
	for i, v := range outBuf {
		if v != float32(i) {
			t.Fatalf("out[%d] = %v (local memory not per-work-item?)", i, v)
		}
	}
}

func TestValidateRejectsStoreToReadOnly(t *testing.T) {
	t.Parallel()
	k := &Kernel{
		Name:         "bad",
		Params:       []Param{{Name: "in", IsBuffer: true, Type: F32, Access: Read}},
		Body:         []Instr{{Op: OpStoreGF, A: 0, B: 0, Buf: 0}},
		NumIntRegs:   1,
		NumFloatRegs: 1,
	}
	if err := k.Validate(); err == nil {
		t.Fatal("store to read-only buffer accepted")
	}
}

func TestValidateRejectsLoadFromWriteOnly(t *testing.T) {
	t.Parallel()
	k := &Kernel{
		Name:         "bad",
		Params:       []Param{{Name: "out", IsBuffer: true, Type: F32, Access: Write}},
		Body:         []Instr{{Op: OpLoadGF, Dst: 0, A: 0, Buf: 0}},
		NumIntRegs:   1,
		NumFloatRegs: 1,
	}
	if err := k.Validate(); err == nil {
		t.Fatal("load from write-only buffer accepted")
	}
}

func TestValidateRejectsRegisterOutOfRange(t *testing.T) {
	t.Parallel()
	k := &Kernel{
		Name:         "bad",
		Body:         []Instr{{Op: OpAddI, Dst: 5, A: 0, B: 0}},
		NumIntRegs:   2,
		NumFloatRegs: 0,
	}
	if err := k.Validate(); err == nil {
		t.Fatal("out-of-range register accepted")
	}
}

func TestValidateRejectsUnbalancedRepeat(t *testing.T) {
	t.Parallel()
	k := &Kernel{Name: "bad", Body: []Instr{{Op: OpRepeatBegin, Imm: 2}}}
	if err := k.Validate(); err == nil {
		t.Fatal("unclosed repeat accepted")
	}
	k = &Kernel{Name: "bad", Body: []Instr{{Op: OpRepeatEnd}}}
	if err := k.Validate(); err == nil {
		t.Fatal("unmatched repeat end accepted")
	}
}

func TestValidateRejectsNonIntegerTripCount(t *testing.T) {
	t.Parallel()
	k := &Kernel{Name: "bad", Body: []Instr{{Op: OpRepeatBegin, Imm: 2.5}, {Op: OpRepeatEnd}}}
	if err := k.Validate(); err == nil {
		t.Fatal("fractional trip count accepted")
	}
}

func TestValidateRejectsLocalAccessWithoutLocal(t *testing.T) {
	t.Parallel()
	k := &Kernel{
		Name:         "bad",
		Body:         []Instr{{Op: OpLoadLF, Dst: 0, A: 0}},
		NumIntRegs:   1,
		NumFloatRegs: 1,
	}
	if err := k.Validate(); err == nil {
		t.Fatal("local access without declared local memory accepted")
	}
}

func TestExecuteMissingArguments(t *testing.T) {
	t.Parallel()
	k := buildSaxpy(t)
	err := Execute(k, Args{F32: map[string][]float32{"x": {1}, "y": {1}}}, 1)
	if err == nil {
		t.Fatal("missing buffer accepted")
	}
	err = Execute(k, Args{F32: map[string][]float32{"x": {1}, "y": {1}, "z": {0}}}, 1)
	if err == nil {
		t.Fatal("missing scalar accepted")
	}
}

func TestExecuteRejectsNonPositiveItems(t *testing.T) {
	t.Parallel()
	k := buildSaxpy(t)
	args := Args{
		F32:     map[string][]float32{"x": {1}, "y": {1}, "z": {0}},
		ScalarF: map[string]float64{"a": 1},
	}
	if err := Execute(k, args, 0); err == nil {
		t.Fatal("zero items accepted")
	}
}

func TestBuilderReuseAfterBuildPanics(t *testing.T) {
	t.Parallel()
	b := NewBuilder("k")
	out := b.BufferF32("out", Write)
	gid := b.GlobalID()
	v := b.ConstF(1)
	b.StoreF(out, gid, v)
	b.MustBuild()
	defer func() {
		if recover() == nil {
			t.Fatal("builder reuse did not panic")
		}
	}()
	b.ConstF(2)
}

func TestParamIndex(t *testing.T) {
	t.Parallel()
	k := buildSaxpy(t)
	if i, ok := k.ParamIndex("y"); !ok || i != 1 {
		t.Fatalf("ParamIndex(y) = %d, %v", i, ok)
	}
	if _, ok := k.ParamIndex("nope"); ok {
		t.Fatal("ParamIndex found a non-existent parameter")
	}
}

func TestExecuteParallelDeterminism(t *testing.T) {
	t.Parallel()
	k := buildSaxpy(t)
	n := 1 << 14
	run := func() []float32 {
		x := make([]float32, n)
		y := make([]float32, n)
		z := make([]float32, n)
		for i := range x {
			x[i] = float32(i % 97)
			y[i] = float32(i % 13)
		}
		args := Args{
			F32:     map[string][]float32{"x": x, "y": y, "z": z},
			ScalarF: map[string]float64{"a": 1.5},
		}
		if err := Execute(k, args, n); err != nil {
			t.Fatal(err)
		}
		return z
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic result at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExecuteGrid2D(t *testing.T) {
	t.Parallel()
	// out[y*nx+x] = 100*y + x, via GlobalID2 (no div/rem index math).
	b := NewBuilder("grid2d")
	out := b.BufferF32("out", Write)
	gid := b.GlobalID()
	x, y := b.GlobalID2()
	v := b.AddF(b.MulF(b.IntToFloat(y), b.ConstF(100)), b.IntToFloat(x))
	b.StoreF(out, gid, v)
	k := b.MustBuild()

	const nx, ny = 8, 5
	buf := make([]float32, nx*ny)
	if err := ExecuteGrid(k, Args{F32: map[string][]float32{"out": buf}}, nx*ny, nx); err != nil {
		t.Fatal(err)
	}
	for yy := 0; yy < ny; yy++ {
		for xx := 0; xx < nx; xx++ {
			if got, want := buf[yy*nx+xx], float32(100*yy+xx); got != want {
				t.Fatalf("out[%d,%d] = %v, want %v", yy, xx, got, want)
			}
		}
	}
}

func TestGlobalID2Degenerates1D(t *testing.T) {
	t.Parallel()
	b := NewBuilder("deg")
	out := b.BufferF32("out", Write)
	gid := b.GlobalID()
	x, y := b.GlobalID2()
	v := b.AddF(b.IntToFloat(x), b.MulF(b.IntToFloat(y), b.ConstF(1000)))
	b.StoreF(out, gid, v)
	k := b.MustBuild()
	buf := make([]float32, 6)
	if err := Execute(k, Args{F32: map[string][]float32{"out": buf}}, 6); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != float32(i) {
			t.Fatalf("1-D launch: out[%d] = %v, want %d (y must be 0)", i, v, i)
		}
	}
}

func TestGlobalID2IsFreeInFeatures(t *testing.T) {
	t.Parallel()
	// 2-D indexing costs no feature counts (unlike div/rem decomposition)
	// — verified indirectly: the kernel above has only the store counted.
	b := NewBuilder("free2d")
	out := b.BufferF32("out", Write)
	gid := b.GlobalID()
	x, _ := b.GlobalID2()
	b.StoreF(out, gid, b.IntToFloat(x))
	k := b.MustBuild()
	if got := len(k.Body); got != 5 {
		t.Fatalf("unexpected body length %d", got)
	}
}
