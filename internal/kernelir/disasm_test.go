package kernelir

import (
	"strings"
	"testing"
)

func TestDisassembleContainsStructure(t *testing.T) {
	t.Parallel()
	b := NewBuilder("demo")
	in := b.BufferF32("in", Read)
	out := b.BufferF32("out", Write)
	n := b.ScalarI("n")
	b.Local(8)
	b.TrafficFactor(0.5)
	gid := b.GlobalID()
	acc := b.CopyF(b.ConstF(0))
	b.Repeat(4, func() {
		v := b.LoadF(in, gid)
		b.MoveF(acc, b.AddF(acc, v))
	})
	idx := b.MinI(gid, n)
	b.StoreF(out, idx, acc)
	k := b.MustBuild()

	asm := k.Disassemble()
	for _, want := range []string{
		"kernel demo(",
		"read f32[in]",
		"write f32[out]",
		"i32 n",
		"traffic=0.50",
		"local f32[8]",
		"repeat 4 {",
		"ld.g.f in[",
		"add.f",
		"min.i",
		"st.g.f out[",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
	// Balanced braces.
	if strings.Count(asm, "{") != strings.Count(asm, "}") {
		t.Errorf("unbalanced braces:\n%s", asm)
	}
}

func TestDisassembleAllOpsRenderable(t *testing.T) {
	t.Parallel()
	// Every opcode must have a mnemonic; exercising a kernel with broad
	// coverage guards the opNames table.
	b := NewBuilder("wide")
	fb := b.BufferF32("f", ReadWrite)
	ib := b.BufferI32("i", ReadWrite)
	b.Local(2)
	gid := b.GlobalID()
	c := b.ConstI(3)
	x := b.AddI(gid, c)
	x = b.SubI(x, c)
	x = b.MulI(x, c)
	x = b.DivI(x, c)
	x = b.RemI(x, c)
	x = b.AndI(x, c)
	x = b.OrI(x, c)
	x = b.XorI(x, c)
	x = b.ShlI(x, c)
	x = b.ShrI(x, c)
	x = b.MinI(x, c)
	x = b.MaxI(x, c)
	cmp := b.CmpLTI(x, c)
	eq := b.CmpEQI(x, c)
	x = b.SelI(cmp, x, eq)
	f := b.LoadF(fb, gid)
	f = b.AddF(f, f)
	f = b.SubF(f, f)
	f = b.MulF(f, f)
	g := b.ConstF(2)
	f = b.DivF(f, g)
	f = b.MinF(f, g)
	f = b.MaxF(f, g)
	f = b.AbsF(f)
	f = b.NegF(f)
	fcmp := b.CmpLTF(f, g)
	f = b.SelF(fcmp, f, g)
	f = b.SqrtF(b.AbsF(f))
	f = b.ExpF(b.MinF(f, g))
	f = b.LogF(b.MaxF(f, b.ConstF(1)))
	f = b.SinF(f)
	f = b.CosF(f)
	f = b.PowF(b.AbsF(f), g)
	f = b.ErfF(f)
	f = b.AddF(f, b.IntToFloat(x))
	y := b.FloatToInt(f)
	b.StoreLocal(b.ConstI(0), f)
	f2 := b.LoadLocal(b.ConstI(1))
	b.StoreF(fb, gid, b.AddF(f, f2))
	iv := b.LoadI(ib, gid)
	b.StoreI(ib, gid, b.AddI(iv, y))
	k := b.MustBuild()

	asm := k.Disassemble()
	if strings.Contains(asm, "op(") {
		t.Fatalf("disassembly contains unnamed opcode:\n%s", asm)
	}
}
