package kernelir

import (
	"testing"
)

// FuzzValidateAndExecute feeds arbitrary instruction streams through the
// validator and — when a stream validates — through the interpreter. The
// invariant: Validate never panics, and any kernel it accepts executes
// without panicking (total interpreter).
func FuzzValidateAndExecute(f *testing.F) {
	// Seed with a plausible encoded program and some junk.
	f.Add([]byte{byte(OpGlobalID), 0, 0, 0, 0, byte(OpConstF), 1, 0, 0, 3,
		byte(OpStoreGF), 0, 0, 1, 0})
	f.Add([]byte{byte(OpRepeatBegin), 0, 0, 0, 4, byte(OpAddI), 0, 0, 0, 0,
		byte(OpRepeatEnd), 0, 0, 0, 0})
	f.Add([]byte{255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		const numRegs = 4
		k := &Kernel{
			Name: "fuzz",
			Params: []Param{
				{Name: "f", IsBuffer: true, Type: F32, Access: ReadWrite},
				{Name: "i", IsBuffer: true, Type: I32, Access: ReadWrite},
				{Name: "s", Type: F32},
			},
			NumIntRegs:   numRegs,
			NumFloatRegs: numRegs,
			LocalF32:     2,
		}
		for i := 0; i+5 <= len(data) && len(k.Body) < 64; i += 5 {
			in := Instr{
				Op:  Op(int(data[i]) % int(opCount)),
				Dst: int(data[i+1]) % (numRegs + 2), // may exceed range
				A:   int(data[i+2]) % (numRegs + 2),
				B:   int(data[i+3]) % (numRegs + 2),
				C:   int(data[i+3]) % (numRegs + 2),
				Imm: float64(data[i+4]%8) + 1,
				Buf: int(data[i+4]) % 4, // may exceed params
			}
			k.Body = append(k.Body, in)
		}
		if err := k.Validate(); err != nil {
			return // rejected streams are fine; no panic happened
		}
		args := Args{
			F32:     map[string][]float32{"f": make([]float32, 8)},
			I32:     map[string][]int32{"i": make([]int32, 8)},
			ScalarF: map[string]float64{"s": 1.5},
		}
		if err := Execute(k, args, 4); err != nil {
			t.Fatalf("validated kernel failed to execute: %v", err)
		}
	})
}
