package kernelir

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the pseudo-assembly produced by Kernel.Disassemble
// back into a kernel — the inverse used by tooling and by the
// round-trip fuzz target. Register-file sizes are inferred as the
// smallest files covering every referenced register, and operand fields
// unused by an opcode come back as zero, so Assemble(k.Disassemble())
// is equivalent to k (identical re-disassembly and execution) without
// being structurally identical.
func Assemble(text string) (*Kernel, error) {
	lines := strings.Split(text, "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("kernelir: empty assembly")
	}
	k, err := parseHeader(strings.TrimSpace(lines[0]))
	if err != nil {
		return nil, err
	}
	ops := opsByName()
	depth := 0
	closed := false
	for no, raw := range lines[1:] {
		line := strings.TrimSpace(raw)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("kernelir: asm line %d: %s", no+2, fmt.Sprintf(format, args...))
		}
		switch {
		case line == "":
			continue
		case closed:
			return nil, fail("content after closing brace: %q", line)
		case line == "}":
			if depth > 0 {
				depth--
				k.Body = append(k.Body, Instr{Op: OpRepeatEnd})
				continue
			}
			closed = true
		case strings.HasPrefix(line, "local f32["):
			n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(line, "local f32["), "]"))
			if err != nil || n <= 0 {
				return nil, fail("bad local declaration %q", line)
			}
			k.LocalF32 = n
		case strings.HasPrefix(line, "repeat "):
			body := strings.TrimSuffix(strings.TrimPrefix(line, "repeat "), " {")
			n, err := strconv.Atoi(body)
			if err != nil {
				return nil, fail("bad repeat count %q", body)
			}
			if n < 1 || n > MaxRepeatTrip {
				return nil, fail("repeat trip count %d outside [1, %d]", n, MaxRepeatTrip)
			}
			k.Body = append(k.Body, Instr{Op: OpRepeatBegin, Imm: float64(n)})
			depth++
		default:
			in, err := parseInstr(k, ops, line)
			if err != nil {
				return nil, fail("%v", err)
			}
			k.Body = append(k.Body, in)
		}
	}
	if !closed {
		return nil, fmt.Errorf("kernelir: assembly missing closing brace")
	}
	inferRegFiles(k)
	return k, nil
}

func parseHeader(line string) (*Kernel, error) {
	const prefix = "kernel "
	if !strings.HasPrefix(line, prefix) || !strings.HasSuffix(line, "{") {
		return nil, fmt.Errorf("kernelir: malformed kernel header %q", line)
	}
	rest := strings.TrimSuffix(strings.TrimPrefix(line, prefix), "{")
	open := strings.IndexByte(rest, '(')
	close_ := strings.LastIndexByte(rest, ')')
	if open < 0 || close_ < open {
		return nil, fmt.Errorf("kernelir: malformed parameter list in %q", line)
	}
	k := &Kernel{Name: rest[:open]}
	if k.Name == "" {
		return nil, fmt.Errorf("kernelir: kernel has no name")
	}
	for _, tail := range strings.Fields(rest[close_+1:]) {
		v, ok := strings.CutPrefix(tail, "traffic=")
		if !ok {
			return nil, fmt.Errorf("kernelir: unexpected header attribute %q", tail)
		}
		tf, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("kernelir: bad traffic factor %q", v)
		}
		k.TrafficFactor = tf
	}
	params := strings.TrimSpace(rest[open+1 : close_])
	if params == "" {
		return k, nil
	}
	for _, ps := range strings.Split(params, ", ") {
		p, err := parseParam(ps)
		if err != nil {
			return nil, err
		}
		k.Params = append(k.Params, p)
	}
	return k, nil
}

func parseParam(s string) (Param, error) {
	fields := strings.Fields(s)
	switch len(fields) {
	case 2:
		// Buffer: "read f32[a]"; scalar: "f32 s".
		if t, rest, ok := splitBracketed(fields[1]); ok {
			acc, err := parseAccess(fields[0])
			if err != nil {
				return Param{}, err
			}
			st, err := parseScalarType(t)
			if err != nil {
				return Param{}, err
			}
			return Param{Name: rest, IsBuffer: true, Type: st, Access: acc}, nil
		}
		st, err := parseScalarType(fields[0])
		if err != nil {
			return Param{}, err
		}
		return Param{Name: fields[1], Type: st}, nil
	default:
		return Param{}, fmt.Errorf("kernelir: malformed parameter %q", s)
	}
}

// splitBracketed splits "f32[a]" into ("f32", "a", true).
func splitBracketed(s string) (head, inner string, ok bool) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return "", "", false
	}
	return s[:open], s[open+1 : len(s)-1], true
}

func parseAccess(s string) (AccessMode, error) {
	switch s {
	case "read":
		return Read, nil
	case "write":
		return Write, nil
	case "read_write":
		return ReadWrite, nil
	}
	return 0, fmt.Errorf("kernelir: unknown access mode %q", s)
}

func parseScalarType(s string) (ScalarType, error) {
	switch s {
	case "i32":
		return I32, nil
	case "f32":
		return F32, nil
	}
	return 0, fmt.Errorf("kernelir: unknown scalar type %q", s)
}

func opsByName() map[string]Op {
	m := make(map[string]Op, int(opCount))
	for op := Op(0); op < opCount; op++ {
		m[op.String()] = op
	}
	return m
}

// parseReg parses "f3" / "i0" and checks the file prefix.
func parseReg(tok string, file ScalarType) (int, error) {
	if tok == "" || tok[:1] != filePrefix(file) {
		return 0, fmt.Errorf("operand %q is not a %s register", tok, file)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return n, nil
}

func parseInstr(k *Kernel, ops map[string]Op, line string) (Instr, error) {
	var in Instr
	body := line
	dstTok := ""
	if lhs, rhs, ok := strings.Cut(line, " = "); ok {
		dstTok, body = lhs, rhs
	}
	mnemonic, operands, _ := strings.Cut(body, " ")
	op, ok := ops[mnemonic]
	if !ok {
		return in, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	in.Op = op
	c := class(op)
	if c.hasDst != (dstTok != "") {
		return in, fmt.Errorf("%s: destination mismatch in %q", op, line)
	}
	if c.hasDst {
		d, err := parseReg(dstTok, c.dstFile)
		if err != nil {
			return in, err
		}
		in.Dst = d
	}
	paramIdx := func(name string) (int, error) {
		if i, ok := k.ParamIndex(name); ok {
			return i, nil
		}
		return 0, fmt.Errorf("%s: unknown parameter %q", op, name)
	}
	memIdx := func(tok, wantHead string) (int, error) {
		head, inner, ok := splitBracketed(tok)
		if !ok || (wantHead != "" && head != wantHead) {
			return 0, fmt.Errorf("%s: malformed address %q", op, tok)
		}
		if wantHead == "" {
			b, err := paramIdx(head)
			if err != nil {
				return 0, err
			}
			in.Buf = b
		}
		return parseReg(inner, I32)
	}
	switch op {
	case OpConstI:
		n, err := strconv.ParseInt(operands, 10, 64)
		if err != nil {
			return in, fmt.Errorf("const.i: bad immediate %q", operands)
		}
		in.Imm = float64(n)
	case OpConstF:
		f, err := strconv.ParseFloat(operands, 64)
		if err != nil {
			return in, fmt.Errorf("const.f: bad immediate %q", operands)
		}
		in.Imm = f
	case OpParamI, OpParamF:
		b, err := paramIdx(operands)
		if err != nil {
			return in, err
		}
		in.Buf = b
	case OpLoadGF, OpLoadGI:
		a, err := memIdx(operands, "")
		if err != nil {
			return in, err
		}
		in.A = a
	case OpStoreGF, OpStoreGI:
		addr, val, ok := strings.Cut(operands, ", ")
		if !ok {
			return in, fmt.Errorf("%s: malformed operands %q", op, operands)
		}
		a, err := memIdx(addr, "")
		if err != nil {
			return in, err
		}
		b, err := parseReg(val, c.bFile)
		if err != nil {
			return in, err
		}
		in.A, in.B = a, b
	case OpLoadLF:
		a, err := memIdx(operands, "local")
		if err != nil {
			return in, err
		}
		in.A = a
	case OpStoreLF:
		addr, val, ok := strings.Cut(operands, ", ")
		if !ok {
			return in, fmt.Errorf("st.l.f: malformed operands %q", operands)
		}
		a, err := memIdx(addr, "local")
		if err != nil {
			return in, err
		}
		b, err := parseReg(val, F32)
		if err != nil {
			return in, err
		}
		in.A, in.B = a, b
	default:
		var toks []string
		if operands != "" {
			toks = strings.Split(operands, ", ")
		}
		want := 0
		read := func(file ScalarType, dst *int) error {
			if want >= len(toks) {
				return fmt.Errorf("%s: missing operand %d", op, want+1)
			}
			r, err := parseReg(toks[want], file)
			if err != nil {
				return err
			}
			*dst = r
			want++
			return nil
		}
		if c.hasA {
			if err := read(c.aFile, &in.A); err != nil {
				return in, err
			}
		}
		if c.hasB {
			if err := read(c.bFile, &in.B); err != nil {
				return in, err
			}
		}
		if c.hasC {
			if err := read(c.cFile, &in.C); err != nil {
				return in, err
			}
		}
		if want != len(toks) {
			return in, fmt.Errorf("%s: %d extra operand(s) in %q", op, len(toks)-want, line)
		}
	}
	return in, nil
}

// inferRegFiles sizes the register files to the smallest extent covering
// every referenced register.
func inferRegFiles(k *Kernel) {
	need := func(cur *int, r int) {
		if r+1 > *cur {
			*cur = r + 1
		}
	}
	reg := func(file ScalarType, r int) {
		if file == I32 {
			need(&k.NumIntRegs, r)
		} else {
			need(&k.NumFloatRegs, r)
		}
	}
	for _, in := range k.Body {
		c := class(in.Op)
		if c.hasDst {
			reg(c.dstFile, in.Dst)
		}
		if c.hasA {
			reg(c.aFile, in.A)
		}
		if c.hasB {
			reg(c.bFile, in.B)
		}
		if c.hasC {
			reg(c.cFile, in.C)
		}
	}
}
