package kernelir

// OperandInfo describes which register operands an opcode reads and
// writes and how it touches memory — the per-opcode metadata the static
// analyzer (internal/kernelir/analysis) keys its dataflow passes on. It
// is a public view of the same internal table Validate, the interpreter
// helpers and the disassembler use, so the analyzer can never disagree
// with execution about what an instruction reads.
type OperandInfo struct {
	HasDst  bool
	DstFile ScalarType
	HasA    bool
	AFile   ScalarType
	HasB    bool
	BFile   ScalarType
	HasC    bool
	CFile   ScalarType
	// UsesBuf reports that Instr.Buf references Params.
	UsesBuf bool
	// IsScalarParam, IsMemOp and IsLocal distinguish scalar parameter
	// reads, global buffer accesses and local scratch accesses.
	IsScalarParam bool
	IsMemOp       bool
	IsLocal       bool
	// BufElem is the element type for memory/parameter ops.
	BufElem ScalarType
}

// InfoOf returns the operand metadata for op.
func InfoOf(op Op) OperandInfo {
	c := class(op)
	return OperandInfo{
		HasDst: c.hasDst, DstFile: c.dstFile,
		HasA: c.hasA, AFile: c.aFile,
		HasB: c.hasB, BFile: c.bFile,
		HasC: c.hasC, CFile: c.cFile,
		UsesBuf:       c.usesBuf,
		IsScalarParam: c.isScalar,
		IsMemOp:       c.isBufOp,
		IsLocal:       c.isLocal,
		BufElem:       c.bufKind,
	}
}
