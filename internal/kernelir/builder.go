package kernelir

import "fmt"

// IntReg and FloatReg are typed handles into the two register files; the
// builder hands them out so that kernels are type-checked as they are
// written, not only at Validate time.
type IntReg struct{ idx int }

// FloatReg is a handle to a float register.
type FloatReg struct{ idx int }

// BufF32 and BufI32 are typed handles to buffer parameters.
type BufF32 struct{ idx int }

// BufI32 is a handle to an int32 buffer parameter.
type BufI32 struct{ idx int }

// Builder constructs kernels with a fluent, type-safe API. Register
// allocation is automatic; Repeat blocks nest via closures.
type Builder struct {
	k       Kernel
	nextI   int
	nextF   int
	built   bool
	repeats int
}

// NewBuilder starts a kernel named name.
func NewBuilder(name string) *Builder {
	return &Builder{k: Kernel{Name: name}}
}

func (b *Builder) emit(in Instr) {
	if b.built {
		panic("kernelir: builder reused after Build")
	}
	b.k.Body = append(b.k.Body, in)
}

func (b *Builder) allocI() IntReg {
	r := IntReg{b.nextI}
	b.nextI++
	return r
}

func (b *Builder) allocF() FloatReg {
	r := FloatReg{b.nextF}
	b.nextF++
	return r
}

// BufferF32 declares a float32 global buffer parameter.
func (b *Builder) BufferF32(name string, access AccessMode) BufF32 {
	b.k.Params = append(b.k.Params, Param{Name: name, IsBuffer: true, Type: F32, Access: access})
	return BufF32{len(b.k.Params) - 1}
}

// BufferI32 declares an int32 global buffer parameter.
func (b *Builder) BufferI32(name string, access AccessMode) BufI32 {
	b.k.Params = append(b.k.Params, Param{Name: name, IsBuffer: true, Type: I32, Access: access})
	return BufI32{len(b.k.Params) - 1}
}

// ScalarI declares an integer scalar parameter and returns a register
// holding its value.
func (b *Builder) ScalarI(name string) IntReg {
	b.k.Params = append(b.k.Params, Param{Name: name, Type: I32})
	dst := b.allocI()
	b.emit(Instr{Op: OpParamI, Dst: dst.idx, Buf: len(b.k.Params) - 1})
	return dst
}

// ScalarF declares a float scalar parameter and returns a register
// holding its value.
func (b *Builder) ScalarF(name string) FloatReg {
	b.k.Params = append(b.k.Params, Param{Name: name, Type: F32})
	dst := b.allocF()
	b.emit(Instr{Op: OpParamF, Dst: dst.idx, Buf: len(b.k.Params) - 1})
	return dst
}

// TrafficFactor declares the fraction of this kernel's global accesses
// that reach DRAM (cache/coalescing reuse). Must be in (0, 1].
func (b *Builder) TrafficFactor(f float64) {
	if f <= 0 || f > 1 {
		panic("kernelir: traffic factor must be in (0, 1]")
	}
	b.k.TrafficFactor = f
}

// Local declares n float32 words of per-work-item scratch memory.
func (b *Builder) Local(n int) {
	if n <= 0 {
		panic("kernelir: local size must be positive")
	}
	b.k.LocalF32 = n
}

// GlobalID returns the linear work-item index.
func (b *Builder) GlobalID() IntReg {
	dst := b.allocI()
	b.emit(Instr{Op: OpGlobalID, Dst: dst.idx})
	return dst
}

// GlobalID2 returns the (x, y) indices of a 2-D launch. For 1-D
// launches x equals the linear id and y is zero.
func (b *Builder) GlobalID2() (x, y IntReg) {
	x = b.allocI()
	b.emit(Instr{Op: OpGlobalIDX, Dst: x.idx})
	y = b.allocI()
	b.emit(Instr{Op: OpGlobalIDY, Dst: y.idx})
	return x, y
}

// ConstI materialises an integer constant.
func (b *Builder) ConstI(v int64) IntReg {
	dst := b.allocI()
	b.emit(Instr{Op: OpConstI, Dst: dst.idx, Imm: float64(v)})
	return dst
}

// ConstF materialises a float constant.
func (b *Builder) ConstF(v float64) FloatReg {
	dst := b.allocF()
	b.emit(Instr{Op: OpConstF, Dst: dst.idx, Imm: v})
	return dst
}

// MoveI copies src into dst (loop write-back; costs no feature).
func (b *Builder) MoveI(dst, src IntReg) { b.emit(Instr{Op: OpMoveI, Dst: dst.idx, A: src.idx}) }

// CopyI copies src into a fresh register (useful to obtain a mutable
// loop variable initialised from a read-only value).
func (b *Builder) CopyI(src IntReg) IntReg {
	dst := b.allocI()
	b.emit(Instr{Op: OpMoveI, Dst: dst.idx, A: src.idx})
	return dst
}

// CopyF copies src into a fresh float register.
func (b *Builder) CopyF(src FloatReg) FloatReg {
	dst := b.allocF()
	b.emit(Instr{Op: OpMoveF, Dst: dst.idx, A: src.idx})
	return dst
}

// MoveF copies src into dst (loop write-back; costs no feature).
func (b *Builder) MoveF(dst, src FloatReg) { b.emit(Instr{Op: OpMoveF, Dst: dst.idx, A: src.idx}) }

func (b *Builder) binI(op Op, x, y IntReg) IntReg {
	dst := b.allocI()
	b.emit(Instr{Op: op, Dst: dst.idx, A: x.idx, B: y.idx})
	return dst
}

func (b *Builder) binF(op Op, x, y FloatReg) FloatReg {
	dst := b.allocF()
	b.emit(Instr{Op: op, Dst: dst.idx, A: x.idx, B: y.idx})
	return dst
}

func (b *Builder) unF(op Op, x FloatReg) FloatReg {
	dst := b.allocF()
	b.emit(Instr{Op: op, Dst: dst.idx, A: x.idx})
	return dst
}

// Integer arithmetic.

// AddI returns x + y.
func (b *Builder) AddI(x, y IntReg) IntReg { return b.binI(OpAddI, x, y) }

// SubI returns x - y.
func (b *Builder) SubI(x, y IntReg) IntReg { return b.binI(OpSubI, x, y) }

// MulI returns x * y.
func (b *Builder) MulI(x, y IntReg) IntReg { return b.binI(OpMulI, x, y) }

// DivI returns x / y (0 when y == 0).
func (b *Builder) DivI(x, y IntReg) IntReg { return b.binI(OpDivI, x, y) }

// RemI returns x % y (0 when y == 0).
func (b *Builder) RemI(x, y IntReg) IntReg { return b.binI(OpRemI, x, y) }

// MinI returns min(x, y).
func (b *Builder) MinI(x, y IntReg) IntReg { return b.binI(OpMinI, x, y) }

// MaxI returns max(x, y).
func (b *Builder) MaxI(x, y IntReg) IntReg { return b.binI(OpMaxI, x, y) }

// AndI returns x & y.
func (b *Builder) AndI(x, y IntReg) IntReg { return b.binI(OpAndI, x, y) }

// OrI returns x | y.
func (b *Builder) OrI(x, y IntReg) IntReg { return b.binI(OpOrI, x, y) }

// XorI returns x ^ y.
func (b *Builder) XorI(x, y IntReg) IntReg { return b.binI(OpXorI, x, y) }

// ShlI returns x << (y & 63).
func (b *Builder) ShlI(x, y IntReg) IntReg { return b.binI(OpShlI, x, y) }

// ShrI returns x >> (y & 63).
func (b *Builder) ShrI(x, y IntReg) IntReg { return b.binI(OpShrI, x, y) }

// CmpLTI returns x < y ? 1 : 0.
func (b *Builder) CmpLTI(x, y IntReg) IntReg { return b.binI(OpCmpLTI, x, y) }

// CmpEQI returns x == y ? 1 : 0.
func (b *Builder) CmpEQI(x, y IntReg) IntReg { return b.binI(OpCmpEQI, x, y) }

// SelI returns cond != 0 ? x : y.
func (b *Builder) SelI(cond, x, y IntReg) IntReg {
	dst := b.allocI()
	b.emit(Instr{Op: OpSelI, Dst: dst.idx, A: x.idx, B: y.idx, C: cond.idx})
	return dst
}

// Float arithmetic.

// AddF returns x + y.
func (b *Builder) AddF(x, y FloatReg) FloatReg { return b.binF(OpAddF, x, y) }

// SubF returns x - y.
func (b *Builder) SubF(x, y FloatReg) FloatReg { return b.binF(OpSubF, x, y) }

// MulF returns x * y.
func (b *Builder) MulF(x, y FloatReg) FloatReg { return b.binF(OpMulF, x, y) }

// DivF returns x / y.
func (b *Builder) DivF(x, y FloatReg) FloatReg { return b.binF(OpDivF, x, y) }

// MinF returns min(x, y).
func (b *Builder) MinF(x, y FloatReg) FloatReg { return b.binF(OpMinF, x, y) }

// MaxF returns max(x, y).
func (b *Builder) MaxF(x, y FloatReg) FloatReg { return b.binF(OpMaxF, x, y) }

// AbsF returns |x|.
func (b *Builder) AbsF(x FloatReg) FloatReg { return b.unF(OpAbsF, x) }

// NegF returns -x.
func (b *Builder) NegF(x FloatReg) FloatReg { return b.unF(OpNegF, x) }

// CmpLTF returns x < y ? 1 : 0 (in an int register).
func (b *Builder) CmpLTF(x, y FloatReg) IntReg {
	dst := b.allocI()
	b.emit(Instr{Op: OpCmpLTF, Dst: dst.idx, A: x.idx, B: y.idx})
	return dst
}

// SelF returns cond != 0 ? x : y.
func (b *Builder) SelF(cond IntReg, x, y FloatReg) FloatReg {
	dst := b.allocF()
	b.emit(Instr{Op: OpSelF, Dst: dst.idx, A: x.idx, B: y.idx, C: cond.idx})
	return dst
}

// Special functions.

// SqrtF returns sqrt(x).
func (b *Builder) SqrtF(x FloatReg) FloatReg { return b.unF(OpSqrtF, x) }

// ExpF returns exp(x).
func (b *Builder) ExpF(x FloatReg) FloatReg { return b.unF(OpExpF, x) }

// LogF returns log(x).
func (b *Builder) LogF(x FloatReg) FloatReg { return b.unF(OpLogF, x) }

// SinF returns sin(x).
func (b *Builder) SinF(x FloatReg) FloatReg { return b.unF(OpSinF, x) }

// CosF returns cos(x).
func (b *Builder) CosF(x FloatReg) FloatReg { return b.unF(OpCosF, x) }

// ErfF returns erf(x).
func (b *Builder) ErfF(x FloatReg) FloatReg { return b.unF(OpErfF, x) }

// PowF returns pow(x, y).
func (b *Builder) PowF(x, y FloatReg) FloatReg { return b.binF(OpPowF, x, y) }

// Conversions.

// IntToFloat converts x to float.
func (b *Builder) IntToFloat(x IntReg) FloatReg {
	dst := b.allocF()
	b.emit(Instr{Op: OpCvtIF, Dst: dst.idx, A: x.idx})
	return dst
}

// FloatToInt truncates x to int.
func (b *Builder) FloatToInt(x FloatReg) IntReg {
	dst := b.allocI()
	b.emit(Instr{Op: OpCvtFI, Dst: dst.idx, A: x.idx})
	return dst
}

// Memory.

// LoadF loads buf[idx] (index clamped to the buffer bounds).
func (b *Builder) LoadF(buf BufF32, idx IntReg) FloatReg {
	dst := b.allocF()
	b.emit(Instr{Op: OpLoadGF, Dst: dst.idx, A: idx.idx, Buf: buf.idx})
	return dst
}

// StoreF stores v to buf[idx] (index clamped).
func (b *Builder) StoreF(buf BufF32, idx IntReg, v FloatReg) {
	b.emit(Instr{Op: OpStoreGF, A: idx.idx, B: v.idx, Buf: buf.idx})
}

// LoadI loads buf[idx] (index clamped).
func (b *Builder) LoadI(buf BufI32, idx IntReg) IntReg {
	dst := b.allocI()
	b.emit(Instr{Op: OpLoadGI, Dst: dst.idx, A: idx.idx, Buf: buf.idx})
	return dst
}

// StoreI stores v to buf[idx] (index clamped).
func (b *Builder) StoreI(buf BufI32, idx IntReg, v IntReg) {
	b.emit(Instr{Op: OpStoreGI, A: idx.idx, B: v.idx, Buf: buf.idx})
}

// LoadLocal loads local[idx] (index clamped to the scratch size).
func (b *Builder) LoadLocal(idx IntReg) FloatReg {
	dst := b.allocF()
	b.emit(Instr{Op: OpLoadLF, Dst: dst.idx, A: idx.idx})
	return dst
}

// StoreLocal stores v to local[idx] (index clamped).
func (b *Builder) StoreLocal(idx IntReg, v FloatReg) {
	b.emit(Instr{Op: OpStoreLF, A: idx.idx, B: v.idx})
}

// Repeat executes body count times. The trip count must be statically
// known — the property that makes feature extraction exact.
func (b *Builder) Repeat(count int, body func()) {
	if count < 1 || count > MaxRepeatTrip {
		panic(fmt.Sprintf("kernelir: repeat count %d outside [1, %d]", count, MaxRepeatTrip))
	}
	b.emit(Instr{Op: OpRepeatBegin, Imm: float64(count)})
	b.repeats++
	body()
	b.repeats--
	b.emit(Instr{Op: OpRepeatEnd})
}

// Build finalises and validates the kernel.
func (b *Builder) Build() (*Kernel, error) {
	if b.built {
		return nil, fmt.Errorf("kernelir: builder reused after Build")
	}
	b.built = true
	k := b.k
	k.NumIntRegs = b.nextI
	k.NumFloatRegs = b.nextF
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return &k, nil
}

// MustBuild is Build that panics on error; kernels are static program
// data, so construction failures are programming errors.
func (b *Builder) MustBuild() *Kernel {
	k, err := b.Build()
	if err != nil {
		panic(err)
	}
	return k
}
