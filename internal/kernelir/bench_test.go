package kernelir

import "testing"

// Interpreter throughput: the functional-simulation bottleneck.

func benchKernel() *Kernel {
	b := NewBuilder("bench")
	in := b.BufferF32("in", Read)
	out := b.BufferF32("out", Write)
	gid := b.GlobalID()
	acc := b.CopyF(b.ConstF(0))
	one := b.ConstI(1)
	idx := b.CopyI(gid)
	b.Repeat(16, func() {
		v := b.LoadF(in, idx)
		b.MoveF(acc, b.AddF(acc, b.MulF(v, v)))
		b.MoveI(idx, b.AddI(idx, one))
	})
	b.StoreF(out, gid, acc)
	return b.MustBuild()
}

func BenchmarkInterpreterThroughput(b *testing.B) {
	k := benchKernel()
	const n = 1 << 14
	in := make([]float32, n+16)
	out := make([]float32, n)
	for i := range in {
		in[i] = 0.5
	}
	args := Args{F32: map[string][]float32{"in": in, "out": out}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Execute(k, args, n); err != nil {
			b.Fatal(err)
		}
	}
	// ~80 interpreted instructions per item.
	b.SetBytes(int64(n * 80))
}

func BenchmarkValidate(b *testing.B) {
	k := benchKernel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := k.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisassemble(b *testing.B) {
	k := benchKernel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if k.Disassemble() == "" {
			b.Fatal("empty disassembly")
		}
	}
}
