package kernelir

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestValidateRejectsTripCountBounds(t *testing.T) {
	t.Parallel()
	mk := func(trip float64) *Kernel {
		return &Kernel{
			Name:       "trips",
			NumIntRegs: 1,
			Body: []Instr{
				{Op: OpRepeatBegin, Imm: trip},
				{Op: OpConstI, Dst: 0, Imm: 1},
				{Op: OpRepeatEnd},
			},
		}
	}
	for _, trip := range []float64{0, -1, -7, MaxRepeatTrip + 1, 1e18} {
		if err := mk(trip).Validate(); err == nil {
			t.Errorf("Validate accepted trip count %v", trip)
		}
	}
	for _, trip := range []float64{1, 2, MaxRepeatTrip} {
		if err := mk(trip).Validate(); err != nil {
			t.Errorf("Validate rejected trip count %v: %v", trip, err)
		}
	}
}

func TestBuilderRepeatRejectsTripCountBounds(t *testing.T) {
	t.Parallel()
	for _, count := range []int{0, -4, MaxRepeatTrip + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Builder.Repeat accepted count %d", count)
				}
			}()
			b := NewBuilder("bad")
			b.Repeat(count, func() {})
		}()
	}
}

func TestBuildLoopTree(t *testing.T) {
	t.Parallel()
	body := []Instr{
		{Op: OpConstI, Dst: 0, Imm: 1},   // 0
		{Op: OpRepeatBegin, Imm: 4},      // 1
		{Op: OpRepeatBegin, Imm: 2},      // 2
		{Op: OpAddI, Dst: 0, A: 0, B: 0}, // 3
		{Op: OpRepeatEnd},                // 4
		{Op: OpRepeatEnd},                // 5
		{Op: OpRepeatBegin, Imm: 3},      // 6
		{Op: OpRepeatEnd},                // 7
	}
	tree, err := BuildLoopTree(body)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	outer, empty := root.Children[0], root.Children[1]
	if outer.Begin != 1 || outer.End != 5 || outer.Trip != 4 {
		t.Fatalf("outer node = %+v", outer)
	}
	if len(outer.Children) != 1 || outer.Children[0].Begin != 2 || outer.Children[0].End != 4 {
		t.Fatalf("inner node = %+v", outer.Children[0])
	}
	if empty.Begin != 6 || empty.End != 7 || empty.Trip != 3 {
		t.Fatalf("empty node = %+v", empty)
	}
	if tree.Match(1) != 5 || tree.Match(5) != 1 || tree.Match(2) != 4 {
		t.Fatal("Match inconsistent with nesting")
	}
	// Walk multiplies nested trip counts.
	mults := map[int]float64{}
	tree.Walk(func(pc int, _ Instr, mult float64) { mults[pc] = mult })
	if want := map[int]float64{0: 1, 3: 8}; !reflect.DeepEqual(mults, want) {
		t.Fatalf("Walk mults = %v, want %v", mults, want)
	}

	for _, bad := range [][]Instr{
		{{Op: OpRepeatEnd}},
		{{Op: OpRepeatBegin, Imm: 2}},
		{{Op: OpRepeatBegin, Imm: 2}, {Op: OpRepeatEnd}, {Op: OpRepeatEnd}},
	} {
		if _, err := BuildLoopTree(bad); err == nil {
			t.Errorf("BuildLoopTree accepted unbalanced body %+v", bad)
		}
	}
}

// checkedKernel builds a kernel with a parameterisable body over one
// read-write buffer and 4 local words.
func checkedKernel(body []Instr) *Kernel {
	return &Kernel{
		Name: "checked",
		Params: []Param{
			{Name: "out", IsBuffer: true, Type: F32, Access: ReadWrite},
		},
		NumIntRegs:   4,
		NumFloatRegs: 4,
		LocalF32:     4,
		Body:         body,
	}
}

func checkedArgs() Args {
	return Args{F32: map[string][]float32{"out": make([]float32, 8)}}
}

func TestExecuteCheckedFlagsUninitializedRead(t *testing.T) {
	t.Parallel()
	k := checkedKernel([]Instr{
		{Op: OpGlobalID, Dst: 0},
		{Op: OpAddF, Dst: 1, A: 2, B: 3}, // f2, f3 never written
		{Op: OpStoreGF, A: 0, B: 1, Buf: 0},
	})
	err := ExecuteChecked(k, checkedArgs(), 4)
	var ce *CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("ExecuteChecked = %v, want CheckError", err)
	}
	if ce.PC != 1 || ce.Item != -1 || !strings.Contains(ce.Msg, "f2") {
		t.Fatalf("CheckError = %+v", ce)
	}
}

func TestExecuteCheckedFlagsLocalOOB(t *testing.T) {
	t.Parallel()
	k := checkedKernel([]Instr{
		{Op: OpGlobalID, Dst: 0},       // i0 = gid in [0, 8)
		{Op: OpConstF, Dst: 0, Imm: 1}, // f0 = 1
		{Op: OpStoreLF, A: 0, B: 0},    // local[gid]: OOB for gid >= 4
		{Op: OpLoadLF, Dst: 1, A: 0},
		{Op: OpStoreGF, A: 0, B: 1, Buf: 0},
	})
	err := ExecuteChecked(k, checkedArgs(), 8)
	var ce *CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("ExecuteChecked = %v, want CheckError", err)
	}
	if ce.PC != 2 {
		t.Fatalf("CheckError pc = %d, want 2 (first offending access): %+v", ce.PC, ce)
	}
	if ce.Item < 4 {
		t.Fatalf("CheckError item = %d, want >= 4: %+v", ce.Item, ce)
	}

	// The same kernel over only the in-bounds items is clean.
	if err := ExecuteChecked(k, checkedArgs(), 4); err != nil {
		t.Fatalf("ExecuteChecked over in-bounds items = %v", err)
	}
}

func TestExecuteCheckedMatchesExecuteOnCleanKernel(t *testing.T) {
	t.Parallel()
	k := sampleKernel() // uses repeat, local memory and clamped indices
	// sampleKernel reads f0..f2 after writing them and keeps local
	// indices at gid (< LocalF32 for small launches).
	a1, a2 := sampleArgs(), sampleArgs()
	if err := Execute(k, a1, 3); err != nil {
		t.Fatal(err)
	}
	if err := ExecuteChecked(k, a2, 3); err != nil {
		t.Fatalf("ExecuteChecked = %v, want clean run", err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("checked execution changed outputs:\n%+v\n%+v", a1, a2)
	}
}

func sampleArgs() Args {
	return Args{
		F32: map[string][]float32{
			"x": {1, 2, 3},
			"y": {4, 5, 6},
		},
		ScalarI: map[string]int64{"n": 3},
		ScalarF: map[string]float64{"a": 0.5},
	}
}

func TestInstrStringMatchesDisassembly(t *testing.T) {
	t.Parallel()
	k := sampleKernel()
	dis := k.Disassemble()
	for pc := range k.Body {
		line := k.InstrString(pc)
		if !strings.Contains(dis, line) {
			t.Errorf("InstrString(%d) = %q not found in disassembly:\n%s", pc, line, dis)
		}
	}
	if got := k.InstrString(len(k.Body)); !strings.Contains(got, "out of range") {
		t.Errorf("InstrString out of range = %q", got)
	}
}
