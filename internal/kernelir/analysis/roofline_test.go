package analysis_test

import (
	"math"
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/kernelir/analysis"
	"synergy/internal/sweep"
)

// TestStaticRooflineMatchesSweep is the differential acceptance test: for
// every (device, suite kernel) pair the static roofline label must agree
// with the characterization derived from the dynamic frequency sweep by
// ClassifySweep, which sees only (frequency, time, energy) points.
//
// Agreement is required outright whenever the kernel sits off the
// roofline ridge (|static alpha - 1/2| > ridgeMargin). On the ridge the
// phase times are nearly equal, the fitted slope carries the ground-truth
// model's measurement noise (sigma ~ 0.1 on the narrow fit band), and the
// label is decided by noise; there the test instead requires the static
// and fitted alphas to be close. The margins are calibrated against the
// builtin devices: the closest off-ridge pair (kmeans on mi100) has
// |alpha - 1/2| = 0.073, and the largest on-ridge |static - fitted| gap
// (kmeans on xeon) is 0.152.
//
// The device list is the full hw catalog, so a newly added spec (a CPU
// generation, a new GPU, an accelerator) is automatically held to the
// same static-vs-sweep agreement bar on all 23 benchmarks.
func TestStaticRooflineMatchesSweep(t *testing.T) {
	t.Parallel()
	const (
		ridgeMargin = 0.06
		alphaTol    = 0.25
	)
	for _, device := range hw.BuiltinNames() {
		device := device
		t.Run(device, func(t *testing.T) {
			t.Parallel()
			spec, err := hw.SpecByName(device)
			if err != nil {
				t.Fatal(err)
			}
			for _, bm := range benchsuite.All() {
				static, err := analysis.StaticRoofline(bm.Kernel, spec)
				if err != nil {
					t.Fatalf("%s: StaticRoofline: %v", bm.Name, err)
				}
				sw, err := sweep.GroundTruth(spec, bm.Kernel, bm.CharItems)
				if err != nil {
					t.Fatalf("%s: GroundTruth: %v", bm.Name, err)
				}
				dynLabel, dynAlpha := analysis.ClassifySweep(sw)
				if math.Abs(static.Alpha-0.5) > ridgeMargin {
					if static.Label != dynLabel {
						t.Errorf("%s on %s: static %v (alpha %.3f) vs sweep %v (alpha %.3f)",
							bm.Name, device, static.Label, static.Alpha, dynLabel, dynAlpha)
					}
				} else if math.Abs(static.Alpha-dynAlpha) > alphaTol {
					t.Errorf("%s on %s: ridge kernel alphas diverge: static %.3f vs sweep %.3f",
						bm.Name, device, static.Alpha, dynAlpha)
				}
			}
		})
	}
}
