package analysis

import (
	"fmt"
	"math"

	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
)

// Bound labels a kernel's roofline regime on a device.
type Bound int

const (
	// ComputeBound kernels scale ~1/f with the core clock: downclocking
	// costs proportional time, so the energy-optimal frequency sits high.
	ComputeBound Bound = iota
	// MemoryBound kernels are limited by DRAM: above the bandwidth knee
	// the runtime barely moves with the core clock, so large frequency
	// reductions are nearly free.
	MemoryBound
)

// String returns the label name.
func (b Bound) String() string {
	if b == ComputeBound {
		return "compute-bound"
	}
	return "memory-bound"
}

// MarshalJSON renders the label as its name.
func (b Bound) MarshalJSON() ([]byte, error) { return []byte(`"` + b.String() + `"`), nil }

// UnmarshalJSON parses a label name.
func (b *Bound) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"compute-bound"`:
		*b = ComputeBound
	case `"memory-bound"`:
		*b = MemoryBound
	default:
		return fmt.Errorf("analysis: unknown roofline label %s", data)
	}
	return nil
}

// Roofline is the static classifier's verdict for one (kernel, device)
// pair.
type Roofline struct {
	Device string `json:"device"`
	Label  Bound  `json:"label"`
	// OpsPerItem is the weighted per-item operation count and
	// BytesPerItem the per-item DRAM traffic (traffic-factor adjusted).
	OpsPerItem   float64 `json:"ops_per_item"`
	BytesPerItem float64 `json:"bytes_per_item"`
	// Intensity is arithmetic intensity in weighted ops per DRAM byte
	// (infinite for kernels with no global traffic).
	Intensity float64 `json:"intensity"`
	// Alpha predicts the log-log slope of time against core frequency at
	// the top of the clock table: t_c^p / (t_c^p + t_m^p) with the
	// model's smooth-max exponent p. Compute-bound means alpha > 1/2,
	// i.e. t_c > t_m.
	Alpha float64 `json:"alpha"`
	// KneeMHz is the lowest table frequency at which the memory phase
	// dominates the compute phase — below it, downclocking costs real
	// time even for memory-bound kernels. For compute-bound kernels (the
	// compute phase dominates everywhere) it is the maximum frequency.
	KneeMHz int `json:"knee_mhz"`
}

// Summary renders the verdict as one line.
func (r *Roofline) Summary() string {
	return fmt.Sprintf("%s on %s: alpha=%.3f, knee %d MHz, %.2f ops/B",
		r.Label, r.Device, r.Alpha, r.KneeMHz, r.Intensity)
}

// StaticRoofline classifies the kernel on a device using only static
// information: the §6.1 feature vector (via the same features.Workload
// bridge the ground-truth model uses), the kernel's declared DRAM
// traffic factor and the device spec. For this IR the classification is
// exact, not heuristic: feature extraction is exact (straight-line
// bodies, static trip counts), and the label compares the very
// phase-time expressions (hw.Spec.PhaseTimes) the ground-truth model
// combines, so static and sweep-derived labels can only disagree through
// the model's ±1% measurement noise at an exact tie.
func StaticRoofline(k *kernelir.Kernel, spec *hw.Spec) (*Roofline, error) {
	v, err := features.Extract(k)
	if err != nil {
		return nil, err
	}
	// Per-item workload; the traffic factor scales DRAM bytes exactly as
	// features.KernelWorkload does for the ground truth.
	w := features.Workload(k.Name, v, 1)
	if k.TrafficFactor > 0 {
		w.GlobalBytes *= k.TrafficFactor
	}
	r := &Roofline{
		Device:       spec.Name,
		OpsPerItem:   w.TotalOps(),
		BytesPerItem: w.GlobalBytes,
		Intensity:    math.Inf(1),
	}
	if w.GlobalBytes > 0 {
		r.Intensity = w.TotalOps() / w.GlobalBytes
	}
	// The label compares the phase times at the representative frequency
	// of the regime a measured sweep characterizes: the log-midpoint of
	// the top 15% of the un-capped clock range (sqrt(0.85) of the
	// predicted throttle onset). Evaluating at fmax instead would
	// mislabel ridge kernels whose t_c = t_m crossover falls inside the
	// capped band, where no measurement can see it.
	fRef := int(math.Sqrt(0.85)*float64(throttleOnsetMHz(spec, w)) + 0.5)
	tc, tm := spec.PhaseTimes(w, fRef)
	if tc < tm {
		r.Label = MemoryBound
	}
	r.Alpha = alpha(tc, tm)
	r.KneeMHz = spec.MaxCoreMHz()
	for _, f := range spec.CoreFreqsMHz {
		if c, m := spec.PhaseTimes(w, f); m >= c {
			r.KneeMHz = f
			break
		}
	}
	return r, nil
}

// throttleOnsetMHz predicts the highest table frequency the device can
// sustain without TDP capping for this workload, evaluated at a large
// canonical launch so the launch overhead is negligible (power
// utilisation is item-count independent in that limit). Falls back to
// the maximum frequency if the whole table is capped.
func throttleOnsetMHz(spec *hw.Spec, w hw.Workload) int {
	wBig := w
	wBig.Items = 1 << 22
	for i := len(spec.CoreFreqsMHz) - 1; i >= 0; i-- {
		f := spec.CoreFreqsMHz[i]
		m, err := spec.Evaluate(wBig, f)
		if err != nil {
			break
		}
		if !m.Throttled {
			return f
		}
	}
	return spec.MaxCoreMHz()
}

// alpha is the predicted log-log slope d ln t / d ln f (negated) of the
// smooth-max roofline above the bandwidth knee.
func alpha(tc, tm float64) float64 {
	switch {
	case tc == 0 && tm == 0:
		return 0
	case tm == 0:
		return 1
	case tc == 0:
		return 0
	}
	cp := math.Pow(tc, hw.SmoothMaxP)
	mp := math.Pow(tm, hw.SmoothMaxP)
	return cp / (cp + mp)
}

// ClassifySweep derives the same label from a measured (or simulated)
// frequency sweep with no knowledge of the device model: a least-squares
// fit of the log-log slope of time against frequency over the top of the
// un-throttled clock range. Compute-bound kernels have t proportional to
// 1/f (slope ~ -1); memory-bound kernels are flat (slope ~ 0); the
// smooth-max roofline puts the static t_c = t_m crossover exactly at
// slope -1/2. Returns the label and the fitted alpha (negated slope).
//
// Two measured regimes would corrupt the fit and are excluded:
//
//   - TDP power capping flattens (even inverts) the slope at the top of
//     the table. Capped points are detectable from the sweep alone: the
//     board regulates average power to exactly the TDP, so two or more
//     points sharing the sweep's maximum power (to within rounding) are
//     capped and dropped.
//   - Below the bandwidth knee, DRAM bandwidth degrades with the core
//     clock and memory-bound kernels stop being flat. The fit therefore
//     keeps only f >= 0.85 of the highest un-capped frequency, which
//     stays above the knee of every builtin device (throttle onset is
//     >= 0.83 fmax everywhere, knees at <= 0.78 fmax).
func ClassifySweep(sw *metrics.Sweep) (Bound, float64) {
	pts := capFiltered(sw.Points)
	ftop := float64(pts[len(pts)-1].FreqMHz)
	var xs, ys []float64
	for _, p := range pts {
		if float64(p.FreqMHz) >= 0.85*ftop {
			xs = append(xs, math.Log(float64(p.FreqMHz)))
			ys = append(ys, math.Log(p.TimeSec))
		}
	}
	a := -slope(xs, ys)
	if a >= 0.5 {
		return ComputeBound, a
	}
	return MemoryBound, a
}

// capFiltered drops TDP-capped points: the capped region shares one
// exact average power (the TDP), so when at least two points sit within
// rounding error of the sweep's maximum power they are the capped
// plateau. A single maximum is an ordinary un-capped top point (power
// rises strictly with frequency below the cap) and is kept.
func capFiltered(pts []metrics.Point) []metrics.Point {
	const tol = 1e-9
	pmax := 0.0
	for _, p := range pts {
		if pw := p.EnergyJ / p.TimeSec; pw > pmax {
			pmax = pw
		}
	}
	atMax := 0
	for _, p := range pts {
		if pw := p.EnergyJ / p.TimeSec; pw >= pmax*(1-tol) {
			atMax++
		}
	}
	if atMax < 2 {
		return pts
	}
	kept := make([]metrics.Point, 0, len(pts))
	for _, p := range pts {
		if pw := p.EnergyJ / p.TimeSec; pw < pmax*(1-tol) {
			kept = append(kept, p)
		}
	}
	if len(kept) < 2 {
		// Essentially the whole table is power-capped; fall back to the
		// raw points rather than fitting nothing.
		return pts
	}
	return kept
}

// slope is the least-squares slope of y against x.
func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
