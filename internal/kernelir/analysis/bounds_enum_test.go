package analysis

import (
	"math"
	"testing"

	"synergy/internal/kernelir"
)

// These tests audit the interval transfer functions against the
// interpreter's concrete semantics (interp.go: wrapping add/sub/mul,
// div/rem-by-zero = 0, shifts masked by &63) by enumeration: every
// abstract result must contain every concrete result of operand values
// drawn from the operand intervals.
//
// Finite bounds are sampled exactly, including extremes like
// MaxInt64-1 that exercise the overflow-widening paths. An infinite
// bound is the lattice's "unknown in that direction" and is probed at
// ±(2^31-1), the documented fiction margin (bounds.go): widened
// registers are assumed to hold index-scale values, and the transfer
// functions enforce the flip side by widening to ⊤ whenever an
// infinity mixes with finite bounds too large for that assumption
// (addFictionMag/mulFictionMag). What the lattice guarantees without
// any fiction — and what these tests pin hardest — is that arithmetic
// on all-finite bounds never manufactures a wrong bound: exact
// overflow widens to ⊤ instead of saturating.

// concreteInt mirrors runItem's int semantics for the audited opcodes.
func concreteInt(op kernelir.Op, x, y int64) int64 {
	switch op {
	case kernelir.OpAddI:
		return x + y
	case kernelir.OpSubI:
		return x - y
	case kernelir.OpMulI:
		return x * y
	case kernelir.OpDivI:
		if y == 0 {
			return 0
		}
		return x / y
	case kernelir.OpRemI:
		if y == 0 {
			return 0
		}
		return x % y
	case kernelir.OpMinI:
		return min64(x, y)
	case kernelir.OpMaxI:
		return max64(x, y)
	case kernelir.OpAndI:
		return x & y
	case kernelir.OpOrI:
		return x | y
	case kernelir.OpXorI:
		return x ^ y
	case kernelir.OpShrI:
		return x >> (uint64(y) & 63)
	default:
		panic("concreteInt: unhandled op")
	}
}

var auditedOps = []kernelir.Op{
	kernelir.OpAddI, kernelir.OpSubI, kernelir.OpMulI,
	kernelir.OpDivI, kernelir.OpRemI,
	kernelir.OpMinI, kernelir.OpMaxI,
	kernelir.OpAndI, kernelir.OpOrI, kernelir.OpXorI,
	kernelir.OpShrI,
}

// abstractInt runs the real transfer function (not a reimplementation)
// on two operand intervals.
func abstractInt(op kernelir.Op, a, b ival) ival {
	st := []ival{a, b, {}}
	transfer(st, kernelir.Instr{Op: op, Dst: 2, A: 0, B: 1})
	return st[2]
}

func (v ival) contains(x int64) bool {
	// A sentinel bound is unbounded in its direction, so any concrete
	// value (including MinInt64/MaxInt64 themselves) is inside it.
	above := v.lo == iNegInf || v.lo <= x
	below := v.hi == iInf || x <= v.hi
	return above && below
}

// samples picks concrete probe values from an interval: finite bounds
// exactly (with their neighbors), infinite bounds at the ±(2^31-1)
// fiction margin, plus the small values where sign behavior changes.
func samples(v ival) []int64 {
	const fiction = int64(1)<<31 - 1
	lo, hi := v.lo, v.hi
	if lo == iNegInf {
		lo = -fiction
	}
	if hi == iInf {
		hi = fiction
	}
	// An interval like [MaxInt64-1, +inf] clamps its infinite side below
	// the finite one; collapse to the finite bound.
	if lo > hi {
		if v.hi == iInf {
			hi = lo
		} else {
			lo = hi
		}
	}
	cand := []int64{lo, lo + 1, hi - 1, hi, -1, 0, 1, 2, 63, 64}
	out := cand[:0]
	for _, x := range cand {
		if x < lo || x > hi {
			continue
		}
		dup := false
		for _, y := range out {
			if x == y {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

func intervalsFrom(bounds []int64) []ival {
	var ivs []ival
	for _, lo := range bounds {
		if lo == iInf {
			continue
		}
		for _, hi := range bounds {
			if hi == iNegInf || hi < lo {
				continue
			}
			ivs = append(ivs, ival{lo, hi})
		}
	}
	return ivs
}

func auditSoundness(t *testing.T, ivs []ival) {
	t.Helper()
	for _, op := range auditedOps {
		name := op.String()
		for _, a := range ivs {
			for _, b := range ivs {
				out := abstractInt(op, a, b)
				for _, x := range samples(a) {
					for _, y := range samples(b) {
						got := concreteInt(op, x, y)
						if !out.contains(got) {
							t.Fatalf("%s: [%s] op [%s]: concrete %d op %d = %d outside abstract [%s]",
								name, a, b, x, y, got, out)
						}
					}
				}
			}
		}
	}
}

// TestIvalTransferSoundSmall exhaustively checks every small interval
// pair: all [lo, hi] with bounds in [-4, 4], every concrete operand
// pair inside them. Small ranges catch sign-boundary mistakes (trunc
// division, remainder sign, bitwise on negatives) that sampling at
// extremes would miss.
func TestIvalTransferSoundSmall(t *testing.T) {
	var bounds []int64
	for v := int64(-4); v <= 4; v++ {
		bounds = append(bounds, v)
	}
	ivs := intervalsFrom(bounds)
	for _, op := range auditedOps {
		name := op.String()
		for _, a := range ivs {
			for _, b := range ivs {
				out := abstractInt(op, a, b)
				for x := a.lo; x <= a.hi; x++ {
					for y := b.lo; y <= b.hi; y++ {
						got := concreteInt(op, x, y)
						if !out.contains(got) {
							t.Fatalf("%s: [%s] op [%s]: concrete %d op %d = %d outside abstract [%s]",
								name, a, b, x, y, got, out)
						}
					}
				}
			}
		}
	}
}

// TestIvalTransferSoundExtremes drives the transfer functions with
// bounds at and near the representable extremes (MinInt64+1,
// MaxInt64-1, ±2^40) and with genuine ±inf sentinels. This is the
// regression net for the three audited unsoundness fixes:
//
//   - sub negated a -inf bound with plain `-`, wrapping it onto itself,
//     so v - [-inf, x] got hi = -inf instead of +inf;
//   - add/sub/mul saturated on finite overflow while the interpreter
//     wraps, so [MaxInt64-1, MaxInt64-1] + [2, 2] excluded the wrapped
//     negative result;
//   - constIval let a real MinInt64/MaxInt64 constant masquerade as an
//     infinity.
func TestIvalTransferSoundExtremes(t *testing.T) {
	bounds := []int64{
		iNegInf, math.MinInt64 + 1, math.MinInt64 + 2,
		-(int64(1) << 40), -4097, -64, -3, -1, 0, 1, 2, 63, 64, 4096,
		int64(1) << 40, math.MaxInt64 - 2, math.MaxInt64 - 1, iInf,
	}
	auditSoundness(t, intervalsFrom(bounds))
}

// TestSubNegInfUpperBound pins the sneg fix directly: subtracting an
// interval whose lower bound is -inf must yield an unbounded *upper*
// bound. Before the fix the -inf wrapped in place and the result
// claimed hi = -inf, wrongly proving "negative on every work-item".
func TestSubNegInfUpperBound(t *testing.T) {
	got := ival{5, 5}.sub(ival{iNegInf, 10})
	if got.hi != iInf {
		t.Fatalf("[5,5] - [-inf,10] = [%s], want hi = +inf", got)
	}
	if !got.contains(5 - 0) {
		t.Fatalf("[5,5] - [-inf,10] = [%s] excludes 5", got)
	}
}

// TestConstIvalSentinelGuard pins the constant-vs-sentinel collision:
// ConstI can legitimately materialize MinInt64 (int64 conversion of a
// large negative Imm), which must not be tracked as the -inf sentinel —
// negating it (0 - x) would stay "-inf" instead of becoming unbounded
// above.
func TestConstIvalSentinelGuard(t *testing.T) {
	if got := constIval(math.MinInt64); got != fullIval() {
		t.Fatalf("constIval(MinInt64) = [%s], want top", got)
	}
	if got := constIval(math.MaxInt64); got != fullIval() {
		t.Fatalf("constIval(MaxInt64) = [%s], want top", got)
	}
	if got := constIval(math.MinInt64 + 1); !got.isConst() {
		t.Fatalf("constIval(MinInt64+1) = [%s], want exact constant", got)
	}

	// End to end through transfer: const MinInt64, then 0 - it. The
	// concrete result wraps to MinInt64; the abstract one must contain
	// it.
	huge := -9.3e18 // int64(huge) lands on MinInt64, same as in the interpreter
	st := make([]ival, 3)
	transfer(st, kernelir.Instr{Op: kernelir.OpConstI, Dst: 0, Imm: huge})
	transfer(st, kernelir.Instr{Op: kernelir.OpConstI, Dst: 1, Imm: 0})
	transfer(st, kernelir.Instr{Op: kernelir.OpSubI, Dst: 2, A: 1, B: 0})
	concrete := int64(0) - int64(huge)
	if !st[2].contains(concrete) {
		t.Fatalf("0 - const(MinInt64) abstract [%s] excludes concrete %d", st[2], concrete)
	}
}

// TestFiniteOverflowWidens pins the wrap-vs-saturate fix on all three
// arithmetic ops: a corner product/sum of finite bounds that overflows
// int64 must widen the result to top, because the interpreter's
// wrapped value lies outside any saturated interval.
func TestFiniteOverflowWidens(t *testing.T) {
	big := ival{math.MaxInt64 - 1, math.MaxInt64 - 1}
	two := ival{2, 2}
	if got := big.add(two); got != fullIval() {
		t.Errorf("(MaxInt64-1) + 2: got [%s], want top", got)
	}
	if got := (ival{math.MinInt64 + 1, math.MinInt64 + 1}).sub(two); got != fullIval() {
		t.Errorf("(MinInt64+1) - 2: got [%s], want top", got)
	}
	if got := big.mul(two); got != fullIval() {
		t.Errorf("(MaxInt64-1) * 2: got [%s], want top", got)
	}
	// Infinite bounds still absorb without widening the finite side.
	if got := (ival{0, iInf}).add(ival{5, 5}); got != (ival{5, iInf}) {
		t.Errorf("[0,+inf] + 5: got [%s], want [5,+inf]", got)
	}
}
