package analysis_test

import (
	"testing"

	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/analysis"

	// Importing compile installs the compiled Runner, so the checked
	// oracle below exercises the compiled path the way production does.
	_ "synergy/internal/kernelir/compile"
)

// FuzzAnalyze drives the analyzer with arbitrary instruction streams and
// cross-checks it against checked execution, which runs the real
// interpreter with use-before-def and local-bounds trapping enabled:
//
//   - Analyze must never panic, even on kernels Validate rejects.
//   - Soundness: if ExecuteChecked runs the kernel cleanly, the analyzer
//     must not report any error-severity finding (equivalently: every
//     analyzer error — a definite uninitialized read or an access that is
//     out of bounds on every work-item — must trap under checked
//     execution).
//
// NOTE: ISSUE.md places this fuzz target "in internal/kernelir"; it lives
// here instead because the oracle needs the analysis package, which
// imports kernelir — the reverse placement would be an import cycle.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{byte(kernelir.OpGlobalID), 0, 0, 0, 0,
		byte(kernelir.OpConstF), 1, 0, 0, 3,
		byte(kernelir.OpStoreGF), 0, 0, 1, 0})
	f.Add([]byte{byte(kernelir.OpAddF), 1, 2, 3, 0,
		byte(kernelir.OpStoreGF), 0, 1, 1, 0}) // uninit reads
	f.Add([]byte{byte(kernelir.OpConstI), 0, 0, 0, 6,
		byte(kernelir.OpStoreLF), 0, 0, 1, 0}) // definite local OOB
	f.Add([]byte{byte(kernelir.OpRepeatBegin), 0, 0, 0, 4,
		byte(kernelir.OpGlobalID), 1, 0, 0, 0,
		byte(kernelir.OpLoadLF), 2, 1, 0, 0,
		byte(kernelir.OpRepeatEnd), 0, 0, 0, 0}) // may-OOB inside a loop

	spec, err := hw.SpecByName("v100")
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		const numRegs = 4
		opCount := int(kernelir.OpRepeatEnd) + 1
		k := &kernelir.Kernel{
			Name: "fuzz",
			Params: []kernelir.Param{
				{Name: "f", IsBuffer: true, Type: kernelir.F32, Access: kernelir.ReadWrite},
				{Name: "i", IsBuffer: true, Type: kernelir.I32, Access: kernelir.ReadWrite},
				{Name: "s", Type: kernelir.F32},
			},
			NumIntRegs:   numRegs,
			NumFloatRegs: numRegs,
			LocalF32:     2,
		}
		for i := 0; i+5 <= len(data) && len(k.Body) < 64; i += 5 {
			in := kernelir.Instr{
				Op:  kernelir.Op(int(data[i]) % opCount),
				Dst: int(data[i+1]) % (numRegs + 2),
				A:   int(data[i+2]) % (numRegs + 2),
				B:   int(data[i+3]) % (numRegs + 2),
				C:   int(data[i+3]) % (numRegs + 2),
				Imm: float64(data[i+4]%8) + 1,
				Buf: int(data[i+4]) % 4,
			}
			k.Body = append(k.Body, in)
		}

		// Must be total on arbitrary streams, including invalid ones.
		r := analysis.Analyze(k, analysis.Options{Spec: spec})

		if k.Validate() != nil {
			return
		}
		// Bound the dynamic work (nested repeats multiply).
		work := 0.0
		if tree, err := kernelir.BuildLoopTree(k.Body); err == nil {
			tree.Walk(func(_ int, _ kernelir.Instr, mult float64) { work += mult })
		}
		if work > 1<<16 {
			return
		}
		args := kernelir.Args{
			F32:     map[string][]float32{"f": {1, 2, 3, 4, 5, 6, 7, 8}},
			I32:     map[string][]int32{"i": {8, 7, 6, 5, 4, 3, 2, 1}},
			ScalarF: map[string]float64{"s": 1.5},
		}
		err := kernelir.ExecuteChecked(k, args, 4)
		if err == nil && !r.Clean() {
			t.Fatalf("analyzer reported errors for a kernel checked execution runs cleanly:\n%s\n%s",
				r.Render(), k.Disassemble())
		}
	})
}
