package analysis

import (
	"math"
	"math/bits"
	"strconv"

	"synergy/internal/kernelir"
)

// The bounds pass runs a forward constant/range propagation on the int
// register file (index arithmetic lives there; floats are not tracked)
// over an interval lattice, then judges every memory index:
//
//   - a local access whose whole interval lies outside [0, LocalF32) is
//     an error — it traps under kernelir.ExecuteChecked on every
//     work-item, because every instruction of a valid kernel executes;
//   - a local access that only may leave the window is a warning: the
//     interpreter clamps, so this is defined (if suspicious) behavior;
//   - a global access whose whole interval is negative is a warning.
//     Clamped global indices are an intentional idiom (boundary-clamped
//     stencils read in[gid-4]), so possible negatives stay silent and
//     even definite ones never rank as errors.
//
// Loop bodies are iterated to a small fixpoint: a few join rounds catch
// loop-invariant state, then registers still unstable are widened to ⊤
// before one final reporting pass. Widening only ever grows intervals,
// so the abstraction stays sound.

// iInf and iNegInf are the interval infinities. An infinite bound means
// "unknown in that direction" and absorbs in arithmetic; a computation
// on finite bounds that would overflow int64 instead widens the whole
// interval to ⊤ (the interpreter wraps on overflow, so a saturated bound
// would wrongly exclude the wrapped values — see ival.add).
//
// The sentinels coincide with MinInt64/MaxInt64, so those two values
// cannot be represented as finite bounds; constIval maps them to ⊤
// rather than letting a genuine constant masquerade as an infinity.
const (
	iInf    = int64(math.MaxInt64)
	iNegInf = int64(math.MinInt64)
)

// ival is an inclusive integer interval [lo, hi].
type ival struct{ lo, hi int64 }

func fullIval() ival            { return ival{iNegInf, iInf} }
func (v ival) isConst() bool    { return v.lo == v.hi && v.lo != iInf && v.lo != iNegInf }
func (v ival) nonNeg() bool     { return v.lo >= 0 }
func (v ival) join(w ival) ival { return ival{min64(v.lo, w.lo), max64(v.hi, w.hi)} }

// constIval tracks an exact constant, except for the two values the
// lattice reserves as ±inf sentinels — those become ⊤ so that later
// transfer functions never mistake a real MinInt64/MaxInt64 for an
// unbounded interval (negating a "constant" -inf, say).
func constIval(v int64) ival {
	if v == iInf || v == iNegInf {
		return fullIval()
	}
	return ival{v, v}
}

// sneg negates one bound, mapping the infinities onto each other. Plain
// negation would wrap iNegInf back onto itself, silently turning a
// "-inf" lower bound into a "-inf" *upper* bound when subtracting — the
// unsound corner the enumeration tests in bounds_enum_test.go pin.
// ok is false for the one finite bound whose negation lands on a
// sentinel (-(MinInt64+1) == MaxInt64); the caller must widen then.
func sneg(x int64) (int64, bool) {
	switch x {
	case iInf:
		return iNegInf, true
	case iNegInf:
		return iInf, true
	case iNegInf + 1:
		return iInf, false
	default:
		return -x, true // safe: x != MinInt64 (that value is the sentinel)
	}
}

// sadd adds two bounds. ok is false when two *finite* bounds overflowed
// int64: the result is then saturated, but the caller must widen to ⊤
// because the interpreter wraps and the wrapped values lie outside any
// saturated interval. Infinite operands absorb exactly (ok stays true).
func sadd(a, b int64) (int64, bool) {
	switch {
	case a == iInf || b == iInf:
		return iInf, true
	case a == iNegInf || b == iNegInf:
		return iNegInf, true
	case b > 0 && a > iInf-b:
		return iInf, false
	case b < 0 && a < iNegInf-b:
		return iNegInf, false
	default:
		s := a + b
		if s == iInf || s == iNegInf {
			// A finite sum landing exactly on a sentinel is unrepresentable
			// as a finite bound; treat it as overflow so the caller widens.
			return s, false
		}
		return s, true
	}
}

// smul multiplies two bounds with 0·∞ = 0 (correct for interval corner
// products). As with sadd, ok is false when finite bounds overflowed —
// conservatively judged with float arithmetic well inside int64 range.
func smul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	aInf := a == iInf || a == iNegInf
	bInf := b == iInf || b == iNegInf
	if aInf || bInf {
		if (a > 0) == (b > 0) {
			return iInf, true
		}
		return iNegInf, true
	}
	// Exact when both magnitudes are small; otherwise judge overflow with
	// float arithmetic, treating anything past 1e18 as overflowing (the
	// float product is approximate, so the margin below 2^63 is needed).
	if abs64(a) < 1<<31 && abs64(b) < 1<<31 {
		return a * b, true
	}
	if p := float64(a) * float64(b); p > 1e18 {
		return iInf, false
	} else if p < -1e18 {
		return iNegInf, false
	}
	return a * b, true
}

// The no-overflow fiction: an infinite bound stands for "unknown in
// that direction", and the analysis assumes such unknown values are
// index-scale — magnitude below 2^31, far from the int64 extremes — so
// arithmetic can absorb an infinity instead of widening everything it
// touches. The assumption breaks when the *finite* bounds of the same
// operation are huge: then even fiction-scale unknowns push a sum or
// product past the wrap line, and because the interpreter wraps, the
// result set is no longer the interval the corners suggest (wrapped
// interior points escape it). These margins say how big a finite bound
// may be before an infinity-absorbing add/sub (resp. mul) must widen to
// ⊤: 2^62 + 2^31 and 2^31 · 2^31 both stay inside int64.
const (
	addFictionMag = int64(1) << 62
	mulFictionMag = int64(1) << 31
)

// hasInf reports whether either bound is an infinity sentinel.
func (v ival) hasInf() bool { return v.lo == iNegInf || v.hi == iInf }

// magBelow reports whether every finite bound of v has magnitude < m.
func (v ival) magBelow(m int64) bool {
	ok := func(x int64) bool {
		return x == iInf || x == iNegInf || (-m < x && x < m)
	}
	return ok(v.lo) && ok(v.hi)
}

// fictionHolds gates infinity absorption for one binary op: with no
// sentinel involved the corner arithmetic is checked exactly, otherwise
// all finite bounds must sit below the op's fiction margin.
func fictionHolds(v, w ival, m int64) bool {
	if !v.hasInf() && !w.hasInf() {
		return true
	}
	return v.magBelow(m) && w.magBelow(m)
}

// add, sub and mul widen to ⊤ whenever a corner computed from finite
// bounds overflows exactly, or an infinite bound mixes with finite
// bounds too large for the no-overflow fiction: the interpreter's
// arithmetic wraps, so the true result set is not an interval around
// the saturated corners.
func (v ival) add(w ival) ival {
	if !fictionHolds(v, w, addFictionMag) {
		return fullIval()
	}
	lo, ok1 := sadd(v.lo, w.lo)
	hi, ok2 := sadd(v.hi, w.hi)
	if !ok1 || !ok2 {
		return fullIval()
	}
	return ival{lo, hi}
}

// sub is addition of the negated interval; sneg keeps the infinities on
// the right side so v - [-inf, x] gets a +inf upper bound, not a -inf.
func (v ival) sub(w ival) ival {
	if !fictionHolds(v, w, addFictionMag) {
		return fullIval()
	}
	nhi, ok3 := sneg(w.hi)
	nlo, ok4 := sneg(w.lo)
	lo, ok1 := sadd(v.lo, nhi)
	hi, ok2 := sadd(v.hi, nlo)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return fullIval()
	}
	return ival{lo, hi}
}

func (v ival) mul(w ival) ival {
	if !fictionHolds(v, w, mulFictionMag) {
		return fullIval()
	}
	corners := [4][2]int64{{v.lo, w.lo}, {v.lo, w.hi}, {v.hi, w.lo}, {v.hi, w.hi}}
	var out ival
	for i, c := range corners {
		x, ok := smul(c[0], c[1])
		if !ok {
			return fullIval()
		}
		if i == 0 {
			out = ival{x, x}
		} else {
			out.lo, out.hi = min64(out.lo, x), max64(out.hi, x)
		}
	}
	return out
}

// transfer applies one instruction's effect to the int-register state.
// Every case must over-approximate the interpreter's semantics in
// interp.go (including div/rem-by-zero yielding 0).
func transfer(st []ival, in kernelir.Instr) {
	c := kernelir.InfoOf(in.Op)
	if !c.HasDst || c.DstFile != kernelir.I32 {
		return
	}
	a, b := ival{}, ival{}
	if c.HasA && c.AFile == kernelir.I32 {
		a = st[in.A]
	}
	if c.HasB && c.BFile == kernelir.I32 {
		b = st[in.B]
	}
	var out ival
	switch in.Op {
	case kernelir.OpConstI:
		out = constIval(int64(in.Imm))
	case kernelir.OpMoveI:
		out = a
	case kernelir.OpGlobalID, kernelir.OpGlobalIDX, kernelir.OpGlobalIDY:
		out = ival{0, iInf}
	case kernelir.OpAddI:
		out = a.add(b)
	case kernelir.OpSubI:
		out = a.sub(b)
	case kernelir.OpMulI:
		out = a.mul(b)
	case kernelir.OpDivI:
		out = divIval(a, b)
	case kernelir.OpRemI:
		out = remIval(a, b)
	case kernelir.OpMinI:
		out = ival{min64(a.lo, b.lo), min64(a.hi, b.hi)}
	case kernelir.OpMaxI:
		out = ival{max64(a.lo, b.lo), max64(a.hi, b.hi)}
	case kernelir.OpCmpLTI, kernelir.OpCmpEQI, kernelir.OpCmpLTF:
		out = ival{0, 1}
	case kernelir.OpSelI:
		out = a.join(b)
	case kernelir.OpAndI:
		out = andIval(a, b)
	case kernelir.OpOrI, kernelir.OpXorI:
		out = orXorIval(a, b)
	case kernelir.OpShrI:
		if a.nonNeg() {
			out = ival{0, a.hi} // shifting a non-negative right shrinks it
		} else {
			out = fullIval()
		}
	default:
		// param.i, cvt.fi, ld.g.i, shl.i: unknown.
		out = fullIval()
	}
	st[in.Dst] = out
}

// divIval handles trunc division; the interpreter defines x/0 = 0.
func divIval(a, b ival) ival {
	if b.isConst() && b.lo != 0 {
		c := b.lo
		lo, hi := sdivBound(a.lo, c), sdivBound(a.hi, c)
		if c < 0 {
			lo, hi = hi, lo
		}
		return ival{lo, hi}
	}
	return fullIval()
}

func sdivBound(x, c int64) int64 {
	if x == iInf {
		if c > 0 {
			return iInf
		}
		return iNegInf
	}
	if x == iNegInf {
		if c > 0 {
			return iNegInf
		}
		return iInf
	}
	return x / c
}

// remIval: for a positive constant divisor c, the result lies in
// [0, c-1] for non-negative dividends and [-(c-1), c-1] otherwise (Go's
// % keeps the dividend's sign); x%0 = 0 in the interpreter.
func remIval(a, b ival) ival {
	if b.isConst() && b.lo > 0 {
		c := b.lo
		if a.nonNeg() {
			return ival{0, c - 1}
		}
		return ival{-(c - 1), c - 1}
	}
	return fullIval()
}

// andIval: x & y with a non-negative operand is bounded by it.
func andIval(a, b ival) ival {
	switch {
	case a.nonNeg() && b.nonNeg():
		return ival{0, min64(a.hi, b.hi)}
	case a.nonNeg():
		return ival{0, a.hi}
	case b.nonNeg():
		return ival{0, b.hi}
	default:
		return fullIval()
	}
}

// orXorIval: for non-negative operands the result stays below the next
// power of two covering both.
func orXorIval(a, b ival) ival {
	if !a.nonNeg() || !b.nonNeg() {
		return fullIval()
	}
	m := max64(a.hi, b.hi)
	if m >= 1<<62 {
		return ival{0, iInf}
	}
	return ival{0, int64(1)<<bits.Len64(uint64(m)) - 1}
}

// boundsPass runs the propagation and reports index findings.
func (a *analyzer) boundsPass() {
	st := make([]ival, a.k.NumIntRegs)
	// Registers are zero-initialized by the interpreter, so [0,0] is the
	// exact entry state, not an assumption.
	a.boundsScan(0, len(a.k.Body), st, true)
}

// boundsScan interprets body span [lo, hi) abstractly, mutating st.
// Diagnostics are emitted only when report is set (the fixpoint
// iterations run silently; one final pass reports).
func (a *analyzer) boundsScan(lo, hi int, st []ival, report bool) {
	k := a.k
	for pc := lo; pc < hi; pc++ {
		in := k.Body[pc]
		switch in.Op {
		case kernelir.OpRepeatBegin:
			end := a.tree.Match(pc)
			if skippableTrip(in.Imm) {
				// Dead body: state is unchanged, nothing inside runs.
				pc = end
				continue
			}
			a.boundsFix(pc+1, end, st)
			a.boundsScan(pc+1, end, st, report)
			pc = end
		case kernelir.OpRepeatEnd:
			// Unreachable: begins jump over their block.
		default:
			if report {
				a.checkIndex(pc, in, st)
			}
			transfer(st, in)
		}
	}
}

// boundsFix brings st to a loop-invariant entry state for body [lo, hi):
// a few silent join rounds for quickly-stabilizing loops, then widening
// of every register the body writes to ⊤.
func (a *analyzer) boundsFix(lo, hi int, st []ival) {
	const rounds = 3
	for i := 0; i < rounds; i++ {
		exit := append([]ival(nil), st...)
		a.boundsScan(lo, hi, exit, false)
		changed := false
		for r := range st {
			j := st[r].join(exit[r])
			if j != st[r] {
				st[r] = j
				changed = true
			}
		}
		if !changed {
			return
		}
	}
	for pc := lo; pc < hi; pc++ {
		in := a.k.Body[pc]
		if c := kernelir.InfoOf(in.Op); c.HasDst && c.DstFile == kernelir.I32 {
			st[in.Dst] = fullIval()
		}
	}
}

// checkIndex judges one instruction's memory index against st.
func (a *analyzer) checkIndex(pc int, in kernelir.Instr, st []ival) {
	c := kernelir.InfoOf(in.Op)
	switch {
	case c.IsLocal:
		idx := st[in.A]
		n := int64(a.k.LocalF32)
		if idx.hi < 0 || idx.lo >= n {
			a.diag("bounds", Error, pc,
				"local access index i%d = [%s] is outside [0, %d) on every work-item",
				in.A, idx, n)
		} else if idx.lo < 0 || idx.hi >= n {
			a.diag("bounds", Warning, pc,
				"local access index i%d = [%s] may leave [0, %d) (interpreter clamps)",
				in.A, idx, n)
		}
	case c.IsMemOp:
		if idx := st[in.A]; idx.hi < 0 {
			a.diag("bounds", Warning, pc,
				"global access index i%d = [%s] is negative on every work-item (clamped to 0)",
				in.A, idx)
		}
	}
}

// String renders the interval with ±inf bounds symbolically.
func (v ival) String() string {
	f := func(x int64) string {
		switch x {
		case iInf:
			return "+inf"
		case iNegInf:
			return "-inf"
		default:
			return strconv.FormatInt(x, 10)
		}
	}
	return f(v.lo) + ", " + f(v.hi)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}
