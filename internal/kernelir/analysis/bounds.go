package analysis

import (
	"math"
	"math/bits"
	"strconv"

	"synergy/internal/kernelir"
)

// The bounds pass runs a forward constant/range propagation on the int
// register file (index arithmetic lives there; floats are not tracked)
// over an interval lattice, then judges every memory index:
//
//   - a local access whose whole interval lies outside [0, LocalF32) is
//     an error — it traps under kernelir.ExecuteChecked on every
//     work-item, because every instruction of a valid kernel executes;
//   - a local access that only may leave the window is a warning: the
//     interpreter clamps, so this is defined (if suspicious) behavior;
//   - a global access whose whole interval is negative is a warning.
//     Clamped global indices are an intentional idiom (boundary-clamped
//     stencils read in[gid-4]), so possible negatives stay silent and
//     even definite ones never rank as errors.
//
// Loop bodies are iterated to a small fixpoint: a few join rounds catch
// loop-invariant state, then registers still unstable are widened to ⊤
// before one final reporting pass. Widening only ever grows intervals,
// so the abstraction stays sound.

// iInf and iNegInf are the interval infinities. Arithmetic saturates at
// them (see sadd/smul); any computation that could overflow int64 range
// widens to them rather than wrapping, keeping the domain sound.
const (
	iInf    = int64(math.MaxInt64)
	iNegInf = int64(math.MinInt64)
)

// ival is an inclusive integer interval [lo, hi].
type ival struct{ lo, hi int64 }

func fullIval() ival            { return ival{iNegInf, iInf} }
func constIval(v int64) ival    { return ival{v, v} }
func (v ival) isConst() bool    { return v.lo == v.hi && v.lo != iInf && v.lo != iNegInf }
func (v ival) nonNeg() bool     { return v.lo >= 0 }
func (v ival) join(w ival) ival { return ival{min64(v.lo, w.lo), max64(v.hi, w.hi)} }

// sadd is saturating addition on interval bounds.
func sadd(a, b int64) int64 {
	switch {
	case a == iInf || b == iInf:
		return iInf
	case a == iNegInf || b == iNegInf:
		return iNegInf
	case b > 0 && a > iInf-b:
		return iInf
	case b < 0 && a < iNegInf-b:
		return iNegInf
	default:
		return a + b
	}
}

// smul is saturating multiplication on interval bounds, with 0·∞ = 0
// (correct for interval corner products).
func smul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	aInf := a == iInf || a == iNegInf
	bInf := b == iInf || b == iNegInf
	if aInf || bInf {
		if (a > 0) == (b > 0) {
			return iInf
		}
		return iNegInf
	}
	// Exact when both magnitudes are small; otherwise bound with float
	// arithmetic and saturate well inside int64 range.
	if abs64(a) < 1<<31 && abs64(b) < 1<<31 {
		return a * b
	}
	if p := float64(a) * float64(b); p > 1e18 {
		return iInf
	} else if p < -1e18 {
		return iNegInf
	}
	return a * b
}

func (v ival) add(w ival) ival { return ival{sadd(v.lo, w.lo), sadd(v.hi, w.hi)} }
func (v ival) sub(w ival) ival { return ival{sadd(v.lo, -w.hi), sadd(v.hi, -w.lo)} }

func (v ival) mul(w ival) ival {
	c := [4]int64{smul(v.lo, w.lo), smul(v.lo, w.hi), smul(v.hi, w.lo), smul(v.hi, w.hi)}
	out := ival{c[0], c[0]}
	for _, x := range c[1:] {
		out.lo, out.hi = min64(out.lo, x), max64(out.hi, x)
	}
	return out
}

// transfer applies one instruction's effect to the int-register state.
// Every case must over-approximate the interpreter's semantics in
// interp.go (including div/rem-by-zero yielding 0).
func transfer(st []ival, in kernelir.Instr) {
	c := kernelir.InfoOf(in.Op)
	if !c.HasDst || c.DstFile != kernelir.I32 {
		return
	}
	a, b := ival{}, ival{}
	if c.HasA && c.AFile == kernelir.I32 {
		a = st[in.A]
	}
	if c.HasB && c.BFile == kernelir.I32 {
		b = st[in.B]
	}
	var out ival
	switch in.Op {
	case kernelir.OpConstI:
		out = constIval(int64(in.Imm))
	case kernelir.OpMoveI:
		out = a
	case kernelir.OpGlobalID, kernelir.OpGlobalIDX, kernelir.OpGlobalIDY:
		out = ival{0, iInf}
	case kernelir.OpAddI:
		out = a.add(b)
	case kernelir.OpSubI:
		out = a.sub(b)
	case kernelir.OpMulI:
		out = a.mul(b)
	case kernelir.OpDivI:
		out = divIval(a, b)
	case kernelir.OpRemI:
		out = remIval(a, b)
	case kernelir.OpMinI:
		out = ival{min64(a.lo, b.lo), min64(a.hi, b.hi)}
	case kernelir.OpMaxI:
		out = ival{max64(a.lo, b.lo), max64(a.hi, b.hi)}
	case kernelir.OpCmpLTI, kernelir.OpCmpEQI, kernelir.OpCmpLTF:
		out = ival{0, 1}
	case kernelir.OpSelI:
		out = a.join(b)
	case kernelir.OpAndI:
		out = andIval(a, b)
	case kernelir.OpOrI, kernelir.OpXorI:
		out = orXorIval(a, b)
	case kernelir.OpShrI:
		if a.nonNeg() {
			out = ival{0, a.hi} // shifting a non-negative right shrinks it
		} else {
			out = fullIval()
		}
	default:
		// param.i, cvt.fi, ld.g.i, shl.i: unknown.
		out = fullIval()
	}
	st[in.Dst] = out
}

// divIval handles trunc division; the interpreter defines x/0 = 0.
func divIval(a, b ival) ival {
	if b.isConst() && b.lo != 0 {
		c := b.lo
		lo, hi := sdivBound(a.lo, c), sdivBound(a.hi, c)
		if c < 0 {
			lo, hi = hi, lo
		}
		return ival{lo, hi}
	}
	return fullIval()
}

func sdivBound(x, c int64) int64 {
	if x == iInf {
		if c > 0 {
			return iInf
		}
		return iNegInf
	}
	if x == iNegInf {
		if c > 0 {
			return iNegInf
		}
		return iInf
	}
	return x / c
}

// remIval: for a positive constant divisor c, the result lies in
// [0, c-1] for non-negative dividends and [-(c-1), c-1] otherwise (Go's
// % keeps the dividend's sign); x%0 = 0 in the interpreter.
func remIval(a, b ival) ival {
	if b.isConst() && b.lo > 0 {
		c := b.lo
		if a.nonNeg() {
			return ival{0, c - 1}
		}
		return ival{-(c - 1), c - 1}
	}
	return fullIval()
}

// andIval: x & y with a non-negative operand is bounded by it.
func andIval(a, b ival) ival {
	switch {
	case a.nonNeg() && b.nonNeg():
		return ival{0, min64(a.hi, b.hi)}
	case a.nonNeg():
		return ival{0, a.hi}
	case b.nonNeg():
		return ival{0, b.hi}
	default:
		return fullIval()
	}
}

// orXorIval: for non-negative operands the result stays below the next
// power of two covering both.
func orXorIval(a, b ival) ival {
	if !a.nonNeg() || !b.nonNeg() {
		return fullIval()
	}
	m := max64(a.hi, b.hi)
	if m >= 1<<62 {
		return ival{0, iInf}
	}
	return ival{0, int64(1)<<bits.Len64(uint64(m)) - 1}
}

// boundsPass runs the propagation and reports index findings.
func (a *analyzer) boundsPass() {
	st := make([]ival, a.k.NumIntRegs)
	// Registers are zero-initialized by the interpreter, so [0,0] is the
	// exact entry state, not an assumption.
	a.boundsScan(0, len(a.k.Body), st, true)
}

// boundsScan interprets body span [lo, hi) abstractly, mutating st.
// Diagnostics are emitted only when report is set (the fixpoint
// iterations run silently; one final pass reports).
func (a *analyzer) boundsScan(lo, hi int, st []ival, report bool) {
	k := a.k
	for pc := lo; pc < hi; pc++ {
		in := k.Body[pc]
		switch in.Op {
		case kernelir.OpRepeatBegin:
			end := a.tree.Match(pc)
			if skippableTrip(in.Imm) {
				// Dead body: state is unchanged, nothing inside runs.
				pc = end
				continue
			}
			a.boundsFix(pc+1, end, st)
			a.boundsScan(pc+1, end, st, report)
			pc = end
		case kernelir.OpRepeatEnd:
			// Unreachable: begins jump over their block.
		default:
			if report {
				a.checkIndex(pc, in, st)
			}
			transfer(st, in)
		}
	}
}

// boundsFix brings st to a loop-invariant entry state for body [lo, hi):
// a few silent join rounds for quickly-stabilizing loops, then widening
// of every register the body writes to ⊤.
func (a *analyzer) boundsFix(lo, hi int, st []ival) {
	const rounds = 3
	for i := 0; i < rounds; i++ {
		exit := append([]ival(nil), st...)
		a.boundsScan(lo, hi, exit, false)
		changed := false
		for r := range st {
			j := st[r].join(exit[r])
			if j != st[r] {
				st[r] = j
				changed = true
			}
		}
		if !changed {
			return
		}
	}
	for pc := lo; pc < hi; pc++ {
		in := a.k.Body[pc]
		if c := kernelir.InfoOf(in.Op); c.HasDst && c.DstFile == kernelir.I32 {
			st[in.Dst] = fullIval()
		}
	}
}

// checkIndex judges one instruction's memory index against st.
func (a *analyzer) checkIndex(pc int, in kernelir.Instr, st []ival) {
	c := kernelir.InfoOf(in.Op)
	switch {
	case c.IsLocal:
		idx := st[in.A]
		n := int64(a.k.LocalF32)
		if idx.hi < 0 || idx.lo >= n {
			a.diag("bounds", Error, pc,
				"local access index i%d = [%s] is outside [0, %d) on every work-item",
				in.A, idx, n)
		} else if idx.lo < 0 || idx.hi >= n {
			a.diag("bounds", Warning, pc,
				"local access index i%d = [%s] may leave [0, %d) (interpreter clamps)",
				in.A, idx, n)
		}
	case c.IsMemOp:
		if idx := st[in.A]; idx.hi < 0 {
			a.diag("bounds", Warning, pc,
				"global access index i%d = [%s] is negative on every work-item (clamped to 0)",
				in.A, idx)
		}
	}
}

// String renders the interval with ±inf bounds symbolically.
func (v ival) String() string {
	f := func(x int64) string {
		switch x {
		case iInf:
			return "+inf"
		case iNegInf:
			return "-inf"
		default:
			return strconv.FormatInt(x, 10)
		}
	}
	return f(v.lo) + ", " + f(v.hi)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}
