package analysis_test

import (
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/kernelir/analysis"
)

// BenchmarkAnalyze runs the full pass pipeline (uninit, dead, bounds,
// roofline) over the largest suite kernel.
func BenchmarkAnalyze(b *testing.B) {
	spec, err := hw.SpecByName("v100")
	if err != nil {
		b.Fatal(err)
	}
	bm, err := benchsuite.ByName("median")
	if err != nil {
		b.Fatal(err)
	}
	opts := analysis.Options{Spec: spec}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := analysis.Analyze(bm.Kernel, opts); !r.Clean() {
			b.Fatal("median should be error-free")
		}
	}
}

// BenchmarkAnalyzeSuite lints the whole 23-kernel suite per iteration —
// the synergy-lint hot path.
func BenchmarkAnalyzeSuite(b *testing.B) {
	spec, err := hw.SpecByName("v100")
	if err != nil {
		b.Fatal(err)
	}
	suite := benchsuite.All()
	opts := analysis.Options{Spec: spec}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bm := range suite {
			analysis.Analyze(bm.Kernel, opts)
		}
	}
}
