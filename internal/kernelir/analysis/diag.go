package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity ranks diagnostics. Errors are findings the checked execution
// mode (kernelir.ExecuteChecked) would trap on — uninitialized reads and
// provably out-of-bounds local accesses — plus structural Validate
// failures; warnings are likely-but-not-certain defects (dead stores,
// unused parameters, possibly-out-of-range indices); infos are neutral
// facts such as the roofline label.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = Error
	case "warning":
		*s = Warning
	case "info":
		*s = Info
	default:
		return fmt.Errorf("analysis: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one analyzer finding, anchored to a body instruction.
type Diagnostic struct {
	// Pass names the pass that produced the finding ("validate",
	// "uninit", "dead-store", "dead-code", "unused-param", "bounds",
	// "roofline").
	Pass     string   `json:"pass"`
	Severity Severity `json:"severity"`
	// PC is the body instruction index, or -1 for whole-kernel findings.
	PC int `json:"pc"`
	// Line is the disassembled instruction at PC ("" when PC is -1).
	Line    string `json:"line,omitempty"`
	Message string `json:"message"`
}

// String renders the diagnostic as one line of text.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]", d.Severity, d.Pass)
	if d.PC >= 0 {
		fmt.Fprintf(&b, " pc %d", d.PC)
	}
	if d.Line != "" {
		fmt.Fprintf(&b, " `%s`", d.Line)
	}
	fmt.Fprintf(&b, ": %s", d.Message)
	return b.String()
}

// Report is the result of analyzing one kernel.
type Report struct {
	Kernel      string       `json:"kernel"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Roofline is present when the roofline pass ran (a device spec was
	// supplied and the kernel validated).
	Roofline *Roofline `json:"roofline,omitempty"`
}

// Counts tallies diagnostics by severity.
func (r *Report) Counts() (errors, warnings, infos int) {
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case Error:
			errors++
		case Warning:
			warnings++
		default:
			infos++
		}
	}
	return
}

// Clean reports whether the kernel has no error-severity findings.
func (r *Report) Clean() bool {
	e, _, _ := r.Counts()
	return e == 0
}

// Quiet reports whether the kernel has no findings above Info.
func (r *Report) Quiet() bool {
	e, w, _ := r.Counts()
	return e == 0 && w == 0
}

// Render formats the report as human-readable text, one header line for
// the kernel and one line per diagnostic.
func (r *Report) Render() string {
	var b strings.Builder
	e, w, _ := r.Counts()
	switch {
	case e == 0 && w == 0:
		fmt.Fprintf(&b, "%s: clean", r.Kernel)
	case e == 0:
		fmt.Fprintf(&b, "%s: %d warning(s)", r.Kernel, w)
	default:
		fmt.Fprintf(&b, "%s: %d error(s), %d warning(s)", r.Kernel, e, w)
	}
	if r.Roofline != nil {
		fmt.Fprintf(&b, " [%s]", r.Roofline.Summary())
	}
	b.WriteByte('\n')
	for _, d := range r.Diagnostics {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// sortDiagnostics orders findings by pc (whole-kernel first), then pass,
// then message — a stable order for golden tests and diffable output.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].PC != ds[j].PC {
			return ds[i].PC < ds[j].PC
		}
		if ds[i].Pass != ds[j].Pass {
			return ds[i].Pass < ds[j].Pass
		}
		return ds[i].Message < ds[j].Message
	})
}
