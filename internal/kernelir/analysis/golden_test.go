package analysis_test

import (
	"encoding/json"
	"strings"
	"testing"

	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/analysis"
)

func mustAssemble(t *testing.T, text string) *kernelir.Kernel {
	t.Helper()
	k, err := kernelir.Assemble(text)
	if err != nil {
		t.Fatalf("Assemble: %v\n%s", err, text)
	}
	return k
}

// diagKey reduces a diagnostic to the fields golden tests pin.
type diagKey struct {
	Pass string
	Sev  analysis.Severity
	PC   int
}

func keysOf(r *analysis.Report) []diagKey {
	out := make([]diagKey, len(r.Diagnostics))
	for i, d := range r.Diagnostics {
		out[i] = diagKey{d.Pass, d.Severity, d.PC}
	}
	return out
}

func wantKeys(t *testing.T, r *analysis.Report, want []diagKey) {
	t.Helper()
	got := keysOf(r)
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %v, want %v\nreport:\n%s", got, want, r.Render())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diagnostic %d = %v, want %v\nreport:\n%s", i, got[i], want[i], r.Render())
		}
	}
}

func TestGoldenUninitRead(t *testing.T) {
	t.Parallel()
	k := mustAssemble(t, `kernel uninit(write f32[out]) {
  f1 = add.f f0, f2
  i0 = gid
  st.g.f out[i0], f1
}
`)
	r := analysis.Analyze(k, analysis.Options{})
	wantKeys(t, r, []diagKey{
		{"uninit", analysis.Error, 0}, // f0
		{"uninit", analysis.Error, 0}, // f2
	})
	d := r.Diagnostics[0]
	if d.Line != "f1 = add.f f0, f2" {
		t.Errorf("diagnostic line = %q", d.Line)
	}
	if !strings.Contains(d.Message, "f0") || !strings.Contains(d.Message, "before any write") {
		t.Errorf("diagnostic message = %q", d.Message)
	}
	if r.Clean() {
		t.Error("report with uninitialized reads counts as clean")
	}
}

func TestGoldenDeadStore(t *testing.T) {
	t.Parallel()
	k := mustAssemble(t, `kernel dead(read f32[in], write f32[out]) {
  i0 = gid
  f0 = ld.g.f in[i0]
  f1 = mul.f f0, f0
  f2 = add.f f0, f0
  st.g.f out[i0], f2
}
`)
	r := analysis.Analyze(k, analysis.Options{})
	wantKeys(t, r, []diagKey{{"dead-store", analysis.Warning, 2}})
	d := r.Diagnostics[0]
	if d.Line != "f1 = mul.f f0, f0" || !strings.Contains(d.Message, "f1") {
		t.Errorf("diagnostic = %+v", d)
	}
	if !r.Clean() || r.Quiet() {
		t.Errorf("dead store should be a warning: clean=%v quiet=%v", r.Clean(), r.Quiet())
	}
}

func TestGoldenUnusedParam(t *testing.T) {
	t.Parallel()
	k := mustAssemble(t, `kernel unused(read f32[in], write f32[out], i32 n) {
  i0 = gid
  f0 = ld.g.f in[i0]
  st.g.f out[i0], f0
}
`)
	r := analysis.Analyze(k, analysis.Options{})
	wantKeys(t, r, []diagKey{{"unused-param", analysis.Warning, -1}})
	if !strings.Contains(r.Diagnostics[0].Message, `"n"`) {
		t.Errorf("message = %q", r.Diagnostics[0].Message)
	}
}

func TestGoldenLocalOOB(t *testing.T) {
	t.Parallel()
	k := mustAssemble(t, `kernel oob(write f32[out]) {
  local f32[4]
  i0 = const.i 6
  f0 = const.f 1
  st.l.f local[i0], f0
  f1 = ld.l.f local[i0]
  i1 = gid
  st.g.f out[i1], f1
}
`)
	r := analysis.Analyze(k, analysis.Options{})
	wantKeys(t, r, []diagKey{
		{"bounds", analysis.Error, 2},
		{"bounds", analysis.Error, 3},
	})
	d := r.Diagnostics[0]
	if d.Line != "st.l.f local[i0], f0" {
		t.Errorf("line = %q", d.Line)
	}
	if !strings.Contains(d.Message, "[6, 6]") || !strings.Contains(d.Message, "outside [0, 4)") {
		t.Errorf("message = %q", d.Message)
	}
}

func TestGoldenLocalMaybeOOBIsWarning(t *testing.T) {
	t.Parallel()
	// gid is unbounded, so the access may clamp — defined behavior, so a
	// warning rather than an error.
	k := mustAssemble(t, `kernel maybe(write f32[out]) {
  local f32[4]
  i0 = gid
  f0 = const.f 1
  st.l.f local[i0], f0
  f1 = ld.l.f local[i0]
  st.g.f out[i0], f1
}
`)
	r := analysis.Analyze(k, analysis.Options{})
	wantKeys(t, r, []diagKey{
		{"bounds", analysis.Warning, 2},
		{"bounds", analysis.Warning, 3},
	})
}

// TestGoldenBoundsProofs pins the interval transfer functions that prove
// common index idioms in bounds: modulo, bit-mask and min/max clamping
// all produce quiet reports.
func TestGoldenBoundsProofs(t *testing.T) {
	t.Parallel()
	for _, src := range []string{
		`kernel mod(write f32[out]) {
  local f32[4]
  i0 = gid
  i1 = const.i 4
  i2 = rem.i i0, i1
  f0 = const.f 1
  st.l.f local[i2], f0
  f1 = ld.l.f local[i2]
  st.g.f out[i0], f1
}
`,
		`kernel mask(write f32[out]) {
  local f32[4]
  i0 = gid
  i1 = const.i 3
  i2 = and.i i0, i1
  f0 = const.f 1
  st.l.f local[i2], f0
  f1 = ld.l.f local[i2]
  st.g.f out[i0], f1
}
`,
		`kernel clamp(write f32[out]) {
  local f32[4]
  i0 = gid
  i1 = const.i 3
  i2 = min.i i0, i1
  i3 = const.i 0
  i2 = max.i i2, i3
  f0 = const.f 1
  st.l.f local[i2], f0
  f1 = ld.l.f local[i2]
  st.g.f out[i0], f1
}
`,
	} {
		k := mustAssemble(t, src)
		if r := analysis.Analyze(k, analysis.Options{}); !r.Quiet() {
			t.Errorf("%s: expected quiet report, got:\n%s", k.Name, r.Render())
		}
	}
}

// TestGoldenLoopCarriedIndex pins the loop fixpoint: an index that
// advances every iteration is widened, so a local access through it is a
// may-warning (not silently accepted, not a definite error).
func TestGoldenLoopCarriedIndex(t *testing.T) {
	t.Parallel()
	k := mustAssemble(t, `kernel walkidx(write f32[out]) {
  local f32[8]
  i0 = const.i 0
  i1 = const.i 1
  f0 = const.f 2
  repeat 16 {
    st.l.f local[i0], f0
    i0 = add.i i0, i1
  }
  i2 = gid
  st.g.f out[i2], f0
}
`)
	r := analysis.Analyze(k, analysis.Options{})
	wantKeys(t, r, []diagKey{{"bounds", analysis.Warning, 4}})
}

func TestGoldenZeroTripBody(t *testing.T) {
	t.Parallel()
	// Assemble rejects repeat 0, so build the kernel directly: the
	// analyzer must stay total, flag the Validate failure and the dead
	// body, and must NOT let the dead def of f0 reach the store.
	k := &kernelir.Kernel{
		Name:         "zerotrip",
		Params:       []kernelir.Param{{Name: "out", IsBuffer: true, Type: kernelir.F32, Access: kernelir.Write}},
		NumIntRegs:   1,
		NumFloatRegs: 1,
		Body: []kernelir.Instr{
			{Op: kernelir.OpRepeatBegin, Imm: 0},         // 0
			{Op: kernelir.OpConstF, Dst: 0, Imm: 1},      // 1: dead def
			{Op: kernelir.OpRepeatEnd},                   // 2
			{Op: kernelir.OpGlobalID, Dst: 0},            // 3
			{Op: kernelir.OpStoreGF, A: 0, B: 0, Buf: 0}, // 4: reads f0 -> uninit
		},
	}
	r := analysis.Analyze(k, analysis.Options{})
	wantKeys(t, r, []diagKey{
		{"validate", analysis.Error, -1},
		{"dead-code", analysis.Warning, 0},
		{"uninit", analysis.Error, 4},
	})
}

func TestGoldenRooflineLabels(t *testing.T) {
	t.Parallel()
	spec, err := hw.SpecByName("v100")
	if err != nil {
		t.Fatal(err)
	}
	hot := mustAssemble(t, `kernel hot(read f32[in], write f32[out]) {
  i0 = gid
  f0 = ld.g.f in[i0]
  repeat 64 {
    f0 = mul.f f0, f0
    f0 = add.f f0, f0
  }
  st.g.f out[i0], f0
}
`)
	stream := mustAssemble(t, `kernel stream(read f32[in], write f32[out]) {
  i0 = gid
  f0 = ld.g.f in[i0]
  st.g.f out[i0], f0
}
`)
	rHot := analysis.Analyze(hot, analysis.Options{Spec: spec})
	if rHot.Roofline == nil || rHot.Roofline.Label != analysis.ComputeBound {
		t.Fatalf("hot roofline = %+v, want compute-bound", rHot.Roofline)
	}
	if rHot.Roofline.KneeMHz != spec.MaxCoreMHz() {
		t.Errorf("hot knee = %d, want fmax %d", rHot.Roofline.KneeMHz, spec.MaxCoreMHz())
	}
	rStream := analysis.Analyze(stream, analysis.Options{Spec: spec})
	if rStream.Roofline == nil || rStream.Roofline.Label != analysis.MemoryBound {
		t.Fatalf("stream roofline = %+v, want memory-bound", rStream.Roofline)
	}
	if rStream.Roofline.KneeMHz != spec.MinCoreMHz() {
		t.Errorf("stream knee = %d, want fmin %d", rStream.Roofline.KneeMHz, spec.MinCoreMHz())
	}
	if rStream.Roofline.Alpha > 0.1 {
		t.Errorf("stream alpha = %v, want ~0", rStream.Roofline.Alpha)
	}
	// The roofline verdict also appears as an info diagnostic.
	found := false
	for _, d := range rHot.Diagnostics {
		if d.Pass == "roofline" && d.Severity == analysis.Info &&
			strings.Contains(d.Message, "compute-bound") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing roofline info diagnostic:\n%s", rHot.Render())
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	t.Parallel()
	k := mustAssemble(t, `kernel uninit(write f32[out]) {
  f1 = add.f f0, f2
  i0 = gid
  st.g.f out[i0], f1
}
`)
	spec, err := hw.SpecByName("v100")
	if err != nil {
		t.Fatal(err)
	}
	r := analysis.Analyze(k, analysis.Options{Spec: spec})
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"severity": "error"`) &&
		!strings.Contains(string(blob), `"severity":"error"`) {
		t.Errorf("JSON lacks named severity: %s", blob)
	}
	var back analysis.Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(back.Diagnostics) != len(r.Diagnostics) || back.Kernel != r.Kernel {
		t.Fatalf("round trip changed report: %+v vs %+v", back, r)
	}
	for i := range back.Diagnostics {
		if back.Diagnostics[i] != r.Diagnostics[i] {
			t.Fatalf("diagnostic %d changed: %+v vs %+v", i, back.Diagnostics[i], r.Diagnostics[i])
		}
	}
}
