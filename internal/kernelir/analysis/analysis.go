// Package analysis implements a multi-pass dataflow static analyzer for
// the kernel IR, plus the static roofline classifier behind
// cmd/synergy-lint. All passes share one loop-tree normalization of the
// Repeat structure (kernelir.BuildLoopTree — the same one the
// interpreter and the feature-extraction pass use), which is what makes
// them exact rather than conservative for this IR: the only control flow
// is statically-bounded counted loops, so the first iteration of every
// loop body executes in program order and every instruction's execution
// count is a static product of trip counts. See DESIGN.md §9.
package analysis

import (
	"fmt"

	"synergy/internal/hw"
	"synergy/internal/kernelir"
)

// Options configures Analyze.
type Options struct {
	// Spec enables the roofline pass against the given device; nil skips
	// it.
	Spec *hw.Spec
}

// Analyze runs the full pass pipeline over the kernel and returns a
// report. It never panics on structurally sound input and is total: a
// kernel failing kernelir.Validate still gets the dataflow passes (with
// the failure surfaced as an error diagnostic) as long as its register
// and parameter indices are in range.
func Analyze(k *kernelir.Kernel, opts Options) *Report {
	r := &Report{Kernel: k.Name}
	a := &analyzer{k: k, report: r}

	valid := true
	if err := k.Validate(); err != nil {
		valid = false
		r.Diagnostics = append(r.Diagnostics, Diagnostic{
			Pass: "validate", Severity: Error, PC: -1, Message: err.Error(),
		})
	}
	if !a.structurallySound() {
		// Out-of-range register or parameter indices: the dataflow
		// passes cannot index their state safely, and Validate has
		// already reported the defect.
		return r
	}
	tree, err := kernelir.BuildLoopTree(k.Body)
	if err != nil {
		if valid {
			// Unreachable when Validate passed; keep the report total.
			r.Diagnostics = append(r.Diagnostics, Diagnostic{
				Pass: "validate", Severity: Error, PC: -1, Message: err.Error(),
			})
		}
		return r
	}
	a.tree = tree

	a.uninitPass()
	a.deadPass()
	a.boundsPass()
	if valid && opts.Spec != nil {
		if rf, err := StaticRoofline(k, opts.Spec); err == nil {
			r.Roofline = rf
			a.diag("roofline", Info, -1, rf.Summary())
		}
	}
	sortDiagnostics(r.Diagnostics)
	return r
}

// analyzer carries the shared state of one Analyze call.
type analyzer struct {
	k      *kernelir.Kernel
	tree   *kernelir.LoopTree
	report *Report
}

func (a *analyzer) diag(pass string, sev Severity, pc int, format string, args ...any) {
	d := Diagnostic{Pass: pass, Severity: sev, PC: pc, Message: fmt.Sprintf(format, args...)}
	if pc >= 0 {
		d.Line = a.k.InstrString(pc)
	}
	a.report.Diagnostics = append(a.report.Diagnostics, d)
}

// structurallySound reports whether every register and parameter index
// is in range, the precondition for running the dataflow passes on a
// kernel Validate rejected for other reasons.
func (a *analyzer) structurallySound() bool {
	k := a.k
	reg := func(file kernelir.ScalarType, r int) bool {
		limit := k.NumIntRegs
		if file == kernelir.F32 {
			limit = k.NumFloatRegs
		}
		return r >= 0 && r < limit
	}
	for _, in := range k.Body {
		c := kernelir.InfoOf(in.Op)
		if c.HasDst && !reg(c.DstFile, in.Dst) {
			return false
		}
		if c.HasA && !reg(c.AFile, in.A) {
			return false
		}
		if c.HasB && !reg(c.BFile, in.B) {
			return false
		}
		if c.HasC && !reg(c.CFile, in.C) {
			return false
		}
		if c.UsesBuf && (in.Buf < 0 || in.Buf >= len(k.Params)) {
			return false
		}
	}
	return true
}

// skippableTrip reports whether a Repeat body never executes. Validate
// rejects such kernels, but the passes stay total over them: the body is
// dead code, so defs inside must not count as reaching and reads inside
// must not be reported.
func skippableTrip(trip float64) bool { return trip < 1 }

// uninitPass is the reaching-definitions pass over both register files.
// Because the first iteration of every (non-zero-trip) Repeat body runs
// in program order, a single linear scan computes exact reaching
// definitions: a register read before any program-order write is read
// uninitialized on the very first work-item, so the finding is an error,
// not a may-warning. Zero-trip bodies are skipped conservatively (their
// defs do not reach, their reads do not execute).
func (a *analyzer) uninitPass() {
	k := a.k
	defI := make([]bool, k.NumIntRegs)
	defF := make([]bool, k.NumFloatRegs)
	defined := func(file kernelir.ScalarType, r int) *bool {
		if file == kernelir.I32 {
			return &defI[r]
		}
		return &defF[r]
	}
	for pc := 0; pc < len(k.Body); pc++ {
		in := k.Body[pc]
		if in.Op == kernelir.OpRepeatBegin && skippableTrip(in.Imm) {
			pc = a.tree.Match(pc)
			continue
		}
		c := kernelir.InfoOf(in.Op)
		for _, u := range [...]struct {
			has  bool
			file kernelir.ScalarType
			reg  int
		}{
			{c.HasA, c.AFile, in.A},
			{c.HasB, c.BFile, in.B},
			{c.HasC, c.CFile, in.C},
		} {
			if u.has && !*defined(u.file, u.reg) {
				a.diag("uninit", Error, pc, "read of register %s%d before any write",
					regPrefix(u.file), u.reg)
				// Report each register once: the first bad read is the
				// actionable one.
				*defined(u.file, u.reg) = true
			}
		}
		if c.HasDst {
			*defined(c.DstFile, in.Dst) = true
		}
	}
}

// deadPass detects dead stores (registers written but never read), dead
// code (zero-trip and empty Repeat bodies) and unused parameters. The
// "never read anywhere" formulation is flow-insensitive on purpose: a
// per-definition liveness would also flag the final writes of reduction
// networks (e.g. the discarded max lane of a sorting-network exchange),
// which are idiomatic in real kernels, while a register no instruction
// ever reads is unambiguously dead.
func (a *analyzer) deadPass() {
	k := a.k
	readI := make([]bool, k.NumIntRegs)
	readF := make([]bool, k.NumFloatRegs)
	paramRefs := make([]int, len(k.Params))
	for _, in := range k.Body {
		c := kernelir.InfoOf(in.Op)
		if c.HasA {
			markRead(readI, readF, c.AFile, in.A)
		}
		if c.HasB {
			markRead(readI, readF, c.BFile, in.B)
		}
		if c.HasC {
			markRead(readI, readF, c.CFile, in.C)
		}
		if c.UsesBuf {
			paramRefs[in.Buf]++
		}
	}
	// One diagnostic per dead register, at its first write.
	seenI := make([]bool, k.NumIntRegs)
	seenF := make([]bool, k.NumFloatRegs)
	for pc, in := range k.Body {
		c := kernelir.InfoOf(in.Op)
		if !c.HasDst {
			continue
		}
		read, seen := readF, seenF
		if c.DstFile == kernelir.I32 {
			read, seen = readI, seenI
		}
		if !read[in.Dst] && !seen[in.Dst] {
			seen[in.Dst] = true
			a.diag("dead-store", Warning, pc, "register %s%d is written but never read",
				regPrefix(c.DstFile), in.Dst)
		}
	}
	for i, p := range k.Params {
		if paramRefs[i] == 0 {
			a.diag("unused-param", Warning, -1, "parameter %q is never referenced", p.Name)
		}
	}
	a.deadCode(a.tree.Root)
}

// deadCode flags Repeat bodies that cannot execute (zero or negative
// trip counts) or contain no instructions.
func (a *analyzer) deadCode(n *kernelir.LoopNode) {
	for _, c := range n.Children {
		if skippableTrip(c.Trip) {
			a.diag("dead-code", Warning, c.Begin,
				"repeat body never executes (trip count %v)", c.Trip)
			continue // everything inside is already dead
		}
		if c.End == c.Begin+1 {
			a.diag("dead-code", Warning, c.Begin, "empty repeat body")
		}
		a.deadCode(c)
	}
}

func markRead(readI, readF []bool, file kernelir.ScalarType, r int) {
	if file == kernelir.I32 {
		readI[r] = true
	} else {
		readF[r] = true
	}
}

func regPrefix(t kernelir.ScalarType) string {
	if t == kernelir.I32 {
		return "i"
	}
	return "f"
}
