package kernelir

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Args binds kernel parameters (by name) for execution.
type Args struct {
	F32     map[string][]float32
	I32     map[string][]int32
	ScalarI map[string]int64
	ScalarF map[string]float64
}

// Bound holds positionally-resolved parameter bindings: index i of each
// slice corresponds to k.Params[i]. It is the environment handed to a
// Runner, so compiled executors and the interpreter read parameters
// through the exact same resolution.
type Bound struct {
	BufF [][]float32
	BufI [][]int32
	ScaI []int64
	ScaF []float64
}

// Bind resolves named Args against the kernel's positional parameter
// list. All executors (interpreted and compiled) share this single
// binding step, so binding errors are byte-identical across them.
func Bind(k *Kernel, a Args) (*Bound, error) {
	n := len(k.Params)
	b := &Bound{
		BufF: make([][]float32, n),
		BufI: make([][]int32, n),
		ScaI: make([]int64, n),
		ScaF: make([]float64, n),
	}
	for i, p := range k.Params {
		switch {
		case p.IsBuffer && p.Type == F32:
			buf, ok := a.F32[p.Name]
			if !ok {
				return nil, fmt.Errorf("kernelir: %s: missing f32 buffer %q", k.Name, p.Name)
			}
			if len(buf) == 0 {
				return nil, fmt.Errorf("kernelir: %s: empty buffer %q", k.Name, p.Name)
			}
			b.BufF[i] = buf
		case p.IsBuffer && p.Type == I32:
			buf, ok := a.I32[p.Name]
			if !ok {
				return nil, fmt.Errorf("kernelir: %s: missing i32 buffer %q", k.Name, p.Name)
			}
			if len(buf) == 0 {
				return nil, fmt.Errorf("kernelir: %s: empty buffer %q", k.Name, p.Name)
			}
			b.BufI[i] = buf
		case p.Type == I32:
			v, ok := a.ScalarI[p.Name]
			if !ok {
				return nil, fmt.Errorf("kernelir: %s: missing int scalar %q", k.Name, p.Name)
			}
			b.ScaI[i] = v
		default:
			v, ok := a.ScalarF[p.Name]
			if !ok {
				return nil, fmt.Errorf("kernelir: %s: missing float scalar %q", k.Name, p.Name)
			}
			b.ScaF[i] = v
		}
	}
	return b, nil
}

func clampIdx(i int64, n int) int {
	if i < 0 {
		return 0
	}
	if i >= int64(n) {
		return n - 1
	}
	return int(i)
}

// prepare runs the shared front half of every execution: validation, the
// item-count check and parameter binding. Keeping it in one place
// guarantees interpreted and compiled runs fail with identical errors.
func prepare(k *Kernel, a Args, items int) (*Bound, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if items <= 0 {
		return nil, fmt.Errorf("kernelir: %s: non-positive item count %d", k.Name, items)
	}
	return Bind(k, a)
}

// Execute runs the kernel for work-items [0, items), in parallel across
// the host CPUs. Work-items must write disjoint locations (as in the
// benchmark suite); the executors do not arbitrate data races.
// GlobalIDX equals the linear id and GlobalIDY is zero (1-D launch).
func Execute(k *Kernel, a Args, items int) error {
	return ExecuteGrid(k, a, items, 0)
}

// ExecuteGrid runs the kernel over a 2-D range: items work-items with
// row width nx, so GlobalIDX = id %% nx and GlobalIDY = id / nx. A width
// of zero (or >= items) degenerates to the 1-D semantics.
//
// Execution is dispatched to the installed Runner (normally the
// closure-threaded compiler in kernelir/compile) and falls back to the
// reference interpreter when none is installed. Both paths are bit-exact
// by contract; see SetRunner.
func ExecuteGrid(k *Kernel, a Args, items, nx int) error {
	env, err := prepare(k, a, items)
	if err != nil {
		return err
	}
	if r := ActiveRunner(); r != nil {
		return r.RunGrid(k, env, items, nx)
	}
	return interpretBound(k, env, items, nx, 0)
}

// Interpret runs the kernel on the reference tree-walking interpreter,
// bypassing any installed Runner. It is the differential-testing oracle
// compiled execution is checked against.
func Interpret(k *Kernel, a Args, items int) error {
	return InterpretGrid(k, a, items, 0)
}

// InterpretGrid is Interpret over a 2-D range (see ExecuteGrid).
func InterpretGrid(k *Kernel, a Args, items, nx int) error {
	return InterpretGridWorkers(k, a, items, nx, 0)
}

// InterpretGridWorkers is InterpretGrid with an explicit worker count
// (0 means GOMAXPROCS). workers=1 makes execution fully deterministic
// even for kernels whose work-items race on clamped stores, which is
// what the differential fuzzers compare under.
func InterpretGridWorkers(k *Kernel, a Args, items, nx, workers int) error {
	env, err := prepare(k, a, items)
	if err != nil {
		return err
	}
	return interpretBound(k, env, items, nx, workers)
}

// interpretBound is the interpreter's execution core over a resolved
// environment. workers <= 0 selects GOMAXPROCS. The worker chunking here
// is the normative work-item partition: compiled executors replicate it
// exactly so racy kernels resolve collisions with the same worker
// geometry.
func interpretBound(k *Kernel, env *Bound, items, nx, workers int) error {
	// The loop tree is the shared structured-control normalization; the
	// interpreter only needs its begin/end matching.
	tree, err := BuildLoopTree(k.Body)
	if err != nil {
		return err
	}
	match := tree.match

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	chunk := (items + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > items {
			hi = items
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ints := make([]int64, k.NumIntRegs)
			floats := make([]float64, k.NumFloatRegs)
			var local []float64
			if k.LocalF32 > 0 {
				local = make([]float64, k.LocalF32)
			}
			for gid := lo; gid < hi; gid++ {
				runItem(k, env, match, int64(gid), int64(nx), ints, floats, local)
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// runItem interprets the kernel body for one work-item.
func runItem(k *Kernel, env *Bound, match []int, gid, nx int64, ints []int64, floats, local []float64) {
	body := k.Body
	// Remaining trip counts for active repeat blocks, indexed by the pc
	// of the begin instruction.
	var trips map[int]int64
	for pc := 0; pc < len(body); pc++ {
		in := &body[pc]
		switch in.Op {
		case OpConstI:
			ints[in.Dst] = int64(in.Imm)
		case OpConstF:
			floats[in.Dst] = in.Imm
		case OpMoveI:
			ints[in.Dst] = ints[in.A]
		case OpMoveF:
			floats[in.Dst] = floats[in.A]
		case OpGlobalID:
			ints[in.Dst] = gid
		case OpGlobalIDX:
			if nx > 0 {
				ints[in.Dst] = gid % nx
			} else {
				ints[in.Dst] = gid
			}
		case OpGlobalIDY:
			if nx > 0 {
				ints[in.Dst] = gid / nx
			} else {
				ints[in.Dst] = 0
			}
		case OpParamI:
			ints[in.Dst] = env.ScaI[in.Buf]
		case OpParamF:
			floats[in.Dst] = env.ScaF[in.Buf]
		case OpCvtIF:
			floats[in.Dst] = float64(ints[in.A])
		case OpCvtFI:
			ints[in.Dst] = int64(floats[in.A])
		case OpAddI:
			ints[in.Dst] = ints[in.A] + ints[in.B]
		case OpSubI:
			ints[in.Dst] = ints[in.A] - ints[in.B]
		case OpMulI:
			ints[in.Dst] = ints[in.A] * ints[in.B]
		case OpDivI:
			if ints[in.B] == 0 {
				ints[in.Dst] = 0
			} else {
				ints[in.Dst] = ints[in.A] / ints[in.B]
			}
		case OpRemI:
			if ints[in.B] == 0 {
				ints[in.Dst] = 0
			} else {
				ints[in.Dst] = ints[in.A] % ints[in.B]
			}
		case OpMinI:
			ints[in.Dst] = min64(ints[in.A], ints[in.B])
		case OpMaxI:
			ints[in.Dst] = max64(ints[in.A], ints[in.B])
		case OpCmpLTI:
			ints[in.Dst] = b2i(ints[in.A] < ints[in.B])
		case OpCmpEQI:
			ints[in.Dst] = b2i(ints[in.A] == ints[in.B])
		case OpSelI:
			if ints[in.C] != 0 {
				ints[in.Dst] = ints[in.A]
			} else {
				ints[in.Dst] = ints[in.B]
			}
		case OpAndI:
			ints[in.Dst] = ints[in.A] & ints[in.B]
		case OpOrI:
			ints[in.Dst] = ints[in.A] | ints[in.B]
		case OpXorI:
			ints[in.Dst] = ints[in.A] ^ ints[in.B]
		case OpShlI:
			ints[in.Dst] = ints[in.A] << (uint64(ints[in.B]) & 63)
		case OpShrI:
			ints[in.Dst] = ints[in.A] >> (uint64(ints[in.B]) & 63)
		case OpAddF:
			floats[in.Dst] = floats[in.A] + floats[in.B]
		case OpSubF:
			floats[in.Dst] = floats[in.A] - floats[in.B]
		case OpMulF:
			floats[in.Dst] = floats[in.A] * floats[in.B]
		case OpDivF:
			floats[in.Dst] = floats[in.A] / floats[in.B]
		case OpMinF:
			floats[in.Dst] = math.Min(floats[in.A], floats[in.B])
		case OpMaxF:
			floats[in.Dst] = math.Max(floats[in.A], floats[in.B])
		case OpAbsF:
			floats[in.Dst] = math.Abs(floats[in.A])
		case OpNegF:
			floats[in.Dst] = -floats[in.A]
		case OpCmpLTF:
			ints[in.Dst] = b2i(floats[in.A] < floats[in.B])
		case OpSelF:
			if ints[in.C] != 0 {
				floats[in.Dst] = floats[in.A]
			} else {
				floats[in.Dst] = floats[in.B]
			}
		case OpSqrtF:
			floats[in.Dst] = math.Sqrt(floats[in.A])
		case OpExpF:
			floats[in.Dst] = math.Exp(floats[in.A])
		case OpLogF:
			floats[in.Dst] = math.Log(floats[in.A])
		case OpSinF:
			floats[in.Dst] = math.Sin(floats[in.A])
		case OpCosF:
			floats[in.Dst] = math.Cos(floats[in.A])
		case OpPowF:
			floats[in.Dst] = math.Pow(floats[in.A], floats[in.B])
		case OpErfF:
			floats[in.Dst] = math.Erf(floats[in.A])
		case OpLoadGF:
			buf := env.BufF[in.Buf]
			floats[in.Dst] = float64(buf[clampIdx(ints[in.A], len(buf))])
		case OpStoreGF:
			buf := env.BufF[in.Buf]
			buf[clampIdx(ints[in.A], len(buf))] = float32(floats[in.B])
		case OpLoadGI:
			buf := env.BufI[in.Buf]
			ints[in.Dst] = int64(buf[clampIdx(ints[in.A], len(buf))])
		case OpStoreGI:
			buf := env.BufI[in.Buf]
			buf[clampIdx(ints[in.A], len(buf))] = int32(ints[in.B])
		case OpLoadLF:
			floats[in.Dst] = local[clampIdx(ints[in.A], len(local))]
		case OpStoreLF:
			local[clampIdx(ints[in.A], len(local))] = floats[in.B]
		case OpRepeatBegin:
			if trips == nil {
				trips = make(map[int]int64, 4)
			}
			trips[pc] = int64(in.Imm)
		case OpRepeatEnd:
			begin := match[pc]
			trips[begin]--
			if trips[begin] > 0 {
				pc = begin // loop back (pc++ lands on first body instr)
			}
		default:
			panic(fmt.Sprintf("kernelir: unhandled opcode %v", in.Op))
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
