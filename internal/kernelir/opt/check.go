package opt

import (
	"fmt"
	"math"

	"synergy/internal/kernelir"
)

// checkPass is the static half of translation validation: it runs after
// every productive pass application and rejects the rewrite unless it
// can re-establish, from the before/after bodies alone, that the pass
// stayed inside its licensed envelope. Checks:
//
//  1. the rewritten kernel still Validates and builds a loop tree;
//  2. the memory-operation sequence — every load, store and
//     local-scratch access, in textual order, with its opcode, buffer,
//     immediate bits and enclosing Repeat trip path — is identical to
//     the ORIGINAL kernel's (not merely the previous pass's), so no
//     pipeline of passes can compound into a reordered, dropped or
//     cross-buffer-retargeted access; additionally, each individual
//     pass except copyprop must leave every memory instruction
//     bit-identical (copyprop may substitute operand registers, one
//     logged rewrite per substitution);
//  3. pass-specific shape rules tie each Rewrite to a transformation of
//     the kind the pass is allowed to make (in-place fold, move
//     insertion with an earlier source definition, operand-only
//     substitution, multiset-preserving motion, pure-only deletion).
//
// Any violation fails the whole optimization: Optimize returns the
// original kernel with Result.Err set.
func checkPass(k *kernelir.Kernel, orig, before, after []kernelir.Instr, passName string, rws []Rewrite) error {
	nk := *k
	nk.Body = after
	if err := nk.Validate(); err != nil {
		return fmt.Errorf("%s: rewritten body fails validation: %w", passName, err)
	}
	if _, err := kernelir.BuildLoopTree(after); err != nil {
		return fmt.Errorf("%s: rewritten body has no loop tree: %w", passName, err)
	}
	if err := sameMemSequence(orig, after); err != nil {
		return fmt.Errorf("%s: %w", passName, err)
	}
	if err := memOpsFrozen(before, after, passName); err != nil {
		return fmt.Errorf("%s: %w", passName, err)
	}
	switch passName {
	case "constfold", "algebra":
		return checkInPlace(before, after, passName, rws)
	case "cse":
		return checkCSE(before, after, rws)
	case "copyprop":
		return checkCopyProp(before, after, rws)
	case "licm":
		return checkLICM(before, after, rws)
	case "dce":
		return checkDCE(before, after, rws)
	}
	return fmt.Errorf("unknown pass %q", passName)
}

// memEvent is one memory or local-scratch access with its loop context.
// Operand registers are deliberately excluded: copyprop may rename them
// (under its own logged-substitution rule), but the access's opcode,
// buffer, immediate and trip context are pipeline-wide invariants.
type memEvent struct {
	op   kernelir.Op
	buf  int
	imm  uint64
	path string // "/"-joined enclosing Repeat trip counts
}

func memSequence(body []kernelir.Instr) ([]memEvent, error) {
	tree, err := kernelir.BuildLoopTree(body)
	if err != nil {
		return nil, err
	}
	var evs []memEvent
	var scan func(lo, hi int, path string)
	scan = func(lo, hi int, path string) {
		for pc := lo; pc < hi; pc++ {
			in := body[pc]
			if in.Op == kernelir.OpRepeatBegin {
				end := tree.Match(pc)
				scan(pc+1, end, fmt.Sprintf("%s/%d", path, int64(in.Imm)))
				pc = end
				continue
			}
			c := kernelir.InfoOf(in.Op)
			if !c.IsMemOp && !c.IsLocal {
				continue
			}
			evs = append(evs, memEvent{
				op: in.Op, buf: in.Buf, imm: math.Float64bits(in.Imm), path: path,
			})
		}
	}
	scan(0, len(body), "")
	return evs, nil
}

// sameMemSequence checks invariant (2): identical access sequences with
// identical loop-trip context.
func sameMemSequence(orig, after []kernelir.Instr) error {
	oe, err := memSequence(orig)
	if err != nil {
		return err
	}
	ae, err := memSequence(after)
	if err != nil {
		return err
	}
	if len(oe) != len(ae) {
		return fmt.Errorf("memory-op count changed: %d -> %d", len(oe), len(ae))
	}
	for i := range oe {
		if oe[i] != ae[i] {
			return fmt.Errorf("memory op %d changed: %+v -> %+v", i, oe[i], ae[i])
		}
	}
	return nil
}

// memOpsFrozen enforces the per-pass freeze: the i-th memory/local
// instruction of after must equal the i-th of before — bit-identical
// for every pass except copyprop, which may substitute operand
// registers but not the opcode, destination, buffer or immediate.
func memOpsFrozen(before, after []kernelir.Instr, passName string) error {
	memOps := func(body []kernelir.Instr) []kernelir.Instr {
		var out []kernelir.Instr
		for _, in := range body {
			if c := kernelir.InfoOf(in.Op); c.IsMemOp || c.IsLocal {
				out = append(out, in)
			}
		}
		return out
	}
	bm, am := memOps(before), memOps(after)
	if len(bm) != len(am) {
		return fmt.Errorf("memory-op count changed in one pass: %d -> %d", len(bm), len(am))
	}
	for i := range bm {
		if passName == "copyprop" {
			if bm[i].Op != am[i].Op || bm[i].Dst != am[i].Dst || bm[i].Buf != am[i].Buf ||
				math.Float64bits(bm[i].Imm) != math.Float64bits(am[i].Imm) {
				return fmt.Errorf("memory op %d changed beyond operand substitution: %+v -> %+v", i, bm[i], am[i])
			}
			continue
		}
		if !instrEq(bm[i], am[i]) {
			return fmt.Errorf("memory op %d modified: %+v -> %+v", i, bm[i], am[i])
		}
	}
	return nil
}

func instrEq(a, b kernelir.Instr) bool {
	return a.Op == b.Op && a.Dst == b.Dst && a.A == b.A && a.B == b.B &&
		a.C == b.C && a.Buf == b.Buf &&
		math.Float64bits(a.Imm) == math.Float64bits(b.Imm)
}

// checkInPlace covers constfold and algebra: same length, and every
// instruction either is untouched or appears in the rewrite log with its
// destination register (and register file) preserved.
func checkInPlace(before, after []kernelir.Instr, passName string, rws []Rewrite) error {
	if len(before) != len(after) {
		return fmt.Errorf("%s: body length changed: %d -> %d", passName, len(before), len(after))
	}
	touched := make(map[int]bool, len(rws))
	for _, rw := range rws {
		if rw.PC < 0 || rw.PC >= len(before) {
			return fmt.Errorf("%s: rewrite pc %d out of range", passName, rw.PC)
		}
		touched[rw.PC] = true
	}
	for pc := range before {
		if !touched[pc] {
			if !instrEq(before[pc], after[pc]) {
				return fmt.Errorf("%s: pc %d changed without a logged rewrite", passName, pc)
			}
			continue
		}
		bf, bd, bok := writeOf(before[pc])
		af, ad, aok := writeOf(after[pc])
		if bok != aok || (bok && (bf != af || bd != ad)) {
			return fmt.Errorf("%s: pc %d rewrite changed the destination register", passName, pc)
		}
		if !pureOp(before[pc]) || !pureOp(after[pc]) {
			return fmt.Errorf("%s: pc %d rewrite touched a non-pure instruction", passName, pc)
		}
	}
	return nil
}

// checkCSE: in-place rules plus every rewritten pc must now be a move
// whose source register has a definition earlier in the body.
func checkCSE(before, after []kernelir.Instr, rws []Rewrite) error {
	if err := checkInPlace(before, after, "cse", rws); err != nil {
		return err
	}
	for _, rw := range rws {
		in := after[rw.PC]
		if in.Op != kernelir.OpMoveI && in.Op != kernelir.OpMoveF {
			return fmt.Errorf("cse: pc %d rewrite is %s, not a move", rw.PC, in.Op)
		}
		file := kernelir.InfoOf(in.Op).AFile
		found := false
		for q := 0; q < rw.PC && !found; q++ {
			if f, r, ok := writeOf(after[q]); ok && f == file && r == in.A {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("cse: pc %d move source r%d has no earlier definition", rw.PC, in.A)
		}
	}
	return nil
}

// checkCopyProp: operand-register substitution only — same length, and
// every instruction keeps its opcode, destination, immediate and buffer.
// Untouched instructions must be bit-identical; touched ones may differ
// only in A/B/C.
func checkCopyProp(before, after []kernelir.Instr, rws []Rewrite) error {
	if len(before) != len(after) {
		return fmt.Errorf("copyprop: body length changed: %d -> %d", len(before), len(after))
	}
	touched := make(map[int]bool, len(rws))
	for _, rw := range rws {
		if rw.PC < 0 || rw.PC >= len(before) {
			return fmt.Errorf("copyprop: rewrite pc %d out of range", rw.PC)
		}
		touched[rw.PC] = true
	}
	for pc := range before {
		if !touched[pc] {
			if !instrEq(before[pc], after[pc]) {
				return fmt.Errorf("copyprop: pc %d changed without a logged rewrite", pc)
			}
			continue
		}
		b, a := before[pc], after[pc]
		if b.Op != a.Op || b.Dst != a.Dst || b.Buf != a.Buf ||
			math.Float64bits(b.Imm) != math.Float64bits(a.Imm) {
			return fmt.Errorf("copyprop: pc %d changed beyond operand substitution: %+v -> %+v", pc, b, a)
		}
	}
	return nil
}

type instrKey struct {
	op               kernelir.Op
	dst, a, b, c, bf int
	imm              uint64
}

func keyOf(in kernelir.Instr) instrKey {
	return instrKey{op: in.Op, dst: in.Dst, a: in.A, b: in.B, c: in.C,
		bf: in.Buf, imm: math.Float64bits(in.Imm)}
}

// checkLICM: code motion only — the instruction multiset is unchanged.
func checkLICM(before, after []kernelir.Instr, rws []Rewrite) error {
	if len(before) != len(after) {
		return fmt.Errorf("licm: body length changed: %d -> %d", len(before), len(after))
	}
	counts := make(map[instrKey]int, len(before))
	for _, in := range before {
		counts[keyOf(in)]++
	}
	for _, in := range after {
		counts[keyOf(in)]--
	}
	for key, n := range counts {
		if n != 0 {
			return fmt.Errorf("licm: instruction multiset changed at %+v (delta %d)", key, n)
		}
	}
	return nil
}

// checkDCE: deletions only — after is a subsequence of before, the
// length difference matches the rewrite log, and every dropped
// instruction is pure or a Repeat marker (an emptied block).
func checkDCE(before, after []kernelir.Instr, rws []Rewrite) error {
	if len(after)+len(rws) != len(before) {
		return fmt.Errorf("dce: %d deletions logged but body went %d -> %d",
			len(rws), len(before), len(after))
	}
	ai := 0
	for _, in := range before {
		if ai < len(after) && instrEq(in, after[ai]) {
			ai++
			continue
		}
		if !pureOp(in) && in.Op != kernelir.OpRepeatBegin && in.Op != kernelir.OpRepeatEnd {
			return fmt.Errorf("dce: deleted non-pure instruction %s", in.Op)
		}
	}
	if ai != len(after) {
		return fmt.Errorf("dce: rewritten body is not a subsequence of its input")
	}
	return nil
}
