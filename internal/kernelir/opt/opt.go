// Package opt is an analysis-driven IR-to-IR optimizer for kernelir
// kernels: a fixpoint pipeline of classic transforming static analyses
// — constant propagation + folding, algebraic simplification and
// strength reduction, available-expressions CSE, loop-invariant code
// motion over BuildLoopTree, and liveness-driven dead-code/dead-store
// elimination (the same facts the analysis package reports as warnings,
// promoted to deletions).
//
// The contract is translation validation, mirroring the compile
// package's oracle discipline but enforced online: every pass
// application is followed by a static checker (Validate, loop-tree
// construction, exact preservation of the memory-operation sequence
// with its loop context, and per-rewrite shape rules), and any checker
// failure makes Optimize fail safe — the original kernel is returned
// unchanged with Result.Err set. The interpreter remains the semantic
// oracle in tests: optimized kernels must produce byte-identical
// buffers and identical trap behavior (TestOptSuiteOracle,
// FuzzOptVsInterp).
//
// Semantics preserved bit-exactly, by construction:
//
//   - registers are NOT assumed zero on entry: per-worker register
//     files carry over across work-items, so constant propagation
//     starts from ⊤ and liveness treats every register the body reads
//     before writing as live-in (and hence live across the item
//     boundary);
//   - float arithmetic identities (x+0, x*1, ...) are never rewritten —
//     only full constant folding, which performs the identical Go
//     operation the interpreter would — so -0.0, NaN payloads and
//     rounding are untouched; folded NaN/Inf constants round-trip
//     through the disassembler;
//   - integer constants fold only when the result survives the
//     float64 Instr.Imm encoding round-trip;
//   - div/rem with a (possibly) zero divisor are never folded and never
//     hoisted, keeping the interpreter's x/0 = 0 path in place;
//   - memory and local-scratch operations are never deleted, reordered
//     or moved across loop boundaries, so colliding stores keep their
//     order and ExecuteChecked traps fire identically.
//
// Optimize is deterministic and idempotent (passes run to fixpoint), so
// optimizing an already-optimized kernel returns it unchanged — the
// property that lets compile key its program cache on the post-opt
// fingerprint.
package opt

import (
	"fmt"

	"synergy/internal/kernelir"
)

// maxRounds bounds the fixpoint iteration. Every productive round
// either shrinks the body or strictly reduces loop-resident
// instructions, so real kernels converge in a handful of rounds; the
// cap turns a pass bug into a fail-safe Result.Err instead of a hang.
const maxRounds = 16

// Rewrite records one justified transformation: the pass that applied
// it, the instruction index in the body the pass saw (before the pass
// ran), and the licensing analysis fact in human-readable form.
type Rewrite struct {
	Pass string // "constfold", "algebra", "cse", "licm", "dce"
	PC   int    // index into the pre-pass body
	Note string // the analysis fact that licensed the rewrite
}

// Result describes one optimization run.
type Result struct {
	// Before and After are the body instruction counts. Equal (and zero
	// rewrites) means the kernel was already in normal form.
	Before, After int
	// Rounds is the number of full pipeline rounds run, including the
	// final no-change round that proved the fixpoint.
	Rounds int
	// Hoisted counts loop-invariant instructions moved out of Repeat
	// blocks (the licm rewrites).
	Hoisted int
	// Rewrites is the full justification log in application order.
	Rewrites []Rewrite
	// Err is non-nil when the input kernel failed Validate or a pass
	// failed translation validation; the kernel was returned unchanged.
	Err error
}

// Changed reports whether any rewrite was applied.
func (r Result) Changed() bool { return len(r.Rewrites) > 0 }

// PassCounts tallies rewrites by pass name.
func (r Result) PassCounts() map[string]int {
	m := make(map[string]int)
	for _, rw := range r.Rewrites {
		m[rw.Pass]++
	}
	return m
}

// pass is one pipeline stage: it returns a rewritten copy of body and
// the rewrites applied, or (nil, nil) when it found nothing.
type pass struct {
	name string
	fn   func(k *kernelir.Kernel, body []kernelir.Instr) ([]kernelir.Instr, []Rewrite)
}

// passes is the pipeline order. Folding first exposes operands to the
// algebraic rules, CSE then dedups what is left, copy propagation
// forwards the resulting moves into their readers, LICM moves invariant
// remainder out of loops, and DCE sweeps everything the earlier passes
// orphaned. The driver loops the whole pipeline to fixpoint, so
// inter-pass cascades (a fold enabling a hoist enabling a deletion)
// need no special ordering.
var passes = []pass{
	{"constfold", foldPass},
	{"algebra", algebraPass},
	{"cse", csePass},
	{"copyprop", copyPropPass},
	{"licm", licmPass},
	{"dce", dcePass},
}

// Optimize rewrites k into an equivalent, smaller normal form. It never
// mutates k: the result is either k itself (already in normal form, or
// fail-safe on error) or a fresh kernel sharing k's metadata with a new
// body. The returned kernel Validates, has the same parameters,
// register-file sizes, locals and traffic factor, and — per the
// translation-validation contract — produces byte-identical buffers and
// identical traps for every launch.
func Optimize(k *kernelir.Kernel) (*kernelir.Kernel, Result) {
	var res Result
	if err := k.Validate(); err != nil {
		res.Err = err
		return k, res
	}
	body := append([]kernelir.Instr(nil), k.Body...)
	res.Before = len(body)
	for round := 0; ; round++ {
		if round == maxRounds {
			res.Err = fmt.Errorf("opt: %s did not converge after %d rounds", k.Name, maxRounds)
			return k, Result{Err: res.Err}
		}
		changed := false
		for _, p := range passes {
			nb, rws := p.fn(k, body)
			if len(rws) == 0 {
				continue
			}
			if err := checkPass(k, k.Body, body, nb, p.name, rws); err != nil {
				return k, Result{Err: fmt.Errorf("opt: %s: translation validation failed: %w", k.Name, err)}
			}
			body = nb
			changed = true
			res.Rewrites = append(res.Rewrites, rws...)
			if p.name == "licm" {
				res.Hoisted += len(rws)
			}
		}
		if !changed {
			res.Rounds = round + 1
			break
		}
	}
	res.After = len(body)
	if !res.Changed() {
		return k, res
	}
	nk := *k
	nk.Body = body
	if err := nk.Validate(); err != nil {
		// Unreachable if the per-pass checker is correct; fail safe anyway.
		return k, Result{Err: fmt.Errorf("opt: %s: optimized kernel fails validation: %w", k.Name, err)}
	}
	return &nk, res
}

// --- shared dataflow helpers -----------------------------------------

// pureOp reports whether in computes a register value with no memory,
// local-scratch or control effect — the class of instructions the
// passes may delete, hoist or replace. Scalar-parameter reads and
// global-id reads are pure: their values are fixed for the lifetime of
// one work item.
func pureOp(in kernelir.Instr) bool {
	switch in.Op {
	case kernelir.OpRepeatBegin, kernelir.OpRepeatEnd:
		return false
	}
	c := kernelir.InfoOf(in.Op)
	return c.HasDst && !c.IsMemOp && !c.IsLocal
}

// eachRead calls f for every register operand in reads.
func eachRead(in kernelir.Instr, f func(file kernelir.ScalarType, reg int)) {
	c := kernelir.InfoOf(in.Op)
	if c.HasA {
		f(c.AFile, in.A)
	}
	if c.HasB {
		f(c.BFile, in.B)
	}
	if c.HasC {
		f(c.CFile, in.C)
	}
}

// writeOf returns the register in writes, if any.
func writeOf(in kernelir.Instr) (file kernelir.ScalarType, reg int, ok bool) {
	c := kernelir.InfoOf(in.Op)
	if !c.HasDst {
		return 0, 0, false
	}
	return c.DstFile, in.Dst, true
}

// regSet tracks one flag per register in both files.
type regSet struct {
	ints   []bool
	floats []bool
}

func newRegSet(k *kernelir.Kernel) *regSet {
	return &regSet{ints: make([]bool, k.NumIntRegs), floats: make([]bool, k.NumFloatRegs)}
}

func (s *regSet) get(file kernelir.ScalarType, reg int) bool {
	if file == kernelir.I32 {
		return s.ints[reg]
	}
	return s.floats[reg]
}

func (s *regSet) set(file kernelir.ScalarType, reg int, v bool) {
	if file == kernelir.I32 {
		s.ints[reg] = v
	} else {
		s.floats[reg] = v
	}
}

func (s *regSet) clone() *regSet {
	return &regSet{
		ints:   append([]bool(nil), s.ints...),
		floats: append([]bool(nil), s.floats...),
	}
}

// markWrites sets the flag for every register written in body[lo:hi).
func (s *regSet) markWrites(body []kernelir.Instr, lo, hi int) {
	for pc := lo; pc < hi; pc++ {
		if file, reg, ok := writeOf(body[pc]); ok {
			s.set(file, reg, true)
		}
	}
}

// markReads sets the flag for every register read in body[lo:hi).
func (s *regSet) markReads(body []kernelir.Instr, lo, hi int) {
	for pc := lo; pc < hi; pc++ {
		eachRead(body[pc], func(file kernelir.ScalarType, reg int) {
			s.set(file, reg, true)
		})
	}
}

// useBeforeDef returns the registers whose first access in the body is
// a read. Per-worker register files carry over across work items, so
// these registers are live across the item boundary: the next item's
// first read observes this item's last write. Linear order is first-
// execution order even through Repeat blocks (iteration one reaches
// instructions textually), so one scan is exact.
func useBeforeDef(k *kernelir.Kernel, body []kernelir.Instr) *regSet {
	ubd := newRegSet(k)
	written := newRegSet(k)
	for _, in := range body {
		eachRead(in, func(file kernelir.ScalarType, reg int) {
			if !written.get(file, reg) {
				ubd.set(file, reg, true)
			}
		})
		if file, reg, ok := writeOf(in); ok {
			written.set(file, reg, true)
		}
	}
	return ubd
}

// uniqueConstDef returns the value of the unique constant definition of
// reg in body, if reg is written exactly once and that write is an
// OpConstI/OpConstF. Passes use it to prove a divisor is a nonzero
// constant (licensing div/rem hoisting) and to find strength-reduction
// candidates.
func uniqueConstDef(body []kernelir.Instr, file kernelir.ScalarType, reg int) (imm float64, defPC int, ok bool) {
	defPC = -1
	for pc, in := range body {
		f, r, has := writeOf(in)
		if !has || f != file || r != reg {
			continue
		}
		if defPC >= 0 {
			return 0, -1, false // multiply defined
		}
		defPC = pc
		switch in.Op {
		case kernelir.OpConstI, kernelir.OpConstF:
		default:
			return 0, -1, false
		}
		imm = in.Imm
	}
	if defPC < 0 {
		return 0, -1, false
	}
	return imm, defPC, true
}

// readCount counts how many operand slots in body read reg.
func readCount(body []kernelir.Instr, file kernelir.ScalarType, reg int) int {
	n := 0
	for _, in := range body {
		eachRead(in, func(f kernelir.ScalarType, r int) {
			if f == file && r == reg {
				n++
			}
		})
	}
	return n
}

// divisorMayBeZero reports whether a div/rem divisor register cannot be
// proven a nonzero constant. Folding and hoisting of div/rem are gated
// on this: the interpreter defines x/0 = 0 and the optimizer keeps that
// evaluation exactly where it was.
func divisorMayBeZero(body []kernelir.Instr, in kernelir.Instr) bool {
	switch in.Op {
	case kernelir.OpDivI, kernelir.OpRemI:
		imm, _, ok := uniqueConstDef(body, kernelir.I32, in.B)
		return !ok || int64(imm) == 0
	case kernelir.OpDivF:
		imm, _, ok := uniqueConstDef(body, kernelir.F32, in.B)
		return !ok || imm == 0 // catches ±0.0
	}
	return false
}
