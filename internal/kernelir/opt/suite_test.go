package opt_test

import (
	"math"
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/opt"
)

// TestOptSuiteOracle is the differential half of translation validation
// over the real workload: for every suite benchmark the optimized
// kernel must produce bit-identical buffers (linear and 2-D launches,
// single worker for determinism), pass the benchmark's own output
// verifier, run clean under ExecuteChecked exactly like the original,
// and be a fixpoint of the optimizer.
func TestOptSuiteOracle(t *testing.T) {
	for _, b := range benchsuite.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ko, res := opt.Optimize(b.Kernel)
			if res.Err != nil {
				t.Fatalf("Optimize: %v", res.Err)
			}
			if res.After > res.Before {
				t.Fatalf("optimizer grew the body: %d -> %d", res.Before, res.After)
			}

			// Bit-identical buffers on fresh, identical instances.
			for _, nx := range []int{0, 16} {
				io, err := b.NewInstance(256)
				if err != nil {
					t.Fatal(err)
				}
				ip, err := b.NewInstance(256)
				if err != nil {
					t.Fatal(err)
				}
				errI := kernelir.InterpretGridWorkers(b.Kernel, io.Args, io.Items, nx, 1)
				errO := kernelir.InterpretGridWorkers(ko, ip.Args, ip.Items, nx, 1)
				if (errI == nil) != (errO == nil) || (errI != nil && errI.Error() != errO.Error()) {
					t.Fatalf("nx=%d: original err %v, optimized err %v", nx, errI, errO)
				}
				for name, buf := range io.Args.F32 {
					for i := range buf {
						if math.Float32bits(buf[i]) != math.Float32bits(ip.Args.F32[name][i]) {
							t.Fatalf("nx=%d: f32 %s[%d]: %v != %v\noptimized:\n%s",
								nx, name, i, buf[i], ip.Args.F32[name][i], ko.Disassemble())
						}
					}
				}
				for name, buf := range io.Args.I32 {
					for i := range buf {
						if buf[i] != ip.Args.I32[name][i] {
							t.Fatalf("nx=%d: i32 %s[%d]: %d != %d\noptimized:\n%s",
								nx, name, i, buf[i], ip.Args.I32[name][i], ko.Disassemble())
						}
					}
				}
			}

			// The benchmark's own verifier accepts the optimized kernel.
			iv, err := b.NewInstance(256)
			if err != nil {
				t.Fatal(err)
			}
			if err := iv.Run(ko); err != nil {
				t.Fatalf("verifier rejected optimized kernel: %v", err)
			}

			// Trap parity: the suite is lint-clean, so checked execution
			// must stay clean after optimization.
			ic, err := b.NewInstance(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := kernelir.ExecuteChecked(b.Kernel, ic.Args, ic.Items); err != nil {
				t.Fatalf("original kernel fails checked execution: %v", err)
			}
			ic2, err := b.NewInstance(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := kernelir.ExecuteChecked(ko, ic2.Args, ic2.Items); err != nil {
				t.Fatalf("optimized kernel fails checked execution: %v", err)
			}

			// Fixpoint: optimizing the optimized kernel is a no-op.
			k2, res2 := opt.Optimize(ko)
			if res2.Err != nil {
				t.Fatal(res2.Err)
			}
			if res2.Changed() || k2 != ko {
				t.Fatalf("not idempotent: second run applied %d rewrites", len(res2.Rewrites))
			}

			// Determinism: a second run from scratch produces the same body.
			k3, res3 := opt.Optimize(b.Kernel)
			if res3.Err != nil {
				t.Fatal(res3.Err)
			}
			if len(k3.Body) != len(ko.Body) {
				t.Fatalf("nondeterministic: %d vs %d instructions", len(k3.Body), len(ko.Body))
			}
			for i := range ko.Body {
				if ko.Body[i] != k3.Body[i] {
					t.Fatalf("nondeterministic at pc %d: %+v vs %+v", i, ko.Body[i], k3.Body[i])
				}
			}
		})
	}
}

// TestOptSuiteReduction is the headline static metric: across the whole
// suite the optimizer must remove a non-trivial number of instructions
// (the seed kernels carry folded constants, duplicate subexpressions
// and dead sorting-network lanes by construction).
func TestOptSuiteReduction(t *testing.T) {
	before, after := 0, 0
	reduced := 0
	for _, b := range benchsuite.All() {
		ko, res := opt.Optimize(b.Kernel)
		if res.Err != nil {
			t.Fatalf("%s: %v", b.Name, res.Err)
		}
		before += len(b.Kernel.Body)
		after += len(ko.Body)
		if len(ko.Body) < len(b.Kernel.Body) {
			reduced++
		}
	}
	if after >= before {
		t.Fatalf("no aggregate reduction: %d -> %d instructions", before, after)
	}
	if reduced < 3 {
		t.Fatalf("only %d/23 kernels shrank; want at least 3", reduced)
	}
	t.Logf("suite static instruction count: %d -> %d (-%.1f%%), %d/23 kernels shrank",
		before, after, 100*float64(before-after)/float64(before), reduced)
}
