package opt

import (
	"fmt"

	"synergy/internal/kernelir"
)

// Loop-invariant code motion over BuildLoopTree. An instruction may
// move out of its Repeat block when:
//
//   - it is pure (no memory, local or control effect);
//   - its destination is written exactly once in the loop subtree (by
//     the candidate itself) and never read in the subtree before that
//     write — iteration one must not observe a pre-loop value, and no
//     instruction may observe the loop-carried value;
//   - none of its operand registers is written anywhere in the subtree
//     (the candidate's inputs are identical in every iteration);
//   - for div/rem, the divisor is additionally a provably nonzero
//     constant — a (possibly) zero divisor is never hoisted, keeping
//     the interpreter's x/0 = 0 evaluation exactly where it was.
//
// Validate guarantees trip counts are at least 1, so executing the
// candidate once before the block is execute-exactly-what-would-have-
// executed, with identical operand values — bit-exact including floats.
//
// Hoisting proceeds innermost-first and reruns to fixpoint, so chains
// of invariant instructions cascade out of nested loops (the const
// feeding a mul feeding an add all reach the outermost prologue).
func licmPass(k *kernelir.Kernel, body []kernelir.Instr) ([]kernelir.Instr, []Rewrite) {
	out := append([]kernelir.Instr(nil), body...)
	var rws []Rewrite
	for {
		moved := licmRound(out, &rws)
		if !moved {
			break
		}
	}
	if len(rws) == 0 {
		return nil, nil
	}
	return out, rws
}

// licmRound hoists one batch out of the first (innermost) loop that has
// eligible instructions, rewriting out in place. Returns whether
// anything moved.
func licmRound(out []kernelir.Instr, rws *[]Rewrite) bool {
	tree, err := kernelir.BuildLoopTree(out)
	if err != nil {
		return false
	}
	// Collect loops innermost-first: deeper begins sort later in a
	// post-order walk, so recurse children before the node itself.
	type loop struct{ begin, end int }
	var loops []loop
	var collect func(lo, hi int)
	collect = func(lo, hi int) {
		for pc := lo; pc < hi; pc++ {
			if out[pc].Op == kernelir.OpRepeatBegin {
				end := tree.Match(pc)
				collect(pc+1, end)
				loops = append(loops, loop{pc, end})
				pc = end
			}
		}
	}
	collect(0, len(out))

	for _, l := range loops {
		picks := hoistable(out, l.begin, l.end)
		if len(picks) == 0 {
			continue
		}
		// Rebuild: hoisted instructions, in original order, immediately
		// before the RepeatBegin; the rest of the subtree keeps its order.
		pickSet := make(map[int]bool, len(picks))
		for _, pc := range picks {
			pickSet[pc] = true
			*rws = append(*rws, Rewrite{
				Pass: "licm", PC: pc,
				Note: fmt.Sprintf("%s is invariant in the repeat at pc %d (operands unwritten in loop, single write, no prior read)", out[pc].Op, l.begin),
			})
		}
		nb := make([]kernelir.Instr, 0, len(out))
		nb = append(nb, out[:l.begin]...)
		for _, pc := range picks {
			nb = append(nb, out[pc])
		}
		for pc := l.begin; pc < len(out); pc++ {
			if !pickSet[pc] {
				nb = append(nb, out[pc])
			}
		}
		copy(out, nb)
		return true
	}
	return false
}

// hoistable returns the pcs (ascending) of instructions eligible to
// move out of the loop whose body spans (begin, end).
func hoistable(out []kernelir.Instr, begin, end int) []int {
	lo, hi := begin+1, end
	var picks []int
	for pc := lo; pc < hi; pc++ {
		in := out[pc]
		if !pureOp(in) {
			continue
		}
		if divisorMayBeZero(out, in) {
			continue
		}
		file, dst, _ := writeOf(in)
		// Destination written exactly once in the subtree, by this
		// instruction.
		writes := 0
		for q := lo; q < hi; q++ {
			if f, r, ok := writeOf(out[q]); ok && f == file && r == dst {
				writes++
			}
		}
		if writes != 1 {
			continue
		}
		// Never read in the subtree at or before its definition: reads at
		// pc itself (dst as its own operand) observe the loop-carried
		// value and block the move.
		readEarly := false
		for q := lo; q <= pc && !readEarly; q++ {
			eachRead(out[q], func(f kernelir.ScalarType, r int) {
				if f == file && r == dst {
					readEarly = true
				}
			})
		}
		if readEarly {
			continue
		}
		// Operands invariant: no writes to them anywhere in the subtree.
		invariant := true
		eachRead(in, func(f kernelir.ScalarType, r int) {
			for q := lo; q < hi; q++ {
				if wf, wr, ok := writeOf(out[q]); ok && wf == f && wr == r {
					invariant = false
					return
				}
			}
		})
		if !invariant {
			continue
		}
		picks = append(picks, pc)
	}
	return picks
}
