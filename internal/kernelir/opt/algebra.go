package opt

import (
	"fmt"
	"math/bits"

	"synergy/internal/kernelir"
)

// algebraPass applies exact algebraic identities and strength
// reduction. Integer identities are exact by definition (two's
// complement); on the float side only structural rewrites are applied —
// selects and min/max with two identical operands, which copy one input
// unchanged — never arithmetic identities like x+0.0 or x*1.0, whose
// results can differ bit-for-bit from a move (-0.0, NaN payloads).
//
// Strength reduction rewrites x * 2^k into x << k when the power-of-two
// constant register is defined once and consumed only by that multiply,
// so its defining OpConstI can be retargeted to hold k. Features-wise
// this moves the instruction from the IntMul class to IntBw — the same
// merged IntOps resource in the hardware model, but the sharper class
// the SYnergy feature vector wants.
func algebraPass(k *kernelir.Kernel, body []kernelir.Instr) ([]kernelir.Instr, []Rewrite) {
	out := append([]kernelir.Instr(nil), body...)
	var rws []Rewrite

	rewrite := func(pc int, in kernelir.Instr, note string) {
		out[pc] = in
		rws = append(rws, Rewrite{Pass: "algebra", PC: pc, Note: note})
	}
	moveI := func(dst, src int) kernelir.Instr {
		return kernelir.Instr{Op: kernelir.OpMoveI, Dst: dst, A: src}
	}
	moveF := func(dst, src int) kernelir.Instr {
		return kernelir.Instr{Op: kernelir.OpMoveF, Dst: dst, A: src}
	}
	constI := func(dst int, v int64) kernelir.Instr {
		return kernelir.Instr{Op: kernelir.OpConstI, Dst: dst, Imm: float64(v)}
	}

	walkConst(k, out, func(pc int, st *constState) {
		in := out[pc]
		aConst, aKnown := int64(0), false
		bConst, bKnown := int64(0), false
		c := kernelir.InfoOf(in.Op)
		if c.HasA && c.AFile == kernelir.I32 {
			aConst, aKnown = st.intOf(in.A)
		}
		if c.HasB && c.BFile == kernelir.I32 {
			bConst, bKnown = st.intOf(in.B)
		}

		switch in.Op {
		case kernelir.OpAddI:
			switch {
			case bKnown && bConst == 0:
				rewrite(pc, moveI(in.Dst, in.A), fmt.Sprintf("i%d + 0 = i%d", in.A, in.A))
			case aKnown && aConst == 0:
				rewrite(pc, moveI(in.Dst, in.B), fmt.Sprintf("0 + i%d = i%d", in.B, in.B))
			}
		case kernelir.OpSubI:
			switch {
			case in.A == in.B:
				rewrite(pc, constI(in.Dst, 0), fmt.Sprintf("i%d - i%d = 0", in.A, in.B))
			case bKnown && bConst == 0:
				rewrite(pc, moveI(in.Dst, in.A), fmt.Sprintf("i%d - 0 = i%d", in.A, in.A))
			}
		case kernelir.OpMulI:
			switch {
			case (aKnown && aConst == 0) || (bKnown && bConst == 0):
				rewrite(pc, constI(in.Dst, 0), "multiply by 0")
			case bKnown && bConst == 1:
				rewrite(pc, moveI(in.Dst, in.A), fmt.Sprintf("i%d * 1 = i%d", in.A, in.A))
			case aKnown && aConst == 1:
				rewrite(pc, moveI(in.Dst, in.B), fmt.Sprintf("1 * i%d = i%d", in.B, in.B))
			default:
				strengthReduce(out, pc, st, &rws)
			}
		case kernelir.OpDivI:
			if bKnown && bConst == 1 {
				rewrite(pc, moveI(in.Dst, in.A), fmt.Sprintf("i%d / 1 = i%d", in.A, in.A))
			}
		case kernelir.OpRemI:
			if bKnown && bConst == 1 {
				rewrite(pc, constI(in.Dst, 0), fmt.Sprintf("i%d %% 1 = 0", in.A))
			}
		case kernelir.OpAndI:
			switch {
			case in.A == in.B:
				rewrite(pc, moveI(in.Dst, in.A), fmt.Sprintf("i%d & i%d = i%d", in.A, in.B, in.A))
			case (aKnown && aConst == 0) || (bKnown && bConst == 0):
				rewrite(pc, constI(in.Dst, 0), "and with 0")
			case bKnown && bConst == -1:
				rewrite(pc, moveI(in.Dst, in.A), fmt.Sprintf("i%d & -1 = i%d", in.A, in.A))
			case aKnown && aConst == -1:
				rewrite(pc, moveI(in.Dst, in.B), fmt.Sprintf("-1 & i%d = i%d", in.B, in.B))
			}
		case kernelir.OpOrI:
			switch {
			case in.A == in.B:
				rewrite(pc, moveI(in.Dst, in.A), fmt.Sprintf("i%d | i%d = i%d", in.A, in.B, in.A))
			case bKnown && bConst == 0:
				rewrite(pc, moveI(in.Dst, in.A), fmt.Sprintf("i%d | 0 = i%d", in.A, in.A))
			case aKnown && aConst == 0:
				rewrite(pc, moveI(in.Dst, in.B), fmt.Sprintf("0 | i%d = i%d", in.B, in.B))
			case (aKnown && aConst == -1) || (bKnown && bConst == -1):
				rewrite(pc, constI(in.Dst, -1), "or with -1")
			}
		case kernelir.OpXorI:
			switch {
			case in.A == in.B:
				rewrite(pc, constI(in.Dst, 0), fmt.Sprintf("i%d ^ i%d = 0", in.A, in.B))
			case bKnown && bConst == 0:
				rewrite(pc, moveI(in.Dst, in.A), fmt.Sprintf("i%d ^ 0 = i%d", in.A, in.A))
			case aKnown && aConst == 0:
				rewrite(pc, moveI(in.Dst, in.B), fmt.Sprintf("0 ^ i%d = i%d", in.B, in.B))
			}
		case kernelir.OpShlI, kernelir.OpShrI:
			switch {
			case bKnown && uint64(bConst)&63 == 0:
				rewrite(pc, moveI(in.Dst, in.A), "shift amount masks to 0")
			case aKnown && aConst == 0:
				rewrite(pc, constI(in.Dst, 0), "shift of 0")
			}
		case kernelir.OpMinI, kernelir.OpMaxI:
			if in.A == in.B {
				rewrite(pc, moveI(in.Dst, in.A), fmt.Sprintf("both operands are i%d", in.A))
			}
		case kernelir.OpSelI:
			if in.A == in.B {
				rewrite(pc, moveI(in.Dst, in.A), fmt.Sprintf("both branches are i%d", in.A))
			}
		case kernelir.OpSelF:
			if in.A == in.B {
				rewrite(pc, moveF(in.Dst, in.A), fmt.Sprintf("both branches are f%d", in.A))
			}
		case kernelir.OpMinF, kernelir.OpMaxF:
			// min(x, x) and max(x, x) return an argument unchanged (both
			// arguments carry identical bits), so a move is bit-exact even
			// for NaN and signed zero.
			if in.A == in.B {
				rewrite(pc, moveF(in.Dst, in.A), fmt.Sprintf("both operands are f%d", in.A))
			}
		}
	})
	if len(rws) == 0 {
		return nil, nil
	}
	return out, rws
}

// strengthReduce rewrites out[pc] (an OpMulI) into a shift when one
// operand register is a single-def single-use power-of-two OpConstI:
// the constant's defining instruction is retargeted to hold the shift
// count and the multiply becomes OpShlI. Both conditions are required —
// the constant register changes value, so no other instruction may
// observe it.
func strengthReduce(out []kernelir.Instr, pc int, st *constState, rws *[]Rewrite) {
	in := out[pc]
	if in.A == in.B {
		return // x*x with x constant is handled by folding, not here
	}
	try := func(constReg, otherReg int) bool {
		imm, defPC, ok := uniqueConstDef(out, kernelir.I32, constReg)
		// The unique definition must execute before the multiply; in
		// structured straight-line code that is textual order.
		if !ok || defPC >= pc || out[defPC].Op != kernelir.OpConstI {
			return false
		}
		v := int64(imm)
		if v < 2 || v&(v-1) != 0 {
			return false
		}
		if readCount(out, kernelir.I32, constReg) != 1 {
			return false
		}
		shift := int64(bits.TrailingZeros64(uint64(v)))
		out[defPC] = kernelir.Instr{Op: kernelir.OpConstI, Dst: out[defPC].Dst, Imm: float64(shift)}
		out[pc] = kernelir.Instr{Op: kernelir.OpShlI, Dst: in.Dst, A: otherReg, B: constReg}
		// The const register's value changed under the walker's feet;
		// refresh the propagation state so later rewrites in this same
		// walk see the shift count, not the stale multiplier.
		st.ints[constReg] = constVal{known: true, i: shift}
		*rws = append(*rws,
			Rewrite{Pass: "algebra", PC: defPC, Note: fmt.Sprintf("strength reduction: const %d becomes shift count %d", v, shift)},
			Rewrite{Pass: "algebra", PC: pc, Note: fmt.Sprintf("i%d * %d = i%d << %d", otherReg, v, otherReg, shift)},
		)
		return true
	}
	if try(in.B, in.A) {
		return
	}
	try(in.A, in.B)
}
