package opt_test

import (
	"math"
	"testing"

	"synergy/internal/kernelir"
	"synergy/internal/kernelir/opt"
)

// runBoth executes k and its optimized form on identical fresh args and
// requires identical errors and bit-identical buffer contents.
func runBoth(t *testing.T, k *kernelir.Kernel, mkArgs func() kernelir.Args, items, nx int) *kernelir.Kernel {
	t.Helper()
	ko, res := opt.Optimize(k)
	if res.Err != nil {
		t.Fatalf("Optimize(%s): %v", k.Name, res.Err)
	}
	ai, ao := mkArgs(), mkArgs()
	errI := kernelir.InterpretGridWorkers(k, ai, items, nx, 1)
	errO := kernelir.InterpretGridWorkers(ko, ao, items, nx, 1)
	if (errI == nil) != (errO == nil) || (errI != nil && errI.Error() != errO.Error()) {
		t.Fatalf("%s: original err %v, optimized err %v", k.Name, errI, errO)
	}
	for name, buf := range ai.F32 {
		for i := range buf {
			if math.Float32bits(buf[i]) != math.Float32bits(ao.F32[name][i]) {
				t.Fatalf("%s: f32 %s[%d]: original %v (%#x) != optimized %v (%#x)\noriginal:\n%s\noptimized:\n%s",
					k.Name, name, i, buf[i], math.Float32bits(buf[i]),
					ao.F32[name][i], math.Float32bits(ao.F32[name][i]),
					k.Disassemble(), ko.Disassemble())
			}
		}
	}
	for name, buf := range ai.I32 {
		for i := range buf {
			if buf[i] != ao.I32[name][i] {
				t.Fatalf("%s: i32 %s[%d]: original %d != optimized %d\noriginal:\n%s\noptimized:\n%s",
					k.Name, name, i, buf[i], ao.I32[name][i], k.Disassemble(), ko.Disassemble())
			}
		}
	}
	return ko
}

func countOp(k *kernelir.Kernel, op kernelir.Op) int {
	n := 0
	for _, in := range k.Body {
		if in.Op == op {
			n++
		}
	}
	return n
}

func f32Args(n int) func() kernelir.Args {
	return func() kernelir.Args {
		out := make([]float32, n)
		return kernelir.Args{F32: map[string][]float32{"out": out}}
	}
}

func i32Args(n int) func() kernelir.Args {
	return func() kernelir.Args {
		out := make([]int32, n)
		return kernelir.Args{I32: map[string][]int32{"out": out}}
	}
}

func TestFoldChainCollapses(t *testing.T) {
	b := kernelir.NewBuilder("fold_chain")
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	two := b.ConstI(2)
	three := b.ConstI(3)
	five := b.AddI(two, three)     // folds to 5
	fifteen := b.MulI(five, three) // folds to 15
	sum := b.AddI(gid, fifteen)    // not foldable (gid)
	b.StoreI(out, gid, sum)
	k := b.MustBuild()

	ko := runBoth(t, k, i32Args(8), 8, 0)
	if len(ko.Body) >= len(k.Body) {
		t.Fatalf("fold+dce did not shrink the body: %d -> %d\n%s", len(k.Body), len(ko.Body), ko.Disassemble())
	}
	if got := countOp(ko, kernelir.OpAddI); got != 1 {
		t.Fatalf("want exactly the gid add to survive, got %d AddI:\n%s", got, ko.Disassemble())
	}
	if got := countOp(ko, kernelir.OpMulI); got != 0 {
		t.Fatalf("constant multiply survived folding:\n%s", ko.Disassemble())
	}
}

// TestCarryoverBlocksEntryAssumptions pins the per-worker register
// carryover semantics: a register read before any write in the body
// observes the previous item's value, so the optimizer must not assume
// a zero (or any constant) entry state.
func TestCarryoverBlocksEntryAssumptions(t *testing.T) {
	k := &kernelir.Kernel{
		Name: "carryover_acc",
		Params: []kernelir.Param{
			{Name: "out", IsBuffer: true, Type: kernelir.I32, Access: kernelir.Write},
		},
		NumIntRegs: 3,
		Body: []kernelir.Instr{
			{Op: kernelir.OpGlobalID, Dst: 0},
			{Op: kernelir.OpConstI, Dst: 2, Imm: 1},
			{Op: kernelir.OpAddI, Dst: 1, A: 1, B: 2}, // r1 += 1: reads r1 before any write
			{Op: kernelir.OpStoreGI, Buf: 0, A: 0, B: 1},
		},
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	ko := runBoth(t, k, i32Args(4), 4, 0)
	// Single worker: the counter must persist across items -> 1,2,3,4.
	a := i32Args(4)()
	if err := kernelir.InterpretGridWorkers(ko, a, 4, 0, 1); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int32{1, 2, 3, 4} {
		if a.I32["out"][i] != want {
			t.Fatalf("out[%d] = %d, want %d (carryover broken):\n%s", i, a.I32["out"][i], want, ko.Disassemble())
		}
	}
}

// TestNaNFoldingPreserved (satellite: optimizer edge cases): folding
// through NaN-producing float ops must reproduce the interpreter's
// bits, and the folded NaN immediate must survive in the kernel.
func TestNaNFoldingPreserved(t *testing.T) {
	b := kernelir.NewBuilder("nan_fold")
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	neg := b.ConstF(-1)
	nan := b.SqrtF(neg)             // sqrt(-1) = NaN, folds
	sum := b.AddF(nan, b.ConstF(2)) // NaN + 2 = NaN, folds
	lo := b.MinF(sum, b.ConstF(0))  // math.Min(NaN, 0) = NaN, folds
	b.StoreF(out, gid, lo)
	k := b.MustBuild()

	ko := runBoth(t, k, f32Args(4), 4, 0)
	if got := countOp(ko, kernelir.OpSqrtF); got != 0 {
		t.Fatalf("sqrt(-1) did not fold:\n%s", ko.Disassemble())
	}
	a := f32Args(4)()
	if err := kernelir.Execute(ko, a, 4); err != nil {
		t.Fatal(err)
	}
	for i, v := range a.F32["out"] {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("out[%d] = %v, want NaN", i, v)
		}
	}
}

// TestDivRemByZeroNeverFolded (satellite: optimizer edge cases): the
// interpreter defines x/0 = 0 and x%0 = 0; the optimizer must leave
// those instructions in the code rather than bake in the quirk.
func TestDivRemByZeroNeverFolded(t *testing.T) {
	b := kernelir.NewBuilder("div_zero")
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	zero := b.ConstI(0)
	seven := b.ConstI(7)
	q := b.DivI(seven, zero)
	r := b.RemI(seven, zero)
	fz := b.ConstF(0)
	fq := b.DivF(b.ConstF(3), fz)
	b.StoreI(out, gid, b.AddI(q, r))
	b.StoreI(out, gid, b.FloatToInt(fq))
	k := b.MustBuild()

	ko := runBoth(t, k, i32Args(4), 4, 0)
	if countOp(ko, kernelir.OpDivI) != 1 || countOp(ko, kernelir.OpRemI) != 1 || countOp(ko, kernelir.OpDivF) != 1 {
		t.Fatalf("div/rem by zero was folded away:\n%s", ko.Disassemble())
	}
}

// TestDivByZeroNeverHoisted (satellite: optimizer edge cases): an
// invariant division whose divisor cannot be proven nonzero stays
// inside its loop; a provably nonzero divisor hoists.
func TestDivByZeroNeverHoisted(t *testing.T) {
	build := func(divisor int64) *kernelir.Kernel {
		b := kernelir.NewBuilder("hoist_div")
		out := b.BufferI32("out", kernelir.Write)
		gid := b.GlobalID()
		num := b.ConstI(100)
		den := b.ConstI(divisor)
		acc := b.CopyI(gid)
		b.Repeat(4, func() {
			q := b.DivI(num, den)
			b.StoreI(out, gid, b.AddI(acc, q))
		})
		return b.MustBuild()
	}

	inLoop := func(k *kernelir.Kernel, op kernelir.Op) bool {
		depth := 0
		for _, in := range k.Body {
			switch in.Op {
			case kernelir.OpRepeatBegin:
				depth++
			case kernelir.OpRepeatEnd:
				depth--
			case op:
				return depth > 0
			}
		}
		return false
	}

	kz := runBoth(t, build(0), i32Args(4), 4, 0)
	if !inLoop(kz, kernelir.OpDivI) {
		t.Fatalf("div by zero was hoisted out of its loop:\n%s", kz.Disassemble())
	}
	kn := runBoth(t, build(5), i32Args(4), 4, 0)
	if countOp(kn, kernelir.OpDivI) > 0 && inLoop(kn, kernelir.OpDivI) {
		t.Fatalf("div by nonzero constant stayed in the loop:\n%s", kn.Disassemble())
	}
}

// TestMaskedShiftSemantics (satellite: optimizer edge cases): shift
// amounts mask to 6 bits exactly like the interpreter.
func TestMaskedShiftSemantics(t *testing.T) {
	b := kernelir.NewBuilder("masked_shift")
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	s64 := b.ShlI(b.ConstI(3), b.ConstI(64))   // 64&63 = 0: folds to 3
	s70 := b.ShrI(b.ConstI(512), b.ConstI(70)) // 70&63 = 6: folds to 8
	idMask := b.ShlI(gid, b.ConstI(128))       // 128&63 = 0: algebra -> move
	sum := b.AddI(b.AddI(s64, s70), idMask)
	b.StoreI(out, gid, sum)
	k := b.MustBuild()

	ko := runBoth(t, k, i32Args(4), 4, 0)
	if countOp(ko, kernelir.OpShlI)+countOp(ko, kernelir.OpShrI) != 0 {
		t.Fatalf("masked shifts did not simplify:\n%s", ko.Disassemble())
	}
}

// TestMaxRepeatTripHoist (satellite: optimizer edge cases): LICM at the
// trip-count ceiling — the hoisted instruction executes once instead of
// MaxRepeatTrip times and the result is identical.
func TestMaxRepeatTripHoist(t *testing.T) {
	b := kernelir.NewBuilder("max_trip")
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	x := b.ConstF(1.5)
	y := b.ConstF(2.5)
	acc := b.CopyF(b.ConstF(0))
	b.Repeat(kernelir.MaxRepeatTrip, func() {
		inv := b.MulF(x, y) // invariant: hoists
		b.MoveF(acc, inv)
	})
	b.StoreF(out, gid, acc)
	k := b.MustBuild()

	ko, res := opt.Optimize(k)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Hoisted == 0 {
		t.Fatalf("nothing hoisted from a MaxRepeatTrip loop:\n%s", ko.Disassemble())
	}
	// The whole loop becomes dead weight and the fold cascade replaces
	// the stored value with a constant; run both to confirm equality
	// (the original grinds through 2^20 trips, the optimized one not).
	runBoth(t, k, f32Args(2), 2, 0)
}

// TestCollidingStoresKeepOrder (satellite: optimizer edge cases): two
// stores to the same index must survive in order — the last one wins,
// exactly as interpreted.
func TestCollidingStoresKeepOrder(t *testing.T) {
	b := kernelir.NewBuilder("colliding_stores")
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	b.StoreI(out, gid, b.ConstI(111))
	b.StoreI(out, gid, b.ConstI(222))
	k := b.MustBuild()

	ko := runBoth(t, k, i32Args(4), 4, 0)
	if got := countOp(ko, kernelir.OpStoreGI); got != 2 {
		t.Fatalf("store count changed: want 2, got %d:\n%s", got, ko.Disassemble())
	}
	a := i32Args(4)()
	if err := kernelir.Execute(ko, a, 4); err != nil {
		t.Fatal(err)
	}
	for i, v := range a.I32["out"] {
		if v != 222 {
			t.Fatalf("out[%d] = %d, want the later store's 222", i, v)
		}
	}
}

func TestCSEDeduplicates(t *testing.T) {
	b := kernelir.NewBuilder("cse_dup")
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	x := b.IntToFloat(gid)
	p1 := b.MulF(x, x)
	p2 := b.MulF(x, x) // identical: CSE'd to a move, then the move chain folds into the add
	b.StoreF(out, gid, b.AddF(p1, p2))
	k := b.MustBuild()

	ko := runBoth(t, k, f32Args(8), 8, 0)
	if got := countOp(ko, kernelir.OpMulF); got != 1 {
		t.Fatalf("want 1 MulF after CSE, got %d:\n%s", got, ko.Disassemble())
	}
}

func TestCSERespectsLoopCarriedValues(t *testing.T) {
	// acc = gid; repeat { t = acc+1; acc = t }; u = acc+1; store u.
	// The loop-carried acc makes the in-loop acc+1 different every
	// iteration, and the post-loop acc+1 different from all of them:
	// nothing may be CSE'd across the back edge.
	b := kernelir.NewBuilder("cse_loop_carried")
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	one := b.ConstI(1)
	acc := b.CopyI(gid)
	b.Repeat(3, func() {
		t := b.AddI(acc, one)
		b.MoveI(acc, t)
	})
	u := b.AddI(acc, one)
	b.StoreI(out, gid, u)
	k := b.MustBuild()

	ko := runBoth(t, k, i32Args(4), 4, 0)
	a := i32Args(4)()
	if err := kernelir.Execute(ko, a, 4); err != nil {
		t.Fatal(err)
	}
	for i := range a.I32["out"] {
		if want := int32(i + 4); a.I32["out"][i] != want {
			t.Fatalf("out[%d] = %d, want %d:\n%s", i, a.I32["out"][i], want, ko.Disassemble())
		}
	}
}

func TestStrengthReduction(t *testing.T) {
	b := kernelir.NewBuilder("strength")
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	eight := b.ConstI(8)
	m := b.MulI(gid, eight)
	b.StoreI(out, gid, m)
	k := b.MustBuild()

	ko := runBoth(t, k, i32Args(8), 8, 0)
	if countOp(ko, kernelir.OpMulI) != 0 || countOp(ko, kernelir.OpShlI) != 1 {
		t.Fatalf("gid*8 not strength-reduced to a shift:\n%s", ko.Disassemble())
	}
}

func TestStrengthReductionKeepsSharedConst(t *testing.T) {
	// The constant 8 has two readers; retargeting it to the shift count
	// 3 would corrupt the second reader, so the reduction must decline.
	b := kernelir.NewBuilder("strength_shared")
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	eight := b.ConstI(8)
	m := b.MulI(gid, eight)
	s := b.AddI(m, eight)
	b.StoreI(out, gid, s)
	k := b.MustBuild()

	ko := runBoth(t, k, i32Args(8), 8, 0)
	if countOp(ko, kernelir.OpMulI) != 1 {
		t.Fatalf("shared-constant multiply was rewritten:\n%s", ko.Disassemble())
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	b := kernelir.NewBuilder("idem")
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	x := b.IntToFloat(gid)
	two := b.ConstF(2)
	acc := b.CopyF(x)
	b.Repeat(4, func() {
		inv := b.MulF(two, two)
		b.MoveF(acc, b.AddF(acc, inv))
	})
	b.StoreF(out, gid, acc)
	k := b.MustBuild()

	k1, res1 := opt.Optimize(k)
	if res1.Err != nil || !res1.Changed() {
		t.Fatalf("first run: err %v, changed %v", res1.Err, res1.Changed())
	}
	k2, res2 := opt.Optimize(k1)
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if res2.Changed() || k2 != k1 {
		t.Fatalf("Optimize is not idempotent: second run applied %d rewrites", len(res2.Rewrites))
	}
}

func TestOptimizeFailSafeOnInvalid(t *testing.T) {
	k := &kernelir.Kernel{
		Name:       "invalid",
		NumIntRegs: 1,
		Body: []kernelir.Instr{
			{Op: kernelir.OpAddI, Dst: 99, A: 0, B: 0}, // register out of range
		},
	}
	ko, res := opt.Optimize(k)
	if res.Err == nil {
		t.Fatal("want validation error")
	}
	if ko != k {
		t.Fatal("fail-safe must return the original kernel")
	}
}

func TestCachedResultMemoizes(t *testing.T) {
	opt.ResetCache()
	b := kernelir.NewBuilder("memo")
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	b.StoreI(out, gid, b.AddI(b.ConstI(2), b.ConstI(3)))
	k := b.MustBuild()

	k1, res1 := opt.CachedResult(k)
	k2, res2 := opt.CachedResult(k)
	if k1 != k2 {
		t.Fatal("memoized runs returned different kernels")
	}
	if len(res1.Rewrites) != len(res2.Rewrites) {
		t.Fatal("memoized runs returned different results")
	}
	size, hits, runs := opt.CacheStats()
	if size != 1 || hits != 1 || runs != 1 {
		t.Fatalf("cache stats = (%d, %d, %d), want (1, 1, 1)", size, hits, runs)
	}
	opt.ResetCache()
}

func TestResultPassCounts(t *testing.T) {
	b := kernelir.NewBuilder("counts")
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	b.StoreI(out, gid, b.AddI(gid, b.AddI(b.ConstI(1), b.ConstI(2))))
	k := b.MustBuild()
	_, res := opt.Optimize(k)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	total := 0
	for _, n := range res.PassCounts() {
		total += n
	}
	if total != len(res.Rewrites) {
		t.Fatalf("PassCounts total %d != %d rewrites", total, len(res.Rewrites))
	}
	if res.Before != len(k.Body) {
		t.Fatalf("Result.Before = %d, want %d", res.Before, len(k.Body))
	}
}
