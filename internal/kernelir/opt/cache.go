package opt

import (
	"container/list"
	"sync"

	"synergy/internal/kernelir"
)

// Fingerprint-keyed memo for Optimize, mirroring the features package's
// extraction cache: the same kernel arrives on every hot path (compile,
// feature extraction, sweep, serve), and the pipeline is deterministic,
// so one run per structural fingerprint suffices. Because Optimize is
// idempotent, a hit for an already-optimized kernel returns the kernel
// itself.

const memoCap = 4096

type memoEntry struct {
	fp  string
	k   *kernelir.Kernel
	res Result
}

var (
	memoMu  sync.Mutex
	memo    = make(map[string]*list.Element)
	memoLRU list.List // front = most recent; values are *memoEntry
	hits    uint64
	runs    uint64
)

// Cached returns Optimize(k)'s kernel, memoized by fingerprint.
func Cached(k *kernelir.Kernel) *kernelir.Kernel {
	nk, _ := CachedResult(k)
	return nk
}

// CachedResult is Optimize memoized by kernelir.Fingerprint. Equal
// fingerprints mean structurally identical kernels, so sharing the
// optimized kernel (and its justification log) across callers is sound.
// Fail-safe results (Result.Err != nil) are cached too: a kernel that
// defeats the optimizer today will defeat it identically tomorrow.
func CachedResult(k *kernelir.Kernel) (*kernelir.Kernel, Result) {
	fp := kernelir.Fingerprint(k)
	memoMu.Lock()
	if el, ok := memo[fp]; ok {
		memoLRU.MoveToFront(el)
		ent := el.Value.(*memoEntry)
		hits++
		memoMu.Unlock()
		return ent.k, ent.res
	}
	memoMu.Unlock()

	nk, res := Optimize(k)

	memoMu.Lock()
	defer memoMu.Unlock()
	if el, ok := memo[fp]; ok {
		// Raced with another optimizer run; the existing entry wins.
		ent := el.Value.(*memoEntry)
		return ent.k, ent.res
	}
	runs++
	memo[fp] = memoLRU.PushFront(&memoEntry{fp: fp, k: nk, res: res})
	for memoLRU.Len() > memoCap {
		back := memoLRU.Back()
		memoLRU.Remove(back)
		delete(memo, back.Value.(*memoEntry).fp)
	}
	return nk, res
}

// CacheStats reports (memoized runs currently held, hits, total runs).
func CacheStats() (size int, hitCount, runCount uint64) {
	memoMu.Lock()
	defer memoMu.Unlock()
	return len(memo), hits, runs
}

// ResetCache clears the memo. Tests use it to make runs deterministic.
func ResetCache() {
	memoMu.Lock()
	defer memoMu.Unlock()
	memo = make(map[string]*list.Element)
	memoLRU.Init()
	hits = 0
	runs = 0
}
