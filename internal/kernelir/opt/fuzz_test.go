package opt_test

import (
	"math"
	"testing"

	"synergy/internal/kernelir"
	"synergy/internal/kernelir/opt"
)

// FuzzOptVsInterp drives the optimizer with arbitrary instruction
// streams (the FuzzCompiledVsInterp corpus scheme: 5 bytes per
// instruction, same parameter/register shape) and uses the interpreter
// as differential oracle:
//
//   - Optimize must never fail translation validation on a valid kernel
//     (fail-safe Err on valid input is itself a pass bug worth finding);
//   - original and optimized kernels must produce bit-identical buffers
//     and identical errors under linear and 2-D launches;
//   - a kernel that runs clean under ExecuteChecked must stay clean
//     after optimization (the converse does not hold: deleting a dead
//     instruction legitimately removes its uninitialized-read trap);
//   - the optimized kernel must be a fixpoint.
//
// Single worker keeps racing fuzzed stores deterministic, as in the
// compile fuzz target.
func FuzzOptVsInterp(f *testing.F) {
	f.Add([]byte{byte(kernelir.OpGlobalID), 0, 0, 0, 0,
		byte(kernelir.OpConstF), 1, 0, 0, 3,
		byte(kernelir.OpStoreGF), 0, 0, 1, 0})
	f.Add([]byte{byte(kernelir.OpRepeatBegin), 0, 0, 0, 4,
		byte(kernelir.OpGlobalID), 1, 0, 0, 0,
		byte(kernelir.OpAddI), 2, 2, 1, 0,
		byte(kernelir.OpRepeatEnd), 0, 0, 0, 0,
		byte(kernelir.OpStoreGI), 0, 2, 2, 1})
	f.Add([]byte{byte(kernelir.OpConstI), 0, 0, 0, 6,
		byte(kernelir.OpStoreLF), 0, 0, 1, 0})
	f.Add([]byte{byte(kernelir.OpConstI), 1, 0, 0, 3,
		byte(kernelir.OpConstI), 2, 0, 0, 5,
		byte(kernelir.OpMulI), 3, 1, 2, 0,
		byte(kernelir.OpStoreGI), 0, 0, 3, 1})
	f.Add([]byte{byte(kernelir.OpRepeatBegin), 0, 0, 0, 8,
		byte(kernelir.OpConstF), 1, 0, 0, 2,
		byte(kernelir.OpSqrtF), 2, 1, 0, 0,
		byte(kernelir.OpRepeatEnd), 0, 0, 0, 0,
		byte(kernelir.OpStoreGF), 0, 0, 2, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		const numRegs = 4
		opCount := int(kernelir.OpRepeatEnd) + 1
		k := &kernelir.Kernel{
			Name: "fuzz",
			Params: []kernelir.Param{
				{Name: "f", IsBuffer: true, Type: kernelir.F32, Access: kernelir.ReadWrite},
				{Name: "i", IsBuffer: true, Type: kernelir.I32, Access: kernelir.ReadWrite},
				{Name: "s", Type: kernelir.F32},
			},
			NumIntRegs:   numRegs,
			NumFloatRegs: numRegs,
			LocalF32:     2,
		}
		for i := 0; i+5 <= len(data) && len(k.Body) < 64; i += 5 {
			in := kernelir.Instr{
				Op:  kernelir.Op(int(data[i]) % opCount),
				Dst: int(data[i+1]) % (numRegs + 2),
				A:   int(data[i+2]) % (numRegs + 2),
				B:   int(data[i+3]) % (numRegs + 2),
				C:   int(data[i+3]) % (numRegs + 2),
				Imm: float64(data[i+4]%8) + 1,
				Buf: int(data[i+4]) % 4,
			}
			k.Body = append(k.Body, in)
		}

		ko, res := opt.Optimize(k)
		if k.Validate() != nil {
			if res.Err == nil {
				t.Fatalf("invalid kernel optimized without error:\n%s", k.Disassemble())
			}
			return
		}
		if res.Err != nil {
			t.Fatalf("translation validation failed on a valid kernel: %v\n%s", res.Err, k.Disassemble())
		}

		// Bound the dynamic work (nested repeats multiply).
		work := 0.0
		if tree, err := kernelir.BuildLoopTree(k.Body); err == nil {
			tree.Walk(func(_ int, _ kernelir.Instr, mult float64) { work += mult })
		}
		if work > 1<<16 {
			return
		}

		mkArgs := func() kernelir.Args {
			return kernelir.Args{
				F32:     map[string][]float32{"f": {1, 2, 3, 4, 5, 6, 7, 8}},
				I32:     map[string][]int32{"i": {8, 7, 6, 5, 4, 3, 2, 1}},
				ScalarF: map[string]float64{"s": 1.5},
			}
		}

		for _, nx := range []int{0, 3} {
			ai, ao := mkArgs(), mkArgs()
			errI := kernelir.InterpretGridWorkers(k, ai, 4, nx, 1)
			errO := kernelir.InterpretGridWorkers(ko, ao, 4, nx, 1)
			if (errI == nil) != (errO == nil) || (errI != nil && errI.Error() != errO.Error()) {
				t.Fatalf("nx=%d: interpreter err %v, optimized err %v\n%s\n-- optimized --\n%s",
					nx, errI, errO, k.Disassemble(), ko.Disassemble())
			}
			for bi := range ai.F32["f"] {
				if math.Float32bits(ai.F32["f"][bi]) != math.Float32bits(ao.F32["f"][bi]) {
					t.Fatalf("nx=%d: f[%d]: original %v != optimized %v\n%s\n-- optimized --\n%s",
						nx, bi, ai.F32["f"][bi], ao.F32["f"][bi], k.Disassemble(), ko.Disassemble())
				}
			}
			for bi := range ai.I32["i"] {
				if ai.I32["i"][bi] != ao.I32["i"][bi] {
					t.Fatalf("nx=%d: i[%d]: original %d != optimized %d\n%s\n-- optimized --\n%s",
						nx, bi, ai.I32["i"][bi], ao.I32["i"][bi], k.Disassemble(), ko.Disassemble())
				}
			}
		}

		// Checked-trap parity, clean direction.
		if kernelir.ExecuteChecked(k, mkArgs(), 4) == nil {
			if err := kernelir.ExecuteChecked(ko, mkArgs(), 4); err != nil {
				t.Fatalf("optimization introduced a checked-execution trap: %v\n%s\n-- optimized --\n%s",
					err, k.Disassemble(), ko.Disassemble())
			}
		}

		// Fixpoint.
		k2, res2 := opt.Optimize(ko)
		if res2.Err != nil {
			t.Fatalf("re-optimizing failed: %v", res2.Err)
		}
		if res2.Changed() || k2 != ko {
			t.Fatalf("not idempotent: %d extra rewrites\n%s", len(res2.Rewrites), ko.Disassemble())
		}
	})
}
