package opt

import (
	"fmt"

	"synergy/internal/kernelir"
)

// Liveness-driven dead-code/dead-store elimination: the promotion of
// the analysis package's deadPass facts from warnings to deletions. A
// pure instruction whose destination is not live after it is deleted;
// memory and local operations are never deleted (loads included — a
// dead local load still participates in ExecuteChecked trap ordering,
// and stores are observable output). Empty Repeat blocks left behind by
// deletions are removed pairwise.
//
// Liveness is a backward pass with two carryover-aware conservatisms:
//
//   - live-out of the whole body is the use-before-def set: per-worker
//     register files persist across work items, so the next item's
//     read-before-write observes this item's last write;
//   - live at the end of a Repeat body additionally includes every
//     register the body reads anywhere — the back edge makes any
//     in-body read reachable from any in-body point.
func dcePass(k *kernelir.Kernel, body []kernelir.Instr) ([]kernelir.Instr, []Rewrite) {
	tree, err := kernelir.BuildLoopTree(body)
	if err != nil {
		return nil, nil
	}
	live := useBeforeDef(k, body)
	dead := make(map[int]bool)

	var scan func(lo, hi int)
	scan = func(lo, hi int) {
		pc := hi - 1
		for pc >= lo {
			in := body[pc]
			if in.Op == kernelir.OpRepeatEnd {
				begin := matchEnd(tree, body, pc)
				// Back edge: everything the body reads is live at its end.
				live.markReads(body, begin+1, pc)
				scan(begin+1, pc)
				pc = begin - 1
				continue
			}
			file, dst, hasDst := writeOf(in)
			if pureOp(in) && hasDst && !live.get(file, dst) {
				dead[pc] = true
				pc--
				continue
			}
			if hasDst {
				live.set(file, dst, false)
			}
			eachRead(in, func(f kernelir.ScalarType, r int) {
				live.set(f, r, true)
			})
			pc--
		}
	}
	scan(0, len(body))

	out := make([]kernelir.Instr, 0, len(body)-len(dead))
	var rws []Rewrite
	for pc, in := range body {
		if dead[pc] {
			rws = append(rws, Rewrite{
				Pass: "dce", PC: pc,
				Note: fmt.Sprintf("%s result never read (dead past this point and not live-in of the next item)", in.Op),
			})
			continue
		}
		out = append(out, in)
	}
	return sweepEmptyLoops(out, rws)
}

// matchEnd finds the RepeatBegin for the RepeatEnd at pc by depth
// counting (LoopTree.Match maps begins to ends; this is the inverse).
func matchEnd(tree *kernelir.LoopTree, body []kernelir.Instr, end int) int {
	depth := 0
	for pc := end - 1; pc >= 0; pc-- {
		switch body[pc].Op {
		case kernelir.OpRepeatEnd:
			depth++
		case kernelir.OpRepeatBegin:
			if depth == 0 {
				return pc
			}
			depth--
		}
	}
	return -1
}

// sweepEmptyLoops removes RepeatBegin/RepeatEnd pairs with empty bodies
// (repeatedly, for nests emptied inside-out). A trip-only loop has no
// effect: the interpreter counts it down and moves on. body must be a
// copy owned by the caller — it is truncated in place.
func sweepEmptyLoops(body []kernelir.Instr, rws []Rewrite) ([]kernelir.Instr, []Rewrite) {
	for {
		idx := -1
		for pc := 0; pc+1 < len(body); pc++ {
			if body[pc].Op == kernelir.OpRepeatBegin && body[pc+1].Op == kernelir.OpRepeatEnd {
				idx = pc
				break
			}
		}
		if idx < 0 {
			break
		}
		rws = append(rws,
			Rewrite{Pass: "dce", PC: idx, Note: "empty repeat block (begin)"},
			Rewrite{Pass: "dce", PC: idx + 1, Note: "empty repeat block (end)"},
		)
		body = append(body[:idx], body[idx+2:]...)
	}
	if len(rws) == 0 {
		return nil, nil
	}
	return body, rws
}
