package opt

import (
	"fmt"
	"math"

	"synergy/internal/kernelir"
)

// Available-expressions CSE via register versioning. Each register
// carries a version counter bumped at every write; an expression key
// combines the opcode, immediate bits and each operand register WITH
// the operand's version at key-build time. A recorded expression is
// reusable iff a key built from the current versions matches and the
// holder register still carries the version it had when recorded —
// stale operands or an overwritten holder simply fail the lookup.
//
// Loops: on entering a Repeat block, every register the subtree writes
// gets its version bumped, because iterations beyond the first observe
// the loop-carried value rather than the pre-loop one. Entries created
// inside the body stay valid for later uses in the same iteration
// (identical execution order every iteration), which is exactly what
// the linear walk checks.
//
// Loads are never CSE'd (stores may intervene, including colliding
// stores from other instructions in the same item); moves are never
// CSE'd (a move of a move is churn, not progress). Everything else pure
// — constants, parameter reads, global-id reads, arithmetic,
// conversions, comparisons, selects — participates. Replacing a float
// recomputation with a move of the first result is bit-exact: same
// operand bits through the same deterministic operation.

type exprKey struct {
	op         kernelir.Op
	imm        uint64 // math.Float64bits so NaN immediates compare equal
	a, b, c    int
	va, vb, vc int
	buf        int
}

type exprHolder struct {
	reg int
	ver int
}

type verState struct {
	ints   []int
	floats []int
}

func (vs *verState) of(file kernelir.ScalarType, reg int) int {
	if file == kernelir.I32 {
		return vs.ints[reg]
	}
	return vs.floats[reg]
}

func (vs *verState) bump(file kernelir.ScalarType, reg int) {
	if file == kernelir.I32 {
		vs.ints[reg]++
	} else {
		vs.floats[reg]++
	}
}

// cseable reports whether in may participate in available-expressions
// numbering.
func cseable(in kernelir.Instr) bool {
	switch in.Op {
	case kernelir.OpMoveI, kernelir.OpMoveF,
		kernelir.OpLoadGF, kernelir.OpLoadGI, kernelir.OpLoadLF:
		return false
	}
	return pureOp(in)
}

func csePass(k *kernelir.Kernel, body []kernelir.Instr) ([]kernelir.Instr, []Rewrite) {
	tree, err := kernelir.BuildLoopTree(body)
	if err != nil {
		return nil, nil
	}
	out := append([]kernelir.Instr(nil), body...)
	var rws []Rewrite
	vs := &verState{ints: make([]int, k.NumIntRegs), floats: make([]int, k.NumFloatRegs)}
	avail := make(map[exprKey]exprHolder)

	mkKey := func(in kernelir.Instr) exprKey {
		c := kernelir.InfoOf(in.Op)
		key := exprKey{op: in.Op, imm: math.Float64bits(in.Imm)}
		if c.HasA {
			key.a, key.va = in.A, vs.of(c.AFile, in.A)
		}
		if c.HasB {
			key.b, key.vb = in.B, vs.of(c.BFile, in.B)
		}
		if c.HasC {
			key.c, key.vc = in.C, vs.of(c.CFile, in.C)
		}
		if c.UsesBuf {
			key.buf = in.Buf
		}
		return key
	}

	var scan func(lo, hi int)
	scan = func(lo, hi int) {
		for pc := lo; pc < hi; pc++ {
			in := out[pc]
			if in.Op == kernelir.OpRepeatBegin {
				end := tree.Match(pc)
				// Kill: iterations beyond the first observe loop-carried
				// values for everything the subtree writes.
				for q := pc + 1; q < end; q++ {
					if file, reg, ok := writeOf(out[q]); ok {
						vs.bump(file, reg)
					}
				}
				scan(pc+1, end)
				pc = end
				continue
			}
			if in.Op == kernelir.OpRepeatEnd {
				continue
			}
			file, dst, hasDst := writeOf(in)
			if !cseable(in) {
				if hasDst {
					vs.bump(file, dst)
				}
				continue
			}
			key := mkKey(in)
			if h, ok := avail[key]; ok && vs.of(file, h.reg) == h.ver && h.reg != dst {
				mov := kernelir.OpMoveI
				if file == kernelir.F32 {
					mov = kernelir.OpMoveF
				}
				out[pc] = kernelir.Instr{Op: mov, Dst: dst, A: h.reg}
				rws = append(rws, Rewrite{
					Pass: "cse", PC: pc,
					Note: fmt.Sprintf("%s over identical operand versions already available in r%d", in.Op, h.reg),
				})
				vs.bump(file, dst)
				continue
			}
			vs.bump(file, dst)
			avail[key] = exprHolder{reg: dst, ver: vs.of(file, dst)}
		}
	}
	scan(0, len(body))
	if len(rws) == 0 {
		return nil, nil
	}
	return out, rws
}
