package opt

import (
	"fmt"
	"math"

	"synergy/internal/kernelir"
)

// Constant propagation is a forward walk over the body carrying "this
// register holds a known constant" facts per register. The entry state
// is ⊤ for every register — NOT zero: per-worker register files carry
// over across work items, so a read before the first write observes the
// previous item's value, and only instructions in this body can
// establish constants. Repeat blocks kill every register their subtree
// writes before the body is entered (iteration two may observe the
// loop-carried value), which makes the single linear walk sound for all
// iterations.

// constVal is the per-register lattice: unknown (⊤) or one known value.
type constVal struct {
	known bool
	i     int64
	f     float64
}

type constState struct {
	ints   []constVal
	floats []constVal
}

func newConstState(k *kernelir.Kernel) *constState {
	return &constState{
		ints:   make([]constVal, k.NumIntRegs),
		floats: make([]constVal, k.NumFloatRegs),
	}
}

func (st *constState) intOf(reg int) (int64, bool) {
	v := st.ints[reg]
	return v.i, v.known
}

func (st *constState) floatOf(reg int) (float64, bool) {
	v := st.floats[reg]
	return v.f, v.known
}

func (st *constState) killWrites(body []kernelir.Instr, lo, hi int) {
	for pc := lo; pc < hi; pc++ {
		if file, reg, ok := writeOf(body[pc]); ok {
			if file == kernelir.I32 {
				st.ints[reg] = constVal{}
			} else {
				st.floats[reg] = constVal{}
			}
		}
	}
}

// transfer updates st with in's effect. It must over-approximate the
// interpreter: a register is marked known only when every execution of
// in (in any launch, any item) produces that exact value.
func (st *constState) transfer(in kernelir.Instr) {
	file, dst, ok := writeOf(in)
	if !ok {
		return
	}
	switch in.Op {
	case kernelir.OpConstI:
		st.ints[dst] = constVal{known: true, i: int64(in.Imm)}
		return
	case kernelir.OpConstF:
		st.floats[dst] = constVal{known: true, f: in.Imm}
		return
	case kernelir.OpMoveI:
		st.ints[dst] = st.ints[in.A]
		return
	case kernelir.OpMoveF:
		st.floats[dst] = st.floats[in.A]
		return
	}
	if v, ok := foldValue(in, st); ok {
		if file == kernelir.I32 {
			st.ints[dst] = v
		} else {
			st.floats[dst] = v
		}
		return
	}
	if file == kernelir.I32 {
		st.ints[dst] = constVal{}
	} else {
		st.floats[dst] = constVal{}
	}
}

// walkConst runs visit over every non-control instruction with the
// constant state as of that point, applying loop kills. visit may
// rewrite body[pc] in place; the transfer runs on the (possibly
// rewritten) instruction.
func walkConst(k *kernelir.Kernel, body []kernelir.Instr, visit func(pc int, st *constState)) {
	tree, err := kernelir.BuildLoopTree(body)
	if err != nil {
		return // Validate-checked earlier; fail safe by doing nothing.
	}
	st := newConstState(k)
	var scan func(lo, hi int)
	scan = func(lo, hi int) {
		for pc := lo; pc < hi; pc++ {
			switch body[pc].Op {
			case kernelir.OpRepeatBegin:
				end := tree.Match(pc)
				st.killWrites(body, pc+1, end)
				scan(pc+1, end)
				pc = end
			case kernelir.OpRepeatEnd:
				// Unreachable: begins jump over their block.
			default:
				visit(pc, st)
				st.transfer(body[pc])
			}
		}
	}
	scan(0, len(body))
}

// immRoundTrips reports whether v survives the float64 Instr.Imm
// encoding (OpConstI stores its value as float64 and the disassembler
// prints int64(Imm), so a folded constant must round-trip exactly).
func immRoundTrips(v int64) bool {
	f := float64(v)
	return f >= math.MinInt64 && f < math.MaxInt64 && int64(f) == v
}

// cvtFIFoldable reports whether int64(f) is exact and portable: the Go
// spec leaves out-of-range float→int conversion implementation-defined,
// so NaN, infinities and magnitudes beyond 2^53 are left to runtime.
func cvtFIFoldable(f float64) bool {
	return !math.IsNaN(f) && math.Abs(f) <= 1<<53
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// foldValue evaluates in over known operands, performing exactly the
// operation interp.go's runItem performs (same Go expressions, so float
// rounding, NaN production and shift masking are identical). It refuses
// to fold div/rem with a zero divisor (the interpreter's x/0 = 0 path
// stays in the code), integer results that do not round-trip through
// the Imm encoding, and float→int conversions outside the exact range.
func foldValue(in kernelir.Instr, st *constState) (constVal, bool) {
	c := kernelir.InfoOf(in.Op)
	var ai, bi, ci int64
	var af, bf float64
	if c.HasA {
		if c.AFile == kernelir.I32 {
			v, ok := st.intOf(in.A)
			if !ok {
				return constVal{}, false
			}
			ai = v
		} else {
			v, ok := st.floatOf(in.A)
			if !ok {
				return constVal{}, false
			}
			af = v
		}
	}
	if c.HasB {
		if c.BFile == kernelir.I32 {
			v, ok := st.intOf(in.B)
			if !ok {
				return constVal{}, false
			}
			bi = v
		} else {
			v, ok := st.floatOf(in.B)
			if !ok {
				return constVal{}, false
			}
			bf = v
		}
	}
	if c.HasC {
		v, ok := st.intOf(in.C)
		if !ok {
			return constVal{}, false
		}
		ci = v
	}

	intVal := func(v int64) (constVal, bool) {
		if !immRoundTrips(v) {
			return constVal{}, false
		}
		return constVal{known: true, i: v}, true
	}
	floatVal := func(v float64) (constVal, bool) {
		return constVal{known: true, f: v}, true
	}

	switch in.Op {
	case kernelir.OpAddI:
		return intVal(ai + bi)
	case kernelir.OpSubI:
		return intVal(ai - bi)
	case kernelir.OpMulI:
		return intVal(ai * bi)
	case kernelir.OpDivI:
		if bi == 0 {
			return constVal{}, false // never folded: x/0 stays in the code
		}
		return intVal(ai / bi)
	case kernelir.OpRemI:
		if bi == 0 {
			return constVal{}, false
		}
		return intVal(ai % bi)
	case kernelir.OpMinI:
		return intVal(min(ai, bi))
	case kernelir.OpMaxI:
		return intVal(max(ai, bi))
	case kernelir.OpCmpLTI:
		return intVal(b2i(ai < bi))
	case kernelir.OpCmpEQI:
		return intVal(b2i(ai == bi))
	case kernelir.OpSelI:
		if ci != 0 {
			return intVal(ai)
		}
		return intVal(bi)
	case kernelir.OpAndI:
		return intVal(ai & bi)
	case kernelir.OpOrI:
		return intVal(ai | bi)
	case kernelir.OpXorI:
		return intVal(ai ^ bi)
	case kernelir.OpShlI:
		return intVal(ai << (uint64(bi) & 63))
	case kernelir.OpShrI:
		return intVal(ai >> (uint64(bi) & 63))
	case kernelir.OpCvtIF:
		return floatVal(float64(ai))
	case kernelir.OpCvtFI:
		if !cvtFIFoldable(af) {
			return constVal{}, false
		}
		return intVal(int64(af))
	case kernelir.OpAddF:
		return floatVal(af + bf)
	case kernelir.OpSubF:
		return floatVal(af - bf)
	case kernelir.OpMulF:
		return floatVal(af * bf)
	case kernelir.OpDivF:
		if bf == 0 {
			return constVal{}, false // never folded, ±0.0 included
		}
		return floatVal(af / bf)
	case kernelir.OpMinF:
		return floatVal(math.Min(af, bf))
	case kernelir.OpMaxF:
		return floatVal(math.Max(af, bf))
	case kernelir.OpAbsF:
		return floatVal(math.Abs(af))
	case kernelir.OpNegF:
		return floatVal(-af)
	case kernelir.OpCmpLTF:
		return intVal(b2i(af < bf))
	case kernelir.OpSelF:
		if ci != 0 {
			return floatVal(af)
		}
		return floatVal(bf)
	case kernelir.OpSqrtF:
		return floatVal(math.Sqrt(af))
	case kernelir.OpExpF:
		return floatVal(math.Exp(af))
	case kernelir.OpLogF:
		return floatVal(math.Log(af))
	case kernelir.OpSinF:
		return floatVal(math.Sin(af))
	case kernelir.OpCosF:
		return floatVal(math.Cos(af))
	case kernelir.OpPowF:
		return floatVal(math.Pow(af, bf))
	case kernelir.OpErfF:
		return floatVal(math.Erf(af))
	}
	// param.i/f, gid variants, loads: launch- or item-dependent.
	return constVal{}, false
}

// foldPass replaces every instruction whose operands are known
// constants with the materialized constant (or, for selects with a
// known condition, with a move of the chosen operand). Instruction
// count is unchanged; downstream passes clean up the orphaned
// producers.
func foldPass(k *kernelir.Kernel, body []kernelir.Instr) ([]kernelir.Instr, []Rewrite) {
	out := append([]kernelir.Instr(nil), body...)
	var rws []Rewrite
	walkConst(k, out, func(pc int, st *constState) {
		in := out[pc]
		switch in.Op {
		case kernelir.OpConstI, kernelir.OpConstF, kernelir.OpMoveI, kernelir.OpMoveF:
			return // already free-form; CSE/DCE handle duplicates
		}
		// A select with a known condition becomes a move even when the
		// chosen operand is not constant.
		if in.Op == kernelir.OpSelI || in.Op == kernelir.OpSelF {
			if cond, ok := st.intOf(in.C); ok {
				src := in.A
				if cond == 0 {
					src = in.B
				}
				mov := kernelir.OpMoveI
				if in.Op == kernelir.OpSelF {
					mov = kernelir.OpMoveF
				}
				out[pc] = kernelir.Instr{Op: mov, Dst: in.Dst, A: src}
				rws = append(rws, Rewrite{
					Pass: "constfold", PC: pc,
					Note: fmt.Sprintf("select condition i%d is the constant %d", in.C, cond),
				})
				return
			}
		}
		if !pureOp(in) {
			return
		}
		v, ok := foldValue(in, st)
		if !ok {
			return
		}
		c := kernelir.InfoOf(in.Op)
		if c.DstFile == kernelir.I32 {
			out[pc] = kernelir.Instr{Op: kernelir.OpConstI, Dst: in.Dst, Imm: float64(v.i)}
			rws = append(rws, Rewrite{
				Pass: "constfold", PC: pc,
				Note: fmt.Sprintf("all operands constant; %s folds to %d", in.Op, v.i),
			})
		} else {
			out[pc] = kernelir.Instr{Op: kernelir.OpConstF, Dst: in.Dst, Imm: v.f}
			rws = append(rws, Rewrite{
				Pass: "constfold", PC: pc,
				Note: fmt.Sprintf("all operands constant; %s folds to %g", in.Op, v.f),
			})
		}
	})
	if len(rws) == 0 {
		return nil, nil
	}
	return out, rws
}
