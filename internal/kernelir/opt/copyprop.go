package opt

import (
	"fmt"

	"synergy/internal/kernelir"
)

// Copy propagation: a read of r, where r was last written by a move
// from s and neither r nor s has been written since, may read s
// directly. Moves are bit copies in both register files, so the
// substitution is bit-exact; it is what turns CSE's moves (and the
// builder's CopyI/CopyF staging moves) into dead code for DCE.
//
// This is the one pass allowed to rewrite memory-operation operands
// (index and stored-value registers): the substituted register provably
// holds identical bits, so the access itself is unchanged. The per-pass
// checker still pins the op/buffer/immediate/loop-path sequence and
// requires every operand change to be logged.
//
// Versioning is the CSE scheme: every write bumps the destination's
// version; a recorded copy is valid only while both r and s still have
// the versions they had at the move. Repeat entry bumps everything the
// subtree writes, which invalidates loop-carried copies for the walk of
// the body.
func copyPropPass(k *kernelir.Kernel, body []kernelir.Instr) ([]kernelir.Instr, []Rewrite) {
	tree, err := kernelir.BuildLoopTree(body)
	if err != nil {
		return nil, nil
	}
	out := append([]kernelir.Instr(nil), body...)
	var rws []Rewrite
	vs := &verState{ints: make([]int, k.NumIntRegs), floats: make([]int, k.NumFloatRegs)}

	type cp struct {
		src            int
		srcVer, ownVer int
	}
	copies := map[kernelir.ScalarType]map[int]cp{
		kernelir.I32: make(map[int]cp),
		kernelir.F32: make(map[int]cp),
	}
	resolve := func(file kernelir.ScalarType, reg int) (int, bool) {
		c, ok := copies[file][reg]
		if !ok || vs.of(file, reg) != c.ownVer || vs.of(file, c.src) != c.srcVer {
			return reg, false
		}
		return c.src, true
	}

	var scan func(lo, hi int)
	scan = func(lo, hi int) {
		for pc := lo; pc < hi; pc++ {
			in := out[pc]
			if in.Op == kernelir.OpRepeatBegin {
				end := tree.Match(pc)
				for q := pc + 1; q < end; q++ {
					if file, reg, ok := writeOf(out[q]); ok {
						vs.bump(file, reg)
					}
				}
				scan(pc+1, end)
				pc = end
				continue
			}
			if in.Op == kernelir.OpRepeatEnd {
				continue
			}
			// Substitute operands before processing the write.
			c := kernelir.InfoOf(in.Op)
			sub := func(slot string, reg *int, file kernelir.ScalarType) {
				if s, ok := resolve(file, *reg); ok && s != *reg {
					rws = append(rws, Rewrite{
						Pass: "copyprop", PC: pc,
						Note: fmt.Sprintf("%s operand %s: r%d is a live copy of r%d", in.Op, slot, *reg, s),
					})
					*reg = s
				}
			}
			if c.HasA {
				sub("A", &in.A, c.AFile)
			}
			if c.HasB {
				sub("B", &in.B, c.BFile)
			}
			if c.HasC {
				sub("C", &in.C, c.CFile)
			}
			out[pc] = in

			file, dst, hasDst := writeOf(in)
			if !hasDst {
				continue
			}
			vs.bump(file, dst)
			delete(copies[file], dst)
			if (in.Op == kernelir.OpMoveI || in.Op == kernelir.OpMoveF) && in.A != dst {
				copies[file][dst] = cp{src: in.A, srcVer: vs.of(file, in.A), ownVer: vs.of(file, dst)}
			}
		}
	}
	scan(0, len(body))
	if len(rws) == 0 {
		return nil, nil
	}
	return out, rws
}
