package kernelir

import (
	"fmt"
	"strings"
)

// Disassemble renders the kernel as readable pseudo-assembly: the
// parameter list, local declaration and one line per instruction with
// Repeat blocks indented. Useful for debugging kernels and for
// inspecting what the feature-extraction pass sees.
func (k *Kernel) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s(", k.Name)
	for i, p := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if p.IsBuffer {
			fmt.Fprintf(&b, "%s %s[%s]", p.Access, p.Type, p.Name)
		} else {
			fmt.Fprintf(&b, "%s %s", p.Type, p.Name)
		}
	}
	b.WriteString(")")
	if k.TrafficFactor > 0 && k.TrafficFactor != 1 {
		fmt.Fprintf(&b, " traffic=%.2f", k.TrafficFactor)
	}
	b.WriteString(" {\n")
	if k.LocalF32 > 0 {
		fmt.Fprintf(&b, "  local f32[%d]\n", k.LocalF32)
	}
	depth := 1
	indent := func() string { return strings.Repeat("  ", depth) }
	for _, in := range k.Body {
		c := class(in.Op)
		switch in.Op {
		case OpRepeatBegin:
			fmt.Fprintf(&b, "%srepeat %d {\n", indent(), int(in.Imm))
			depth++
			continue
		case OpRepeatEnd:
			depth--
			fmt.Fprintf(&b, "%s}\n", indent())
			continue
		}
		b.WriteString(indent())
		if c.hasDst {
			fmt.Fprintf(&b, "%s%d = ", filePrefix(c.dstFile), in.Dst)
		}
		b.WriteString(in.Op.String())
		switch in.Op {
		case OpConstI:
			fmt.Fprintf(&b, " %d", int64(in.Imm))
		case OpConstF:
			fmt.Fprintf(&b, " %g", in.Imm)
		case OpParamI, OpParamF:
			fmt.Fprintf(&b, " %s", k.Params[in.Buf].Name)
		case OpLoadGF, OpLoadGI:
			fmt.Fprintf(&b, " %s[i%d]", k.Params[in.Buf].Name, in.A)
		case OpStoreGF:
			fmt.Fprintf(&b, " %s[i%d], f%d", k.Params[in.Buf].Name, in.A, in.B)
		case OpStoreGI:
			fmt.Fprintf(&b, " %s[i%d], i%d", k.Params[in.Buf].Name, in.A, in.B)
		case OpLoadLF:
			fmt.Fprintf(&b, " local[i%d]", in.A)
		case OpStoreLF:
			fmt.Fprintf(&b, " local[i%d], f%d", in.A, in.B)
		default:
			if c.hasA {
				fmt.Fprintf(&b, " %s%d", filePrefix(c.aFile), in.A)
			}
			if c.hasB {
				fmt.Fprintf(&b, ", %s%d", filePrefix(c.bFile), in.B)
			}
			if c.hasC {
				fmt.Fprintf(&b, ", %s%d", filePrefix(c.cFile), in.C)
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String()
}

func filePrefix(t ScalarType) string {
	if t == I32 {
		return "i"
	}
	return "f"
}
