package kernelir

import (
	"fmt"
	"strings"
)

// Disassemble renders the kernel as readable pseudo-assembly: the
// parameter list, local declaration and one line per instruction with
// Repeat blocks indented. Useful for debugging kernels and for
// inspecting what the feature-extraction pass sees.
func (k *Kernel) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s(", k.Name)
	for i, p := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if p.IsBuffer {
			fmt.Fprintf(&b, "%s %s[%s]", p.Access, p.Type, p.Name)
		} else {
			fmt.Fprintf(&b, "%s %s", p.Type, p.Name)
		}
	}
	b.WriteString(")")
	if k.TrafficFactor > 0 && k.TrafficFactor != 1 {
		fmt.Fprintf(&b, " traffic=%.2f", k.TrafficFactor)
	}
	b.WriteString(" {\n")
	if k.LocalF32 > 0 {
		fmt.Fprintf(&b, "  local f32[%d]\n", k.LocalF32)
	}
	depth := 1
	for pc := range k.Body {
		if k.Body[pc].Op == OpRepeatEnd {
			depth--
		}
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(k.InstrString(pc))
		b.WriteByte('\n')
		if k.Body[pc].Op == OpRepeatBegin {
			depth++
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// InstrString renders one body instruction exactly as Disassemble prints
// it, minus indentation — e.g. "f3 = mul.f f0, f1", "repeat 16 {", "}".
// The static analyzer uses it to anchor diagnostics to source lines.
func (k *Kernel) InstrString(pc int) string {
	if pc < 0 || pc >= len(k.Body) {
		return fmt.Sprintf("<pc %d out of range>", pc)
	}
	in := k.Body[pc]
	c := class(in.Op)
	var b strings.Builder
	switch in.Op {
	case OpRepeatBegin:
		fmt.Fprintf(&b, "repeat %d {", int(in.Imm))
		return b.String()
	case OpRepeatEnd:
		return "}"
	}
	if c.hasDst {
		fmt.Fprintf(&b, "%s%d = ", filePrefix(c.dstFile), in.Dst)
	}
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpConstI:
		fmt.Fprintf(&b, " %d", int64(in.Imm))
	case OpConstF:
		fmt.Fprintf(&b, " %g", in.Imm)
	case OpParamI, OpParamF:
		fmt.Fprintf(&b, " %s", k.paramName(in.Buf))
	case OpLoadGF, OpLoadGI:
		fmt.Fprintf(&b, " %s[i%d]", k.paramName(in.Buf), in.A)
	case OpStoreGF:
		fmt.Fprintf(&b, " %s[i%d], f%d", k.paramName(in.Buf), in.A, in.B)
	case OpStoreGI:
		fmt.Fprintf(&b, " %s[i%d], i%d", k.paramName(in.Buf), in.A, in.B)
	case OpLoadLF:
		fmt.Fprintf(&b, " local[i%d]", in.A)
	case OpStoreLF:
		fmt.Fprintf(&b, " local[i%d], f%d", in.A, in.B)
	default:
		if c.hasA {
			fmt.Fprintf(&b, " %s%d", filePrefix(c.aFile), in.A)
		}
		if c.hasB {
			fmt.Fprintf(&b, ", %s%d", filePrefix(c.bFile), in.B)
		}
		if c.hasC {
			fmt.Fprintf(&b, ", %s%d", filePrefix(c.cFile), in.C)
		}
	}
	return b.String()
}

// paramName tolerates out-of-range parameter indices so InstrString can
// render diagnostics even for kernels Validate rejects.
func (k *Kernel) paramName(buf int) string {
	if buf < 0 || buf >= len(k.Params) {
		return fmt.Sprintf("<param %d>", buf)
	}
	return k.Params[buf].Name
}

func filePrefix(t ScalarType) string {
	if t == I32 {
		return "i"
	}
	return "f"
}
