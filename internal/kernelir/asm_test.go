package kernelir

import (
	"reflect"
	"strings"
	"testing"
)

func sampleKernel() *Kernel {
	return &Kernel{
		Name: "saxpy",
		Params: []Param{
			{Name: "x", IsBuffer: true, Type: F32, Access: Read},
			{Name: "y", IsBuffer: true, Type: F32, Access: ReadWrite},
			{Name: "n", Type: I32},
			{Name: "a", Type: F32},
		},
		NumIntRegs:   2,
		NumFloatRegs: 4,
		LocalF32:     3,
		Body: []Instr{
			{Op: OpGlobalID, Dst: 0},
			{Op: OpParamF, Dst: 0, Buf: 3},
			{Op: OpLoadGF, Dst: 1, A: 0, Buf: 0},
			{Op: OpLoadGF, Dst: 2, A: 0, Buf: 1},
			{Op: OpRepeatBegin, Imm: 3},
			{Op: OpMulF, Dst: 3, A: 0, B: 1},
			{Op: OpAddF, Dst: 2, A: 3, B: 2},
			{Op: OpRepeatEnd},
			{Op: OpStoreLF, A: 0, B: 2},
			{Op: OpLoadLF, Dst: 2, A: 0},
			{Op: OpStoreGF, A: 0, B: 2, Buf: 1},
		},
		TrafficFactor: 0.5,
	}
}

func TestAssembleRoundTripsDisassembly(t *testing.T) {
	t.Parallel()
	k := sampleKernel()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	text := k.Disassemble()
	k2, err := Assemble(text)
	if err != nil {
		t.Fatalf("Assemble failed on:\n%s\n%v", text, err)
	}
	if err := k2.Validate(); err != nil {
		t.Fatalf("assembled kernel invalid: %v", err)
	}
	if got := k2.Disassemble(); got != text {
		t.Fatalf("round trip diverged:\n--- original\n%s--- reassembled\n%s", text, got)
	}
	if !reflect.DeepEqual(k2.Body, k.Body) {
		t.Fatalf("instruction stream changed:\n%+v\n%+v", k2.Body, k.Body)
	}
}

func TestAssembleRejectsMalformedInput(t *testing.T) {
	t.Parallel()
	good := sampleKernel().Disassemble()
	cases := []string{
		"",
		"not a kernel",
		strings.Replace(good, "kernel saxpy", "kernel", 1),
		strings.Replace(good, "add.f", "bogus.op", 1),
		strings.Replace(good, "x[i0]", "zz[i0]", 1),
		strings.Replace(good, "f3 = mul.f f0, f1", "f3 = mul.f f0", 1),
		strings.Replace(good, "f3 = mul.f f0, f1", "f3 = mul.f i0, f1", 1),
		strings.Replace(good, "repeat 3 {", "repeat three {", 1),
		strings.Replace(good, "repeat 3 {", "repeat 0 {", 1),
		strings.Replace(good, "repeat 3 {", "repeat -3 {", 1),
		strings.Replace(good, "repeat 3 {", "repeat 1048577 {", 1), // MaxRepeatTrip + 1
		strings.TrimSuffix(good, "}\n"),
		good + "trailing garbage",
	}
	for _, text := range cases {
		if _, err := Assemble(text); err == nil {
			t.Errorf("Assemble accepted malformed input:\n%s", text)
		}
	}
}

// FuzzDisasmRoundTrip checks build → disassemble → assemble → equivalent
// kernel: any kernel the validator accepts must re-assemble from its own
// disassembly into a kernel with identical disassembly and identical
// execution results.
func FuzzDisasmRoundTrip(f *testing.F) {
	f.Add([]byte{byte(OpGlobalID), 0, 0, 0, 0, byte(OpConstF), 1, 0, 0, 3,
		byte(OpStoreGF), 0, 0, 1, 0})
	f.Add([]byte{byte(OpRepeatBegin), 0, 0, 0, 4, byte(OpAddI), 0, 0, 0, 0,
		byte(OpRepeatEnd), 0, 0, 0, 0})
	f.Add([]byte{byte(OpLoadLF), 1, 2, 3, 4, byte(OpSelF), 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		const numRegs = 4
		k := &Kernel{
			Name: "fuzz",
			Params: []Param{
				{Name: "f", IsBuffer: true, Type: F32, Access: ReadWrite},
				{Name: "i", IsBuffer: true, Type: I32, Access: ReadWrite},
				{Name: "s", Type: F32},
			},
			NumIntRegs:   numRegs,
			NumFloatRegs: numRegs,
			LocalF32:     2,
		}
		for i := 0; i+5 <= len(data) && len(k.Body) < 64; i += 5 {
			in := Instr{
				Op:  Op(int(data[i]) % int(opCount)),
				Dst: int(data[i+1]) % (numRegs + 2),
				A:   int(data[i+2]) % (numRegs + 2),
				B:   int(data[i+3]) % (numRegs + 2),
				C:   int(data[i+3]) % (numRegs + 2),
				Imm: float64(data[i+4]%8) + 1,
				Buf: int(data[i+4]) % 4,
			}
			k.Body = append(k.Body, in)
		}
		if err := k.Validate(); err != nil {
			return
		}
		text := k.Disassemble()
		k2, err := Assemble(text)
		if err != nil {
			t.Fatalf("Assemble rejected valid disassembly: %v\n%s", err, text)
		}
		if err := k2.Validate(); err != nil {
			t.Fatalf("reassembled kernel invalid: %v\n%s", err, text)
		}
		if got := k2.Disassemble(); got != text {
			t.Fatalf("round trip diverged:\n--- original\n%s--- reassembled\n%s", text, got)
		}
		// Execution equivalence on identical inputs.
		newArgs := func() Args {
			return Args{
				F32:     map[string][]float32{"f": {1, 2, 3, 4, 5, 6, 7, 8}},
				I32:     map[string][]int32{"i": {8, 7, 6, 5, 4, 3, 2, 1}},
				ScalarF: map[string]float64{"s": 1.5},
			}
		}
		a1, a2 := newArgs(), newArgs()
		if err := Execute(k, a1, 4); err != nil {
			t.Fatalf("original kernel failed: %v", err)
		}
		if err := Execute(k2, a2, 4); err != nil {
			t.Fatalf("reassembled kernel failed: %v", err)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Fatalf("execution diverged after round trip:\n%+v\n%+v", a1, a2)
		}
	})
}
