// Package kernelir defines the kernel intermediate representation the
// SYnergy reproduction uses in place of SYCL device code. Kernels are
// straight-line register programs (with statically-bounded Repeat blocks)
// over two typed register files, global buffers and a per-work-item local
// scratch. The representation serves three purposes at once:
//
//   - the SYCL runtime's interpreter executes it, so benchmark outputs
//     are real and verifiable;
//   - the compiler pass (internal/features) statically extracts the
//     Table-1 feature vector from it;
//   - the hardware model derives the ground-truth cost from the same
//     static description, so the learning task of §6 is faithful.
package kernelir

import "fmt"

// ScalarType distinguishes the two value types kernels operate on.
type ScalarType int

const (
	// I32 is a 32-bit signed integer (held in the int register file).
	I32 ScalarType = iota
	// F32 is a 32-bit float (held in the float register file).
	F32
)

// String returns the type name.
func (t ScalarType) String() string {
	if t == I32 {
		return "i32"
	}
	return "f32"
}

// AccessMode is the buffer access mode, as in SYCL accessors.
type AccessMode int

const (
	// Read grants load-only access.
	Read AccessMode = iota
	// Write grants store-only access.
	Write
	// ReadWrite grants both.
	ReadWrite
)

// String returns the access-mode name.
func (m AccessMode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "read_write"
	}
}

// Param declares one kernel parameter: a global buffer or a scalar.
type Param struct {
	Name     string
	IsBuffer bool
	Type     ScalarType
	Access   AccessMode // buffers only
}

// Op enumerates the instruction opcodes.
type Op int

// Opcode groups (the comments give the Table-1 feature class each op is
// counted under by the feature-extraction pass; "free" ops model
// register traffic that costs no issue slot in the model).
const (
	// --- free ---
	OpConstI    Op = iota // Dst <- int(Imm)
	OpConstF              // Dst <- Imm
	OpMoveI               // Dst <- A
	OpMoveF               // Dst <- A
	OpGlobalID            // Dst <- linear work-item id
	OpGlobalIDX           // Dst <- x index of a 2-D launch (column)
	OpGlobalIDY           // Dst <- y index of a 2-D launch (row; 0 in 1-D)
	OpParamI              // Dst <- int scalar param Buf
	OpParamF              // Dst <- float scalar param Buf
	OpCvtIF               // Dst(f) <- float(A(i))
	OpCvtFI               // Dst(i) <- trunc(A(f))

	// --- int_add ---
	OpAddI   // Dst <- A + B
	OpSubI   // Dst <- A - B
	OpMinI   // Dst <- min(A, B)
	OpMaxI   // Dst <- max(A, B)
	OpCmpLTI // Dst <- A < B ? 1 : 0
	OpCmpEQI // Dst <- A == B ? 1 : 0
	OpSelI   // Dst <- C != 0 ? A : B (int)

	// --- int_mul ---
	OpMulI // Dst <- A * B

	// --- int_div ---
	OpDivI // Dst <- A / B (0 on divide-by-zero)
	OpRemI // Dst <- A % B (0 on divide-by-zero)

	// --- int_bw ---
	OpAndI // Dst <- A & B
	OpOrI  // Dst <- A | B
	OpXorI // Dst <- A ^ B
	OpShlI // Dst <- A << (B & 63)
	OpShrI // Dst <- A >> (B & 63)

	// --- float_add ---
	OpAddF   // Dst <- A + B
	OpSubF   // Dst <- A - B
	OpMinF   // Dst <- min(A, B)
	OpMaxF   // Dst <- max(A, B)
	OpAbsF   // Dst <- |A|
	OpNegF   // Dst <- -A
	OpCmpLTF // Dst(i) <- A < B ? 1 : 0
	OpSelF   // Dst <- C(i) != 0 ? A : B (float)

	// --- float_mul ---
	OpMulF // Dst <- A * B

	// --- float_div ---
	OpDivF // Dst <- A / B

	// --- sf (special functions) ---
	OpSqrtF // Dst <- sqrt(A)
	OpExpF  // Dst <- exp(A)
	OpLogF  // Dst <- log(A)
	OpSinF  // Dst <- sin(A)
	OpCosF  // Dst <- cos(A)
	OpPowF  // Dst <- pow(A, B)
	OpErfF  // Dst <- erf(A)

	// --- gl_access ---
	OpLoadGF  // Dst(f) <- bufF[Buf][clamp(A)]
	OpStoreGF // bufF[Buf][clamp(A)] <- B(f)
	OpLoadGI  // Dst(i) <- bufI[Buf][clamp(A)]
	OpStoreGI // bufI[Buf][clamp(A)] <- B(i)

	// --- loc_access ---
	OpLoadLF  // Dst(f) <- local[clamp(A)]
	OpStoreLF // local[clamp(A)] <- B(f)

	// --- control (free) ---
	OpRepeatBegin // repeat Imm times until matching OpRepeatEnd
	OpRepeatEnd

	opCount // sentinel
)

var opNames = [...]string{
	OpConstI: "const.i", OpConstF: "const.f", OpMoveI: "mov.i", OpMoveF: "mov.f",
	OpGlobalID: "gid", OpGlobalIDX: "gid.x", OpGlobalIDY: "gid.y",
	OpParamI: "param.i", OpParamF: "param.f",
	OpCvtIF: "cvt.if", OpCvtFI: "cvt.fi",
	OpAddI: "add.i", OpSubI: "sub.i", OpMinI: "min.i", OpMaxI: "max.i",
	OpCmpLTI: "cmplt.i", OpCmpEQI: "cmpeq.i", OpSelI: "sel.i",
	OpMulI: "mul.i", OpDivI: "div.i", OpRemI: "rem.i",
	OpAndI: "and.i", OpOrI: "or.i", OpXorI: "xor.i", OpShlI: "shl.i", OpShrI: "shr.i",
	OpAddF: "add.f", OpSubF: "sub.f", OpMinF: "min.f", OpMaxF: "max.f",
	OpAbsF: "abs.f", OpNegF: "neg.f", OpCmpLTF: "cmplt.f", OpSelF: "sel.f",
	OpMulF: "mul.f", OpDivF: "div.f",
	OpSqrtF: "sqrt.f", OpExpF: "exp.f", OpLogF: "log.f", OpSinF: "sin.f",
	OpCosF: "cos.f", OpPowF: "pow.f", OpErfF: "erf.f",
	OpLoadGF: "ld.g.f", OpStoreGF: "st.g.f", OpLoadGI: "ld.g.i", OpStoreGI: "st.g.i",
	OpLoadLF: "ld.l.f", OpStoreLF: "st.l.f",
	OpRepeatBegin: "repeat", OpRepeatEnd: "end",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if o >= 0 && int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// MaxRepeatTrip bounds static Repeat trip counts. The limit is far above
// anything a real kernel needs (the suite tops out in the hundreds) but
// keeps a single malformed count from turning the interpreter, the
// feature pass or a frequency sweep into an unbounded loop. Assemble,
// Validate and Builder.Repeat all enforce the same bound.
const MaxRepeatTrip = 1 << 20

// Instr is one instruction of the register machine.
type Instr struct {
	Op      Op
	Dst     int     // destination register
	A, B, C int     // operand registers
	Imm     float64 // immediate (constants, repeat trip count)
	Buf     int     // parameter index for loads/stores/param reads
}

// Kernel is a validated kernel program.
type Kernel struct {
	Name string
	// Params declares buffers and scalars in positional order.
	Params []Param
	// Body is the instruction sequence.
	Body []Instr
	// NumIntRegs and NumFloatRegs size the register files.
	NumIntRegs, NumFloatRegs int
	// LocalF32 is the per-work-item float scratch size (0 for none).
	LocalF32 int
	// TrafficFactor is the fraction of global accesses that reach DRAM
	// (cache/coalescing reuse; 1.0 when unset is treated as no reuse).
	// Stencil and tiled kernels set this well below 1. The static
	// feature extraction deliberately does NOT see it — exactly as the
	// paper's naive instruction counts do not see the real hardware's
	// caches — so it contributes honest modelling error to the ML task.
	TrafficFactor float64
}

// opClass describes operand/destination register files per opcode.
type opClass struct {
	dstFile  ScalarType // file of Dst (valid when hasDst)
	hasDst   bool
	aFile    ScalarType
	hasA     bool
	bFile    ScalarType
	hasB     bool
	cFile    ScalarType
	hasC     bool
	usesBuf  bool
	bufKind  ScalarType // buffer element type for memory ops
	isBufOp  bool
	isLocal  bool
	isScalar bool // param read
}

func class(op Op) opClass {
	i, f := I32, F32
	switch op {
	case OpConstI:
		return opClass{dstFile: i, hasDst: true}
	case OpConstF:
		return opClass{dstFile: f, hasDst: true}
	case OpMoveI:
		return opClass{dstFile: i, hasDst: true, aFile: i, hasA: true}
	case OpMoveF:
		return opClass{dstFile: f, hasDst: true, aFile: f, hasA: true}
	case OpGlobalID, OpGlobalIDX, OpGlobalIDY:
		return opClass{dstFile: i, hasDst: true}
	case OpParamI:
		return opClass{dstFile: i, hasDst: true, usesBuf: true, isScalar: true, bufKind: i}
	case OpParamF:
		return opClass{dstFile: f, hasDst: true, usesBuf: true, isScalar: true, bufKind: f}
	case OpCvtIF:
		return opClass{dstFile: f, hasDst: true, aFile: i, hasA: true}
	case OpCvtFI:
		return opClass{dstFile: i, hasDst: true, aFile: f, hasA: true}
	case OpAddI, OpSubI, OpMinI, OpMaxI, OpCmpLTI, OpCmpEQI, OpMulI, OpDivI, OpRemI,
		OpAndI, OpOrI, OpXorI, OpShlI, OpShrI:
		return opClass{dstFile: i, hasDst: true, aFile: i, hasA: true, bFile: i, hasB: true}
	case OpSelI:
		return opClass{dstFile: i, hasDst: true, aFile: i, hasA: true, bFile: i, hasB: true, cFile: i, hasC: true}
	case OpAddF, OpSubF, OpMinF, OpMaxF, OpMulF, OpDivF, OpPowF:
		return opClass{dstFile: f, hasDst: true, aFile: f, hasA: true, bFile: f, hasB: true}
	case OpAbsF, OpNegF, OpSqrtF, OpExpF, OpLogF, OpSinF, OpCosF, OpErfF:
		return opClass{dstFile: f, hasDst: true, aFile: f, hasA: true}
	case OpCmpLTF:
		return opClass{dstFile: i, hasDst: true, aFile: f, hasA: true, bFile: f, hasB: true}
	case OpSelF:
		return opClass{dstFile: f, hasDst: true, aFile: f, hasA: true, bFile: f, hasB: true, cFile: i, hasC: true}
	case OpLoadGF:
		return opClass{dstFile: f, hasDst: true, aFile: i, hasA: true, usesBuf: true, isBufOp: true, bufKind: f}
	case OpStoreGF:
		return opClass{aFile: i, hasA: true, bFile: f, hasB: true, usesBuf: true, isBufOp: true, bufKind: f}
	case OpLoadGI:
		return opClass{dstFile: i, hasDst: true, aFile: i, hasA: true, usesBuf: true, isBufOp: true, bufKind: i}
	case OpStoreGI:
		return opClass{aFile: i, hasA: true, bFile: i, hasB: true, usesBuf: true, isBufOp: true, bufKind: i}
	case OpLoadLF:
		return opClass{dstFile: f, hasDst: true, aFile: i, hasA: true, isLocal: true}
	case OpStoreLF:
		return opClass{aFile: i, hasA: true, bFile: f, hasB: true, isLocal: true}
	case OpRepeatBegin, OpRepeatEnd:
		return opClass{}
	default:
		panic(fmt.Sprintf("kernelir: unknown opcode %d", int(op)))
	}
}

// Validate checks structural well-formedness: register bounds, parameter
// references, access modes, repeat nesting and trip counts.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernelir: kernel has no name")
	}
	if k.TrafficFactor < 0 || k.TrafficFactor > 1 {
		return fmt.Errorf("kernelir: %s: traffic factor %v outside [0, 1]", k.Name, k.TrafficFactor)
	}
	depth := 0
	for pc, in := range k.Body {
		c := class(in.Op)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("kernelir: %s: instr %d (%s): %s", k.Name, pc, in.Op, fmt.Sprintf(format, args...))
		}
		checkReg := func(r int, file ScalarType, role string) error {
			limit := k.NumIntRegs
			if file == F32 {
				limit = k.NumFloatRegs
			}
			if r < 0 || r >= limit {
				return fail("%s register %d out of range [0,%d) for file %s", role, r, limit, file)
			}
			return nil
		}
		if c.hasDst {
			if err := checkReg(in.Dst, c.dstFile, "dst"); err != nil {
				return err
			}
		}
		if c.hasA {
			if err := checkReg(in.A, c.aFile, "A"); err != nil {
				return err
			}
		}
		if c.hasB {
			if err := checkReg(in.B, c.bFile, "B"); err != nil {
				return err
			}
		}
		if c.hasC {
			if err := checkReg(in.C, c.cFile, "C"); err != nil {
				return err
			}
		}
		if c.usesBuf {
			if in.Buf < 0 || in.Buf >= len(k.Params) {
				return fail("parameter index %d out of range", in.Buf)
			}
			p := k.Params[in.Buf]
			if c.isScalar {
				if p.IsBuffer {
					return fail("scalar read of buffer parameter %q", p.Name)
				}
				if p.Type != c.bufKind {
					return fail("scalar parameter %q has type %s, op wants %s", p.Name, p.Type, c.bufKind)
				}
			}
			if c.isBufOp {
				if !p.IsBuffer {
					return fail("memory access to scalar parameter %q", p.Name)
				}
				if p.Type != c.bufKind {
					return fail("buffer %q has element type %s, op wants %s", p.Name, p.Type, c.bufKind)
				}
				isStore := in.Op == OpStoreGF || in.Op == OpStoreGI
				if isStore && p.Access == Read {
					return fail("store to read-only buffer %q", p.Name)
				}
				if !isStore && p.Access == Write {
					return fail("load from write-only buffer %q", p.Name)
				}
			}
		}
		if c.isLocal && k.LocalF32 == 0 {
			return fail("local access but kernel declares no local memory")
		}
		switch in.Op {
		case OpRepeatBegin:
			if in.Imm < 1 || in.Imm != float64(int(in.Imm)) {
				return fail("repeat trip count %v must be a positive integer", in.Imm)
			}
			if in.Imm > MaxRepeatTrip {
				return fail("repeat trip count %v exceeds the maximum %d", in.Imm, MaxRepeatTrip)
			}
			depth++
		case OpRepeatEnd:
			depth--
			if depth < 0 {
				return fail("unmatched repeat end")
			}
		}
	}
	if depth != 0 {
		return fmt.Errorf("kernelir: %s: %d unclosed repeat block(s)", k.Name, depth)
	}
	return nil
}

// ParamIndex returns the positional index of the named parameter.
func (k *Kernel) ParamIndex(name string) (int, bool) {
	for i, p := range k.Params {
		if p.Name == name {
			return i, true
		}
	}
	return 0, false
}
