package kernelir

import "fmt"

// CheckError reports a strict-semantics violation found by
// ExecuteChecked.
type CheckError struct {
	Kernel string
	PC     int   // offending body instruction
	Item   int64 // work-item id (-1 for static, pre-execution findings)
	Msg    string
}

func (e *CheckError) Error() string {
	if e.Item < 0 {
		return fmt.Sprintf("kernelir: %s: checked: instr %d: %s", e.Kernel, e.PC, e.Msg)
	}
	return fmt.Sprintf("kernelir: %s: checked: instr %d (item %d): %s", e.Kernel, e.PC, e.Item, e.Msg)
}

// ExecuteChecked runs the kernel like Execute but enforces the strict
// semantics the static analyzer (internal/kernelir/analysis) reasons
// about: a read of a register no instruction has yet written, or a local
// access whose index falls outside [0, LocalF32), is reported as an
// error instead of a silently-zero read or a clamped access. Global
// accesses keep their documented clamping semantics — boundary-clamped
// stencils depend on them, so they are a feature, not a bug. Buffer
// contents produced by a passing run are bit-identical to Execute's.
//
// The two checks cost nothing at runtime where possible:
//
//   - use-before-def is decided statically. Because the IR is straight
//     line with statically-bounded loops, the first iteration of every
//     Repeat body executes in program order, so a linear scan is exact,
//     not an approximation (see DESIGN.md §9).
//   - local bounds are checked by running a self-instrumented variant of
//     the kernel — each local access is preceded by a bounds probe that
//     records the first offending pc in an appended flag buffer — through
//     the ordinary interpreter. Reusing the interpreter instead of
//     duplicating it means the check can never drift from the real
//     execution semantics.
func ExecuteChecked(k *Kernel, a Args, items int) error {
	return ExecuteCheckedGrid(k, a, items, 0)
}

// ExecuteCheckedGrid is ExecuteChecked over a 2-D range (see
// ExecuteGrid).
func ExecuteCheckedGrid(k *Kernel, a Args, items, nx int) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if err := uninitScan(k); err != nil {
		return err
	}
	hasLocal := false
	for _, in := range k.Body {
		if c := class(in.Op); c.isLocal {
			hasLocal = true
			break
		}
	}
	if !hasLocal {
		return ExecuteGrid(k, a, items, nx)
	}
	if items <= 0 {
		return fmt.Errorf("kernelir: %s: non-positive item count %d", k.Name, items)
	}
	ik, flagName := instrumentLocalBounds(k)
	flags := make([]int32, items)
	ia := a
	ia.I32 = make(map[string][]int32, len(a.I32)+1)
	for name, buf := range a.I32 {
		ia.I32[name] = buf
	}
	ia.I32[flagName] = flags
	if err := ExecuteGrid(ik, ia, items, nx); err != nil {
		return err
	}
	for item, f := range flags {
		if f != 0 {
			return &CheckError{
				Kernel: k.Name, PC: int(f) - 1, Item: int64(item),
				Msg: fmt.Sprintf("local access index outside [0, %d)", k.LocalF32),
			}
		}
	}
	return nil
}

// uninitScan flags the first read of a register no prior instruction has
// written. Registers are zero-initialized by the interpreter, so such a
// read is well-defined but almost certainly a kernel bug — the checked
// mode promotes it to an error.
func uninitScan(k *Kernel) *CheckError {
	defI := make([]bool, k.NumIntRegs)
	defF := make([]bool, k.NumFloatRegs)
	defined := func(file ScalarType, r int) bool {
		if file == I32 {
			return defI[r]
		}
		return defF[r]
	}
	for pc, in := range k.Body {
		c := class(in.Op)
		for _, u := range [...]struct {
			has  bool
			file ScalarType
			reg  int
		}{
			{c.hasA, c.aFile, in.A},
			{c.hasB, c.bFile, in.B},
			{c.hasC, c.cFile, in.C},
		} {
			if u.has && !defined(u.file, u.reg) {
				return &CheckError{
					Kernel: k.Name, PC: pc, Item: -1,
					Msg: fmt.Sprintf("read of register %s%d before any write", filePrefix(u.file), u.reg),
				}
			}
		}
		if c.hasDst {
			if c.dstFile == I32 {
				defI[in.Dst] = true
			} else {
				defF[in.Dst] = true
			}
		}
	}
	return nil
}

// instrumentLocalBounds builds a self-checking variant of k: an appended
// read-write i32 flag buffer (indexed by linear work-item id) records
// pc+1 of the first local access whose index register lies outside
// [0, LocalF32). Fresh probe registers are appended to the int file so
// the original program is undisturbed.
func instrumentLocalBounds(k *Kernel) (*Kernel, string) {
	flagName := "__lint_oob"
	for {
		if _, taken := k.ParamIndex(flagName); !taken {
			break
		}
		flagName += "_"
	}
	ik := *k
	ik.Params = append(append([]Param{}, k.Params...),
		Param{Name: flagName, IsBuffer: true, Type: I32, Access: ReadWrite})
	flagBuf := len(ik.Params) - 1

	rGid := k.NumIntRegs
	rZero, rOne, rLimit, rBad, rProbe, rCur := rGid+1, rGid+2, rGid+3, rGid+4, rGid+5, rGid+6
	ik.NumIntRegs = k.NumIntRegs + 7

	body := make([]Instr, 0, len(k.Body)+16)
	body = append(body,
		Instr{Op: OpGlobalID, Dst: rGid},
		Instr{Op: OpConstI, Dst: rZero, Imm: 0},
		Instr{Op: OpConstI, Dst: rOne, Imm: 1},
		Instr{Op: OpConstI, Dst: rLimit, Imm: float64(k.LocalF32)},
	)
	for pc, in := range k.Body {
		if c := class(in.Op); c.isLocal {
			idx := in.A
			body = append(body,
				Instr{Op: OpCmpLTI, Dst: rBad, A: idx, B: rLimit},  // idx < limit
				Instr{Op: OpXorI, Dst: rBad, A: rBad, B: rOne},     // !(idx < limit)
				Instr{Op: OpCmpLTI, Dst: rProbe, A: idx, B: rZero}, // idx < 0
				Instr{Op: OpOrI, Dst: rBad, A: rBad, B: rProbe},    // out of bounds?
				Instr{Op: OpConstI, Dst: rProbe, Imm: float64(pc + 1)},
				Instr{Op: OpSelI, Dst: rProbe, A: rProbe, B: rZero, C: rBad}, // bad ? pc+1 : 0
				Instr{Op: OpLoadGI, Dst: rCur, A: rGid, Buf: flagBuf},
				Instr{Op: OpSelI, Dst: rCur, A: rCur, B: rProbe, C: rCur}, // keep first hit
				Instr{Op: OpStoreGI, A: rGid, B: rCur, Buf: flagBuf},
			)
		}
		body = append(body, in)
	}
	ik.Body = body
	return &ik, flagName
}
