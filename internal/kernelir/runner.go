package kernelir

import "sync/atomic"

// Runner executes a validated kernel over a resolved parameter
// environment. It is the seam through which alternative executors (the
// closure-threaded compiler in internal/kernelir/compile) replace the
// reference interpreter process-wide.
//
// The contract is bit-exactness: for any kernel that Validate accepts
// and any environment Bind produces, RunGrid must leave every buffer in
// exactly the state the interpreter would (given the same worker
// partition), return byte-identical errors, and preserve checked-mode
// trap ordering. The interpreter stays reachable through Interpret /
// InterpretGrid as the differential-testing oracle for that contract.
//
// RunGrid is called only after ExecuteGrid has already validated the
// kernel, rejected non-positive item counts and bound the arguments, so
// implementations may assume a well-formed kernel and environment.
type Runner interface {
	RunGrid(k *Kernel, env *Bound, items, nx int) error
}

// runnerBox wraps the Runner so a nil interface can be stored in an
// atomic.Value (which rejects nil and inconsistently-typed values).
type runnerBox struct{ r Runner }

var activeRunner atomic.Value // runnerBox

// SetRunner installs r as the process-wide executor behind Execute and
// ExecuteGrid. Passing nil restores the reference interpreter. The
// kernelir/compile package installs its default program cache from its
// init, so importing it (even blankly) switches execution to compiled
// code; tests swap the runner to force oracle comparisons.
func SetRunner(r Runner) {
	activeRunner.Store(runnerBox{r})
}

// ActiveRunner returns the installed Runner, or nil when execution is
// interpreted.
func ActiveRunner() Runner {
	if b, ok := activeRunner.Load().(runnerBox); ok {
		return b.r
	}
	return nil
}
