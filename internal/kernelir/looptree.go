package kernelir

import "fmt"

// LoopNode is one node of a kernel's loop tree: the root spans the whole
// body and every other node is one Repeat block.
type LoopNode struct {
	// Begin and End are the pcs of the OpRepeatBegin / OpRepeatEnd pair
	// (-1 and len(body) for the root). The block's body occupies
	// [Begin+1, End).
	Begin, End int
	// Trip is the static trip count (1 for the root).
	Trip float64
	// Children lists the directly nested Repeat blocks, in body order.
	Children []*LoopNode
}

// LoopTree is the shared structured-control normalization of a kernel
// body. Because the IR's only control flow is statically-bounded Repeat
// nesting, the control-flow graph of any kernel reduces without loss to
// this tree; the interpreter (begin/end matching), the feature
// extraction pass (trip-count multipliers, internal/features) and the
// static analyzer (per-block dataflow spans, internal/kernelir/analysis)
// all walk the same normalization instead of re-deriving it.
type LoopTree struct {
	body  []Instr
	match []int
	Root  *LoopNode
}

// BuildLoopTree normalizes a body's Repeat structure, failing on
// unmatched begin/end pairs.
func BuildLoopTree(body []Instr) (*LoopTree, error) {
	t := &LoopTree{
		body:  body,
		match: make([]int, len(body)),
		Root:  &LoopNode{Begin: -1, End: len(body), Trip: 1},
	}
	stack := []*LoopNode{t.Root}
	for pc, in := range body {
		switch in.Op {
		case OpRepeatBegin:
			n := &LoopNode{Begin: pc, End: -1, Trip: in.Imm}
			top := stack[len(stack)-1]
			top.Children = append(top.Children, n)
			stack = append(stack, n)
		case OpRepeatEnd:
			if len(stack) == 1 {
				return nil, fmt.Errorf("kernelir: unmatched repeat end at %d", pc)
			}
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n.End = pc
			t.match[n.Begin] = pc
			t.match[pc] = n.Begin
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("kernelir: unclosed repeat block")
	}
	return t, nil
}

// Match returns the pc of the matching OpRepeatEnd for an OpRepeatBegin
// pc and vice versa (undefined for other pcs).
func (t *LoopTree) Match(pc int) int { return t.match[pc] }

// Body returns the instruction stream the tree was built from.
func (t *LoopTree) Body() []Instr { return t.body }

// Walk visits every non-control instruction once in body order, passing
// the product of the enclosing Repeat trip counts — the per-work-item
// execution count of that instruction, which is what makes static
// feature extraction exact for this IR.
func (t *LoopTree) Walk(fn func(pc int, in Instr, mult float64)) {
	mult := 1.0
	var stack []float64
	for pc, in := range t.body {
		switch in.Op {
		case OpRepeatBegin:
			stack = append(stack, mult)
			mult *= in.Imm
		case OpRepeatEnd:
			mult = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		default:
			fn(pc, in, mult)
		}
	}
}
