package kernelir

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// fpMemoCap bounds the fingerprint memo. Long-lived callers (the sweep
// engine, the compiled-program cache) fingerprint a stable population of
// kernels and always hit the memo; transient kernels — e.g. the fresh
// instrumented clones ExecuteChecked builds per call, or fuzzer-generated
// bodies — must not grow it without bound, so past the cap fingerprints
// are computed without being remembered.
const fpMemoCap = 4096

var (
	fpMu   sync.Mutex
	fpMemo = make(map[*Kernel]string)
)

// Fingerprint returns a stable identity for the kernel: the hex form of
// the first 16 bytes of the SHA-256 of its disassembly. Textual identity
// is exactly what both the sweep engine's memo and the compiled-program
// cache want — two kernels that disassemble identically have identical
// features, identical ground truth and identical compiled code.
//
// Results are memoized by pointer (kernels are immutable once built);
// the memo is bounded by fpMemoCap.
func Fingerprint(k *Kernel) string {
	fpMu.Lock()
	fp, ok := fpMemo[k]
	fpMu.Unlock()
	if ok {
		return fp
	}
	sum := sha256.Sum256([]byte(k.Disassemble()))
	fp = hex.EncodeToString(sum[:16])
	fpMu.Lock()
	if len(fpMemo) < fpMemoCap {
		fpMemo[k] = fp
	}
	fpMu.Unlock()
	return fp
}
