package compile

import (
	"testing"

	"synergy/internal/kernelir"
)

// loopBodyLen returns the instruction count between the first
// OpRepeatBegin and its matching end at nesting depth 1.
func loopBodyLen(body []kernelir.Instr) int {
	depth, n := 0, 0
	for _, in := range body {
		switch in.Op {
		case kernelir.OpRepeatBegin:
			depth++
			if depth == 1 {
				n = 0
				continue
			}
		case kernelir.OpRepeatEnd:
			if depth == 1 {
				return n
			}
			depth--
		}
		if depth >= 1 {
			n++
		}
	}
	return n
}

func TestHoistInvariantChain(t *testing.T) {
	// gid and c are written outside the loop; t1 depends only on them, t2
	// only on t1 and gid — both must cascade out. The accumulator chain
	// (acc reads its own previous value) must stay in.
	b := kernelir.NewBuilder("hoist_chain")
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	acc := b.CopyI(gid)
	b.Repeat(8, func() {
		c := b.ConstI(3)
		t1 := b.MulI(gid, c)
		t2 := b.AddI(t1, gid)
		b.MoveI(acc, b.AddI(acc, t2))
	})
	b.StoreI(out, gid, acc)
	k := b.MustBuild()

	hoisted, n := hoistBody(k.Body)
	if n != 3 {
		t.Fatalf("hoisted %d instructions, want 3 (const, mul, add)", n)
	}
	// Loop keeps only the accumulator add + move.
	if got := loopBodyLen(hoisted); got != 2 {
		t.Fatalf("loop body has %d instructions after hoisting, want 2:\n%v", got, hoisted)
	}
}

func TestHoistBlockedByEarlierRead(t *testing.T) {
	// r0 is read (by the add) before the const writes it: iteration 1
	// must see the pre-loop value, so the const cannot be hoisted even
	// though it is pure and singly-written.
	body := []kernelir.Instr{
		{Op: kernelir.OpRepeatBegin, Imm: 3},
		{Op: kernelir.OpAddI, Dst: 1, A: 0, B: 0},
		{Op: kernelir.OpConstI, Dst: 0, Imm: 5},
		{Op: kernelir.OpRepeatEnd},
	}
	_, n := hoistBody(body)
	if n != 0 {
		t.Fatalf("hoisted %d instructions out of a read-before-write loop, want 0", n)
	}
}

func TestHoistBlockedByMultipleWrites(t *testing.T) {
	// r1 is written twice in the loop; neither write may move.
	body := []kernelir.Instr{
		{Op: kernelir.OpRepeatBegin, Imm: 3},
		{Op: kernelir.OpConstI, Dst: 1, Imm: 5},
		{Op: kernelir.OpConstI, Dst: 1, Imm: 7},
		{Op: kernelir.OpRepeatEnd},
	}
	_, n := hoistBody(body)
	if n != 0 {
		t.Fatalf("hoisted %d of two same-register writes, want 0", n)
	}
}

func TestHoistExcludesMemoryOps(t *testing.T) {
	// A load is not pure (stores may change the buffer between
	// iterations) and must never be hoisted, even when its index is
	// invariant.
	b := kernelir.NewBuilder("hoist_mem")
	buf := b.BufferF32("buf", kernelir.ReadWrite)
	gid := b.GlobalID()
	acc := b.CopyF(b.ConstF(0))
	b.Repeat(4, func() {
		x := b.LoadF(buf, gid)
		b.MoveF(acc, b.AddF(acc, x))
		b.StoreF(buf, gid, acc)
	})
	b.StoreF(buf, gid, acc)
	k := b.MustBuild()
	_, n := hoistBody(k.Body)
	if n != 0 {
		t.Fatalf("hoisted %d instructions containing memory ops, want 0", n)
	}
}

func TestHoistCascadesThroughNesting(t *testing.T) {
	// A const in the innermost of two loops is invariant at every level
	// and should cascade all the way to the root: two hoist moves.
	body := []kernelir.Instr{
		{Op: kernelir.OpRepeatBegin, Imm: 2},
		{Op: kernelir.OpRepeatBegin, Imm: 3},
		{Op: kernelir.OpConstI, Dst: 0, Imm: 9},
		{Op: kernelir.OpAddI, Dst: 1, A: 1, B: 0}, // accumulator stays
		{Op: kernelir.OpRepeatEnd},
		{Op: kernelir.OpRepeatEnd},
	}
	out, n := hoistBody(body)
	if n != 2 {
		t.Fatalf("hoist moves = %d, want 2 (one per nesting level)", n)
	}
	if out[0].Op != kernelir.OpConstI {
		t.Fatalf("const did not reach the root prologue: %v", out)
	}
}

func TestHoistPreservesStructure(t *testing.T) {
	// Hoisted bodies must still validate (register bounds, balanced
	// repeats) and keep the instruction multiset unchanged — hoisting
	// only reorders.
	b := kernelir.NewBuilder("hoist_struct")
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	acc := b.CopyF(b.ConstF(1))
	b.Repeat(3, func() {
		c := b.ConstF(0.5)
		b.Repeat(2, func() {
			d := b.MulF(c, c)
			b.MoveF(acc, b.AddF(acc, d))
		})
	})
	b.StoreF(out, gid, acc)
	k := b.MustBuild()

	hoisted, n := hoistBody(k.Body)
	if n == 0 {
		t.Fatal("expected hoisting on the nested invariant kernel")
	}
	if len(hoisted) != len(k.Body) {
		t.Fatalf("hoisting changed the instruction count: %d -> %d", len(k.Body), len(hoisted))
	}
	counts := make(map[kernelir.Instr]int)
	for _, in := range k.Body {
		counts[in]++
	}
	for _, in := range hoisted {
		counts[in]--
	}
	for in, c := range counts {
		if c != 0 {
			t.Fatalf("instruction multiset changed at %v (delta %d)", in, c)
		}
	}
	kk := *k
	kk.Body = hoisted
	if err := kk.Validate(); err != nil {
		t.Fatalf("hoisted body fails validation: %v", err)
	}
	if _, err := kernelir.BuildLoopTree(hoisted); err != nil {
		t.Fatalf("hoisted body fails loop-tree construction: %v", err)
	}
}
