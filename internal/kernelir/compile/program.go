package compile

import (
	"fmt"
	"runtime"
	"sync"

	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
)

// machine is the mutable per-worker execution state a compiled program
// threads through its step closures: the two register files, the local
// scratch and the launch geometry. The parameter environment is copied
// in by value (slice headers) so the hot loop never chases the *Bound
// pointer.
type machine struct {
	ints   []int64
	floats []float64
	local  []float64
	gid    int64
	nx     int64
	bufF   [][]float32
	bufI   [][]int32
	scaI   []int64
	scaF   []float64
}

// step executes one compiled operation against the machine. Operand
// indices, immediates and trip counts are captured in the closure at
// compile time, so the per-step cost is a single indirect call with no
// opcode dispatch.
type step func(m *machine)

// Stats summarizes what the compiler did to a kernel.
type Stats struct {
	// Instrs is the instruction count of the source body.
	Instrs int
	// Steps is the number of step closures emitted (all nesting levels).
	Steps int
	// Hoisted counts loop-invariant hoist moves (an instruction that
	// cascades out of two nested loops counts twice).
	Hoisted int
	// Fused counts register moves folded into their producing
	// instruction.
	Fused int
}

// Program is a kernel lowered to closure-threaded form by Compile. It is
// immutable after compilation and safe for concurrent execution; every
// call binds fresh per-worker machine state.
type Program struct {
	k      *kernelir.Kernel
	steps  []step
	numI   int
	numF   int
	localN int
	vec    features.Vector
	stats  Stats
}

// Kernel returns the source kernel.
func (p *Program) Kernel() *kernelir.Kernel { return p.k }

// Stats returns the compilation statistics.
func (p *Program) Stats() Stats { return p.stats }

// Features returns the kernel's static feature vector, extracted once at
// compile time from the original (pre-hoisting) body, so cached programs
// make repeated workload construction free for the sweep engine.
func (p *Program) Features() features.Vector { return p.vec }

// Workload converts the cached feature vector into the device-model
// workload for a launch of the given size. It reproduces
// features.KernelWorkload exactly, including the DRAM traffic-factor
// scaling, without re-walking the kernel body.
func (p *Program) Workload(items int64) hw.Workload {
	w := features.Workload(p.k.Name, p.vec, items)
	if p.k.TrafficFactor > 0 {
		w.GlobalBytes *= p.k.TrafficFactor
	}
	return w
}

// Execute mirrors kernelir.Execute on the compiled program.
func (p *Program) Execute(a kernelir.Args, items int) error {
	return p.ExecuteGrid(a, items, 0)
}

// ExecuteGrid mirrors kernelir.ExecuteGrid on the compiled program,
// including error parity: the item-count check and argument binding run
// in the same order with the same (kernelir-prefixed) messages, so a
// failing call reports byte-identical errors on both paths.
func (p *Program) ExecuteGrid(a kernelir.Args, items, nx int) error {
	return p.ExecuteGridWorkers(a, items, nx, 0)
}

// ExecuteGridWorkers is ExecuteGrid with an explicit worker count
// (0 means GOMAXPROCS), matching kernelir.InterpretGridWorkers so
// differential tests can pin both paths to the same worker geometry.
func (p *Program) ExecuteGridWorkers(a kernelir.Args, items, nx, workers int) error {
	if items <= 0 {
		return fmt.Errorf("kernelir: %s: non-positive item count %d", p.k.Name, items)
	}
	env, err := kernelir.Bind(p.k, a)
	if err != nil {
		return err
	}
	return p.run(env, items, nx, workers)
}

// RunBound executes over an already-resolved environment (the Runner
// path: validation, the item-count check and binding happened in
// kernelir.ExecuteGrid).
func (p *Program) RunBound(env *kernelir.Bound, items, nx, workers int) error {
	return p.run(env, items, nx, workers)
}

// run partitions work-items exactly like the interpreter: workers capped
// at the item count, contiguous ceil(items/workers) chunks, one machine
// per worker whose registers persist across that worker's items (the
// interpreter's observable register-carryover semantics).
func (p *Program) run(env *kernelir.Bound, items, nx, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	chunk := (items + workers - 1) / workers
	if workers == 1 {
		p.runChunk(env, 0, items, nx)
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > items {
			hi = items
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			p.runChunk(env, lo, hi, nx)
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

func (p *Program) runChunk(env *kernelir.Bound, lo, hi, nx int) {
	m := &machine{
		ints:   make([]int64, p.numI),
		floats: make([]float64, p.numF),
		nx:     int64(nx),
		bufF:   env.BufF,
		bufI:   env.BufI,
		scaI:   env.ScaI,
		scaF:   env.ScaF,
	}
	if p.localN > 0 {
		m.local = make([]float64, p.localN)
	}
	steps := p.steps
	for gid := lo; gid < hi; gid++ {
		m.gid = int64(gid)
		for _, s := range steps {
			s(m)
		}
	}
}
