package compile_test

import (
	"testing"

	"synergy/internal/kernelir"
	"synergy/internal/kernelir/compile"
)

// FuzzCompiledVsInterp drives both executors with arbitrary instruction
// streams (the FuzzAnalyze corpus scheme: 5 bytes per instruction, same
// parameter/register shape) and requires byte-identical outcomes:
//
//   - Compile must fail exactly when Validate fails, with the same error
//     the interpreter reports;
//   - for valid kernels, final buffer states must match bit-for-bit and
//     errors must match byte-for-byte, under both linear and 2-D
//     launches.
//
// Comparisons run single-worker: fuzzed kernels freely race on clamped
// stores, and one worker makes both paths fully deterministic without
// weakening coverage of the compiler itself.
func FuzzCompiledVsInterp(f *testing.F) {
	f.Add([]byte{byte(kernelir.OpGlobalID), 0, 0, 0, 0,
		byte(kernelir.OpConstF), 1, 0, 0, 3,
		byte(kernelir.OpStoreGF), 0, 0, 1, 0})
	f.Add([]byte{byte(kernelir.OpRepeatBegin), 0, 0, 0, 4,
		byte(kernelir.OpGlobalID), 1, 0, 0, 0,
		byte(kernelir.OpAddI), 2, 2, 1, 0,
		byte(kernelir.OpRepeatEnd), 0, 0, 0, 0,
		byte(kernelir.OpStoreGI), 0, 2, 2, 1})
	f.Add([]byte{byte(kernelir.OpConstI), 0, 0, 0, 6,
		byte(kernelir.OpStoreLF), 0, 0, 1, 0})
	f.Add([]byte{byte(kernelir.OpParamF), 1, 0, 0, 2,
		byte(kernelir.OpSqrtF), 2, 1, 0, 0,
		byte(kernelir.OpStoreGF), 0, 0, 2, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		const numRegs = 4
		opCount := int(kernelir.OpRepeatEnd) + 1
		k := &kernelir.Kernel{
			Name: "fuzz",
			Params: []kernelir.Param{
				{Name: "f", IsBuffer: true, Type: kernelir.F32, Access: kernelir.ReadWrite},
				{Name: "i", IsBuffer: true, Type: kernelir.I32, Access: kernelir.ReadWrite},
				{Name: "s", Type: kernelir.F32},
			},
			NumIntRegs:   numRegs,
			NumFloatRegs: numRegs,
			LocalF32:     2,
		}
		for i := 0; i+5 <= len(data) && len(k.Body) < 64; i += 5 {
			in := kernelir.Instr{
				Op:  kernelir.Op(int(data[i]) % opCount),
				Dst: int(data[i+1]) % (numRegs + 2),
				A:   int(data[i+2]) % (numRegs + 2),
				B:   int(data[i+3]) % (numRegs + 2),
				C:   int(data[i+3]) % (numRegs + 2),
				Imm: float64(data[i+4]%8) + 1,
				Buf: int(data[i+4]) % 4,
			}
			k.Body = append(k.Body, in)
		}

		valid := k.Validate() == nil
		if valid {
			// Bound the dynamic work (nested repeats multiply).
			work := 0.0
			if tree, err := kernelir.BuildLoopTree(k.Body); err == nil {
				tree.Walk(func(_ int, _ kernelir.Instr, mult float64) { work += mult })
			}
			if work > 1<<16 {
				return
			}
		}

		mkArgs := func() kernelir.Args {
			return kernelir.Args{
				F32:     map[string][]float32{"f": {1, 2, 3, 4, 5, 6, 7, 8}},
				I32:     map[string][]int32{"i": {8, 7, 6, 5, 4, 3, 2, 1}},
				ScalarF: map[string]float64{"s": 1.5},
			}
		}

		prog, errCompile := compile.Compile(k)
		if valid != (errCompile == nil) {
			t.Fatalf("Compile error %v but Validate error %v\n%s", errCompile, k.Validate(), k.Disassemble())
		}
		if !valid {
			errInterp := kernelir.InterpretGridWorkers(k, mkArgs(), 4, 0, 1)
			if errInterp == nil || errInterp.Error() != errCompile.Error() {
				t.Fatalf("invalid kernel: interpreter %v, compile %v", errInterp, errCompile)
			}
			return
		}

		for _, nx := range []int{0, 3} {
			ai, ac := mkArgs(), mkArgs()
			errI := kernelir.InterpretGridWorkers(k, ai, 4, nx, 1)
			errC := prog.ExecuteGridWorkers(ac, 4, nx, 1)
			if (errI == nil) != (errC == nil) || (errI != nil && errI.Error() != errC.Error()) {
				t.Fatalf("nx=%d: interpreter err %v, compiled err %v\n%s", nx, errI, errC, k.Disassemble())
			}
			for bi := range ai.F32["f"] {
				if ai.F32["f"][bi] != ac.F32["f"][bi] {
					t.Fatalf("nx=%d: f[%d]: interpreted %v != compiled %v\n%s",
						nx, bi, ai.F32["f"][bi], ac.F32["f"][bi], k.Disassemble())
				}
			}
			for bi := range ai.I32["i"] {
				if ai.I32["i"][bi] != ac.I32["i"][bi] {
					t.Fatalf("nx=%d: i[%d]: interpreted %d != compiled %d\n%s",
						nx, bi, ai.I32["i"][bi], ac.I32["i"][bi], k.Disassemble())
				}
			}
		}
	})
}
