package compile_test

import (
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/compile"
)

// TestCompiledMatchesSuiteBitExact proves compiled == interpreted across
// the full 23-benchmark suite: two deterministic instances of each
// benchmark, one run on the oracle interpreter and one on the compiled
// program, every bound buffer compared bit-for-bit, and the benchmark's
// own verifier run against the compiled output. Suite kernels write
// disjoint locations per work-item, so the default worker count is
// exact on both paths.
func TestCompiledMatchesSuiteBitExact(t *testing.T) {
	names := benchsuite.Names()
	if len(names) != 23 {
		t.Fatalf("suite has %d benchmarks, want 23", len(names))
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			bm, err := benchsuite.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			instI, err := bm.NewInstance(256)
			if err != nil {
				t.Fatal(err)
			}
			instC, err := bm.NewInstance(256)
			if err != nil {
				t.Fatal(err)
			}
			if instI.Items != instC.Items {
				t.Fatalf("instances disagree on size: %d vs %d", instI.Items, instC.Items)
			}
			prog, err := compile.Cached(bm.Kernel)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := kernelir.Interpret(bm.Kernel, instI.Args, instI.Items); err != nil {
				t.Fatalf("interpret: %v", err)
			}
			if err := prog.Execute(instC.Args, instC.Items); err != nil {
				t.Fatalf("compiled execute: %v", err)
			}
			compareBuffers(t, name, instI.Args, instC.Args)
			if err := instC.Verify(); err != nil {
				t.Errorf("compiled output fails the benchmark verifier: %v", err)
			}
		})
	}
}
