package compile

import "synergy/internal/kernelir"

// Loop-invariant hoisting. The compiler moves pure register computations
// whose operands cannot change across iterations out in front of their
// Repeat block. Because Validate guarantees every Repeat executes at
// least once (trip >= 1), running a hoisted instruction exactly once
// before the loop leaves every register in the same final state as
// running it every iteration — bit-exactly, since the ops involved are
// deterministic and side-effect free.
//
// An instruction is hoisted out of its innermost enclosing loop when:
//
//   - it is a pure register op (has a destination, touches no global or
//     local memory; scalar parameter reads count as pure);
//   - every operand is loop-invariant: all writes to it anywhere in the
//     loop's subtree come from instructions already hoisted ahead of it;
//   - its destination is written exactly once in the loop's subtree (by
//     the instruction itself) and is not read at any earlier position in
//     the loop — otherwise iteration 1 could observe a stale value.
//
// Loops are processed innermost-first, so an instruction hoisted out of
// an inner loop becomes an ordinary instruction of the enclosing loop's
// body and can cascade further out.

// regKey identifies one register in one file.
type regKey struct {
	file kernelir.ScalarType
	reg  int
}

// hitem is either one plain instruction or one nested Repeat block.
type hitem struct {
	in   kernelir.Instr
	loop *hloop
}

type hloop struct {
	begin, end kernelir.Instr
	items      []hitem
}

// parseItems structures a validated (balanced) body into a sequence tree.
func parseItems(body []kernelir.Instr) []hitem {
	var root []hitem
	var stack []*hloop
	put := func(it hitem) {
		if n := len(stack); n > 0 {
			stack[n-1].items = append(stack[n-1].items, it)
		} else {
			root = append(root, it)
		}
	}
	for _, in := range body {
		switch in.Op {
		case kernelir.OpRepeatBegin:
			stack = append(stack, &hloop{begin: in})
		case kernelir.OpRepeatEnd:
			l := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			l.end = in
			put(hitem{loop: l})
		default:
			put(hitem{in: in})
		}
	}
	return root
}

// readKeys returns the registers an instruction reads.
func readKeys(in kernelir.Instr) []regKey {
	info := kernelir.InfoOf(in.Op)
	var out []regKey
	if info.HasA {
		out = append(out, regKey{info.AFile, in.A})
	}
	if info.HasB {
		out = append(out, regKey{info.BFile, in.B})
	}
	if info.HasC {
		out = append(out, regKey{info.CFile, in.C})
	}
	return out
}

// writeKey returns the register an instruction writes, if any.
func writeKey(in kernelir.Instr) (regKey, bool) {
	info := kernelir.InfoOf(in.Op)
	if !info.HasDst {
		return regKey{}, false
	}
	return regKey{info.DstFile, in.Dst}, true
}

// isPure reports whether the instruction is a deterministic register op
// with no memory effects (hoisting candidate).
func isPure(in kernelir.Instr) bool {
	switch in.Op {
	case kernelir.OpRepeatBegin, kernelir.OpRepeatEnd:
		return false
	}
	info := kernelir.InfoOf(in.Op)
	return info.HasDst && !info.IsMemOp && !info.IsLocal
}

// countWrites tallies register writes over a whole subtree.
func countWrites(items []hitem, into map[regKey]int) {
	for _, it := range items {
		if it.loop != nil {
			countWrites(it.loop.items, into)
			continue
		}
		if dk, ok := writeKey(it.in); ok {
			into[dk]++
		}
	}
}

// markReads records every register read in a subtree.
func markReads(items []hitem, into map[regKey]bool) {
	for _, it := range items {
		if it.loop != nil {
			markReads(it.loop.items, into)
			continue
		}
		for _, rk := range readKeys(it.in) {
			into[rk] = true
		}
	}
}

// hoistFromLoop splits one loop's (already innermost-processed) item
// sequence into a prologue of hoisted instructions and the kept body.
func hoistFromLoop(items []hitem, hoisted *int) (prologue, kept []hitem) {
	writeCount := make(map[regKey]int)
	countWrites(items, writeCount)
	hoistedWrites := make(map[regKey]int)
	readBefore := make(map[regKey]bool)

	for _, it := range items {
		if it.loop != nil {
			markReads(it.loop.items, readBefore)
			kept = append(kept, it)
			continue
		}
		in := it.in
		ok := isPure(in)
		var dk regKey
		if ok {
			dk, ok = writeKey(in)
		}
		if ok && (writeCount[dk] != 1 || readBefore[dk]) {
			ok = false
		}
		if ok {
			for _, rk := range readKeys(in) {
				if writeCount[rk] != hoistedWrites[rk] {
					ok = false
					break
				}
			}
		}
		if ok {
			prologue = append(prologue, it)
			hoistedWrites[dk]++
			*hoisted++
		} else {
			kept = append(kept, it)
		}
		for _, rk := range readKeys(in) {
			readBefore[rk] = true
		}
	}
	return prologue, kept
}

// processItems hoists innermost-first: each child loop is processed
// recursively, then its invariants are spliced in front of it at this
// level, where an enclosing loop's pass sees them as plain instructions.
func processItems(items []hitem, hoisted *int) []hitem {
	var out []hitem
	for _, it := range items {
		if it.loop == nil {
			out = append(out, it)
			continue
		}
		inner := processItems(it.loop.items, hoisted)
		pro, kept := hoistFromLoop(inner, hoisted)
		it.loop.items = kept
		out = append(out, pro...)
		out = append(out, it)
	}
	return out
}

func flattenItems(items []hitem, out []kernelir.Instr) []kernelir.Instr {
	for _, it := range items {
		if it.loop != nil {
			out = append(out, it.loop.begin)
			out = flattenItems(it.loop.items, out)
			out = append(out, it.loop.end)
			continue
		}
		out = append(out, it.in)
	}
	return out
}

// hoistBody returns a semantically-equivalent body with loop-invariant
// instructions moved in front of their Repeat blocks, plus the number of
// hoist moves performed (an instruction cascading out of two nested
// loops counts twice).
func hoistBody(body []kernelir.Instr) ([]kernelir.Instr, int) {
	hoisted := 0
	items := processItems(parseItems(body), &hoisted)
	if hoisted == 0 {
		return body, 0
	}
	return flattenItems(items, make([]kernelir.Instr, 0, len(body))), hoisted
}
