package compile_test

import (
	"math"
	"testing"

	"synergy/internal/kernelir"
	"synergy/internal/kernelir/compile"
)

// allOps enumerates every opcode by probing the public operand metadata:
// InfoOf panics past the last defined opcode, so the probe finds the op
// universe without access to the private sentinel. New opcodes therefore
// enlarge the coverage requirement automatically.
func allOps() []kernelir.Op {
	var ops []kernelir.Op
	for i := 0; ; i++ {
		known := func() (ok bool) {
			defer func() { recover() }()
			kernelir.InfoOf(kernelir.Op(i))
			return true
		}()
		if !known {
			return ops
		}
		ops = append(ops, kernelir.Op(i))
	}
}

// diffCase is one entry of the differential matrix: a kernel, an
// argument factory (fresh buffers per call) and a launch geometry.
type diffCase struct {
	name  string
	k     *kernelir.Kernel
	args  func() kernelir.Args
	items int
	nx    int
	// serialOnly marks kernels whose work-items race on clamped stores:
	// their outcome is deterministic only under one worker, so the
	// multi-worker comparison is skipped.
	serialOnly bool
}

// compareBuffers asserts bit-exact equality of every bound buffer.
func compareBuffers(t *testing.T, ctx string, interp, compiled kernelir.Args) {
	t.Helper()
	for name, ib := range interp.F32 {
		cb := compiled.F32[name]
		if len(ib) != len(cb) {
			t.Fatalf("%s: f32 buffer %q length %d vs %d", ctx, name, len(ib), len(cb))
		}
		for i := range ib {
			if math.Float32bits(ib[i]) != math.Float32bits(cb[i]) {
				t.Fatalf("%s: f32 buffer %q[%d]: interpreted %v (bits %08x) != compiled %v (bits %08x)",
					ctx, name, i, ib[i], math.Float32bits(ib[i]), cb[i], math.Float32bits(cb[i]))
			}
		}
	}
	for name, ib := range interp.I32 {
		cb := compiled.I32[name]
		if len(ib) != len(cb) {
			t.Fatalf("%s: i32 buffer %q length %d vs %d", ctx, name, len(ib), len(cb))
		}
		for i := range ib {
			if ib[i] != cb[i] {
				t.Fatalf("%s: i32 buffer %q[%d]: interpreted %d != compiled %d", ctx, name, i, ib[i], cb[i])
			}
		}
	}
}

// compareErrs asserts byte-identical error values.
func compareErrs(t *testing.T, ctx string, interp, compiled error) {
	t.Helper()
	switch {
	case interp == nil && compiled == nil:
	case interp == nil || compiled == nil:
		t.Fatalf("%s: interpreted err %v, compiled err %v", ctx, interp, compiled)
	case interp.Error() != compiled.Error():
		t.Fatalf("%s: error mismatch:\n  interpreted: %s\n  compiled:    %s", ctx, interp, compiled)
	}
}

// runDiff executes one case on both paths under the given worker count
// and asserts bit-exact buffers and errors.
func runDiff(t *testing.T, c diffCase, workers int) {
	t.Helper()
	prog, err := compile.Compile(c.k)
	if err != nil {
		t.Fatalf("Compile(%s): %v", c.k.Name, err)
	}
	ai := c.args()
	ac := c.args()
	errI := kernelir.InterpretGridWorkers(c.k, ai, c.items, c.nx, workers)
	errC := prog.ExecuteGridWorkers(ac, c.items, c.nx, workers)
	ctx := c.name
	compareErrs(t, ctx, errI, errC)
	compareBuffers(t, ctx, ai, ac)
}

func f32ramp(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(i)*0.75 - float32(n)/3
	}
	return out
}

func i32ramp(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i*7 - n)
	}
	return out
}

func intOmnibus() *kernelir.Kernel {
	b := kernelir.NewBuilder("int_omnibus")
	in := b.BufferI32("in", kernelir.Read)
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	si := b.ScalarI("si")
	v := b.LoadI(in, gid)
	zero := b.ConstI(0)
	a1 := b.AddI(v, si)
	a2 := b.SubI(a1, gid)
	a3 := b.MulI(a2, b.ConstI(3))
	d1 := b.DivI(a3, si)
	d0 := b.DivI(a3, zero) // divide-by-zero defined as 0
	r1 := b.RemI(a3, si)
	r0 := b.RemI(a3, zero)
	mn := b.MinI(d1, r1)
	mx := b.MaxI(d0, r0)
	lt := b.CmpLTI(v, si)
	eq := b.CmpEQI(v, si)
	se := b.SelI(lt, mn, mx)
	bw := b.XorI(b.OrI(b.AndI(v, b.ConstI(0x5a)), a1), se)
	sh := b.AddI(b.ShlI(v, b.ConstI(67)), b.ShrI(bw, b.ConstI(-3))) // masked shifts
	tot := b.AddI(b.AddI(sh, eq), b.CopyI(bw))
	b.StoreI(out, gid, tot)
	return b.MustBuild()
}

func floatOmnibus() *kernelir.Kernel {
	b := kernelir.NewBuilder("float_omnibus")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	sf := b.ScalarF("sf")
	x := b.LoadF(in, gid)
	y := b.LoadF(in, b.AddI(gid, b.ConstI(1)))
	acc := b.CopyF(x)
	acc = b.AddF(acc, y)
	acc = b.SubF(acc, sf)
	acc = b.MulF(acc, b.ConstF(1.5))
	acc = b.DivF(acc, b.ConstF(0.75))
	mn := b.MinF(x, y)
	mx := b.MaxF(x, y)
	ab := b.AbsF(b.NegF(mn))
	lt := b.CmpLTF(x, y)
	sel := b.SelF(lt, mx, ab)
	s1 := b.SqrtF(b.AbsF(x))
	s2 := b.ExpF(b.MinF(x, b.ConstF(2)))
	s3 := b.LogF(x) // NaN/-Inf for non-positive inputs, by design
	s4 := b.SinF(x)
	s5 := b.CosF(y)
	s6 := b.PowF(b.AbsF(x), y)
	s7 := b.ErfF(x)
	fi := b.IntToFloat(b.FloatToInt(b.MulF(x, b.ConstF(3))))
	z := acc
	for _, v := range []kernelir.FloatReg{sel, s1, s2, s3, s4, s5, s6, s7, fi} {
		z = b.AddF(z, v)
	}
	b.StoreF(out, gid, z)
	return b.MustBuild()
}

func localScratch() *kernelir.Kernel {
	b := kernelir.NewBuilder("local_scratch")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	b.Local(4)
	gid := b.GlobalID()
	x := b.LoadF(in, gid)
	idx := b.RemI(gid, b.ConstI(4))
	b.StoreLocal(idx, x)
	b.StoreLocal(b.AddI(gid, b.ConstI(100)), b.MulF(x, b.ConstF(2))) // clamps to last slot
	v1 := b.LoadLocal(idx)
	v2 := b.LoadLocal(b.ConstI(-7)) // clamps to slot 0
	b.StoreF(out, gid, b.AddF(v1, v2))
	return b.MustBuild()
}

func gridKernel() *kernelir.Kernel {
	b := kernelir.NewBuilder("grid_xy")
	out := b.BufferI32("out", kernelir.Write)
	x, y := b.GlobalID2()
	v := b.AddI(b.MulI(x, b.ConstI(100)), y)
	b.StoreI(out, b.GlobalID(), v)
	return b.MustBuild()
}

func repeatOne() *kernelir.Kernel {
	b := kernelir.NewBuilder("repeat_one")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	acc := b.CopyF(b.ConstF(0.5))
	b.Repeat(1, func() {
		b.MoveF(acc, b.AddF(acc, b.LoadF(in, gid)))
	})
	b.StoreF(out, gid, acc)
	return b.MustBuild()
}

func repeatNested() *kernelir.Kernel {
	b := kernelir.NewBuilder("repeat_nested")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	si := b.ScalarI("si")
	acc := b.CopyF(b.ConstF(0))
	iv := b.CopyI(gid)
	b.Repeat(3, func() {
		t1 := b.MulI(si, b.ConstI(7)) // invariant; cascades outward
		b.Repeat(4, func() {
			t2 := b.AddI(t1, si) // invariant in the inner loop
			x := b.LoadF(in, b.AddI(iv, t2))
			b.MoveF(acc, b.AddF(acc, x))         // move-fusable accumulator
			b.MoveI(iv, b.AddI(iv, b.ConstI(1))) // move-fusable induction
		})
	})
	b.StoreF(out, gid, acc)
	return b.MustBuild()
}

func maxTrip() *kernelir.Kernel {
	b := kernelir.NewBuilder("max_trip")
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	one := b.ConstI(1)
	cnt := b.CopyI(b.ConstI(0))
	b.Repeat(kernelir.MaxRepeatTrip, func() {
		b.MoveI(cnt, b.AddI(cnt, one))
	})
	b.StoreI(out, gid, cnt)
	return b.MustBuild()
}

func oobClamp() *kernelir.Kernel {
	b := kernelir.NewBuilder("oob_clamp")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	lo := b.LoadF(in, b.SubI(gid, b.ConstI(5)))
	hi := b.LoadF(in, b.AddI(gid, b.ConstI(1000)))
	b.StoreF(out, gid, b.AddF(lo, hi))
	return b.MustBuild()
}

// carryoverKernel observes the per-worker register files surviving
// between work-items (registers are not reset between items): the first
// stores publish whatever the previous item in the chunk left behind.
func carryoverKernel() *kernelir.Kernel {
	return &kernelir.Kernel{
		Name: "carryover",
		Params: []kernelir.Param{
			{Name: "iout", IsBuffer: true, Type: kernelir.I32, Access: kernelir.ReadWrite},
			{Name: "fout", IsBuffer: true, Type: kernelir.F32, Access: kernelir.ReadWrite},
		},
		NumIntRegs:   2,
		NumFloatRegs: 2,
		Body: []kernelir.Instr{
			{Op: kernelir.OpGlobalID, Dst: 1},
			{Op: kernelir.OpStoreGI, A: 1, B: 0, Buf: 0}, // iout[gid] = r0 before r0 is written
			{Op: kernelir.OpStoreGF, A: 1, B: 0, Buf: 1}, // fout[gid] = f0 before f0 is written
			{Op: kernelir.OpAddI, Dst: 0, A: 0, B: 1},    // r0 += gid
			{Op: kernelir.OpConstF, Dst: 1, Imm: 1.5},
			{Op: kernelir.OpAddF, Dst: 0, A: 0, B: 1}, // f0 += 1.5
		},
	}
}

func collidingStores() *kernelir.Kernel {
	b := kernelir.NewBuilder("colliding_stores")
	iout := b.BufferI32("iout", kernelir.Write)
	fout := b.BufferF32("fout", kernelir.Write)
	gid := b.GlobalID()
	neg := b.ConstI(-5) // clamps to index 0: every item hits the same slot
	b.StoreI(iout, neg, gid)
	b.StoreF(fout, neg, b.IntToFloat(gid))
	return b.MustBuild()
}

func diffCases() []diffCase {
	return []diffCase{
		{
			name:  "empty",
			k:     kernelir.NewBuilder("empty").MustBuild(),
			args:  func() kernelir.Args { return kernelir.Args{} },
			items: 3,
		},
		{
			name: "int_omnibus",
			k:    intOmnibus(),
			args: func() kernelir.Args {
				return kernelir.Args{
					I32:     map[string][]int32{"in": i32ramp(8), "out": make([]int32, 8)},
					ScalarI: map[string]int64{"si": 5},
				}
			},
			items: 8,
		},
		{
			name: "float_omnibus",
			k:    floatOmnibus(),
			args: func() kernelir.Args {
				in := f32ramp(9)
				in[3] = float32(math.NaN())
				in[5] = -2.5
				return kernelir.Args{
					F32:     map[string][]float32{"in": in, "out": make([]float32, 8)},
					ScalarF: map[string]float64{"sf": 0.25},
				}
			},
			items: 8,
		},
		{
			name: "local_scratch",
			k:    localScratch(),
			args: func() kernelir.Args {
				return kernelir.Args{F32: map[string][]float32{"in": f32ramp(6), "out": make([]float32, 6)}}
			},
			items: 6,
		},
		{
			name: "grid_2d",
			k:    gridKernel(),
			args: func() kernelir.Args {
				return kernelir.Args{I32: map[string][]int32{"out": make([]int32, 10)}}
			},
			items: 10,
			nx:    4, // non-divisible width exercises %, / geometry
		},
		{
			name: "grid_linear",
			k:    gridKernel(),
			args: func() kernelir.Args {
				return kernelir.Args{I32: map[string][]int32{"out": make([]int32, 10)}}
			},
			items: 10,
			nx:    0, // degenerate 1-D: x = gid, y = 0
		},
		{
			name: "repeat_one",
			k:    repeatOne(),
			args: func() kernelir.Args {
				return kernelir.Args{F32: map[string][]float32{"in": f32ramp(4), "out": make([]float32, 4)}}
			},
			items: 4,
		},
		{
			name: "repeat_nested",
			k:    repeatNested(),
			args: func() kernelir.Args {
				return kernelir.Args{
					F32:     map[string][]float32{"in": f32ramp(64), "out": make([]float32, 6)},
					ScalarI: map[string]int64{"si": 2},
				}
			},
			items: 6,
		},
		{
			name: "max_trip_boundary",
			k:    maxTrip(),
			args: func() kernelir.Args {
				return kernelir.Args{I32: map[string][]int32{"out": make([]int32, 2)}}
			},
			items: 2,
		},
		{
			name: "oob_clamp",
			k:    oobClamp(),
			args: func() kernelir.Args {
				return kernelir.Args{F32: map[string][]float32{"in": f32ramp(8), "out": make([]float32, 8)}}
			},
			items: 8,
		},
		{
			name: "register_carryover",
			k:    carryoverKernel(),
			args: func() kernelir.Args {
				return kernelir.Args{
					I32: map[string][]int32{"iout": make([]int32, 16)},
					F32: map[string][]float32{"fout": make([]float32, 16)},
				}
			},
			items: 16,
		},
		{
			name: "colliding_stores",
			k:    collidingStores(),
			args: func() kernelir.Args {
				return kernelir.Args{
					I32: map[string][]int32{"iout": make([]int32, 4)},
					F32: map[string][]float32{"fout": make([]float32, 4)},
				}
			},
			items:      8,
			serialOnly: true,
		},
	}
}

// TestCompiledMatchesInterpreter is the differential matrix: empty
// kernels, single-iteration and MaxRepeatTrip loops, grid vs. linear
// launches, register carryover, clamped/colliding accesses — each case
// run on both paths under one worker and (when race-free) the default
// worker count, with bit-exact buffer and error comparison. It finishes
// by asserting the matrix exercises every opcode OperandInfo knows, so
// a new opcode cannot ship without differential coverage.
func TestCompiledMatchesInterpreter(t *testing.T) {
	cases := diffCases()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			runDiff(t, c, 1)
			if !c.serialOnly {
				runDiff(t, c, 0)
			}
		})
	}

	t.Run("opcode_coverage", func(t *testing.T) {
		covered := make(map[kernelir.Op]bool)
		for _, c := range cases {
			for _, in := range c.k.Body {
				covered[in.Op] = true
			}
		}
		for _, op := range allOps() {
			if !covered[op] {
				t.Errorf("opcode %v (%d) is not exercised by the differential matrix", op, int(op))
			}
		}
	})
}

// TestCompiledStats sanity-checks that the optimizer actually fired on
// the nested-loop case: constants and invariant arithmetic hoisted out
// of the loops, accumulator/induction moves fused into their producers.
func TestCompiledStats(t *testing.T) {
	prog, err := compile.Compile(repeatNested())
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stats()
	if st.Hoisted == 0 {
		t.Errorf("expected loop-invariant hoisting on repeat_nested, got stats %+v", st)
	}
	if st.Fused < 2 {
		t.Errorf("expected move fusion of accumulator and induction updates, got stats %+v", st)
	}
	if st.Steps >= st.Instrs {
		t.Errorf("expected fewer steps than instructions after fusion, got stats %+v", st)
	}
}

// TestCompiledErrorParity proves binding and launch errors are
// byte-identical across paths, and that Compile fails exactly like the
// interpreter's Validate on malformed kernels.
func TestCompiledErrorParity(t *testing.T) {
	k := floatOmnibus()
	prog, err := compile.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	goodArgs := func() kernelir.Args {
		return kernelir.Args{
			F32:     map[string][]float32{"in": f32ramp(9), "out": make([]float32, 8)},
			ScalarF: map[string]float64{"sf": 0.25},
		}
	}

	cases := []struct {
		name  string
		args  func() kernelir.Args
		items int
	}{
		{"missing_buffer", func() kernelir.Args {
			a := goodArgs()
			delete(a.F32, "in")
			return a
		}, 8},
		{"empty_buffer", func() kernelir.Args {
			a := goodArgs()
			a.F32["out"] = nil
			a.F32["out"] = []float32{}
			return a
		}, 8},
		{"missing_scalar", func() kernelir.Args {
			a := goodArgs()
			delete(a.ScalarF, "sf")
			return a
		}, 8},
		{"zero_items", goodArgs, 0},
		{"negative_items", goodArgs, -3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errI := kernelir.InterpretGridWorkers(k, c.args(), c.items, 0, 1)
			errC := prog.ExecuteGridWorkers(c.args(), c.items, 0, 1)
			if errI == nil || errC == nil {
				t.Fatalf("expected errors, got interpreted %v, compiled %v", errI, errC)
			}
			compareErrs(t, c.name, errI, errC)
		})
	}

	t.Run("invalid_kernel", func(t *testing.T) {
		bad := &kernelir.Kernel{
			Name:       "bad_reg",
			NumIntRegs: 1,
			Body:       []kernelir.Instr{{Op: kernelir.OpAddI, Dst: 3, A: 0, B: 0}},
		}
		_, errCompile := compile.Compile(bad)
		errInterp := kernelir.Interpret(bad, kernelir.Args{}, 4)
		if errCompile == nil || errInterp == nil {
			t.Fatalf("expected validation errors, got compile %v, interpret %v", errCompile, errInterp)
		}
		compareErrs(t, "invalid_kernel", errInterp, errCompile)
	})
}

// TestRunnerDispatch asserts that importing this package switched
// kernelir's process-wide execution to the compiled path, and that the
// dispatched execution matches the oracle bit-exactly.
func TestRunnerDispatch(t *testing.T) {
	if r := kernelir.ActiveRunner(); r != compile.Default() {
		t.Fatalf("active runner = %v, want the default compile cache", r)
	}
	k := repeatNested()
	mk := func() kernelir.Args {
		return kernelir.Args{
			F32:     map[string][]float32{"in": f32ramp(64), "out": make([]float32, 6)},
			ScalarI: map[string]int64{"si": 2},
		}
	}
	runs := compile.Default().Runs()
	aE, aI := mk(), mk()
	if err := kernelir.Execute(k, aE, 6); err != nil {
		t.Fatal(err)
	}
	if got := compile.Default().Runs(); got != runs+1 {
		t.Fatalf("Execute did not dispatch through the compiled runner: runs %d -> %d", runs, got)
	}
	if err := kernelir.Interpret(k, aI, 6); err != nil {
		t.Fatal(err)
	}
	compareBuffers(t, "runner_dispatch", aI, aE)
}
