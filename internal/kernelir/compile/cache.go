package compile

import (
	"container/list"
	"sync"
	"sync/atomic"

	"synergy/internal/kernelir"
	"synergy/internal/kernelir/opt"
)

// DefaultCacheCap bounds the default program cache, mirroring the sweep
// engine's LRU-cap pattern. Programs are small (a slice of closures per
// kernel) and real kernel populations are far below this; the cap exists
// so adversarial churn — fuzzers, ExecuteChecked's per-call instrumented
// clones — cannot grow the cache without bound.
const DefaultCacheCap = 4096

// Option configures a Cache.
type Option func(*Cache)

// WithCacheCap sets the maximum number of cached programs (minimum 1).
func WithCacheCap(n int) Option {
	return func(c *Cache) { c.cap = n }
}

// WithHook installs a function called once per successful compilation
// with the kernel fingerprint, after the program is built and before
// waiters are released. Tests use it to assert exactly-once compilation
// per fingerprint.
func WithHook(fn func(fingerprint string)) Option {
	return func(c *Cache) { c.SetHook(fn) }
}

// entry is one cache slot. done closes when the compile attempt
// finishes; prog/err are immutable afterwards.
type entry struct {
	fp   string
	done chan struct{}
	prog *Program
	err  error
	elem *list.Element
}

// hookBox wraps the hook so atomic.Value accepts a nil function.
type hookBox struct{ fn func(string) }

// Cache memoizes compiled programs by kernel fingerprint (the same
// SHA-256 content identity the sweep engine keys its memo on). Lookups
// are singleflight: concurrent requests for one fingerprint share a
// single compilation, and failed compilations are not memoized. The
// cache is LRU-bounded and safe for concurrent use; it implements
// kernelir.Runner, so an instance can be installed as the process
// executor (the package init installs Default()).
type Cache struct {
	cap  int
	hook atomic.Value // hookBox

	mu      sync.Mutex
	entries map[string]*entry
	order   *list.List // *entry; front is most recently used

	compiles  atomic.Int64
	hits      atomic.Int64
	evictions atomic.Int64
	runs      atomic.Int64
}

// NewCache builds a program cache.
func NewCache(opts ...Option) *Cache {
	c := &Cache{
		cap:     DefaultCacheCap,
		entries: make(map[string]*entry),
		order:   list.New(),
	}
	for _, o := range opts {
		o(c)
	}
	if c.cap < 1 {
		c.cap = 1
	}
	return c
}

// SetHook replaces the compilation hook (nil disables it).
func (c *Cache) SetHook(fn func(fingerprint string)) {
	c.hook.Store(hookBox{fn})
}

func (c *Cache) hookFn() func(string) {
	if b, ok := c.hook.Load().(hookBox); ok {
		return b.fn
	}
	return nil
}

// Get returns the compiled program for the kernel, compiling it at most
// once per fingerprint. Concurrent callers for the same kernel block on
// the single in-flight compilation. Compile errors are returned but not
// memoized, so a later call may retry.
//
// The cache key is the fingerprint of the kernel's optimizer normal
// form: Optimize is deterministic and idempotent, so kernels that are
// structurally equal after optimization — however differently they were
// written — share one compiled program. (For an invalid kernel the
// optimizer fails safe and returns the kernel itself, so the key falls
// back to the raw fingerprint and Compile reports the Validate error.)
func (c *Cache) Get(k *kernelir.Kernel) (*Program, error) {
	fp := kernelir.Fingerprint(opt.Cached(k))
	c.mu.Lock()
	if e, ok := c.entries[fp]; ok {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.done
		return e.prog, e.err
	}
	e := &entry{fp: fp, done: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.entries[fp] = e
	for c.order.Len() > c.cap {
		back := c.order.Back()
		old := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.entries, old.fp)
		c.evictions.Add(1)
	}
	c.mu.Unlock()

	prog, err := Compile(k)
	e.prog, e.err = prog, err
	if err == nil {
		c.compiles.Add(1)
		if h := c.hookFn(); h != nil {
			h(fp)
		}
	} else {
		// Drop the failed entry — guarded by identity, since an eviction
		// plus re-insert may have replaced the slot while we compiled.
		c.mu.Lock()
		if cur, ok := c.entries[fp]; ok && cur == e {
			c.order.Remove(e.elem)
			delete(c.entries, fp)
		}
		c.mu.Unlock()
	}
	close(e.done)
	return prog, err
}

// RunGrid implements kernelir.Runner: compile (or fetch) and execute.
func (c *Cache) RunGrid(k *kernelir.Kernel, env *kernelir.Bound, items, nx int) error {
	c.runs.Add(1)
	prog, err := c.Get(k)
	if err != nil {
		return err
	}
	return prog.run(env, items, nx, 0)
}

// Compiles returns the number of successful compilations.
func (c *Cache) Compiles() int64 { return c.compiles.Load() }

// Hits returns the number of lookups that found an entry (including
// joins on an in-flight compilation).
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Evictions returns the number of LRU evictions.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Runs returns the number of executions dispatched through the cache's
// Runner entry point.
func (c *Cache) Runs() int64 { return c.runs.Load() }

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

var defaultCache = NewCache()

// Default returns the process-wide program cache that init installs as
// the kernelir Runner.
func Default() *Cache { return defaultCache }

// Cached compiles through the default cache.
func Cached(k *kernelir.Kernel) (*Program, error) { return defaultCache.Get(k) }

// Importing the package switches kernelir execution to compiled code:
// the default cache becomes the process Runner (restore the interpreter
// with kernelir.SetRunner(nil)).
func init() {
	kernelir.SetRunner(defaultCache)
}
