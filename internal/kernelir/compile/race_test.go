package compile_test

import (
	"fmt"
	"sync"
	"testing"

	"synergy/internal/kernelir"
	"synergy/internal/kernelir/compile"
)

// namedKernel builds a trivial distinct kernel per name so each has its
// own fingerprint.
func namedKernel(name string, scale int64) *kernelir.Kernel {
	b := kernelir.NewBuilder(name)
	out := b.BufferI32("out", kernelir.Write)
	gid := b.GlobalID()
	b.StoreI(out, gid, b.MulI(gid, b.ConstI(scale)))
	return b.MustBuild()
}

// TestCacheSingleflight hammers one cache with many goroutines asking
// for the same kernel and requires exactly one compilation: every
// caller must block on the in-flight compile and receive the identical
// *Program.
func TestCacheSingleflight(t *testing.T) {
	c := compile.NewCache()
	k := namedKernel("singleflight", 3)

	const goroutines = 64
	progs := make([]*compile.Program, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			p, err := c.Get(k)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			progs[i] = p
		}(i)
	}
	start.Done()
	done.Wait()

	if got := c.Compiles(); got != 1 {
		t.Fatalf("cache compiled %d times for one kernel, want exactly 1", got)
	}
	for i := 1; i < goroutines; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("goroutine %d received a different *Program than goroutine 0", i)
		}
	}
	if c.Hits() != goroutines-1 {
		t.Fatalf("hits = %d, want %d", c.Hits(), goroutines-1)
	}
}

// TestCacheLRUBounded runs concurrent lookups of more kernels than the
// cache holds: evictions must occur, the resident count must respect
// the cap, and every returned program must still execute the kernel it
// was compiled from.
func TestCacheLRUBounded(t *testing.T) {
	const cap = 2
	c := compile.NewCache(compile.WithCacheCap(cap))
	kernels := make([]*kernelir.Kernel, 4)
	for i := range kernels {
		kernels[i] = namedKernel(fmt.Sprintf("lru_%d", i), int64(i+1))
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 32; round++ {
				k := kernels[(g+round)%len(kernels)]
				p, err := c.Get(k)
				if err != nil {
					t.Errorf("Get(%s): %v", k.Name, err)
					return
				}
				if p.Kernel().Name != k.Name {
					t.Errorf("cache returned program for %q, asked for %q", p.Kernel().Name, k.Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if c.Evictions() == 0 {
		t.Fatal("no evictions after cycling 4 kernels through a cap-2 cache")
	}
	if c.Len() > cap {
		t.Fatalf("cache holds %d entries, cap is %d", c.Len(), cap)
	}
	// Evicted entries recompile on demand and still run correctly.
	for i, k := range kernels {
		p, err := c.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int32, 4)
		if err := p.Execute(kernelir.Args{I32: map[string][]int32{"out": out}}, 4); err != nil {
			t.Fatal(err)
		}
		for gid, v := range out {
			if want := int32(gid * (i + 1)); v != want {
				t.Fatalf("%s: out[%d] = %d, want %d", k.Name, gid, v, want)
			}
		}
	}
}

// TestCacheFailedCompileNotMemoized asserts invalid kernels are
// recompiled on each request (errors are not cached) and never count
// as resident entries.
func TestCacheFailedCompileNotMemoized(t *testing.T) {
	c := compile.NewCache()
	bad := &kernelir.Kernel{Name: "bad", Body: []kernelir.Instr{{Op: kernelir.OpRepeatEnd}}}
	for i := 0; i < 3; i++ {
		if _, err := c.Get(bad); err == nil {
			t.Fatal("invalid kernel compiled successfully")
		}
	}
	if c.Len() != 0 {
		t.Fatalf("failed compiles left %d resident entries", c.Len())
	}
}
