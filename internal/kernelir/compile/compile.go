// Package compile lowers validated kernelir kernels into closure-threaded
// executable programs: a one-time compilation that reuses BuildLoopTree
// for loop normalization, hoists loop-invariant register computations in
// front of their Repeat blocks, precomputes trip counts, folds register
// moves into their producers and specializes every instruction into a
// step closure — so the per-item hot loop is a flat walk over indirect
// calls with no opcode dispatch, no trip-count map and no per-iteration
// allocation.
//
// The contract with the interpreter is bit-exactness: for any kernel
// Validate accepts, a compiled Program leaves every buffer in exactly the
// state kernelir.Interpret would produce (given the same worker
// geometry), returns byte-identical errors and preserves ExecuteChecked
// trap ordering. The interpreter remains the differential-testing oracle
// for that contract (TestCompiledMatchesInterpreter, FuzzCompiledVsInterp).
//
// Importing this package (even blankly) installs its default program
// cache as the process-wide kernelir Runner, switching Execute and
// ExecuteGrid to compiled code transparently.
package compile

import (
	"fmt"
	"math"

	"synergy/internal/features"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/opt"
)

// Compile lowers a kernel into executable form. It fails exactly when
// Validate fails (with the same error), so Compile-then-run and
// interpret report identical errors for invalid kernels.
//
// The kernel is first brought into optimizer normal form (opt.Cached:
// constant folding, CSE, copy propagation, IR-level LICM, dead-code
// elimination — each application translation-validated), then lowered.
// Stats.Hoisted counts IR-level LICM moves plus the lowering's own
// hoistBody motion; Stats.Instrs reports the optimized body size.
func Compile(k *kernelir.Kernel) (*Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	ko, res := opt.CachedResult(k)
	vec, err := features.Extract(k)
	if err != nil {
		return nil, err
	}
	body, hoisted := hoistBody(ko.Body)
	tree, err := kernelir.BuildLoopTree(body)
	if err != nil {
		return nil, err
	}
	lw := &lowering{tree: tree, body: body}
	steps := lw.seq(0, len(body))
	return &Program{
		k:      k,
		steps:  steps,
		numI:   k.NumIntRegs,
		numF:   k.NumFloatRegs,
		localN: k.LocalF32,
		vec:    vec,
		stats:  Stats{Instrs: len(ko.Body), Steps: lw.steps, Hoisted: res.Hoisted + hoisted, Fused: lw.fused},
	}, nil
}

// lowering carries per-compilation state through the recursive descent.
type lowering struct {
	tree  *kernelir.LoopTree
	body  []kernelir.Instr
	steps int
	fused int
}

// seq lowers body[lo:hi) (one nesting level) into a step sequence.
// Repeat blocks become a single loop step over their lowered body with
// the trip count precomputed as an int64; adjacent producer+move pairs
// fuse into one step that writes both destinations.
func (lw *lowering) seq(lo, hi int) []step {
	var out []step
	for pc := lo; pc < hi; pc++ {
		in := lw.body[pc]
		if in.Op == kernelir.OpRepeatBegin {
			end := lw.tree.Match(pc)
			inner := lw.seq(pc+1, end)
			out = append(out, loopStep(int64(in.Imm), inner))
			lw.steps++
			pc = end
			continue
		}
		d2 := -1
		if pc+1 < hi {
			nxt := lw.body[pc+1]
			if nxt.Op == kernelir.OpMoveI || nxt.Op == kernelir.OpMoveF {
				info := kernelir.InfoOf(in.Op)
				if info.HasDst && nxt.A == in.Dst &&
					((nxt.Op == kernelir.OpMoveI && info.DstFile == kernelir.I32) ||
						(nxt.Op == kernelir.OpMoveF && info.DstFile == kernelir.F32)) {
					d2 = nxt.Dst
				}
			}
		}
		out = append(out, lw.lower(in, d2))
		lw.steps++
		if d2 >= 0 {
			lw.fused++
			pc++ // the move is folded into the step just emitted
		}
	}
	return out
}

// loopStep wraps a lowered loop body with its precomputed trip count.
// Small bodies are specialized so tight loops pay no slice-range
// overhead.
func loopStep(trip int64, body []step) step {
	switch len(body) {
	case 0:
		return func(m *machine) {}
	case 1:
		s0 := body[0]
		return func(m *machine) {
			for t := trip; t > 0; t-- {
				s0(m)
			}
		}
	case 2:
		s0, s1 := body[0], body[1]
		return func(m *machine) {
			for t := trip; t > 0; t-- {
				s0(m)
				s1(m)
			}
		}
	case 3:
		s0, s1, s2 := body[0], body[1], body[2]
		return func(m *machine) {
			for t := trip; t > 0; t-- {
				s0(m)
				s1(m)
				s2(m)
			}
		}
	case 4:
		s0, s1, s2, s3 := body[0], body[1], body[2], body[3]
		return func(m *machine) {
			for t := trip; t > 0; t-- {
				s0(m)
				s1(m)
				s2(m)
				s3(m)
			}
		}
	default:
		return func(m *machine) {
			for t := trip; t > 0; t-- {
				for _, s := range body {
					s(m)
				}
			}
		}
	}
}

func clampIdx(i int64, n int) int {
	if i < 0 {
		return 0
	}
	if i >= int64(n) {
		return n - 1
	}
	return int(i)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// lower specializes one instruction into a step closure. d2 >= 0 selects
// the fused variant: the step also writes the folded move's destination
// (in the same register file), preserving the unfused two-instruction
// semantics exactly — both registers end up written, in order.
func (lw *lowering) lower(in kernelir.Instr, d2 int) step {
	dst, a, b, c, buf := in.Dst, in.A, in.B, in.C, in.Buf
	switch in.Op {
	case kernelir.OpConstI:
		imm := int64(in.Imm)
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = imm }
		}
		return func(m *machine) { m.ints[dst] = imm; m.ints[d2] = imm }
	case kernelir.OpConstF:
		imm := in.Imm
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = imm }
		}
		return func(m *machine) { m.floats[dst] = imm; m.floats[d2] = imm }
	case kernelir.OpMoveI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = m.ints[a] }
		}
		return func(m *machine) { v := m.ints[a]; m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpMoveF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = m.floats[a] }
		}
		return func(m *machine) { v := m.floats[a]; m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpGlobalID:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = m.gid }
		}
		return func(m *machine) { m.ints[dst] = m.gid; m.ints[d2] = m.gid }
	case kernelir.OpGlobalIDX:
		if d2 < 0 {
			return func(m *machine) {
				if m.nx > 0 {
					m.ints[dst] = m.gid % m.nx
				} else {
					m.ints[dst] = m.gid
				}
			}
		}
		return func(m *machine) {
			v := m.gid
			if m.nx > 0 {
				v = m.gid % m.nx
			}
			m.ints[dst] = v
			m.ints[d2] = v
		}
	case kernelir.OpGlobalIDY:
		if d2 < 0 {
			return func(m *machine) {
				if m.nx > 0 {
					m.ints[dst] = m.gid / m.nx
				} else {
					m.ints[dst] = 0
				}
			}
		}
		return func(m *machine) {
			v := int64(0)
			if m.nx > 0 {
				v = m.gid / m.nx
			}
			m.ints[dst] = v
			m.ints[d2] = v
		}
	case kernelir.OpParamI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = m.scaI[buf] }
		}
		return func(m *machine) { v := m.scaI[buf]; m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpParamF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = m.scaF[buf] }
		}
		return func(m *machine) { v := m.scaF[buf]; m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpCvtIF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = float64(m.ints[a]) }
		}
		return func(m *machine) { v := float64(m.ints[a]); m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpCvtFI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = int64(m.floats[a]) }
		}
		return func(m *machine) { v := int64(m.floats[a]); m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpAddI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = m.ints[a] + m.ints[b] }
		}
		return func(m *machine) { v := m.ints[a] + m.ints[b]; m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpSubI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = m.ints[a] - m.ints[b] }
		}
		return func(m *machine) { v := m.ints[a] - m.ints[b]; m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpMulI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = m.ints[a] * m.ints[b] }
		}
		return func(m *machine) { v := m.ints[a] * m.ints[b]; m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpDivI:
		if d2 < 0 {
			return func(m *machine) {
				if m.ints[b] == 0 {
					m.ints[dst] = 0
				} else {
					m.ints[dst] = m.ints[a] / m.ints[b]
				}
			}
		}
		return func(m *machine) {
			v := int64(0)
			if m.ints[b] != 0 {
				v = m.ints[a] / m.ints[b]
			}
			m.ints[dst] = v
			m.ints[d2] = v
		}
	case kernelir.OpRemI:
		if d2 < 0 {
			return func(m *machine) {
				if m.ints[b] == 0 {
					m.ints[dst] = 0
				} else {
					m.ints[dst] = m.ints[a] % m.ints[b]
				}
			}
		}
		return func(m *machine) {
			v := int64(0)
			if m.ints[b] != 0 {
				v = m.ints[a] % m.ints[b]
			}
			m.ints[dst] = v
			m.ints[d2] = v
		}
	case kernelir.OpMinI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = min64(m.ints[a], m.ints[b]) }
		}
		return func(m *machine) { v := min64(m.ints[a], m.ints[b]); m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpMaxI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = max64(m.ints[a], m.ints[b]) }
		}
		return func(m *machine) { v := max64(m.ints[a], m.ints[b]); m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpCmpLTI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = b2i(m.ints[a] < m.ints[b]) }
		}
		return func(m *machine) { v := b2i(m.ints[a] < m.ints[b]); m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpCmpEQI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = b2i(m.ints[a] == m.ints[b]) }
		}
		return func(m *machine) { v := b2i(m.ints[a] == m.ints[b]); m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpSelI:
		if d2 < 0 {
			return func(m *machine) {
				if m.ints[c] != 0 {
					m.ints[dst] = m.ints[a]
				} else {
					m.ints[dst] = m.ints[b]
				}
			}
		}
		return func(m *machine) {
			v := m.ints[b]
			if m.ints[c] != 0 {
				v = m.ints[a]
			}
			m.ints[dst] = v
			m.ints[d2] = v
		}
	case kernelir.OpAndI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = m.ints[a] & m.ints[b] }
		}
		return func(m *machine) { v := m.ints[a] & m.ints[b]; m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpOrI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = m.ints[a] | m.ints[b] }
		}
		return func(m *machine) { v := m.ints[a] | m.ints[b]; m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpXorI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = m.ints[a] ^ m.ints[b] }
		}
		return func(m *machine) { v := m.ints[a] ^ m.ints[b]; m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpShlI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = m.ints[a] << (uint64(m.ints[b]) & 63) }
		}
		return func(m *machine) {
			v := m.ints[a] << (uint64(m.ints[b]) & 63)
			m.ints[dst] = v
			m.ints[d2] = v
		}
	case kernelir.OpShrI:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = m.ints[a] >> (uint64(m.ints[b]) & 63) }
		}
		return func(m *machine) {
			v := m.ints[a] >> (uint64(m.ints[b]) & 63)
			m.ints[dst] = v
			m.ints[d2] = v
		}
	case kernelir.OpAddF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = m.floats[a] + m.floats[b] }
		}
		return func(m *machine) { v := m.floats[a] + m.floats[b]; m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpSubF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = m.floats[a] - m.floats[b] }
		}
		return func(m *machine) { v := m.floats[a] - m.floats[b]; m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpMulF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = m.floats[a] * m.floats[b] }
		}
		return func(m *machine) { v := m.floats[a] * m.floats[b]; m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpDivF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = m.floats[a] / m.floats[b] }
		}
		return func(m *machine) { v := m.floats[a] / m.floats[b]; m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpMinF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = math.Min(m.floats[a], m.floats[b]) }
		}
		return func(m *machine) { v := math.Min(m.floats[a], m.floats[b]); m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpMaxF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = math.Max(m.floats[a], m.floats[b]) }
		}
		return func(m *machine) { v := math.Max(m.floats[a], m.floats[b]); m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpAbsF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = math.Abs(m.floats[a]) }
		}
		return func(m *machine) { v := math.Abs(m.floats[a]); m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpNegF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = -m.floats[a] }
		}
		return func(m *machine) { v := -m.floats[a]; m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpCmpLTF:
		if d2 < 0 {
			return func(m *machine) { m.ints[dst] = b2i(m.floats[a] < m.floats[b]) }
		}
		return func(m *machine) { v := b2i(m.floats[a] < m.floats[b]); m.ints[dst] = v; m.ints[d2] = v }
	case kernelir.OpSelF:
		if d2 < 0 {
			return func(m *machine) {
				if m.ints[c] != 0 {
					m.floats[dst] = m.floats[a]
				} else {
					m.floats[dst] = m.floats[b]
				}
			}
		}
		return func(m *machine) {
			v := m.floats[b]
			if m.ints[c] != 0 {
				v = m.floats[a]
			}
			m.floats[dst] = v
			m.floats[d2] = v
		}
	case kernelir.OpSqrtF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = math.Sqrt(m.floats[a]) }
		}
		return func(m *machine) { v := math.Sqrt(m.floats[a]); m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpExpF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = math.Exp(m.floats[a]) }
		}
		return func(m *machine) { v := math.Exp(m.floats[a]); m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpLogF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = math.Log(m.floats[a]) }
		}
		return func(m *machine) { v := math.Log(m.floats[a]); m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpSinF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = math.Sin(m.floats[a]) }
		}
		return func(m *machine) { v := math.Sin(m.floats[a]); m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpCosF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = math.Cos(m.floats[a]) }
		}
		return func(m *machine) { v := math.Cos(m.floats[a]); m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpPowF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = math.Pow(m.floats[a], m.floats[b]) }
		}
		return func(m *machine) { v := math.Pow(m.floats[a], m.floats[b]); m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpErfF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = math.Erf(m.floats[a]) }
		}
		return func(m *machine) { v := math.Erf(m.floats[a]); m.floats[dst] = v; m.floats[d2] = v }
	case kernelir.OpLoadGF:
		if d2 < 0 {
			return func(m *machine) {
				bf := m.bufF[buf]
				m.floats[dst] = float64(bf[clampIdx(m.ints[a], len(bf))])
			}
		}
		return func(m *machine) {
			bf := m.bufF[buf]
			v := float64(bf[clampIdx(m.ints[a], len(bf))])
			m.floats[dst] = v
			m.floats[d2] = v
		}
	case kernelir.OpStoreGF:
		return func(m *machine) {
			bf := m.bufF[buf]
			bf[clampIdx(m.ints[a], len(bf))] = float32(m.floats[b])
		}
	case kernelir.OpLoadGI:
		if d2 < 0 {
			return func(m *machine) {
				bi := m.bufI[buf]
				m.ints[dst] = int64(bi[clampIdx(m.ints[a], len(bi))])
			}
		}
		return func(m *machine) {
			bi := m.bufI[buf]
			v := int64(bi[clampIdx(m.ints[a], len(bi))])
			m.ints[dst] = v
			m.ints[d2] = v
		}
	case kernelir.OpStoreGI:
		return func(m *machine) {
			bi := m.bufI[buf]
			bi[clampIdx(m.ints[a], len(bi))] = int32(m.ints[b])
		}
	case kernelir.OpLoadLF:
		if d2 < 0 {
			return func(m *machine) { m.floats[dst] = m.local[clampIdx(m.ints[a], len(m.local))] }
		}
		return func(m *machine) {
			v := m.local[clampIdx(m.ints[a], len(m.local))]
			m.floats[dst] = v
			m.floats[d2] = v
		}
	case kernelir.OpStoreLF:
		return func(m *machine) { m.local[clampIdx(m.ints[a], len(m.local))] = m.floats[b] }
	default:
		panic(fmt.Sprintf("compile: unhandled opcode %v", in.Op))
	}
}
