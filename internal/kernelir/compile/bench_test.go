package compile_test

import (
	"fmt"
	"testing"

	"synergy/internal/kernelir"
	"synergy/internal/kernelir/compile"
)

// benchKernel builds a loop-heavy kernel whose per-item work scales
// with trips. The loop recomputes an invariant subexpression every
// iteration and folds it into an accumulator — the shape of naively
// written device code. It concentrates everything the compiler
// eliminates: the interpreter re-executes the invariant chain, pays
// switch dispatch per instruction, and maintains the per-item
// trip-count map; the compiled program hoists the invariants to a
// one-time prologue and runs the remaining accumulate+move as a single
// fused closure per iteration.
func benchKernel(name string, trips int) *kernelir.Kernel {
	b := kernelir.NewBuilder(name)
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	x := b.LoadF(in, gid)
	acc := b.CopyI(gid)
	b.Repeat(trips, func() {
		t := b.MulI(gid, b.ConstI(3)) // invariant: hoisted by the compiler
		u := b.AddI(t, b.ConstI(7))   // invariant: hoisted by the compiler
		b.MoveI(acc, b.AddI(acc, u))  // compiles to one fused step
	})
	b.StoreF(out, gid, b.AddF(x, b.IntToFloat(acc)))
	return b.MustBuild()
}

var benchSizes = []struct {
	tag   string
	trips int
	items int
}{
	{"small", 4, 256},
	{"medium", 64, 1024},
	{"large", 1024, 4096},
}

func benchArgs(items int) kernelir.Args {
	in := make([]float32, items)
	for i := range in {
		in[i] = float32(i%17) * 0.25
	}
	return kernelir.Args{F32: map[string][]float32{
		"in":  in,
		"out": make([]float32, items),
	}}
}

// BenchmarkInterpExecute measures the interpreter (the oracle path,
// single worker so the numbers isolate per-instruction dispatch cost).
func BenchmarkInterpExecute(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.tag, func(b *testing.B) {
			k := benchKernel("bench_"+sz.tag, sz.trips)
			args := benchArgs(sz.items)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := kernelir.InterpretGridWorkers(k, args, sz.items, 0, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompiledExecute measures the closure-threaded program on the
// identical kernels and launch geometry (compile cost excluded: it is
// one-time and amortised by the cache in production).
func BenchmarkCompiledExecute(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.tag, func(b *testing.B) {
			prog, err := compile.Compile(benchKernel("bench_"+sz.tag, sz.trips))
			if err != nil {
				b.Fatal(err)
			}
			args := benchArgs(sz.items)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := prog.ExecuteGridWorkers(args, sz.items, 0, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileOnce measures the one-time compilation cost the cache
// amortises.
func BenchmarkCompileOnce(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.tag, func(b *testing.B) {
			kernels := make([]*kernelir.Kernel, b.N)
			for i := range kernels {
				kernels[i] = benchKernel(fmt.Sprintf("bench_%s_%d", sz.tag, i), sz.trips)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := compile.Compile(kernels[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
