package compile_test

import (
	"errors"
	"testing"

	"synergy/internal/kernelir"
	"synergy/internal/kernelir/compile"
)

// withRunner swaps the process Runner for the duration of fn. Tests
// using it must not run in parallel (the runner is process-global).
func withRunner(t *testing.T, r kernelir.Runner, fn func()) {
	t.Helper()
	prev := kernelir.ActiveRunner()
	kernelir.SetRunner(r)
	defer kernelir.SetRunner(prev)
	fn()
}

// trapKernel offends local bounds at two pcs across several items:
// item 0 traps at the second access (index gid-1 = -1), item 1 already
// traps at the first (index gid+1 = 2 >= LocalF32). Checked execution
// reports the first offending pc of the lowest offending item, so the
// expected trap is (item 0, second store) — an ordering both executors
// must reproduce exactly.
func trapKernel() *kernelir.Kernel {
	return &kernelir.Kernel{
		Name: "trap_order",
		Params: []kernelir.Param{
			{Name: "out", IsBuffer: true, Type: kernelir.F32, Access: kernelir.ReadWrite},
		},
		NumIntRegs:   4,
		NumFloatRegs: 1,
		LocalF32:     2,
		Body: []kernelir.Instr{
			{Op: kernelir.OpGlobalID, Dst: 0},
			{Op: kernelir.OpConstI, Dst: 1, Imm: 1},
			{Op: kernelir.OpConstF, Dst: 0, Imm: 2.5},
			{Op: kernelir.OpAddI, Dst: 2, A: 0, B: 1},
			{Op: kernelir.OpStoreLF, A: 2, B: 0}, // pc 4: OOB for gid >= 1
			{Op: kernelir.OpSubI, Dst: 3, A: 0, B: 1},
			{Op: kernelir.OpStoreLF, A: 3, B: 0}, // pc 6: OOB for gid == 0
			{Op: kernelir.OpStoreGF, A: 0, B: 0, Buf: 0},
		},
	}
}

// uninitKernel reads a float register that is never written: a static
// (pre-execution) checked finding.
func uninitKernel() *kernelir.Kernel {
	return &kernelir.Kernel{
		Name: "uninit_read",
		Params: []kernelir.Param{
			{Name: "out", IsBuffer: true, Type: kernelir.F32, Access: kernelir.ReadWrite},
		},
		NumIntRegs:   1,
		NumFloatRegs: 2,
		Body: []kernelir.Instr{
			{Op: kernelir.OpGlobalID, Dst: 0},
			{Op: kernelir.OpAddF, Dst: 1, A: 0, B: 0}, // f0 never written
			{Op: kernelir.OpStoreGF, A: 0, B: 1, Buf: 0},
		},
	}
}

// TestCheckedTrapOrderingMatches runs ExecuteChecked under the compiled
// runner and under the interpreter and asserts identical trap reports —
// same item, same pc, same message — for both dynamic (local
// out-of-bounds) and static (use-before-def) findings. The dynamic case
// exercises compilation of the instrumented kernel ExecuteChecked
// builds internally.
func TestCheckedTrapOrderingMatches(t *testing.T) {
	kernels := []*kernelir.Kernel{trapKernel(), uninitKernel()}
	wantTraps := []struct{ pc, item int }{{6, 0}, {1, -1}}

	for i, k := range kernels {
		args := func() kernelir.Args {
			return kernelir.Args{F32: map[string][]float32{"out": make([]float32, 8)}}
		}
		var errCompiled, errInterp error
		withRunner(t, compile.Default(), func() {
			errCompiled = kernelir.ExecuteChecked(k, args(), 4)
		})
		withRunner(t, nil, func() {
			errInterp = kernelir.ExecuteChecked(k, args(), 4)
		})
		if errCompiled == nil || errInterp == nil {
			t.Fatalf("%s: expected traps, got compiled %v, interpreted %v", k.Name, errCompiled, errInterp)
		}
		if errCompiled.Error() != errInterp.Error() {
			t.Fatalf("%s: trap mismatch:\n  compiled:    %s\n  interpreted: %s", k.Name, errCompiled, errInterp)
		}
		var ce *kernelir.CheckError
		if !errors.As(errCompiled, &ce) {
			t.Fatalf("%s: compiled trap is %T, want *CheckError", k.Name, errCompiled)
		}
		if ce.PC != wantTraps[i].pc || ce.Item != int64(wantTraps[i].item) {
			t.Fatalf("%s: trap at pc %d item %d, want pc %d item %d",
				k.Name, ce.PC, ce.Item, wantTraps[i].pc, wantTraps[i].item)
		}
	}
}

// TestCheckedCleanKernelMatches asserts a trap-free kernel passes
// checked execution identically on both paths and produces bit-exact
// buffers through the checked entry point.
func TestCheckedCleanKernelMatches(t *testing.T) {
	b := kernelir.NewBuilder("local_clean")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	b.Local(4)
	gid := b.GlobalID()
	x := b.LoadF(in, gid)
	idx := b.RemI(gid, b.ConstI(4)) // always in [0, 3]: no traps
	b.StoreLocal(idx, x)
	b.StoreF(out, gid, b.AddF(b.LoadLocal(idx), x))
	k := b.MustBuild()
	mk := func() kernelir.Args {
		return kernelir.Args{F32: map[string][]float32{"in": f32ramp(6), "out": make([]float32, 6)}}
	}
	aC, aI := mk(), mk()
	withRunner(t, compile.Default(), func() {
		if err := kernelir.ExecuteChecked(k, aC, 6); err != nil {
			t.Fatalf("compiled checked execution failed: %v", err)
		}
	})
	withRunner(t, nil, func() {
		if err := kernelir.ExecuteChecked(k, aI, 6); err != nil {
			t.Fatalf("interpreted checked execution failed: %v", err)
		}
	})
	compareBuffers(t, "checked_clean", aI, aC)
}
