package ml

import (
	"fmt"
	"math"
)

// Linear is ordinary least-squares linear regression, solved through the
// normal equations with a tiny ridge term for numerical stability.
type Linear struct {
	// Ridge is an optional L2 penalty on the coefficients (not the
	// intercept). Zero means plain OLS (a 1e-9 jitter is still applied
	// to keep near-collinear systems solvable).
	Ridge float64

	Intercept float64
	Coef      []float64
}

// Name implements Regressor.
func (m *Linear) Name() string { return "Linear" }

// Fit implements Regressor.
func (m *Linear) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	ridge := m.Ridge
	if ridge <= 0 {
		ridge = 1e-9
	}
	ata, aty := normalEquations(x, y, ridge)
	sol, err := solveLinear(ata, aty)
	if err != nil {
		return err
	}
	m.Intercept = sol[0]
	m.Coef = sol[1:]
	return nil
}

// Predict implements Regressor.
func (m *Linear) Predict(x []float64) float64 {
	return m.Intercept + dot(m.Coef, x)
}

// CheckFitted implements FitChecker.
func (m *Linear) CheckFitted() error {
	if len(m.Coef) == 0 {
		return fmt.Errorf("ml: Linear is not fitted (no coefficients)")
	}
	return nil
}

// Lasso is least-absolute-shrinkage linear regression solved by cyclic
// coordinate descent on standardized features.
type Lasso struct {
	// Alpha is the L1 penalty weight, relative to the target's standard
	// deviation (so the penalty is invariant to the scale of y).
	Alpha float64
	// MaxIter bounds coordinate-descent sweeps (default 1000).
	MaxIter int
	// Tol is the convergence threshold on the max coefficient change
	// per sweep (default 1e-7, in standardized units).
	Tol float64

	Intercept float64
	Coef      []float64
}

// Name implements Regressor.
func (m *Lasso) Name() string { return "Lasso" }

// CheckFitted implements FitChecker.
func (m *Lasso) CheckFitted() error {
	if len(m.Coef) == 0 {
		return fmt.Errorf("ml: Lasso is not fitted (no coefficients)")
	}
	return nil
}

// Fit implements Regressor.
func (m *Lasso) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	maxIter := m.MaxIter
	if maxIter <= 0 {
		maxIter = 1000
	}
	tol := m.Tol
	if tol <= 0 {
		tol = 1e-7
	}
	n := len(x)
	d := len(x[0])

	scaler, err := FitScaler(x)
	if err != nil {
		return err
	}
	xs := scaler.TransformAll(x)
	yMean := 0.0
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(n)
	yc := make([]float64, n)
	yVar := 0.0
	for i, v := range y {
		yc[i] = v - yMean
		yVar += yc[i] * yc[i]
	}
	yStd := math.Sqrt(yVar / float64(n))
	if yStd == 0 {
		yStd = 1
	}

	// Column views and per-column squared norms (= n after scaling,
	// except constant columns).
	colSq := make([]float64, d)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			colSq[j] += xs[i][j] * xs[i][j]
		}
	}
	beta := make([]float64, d)
	resid := make([]float64, n)
	copy(resid, yc)
	lambda := m.Alpha * yStd * float64(n)

	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for j := 0; j < d; j++ {
			if colSq[j] == 0 {
				continue
			}
			// rho = x_jᵀ(resid + x_j·beta_j)
			rho := 0.0
			for i := 0; i < n; i++ {
				rho += xs[i][j] * resid[i]
			}
			rho += colSq[j] * beta[j]
			nb := softThreshold(rho, lambda) / colSq[j]
			if nb != beta[j] {
				delta := nb - beta[j]
				for i := 0; i < n; i++ {
					resid[i] -= delta * xs[i][j]
				}
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
				beta[j] = nb
			}
		}
		if maxDelta < tol {
			break
		}
	}

	// Back-transform to original units.
	m.Coef = make([]float64, d)
	m.Intercept = yMean
	for j := 0; j < d; j++ {
		m.Coef[j] = beta[j] / scaler.Scale[j]
		m.Intercept -= m.Coef[j] * scaler.Mean[j]
	}
	return nil
}

func softThreshold(v, lambda float64) float64 {
	switch {
	case v > lambda:
		return v - lambda
	case v < -lambda:
		return v + lambda
	default:
		return 0
	}
}

// Predict implements Regressor.
func (m *Lasso) Predict(x []float64) float64 {
	return m.Intercept + dot(m.Coef, x)
}
