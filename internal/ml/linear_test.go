package ml

import (
	"math"
	"math/rand"
	"testing"
)

// synthLinear generates y = 3 + 2x0 - x1 + 0.5x2 (+ optional noise).
func synthLinear(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 3 + 2*x[i][0] - x[i][1] + 0.5*x[i][2] + noise*rng.NormFloat64()
	}
	return x, y
}

func TestLinearRecoversExactCoefficients(t *testing.T) {
	x, y := synthLinear(200, 0, 1)
	m := &Linear{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	wantCoef := []float64{2, -1, 0.5}
	if math.Abs(m.Intercept-3) > 1e-6 {
		t.Errorf("intercept = %v, want 3", m.Intercept)
	}
	for j, w := range wantCoef {
		if math.Abs(m.Coef[j]-w) > 1e-6 {
			t.Errorf("coef[%d] = %v, want %v", j, m.Coef[j], w)
		}
	}
}

func TestLinearResidualOrthogonality(t *testing.T) {
	// OLS residuals are orthogonal to every feature column (and sum to
	// ~0 thanks to the intercept).
	x, y := synthLinear(300, 0.5, 2)
	m := &Linear{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	d := len(x[0])
	sums := make([]float64, d+1)
	for i := range x {
		r := y[i] - m.Predict(x[i])
		sums[0] += r
		for j := 0; j < d; j++ {
			sums[j+1] += r * x[i][j]
		}
	}
	for j, s := range sums {
		if math.Abs(s) > 1e-5*float64(len(x)) {
			t.Errorf("residual moment %d = %v, want ~0", j, s)
		}
	}
}

func TestLinearRejectsBadInput(t *testing.T) {
	m := &Linear{}
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty training set accepted")
	}
	if err := m.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := m.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
	if err := m.Fit([][]float64{{math.NaN()}}, []float64{1}); err == nil {
		t.Error("NaN feature accepted")
	}
}

func TestLassoShrinksIrrelevantFeatures(t *testing.T) {
	// y depends on x0 only; x1, x2 are noise features. A moderate alpha
	// must zero the irrelevant coefficients while keeping x0.
	rng := rand.New(rand.NewSource(3))
	n := 300
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 5 * x[i][0]
	}
	m := &Lasso{Alpha: 0.2}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]) < 3 {
		t.Errorf("relevant coef shrunk too far: %v", m.Coef[0])
	}
	if m.Coef[1] != 0 || m.Coef[2] != 0 {
		t.Errorf("irrelevant coefs not zeroed: %v, %v", m.Coef[1], m.Coef[2])
	}
}

func TestLassoApproachesOLSAsAlphaVanishes(t *testing.T) {
	x, y := synthLinear(200, 0, 4)
	ols := &Linear{}
	if err := ols.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lasso := &Lasso{Alpha: 1e-8, MaxIter: 5000}
	if err := lasso.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for j := range ols.Coef {
		if math.Abs(lasso.Coef[j]-ols.Coef[j]) > 1e-3 {
			t.Errorf("coef[%d]: lasso %v vs ols %v", j, lasso.Coef[j], ols.Coef[j])
		}
	}
}

func TestLassoShrinkageMonotoneInAlpha(t *testing.T) {
	x, y := synthLinear(200, 0.2, 5)
	norm := func(alpha float64) float64 {
		m := &Lasso{Alpha: alpha}
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, c := range m.Coef {
			s += math.Abs(c)
		}
		return s
	}
	prev := norm(0.001)
	for _, a := range []float64{0.01, 0.1, 1, 10} {
		cur := norm(a)
		if cur > prev*(1+1e-9) {
			t.Errorf("L1 norm grew from alpha=%v: %v -> %v", a, prev, cur)
		}
		prev = cur
	}
	if prev > 1e-9 {
		t.Errorf("huge alpha did not zero all coefficients (norm %v)", prev)
	}
}

func TestSolveLinearAgainstKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	b := []float64{8, -11, -3}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := solveLinear(a, b); err == nil {
		t.Fatal("singular system solved")
	}
}
