package ml

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAPE(t *testing.T) {
	if got := APE(100, 110); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("APE(100, 110) = %v, want 0.1", got)
	}
	if got := APE(0, 0); got != 0 {
		t.Errorf("APE(0, 0) = %v, want 0", got)
	}
	if got := APE(0, 1); !math.IsInf(got, 1) {
		t.Errorf("APE(0, 1) = %v, want +Inf", got)
	}
	if got := APE(-50, -25); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("APE(-50, -25) = %v, want 0.5", got)
	}
}

func TestMAPEAndRMSE(t *testing.T) {
	actual := []float64{100, 200}
	pred := []float64{110, 180}
	mape, skipped, err := MAPE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mape-0.1) > 1e-12 { // (0.1 + 0.1)/2
		t.Errorf("MAPE = %v, want 0.1", mape)
	}
	if skipped != 0 {
		t.Errorf("MAPE skipped = %d, want 0", skipped)
	}
	rmse, err := RMSE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((100 + 400) / 2.0)
	if math.Abs(rmse-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", rmse, want)
	}
	if _, _, err := MAPE(nil, nil); err == nil {
		t.Error("empty MAPE accepted")
	}
}

// A single actual == 0 sample must be skipped and counted, not poison
// the whole mean with +Inf; all-zero actuals are an error.
func TestMAPESkipsZeroActuals(t *testing.T) {
	actual := []float64{100, 0, 200}
	pred := []float64{110, 5, 180}
	mape, skipped, err := MAPE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if math.IsInf(mape, 0) || math.Abs(mape-0.1) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.1 (zero-actual sample skipped)", mape)
	}
	if _, skipped, err := MAPE([]float64{0, 0}, []float64{1, 2}); err == nil || skipped != 2 {
		t.Errorf("all-zero actuals: err=%v skipped=%d, want error and 2", err, skipped)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRMSEZeroIffExact(t *testing.T) {
	f := func(v [8]float64) bool {
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		r, err := RMSE(v[:], v[:])
		return err == nil && r == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestR2(t *testing.T) {
	actual := []float64{1, 2, 3, 4}
	r2, err := R2(actual, actual)
	if err != nil || r2 != 1 {
		t.Fatalf("perfect R2 = %v, %v", r2, err)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	r2, err = R2(actual, mean)
	if err != nil || math.Abs(r2) > 1e-12 {
		t.Fatalf("mean-prediction R2 = %v, want 0", r2)
	}
}

func TestScalerProperties(t *testing.T) {
	x := [][]float64{{1, 100}, {2, 200}, {3, 300}, {4, 400}}
	s, err := FitScaler(x)
	if err != nil {
		t.Fatal(err)
	}
	xs := s.TransformAll(x)
	for j := 0; j < 2; j++ {
		mean, sq := 0.0, 0.0
		for i := range xs {
			mean += xs[i][j]
		}
		mean /= float64(len(xs))
		for i := range xs {
			sq += (xs[i][j] - mean) * (xs[i][j] - mean)
		}
		std := math.Sqrt(sq / float64(len(xs)))
		if math.Abs(mean) > 1e-12 || math.Abs(std-1) > 1e-12 {
			t.Errorf("column %d: mean %v std %v after scaling", j, mean, std)
		}
	}
	// Inverse round-trips.
	for i := range x {
		back := s.Inverse(xs[i])
		for j := range back {
			if math.Abs(back[j]-x[i][j]) > 1e-9 {
				t.Fatalf("inverse round trip failed: %v vs %v", back, x[i])
			}
		}
	}
}

func TestScalerConstantColumn(t *testing.T) {
	x := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	s, err := FitScaler(x)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Transform([]float64{5, 2})
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Fatalf("constant column produced %v", out[0])
	}
}

func TestKFoldPartition(t *testing.T) {
	splits, err := KFold(10, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("%d splits, want 3", len(splits))
	}
	seen := map[int]int{}
	for _, s := range splits {
		if len(s.Train)+len(s.Test) != 10 {
			t.Fatalf("split sizes %d + %d != 10", len(s.Train), len(s.Test))
		}
		for _, i := range s.Test {
			seen[i]++
		}
		inTrain := map[int]bool{}
		for _, i := range s.Train {
			inTrain[i] = true
		}
		for _, i := range s.Test {
			if inTrain[i] {
				t.Fatal("test index also in train")
			}
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d appears in %d test folds, want 1", i, seen[i])
		}
	}
	if _, err := KFold(5, 1, 0); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KFold(3, 5, 0); err == nil {
		t.Error("k>n accepted")
	}
}

func TestLeaveOneGroupOut(t *testing.T) {
	groups := []string{"a", "a", "b", "c", "b"}
	splits, order, err := LeaveOneGroupOut(groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 || len(order) != 3 {
		t.Fatalf("%d splits for 3 groups", len(splits))
	}
	for si, s := range splits {
		for _, i := range s.Test {
			if groups[i] != order[si] {
				t.Fatalf("split %d test contains group %q, want %q", si, groups[i], order[si])
			}
		}
		for _, i := range s.Train {
			if groups[i] == order[si] {
				t.Fatalf("split %d train leaks the held-out group", si)
			}
		}
	}
	if _, _, err := LeaveOneGroupOut([]string{"x", "x"}); err == nil {
		t.Error("single group accepted")
	}
}

func TestRows(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{10, 20, 30}
	xs, ys := Rows(x, y, []int{2, 0})
	if xs[0][0] != 3 || xs[1][0] != 1 || ys[0] != 30 || ys[1] != 10 {
		t.Fatalf("Rows returned %v, %v", xs, ys)
	}
}
