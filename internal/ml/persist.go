package ml

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model persistence: trained regressors serialise to a JSON envelope
// {"algo": ..., "data": ...} so a deployment can train once per device
// (the §3.2 installation step) and ship the models with the binary.

// envelope wraps any serialised model with its algorithm tag.
type envelope struct {
	Algo string          `json:"algo"`
	Data json.RawMessage `json:"data"`
}

type linearState struct {
	Ridge     float64   `json:"ridge,omitempty"`
	Intercept float64   `json:"intercept"`
	Coef      []float64 `json:"coef"`
}

type lassoState struct {
	Alpha     float64   `json:"alpha"`
	Intercept float64   `json:"intercept"`
	Coef      []float64 `json:"coef"`
}

type nodeState struct {
	Feature int        `json:"f"`
	Thresh  float64    `json:"t"`
	Value   float64    `json:"v"`
	Leaf    bool       `json:"leaf"`
	Lo      *nodeState `json:"lo,omitempty"`
	Hi      *nodeState `json:"hi,omitempty"`
}

type forestState struct {
	Trees []*nodeState `json:"trees"`
}

type svrState struct {
	Gamma   float64     `json:"gamma"`
	YMean   float64     `json:"ymean"`
	Mean    []float64   `json:"mean"`
	Scale   []float64   `json:"scale"`
	Beta    []float64   `json:"beta"`
	Support [][]float64 `json:"support"`
}

func nodeToState(n *treeNode) *nodeState {
	if n == nil {
		return nil
	}
	return &nodeState{
		Feature: n.feature, Thresh: n.thresh, Value: n.value,
		Leaf: n.leafFlag, Lo: nodeToState(n.lo), Hi: nodeToState(n.hi),
	}
}

func stateToNode(s *nodeState) (*treeNode, error) {
	if s == nil {
		return nil, nil
	}
	n := &treeNode{feature: s.Feature, thresh: s.Thresh, value: s.Value, leafFlag: s.Leaf}
	if !s.Leaf {
		if s.Lo == nil || s.Hi == nil {
			return nil, fmt.Errorf("ml: interior tree node missing children")
		}
		var err error
		if n.lo, err = stateToNode(s.Lo); err != nil {
			return nil, err
		}
		if n.hi, err = stateToNode(s.Hi); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// SaveModel writes a trained regressor to w.
func SaveModel(w io.Writer, m Regressor) error {
	var data any
	switch r := m.(type) {
	case *Linear:
		data = linearState{Ridge: r.Ridge, Intercept: r.Intercept, Coef: r.Coef}
	case *Lasso:
		data = lassoState{Alpha: r.Alpha, Intercept: r.Intercept, Coef: r.Coef}
	case *Forest:
		st := forestState{Trees: make([]*nodeState, len(r.trees))}
		for i, tr := range r.trees {
			st.Trees[i] = nodeToState(tr)
		}
		data = st
	case *SVR:
		if r.scaler == nil {
			return fmt.Errorf("ml: cannot save unfitted SVR")
		}
		data = svrState{
			Gamma: r.gamma, YMean: r.yMean,
			Mean: r.scaler.Mean, Scale: r.scaler.Scale,
			Beta: r.beta, Support: r.support,
		}
	default:
		return fmt.Errorf("ml: cannot save model type %T", m)
	}
	raw, err := json.Marshal(data)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(envelope{Algo: m.Name(), Data: raw})
}

// LoadModel reads a regressor previously written by SaveModel.
func LoadModel(r io.Reader) (Regressor, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("ml: decoding model envelope: %w", err)
	}
	switch env.Algo {
	case "Linear":
		var st linearState
		if err := json.Unmarshal(env.Data, &st); err != nil {
			return nil, err
		}
		return &Linear{Ridge: st.Ridge, Intercept: st.Intercept, Coef: st.Coef}, nil
	case "Lasso":
		var st lassoState
		if err := json.Unmarshal(env.Data, &st); err != nil {
			return nil, err
		}
		return &Lasso{Alpha: st.Alpha, Intercept: st.Intercept, Coef: st.Coef}, nil
	case "RandomForest":
		var st forestState
		if err := json.Unmarshal(env.Data, &st); err != nil {
			return nil, err
		}
		if len(st.Trees) == 0 {
			return nil, fmt.Errorf("ml: forest bundle has no trees")
		}
		f := &Forest{trees: make([]*treeNode, len(st.Trees))}
		for i, ts := range st.Trees {
			n, err := stateToNode(ts)
			if err != nil {
				return nil, err
			}
			if n == nil {
				return nil, fmt.Errorf("ml: forest contains empty tree")
			}
			f.trees[i] = n
		}
		f.flat = flatten(f.trees)
		// A bundle that decodes but violates the structural invariants
		// (empty node arrays, out-of-bounds child indices) must not be
		// allowed to serve predictions.
		if err := f.CheckFitted(); err != nil {
			return nil, fmt.Errorf("ml: corrupt forest bundle: %w", err)
		}
		return f, nil
	case "SVR_RBF":
		var st svrState
		if err := json.Unmarshal(env.Data, &st); err != nil {
			return nil, err
		}
		return &SVR{
			gamma: st.Gamma, yMean: st.YMean,
			scaler:  &StandardScaler{Mean: st.Mean, Scale: st.Scale},
			beta:    st.Beta,
			support: st.Support,
		}, nil
	default:
		return nil, fmt.Errorf("ml: unknown model algorithm %q", env.Algo)
	}
}
