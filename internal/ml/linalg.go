// Package ml implements the supervised-learning machinery of §6 and
// §8.3 from scratch on the standard library: ordinary least squares,
// Lasso (coordinate descent), random-forest regression (CART), and
// support-vector regression with an RBF kernel, together with scaling,
// cross-validation and the APE/MAPE/RMSE error metrics of the paper.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system cannot be solved.
var ErrSingular = errors.New("ml: singular system")

// solveLinear solves A x = b by Gaussian elimination with partial
// pivoting. A is n×n in row-major order and is modified in place, as is
// b; the solution is returned in a fresh slice.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("ml: solveLinear: shape mismatch (%d rows, %d rhs)", n, len(b))
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				piv, best = r, v
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// normalEquations builds XᵀX (+ ridge·I on non-intercept diagonals) and
// Xᵀy for the design matrix with a leading intercept column.
func normalEquations(x [][]float64, y []float64, ridge float64) ([][]float64, []float64) {
	n := len(x)
	d := len(x[0]) + 1 // +1 intercept
	ata := make([][]float64, d)
	for i := range ata {
		ata[i] = make([]float64, d)
	}
	aty := make([]float64, d)
	row := make([]float64, d)
	for r := 0; r < n; r++ {
		row[0] = 1
		copy(row[1:], x[r])
		for i := 0; i < d; i++ {
			vi := row[i]
			if vi == 0 {
				continue
			}
			for j := i; j < d; j++ {
				ata[i][j] += vi * row[j]
			}
			aty[i] += vi * y[r]
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	for i := 1; i < d; i++ {
		ata[i][i] += ridge
	}
	return ata, aty
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func checkXY(x [][]float64, y []float64) error {
	if len(x) == 0 {
		return errors.New("ml: empty training set")
	}
	if len(x) != len(y) {
		return fmt.Errorf("ml: %d rows but %d targets", len(x), len(y))
	}
	d := len(x[0])
	if d == 0 {
		return errors.New("ml: zero-dimensional features")
	}
	for i, r := range x {
		if len(r) != d {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(r), d)
		}
		for _, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: row %d contains NaN/Inf", i)
			}
		}
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("ml: target %d is NaN/Inf", i)
		}
	}
	return nil
}
