package ml

import (
	"errors"
	"math"
)

// APE returns the absolute percentage error |pred − actual| / |actual|.
// When actual is zero, the error is 0 for an exact prediction and +Inf
// otherwise.
func APE(actual, pred float64) float64 {
	if actual == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(pred-actual) / math.Abs(actual)
}

// MAPE returns the mean absolute percentage error over paired slices.
// Samples with actual == 0 have an undefined percentage error (APE
// would return +Inf for any imperfect prediction), so they are skipped
// rather than letting a single degenerate sample poison the whole mean;
// skipped reports how many were left out. It is an error if every
// sample is skipped.
func MAPE(actual, pred []float64) (mape float64, skipped int, err error) {
	if len(actual) == 0 || len(actual) != len(pred) {
		return 0, 0, errors.New("ml: MAPE needs equal-length non-empty slices")
	}
	s := 0.0
	for i := range actual {
		if actual[i] == 0 {
			skipped++
			continue
		}
		s += APE(actual[i], pred[i])
	}
	n := len(actual) - skipped
	if n == 0 {
		return 0, skipped, errors.New("ml: MAPE undefined, every actual value is zero")
	}
	return s / float64(n), skipped, nil
}

// RMSE returns the root mean squared error over paired slices.
func RMSE(actual, pred []float64) (float64, error) {
	if len(actual) == 0 || len(actual) != len(pred) {
		return 0, errors.New("ml: RMSE needs equal-length non-empty slices")
	}
	s := 0.0
	for i := range actual {
		d := pred[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(actual))), nil
}

// R2 returns the coefficient of determination.
func R2(actual, pred []float64) (float64, error) {
	if len(actual) == 0 || len(actual) != len(pred) {
		return 0, errors.New("ml: R2 needs equal-length non-empty slices")
	}
	mean := 0.0
	for _, v := range actual {
		mean += v
	}
	mean /= float64(len(actual))
	ssTot, ssRes := 0.0, 0.0
	for i := range actual {
		ssTot += (actual[i] - mean) * (actual[i] - mean)
		ssRes += (actual[i] - pred[i]) * (actual[i] - pred[i])
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}
