package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestSVRFitsSmoothNonlinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	n := 300
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{4*rng.Float64() - 2}
		y[i] = math.Sin(2 * x[i][0])
	}
	m := &SVR{C: 50, Epsilon: 0.01, Gamma: 2}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for v := -1.8; v <= 1.8; v += 0.1 {
		p := m.Predict([]float64{v})
		if e := math.Abs(p - math.Sin(2*v)); e > worst {
			worst = e
		}
	}
	if worst > 0.1 {
		t.Fatalf("SVR worst-case error %v on sin(2x)", worst)
	}
	if m.NumSupport() == 0 {
		t.Fatal("no support vectors retained")
	}
}

func TestSVREpsilonTubeSparsity(t *testing.T) {
	// With a wide tube, most training points fall inside it and few
	// support vectors remain.
	rng := rand.New(rand.NewSource(21))
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.NormFloat64()}
		y[i] = 0.1 * x[i][0]
	}
	narrow := &SVR{C: 10, Epsilon: 1e-4, Gamma: 1}
	wide := &SVR{C: 10, Epsilon: 0.2, Gamma: 1}
	if err := narrow.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := wide.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if wide.NumSupport() >= narrow.NumSupport() {
		t.Fatalf("wide tube kept %d support vectors, narrow %d; expected fewer",
			wide.NumSupport(), narrow.NumSupport())
	}
}

func TestSVRRespectsBoxConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 100
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.NormFloat64()}
		y[i] = 100 * rng.NormFloat64() // unlearnable noise
	}
	m := &SVR{C: 0.5, Epsilon: 0.01, Gamma: 1}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, b := range m.beta {
		if math.Abs(b) > 0.5+1e-9 {
			t.Fatalf("dual coefficient %v violates |β| <= C", b)
		}
	}
}

func TestSVRPredictBeforeFit(t *testing.T) {
	m := &SVR{}
	if p := m.Predict([]float64{1}); p != 0 {
		t.Fatalf("unfitted SVR predicted %v, want 0", p)
	}
}

func TestSVRRejectsBadInput(t *testing.T) {
	m := &SVR{}
	if err := m.Fit([][]float64{}, []float64{}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestSVRConstantTarget(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{5, 5, 5, 5}
	m := &SVR{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{1.5}); math.Abs(p-5) > 1e-6 {
		t.Fatalf("constant-target prediction %v, want 5", p)
	}
}
