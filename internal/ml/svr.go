package ml

import (
	"fmt"
	"math"
)

// SVR is ε-insensitive support-vector regression with an RBF kernel,
// trained by exact cyclic coordinate descent on the (bias-absorbed)
// dual: minimise ½βᵀKβ − βᵀy + ε‖β‖₁ subject to |β_i| ≤ C, where
// K_ij = exp(−γ‖x_i − x_j‖²). Features are standardized internally and
// the target is centred, which absorbs the bias term.
type SVR struct {
	// C is the box constraint (default 10).
	C float64
	// Epsilon is the insensitive-tube half width, in target units
	// after centring (default 0.01 × std(y)).
	Epsilon float64
	// Gamma is the RBF width (default 1/d, on standardized features).
	Gamma float64
	// MaxIter bounds coordinate sweeps (default 500).
	MaxIter int
	// Tol is the convergence threshold on max |Δβ| (default 1e-6).
	Tol float64

	scaler  *StandardScaler
	support [][]float64 // standardized training samples
	beta    []float64
	yMean   float64
	gamma   float64
}

// Name implements Regressor.
func (m *SVR) Name() string { return "SVR_RBF" }

// Fit implements Regressor.
func (m *SVR) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	n := len(x)
	d := len(x[0])
	c := m.C
	if c <= 0 {
		c = 10
	}
	maxIter := m.MaxIter
	if maxIter <= 0 {
		maxIter = 500
	}
	tol := m.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	m.gamma = m.Gamma
	if m.gamma <= 0 {
		m.gamma = 1 / float64(d)
	}

	scaler, err := FitScaler(x)
	if err != nil {
		return err
	}
	m.scaler = scaler
	xs := scaler.TransformAll(x)

	m.yMean = 0
	for _, v := range y {
		m.yMean += v
	}
	m.yMean /= float64(n)
	yc := make([]float64, n)
	yStd := 0.0
	for i, v := range y {
		yc[i] = v - m.yMean
		yStd += yc[i] * yc[i]
	}
	yStd = math.Sqrt(yStd / float64(n))
	eps := m.Epsilon
	if eps <= 0 {
		eps = 0.01 * yStd
	}

	// Gram matrix (n is moderate in this system: thousands at most).
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		k[i][i] = 1
		for j := i + 1; j < n; j++ {
			v := math.Exp(-m.gamma * sqDist(xs[i], xs[j]))
			k[i][j] = v
			k[j][i] = v
		}
	}

	beta := make([]float64, n)
	// g_i = (Kβ)_i, maintained incrementally.
	g := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			// Coordinate-exact minimisation:
			// argmin_b ½K_ii b² + (g_i − K_ii β_i − y_i) b + ε|b|.
			rho := yc[i] - (g[i] - k[i][i]*beta[i])
			nb := softThreshold(rho, eps) / k[i][i]
			if nb > c {
				nb = c
			} else if nb < -c {
				nb = -c
			}
			if nb != beta[i] {
				delta := nb - beta[i]
				for j := 0; j < n; j++ {
					g[j] += delta * k[i][j]
				}
				beta[i] = nb
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
			}
		}
		if maxDelta < tol {
			break
		}
	}

	// Keep only support vectors (β ≠ 0).
	for i := 0; i < n; i++ {
		if beta[i] != 0 {
			m.support = append(m.support, xs[i])
			m.beta = append(m.beta, beta[i])
		}
	}
	return nil
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Predict implements Regressor.
func (m *SVR) Predict(x []float64) float64 {
	if m.scaler == nil {
		return 0
	}
	xs := m.scaler.Transform(x)
	s := m.yMean
	for i, sv := range m.support {
		s += m.beta[i] * math.Exp(-m.gamma*sqDist(xs, sv))
	}
	return s
}

// NumSupport returns the number of support vectors (for tests/tooling).
func (m *SVR) NumSupport() int { return len(m.support) }

// CheckFitted implements FitChecker.
func (m *SVR) CheckFitted() error {
	if m.scaler == nil || len(m.support) == 0 {
		return fmt.Errorf("ml: SVR_RBF is not fitted (no support vectors)")
	}
	return nil
}
