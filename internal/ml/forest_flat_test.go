package ml

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// fitTestForest trains a small forest on a deterministic nonlinear
// surface wide enough to produce real splits on every feature.
func fitTestForest(t *testing.T, trees, n, d int) (*Forest, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()*4 - 2
		}
		x[i] = row
		y[i] = math.Sin(row[0]) + row[1]*row[1] + 0.25*row[d-1] + 0.01*rng.NormFloat64()
	}
	f := &Forest{Trees: trees, Seed: 3}
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	return f, x
}

// The flattened index-walking Predict must be bit-identical to the
// pointer-tree reference walk on every input, including points far
// outside the training range.
func TestFlattenedPredictMatchesReference(t *testing.T) {
	f, x := fitTestForest(t, 24, 400, 6)
	rng := rand.New(rand.NewSource(5))
	probe := make([]float64, 6)
	for trial := 0; trial < 2000; trial++ {
		var row []float64
		if trial < len(x) {
			row = x[trial]
		} else {
			for j := range probe {
				probe[j] = rng.Float64()*20 - 10
			}
			row = probe
		}
		got := f.Predict(row)
		want := f.PredictReference(row)
		if got != want {
			t.Fatalf("trial %d: flattened %v != reference %v", trial, got, want)
		}
	}
}

func TestPredictIntoMatchesPredict(t *testing.T) {
	f, x := fitTestForest(t, 12, 200, 4)
	dst := make([]float64, len(x))
	f.PredictInto(dst, x)
	for i, row := range x {
		if want := f.Predict(row); dst[i] != want {
			t.Fatalf("row %d: PredictInto %v != Predict %v", i, dst[i], want)
		}
	}
	// The generic batch helper must route through the same path.
	dst2 := make([]float64, len(x))
	PredictAllInto(f, dst2, x)
	for i := range dst {
		if dst[i] != dst2[i] {
			t.Fatalf("row %d: PredictAllInto diverges", i)
		}
	}
}

// An unfit forest must not serve a silent zero: Predict returns NaN and
// CheckFitted explains why.
func TestUnfitForestGuards(t *testing.T) {
	var f Forest
	if got := f.Predict([]float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("unfit Predict = %v, want NaN", got)
	}
	dst := make([]float64, 2)
	f.PredictInto(dst, [][]float64{{1}, {2}})
	for i, v := range dst {
		if !math.IsNaN(v) {
			t.Errorf("unfit PredictInto dst[%d] = %v, want NaN", i, v)
		}
	}
	if err := f.CheckFitted(); err == nil || !strings.Contains(err.Error(), "not fitted") {
		t.Errorf("CheckFitted = %v, want descriptive not-fitted error", err)
	}
	fitted, _ := fitTestForest(t, 4, 50, 3)
	if err := fitted.CheckFitted(); err != nil {
		t.Errorf("fitted forest CheckFitted = %v", err)
	}
}

func TestCheckFittedAcrossAlgorithms(t *testing.T) {
	for _, r := range []Regressor{&Linear{}, &Lasso{Alpha: 0.001}, &Forest{Trees: 4}, &SVR{}} {
		if err := CheckFitted(r); err == nil {
			t.Errorf("%s: unfit model passed CheckFitted", r.Name())
		}
	}
	x := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}}
	y := []float64{0, 1, 2, 3, 4, 5}
	for _, r := range []Regressor{&Linear{}, &Lasso{Alpha: 0.001}, &Forest{Trees: 4, MinLeaf: 1}, &SVR{C: 10, Gamma: 0.5}} {
		if err := r.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if err := CheckFitted(r); err != nil {
			t.Errorf("%s: fitted model failed CheckFitted: %v", r.Name(), err)
		}
	}
}

// Persistence must reject bundles whose tree arrays are empty, and a
// round-trip must preserve predictions bit-exactly (the loaded forest
// re-flattens from the decoded pointer trees).
func TestForestPersistValidation(t *testing.T) {
	if _, err := LoadModel(strings.NewReader(`{"algo":"RandomForest","data":{"trees":[]}}`)); err == nil {
		t.Error("empty-tree forest bundle accepted")
	}

	f, x := fitTestForest(t, 8, 120, 4)
	var buf bytes.Buffer
	if err := SaveModel(&buf, f); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lf, ok := loaded.(*Forest)
	if !ok {
		t.Fatalf("loaded %T, want *Forest", loaded)
	}
	if err := lf.CheckFitted(); err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		if got, want := lf.Predict(row), f.Predict(row); got != want {
			t.Fatalf("row %d: loaded %v != original %v", i, got, want)
		}
	}
}

func TestFlatForestValidate(t *testing.T) {
	f, _ := fitTestForest(t, 4, 60, 3)
	if err := f.flat.validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a child index out of bounds.
	broken := f.flat
	broken.feature = append([]int32(nil), f.flat.feature...)
	broken.lo = append([]int32(nil), f.flat.lo...)
	for i, ft := range broken.feature {
		if ft != leafFeature {
			broken.lo[i] = int32(len(broken.feature)) + 7
			break
		}
	}
	if err := broken.validate(); err == nil {
		t.Error("out-of-bounds child index accepted")
	}
	empty := flatForest{}
	if err := empty.validate(); err == nil {
		t.Error("empty flat forest accepted")
	}
}
