package ml

import (
	"math"
	"math/rand"
	"testing"
)

// synthNonlinear generates y = sin(3 x0) + x1² with x in [-1, 1]².
func synthNonlinear(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{2*rng.Float64() - 1, 2*rng.Float64() - 1}
		y[i] = math.Sin(3*x[i][0]) + x[i][1]*x[i][1]
	}
	return x, y
}

func TestForestBeatsLinearOnNonlinearData(t *testing.T) {
	xTr, yTr := synthNonlinear(800, 10)
	xTe, yTe := synthNonlinear(200, 11)

	lin := &Linear{}
	if err := lin.Fit(xTr, yTr); err != nil {
		t.Fatal(err)
	}
	rf := &Forest{Trees: 60, Seed: 42}
	if err := rf.Fit(xTr, yTr); err != nil {
		t.Fatal(err)
	}
	linErr, _ := RMSE(yTe, PredictAll(lin, xTe))
	rfErr, _ := RMSE(yTe, PredictAll(rf, xTe))
	if rfErr >= linErr {
		t.Fatalf("forest RMSE %v not better than linear %v on nonlinear data", rfErr, linErr)
	}
	if rfErr > 0.15 {
		t.Fatalf("forest RMSE %v too high", rfErr)
	}
}

func TestForestPredictionsWithinTrainingRange(t *testing.T) {
	// Trees average training targets, so predictions cannot leave the
	// observed target range — a useful invariant for frequency search.
	x, y := synthNonlinear(500, 12)
	rf := &Forest{Trees: 40, Seed: 1}
	if err := rf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		p := rf.Predict([]float64{4*rng.Float64() - 2, 4*rng.Float64() - 2})
		if p < lo-1e-9 || p > hi+1e-9 {
			t.Fatalf("prediction %v outside training range [%v, %v]", p, lo, hi)
		}
	}
}

func TestForestDeterministicForFixedSeed(t *testing.T) {
	x, y := synthNonlinear(300, 14)
	fit := func() *Forest {
		rf := &Forest{Trees: 20, Seed: 99}
		if err := rf.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		return rf
	}
	a, b := fit(), fit()
	for i := 0; i < 50; i++ {
		p := []float64{float64(i)/25 - 1, float64(i%7)/3.5 - 1}
		if a.Predict(p) != b.Predict(p) {
			t.Fatal("forest not deterministic for fixed seed")
		}
	}
}

func TestForestFitsConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}}
	y := []float64{7, 7, 7, 7, 7}
	rf := &Forest{Trees: 5, Seed: 0}
	if err := rf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if p := rf.Predict([]float64{2.5}); p != 7 {
		t.Fatalf("constant-target prediction %v, want 7", p)
	}
}

func TestForestRejectsBadInput(t *testing.T) {
	rf := &Forest{}
	if err := rf.Fit(nil, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestForestInterpolatesStepFunction(t *testing.T) {
	// A step function is the canonical tree-friendly shape.
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := float64(i) / 100
		x = append(x, []float64{v})
		if v < 1 {
			y = append(y, 0)
		} else {
			y = append(y, 10)
		}
	}
	rf := &Forest{Trees: 30, Seed: 3}
	if err := rf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if p := rf.Predict([]float64{0.5}); math.Abs(p) > 0.5 {
		t.Errorf("predict(0.5) = %v, want ~0", p)
	}
	if p := rf.Predict([]float64{1.5}); math.Abs(p-10) > 0.5 {
		t.Errorf("predict(1.5) = %v, want ~10", p)
	}
}
