package ml

import (
	"bytes"
	"strings"
	"testing"
)

// roundTrip saves and reloads a model, checking predictions match
// exactly on a probe grid.
func roundTrip(t *testing.T, m Regressor, dims int) {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatalf("%s: save: %v", m.Name(), err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatalf("%s: load: %v", m.Name(), err)
	}
	if loaded.Name() != m.Name() {
		t.Fatalf("round trip changed algo: %s -> %s", m.Name(), loaded.Name())
	}
	probe := make([]float64, dims)
	for i := 0; i < 50; i++ {
		for j := range probe {
			probe[j] = float64(i*7+j*3)/25 - 1
		}
		if got, want := loaded.Predict(probe), m.Predict(probe); got != want {
			t.Fatalf("%s: prediction changed after round trip: %v vs %v", m.Name(), got, want)
		}
	}
}

func TestSaveLoadAllModelTypes(t *testing.T) {
	x, y := synthNonlinear(300, 77)
	for _, m := range []Regressor{
		&Linear{},
		&Lasso{Alpha: 0.01},
		&Forest{Trees: 15, Seed: 5},
		&SVR{C: 10, Epsilon: 0.05, Gamma: 1},
	} {
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		roundTrip(t, m, 2)
	}
}

func TestSaveUnfittedSVRFails(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, &SVR{}); err == nil {
		t.Fatal("unfitted SVR saved")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"algo":"GBM","data":{}}`)); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"algo":"RandomForest","data":{"trees":[null]}}`)); err == nil {
		t.Error("forest with empty tree accepted")
	}
	// Interior node with missing children.
	if _, err := LoadModel(strings.NewReader(
		`{"algo":"RandomForest","data":{"trees":[{"f":0,"t":1,"leaf":false}]}}`)); err == nil {
		t.Error("malformed tree accepted")
	}
}

func TestSaveRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, fakeModel{}); err == nil {
		t.Fatal("unknown model type saved")
	}
}

type fakeModel struct{}

func (fakeModel) Name() string                     { return "fake" }
func (fakeModel) Fit([][]float64, []float64) error { return nil }
func (fakeModel) Predict([]float64) float64        { return 0 }
