package ml

import (
	"errors"
	"math/rand"
)

// Split is one train/test partition, as row indices.
type Split struct {
	Train, Test []int
}

// KFold partitions n samples into k shuffled folds (deterministic for a
// given seed).
func KFold(n, k int, seed int64) ([]Split, error) {
	if k < 2 || k > n {
		return nil, errors.New("ml: k must be in [2, n]")
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	splits := make([]Split, k)
	for f := 0; f < k; f++ {
		var train []int
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, folds[g]...)
			}
		}
		splits[f] = Split{Train: train, Test: folds[f]}
	}
	return splits, nil
}

// LeaveOneGroupOut yields one split per distinct group label: the test
// set is that group, the training set everything else. This is the
// evaluation protocol of §8.3 (train on the other benchmarks, predict
// the held-out one).
func LeaveOneGroupOut(groups []string) ([]Split, []string, error) {
	if len(groups) == 0 {
		return nil, nil, errors.New("ml: no groups")
	}
	var order []string
	seen := map[string]bool{}
	for _, g := range groups {
		if !seen[g] {
			seen[g] = true
			order = append(order, g)
		}
	}
	if len(order) < 2 {
		return nil, nil, errors.New("ml: need at least two groups")
	}
	splits := make([]Split, 0, len(order))
	for _, g := range order {
		var s Split
		for i, gi := range groups {
			if gi == g {
				s.Test = append(s.Test, i)
			} else {
				s.Train = append(s.Train, i)
			}
		}
		splits = append(splits, s)
	}
	return splits, order, nil
}

// Rows gathers the given rows of x and y.
func Rows(x [][]float64, y []float64, idx []int) ([][]float64, []float64) {
	xs := make([][]float64, len(idx))
	ys := make([]float64, len(idx))
	for i, r := range idx {
		xs[i] = x[r]
		ys[i] = y[r]
	}
	return xs, ys
}
