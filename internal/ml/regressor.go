package ml

// Regressor is the common interface of all models: fit on a design
// matrix (rows = samples) and predict single samples.
type Regressor interface {
	// Name identifies the algorithm ("Linear", "Lasso", "RandomForest",
	// "SVR_RBF").
	Name() string
	// Fit trains the model. Implementations must not retain x or y.
	Fit(x [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector.
	Predict(x []float64) float64
}

// PredictAll applies the model to every row.
func PredictAll(m Regressor, x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, r := range x {
		out[i] = m.Predict(r)
	}
	return out
}
