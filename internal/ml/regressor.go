package ml

import "fmt"

// Regressor is the common interface of all models: fit on a design
// matrix (rows = samples) and predict single samples.
type Regressor interface {
	// Name identifies the algorithm ("Linear", "Lasso", "RandomForest",
	// "SVR_RBF").
	Name() string
	// Fit trains the model. Implementations must not retain x or y.
	Fit(x [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector.
	Predict(x []float64) float64
}

// BatchRegressor is implemented by models with a vectorised prediction
// path: PredictInto fills dst[i] with the prediction for rows[i]
// without allocating. dst must be at least as long as rows.
type BatchRegressor interface {
	Regressor
	PredictInto(dst []float64, rows [][]float64)
}

// FitChecker is implemented by models that can report whether they are
// in a usable fitted state. The error is descriptive — it names the
// algorithm and what is missing — so the model layer can refuse to
// serve predictions from an unfit or corrupt model instead of silently
// returning garbage.
type FitChecker interface {
	CheckFitted() error
}

// CheckFitted reports whether a regressor is ready to predict. Models
// that do not implement FitChecker are assumed fitted.
func CheckFitted(r Regressor) error {
	if r == nil {
		return fmt.Errorf("ml: nil regressor")
	}
	if c, ok := r.(FitChecker); ok {
		return c.CheckFitted()
	}
	return nil
}

// PredictAll applies the model to every row.
func PredictAll(m Regressor, x [][]float64) []float64 {
	out := make([]float64, len(x))
	PredictAllInto(m, out, x)
	return out
}

// PredictAllInto fills dst with per-row predictions, using the model's
// batch path when it has one. dst must be at least as long as x.
func PredictAllInto(m Regressor, dst []float64, x [][]float64) {
	if b, ok := m.(BatchRegressor); ok {
		b.PredictInto(dst, x)
		return
	}
	for i, r := range x {
		dst[i] = m.Predict(r)
	}
}
