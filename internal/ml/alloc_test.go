//go:build !race

package ml

import "testing"

// The flattened predict path is the serve daemon's inner loop: it must
// not allocate. (Skipped under -race, whose instrumentation allocates.)
func TestForestPredictZeroAlloc(t *testing.T) {
	f, x := fitTestForest(t, 16, 300, 6)
	row := x[0]
	sink := 0.0
	if allocs := testing.AllocsPerRun(1000, func() { sink += f.Predict(row) }); allocs != 0 {
		t.Errorf("Forest.Predict allocates %v per run, want 0", allocs)
	}
	dst := make([]float64, 64)
	rows := x[:64]
	if allocs := testing.AllocsPerRun(1000, func() { f.PredictInto(dst, rows) }); allocs != 0 {
		t.Errorf("Forest.PredictInto allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { PredictAllInto(f, dst, rows) }); allocs != 0 {
		t.Errorf("PredictAllInto(Forest) allocates %v per run, want 0", allocs)
	}
	_ = sink
}
