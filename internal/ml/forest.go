package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Forest is a random-forest regressor: bootstrap-aggregated CART trees
// with per-split feature subsampling. Deterministic for a fixed Seed.
//
// Internally the ensemble is stored twice: the pointer-linked trees the
// builder produces (retained as the reference implementation and the
// persistence form) and a flattened structure-of-arrays copy that the
// prediction hot path walks by index. Predict and PredictInto touch only
// the flattened arrays and perform no allocations.
type Forest struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// MaxDepth bounds tree depth (default 16).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
	// MaxFeatures is the number of features considered per split
	// (default ⌈d/3⌉, the regression heuristic).
	MaxFeatures int
	// Seed drives all randomness (bootstrap and feature subsampling).
	Seed int64

	trees []*treeNode
	flat  flatForest
}

type treeNode struct {
	feature  int
	thresh   float64
	value    float64 // leaf prediction
	lo, hi   *treeNode
	leafFlag bool
}

// leafFeature marks a leaf in the flattened feature array; lo/hi of a
// leaf are unused and value holds the prediction.
const leafFeature = int32(-1)

// flatForest is the contiguous inference form of the ensemble: all
// nodes of all trees in one structure-of-arrays block, trees identified
// by their root index. Children are stored as absolute node indices, so
// a predict walk is pure index chasing over five dense slices — no
// pointers, no per-call allocation, cache-friendly.
type flatForest struct {
	roots   []int32
	feature []int32 // split feature, or leafFeature for a leaf
	thresh  []float64
	lo, hi  []int32
	value   []float64 // leaf prediction (meaningful when feature < 0)
}

// flattenInto appends one pointer tree in preorder and returns its root
// index.
func (ff *flatForest) flattenInto(n *treeNode) int32 {
	idx := int32(len(ff.feature))
	if n.leafFlag {
		ff.feature = append(ff.feature, leafFeature)
		ff.thresh = append(ff.thresh, 0)
		ff.lo = append(ff.lo, 0)
		ff.hi = append(ff.hi, 0)
		ff.value = append(ff.value, n.value)
		return idx
	}
	ff.feature = append(ff.feature, int32(n.feature))
	ff.thresh = append(ff.thresh, n.thresh)
	ff.lo = append(ff.lo, 0)
	ff.hi = append(ff.hi, 0)
	ff.value = append(ff.value, 0)
	ff.lo[idx] = ff.flattenInto(n.lo)
	ff.hi[idx] = ff.flattenInto(n.hi)
	return idx
}

// flatten rebuilds the flattened arrays from the pointer trees.
func flatten(trees []*treeNode) flatForest {
	var ff flatForest
	ff.roots = make([]int32, 0, len(trees))
	for _, t := range trees {
		ff.roots = append(ff.roots, ff.flattenInto(t))
	}
	return ff
}

// validate checks the structural invariants a well-formed flattened
// forest satisfies: non-empty ensemble, every root and child index
// in-bounds, and interior nodes pointing strictly forward (the preorder
// layout guarantee, which rules out cycles).
func (ff *flatForest) validate() error {
	if len(ff.roots) == 0 {
		return fmt.Errorf("ml: forest has no trees")
	}
	n := len(ff.feature)
	if len(ff.thresh) != n || len(ff.lo) != n || len(ff.hi) != n || len(ff.value) != n {
		return fmt.Errorf("ml: forest node arrays have mismatched lengths")
	}
	if n == 0 {
		return fmt.Errorf("ml: forest has no nodes")
	}
	for _, r := range ff.roots {
		if r < 0 || int(r) >= n {
			return fmt.Errorf("ml: forest root index %d out of bounds [0, %d)", r, n)
		}
	}
	for i := 0; i < n; i++ {
		if ff.feature[i] == leafFeature {
			continue
		}
		if ff.feature[i] < 0 {
			return fmt.Errorf("ml: forest node %d has invalid feature %d", i, ff.feature[i])
		}
		for _, c := range [2]int32{ff.lo[i], ff.hi[i]} {
			if int(c) >= n || c <= int32(i) {
				return fmt.Errorf("ml: forest node %d child index %d out of bounds (%d nodes)", i, c, n)
			}
		}
	}
	return nil
}

// Name implements Regressor.
func (f *Forest) Name() string { return "RandomForest" }

// CheckFitted implements FitChecker: an error describes why the forest
// cannot predict (never fitted, or loaded from a corrupt bundle).
func (f *Forest) CheckFitted() error {
	if len(f.trees) == 0 {
		return fmt.Errorf("ml: RandomForest is not fitted (no trees)")
	}
	return f.flat.validate()
}

// Fit implements Regressor.
func (f *Forest) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	nTrees := f.Trees
	if nTrees <= 0 {
		nTrees = 100
	}
	maxDepth := f.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 16
	}
	minLeaf := f.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	d := len(x[0])
	maxFeat := f.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = (d + 2) / 3
	}
	if maxFeat > d {
		maxFeat = d
	}

	rng := rand.New(rand.NewSource(f.Seed + 0x5deece66d))
	n := len(x)
	f.trees = make([]*treeNode, nTrees)
	for t := 0; t < nTrees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		b := &treeBuilder{
			x: x, y: y,
			minLeaf: minLeaf, maxFeat: maxFeat, d: d,
			rng: rand.New(rand.NewSource(rng.Int63())),
		}
		f.trees[t] = b.build(idx, maxDepth)
	}
	f.flat = flatten(f.trees)
	return nil
}

type treeBuilder struct {
	x       [][]float64
	y       []float64
	minLeaf int
	maxFeat int
	d       int
	rng     *rand.Rand
}

func (b *treeBuilder) build(idx []int, depth int) *treeNode {
	mean := 0.0
	for _, i := range idx {
		mean += b.y[i]
	}
	mean /= float64(len(idx))
	if depth == 0 || len(idx) < 2*b.minLeaf || constantTargets(b.y, idx) {
		return &treeNode{leafFlag: true, value: mean}
	}

	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	feats := b.sampleFeatures()
	sorted := make([]int, len(idx))
	for _, feat := range feats {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, c int) bool { return b.x[sorted[a]][feat] < b.x[sorted[c]][feat] })
		// Prefix sums for O(n) split scan.
		sumL, sqL := 0.0, 0.0
		sumT, sqT := 0.0, 0.0
		for _, i := range sorted {
			sumT += b.y[i]
			sqT += b.y[i] * b.y[i]
		}
		for k := 0; k < len(sorted)-1; k++ {
			yi := b.y[sorted[k]]
			sumL += yi
			sqL += yi * yi
			// Can't split between equal feature values.
			if b.x[sorted[k]][feat] == b.x[sorted[k+1]][feat] {
				continue
			}
			nl := float64(k + 1)
			nr := float64(len(sorted) - k - 1)
			if int(nl) < b.minLeaf || int(nr) < b.minLeaf {
				continue
			}
			sseL := sqL - sumL*sumL/nl
			sumR := sumT - sumL
			sseR := (sqT - sqL) - sumR*sumR/nr
			if score := sseL + sseR; score < bestScore {
				bestScore = score
				bestFeat = feat
				bestThresh = (b.x[sorted[k]][feat] + b.x[sorted[k+1]][feat]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{leafFlag: true, value: mean}
	}

	var loIdx, hiIdx []int
	for _, i := range idx {
		if b.x[i][bestFeat] <= bestThresh {
			loIdx = append(loIdx, i)
		} else {
			hiIdx = append(hiIdx, i)
		}
	}
	if len(loIdx) == 0 || len(hiIdx) == 0 {
		return &treeNode{leafFlag: true, value: mean}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		lo:      b.build(loIdx, depth-1),
		hi:      b.build(hiIdx, depth-1),
	}
}

func (b *treeBuilder) sampleFeatures() []int {
	perm := b.rng.Perm(b.d)
	return perm[:b.maxFeat]
}

func constantTargets(y []float64, idx []int) bool {
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if y[i] != first {
			return false
		}
	}
	return true
}

// Predict implements Regressor by walking the flattened arrays; it
// performs no allocations. An unfitted forest returns NaN — callers that
// can surface errors should gate on CheckFitted (the model layer does),
// and NaN poisons any downstream arithmetic instead of masquerading as
// a confident zero prediction.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.flat.roots) == 0 {
		return math.NaN()
	}
	return f.flat.predict(x)
}

func (ff *flatForest) predict(x []float64) float64 {
	feature, thresh := ff.feature, ff.thresh
	lo, hi, value := ff.lo, ff.hi, ff.value
	s := 0.0
	for _, n := range ff.roots {
		for feature[n] >= 0 {
			if x[feature[n]] <= thresh[n] {
				n = lo[n]
			} else {
				n = hi[n]
			}
		}
		s += value[n]
	}
	return s / float64(len(ff.roots))
}

// PredictInto implements BatchRegressor: it fills dst[i] with the
// prediction for rows[i], allocation-free. dst must be at least as long
// as rows.
func (f *Forest) PredictInto(dst []float64, rows [][]float64) {
	if len(f.flat.roots) == 0 {
		for i := range rows {
			dst[i] = math.NaN()
		}
		return
	}
	for i, r := range rows {
		dst[i] = f.flat.predict(r)
	}
}

// PredictReference walks the original pointer-linked trees. It is the
// differential oracle for the flattened Predict: both walks visit the
// same nodes in the same order and accumulate in the same order, so the
// results are bit-identical.
func (f *Forest) PredictReference(x []float64) float64 {
	if len(f.trees) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, t := range f.trees {
		s += t.predict(x)
	}
	return s / float64(len(f.trees))
}

func (n *treeNode) predict(x []float64) float64 {
	for !n.leafFlag {
		if x[n.feature] <= n.thresh {
			n = n.lo
		} else {
			n = n.hi
		}
	}
	return n.value
}
