package ml

import (
	"math"
	"math/rand"
	"sort"
)

// Forest is a random-forest regressor: bootstrap-aggregated CART trees
// with per-split feature subsampling. Deterministic for a fixed Seed.
type Forest struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// MaxDepth bounds tree depth (default 16).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
	// MaxFeatures is the number of features considered per split
	// (default ⌈d/3⌉, the regression heuristic).
	MaxFeatures int
	// Seed drives all randomness (bootstrap and feature subsampling).
	Seed int64

	trees []*treeNode
}

type treeNode struct {
	feature  int
	thresh   float64
	value    float64 // leaf prediction
	lo, hi   *treeNode
	leafFlag bool
}

// Name implements Regressor.
func (f *Forest) Name() string { return "RandomForest" }

// Fit implements Regressor.
func (f *Forest) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	nTrees := f.Trees
	if nTrees <= 0 {
		nTrees = 100
	}
	maxDepth := f.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 16
	}
	minLeaf := f.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	d := len(x[0])
	maxFeat := f.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = (d + 2) / 3
	}
	if maxFeat > d {
		maxFeat = d
	}

	rng := rand.New(rand.NewSource(f.Seed + 0x5deece66d))
	n := len(x)
	f.trees = make([]*treeNode, nTrees)
	for t := 0; t < nTrees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		b := &treeBuilder{
			x: x, y: y,
			minLeaf: minLeaf, maxFeat: maxFeat, d: d,
			rng: rand.New(rand.NewSource(rng.Int63())),
		}
		f.trees[t] = b.build(idx, maxDepth)
	}
	return nil
}

type treeBuilder struct {
	x       [][]float64
	y       []float64
	minLeaf int
	maxFeat int
	d       int
	rng     *rand.Rand
}

func (b *treeBuilder) build(idx []int, depth int) *treeNode {
	mean := 0.0
	for _, i := range idx {
		mean += b.y[i]
	}
	mean /= float64(len(idx))
	if depth == 0 || len(idx) < 2*b.minLeaf || constantTargets(b.y, idx) {
		return &treeNode{leafFlag: true, value: mean}
	}

	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	feats := b.sampleFeatures()
	sorted := make([]int, len(idx))
	for _, feat := range feats {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, c int) bool { return b.x[sorted[a]][feat] < b.x[sorted[c]][feat] })
		// Prefix sums for O(n) split scan.
		sumL, sqL := 0.0, 0.0
		sumT, sqT := 0.0, 0.0
		for _, i := range sorted {
			sumT += b.y[i]
			sqT += b.y[i] * b.y[i]
		}
		for k := 0; k < len(sorted)-1; k++ {
			yi := b.y[sorted[k]]
			sumL += yi
			sqL += yi * yi
			// Can't split between equal feature values.
			if b.x[sorted[k]][feat] == b.x[sorted[k+1]][feat] {
				continue
			}
			nl := float64(k + 1)
			nr := float64(len(sorted) - k - 1)
			if int(nl) < b.minLeaf || int(nr) < b.minLeaf {
				continue
			}
			sseL := sqL - sumL*sumL/nl
			sumR := sumT - sumL
			sseR := (sqT - sqL) - sumR*sumR/nr
			if score := sseL + sseR; score < bestScore {
				bestScore = score
				bestFeat = feat
				bestThresh = (b.x[sorted[k]][feat] + b.x[sorted[k+1]][feat]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{leafFlag: true, value: mean}
	}

	var loIdx, hiIdx []int
	for _, i := range idx {
		if b.x[i][bestFeat] <= bestThresh {
			loIdx = append(loIdx, i)
		} else {
			hiIdx = append(hiIdx, i)
		}
	}
	if len(loIdx) == 0 || len(hiIdx) == 0 {
		return &treeNode{leafFlag: true, value: mean}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		lo:      b.build(loIdx, depth-1),
		hi:      b.build(hiIdx, depth-1),
	}
}

func (b *treeBuilder) sampleFeatures() []int {
	perm := b.rng.Perm(b.d)
	return perm[:b.maxFeat]
}

func constantTargets(y []float64, idx []int) bool {
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if y[i] != first {
			return false
		}
	}
	return true
}

// Predict implements Regressor.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range f.trees {
		s += t.predict(x)
	}
	return s / float64(len(f.trees))
}

func (n *treeNode) predict(x []float64) float64 {
	for !n.leafFlag {
		if x[n.feature] <= n.thresh {
			n = n.lo
		} else {
			n = n.hi
		}
	}
	return n.value
}
