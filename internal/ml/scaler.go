package ml

import (
	"errors"
	"math"
)

// StandardScaler shifts each feature to zero mean and unit variance.
// Constant features are left centred with scale 1 (they carry no
// information but must not produce NaNs).
type StandardScaler struct {
	Mean  []float64
	Scale []float64
}

// FitScaler computes per-feature statistics from x.
func FitScaler(x [][]float64) (*StandardScaler, error) {
	if len(x) == 0 || len(x[0]) == 0 {
		return nil, errors.New("ml: cannot fit scaler on empty data")
	}
	d := len(x[0])
	mean := make([]float64, d)
	for _, r := range x {
		for j, v := range r {
			mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range mean {
		mean[j] /= n
	}
	scale := make([]float64, d)
	for _, r := range x {
		for j, v := range r {
			dv := v - mean[j]
			scale[j] += dv * dv
		}
	}
	for j := range scale {
		scale[j] = math.Sqrt(scale[j] / n)
		if scale[j] < 1e-12 {
			scale[j] = 1
		}
	}
	return &StandardScaler{Mean: mean, Scale: scale}, nil
}

// Transform returns a scaled copy of one sample.
func (s *StandardScaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Scale[j]
	}
	return out
}

// TransformAll returns a scaled copy of the whole matrix.
func (s *StandardScaler) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, r := range x {
		out[i] = s.Transform(r)
	}
	return out
}

// Inverse undoes Transform for one sample.
func (s *StandardScaler) Inverse(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = v*s.Scale[j] + s.Mean[j]
	}
	return out
}
