package apps

import (
	"math"

	"synergy/internal/kernelir"
)

// Mini CloverLeaf: 2-D compressible Euler hydrodynamics on a staggered
// grid, following the original code's kernel decomposition — ideal_gas,
// viscosity, accelerate, PdV, flux_calc, advection — with a Sod-like
// energy blob as the initial condition. The kernel mix (EOS square
// roots and divisions over a streaming field access pattern) gives the
// moderately memory-bound character that yields ~20% energy savings at
// ES_50 in the paper's Fig. 10a.

const (
	cloverGamma = 1.4
	cloverDt    = 1e-3
)

func cloverIdealGas() *kernelir.Kernel {
	b := kernelir.NewBuilder("clover_ideal_gas")
	density := b.BufferF32("density", kernelir.Read)
	energy := b.BufferF32("energy", kernelir.Read)
	pressure := b.BufferF32("pressure", kernelir.Write)
	soundspeed := b.BufferF32("soundspeed", kernelir.Write)
	b.TrafficFactor(1)
	gid := b.GlobalID()
	rho := b.LoadF(density, gid)
	e := b.LoadF(energy, gid)
	p := b.MulF(b.MulF(b.ConstF(cloverGamma-1), rho), e)
	rhoSafe := b.MaxF(rho, b.ConstF(0.1))
	ss := b.SqrtF(b.DivF(b.MulF(b.ConstF(cloverGamma), p), rhoSafe))
	b.StoreF(pressure, gid, p)
	b.StoreF(soundspeed, gid, ss)
	return b.MustBuild()
}

func cloverViscosity() *kernelir.Kernel {
	b := kernelir.NewBuilder("clover_viscosity")
	xvel := b.BufferF32("xvel", kernelir.Read)
	yvel := b.BufferF32("yvel", kernelir.Read)
	density := b.BufferF32("density", kernelir.Read)
	visc := b.BufferF32("viscosity", kernelir.Write)
	nx := b.ScalarI("nx")
	b.TrafficFactor(0.7)
	gid := b.GlobalID()
	right := b.AddI(gid, b.ConstI(1))
	down := b.AddI(gid, nx)
	ux := b.SubF(b.LoadF(xvel, right), b.LoadF(xvel, gid))
	vy := b.SubF(b.LoadF(yvel, down), b.LoadF(yvel, gid))
	div := b.AddF(ux, vy)
	rho := b.LoadF(density, gid)
	q := b.MulF(b.MulF(b.ConstF(2), rho), b.MulF(div, div))
	isNeg := b.CmpLTF(div, b.ConstF(0))
	b.StoreF(visc, gid, b.SelF(isNeg, q, b.ConstF(0)))
	return b.MustBuild()
}

func cloverAccelerate() *kernelir.Kernel {
	b := kernelir.NewBuilder("clover_accelerate")
	pressure := b.BufferF32("pressure", kernelir.Read)
	visc := b.BufferF32("viscosity", kernelir.Read)
	density := b.BufferF32("density", kernelir.Read)
	xvel := b.BufferF32("xvel", kernelir.ReadWrite)
	yvel := b.BufferF32("yvel", kernelir.ReadWrite)
	nx := b.ScalarI("nx")
	b.TrafficFactor(0.75)
	gid := b.GlobalID()
	left := b.SubI(gid, b.ConstI(1))
	up := b.SubI(gid, nx)
	pC := b.LoadF(pressure, gid)
	qC := b.LoadF(visc, gid)
	gradX := b.AddF(b.SubF(pC, b.LoadF(pressure, left)), b.SubF(qC, b.LoadF(visc, left)))
	gradY := b.AddF(b.SubF(pC, b.LoadF(pressure, up)), b.SubF(qC, b.LoadF(visc, up)))
	rho := b.MaxF(b.LoadF(density, gid), b.ConstF(0.1))
	dt := b.ConstF(cloverDt)
	xv := b.SubF(b.LoadF(xvel, gid), b.DivF(b.MulF(dt, gradX), rho))
	yv := b.SubF(b.LoadF(yvel, gid), b.DivF(b.MulF(dt, gradY), rho))
	b.StoreF(xvel, gid, xv)
	b.StoreF(yvel, gid, yv)
	return b.MustBuild()
}

func cloverPdV() *kernelir.Kernel {
	b := kernelir.NewBuilder("clover_pdv")
	pressure := b.BufferF32("pressure", kernelir.Read)
	visc := b.BufferF32("viscosity", kernelir.Read)
	xvel := b.BufferF32("xvel", kernelir.Read)
	yvel := b.BufferF32("yvel", kernelir.Read)
	density := b.BufferF32("density", kernelir.ReadWrite)
	energy := b.BufferF32("energy", kernelir.ReadWrite)
	nx := b.ScalarI("nx")
	b.TrafficFactor(0.8)
	gid := b.GlobalID()
	right := b.AddI(gid, b.ConstI(1))
	down := b.AddI(gid, nx)
	ux := b.SubF(b.LoadF(xvel, right), b.LoadF(xvel, gid))
	vy := b.SubF(b.LoadF(yvel, down), b.LoadF(yvel, gid))
	div := b.AddF(ux, vy)
	dt := b.ConstF(cloverDt)
	rho := b.LoadF(density, gid)
	rhoN := b.MaxF(b.MulF(rho, b.SubF(b.ConstF(1), b.MulF(dt, div))), b.ConstF(0.1))
	pq := b.AddF(b.LoadF(pressure, gid), b.LoadF(visc, gid))
	work := b.DivF(b.MulF(b.MulF(dt, pq), div), rhoN)
	eN := b.MaxF(b.SubF(b.LoadF(energy, gid), work), b.ConstF(0.01))
	b.StoreF(density, gid, rhoN)
	b.StoreF(energy, gid, eN)
	return b.MustBuild()
}

func cloverFluxCalc() *kernelir.Kernel {
	b := kernelir.NewBuilder("clover_flux_calc")
	xvel := b.BufferF32("xvel", kernelir.Read)
	yvel := b.BufferF32("yvel", kernelir.Read)
	fluxX := b.BufferF32("fluxx", kernelir.Write)
	fluxY := b.BufferF32("fluxy", kernelir.Write)
	nx := b.ScalarI("nx")
	b.TrafficFactor(1)
	gid := b.GlobalID()
	right := b.AddI(gid, b.ConstI(1))
	down := b.AddI(gid, nx)
	half := b.ConstF(0.5 * cloverDt)
	fx := b.MulF(half, b.AddF(b.LoadF(xvel, gid), b.LoadF(xvel, right)))
	fy := b.MulF(half, b.AddF(b.LoadF(yvel, gid), b.LoadF(yvel, down)))
	b.StoreF(fluxX, gid, fx)
	b.StoreF(fluxY, gid, fy)
	return b.MustBuild()
}

func cloverAdvec() *kernelir.Kernel {
	b := kernelir.NewBuilder("clover_advec")
	fluxX := b.BufferF32("fluxx", kernelir.Read)
	fluxY := b.BufferF32("fluxy", kernelir.Read)
	density := b.BufferF32("density", kernelir.ReadWrite)
	energy := b.BufferF32("energy", kernelir.ReadWrite)
	nx := b.ScalarI("nx")
	b.TrafficFactor(0.8)
	gid := b.GlobalID()
	left := b.SubI(gid, b.ConstI(1))
	up := b.SubI(gid, nx)
	net := b.AddF(
		b.SubF(b.LoadF(fluxX, left), b.LoadF(fluxX, gid)),
		b.SubF(b.LoadF(fluxY, up), b.LoadF(fluxY, gid)),
	)
	rho := b.LoadF(density, gid)
	e := b.LoadF(energy, gid)
	rhoN := b.MaxF(b.AddF(rho, b.MulF(net, rho)), b.ConstF(0.1))
	eN := b.MaxF(b.AddF(e, b.MulF(net, e)), b.ConstF(0.01))
	b.StoreF(density, gid, rhoN)
	b.StoreF(energy, gid, eN)
	return b.MustBuild()
}

// NewCloverLeaf assembles the application.
func NewCloverLeaf() *App {
	kernels := []*kernelir.Kernel{
		cloverIdealGas(), cloverViscosity(), cloverAccelerate(),
		cloverPdV(), cloverFluxCalc(), cloverAdvec(),
	}
	return &App{
		Name:    "cloverleaf",
		Kernels: kernels,
		NewState: func(nx, ny int) *State {
			n := nx * ny
			density := make([]float32, n)
			energy := make([]float32, n)
			pressure := make([]float32, n)
			soundspeed := make([]float32, n)
			xvel := make([]float32, n)
			yvel := make([]float32, n)
			visc := make([]float32, n)
			fluxX := make([]float32, n)
			fluxY := make([]float32, n)
			// Sod-like hot dense blob in the grid centre.
			cx, cy := float64(nx)/2, float64(ny)/2
			r2 := float64(nx*nx) / 16
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					d := (float64(x)-cx)*(float64(x)-cx) + (float64(y)-cy)*(float64(y)-cy)
					blob := math.Exp(-d / r2)
					density[y*nx+x] = float32(1 + blob)
					energy[y*nx+x] = float32(1 + 2*blob)
				}
			}
			scalars := map[string]int64{"nx": int64(nx)}
			f32 := map[string][]float32{
				"density": density, "energy": energy, "pressure": pressure,
				"soundspeed": soundspeed, "xvel": xvel, "yvel": yvel,
				"viscosity": visc, "fluxx": fluxX, "fluxy": fluxY,
			}
			args := kernelir.Args{F32: f32, ScalarI: scalars}
			st := &State{
				Nx: nx, Ny: ny,
				Args: map[string]kernelir.Args{},
				Halo: [][]float32{density, energy, xvel, yvel},
			}
			for _, k := range kernels {
				st.Args[k.Name] = args
			}
			return st
		},
	}
}
