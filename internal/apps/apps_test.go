package apps

import (
	"testing"

	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/mpi"
)

func smallCfg(nodes, gpus int) RunConfig {
	return RunConfig{
		Spec:        hw.V100(),
		Nodes:       nodes,
		GPUsPerNode: gpus,
		LocalNx:     48,
		LocalNy:     48,
		Steps:       6,
		Net:         mpi.EDRFabric(),
	}
}

func TestAppsSingleRankRun(t *testing.T) {
	for _, app := range []*App{NewCloverLeaf(), NewMiniWeather()} {
		res, err := Run(app, smallCfg(1, 1))
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if res.TimeSec <= 0 || res.EnergyJ <= 0 {
			t.Fatalf("%s: non-positive result %+v", app.Name, res)
		}
		if res.Ranks != 1 {
			t.Fatalf("%s: ranks = %d", app.Name, res.Ranks)
		}
	}
}

func TestAppKernelsValidateAndHaveBindings(t *testing.T) {
	for _, app := range []*App{NewCloverLeaf(), NewMiniWeather()} {
		st := app.NewState(16, 16)
		for _, k := range app.Kernels {
			if err := k.Validate(); err != nil {
				t.Errorf("%s/%s: %v", app.Name, k.Name, err)
			}
			if _, ok := st.Args[k.Name]; !ok {
				t.Errorf("%s: state has no bindings for %s", app.Name, k.Name)
			}
		}
		if len(st.Halo) == 0 {
			t.Errorf("%s: no halo fields", app.Name)
		}
	}
}

func TestAppStateStaysFinite(t *testing.T) {
	for _, app := range []*App{NewCloverLeaf(), NewMiniWeather()} {
		cfg := smallCfg(1, 2) // includes halo exchange
		cfg.Steps = 20
		if _, err := Run(app, cfg); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		// Re-run locally to inspect the state after the same number of
		// steps on one rank.
		st := app.NewState(cfg.LocalNx, cfg.LocalNy)
		items := cfg.LocalNx * cfg.LocalNy
		for step := 0; step < 20; step++ {
			for _, k := range app.Kernels {
				if err := kernelir.Execute(k, st.Args[k.Name], items); err != nil {
					t.Fatalf("%s/%s: %v", app.Name, k.Name, err)
				}
			}
		}
		for _, args := range st.Args {
			for field, buf := range args.F32 {
				for i, v := range buf {
					if v != v || v > 1e6 || v < -1e6 {
						t.Fatalf("%s: field %s[%d] = %v after 20 steps",
							app.Name, field, i, v)
					}
				}
			}
			break // all kernels share the same binding set
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	app := NewCloverLeaf()
	a, err := Run(app, smallCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(app, smallCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeSec != b.TimeSec || a.EnergyJ != b.EnergyJ {
		t.Fatalf("non-deterministic run: %+v vs %+v", a, b)
	}
}

func TestRunConfigValidation(t *testing.T) {
	app := NewMiniWeather()
	bad := smallCfg(0, 4)
	if _, err := Run(app, bad); err == nil {
		t.Error("zero nodes accepted")
	}
	bad = smallCfg(1, 1)
	bad.LocalNx = 2
	if _, err := Run(app, bad); err == nil {
		t.Error("tiny grid accepted")
	}
	bad = smallCfg(1, 1)
	bad.Steps = 0
	if _, err := Run(app, bad); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestWeakScalingEnergyGrowsWithRanks(t *testing.T) {
	app := NewMiniWeather()
	small, err := Run(app, smallCfg(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(app, smallCfg(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Weak scaling: 4x the ranks, ~4x the energy; time grows only by
	// the communication overhead.
	if ratio := big.EnergyJ / small.EnergyJ; ratio < 3.5 || ratio > 4.6 {
		t.Errorf("energy ratio %.2f for 4x ranks, want ~4", ratio)
	}
	if big.TimeSec < small.TimeSec {
		t.Errorf("time shrank under weak scaling: %v -> %v", small.TimeSec, big.TimeSec)
	}
	if big.TimeSec > small.TimeSec*1.5 {
		t.Errorf("communication overhead too large: %v -> %v", small.TimeSec, big.TimeSec)
	}
}

func TestFreqPlanScalesKernels(t *testing.T) {
	app := NewCloverLeaf()
	spec := hw.V100()
	low := spec.CoreFreqsMHz[40]
	plan := FreqPlan{}
	for _, k := range app.Kernels {
		plan[k.Name] = low
	}
	base, err := Run(app, smallCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(1, 1)
	cfg.Plan = plan
	scaled, err := Run(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.TimeSec <= base.TimeSec {
		t.Errorf("low-frequency run not slower: %v vs %v", scaled.TimeSec, base.TimeSec)
	}
	if scaled.EnergyJ >= base.EnergyJ {
		t.Errorf("low-frequency run not cheaper: %v vs %v J", scaled.EnergyJ, base.EnergyJ)
	}
	if scaled.ClockSets == 0 {
		t.Error("no clock changes recorded for a planned run")
	}
}

func TestFunctionalCapPreservesTiming(t *testing.T) {
	app := NewMiniWeather()
	full, err := Run(app, smallCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	capped := smallCfg(1, 1)
	capped.FunctionalCap = 64
	part, err := Run(app, capped)
	if err != nil {
		t.Fatal(err)
	}
	if part.TimeSec != full.TimeSec {
		t.Fatalf("functional cap changed virtual time: %v vs %v", part.TimeSec, full.TimeSec)
	}
}

// TestFig10TargetsSaveEnergy is the end-to-end §8.4 check: per-kernel
// plans derived from the trained models must trade energy for time the
// way Fig. 10 reports — ES_50 saves substantial energy on both apps.
func TestFig10TargetsSaveEnergy(t *testing.T) {
	spec := hw.V100()
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		t.Fatal(err)
	}
	adv, err := model.DefaultAdvisor(spec, ks, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []*App{NewCloverLeaf(), NewMiniWeather()} {
		cfg := smallCfg(1, 4)
		cfg.LocalNx, cfg.LocalNy = 16384, 16384
		cfg.StateRows = 8
		cfg.FunctionalCap = 256
		cfg.Steps = 10
		base, err := Run(app, cfg)
		if err != nil {
			t.Fatal(err)
		}
		items := cfg.LocalNx * cfg.LocalNy
		plan, err := PlanFromAdvisor(app, adv, items, metrics.ES(50))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Plan = plan
		es50, err := Run(app, cfg)
		if err != nil {
			t.Fatal(err)
		}
		saving := 1 - es50.EnergyJ/base.EnergyJ
		if saving < 0.05 {
			t.Errorf("%s: ES_50 saving %.1f%%, expected substantial savings", app.Name, 100*saving)
		}
		if saving < 0.10 {
			t.Errorf("%s: ES_50 saving %.1f%%, paper reports ~20-30%%", app.Name, 100*saving)
		}
		loss := es50.TimeSec/base.TimeSec - 1
		if loss > 0.35 {
			t.Errorf("%s: ES_50 loss %.1f%% too large", app.Name, 100*loss)
		}
	}
}

func TestRunProfileMergesAcrossRanks(t *testing.T) {
	app := NewCloverLeaf()
	cfg := smallCfg(1, 2)
	cfg.Profile = true
	res, err := Run(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernels) != len(app.Kernels) {
		t.Fatalf("%d kernel profiles, want %d", len(res.Kernels), len(app.Kernels))
	}
	totalE := 0.0
	for _, s := range res.Kernels {
		// 2 ranks x steps launches per kernel.
		if s.Launches != 2*cfg.Steps {
			t.Errorf("%s: %d launches, want %d", s.Name, s.Launches, 2*cfg.Steps)
		}
		if s.EnergyJ <= 0 {
			t.Errorf("%s: non-positive energy", s.Name)
		}
		totalE += s.EnergyJ
	}
	// Kernel energy is a subset of total device energy (idle excluded).
	if totalE >= res.EnergyJ {
		t.Errorf("kernel energy %.3f exceeds device total %.3f", totalE, res.EnergyJ)
	}
	// Sorted by descending energy.
	for i := 1; i < len(res.Kernels); i++ {
		if res.Kernels[i].EnergyJ > res.Kernels[i-1].EnergyJ {
			t.Fatal("profiles not sorted by energy")
		}
	}
}
