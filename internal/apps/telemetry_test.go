package apps

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"synergy/internal/fault"
	"synergy/internal/hw"
	"synergy/internal/nvml"
	"synergy/internal/resilience"
	"synergy/internal/telemetry"
)

// telemetryScenario makes the telemetry numbers non-trivial without
// failing the run: sporadic transient driver timeouts exercise the
// governor's retry path, and a deterministic denial burst (calls 11-19
// at each device's clock-set site) trips the circuit breaker so
// degradations, short-circuits and breaker transitions all occur.
const telemetryScenario = `
nvml.set_app_clocks p=0.15 err=nvml.timeout
nvml.set_app_clocks after=10 count=9 err=nvml.not_permitted
`

// telemetryRun is one fully-seeded run with telemetry attached
// everywhere; everything it returns is a deterministic function of the
// seed.
type telemetryRun struct {
	reg     *telemetry.Registry
	res     *RunResult
	inj     *fault.Injector
	health  *resilience.Registry
	devices []*hw.Device
	cfg     RunConfig
	app     *App
}

func runWithTelemetry(t *testing.T, seed int64) *telemetryRun {
	t.Helper()
	sc, err := fault.ParseScenario("telemetry", telemetryScenario)
	if err != nil {
		t.Fatal(err)
	}
	app := NewCloverLeaf()
	cfg := smallCfg(2, 2)
	ranks := cfg.Nodes * cfg.GPUsPerNode

	devices := make([]*hw.Device, ranks)
	for i := range devices {
		devices[i] = hw.NewDevice(cfg.Spec)
		devices[i].SetLabel(fmt.Sprintf("rank%d", i))
	}
	cfg.Devices = devices
	cfg.Fault = fault.NewFromScenario(seed, sc)
	// A short cool-down relative to the kernels lets the breaker cycle
	// open → half-open → closed within the run.
	cfg.Health = resilience.NewRegistry(resilience.Config{
		FailureThreshold: 3, CooldownSec: 5e-5, HalfOpenSuccesses: 2,
	})
	reg := telemetry.NewRegistry()
	cfg.Health.SetTelemetry(reg)
	cfg.Telemetry = reg

	// Alternate two pinned frequencies so nearly every submission goes
	// through the governor.
	freqs := cfg.Spec.CoreFreqsMHz
	plan := FreqPlan{}
	for i, k := range app.Kernels {
		plan[k.Name] = freqs[i%2]
	}
	cfg.Plan = plan

	res, err := Run(app, cfg)
	if err != nil {
		t.Fatalf("seeded run failed (pick a different seed): %v", err)
	}
	return &telemetryRun{reg: reg, res: res, inj: cfg.Fault, health: cfg.Health,
		devices: devices, cfg: cfg, app: app}
}

// TestTelemetryCrossValidation is the headline harness: every metric
// the registry reports must equal the same quantity derived from an
// independent source of truth — the device timelines, the run result,
// the breaker transition log and the fault-injection trace.
func TestTelemetryCrossValidation(t *testing.T) {
	t.Parallel()
	run := runWithTelemetry(t, 7)
	snap := run.reg.Snapshot()
	ranks := run.cfg.Nodes * run.cfg.GPUsPerNode

	// Kernel counter vs the hw.Device timelines (fresh devices, so the
	// lifetime count is the run's count) and the analytic expectation.
	var hwKernels int64
	for _, d := range run.devices {
		hwKernels += d.KernelCount()
	}
	wantKernels := int64(ranks * run.cfg.Steps * len(run.app.Kernels))
	if hwKernels != wantKernels {
		t.Errorf("device timelines executed %d kernels, want %d", hwKernels, wantKernels)
	}
	if got := snap.CounterTotal("synergy_kernels_total"); got != hwKernels {
		t.Errorf("synergy_kernels_total = %d, device timelines say %d", got, hwKernels)
	}
	for i, d := range run.devices {
		got := snap.CounterValue("synergy_kernels_total", "device", fmt.Sprintf("rank%d", i))
		if got != d.KernelCount() {
			t.Errorf("rank%d kernel counter = %d, device says %d", i, got, d.KernelCount())
		}
	}

	// Every executed kernel contributes exactly one queue-wait and one
	// duration observation.
	for _, name := range []string{"synergy_kernel_seconds", "synergy_queue_wait_seconds"} {
		h, err := snap.MergedHistogram(name)
		if err != nil {
			t.Fatal(err)
		}
		if int64(h.Count) != hwKernels {
			t.Errorf("%s count = %d, want %d (one per kernel)", name, h.Count, hwKernels)
		}
	}

	// Degradation counter vs the run's DegradationEvent log.
	if got, want := snap.CounterTotal("synergy_degradations_total"), int64(len(run.res.Degradations)); got != want {
		t.Errorf("synergy_degradations_total = %d, run recorded %d degradation events", got, want)
	}
	if len(run.res.Degradations) == 0 {
		t.Error("scenario produced no degradations; the invariant is vacuous")
	}

	// Breaker transition counter vs the resilience transition log.
	transitions := run.health.Transitions()
	if got, want := snap.CounterTotal("synergy_breaker_transitions_total"), int64(len(transitions)); got != want {
		t.Errorf("synergy_breaker_transitions_total = %d, transition log has %d entries", got, want)
	}
	if len(transitions) == 0 {
		t.Error("scenario tripped no breaker; the invariant is vacuous")
	}
	perState := map[string]int64{}
	for _, tr := range transitions {
		perState[tr.To.String()]++
	}
	perStateCounters := map[string]int64{}
	for _, c := range snap.Counters {
		if c.Name == "synergy_breaker_transitions_total" {
			for _, state := range []string{"closed", "open", "half-open"} {
				if bytes.Contains([]byte(c.Labels), []byte(`to="`+state+`"`)) {
					perStateCounters[state] += c.Value
				}
			}
		}
	}
	if !reflect.DeepEqual(perStateCounters, perState) {
		t.Errorf("per-state transition counters = %v, transition log says %v", perStateCounters, perState)
	}

	// Vendor-call counters vs the fault injector's call counts, and
	// fault counters vs the error-returning calls in its trace.
	faultyCalls := map[string]int64{} // site -> calls that returned an error
	seen := map[string]map[int64]bool{}
	for _, ev := range run.inj.Trace() {
		if ev.Err == "" {
			continue
		}
		if seen[ev.Site] == nil {
			seen[ev.Site] = map[int64]bool{}
		}
		if !seen[ev.Site][ev.Call] {
			seen[ev.Site][ev.Call] = true
			faultyCalls[ev.Site]++
		}
	}
	for i := range run.devices {
		device := fmt.Sprintf("rank%d", i)
		site := nvml.SiteSetAppClocks + ":" + device
		calls := snap.CounterValue("synergy_vendor_calls_total",
			"lib", "nvml", "call", "set_app_clocks", "device", device)
		if calls != run.inj.CallCount(site) {
			t.Errorf("%s: vendor call counter = %d, injector counted %d", device, calls, run.inj.CallCount(site))
		}
		faults := snap.CounterValue("synergy_vendor_faults_total",
			"lib", "nvml", "call", "set_app_clocks", "device", device)
		if faults != faultyCalls[site] {
			t.Errorf("%s: vendor fault counter = %d, trace has %d faulty calls", device, faults, faultyCalls[site])
		}
	}

	// The governor outcome identity: every sequence that reaches the
	// driver makes 1+retries attempts and ends in exactly one outcome.
	attempts := snap.CounterTotal("synergy_clock_set_attempts_total")
	retries := snap.CounterTotal("synergy_clock_set_retries_total")
	applied := snap.CounterTotal("synergy_clock_sets_applied_total")
	denied := snap.CounterTotal("synergy_clock_sets_denied_total")
	exhausted := snap.CounterTotal("synergy_clock_sets_exhausted_total")
	if attempts-retries != applied+denied+exhausted {
		t.Errorf("governor identity violated: attempts=%d retries=%d applied=%d denied=%d exhausted=%d",
			attempts, retries, applied, denied, exhausted)
	}
	if retries == 0 {
		t.Error("scenario produced no retries; the identity is vacuous")
	}

	// Applied clock sets vs the run accounting (each applied sequence is
	// one real frequency change on a device).
	if applied != run.res.ClockSets {
		t.Errorf("synergy_clock_sets_applied_total = %d, run counted %d clock sets", applied, run.res.ClockSets)
	}

	// MPI counters vs the communication structure: per step every field
	// crosses each of the ranks-1 interior boundaries twice (south
	// exchange + north exchange), a barrier per rank closes the run and
	// one allreduce per rank per step carries the diagnostics.
	haloFields := len(run.app.NewState(run.cfg.LocalNx, run.cfg.LocalNy).Halo)
	wantSends := int64(run.cfg.Steps * haloFields * 2 * (ranks - 1))
	if got := snap.CounterTotal("synergy_mpi_sends_total"); got != wantSends {
		t.Errorf("synergy_mpi_sends_total = %d, want %d", got, wantSends)
	}
	if got := snap.CounterTotal("synergy_mpi_barriers_total"); got != int64(ranks) {
		t.Errorf("synergy_mpi_barriers_total = %d, want %d", got, ranks)
	}
	if got := snap.CounterTotal("synergy_mpi_allreduces_total"); got != int64(ranks*run.cfg.Steps) {
		t.Errorf("synergy_mpi_allreduces_total = %d, want %d", got, ranks*run.cfg.Steps)
	}
	if got := snap.CounterTotal("synergy_mpi_deadlines_total"); got != 0 {
		t.Errorf("synergy_mpi_deadlines_total = %d on a healthy fabric", got)
	}

	// Span hierarchy: one job span, one rank span per rank, one kernel
	// span per executed kernel.
	kinds := map[string]int64{}
	for _, s := range snap.Spans {
		kinds[s.Kind]++
	}
	if kinds["job"] != 1 || kinds["rank"] != int64(ranks) || kinds["kernel"] != hwKernels {
		t.Errorf("span census %v, want job=1 rank=%d kernel=%d", kinds, ranks, hwKernels)
	}

	// Per-device gauges vs the run accounting.
	var gaugeEnergy float64
	for i := range run.devices {
		gaugeEnergy += snap.GaugeValue("synergy_device_energy_joules", "device", fmt.Sprintf("rank%d", i))
	}
	if diff := gaugeEnergy - run.res.EnergyJ; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("device energy gauges sum to %g, run says %g", gaugeEnergy, run.res.EnergyJ)
	}
}

// TestTelemetryDeterministicAcrossRuns runs the identical seeded
// scenario twice from scratch and requires byte-identical exposition
// output and span logs — the registry is part of the determinism
// contract, not an approximate observer.
func TestTelemetryDeterministicAcrossRuns(t *testing.T) {
	t.Parallel()
	render := func() (string, string) {
		run := runWithTelemetry(t, 7)
		var expo bytes.Buffer
		if err := run.reg.WriteText(&expo); err != nil {
			t.Fatal(err)
		}
		spans, err := json.Marshal(run.reg.Spans())
		if err != nil {
			t.Fatal(err)
		}
		return expo.String(), string(spans)
	}
	expo1, spans1 := render()
	expo2, spans2 := render()
	if expo1 != expo2 {
		t.Errorf("exposition differs between identical seeded runs:\n--- run 1\n%s\n--- run 2\n%s", expo1, expo2)
	}
	if spans1 != spans2 {
		t.Errorf("span logs differ between identical seeded runs:\n--- run 1\n%s\n--- run 2\n%s", spans1, spans2)
	}
	if len(expo1) == 0 {
		t.Error("empty exposition from an instrumented run")
	}
}
