package apps

import (
	"bytes"
	"encoding/json"
	"testing"

	"synergy/internal/kernelir"
	"synergy/internal/kernelir/compile"
)

// TestTelemetryIdenticalOnCompiledPath re-runs the telemetry
// cross-validation scenario once on the compiled executor and once on
// the interpreter and requires byte-identical exposition output and
// span logs: switching executors must be invisible to every observable
// the telemetry layer derives from a run. Not parallel — it swaps the
// process-wide Runner.
func TestTelemetryIdenticalOnCompiledPath(t *testing.T) {
	render := func(r kernelir.Runner) (string, string) {
		prev := kernelir.ActiveRunner()
		kernelir.SetRunner(r)
		defer kernelir.SetRunner(prev)
		run := runWithTelemetry(t, 7)
		var expo bytes.Buffer
		if err := run.reg.WriteText(&expo); err != nil {
			t.Fatal(err)
		}
		spans, err := json.Marshal(run.reg.Spans())
		if err != nil {
			t.Fatal(err)
		}
		return expo.String(), string(spans)
	}
	expoC, spansC := render(compile.Default())
	expoI, spansI := render(nil)
	if expoC != expoI {
		t.Errorf("exposition differs between compiled and interpreted runs:\n--- compiled\n%s\n--- interpreted\n%s", expoC, expoI)
	}
	if spansC != spansI {
		t.Errorf("span logs differ between compiled and interpreted runs:\n--- compiled\n%s\n--- interpreted\n%s", spansC, spansI)
	}
	if len(expoC) == 0 {
		t.Error("empty exposition from an instrumented run")
	}
}
