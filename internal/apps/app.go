// Package apps implements the two real-world applications of the
// multi-node evaluation (§8.4) as SYCL+MPI programs on the SYnergy API:
// a mini CloverLeaf (2-D compressible Euler hydrodynamics on a staggered
// grid) and a mini MiniWeather (2-D atmospheric flow). Both decompose
// the domain in one dimension across ranks, run a fixed kernel sequence
// per timestep, exchange halo rows with neighbours and reduce global
// diagnostics — the structure that makes Fig. 10's weak-scaling energy
// curves.
package apps

import (
	"context"
	"fmt"
	"sort"

	"synergy/internal/core"
	"synergy/internal/fault"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
	"synergy/internal/mpi"
	"synergy/internal/power"
	"synergy/internal/resilience"
	"synergy/internal/sycl"
	"synergy/internal/telemetry"
)

// State is the per-rank simulation state: argument bindings for each
// kernel plus the fields whose boundary rows are exchanged every step.
type State struct {
	Nx, Ny int
	// Args maps kernel name to its bindings.
	Args map[string]kernelir.Args
	// Halo lists the fields (length Nx*Ny) to exchange with the north
	// and south neighbours each step.
	Halo [][]float32
}

// App is one multi-node application.
type App struct {
	Name string
	// Kernels is the per-timestep sequence, in submission order.
	Kernels []*kernelir.Kernel
	// NewState allocates a rank-local state for an nx × ny grid.
	NewState func(nx, ny int) *State
}

// KernelByName returns one of the app's kernels.
func (a *App) KernelByName(name string) (*kernelir.Kernel, bool) {
	for _, k := range a.Kernels {
		if k.Name == name {
			return k, true
		}
	}
	return nil, false
}

// FreqPlan maps kernel names to pinned core frequencies in MHz; kernels
// absent from the plan run at the device default. A nil plan is the
// baseline configuration.
type FreqPlan map[string]int

// PlanFromAdvisor builds the fine-grained per-kernel plan of §6.2: one
// predicted frequency per kernel for the chosen energy target.
func PlanFromAdvisor(app *App, adv core.FrequencyAdvisor, items int, target metrics.Target) (FreqPlan, error) {
	plan := FreqPlan{}
	for _, k := range app.Kernels {
		f, err := adv.AdviseCoreFreq(k, items, target)
		if err != nil {
			return nil, fmt.Errorf("apps: planning %s for %s: %w", target, k.Name, err)
		}
		plan[k.Name] = f
	}
	return plan, nil
}

// RunConfig parameterises one multi-node run.
type RunConfig struct {
	Spec        *hw.Spec
	Nodes       int
	GPUsPerNode int
	// LocalNx, LocalNy is the per-rank grid (held constant for weak
	// scaling).
	LocalNx, LocalNy int
	Steps            int
	Plan             FreqPlan
	Net              mpi.NetworkModel
	// FunctionalCap bounds interpreted work-items per launch (0 = all);
	// timing/energy always account for the full grid.
	FunctionalCap int
	// StateRows bounds the allocated grid rows per rank (0 = LocalNy):
	// the virtual launch still covers LocalNx × LocalNy items, but host
	// memory and interpretation are limited to the first StateRows rows
	// — the memory-side counterpart of FunctionalCap for cluster-scale
	// virtual grids.
	StateRows int
	// Devices optionally supplies the GPUs to run on (one per rank, in
	// rank order) — this is how a SLURM allocation's GPUs are used. When
	// nil, fresh devices are created from Spec.
	Devices []*hw.Device
	// User runs the job as this (non-root) identity; frequency scaling
	// then requires the nvgpufreq privilege window. Empty means a
	// privileged (single-node research) session.
	User string
	// Profile enables per-kernel statistics collection (merged across
	// ranks into RunResult.Kernels).
	Profile bool
	// Fault optionally attaches a fault injector to the whole run: the
	// MPI fabric and every device (supplied or fresh) consult it. Jobs
	// running under SLURM instead inherit the cluster's injector through
	// the allocated devices.
	Fault *fault.Injector
	// Health optionally attaches the per-device circuit-breaker registry:
	// each rank's queue consults the breaker named after its device label
	// before spending clock-set retries, and runs at default clocks while
	// the device is unhealthy (recorded as a DegradationEvent).
	Health *resilience.Registry
	// Telemetry optionally attaches a telemetry registry to the whole
	// run: the MPI fabric and every device (supplied or fresh) record
	// into it, the job and each rank get hierarchical spans
	// (job → rank → kernel → queue-wait/clock-set/execute), and on
	// success per-device energy/time gauges are published. Jobs running
	// under SLURM instead inherit the cluster's registry through the
	// allocated devices (fabric counters and spans then need an explicit
	// Telemetry here).
	Telemetry *telemetry.Registry
}

func (c *RunConfig) validate() error {
	if c.Spec == nil {
		return fmt.Errorf("apps: config needs a device spec")
	}
	if c.Nodes <= 0 || c.GPUsPerNode <= 0 {
		return fmt.Errorf("apps: invalid cluster shape %dx%d", c.Nodes, c.GPUsPerNode)
	}
	if c.LocalNx < 4 || c.LocalNy < 4 {
		return fmt.Errorf("apps: local grid %dx%d too small", c.LocalNx, c.LocalNy)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("apps: need at least one step")
	}
	return nil
}

// RunResult is the outcome of one configuration — one point of Fig. 10.
type RunResult struct {
	App   string
	Ranks int
	Steps int
	// TimeSec is the application wall time (compute + communication; the
	// slowest rank).
	TimeSec float64
	// EnergyJ is the total GPU energy (the paper's energy metric counts
	// only the devices).
	EnergyJ float64
	// ClockSets counts application-clock changes across all GPUs (the
	// §4.4 overhead diagnostic).
	ClockSets int64
	// Kernels holds per-kernel statistics merged across ranks when
	// RunConfig.Profile is set (sorted by descending energy).
	Kernels []core.KernelStats
	// Degradations lists the submissions (across all ranks, in rank
	// order) that ran at current clocks because frequency control was
	// denied — the job completed, the energy saving was forfeited.
	Degradations []core.DegradationEvent
}

// Run executes the application on a simulated GPU cluster: one MPI rank
// per GPU, 1-D domain decomposition, per-kernel frequency scaling
// through the SYnergy queue.
func Run(app *App, cfg RunConfig) (*RunResult, error) {
	return RunContext(context.Background(), app, cfg)
}

// RunContext is Run with cancellation: the context propagates into the
// MPI fabric (blocked ranks unblock with the context error) and stops
// further timesteps from being scheduled on every rank.
func RunContext(ctx context.Context, app *App, cfg RunConfig) (*RunResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ranks := cfg.Nodes * cfg.GPUsPerNode
	world, err := mpi.NewWorld(ranks, cfg.GPUsPerNode, cfg.Net)
	if err != nil {
		return nil, err
	}

	devices := cfg.Devices
	if devices == nil {
		devices = make([]*hw.Device, ranks)
		for i := range devices {
			devices[i] = hw.NewDevice(cfg.Spec)
			devices[i].SetLabel(fmt.Sprintf("rank%d", i))
		}
	}
	if len(devices) != ranks {
		return nil, fmt.Errorf("apps: %d devices supplied for %d ranks", len(devices), ranks)
	}
	if cfg.Fault != nil {
		world.SetFaultInjector(cfg.Fault)
		for _, d := range devices {
			d.SetFaultInjector(cfg.Fault)
		}
	}
	tel := cfg.Telemetry
	if tel != nil {
		world.SetTelemetry(tel)
		for _, d := range devices {
			d.SetTelemetry(tel)
		}
	}
	// Synchronise all devices to a common job-start epoch (devices that
	// ran earlier jobs are ahead in virtual time; the others idle until
	// the job launches everywhere).
	epoch := 0.0
	for _, d := range devices {
		if t := d.Now(); t > epoch {
			epoch = t
		}
	}
	startE := make([]float64, ranks)
	startSets := make([]int64, ranks)
	for i, d := range devices {
		if dt := epoch - d.Now(); dt > 0 {
			d.AdvanceIdle(dt)
		}
		startE[i] = d.EnergyBetween(0, d.Now())
		startSets[i] = d.ClockSetCount()
	}
	times := make([]float64, ranks)
	profiles := make([][]core.KernelStats, ranks)
	degraded := make([][]core.DegradationEvent, ranks)
	items := cfg.LocalNx * cfg.LocalNy

	// The job span opens at the common epoch and closes at the slowest
	// rank's finish; each rank's span nests under it on the device-label
	// track, and kernel spans nest under the rank (see core.Queue). A
	// failed run leaves the spans un-ended, which drops them from the
	// canonical span output — exactly like the run's other results.
	var jobSpan *telemetry.SpanHandle
	if tel != nil {
		jobSpan = tel.StartSpan("job", app.Name, "job", epoch, nil)
	}

	err = world.RunContext(ctx, func(r *mpi.Rank) error {
		dev := devices[r.Rank()]
		var pm power.Manager
		var err error
		if cfg.User == "" {
			pm, err = power.NewPrivilegedManager(dev)
		} else {
			pm, err = power.NewManager(dev, cfg.User, false)
		}
		if err != nil {
			return err
		}
		label := dev.Label()
		if label == "" {
			label = fmt.Sprintf("rank%d", r.Rank())
		}
		// Device time may not start at zero when the scheduler hands us
		// a device that ran earlier jobs.
		r.AdvanceTo(dev.Now())
		q := core.NewQueue(sycl.WrapDevice(dev), pm)
		if cfg.Health != nil {
			q.SetBreaker(cfg.Health.Breaker(label))
		}
		var rankSpan *telemetry.SpanHandle
		if tel != nil {
			rankSpan = tel.StartSpan(label, fmt.Sprintf("rank %d", r.Rank()), "rank", r.Now(), jobSpan)
			q.SetSpanParent(rankSpan)
		}
		if cfg.Profile {
			q.EnableProfiling()
		}
		stateNy := cfg.LocalNy
		if cfg.StateRows > 0 && cfg.StateRows < stateNy {
			stateNy = cfg.StateRows
		}
		// Interpretation must stay within the allocated state.
		funcCap := cfg.FunctionalCap
		if stateNy < cfg.LocalNy {
			if limit := cfg.LocalNx * stateNy; funcCap == 0 || funcCap > limit {
				funcCap = limit
			}
		}
		if funcCap > 0 {
			q.SetFunctionalCap(funcCap)
		}
		st := app.NewState(cfg.LocalNx, stateNy)

		for step := 0; step < cfg.Steps; step++ {
			if err := r.Context().Err(); err != nil {
				return fmt.Errorf("apps: %s: rank %d canceled before step %d: %w", app.Name, r.Rank(), step, err)
			}
			for _, k := range app.Kernels {
				args, ok := st.Args[k.Name]
				if !ok {
					return fmt.Errorf("apps: %s: no bindings for kernel %s", app.Name, k.Name)
				}
				cg := func(h *sycl.Handler) { h.ParallelFor(items, k, args) }
				var ev *sycl.Event
				if f := cfg.Plan[k.Name]; f > 0 {
					ev, err = q.SubmitWithFreq(0, f, cg)
				} else {
					ev, err = q.Submit(cg)
				}
				if err != nil {
					return err
				}
				if err := ev.Wait(); err != nil {
					return err
				}
			}
			// The rank's clock follows the device through the step's
			// kernels...
			r.AdvanceTo(dev.Now())
			// ...then pays for the halo exchange...
			if err := exchangeHalos(r, st, step); err != nil {
				return err
			}
			// ...and a small global diagnostic reduction.
			diag := []float64{1, float64(step)}
			if err := r.AllreduceSum(diag); err != nil {
				return err
			}
			// The device idles while the host communicates.
			if gap := r.Now() - dev.Now(); gap > 0 {
				dev.AdvanceIdle(gap)
			}
		}
		if _, err := r.Barrier(); err != nil {
			return err
		}
		times[r.Rank()] = r.Now()
		rankSpan.End(r.Now())
		if cfg.Profile {
			profiles[r.Rank()] = q.Profile()
		}
		degraded[r.Rank()] = q.Degradations()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &RunResult{App: app.Name, Ranks: ranks, Steps: cfg.Steps}
	for i, d := range devices {
		if dt := times[i] - epoch; dt > res.TimeSec {
			res.TimeSec = dt
		}
		energy := d.EnergyBetween(0, d.Now()) - startE[i]
		res.EnergyJ += energy
		res.ClockSets += d.ClockSetCount() - startSets[i]
		if tel != nil {
			label := d.Label()
			if label == "" {
				label = fmt.Sprintf("rank%d", i)
			}
			tel.Gauge("synergy_device_energy_joules", "device", label).Set(energy)
			tel.Gauge("synergy_device_time_seconds", "device", label).Set(times[i] - epoch)
		}
	}
	jobSpan.End(epoch + res.TimeSec)
	if cfg.Profile {
		res.Kernels = mergeKernelStats(profiles)
	}
	for _, d := range degraded {
		res.Degradations = append(res.Degradations, d...)
	}
	return res, nil
}

// mergeKernelStats sums per-rank kernel statistics by kernel name.
func mergeKernelStats(profiles [][]core.KernelStats) []core.KernelStats {
	byName := map[string]*core.KernelStats{}
	var order []string
	for _, prof := range profiles {
		for _, s := range prof {
			agg, ok := byName[s.Name]
			if !ok {
				agg = &core.KernelStats{Name: s.Name, FreqLaunches: map[int]int{}}
				byName[s.Name] = agg
				order = append(order, s.Name)
			}
			agg.Launches += s.Launches
			agg.TimeSec += s.TimeSec
			agg.EnergyJ += s.EnergyJ
			for f, n := range s.FreqLaunches {
				agg.FreqLaunches[f] += n
			}
		}
	}
	out := make([]core.KernelStats, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EnergyJ != out[j].EnergyJ {
			return out[i].EnergyJ > out[j].EnergyJ
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// exchangeHalos swaps boundary rows with the 1-D neighbours: the last
// interior row goes south, the first interior row goes north; ghost rows
// (row 0 and row ny-1) receive.
func exchangeHalos(r *mpi.Rank, st *State, step int) error {
	nx, ny := st.Nx, st.Ny
	for fi, field := range st.Halo {
		// The tag identifies (step, field); the (from, to) pair already
		// disambiguates the two directions across one boundary.
		tag := step*len(st.Halo) + fi
		south := r.Rank() + 1
		north := r.Rank() - 1
		// Exchange with south neighbour.
		if south < r.Size() {
			send := field[(ny-2)*nx : (ny-1)*nx]
			recv := make([]float32, nx)
			if err := r.SendRecv(south, tag, send, recv); err != nil {
				return err
			}
			copy(field[(ny-1)*nx:], recv)
		}
		// Exchange with north neighbour.
		if north >= 0 {
			send := field[nx : 2*nx]
			recv := make([]float32, nx)
			if err := r.SendRecv(north, tag, send, recv); err != nil {
				return err
			}
			copy(field[:nx], recv)
		}
	}
	return nil
}
