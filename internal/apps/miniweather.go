package apps

import (
	"math"

	"synergy/internal/kernelir"
)

// Mini MiniWeather: 2-D dry compressible atmospheric flow with four
// state variables (density, x-momentum, z-momentum, potential
// temperature), finite-difference tendencies in x and z with
// hyperviscosity, and a forward-Euler state update — the kernel
// structure of Norman's miniWeather. The kernels are strongly
// bandwidth-bound (wide stencils over four fields with little
// arithmetic), which is why MiniWeather reaches the deepest energy
// savings (~30%) in the paper's Fig. 10b.

const (
	mwDt = 1e-4
	mwHv = 0.05 // hyperviscosity coefficient
)

// mwTendencies builds the tendency kernel along one axis: axis "x"
// (stride 1) or "z" (stride nx; adds buoyancy on the z-momentum).
func mwTendencies(axis string) *kernelir.Kernel {
	b := kernelir.NewBuilder("mw_tend_" + axis)
	dens := b.BufferF32("dens", kernelir.Read)
	umom := b.BufferF32("umom", kernelir.Read)
	wmom := b.BufferF32("wmom", kernelir.Read)
	temp := b.BufferF32("temp", kernelir.Read)
	var access kernelir.AccessMode = kernelir.Write
	if axis == "z" {
		access = kernelir.ReadWrite // z accumulates onto x tendencies
	}
	tDens := b.BufferF32("tdens", access)
	tUmom := b.BufferF32("tumom", access)
	tWmom := b.BufferF32("twmom", access)
	tTemp := b.BufferF32("ttemp", access)
	nx := b.ScalarI("nx")
	b.TrafficFactor(0.9)
	gid := b.GlobalID()
	var stride kernelir.IntReg
	if axis == "x" {
		stride = b.ConstI(1)
	} else {
		stride = b.CopyI(nx)
	}
	fwd := b.AddI(gid, stride)
	bwd := b.SubI(gid, stride)

	// Advection velocity from momentum/density.
	rho := b.MaxF(b.LoadF(dens, gid), b.ConstF(0.1))
	var vel kernelir.FloatReg
	if axis == "x" {
		vel = b.DivF(b.LoadF(umom, gid), rho)
	} else {
		vel = b.DivF(b.LoadF(wmom, gid), rho)
	}
	half := b.ConstF(0.5)
	hv := b.ConstF(mwHv)
	two := b.ConstF(2)

	tend := func(field kernelir.BufF32, dst kernelir.BufF32) kernelir.FloatReg {
		fp := b.LoadF(field, fwd)
		fc := b.LoadF(field, gid)
		fm := b.LoadF(field, bwd)
		adv := b.MulF(b.MulF(vel, half), b.SubF(fp, fm))
		diff := b.MulF(hv, b.SubF(b.AddF(fp, fm), b.MulF(two, fc)))
		t := b.SubF(diff, adv)
		if axis == "z" {
			prev := b.LoadF(dst, gid)
			t = b.AddF(prev, t)
		}
		return t
	}

	td := tend(dens, tDens)
	tu := tend(umom, tUmom)
	tw := tend(wmom, tWmom)
	tt := tend(temp, tTemp)
	if axis == "z" {
		// Buoyancy: vertical momentum forced by temperature anomaly.
		tw = b.AddF(tw, b.MulF(b.ConstF(0.01), b.SubF(b.LoadF(temp, gid), b.ConstF(1))))
	}
	b.StoreF(tDens, gid, td)
	b.StoreF(tUmom, gid, tu)
	b.StoreF(tWmom, gid, tw)
	b.StoreF(tTemp, gid, tt)
	return b.MustBuild()
}

func mwUpdate() *kernelir.Kernel {
	b := kernelir.NewBuilder("mw_update")
	dens := b.BufferF32("dens", kernelir.ReadWrite)
	umom := b.BufferF32("umom", kernelir.ReadWrite)
	wmom := b.BufferF32("wmom", kernelir.ReadWrite)
	temp := b.BufferF32("temp", kernelir.ReadWrite)
	tDens := b.BufferF32("tdens", kernelir.Read)
	tUmom := b.BufferF32("tumom", kernelir.Read)
	tWmom := b.BufferF32("twmom", kernelir.Read)
	tTemp := b.BufferF32("ttemp", kernelir.Read)
	b.TrafficFactor(1)
	gid := b.GlobalID()
	dt := b.ConstF(mwDt)
	step := func(f kernelir.BufF32, t kernelir.BufF32, floor float64) {
		v := b.AddF(b.LoadF(f, gid), b.MulF(dt, b.LoadF(t, gid)))
		if floor != 0 {
			v = b.MaxF(v, b.ConstF(floor))
		}
		b.StoreF(f, gid, v)
	}
	step(dens, tDens, 0.1)
	step(umom, tUmom, 0)
	step(wmom, tWmom, 0)
	step(temp, tTemp, 0.01)
	return b.MustBuild()
}

// NewMiniWeather assembles the application.
func NewMiniWeather() *App {
	kernels := []*kernelir.Kernel{
		mwTendencies("x"), mwTendencies("z"), mwUpdate(),
	}
	return &App{
		Name:    "miniweather",
		Kernels: kernels,
		NewState: func(nx, ny int) *State {
			n := nx * ny
			dens := make([]float32, n)
			umom := make([]float32, n)
			wmom := make([]float32, n)
			temp := make([]float32, n)
			tDens := make([]float32, n)
			tUmom := make([]float32, n)
			tWmom := make([]float32, n)
			tTemp := make([]float32, n)
			// Rising thermal: warm bubble in a stratified background.
			cx, cy := float64(nx)/2, float64(ny)/3
			r2 := float64(nx*nx) / 25
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					d := (float64(x)-cx)*(float64(x)-cx) + (float64(y)-cy)*(float64(y)-cy)
					bubble := math.Exp(-d / r2)
					dens[y*nx+x] = float32(1 - 0.0005*float64(y))
					temp[y*nx+x] = float32(1 + 0.5*bubble)
					umom[y*nx+x] = 0.1
				}
			}
			f32 := map[string][]float32{
				"dens": dens, "umom": umom, "wmom": wmom, "temp": temp,
				"tdens": tDens, "tumom": tUmom, "twmom": tWmom, "ttemp": tTemp,
			}
			args := kernelir.Args{F32: f32, ScalarI: map[string]int64{"nx": int64(nx)}}
			st := &State{
				Nx: nx, Ny: ny,
				Args: map[string]kernelir.Args{},
				Halo: [][]float32{dens, umom, wmom, temp},
			}
			for _, k := range kernels {
				st.Args[k.Name] = args
			}
			return st
		},
	}
}
