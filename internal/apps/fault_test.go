package apps

import (
	"reflect"
	"testing"

	"synergy/internal/fault"
	"synergy/internal/hw"
	"synergy/internal/mpi"
	"synergy/internal/nvml"
	"synergy/internal/power"
	"synergy/internal/slurm"
)

// TestCloverLeafCompletesWhenClockSetDenied is the end-to-end acceptance
// scenario: a CloverLeaf job on a SLURM cluster whose clock-set calls
// are denied by an injected fault must complete at default clocks with
// the forfeited savings recorded as degradation events — no panic, no
// leaked privileges.
func TestCloverLeafCompletesWhenClockSetDenied(t *testing.T) {
	t.Parallel()
	const gpus = 2
	node := slurm.NewNode("n0", hw.V100(), gpus, slurm.GresNVGpuFreq)
	c := slurm.NewCluster(node)
	c.RegisterPlugin(&slurm.NVGpuFreqPlugin{Controller: c})
	// The plugin's privilege window opens (set_api_restriction is not
	// faulted), but the driver then refuses every application-clock set —
	// the sticky denial the runtime must degrade around. The epilogue's
	// clock reset is a different site and stays healthy.
	c.SetFaultInjector(fault.New(17, fault.Rule{
		Site: nvml.SiteSetAppClocks, Err: nvml.ErrNotPermitted,
	}))

	app := NewCloverLeaf()
	low := hw.V100().MinCoreMHz()
	plan := FreqPlan{}
	for _, k := range app.Kernels {
		plan[k.Name] = low
	}

	var res *RunResult
	jobRes, err := c.Submit(&slurm.Job{
		Name: "cloverleaf", User: "alice", NumNodes: 1, Exclusive: true,
		Gres: map[slurm.GRES]bool{slurm.GresNVGpuFreq: true},
		Run: func(ctx *slurm.Allocation) error {
			cfg := smallCfg(1, gpus)
			cfg.Plan = plan
			cfg.Devices = ctx.GPUs()
			cfg.User = "alice"
			var rerr error
			res, rerr = Run(app, cfg)
			return rerr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if jobRes.Err != nil {
		t.Fatalf("job failed under denied clock control: %v", jobRes.Err)
	}
	if res == nil || res.TimeSec <= 0 || res.EnergyJ <= 0 {
		t.Fatalf("run produced no result: %+v", res)
	}
	// Every planned submission was denied and recorded.
	want := len(app.Kernels) * smallCfg(1, gpus).Steps * gpus
	if len(res.Degradations) != want {
		t.Fatalf("degradations = %d, want %d (every planned submission)", len(res.Degradations), want)
	}
	for _, d := range res.Degradations {
		if d.WantMHz != low || d.Kernel == "" || d.Reason == "" {
			t.Fatalf("malformed degradation event %+v", d)
		}
	}
	// The job ran at default clocks throughout: no clock set ever took.
	if res.ClockSets != 0 {
		t.Fatalf("clock sets = %d, want 0 under a denied driver", res.ClockSets)
	}
	for _, g := range node.GPUs {
		if g.AppClockMHz() != g.Spec().DefaultCoreMHz {
			t.Errorf("%s left at %d MHz, want default %d", g.Label(), g.AppClockMHz(), g.Spec().DefaultCoreMHz)
		}
		// Epilogue closed the privilege window despite the faulted driver.
		pm, err := power.NewManager(g, "bob", false)
		if err != nil {
			t.Fatal(err)
		}
		if err := pm.SetCoreFreq(g.Spec().MinCoreMHz()); err == nil {
			t.Errorf("%s: privilege leak after degraded job", g.Label())
		}
	}
}

// TestFaultScenarioTraceIsReproducible runs an identical seeded scenario
// twice through the full stack — MPI fabric, SYCL runtime, NVML
// telemetry — and requires bit-identical failure traces.
func TestFaultScenarioTraceIsReproducible(t *testing.T) {
	t.Parallel()
	sc, err := fault.ParseScenario("flaky-fabric", `
# jittery interconnect and slow submits; power telemetry drops samples
mpi.send     p=0.3 delay=1ms
sycl.submit  p=0.2 delay=0.5ms
nvml.power_sample p=0.2 err=nvml.timeout
`)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []fault.Event {
		in := fault.NewFromScenario(4242, sc)
		cfg := smallCfg(2, 1)
		cfg.Fault = in
		res, err := Run(NewCloverLeaf(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TimeSec <= 0 {
			t.Fatal("degenerate run")
		}
		return in.Trace()
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("scenario fired no faults — comparison is vacuous")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("identical seed diverged: %d vs %d events", len(first), len(second))
	}
	// And a different seed draws a different schedule.
	in := fault.NewFromScenario(4243, sc)
	cfg := smallCfg(2, 1)
	cfg.Fault = in
	if _, err := Run(NewCloverLeaf(), cfg); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first, in.Trace()) {
		t.Fatal("different seeds produced the identical trace")
	}
}

// TestFaultInjectedDelaysSlowTheRun: injected fabric latency must show
// up in the application wall time (virtual time accounting, not just
// error paths).
func TestFaultInjectedDelaysSlowTheRun(t *testing.T) {
	t.Parallel()
	base, err := Run(NewCloverLeaf(), smallCfg(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(2, 1)
	cfg.Fault = fault.New(9, fault.Rule{Site: mpi.SiteSend, DelaySec: 0.01})
	slow, err := Run(NewCloverLeaf(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.TimeSec <= base.TimeSec {
		t.Fatalf("injected send latency did not slow the run: %v vs %v", slow.TimeSec, base.TimeSec)
	}
}
