package apps

import (
	"testing"

	"synergy/internal/mpi"
)

// TestExchangeHalosMovesBoundaryRows verifies the halo protocol
// directly: each rank's ghost rows receive the neighbour's interior
// boundary rows, with rank-distinct data.
func TestExchangeHalosMovesBoundaryRows(t *testing.T) {
	const nx, ny = 6, 4
	world, err := mpi.NewWorld(3, 4, mpi.EDRFabric())
	if err != nil {
		t.Fatal(err)
	}
	fields := make([][]float32, 3)
	err = world.Run(func(r *mpi.Rank) error {
		field := make([]float32, nx*ny)
		for i := range field {
			// Encode (rank, row) in each value.
			field[i] = float32(100*r.Rank() + i/nx)
		}
		fields[r.Rank()] = field
		st := &State{Nx: nx, Ny: ny, Halo: [][]float32{field}}
		return exchangeHalos(r, st, 0)
	})
	if err != nil {
		t.Fatal(err)
	}

	for rank := 0; rank < 3; rank++ {
		field := fields[rank]
		// Ghost row 0 (north) holds the north neighbour's last interior
		// row (ny-2); rank 0 has no north neighbour.
		if rank > 0 {
			want := float32(100*(rank-1) + (ny - 2))
			for x := 0; x < nx; x++ {
				if field[x] != want {
					t.Fatalf("rank %d north ghost[%d] = %v, want %v", rank, x, field[x], want)
				}
			}
		} else {
			for x := 0; x < nx; x++ {
				if field[x] != float32(0) {
					t.Fatalf("rank 0 north ghost modified: %v", field[x])
				}
			}
		}
		// Ghost row ny-1 (south) holds the south neighbour's first
		// interior row (row 1); the last rank has no south neighbour.
		if rank < 2 {
			want := float32(100*(rank+1) + 1)
			for x := 0; x < nx; x++ {
				if field[(ny-1)*nx+x] != want {
					t.Fatalf("rank %d south ghost[%d] = %v, want %v", rank, x, field[(ny-1)*nx+x], want)
				}
			}
		} else {
			want := float32(100*rank + ny - 1)
			for x := 0; x < nx; x++ {
				if field[(ny-1)*nx+x] != want {
					t.Fatalf("rank 2 south ghost modified: %v", field[(ny-1)*nx+x])
				}
			}
		}
		// Interior rows are untouched.
		for y := 1; y < ny-1; y++ {
			for x := 0; x < nx; x++ {
				if field[y*nx+x] != float32(100*rank+y) {
					t.Fatalf("rank %d interior [%d,%d] modified", rank, y, x)
				}
			}
		}
	}
}

// TestExchangeHalosMultipleFieldsAndSteps checks tag disambiguation
// across fields and steps (wrong tags would cross-deliver messages).
func TestExchangeHalosMultipleFieldsAndSteps(t *testing.T) {
	const nx, ny = 4, 3
	world, err := mpi.NewWorld(2, 4, mpi.EDRFabric())
	if err != nil {
		t.Fatal(err)
	}
	results := make([][][]float32, 2)
	err = world.Run(func(r *mpi.Rank) error {
		a := make([]float32, nx*ny)
		b := make([]float32, nx*ny)
		for i := range a {
			a[i] = float32(1000*r.Rank() + i)
			b[i] = float32(-1000*r.Rank() - i)
		}
		st := &State{Nx: nx, Ny: ny, Halo: [][]float32{a, b}}
		for step := 0; step < 3; step++ {
			if err := exchangeHalos(r, st, step); err != nil {
				return err
			}
		}
		results[r.Rank()] = [][]float32{a, b}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0's south ghost of field a must come from rank 1's field a
	// (row 1), not field b.
	a0 := results[0][0]
	if got, want := a0[(ny-1)*nx], float32(1000+nx); got != want {
		t.Fatalf("field a cross-delivered: ghost = %v, want %v", got, want)
	}
	b0 := results[0][1]
	if got, want := b0[(ny-1)*nx], float32(-1000-nx); got != want {
		t.Fatalf("field b cross-delivered: ghost = %v, want %v", got, want)
	}
}
