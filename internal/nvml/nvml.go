// Package nvml simulates the NVIDIA Management Library surface that the
// SYnergy runtime and the SLURM nvgpufreq plugin depend on: device
// enumeration, supported-clock queries, application clocks, power and
// energy readings with the ~15 ms sampling granularity of real boards,
// and the per-API permission model (nvmlDeviceSetAPIRestriction) that
// the paper's privilege-raising scheme (§7) is built on.
package nvml

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"synergy/internal/fault"
	"synergy/internal/hw"
)

// SamplingPeriodSec is the power-telemetry sampling period. Burtscher et
// al. (cited by the paper in §4.4) measured ~15 ms intervals on data
// center boards.
const SamplingPeriodSec = 0.015

// Common NVML-style errors.
var (
	ErrUninitialized  = errors.New("nvml: library not initialized")
	ErrInvalidArg     = errors.New("nvml: invalid argument")
	ErrNoPermission   = errors.New("nvml: insufficient permissions")
	ErrNotSupported   = errors.New("nvml: operation not supported on this device")
	ErrAlreadyInitial = errors.New("nvml: already initialized")
	// ErrTimeout is the driver failing to complete a call in time — the
	// transient failure mode clock-set calls exhibit under load.
	ErrTimeout = errors.New("nvml: operation timed out")
)

// ErrNotPermitted is the NVML_ERROR_NOT_PERMITTED alias for the
// insufficient-permissions sentinel (same errors.Is identity).
var ErrNotPermitted = ErrNoPermission

// Fault-injection sites exposed by this package (qualified per device by
// the hw.Device label, or "gpu<i>" when unlabelled).
const (
	SiteSetAppClocks      = "nvml.set_app_clocks"
	SiteResetAppClocks    = "nvml.reset_app_clocks"
	SiteSetAPIRestriction = "nvml.set_api_restriction"
	SitePowerSample       = "nvml.power_sample"
)

func init() {
	fault.RegisterError("nvml.not_permitted", ErrNoPermission)
	fault.RegisterError("nvml.timeout", ErrTimeout)
}

// RestrictedAPI identifies an API class whose permission requirements can
// be toggled per device (nvmlDeviceSetAPIRestriction).
type RestrictedAPI int

const (
	// APISetApplicationClocks guards application-clock changes.
	APISetApplicationClocks RestrictedAPI = iota
	// APISetAutoBoostedClocks guards auto-boost control.
	APISetAutoBoostedClocks
)

// ClockType selects which clock a query refers to.
type ClockType int

const (
	// ClockGraphics is the SM core clock.
	ClockGraphics ClockType = iota
	// ClockMem is the HBM memory clock.
	ClockMem
)

// User identifies the caller of a state-changing API. On a production
// system state-changing NVML calls are restricted to root unless the
// restriction has been lifted for the device.
type User struct {
	Name string
	Root bool
}

// Root is the superuser identity used by the SLURM plugin hooks.
var Root = User{Name: "root", Root: true}

// Library is a simulated NVML instance bound to a set of virtual NVIDIA
// devices. It is safe for concurrent use. API-restriction state is
// driver state: it lives on the device and is visible to every library
// session (which is why a job scheduler must clean it up, §7.1).
type Library struct {
	mu      sync.Mutex
	devices []*hw.Device
	inited  bool
}

// flagName maps a restrictable API to its persistent driver flag. The
// flag stores "unrestricted" so that the zero value (never set) is the
// production default: restricted.
func flagName(api RestrictedAPI) string {
	switch api {
	case APISetApplicationClocks:
		return "nvml.unrestricted.appclocks"
	case APISetAutoBoostedClocks:
		return "nvml.unrestricted.autoboost"
	default:
		return fmt.Sprintf("nvml.unrestricted.api%d", int(api))
	}
}

// New creates a library managing the given devices. Every device must be
// an NVIDIA device.
func New(devices ...*hw.Device) (*Library, error) {
	for _, d := range devices {
		if d.Spec().Vendor != hw.NVIDIA {
			return nil, fmt.Errorf("nvml: device %s is not an NVIDIA device", d.Spec().Name)
		}
	}
	return &Library{devices: devices}, nil
}

// Init initialises the library (nvmlInit).
func (l *Library) Init() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inited {
		return ErrAlreadyInitial
	}
	l.inited = true
	return nil
}

// Shutdown tears the library down (nvmlShutdown).
func (l *Library) Shutdown() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.inited {
		return ErrUninitialized
	}
	l.inited = false
	return nil
}

// DeviceGetCount returns the number of managed devices.
func (l *Library) DeviceGetCount() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.inited {
		return 0, ErrUninitialized
	}
	return len(l.devices), nil
}

// Device is a handle to one board (nvmlDevice_t).
type Device struct {
	lib *Library
	idx int
}

// DeviceGetHandleByIndex returns a handle for device i.
func (l *Library) DeviceGetHandleByIndex(i int) (*Device, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.inited {
		return nil, ErrUninitialized
	}
	if i < 0 || i >= len(l.devices) {
		return nil, fmt.Errorf("%w: device index %d out of range", ErrInvalidArg, i)
	}
	return &Device{lib: l, idx: i}, nil
}

func (d *Device) hw() *hw.Device { return d.lib.devices[d.idx] }

// site qualifies an injection site with the device identity. Injected
// latency is virtual driver-call latency: it stalls the device timeline
// exactly like the documented clock-set overhead does.
func (d *Device) site(base string) string {
	label := d.hw().Label()
	if label == "" {
		label = fmt.Sprintf("gpu%d", d.idx)
	}
	return base + ":" + label
}

// checkFault consults the device's fault injector at the site, applying
// injected latency to the device timeline before returning any injected
// error. Each consultation is one vendor driver call: with telemetry
// attached it increments synergy_vendor_calls_total (and
// synergy_vendor_faults_total on an injected error), so the call counter
// equals the injector's CallCount for the site — a cross-validation
// invariant.
func (d *Device) checkFault(base string) error {
	site := d.site(base)
	delay, err := d.hw().FaultInjector().Check(site)
	if tel := d.hw().Telemetry(); tel != nil {
		call := strings.TrimPrefix(base, "nvml.")
		device := site[strings.LastIndexByte(site, ':')+1:]
		tel.Counter("synergy_vendor_calls_total", "lib", "nvml", "call", call, "device", device).Inc()
		if err != nil {
			tel.Counter("synergy_vendor_faults_total", "lib", "nvml", "call", call, "device", device).Inc()
		}
	}
	if delay > 0 {
		d.hw().AdvanceIdle(delay)
	}
	return err
}

func (d *Device) checkInit() error {
	d.lib.mu.Lock()
	defer d.lib.mu.Unlock()
	if !d.lib.inited {
		return ErrUninitialized
	}
	return nil
}

// GetName returns the marketing name of the board.
func (d *Device) GetName() (string, error) {
	if err := d.checkInit(); err != nil {
		return "", err
	}
	return d.hw().Spec().Name, nil
}

// GetSupportedMemoryClocks lists the supported memory clocks. HBM boards
// expose exactly one.
func (d *Device) GetSupportedMemoryClocks() ([]int, error) {
	if err := d.checkInit(); err != nil {
		return nil, err
	}
	return []int{d.hw().Spec().MemFreqMHz}, nil
}

// GetSupportedGraphicsClocks lists the core clocks available at the given
// memory clock.
func (d *Device) GetSupportedGraphicsClocks(memMHz int) ([]int, error) {
	if err := d.checkInit(); err != nil {
		return nil, err
	}
	spec := d.hw().Spec()
	if memMHz != spec.MemFreqMHz {
		return nil, fmt.Errorf("%w: memory clock %d MHz not supported", ErrInvalidArg, memMHz)
	}
	out := make([]int, len(spec.CoreFreqsMHz))
	copy(out, spec.CoreFreqsMHz)
	return out, nil
}

// GetApplicationsClock returns the current application clock target.
func (d *Device) GetApplicationsClock(ct ClockType) (int, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	switch ct {
	case ClockGraphics:
		mhz := d.hw().AppClockMHz()
		if mhz == 0 {
			mhz = d.hw().Spec().BaselineCoreMHz()
		}
		return mhz, nil
	case ClockMem:
		return d.hw().Spec().MemFreqMHz, nil
	default:
		return 0, fmt.Errorf("%w: unknown clock type %d", ErrInvalidArg, int(ct))
	}
}

// apiAllowed reports whether user may invoke the given restricted API on
// this device.
func (d *Device) apiAllowed(u User, api RestrictedAPI) bool {
	if u.Root {
		return true
	}
	return d.hw().DriverFlag(flagName(api))
}

// SetApplicationsClocks pins the application clocks
// (nvmlDeviceSetApplicationsClocks). The memory clock must match the
// board's fixed HBM clock; the core clock must appear in the supported
// table. Callers need root unless the API restriction has been lifted.
func (d *Device) SetApplicationsClocks(u User, memMHz, coreMHz int) error {
	if err := d.checkInit(); err != nil {
		return err
	}
	if err := d.checkFault(SiteSetAppClocks); err != nil {
		return fmt.Errorf("setting application clocks: %w", err)
	}
	if !d.apiAllowed(u, APISetApplicationClocks) {
		return fmt.Errorf("%w: user %q may not set application clocks", ErrNoPermission, u.Name)
	}
	spec := d.hw().Spec()
	if memMHz != spec.MemFreqMHz {
		return fmt.Errorf("%w: memory clock %d MHz (board supports only %d)", ErrInvalidArg, memMHz, spec.MemFreqMHz)
	}
	if !spec.SupportsCoreFreq(coreMHz) {
		return fmt.Errorf("%w: core clock %d MHz not in supported table", ErrInvalidArg, coreMHz)
	}
	return d.hw().SetAppClock(coreMHz)
}

// ResetApplicationsClocks restores the driver-default application clocks.
func (d *Device) ResetApplicationsClocks(u User) error {
	if err := d.checkInit(); err != nil {
		return err
	}
	if err := d.checkFault(SiteResetAppClocks); err != nil {
		return fmt.Errorf("resetting application clocks: %w", err)
	}
	if !d.apiAllowed(u, APISetApplicationClocks) {
		return fmt.Errorf("%w: user %q may not reset application clocks", ErrNoPermission, u.Name)
	}
	d.hw().ResetAppClock()
	return nil
}

// SetAPIRestriction toggles whether non-root users may invoke the given
// API on this device (nvmlDeviceSetAPIRestriction). Root only — this is
// the call the paper's SLURM plugin uses to temporarily lower privilege
// requirements for exclusive jobs (§7.1).
func (d *Device) SetAPIRestriction(u User, api RestrictedAPI, restricted bool) error {
	if err := d.checkInit(); err != nil {
		return err
	}
	if err := d.checkFault(SiteSetAPIRestriction); err != nil {
		return fmt.Errorf("setting API restriction: %w", err)
	}
	if !u.Root {
		return fmt.Errorf("%w: only root may change API restrictions", ErrNoPermission)
	}
	d.hw().SetDriverFlag(flagName(api), !restricted)
	return nil
}

// GetAPIRestriction reports whether the API is currently restricted.
func (d *Device) GetAPIRestriction(api RestrictedAPI) (bool, error) {
	if err := d.checkInit(); err != nil {
		return false, err
	}
	return !d.hw().DriverFlag(flagName(api)), nil
}

// SetPowerManagementLimit sets the board power cap in milliwatts
// (nvmlDeviceSetPowerManagementLimit). Root only on production systems;
// 0 restores the default limit.
func (d *Device) SetPowerManagementLimit(u User, mw int) error {
	if err := d.checkInit(); err != nil {
		return err
	}
	if !u.Root {
		return fmt.Errorf("%w: only root may change the power limit", ErrNoPermission)
	}
	if mw < 0 {
		return fmt.Errorf("%w: negative power limit", ErrInvalidArg)
	}
	if err := d.hw().SetPowerLimit(float64(mw) / 1000); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidArg, err)
	}
	return nil
}

// GetPowerManagementLimit returns the active power cap in milliwatts.
func (d *Device) GetPowerManagementLimit() (int, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	return int(d.hw().PowerLimit() * 1000), nil
}

// GetPowerUsage returns the board power draw in milliwatts, as of the
// last telemetry sample tick (power reads are asynchronous and quantised
// to the sampling grid, §2.1).
func (d *Device) GetPowerUsage() (int, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	if err := d.checkFault(SitePowerSample); err != nil {
		return 0, fmt.Errorf("reading power sample: %w", err)
	}
	dev := d.hw()
	now := dev.Now()
	tick := float64(int64(now/SamplingPeriodSec)) * SamplingPeriodSec
	return int(dev.PowerAt(tick) * 1000), nil
}

// GetTotalEnergyConsumption returns the total energy counter in
// millijoules since library initialisation, integrated on the sampling
// grid (so short events are resolved poorly, as on real hardware).
func (d *Device) GetTotalEnergyConsumption() (int64, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	dev := d.hw()
	return int64(dev.SampledEnergyBetween(0, dev.Now(), SamplingPeriodSec) * 1000), nil
}

// SampledEnergyBetween integrates the sampled power trace over a virtual
// time window — the quantity an asynchronous polling thread accumulates
// while a kernel runs (the fine-grained profiling mechanism of §4.2).
func (d *Device) SampledEnergyBetween(t0, t1 float64) (float64, error) {
	if err := d.checkInit(); err != nil {
		return 0, err
	}
	return d.hw().SampledEnergyBetween(t0, t1, SamplingPeriodSec), nil
}
