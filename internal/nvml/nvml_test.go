package nvml

import (
	"errors"
	"math"
	"testing"

	"synergy/internal/hw"
)

func newLib(t *testing.T) (*Library, *hw.Device) {
	t.Helper()
	dev := hw.NewDevice(hw.V100())
	lib, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Init(); err != nil {
		t.Fatal(err)
	}
	return lib, dev
}

func TestNewRejectsAMDDevices(t *testing.T) {
	t.Parallel()
	if _, err := New(hw.NewDevice(hw.MI100())); err == nil {
		t.Fatal("AMD device accepted by NVML")
	}
}

func TestInitShutdownLifecycle(t *testing.T) {
	t.Parallel()
	dev := hw.NewDevice(hw.V100())
	lib, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.DeviceGetCount(); !errors.Is(err, ErrUninitialized) {
		t.Fatalf("pre-init call: got %v, want ErrUninitialized", err)
	}
	if err := lib.Init(); err != nil {
		t.Fatal(err)
	}
	if err := lib.Init(); !errors.Is(err, ErrAlreadyInitial) {
		t.Fatalf("double init: got %v", err)
	}
	n, err := lib.DeviceGetCount()
	if err != nil || n != 1 {
		t.Fatalf("count = %d, %v", n, err)
	}
	if err := lib.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := lib.Shutdown(); !errors.Is(err, ErrUninitialized) {
		t.Fatalf("double shutdown: got %v", err)
	}
}

func TestDeviceGetHandleByIndexBounds(t *testing.T) {
	t.Parallel()
	lib, _ := newLib(t)
	if _, err := lib.DeviceGetHandleByIndex(1); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("out-of-range index: got %v", err)
	}
	if _, err := lib.DeviceGetHandleByIndex(-1); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("negative index: got %v", err)
	}
}

func TestSupportedClocks(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceGetHandleByIndex(0)
	mems, err := h.GetSupportedMemoryClocks()
	if err != nil || len(mems) != 1 || mems[0] != 877 {
		t.Fatalf("memory clocks = %v, %v", mems, err)
	}
	cores, err := h.GetSupportedGraphicsClocks(877)
	if err != nil || len(cores) != len(dev.Spec().CoreFreqsMHz) {
		t.Fatalf("graphics clocks: %d entries, %v", len(cores), err)
	}
	if _, err := h.GetSupportedGraphicsClocks(1000); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("wrong mem clock: got %v", err)
	}
}

func TestApplicationClocksRequirePermission(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceGetHandleByIndex(0)
	user := User{Name: "alice"}

	// Restricted by default: regular users are refused.
	err := h.SetApplicationsClocks(user, 877, dev.Spec().MinCoreMHz())
	if !errors.Is(err, ErrNoPermission) {
		t.Fatalf("unprivileged set: got %v, want ErrNoPermission", err)
	}

	// Root can always set.
	if err := h.SetApplicationsClocks(Root, 877, dev.Spec().MinCoreMHz()); err != nil {
		t.Fatal(err)
	}
	if dev.AppClockMHz() != dev.Spec().MinCoreMHz() {
		t.Fatalf("clock not applied: %d", dev.AppClockMHz())
	}

	// Root lifts the restriction; now the user can set.
	if err := h.SetAPIRestriction(Root, APISetApplicationClocks, false); err != nil {
		t.Fatal(err)
	}
	if err := h.SetApplicationsClocks(user, 877, dev.Spec().MaxCoreMHz()); err != nil {
		t.Fatalf("user set after restriction lifted: %v", err)
	}

	// Only root may toggle restrictions.
	if err := h.SetAPIRestriction(user, APISetApplicationClocks, true); !errors.Is(err, ErrNoPermission) {
		t.Fatalf("user toggled restriction: %v", err)
	}
}

func TestSetApplicationsClocksValidation(t *testing.T) {
	t.Parallel()
	lib, _ := newLib(t)
	h, _ := lib.DeviceGetHandleByIndex(0)
	if err := h.SetApplicationsClocks(Root, 900, 1312); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("wrong memory clock: got %v", err)
	}
	if err := h.SetApplicationsClocks(Root, 877, 1311); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("unsupported core clock: got %v", err)
	}
}

func TestResetApplicationsClocks(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceGetHandleByIndex(0)
	if err := h.SetApplicationsClocks(Root, 877, dev.Spec().MinCoreMHz()); err != nil {
		t.Fatal(err)
	}
	if err := h.ResetApplicationsClocks(Root); err != nil {
		t.Fatal(err)
	}
	if dev.AppClockMHz() != dev.Spec().DefaultCoreMHz {
		t.Fatalf("reset left %d, want default %d", dev.AppClockMHz(), dev.Spec().DefaultCoreMHz)
	}
}

func TestGetApplicationsClock(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceGetHandleByIndex(0)
	core, err := h.GetApplicationsClock(ClockGraphics)
	if err != nil || core != dev.Spec().DefaultCoreMHz {
		t.Fatalf("graphics clock = %d, %v", core, err)
	}
	mem, err := h.GetApplicationsClock(ClockMem)
	if err != nil || mem != 877 {
		t.Fatalf("mem clock = %d, %v", mem, err)
	}
	if _, err := h.GetApplicationsClock(ClockType(99)); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("bad clock type: %v", err)
	}
}

func TestPowerUsageReflectsDeviceState(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceGetHandleByIndex(0)
	mw, err := h.GetPowerUsage()
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(mw) / 1000; math.Abs(got-dev.Spec().IdlePowerW) > 0.5 {
		t.Fatalf("idle power %v W, want %v", got, dev.Spec().IdlePowerW)
	}
}

func TestTotalEnergyGrowsWithTime(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceGetHandleByIndex(0)
	dev.AdvanceIdle(1.0)
	e1, err := h.GetTotalEnergyConsumption()
	if err != nil {
		t.Fatal(err)
	}
	dev.AdvanceIdle(1.0)
	e2, err := h.GetTotalEnergyConsumption()
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e1 {
		t.Fatalf("energy counter did not grow: %d -> %d", e1, e2)
	}
	// ~1 s of idle power in mJ.
	want := dev.Spec().IdlePowerW * 1000
	if diff := math.Abs(float64(e2-e1) - want); diff > 0.05*want {
		t.Fatalf("energy delta %d mJ, want ~%.0f", e2-e1, want)
	}
}

func TestGetNameAfterShutdownFails(t *testing.T) {
	t.Parallel()
	lib, _ := newLib(t)
	h, _ := lib.DeviceGetHandleByIndex(0)
	if err := lib.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.GetName(); !errors.Is(err, ErrUninitialized) {
		t.Fatalf("post-shutdown call: got %v", err)
	}
}

func TestGetAPIRestrictionDefault(t *testing.T) {
	t.Parallel()
	lib, _ := newLib(t)
	h, _ := lib.DeviceGetHandleByIndex(0)
	r, err := h.GetAPIRestriction(APISetApplicationClocks)
	if err != nil || !r {
		t.Fatalf("default restriction = %v, %v; want true (production default)", r, err)
	}
}

func TestPowerManagementLimit(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceGetHandleByIndex(0)
	if err := h.SetPowerManagementLimit(User{Name: "u"}, 200000); !errors.Is(err, ErrNoPermission) {
		t.Fatalf("unprivileged power limit: %v", err)
	}
	if err := h.SetPowerManagementLimit(Root, 200000); err != nil {
		t.Fatal(err)
	}
	mw, err := h.GetPowerManagementLimit()
	if err != nil || mw != 200000 {
		t.Fatalf("limit = %d mW, %v; want 200000", mw, err)
	}
	if err := h.SetPowerManagementLimit(Root, 999000); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("limit above TDP: %v", err)
	}
	if err := h.SetPowerManagementLimit(Root, 0); err != nil {
		t.Fatal(err)
	}
	if got := dev.PowerLimit(); got != dev.Spec().TDPWatts {
		t.Fatalf("reset limit = %v, want TDP", got)
	}
}
