package benchsuite

import (
	"testing"

	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/metrics"
)

func TestSuiteHas23Benchmarks(t *testing.T) {
	bs := All()
	if len(bs) != 23 {
		t.Fatalf("suite has %d benchmarks, want 23 (paper §8.1)", len(bs))
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Kernel == nil || b.NewInstance == nil || b.CharItems <= 0 {
			t.Fatalf("benchmark %q incompletely defined", b.Name)
		}
	}
	// The benchmarks the paper's figures single out must be present.
	for _, name := range []string{"matmul", "sobel3", "median", "lin_reg_coeff", "black_scholes"} {
		if !seen[name] {
			t.Errorf("figure benchmark %q missing from suite", name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("black_scholes")
	if err != nil || b.Name != "black_scholes" {
		t.Fatalf("ByName: %v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark found")
	}
}

// TestAllBenchmarksExecuteAndVerify is the suite's master correctness
// test: every kernel runs through the interpreter and its outputs match
// the straight-Go reference.
func TestAllBenchmarksExecuteAndVerify(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := b.NewInstance(1 << 10)
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.Run(b.Kernel); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllKernelsValidate(t *testing.T) {
	for _, b := range All() {
		if err := b.Kernel.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestAllKernelsHaveNonTrivialFeatures(t *testing.T) {
	for _, b := range All() {
		v, err := features.Extract(b.Kernel)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if v.GlAccess == 0 {
			t.Errorf("%s: no global accesses", b.Name)
		}
		if v.Total() < 2 {
			t.Errorf("%s: feature total %v suspiciously small", b.Name, v.Total())
		}
	}
}

// arithmeticIntensity returns weighted ops per DRAM byte on the V100
// model, the quantity that drives each benchmark's energy character.
func arithmeticIntensity(t *testing.T, name string) float64 {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := features.KernelWorkload(b.Kernel, b.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	if w.GlobalBytes == 0 {
		return 1e9
	}
	return w.TotalOps() / w.GlobalBytes
}

func TestSuiteSpansComputeAndMemoryBound(t *testing.T) {
	// The suite must cover both ends of the roofline, or the per-kernel
	// characterisations of Figs. 2/7/8 would all look alike.
	compute := []string{"lin_reg_coeff", "mandelbrot", "nbody", "arith"}
	memory := []string{"vec_add", "reduction", "mvt", "gesummv", "matmul"}
	for _, name := range compute {
		if ai := arithmeticIntensity(t, name); ai < 6 {
			t.Errorf("%s: arithmetic intensity %.1f ops/B, expected compute-bound (>6)", name, ai)
		}
	}
	for _, name := range memory {
		if ai := arithmeticIntensity(t, name); ai > 4 {
			t.Errorf("%s: arithmetic intensity %.1f ops/B, expected memory-bound (<4)", name, ai)
		}
	}
}

// sweep runs a ground-truth frequency sweep on the V100 model.
func sweep(t *testing.T, name string) *metrics.Sweep {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	spec := hw.V100()
	w, err := features.KernelWorkload(b.Kernel, b.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := spec.Sweep(w)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]metrics.Point, len(ms))
	for i, m := range ms {
		pts[i] = metrics.Point{FreqMHz: spec.CoreFreqsMHz[i], TimeSec: m.TimeSec, EnergyJ: m.EnergyJ}
	}
	s, err := metrics.NewSweep(pts, spec.DefaultCoreMHz)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFig2Characters pins the paper's Fig. 2 contrast on the V100:
// lin_reg has little energy headroom; median saves over 20%.
func TestFig2Characters(t *testing.T) {
	lin := sweep(t, "lin_reg_coeff")
	med := sweep(t, "median")

	linMin, _ := lin.Select(metrics.MinEnergy)
	linSaving := 1 - linMin.EnergyJ/lin.BaselinePoint().EnergyJ
	if linSaving > 0.13 {
		t.Errorf("lin_reg_coeff max saving %.1f%%, Fig. 2a shape wants <~10%%", 100*linSaving)
	}

	medMin, _ := med.Select(metrics.MinEnergy)
	medSaving := 1 - medMin.EnergyJ/med.BaselinePoint().EnergyJ
	if medSaving < 0.18 {
		t.Errorf("median max saving %.1f%%, Fig. 2b shape wants >20%%", 100*medSaving)
	}
	medLoss := medMin.TimeSec/med.BaselinePoint().TimeSec - 1
	if medLoss > 0.5 {
		t.Errorf("median perf loss at min energy %.1f%%, expected moderate", 100*medLoss)
	}
}

// TestFig7MatmulVsSobel pins the Fig. 7 contrast: matmul speedup barely
// moves across its Pareto front; sobel3's varies widely.
func TestFig7MatmulVsSobel(t *testing.T) {
	span := func(name string) (float64, float64) {
		s := sweep(t, name)
		front := s.ParetoFront()
		base := s.BaselinePoint()
		lo, hi := 1e30, -1e30
		for _, p := range front {
			sp := base.TimeSec / p.TimeSec
			if sp < lo {
				lo = sp
			}
			if sp > hi {
				hi = sp
			}
		}
		return lo, hi
	}
	mmLo, mmHi := span("matmul")
	sbLo, sbHi := span("sobel3")
	if mmHi-mmLo > 0.35 {
		t.Errorf("matmul Pareto speedup span [%.2f, %.2f] too wide (paper: 0.95–1.01)", mmLo, mmHi)
	}
	if sbHi-sbLo < 0.25 {
		t.Errorf("sobel3 Pareto speedup span [%.2f, %.2f] too narrow (paper: 0.73–1.15)", sbLo, sbHi)
	}
	if sbHi < 1.05 {
		t.Errorf("sobel3 max speedup %.2f; raising clocks above default should help (paper: 1.15)", sbHi)
	}
	// Matmul: large savings at small loss (paper: 33% / 5%).
	mm := sweep(t, "matmul")
	best, _ := mm.Select(metrics.ES(75))
	saving := 1 - best.EnergyJ/mm.BaselinePoint().EnergyJ
	loss := best.TimeSec/mm.BaselinePoint().TimeSec - 1
	if saving < 0.15 || loss > 0.15 {
		t.Errorf("matmul ES_75: saving %.1f%%, loss %.1f%%; want deep saving at small loss", 100*saving, 100*loss)
	}
}

func TestInstancesAreDeterministic(t *testing.T) {
	b, err := ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	i1, err := b.NewInstance(256)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := b.NewInstance(256)
	if err != nil {
		t.Fatal(err)
	}
	a1 := i1.Args.F32["a"]
	a2 := i2.Args.F32["a"]
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("instance data not deterministic")
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	b, err := ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := b.NewInstance(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(b.Kernel); err != nil {
		t.Fatal(err)
	}
	inst.Args.F32["c"][7] += 1
	if err := inst.Verify(); err == nil {
		t.Fatal("verifier accepted corrupted output")
	}
}
