package benchsuite

import (
	"math"

	"synergy/internal/kernelir"
)

// Compute-bound benchmarks: high arithmetic intensity per byte of DRAM
// traffic, so their execution time tracks the core frequency closely and
// their energy headroom is small (the lin_reg shape of Fig. 2a).

// linRegCoeff trains per-item linear-regression coefficients with 128
// SGD steps on one (x, y) sample — all register arithmetic.
func linRegCoeff() *Benchmark {
	const steps = 128
	const lr = 0.05
	b := kernelir.NewBuilder("lin_reg_coeff")
	xB := b.BufferF32("x", kernelir.Read)
	yB := b.BufferF32("y", kernelir.Read)
	wB := b.BufferF32("wout", kernelir.Write)
	b.TrafficFactor(1)
	gid := b.GlobalID()
	x := b.LoadF(xB, gid)
	y := b.LoadF(yB, gid)
	w := b.CopyF(b.ConstF(0.5))
	bias := b.CopyF(b.ConstF(0))
	lrC := b.ConstF(lr)
	b.Repeat(steps, func() {
		pred := b.AddF(b.MulF(w, x), bias)
		err := b.SubF(pred, y)
		g := b.MulF(lrC, err)
		b.MoveF(w, b.SubF(w, b.MulF(g, x)))
		b.MoveF(bias, b.SubF(bias, g))
	})
	b.StoreF(wB, gid, w)
	k := b.MustBuild()

	return &Benchmark{
		Name:      "lin_reg_coeff",
		Kernel:    k,
		CharItems: 1 << 24,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(301)
			xv := make([]float32, n)
			yv := make([]float32, n)
			wv := make([]float32, n)
			for i := range xv {
				xv[i] = r.f32(0.5, 1.5)
				yv[i] = float32(2*float64(xv[i]) + 1 + float64(r.f32(-0.05, 0.05)))
			}
			return &Instance{
				Items: n,
				Args:  kernelir.Args{F32: map[string][]float32{"x": xv, "y": yv, "wout": wv}},
				Verify: func() error {
					want := make([]float32, n)
					for i := 0; i < n; i++ {
						x, y := float64(xv[i]), float64(yv[i])
						w, bias := 0.5, 0.0
						for s := 0; s < steps; s++ {
							g := lr * (w*x + bias - y)
							w -= g * x
							bias -= g
						}
						want[i] = float32(w)
					}
					return verifyF32("lin_reg_coeff", wv, want)
				},
			}, nil
		},
	}
}

// linRegError evaluates the squared error of a linear model over a
// 16-sample chunk per work-item (streaming, memory-leaning).
func linRegError() *Benchmark {
	const chunk = 16
	b := kernelir.NewBuilder("lin_reg_error")
	xB := b.BufferF32("x", kernelir.Read)
	yB := b.BufferF32("y", kernelir.Read)
	eB := b.BufferF32("e", kernelir.Write)
	w := b.ScalarF("w")
	bias := b.ScalarF("b")
	b.TrafficFactor(1)
	gid := b.GlobalID()
	one := b.ConstI(1)
	idx := b.MulI(gid, b.ConstI(chunk))
	acc := b.ConstF(0)
	b.Repeat(chunk, func() {
		x := b.LoadF(xB, idx)
		y := b.LoadF(yB, idx)
		err := b.SubF(b.AddF(b.MulF(w, x), bias), y)
		b.MoveF(acc, b.AddF(acc, b.MulF(err, err)))
		b.MoveI(idx, b.AddI(idx, one))
	})
	b.StoreF(eB, gid, acc)
	k := b.MustBuild()

	return &Benchmark{
		Name:      "lin_reg_error",
		Kernel:    k,
		CharItems: 1 << 23,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(302)
			xv := make([]float32, n*chunk)
			yv := make([]float32, n*chunk)
			ev := make([]float32, n)
			r.fill(xv, -1, 1)
			r.fill(yv, -1, 1)
			const wV, bV = 1.7, -0.3
			return &Instance{
				Items: n,
				Args: kernelir.Args{
					F32:     map[string][]float32{"x": xv, "y": yv, "e": ev},
					ScalarF: map[string]float64{"w": wV, "b": bV},
				},
				Verify: func() error {
					want := make([]float32, n)
					for i := 0; i < n; i++ {
						acc := 0.0
						for j := 0; j < chunk; j++ {
							err := wV*float64(xv[i*chunk+j]) + bV - float64(yv[i*chunk+j])
							acc += err * err
						}
						want[i] = float32(acc)
					}
					return verifyF32("lin_reg_error", ev, want)
				},
			}, nil
		},
	}
}

// kmeans assigns 2-D points to the nearest of 8 centroids.
func kmeans() *Benchmark {
	const kClusters = 8
	b := kernelir.NewBuilder("kmeans")
	pB := b.BufferF32("points", kernelir.Read)
	cB := b.BufferF32("centers", kernelir.Read)
	aB := b.BufferI32("assign", kernelir.Write)
	b.TrafficFactor(0.15)
	gid := b.GlobalID()
	two := b.ConstI(2)
	base := b.MulI(gid, two)
	px := b.LoadF(pB, base)
	py := b.LoadF(pB, b.AddI(base, b.ConstI(1)))
	best := b.CopyF(b.ConstF(1e30))
	bestIdx := b.CopyI(b.ConstI(0))
	for c := 0; c < kClusters; c++ {
		cx := b.LoadF(cB, b.ConstI(int64(2*c)))
		cy := b.LoadF(cB, b.ConstI(int64(2*c+1)))
		dx := b.SubF(px, cx)
		dy := b.SubF(py, cy)
		d := b.AddF(b.MulF(dx, dx), b.MulF(dy, dy))
		cond := b.CmpLTF(d, best)
		b.MoveF(best, b.SelF(cond, d, best))
		b.MoveI(bestIdx, b.SelI(cond, b.ConstI(int64(c)), bestIdx))
	}
	b.StoreI(aB, gid, bestIdx)
	k := b.MustBuild()

	return &Benchmark{
		Name:      "kmeans",
		Kernel:    k,
		CharItems: 1 << 24,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(303)
			pv := make([]float32, 2*n)
			cv := make([]float32, 2*kClusters)
			av := make([]int32, n)
			r.fill(pv, -5, 5)
			r.fill(cv, -5, 5)
			return &Instance{
				Items: n,
				Args: kernelir.Args{
					F32: map[string][]float32{"points": pv, "centers": cv},
					I32: map[string][]int32{"assign": av},
				},
				Verify: func() error {
					want := make([]int32, n)
					for i := 0; i < n; i++ {
						px, py := float64(pv[2*i]), float64(pv[2*i+1])
						best, bestIdx := 1e30, int32(0)
						for c := 0; c < kClusters; c++ {
							dx := px - float64(cv[2*c])
							dy := py - float64(cv[2*c+1])
							if d := dx*dx + dy*dy; d < best {
								best, bestIdx = d, int32(c)
							}
						}
						want[i] = bestIdx
					}
					return verifyI32("kmeans", av, want)
				},
			}, nil
		},
	}
}

// molDyn accumulates Lennard-Jones-style forces from 32 consecutive
// neighbours per particle.
func molDyn() *Benchmark {
	const neighbors = 32
	b := kernelir.NewBuilder("mol_dyn")
	pB := b.BufferF32("pos", kernelir.Read)
	fxB := b.BufferF32("fx", kernelir.Write)
	fyB := b.BufferF32("fy", kernelir.Write)
	b.TrafficFactor(0.3)
	gid := b.GlobalID()
	one := b.ConstI(1)
	two := b.ConstI(2)
	base := b.MulI(gid, two)
	px := b.LoadF(pB, base)
	py := b.LoadF(pB, b.AddI(base, one))
	j := b.AddI(gid, one)
	fx := b.CopyF(b.ConstF(0))
	fy := b.CopyF(b.ConstF(0))
	eps := b.ConstF(0.01)
	half := b.ConstF(0.5)
	b.Repeat(neighbors, func() {
		jb := b.MulI(j, two)
		qx := b.LoadF(pB, jb)
		qy := b.LoadF(pB, b.AddI(jb, one))
		dx := b.SubF(px, qx)
		dy := b.SubF(py, qy)
		r2 := b.AddF(b.AddF(b.MulF(dx, dx), b.MulF(dy, dy)), eps)
		inv := b.DivF(b.ConstF(1), r2)
		inv3 := b.MulF(b.MulF(inv, inv), inv)
		f := b.MulF(inv3, b.SubF(inv3, half))
		b.MoveF(fx, b.AddF(fx, b.MulF(f, dx)))
		b.MoveF(fy, b.AddF(fy, b.MulF(f, dy)))
		b.MoveI(j, b.AddI(j, one))
	})
	b.StoreF(fxB, gid, fx)
	b.StoreF(fyB, gid, fy)
	k := b.MustBuild()

	return &Benchmark{
		Name:      "mol_dyn",
		Kernel:    k,
		CharItems: 1 << 23,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(304)
			pv := make([]float32, 2*n)
			fxv := make([]float32, n)
			fyv := make([]float32, n)
			r.fill(pv, -3, 3)
			return &Instance{
				Items: n,
				Args: kernelir.Args{
					F32: map[string][]float32{"pos": pv, "fx": fxv, "fy": fyv},
				},
				Verify: func() error {
					wantX := make([]float32, n)
					wantY := make([]float32, n)
					for i := 0; i < n; i++ {
						px, py := float64(pv[2*i]), float64(pv[2*i+1])
						fx, fy := 0.0, 0.0
						for d := 1; d <= neighbors; d++ {
							jb := clamp(2*(i+d), 2*n)
							jb2 := clamp(2*(i+d)+1, 2*n)
							dx := px - float64(pv[jb])
							dy := py - float64(pv[jb2])
							r2 := dx*dx + dy*dy + 0.01
							inv := 1 / r2
							inv3 := inv * inv * inv
							f := inv3 * (inv3 - 0.5)
							fx += f * dx
							fy += f * dy
						}
						wantX[i] = float32(fx)
						wantY[i] = float32(fy)
					}
					if err := verifyF32("mol_dyn.fx", fxv, wantX); err != nil {
						return err
					}
					return verifyF32("mol_dyn.fy", fyv, wantY)
				},
			}, nil
		},
	}
}

// nbody accumulates softened gravitational acceleration from the first
// 64 bodies (a broadcast pattern every work-item shares).
func nbody() *Benchmark {
	const bodies = 64
	b := kernelir.NewBuilder("nbody")
	pB := b.BufferF32("pos", kernelir.Read)
	axB := b.BufferF32("ax", kernelir.Write)
	ayB := b.BufferF32("ay", kernelir.Write)
	b.TrafficFactor(0.05)
	gid := b.GlobalID()
	one := b.ConstI(1)
	two := b.ConstI(2)
	base := b.MulI(gid, two)
	px := b.LoadF(pB, base)
	py := b.LoadF(pB, b.AddI(base, one))
	j := b.CopyI(b.ConstI(0))
	ax := b.CopyF(b.ConstF(0))
	ay := b.CopyF(b.ConstF(0))
	eps := b.ConstF(0.05)
	b.Repeat(bodies, func() {
		jb := b.MulI(j, two)
		qx := b.LoadF(pB, jb)
		qy := b.LoadF(pB, b.AddI(jb, one))
		dx := b.SubF(qx, px)
		dy := b.SubF(qy, py)
		r2 := b.AddF(b.AddF(b.MulF(dx, dx), b.MulF(dy, dy)), eps)
		r := b.SqrtF(r2)
		inv3 := b.DivF(b.ConstF(1), b.MulF(r2, r))
		b.MoveF(ax, b.AddF(ax, b.MulF(dx, inv3)))
		b.MoveF(ay, b.AddF(ay, b.MulF(dy, inv3)))
		b.MoveI(j, b.AddI(j, one))
	})
	b.StoreF(axB, gid, ax)
	b.StoreF(ayB, gid, ay)
	k := b.MustBuild()

	return &Benchmark{
		Name:      "nbody",
		Kernel:    k,
		CharItems: 1 << 23,
		NewInstance: func(n int) (*Instance, error) {
			if n < bodies {
				n = bodies
			}
			r := newPrng(305)
			pv := make([]float32, 2*n)
			axv := make([]float32, n)
			ayv := make([]float32, n)
			r.fill(pv, -2, 2)
			return &Instance{
				Items: n,
				Args: kernelir.Args{
					F32: map[string][]float32{"pos": pv, "ax": axv, "ay": ayv},
				},
				Verify: func() error {
					wantX := make([]float32, n)
					wantY := make([]float32, n)
					for i := 0; i < n; i++ {
						px, py := float64(pv[2*i]), float64(pv[2*i+1])
						ax, ay := 0.0, 0.0
						for j := 0; j < bodies; j++ {
							dx := float64(pv[2*j]) - px
							dy := float64(pv[2*j+1]) - py
							r2 := dx*dx + dy*dy + 0.05
							r := math.Sqrt(r2)
							inv3 := 1 / (r2 * r)
							ax += dx * inv3
							ay += dy * inv3
						}
						wantX[i] = float32(ax)
						wantY[i] = float32(ay)
					}
					if err := verifyF32("nbody.ax", axv, wantX); err != nil {
						return err
					}
					return verifyF32("nbody.ay", ayv, wantY)
				},
			}, nil
		},
	}
}

// blackScholes prices European call and put options (the Fig. 4/5
// subject: special-function heavy with moderate memory traffic).
func blackScholes() *Benchmark {
	const (
		rate  = 0.05
		sigma = 0.2
	)
	c1 := rate + 0.5*sigma*sigma
	invSqrt2 := 1 / math.Sqrt2

	b := kernelir.NewBuilder("black_scholes")
	sB := b.BufferF32("S", kernelir.Read)
	kB := b.BufferF32("K", kernelir.Read)
	tB := b.BufferF32("T", kernelir.Read)
	callB := b.BufferF32("call", kernelir.Write)
	putB := b.BufferF32("put", kernelir.Write)
	b.TrafficFactor(1)
	gid := b.GlobalID()
	s := b.LoadF(sB, gid)
	kk := b.LoadF(kB, gid)
	t := b.LoadF(tB, gid)
	sqT := b.SqrtF(t)
	sigSqT := b.MulF(b.ConstF(sigma), sqT)
	d1 := b.DivF(b.AddF(b.LogF(b.DivF(s, kk)), b.MulF(b.ConstF(c1), t)), sigSqT)
	d2 := b.SubF(d1, sigSqT)
	half := b.ConstF(0.5)
	oneF := b.ConstF(1)
	n1 := b.MulF(half, b.AddF(oneF, b.ErfF(b.MulF(d1, b.ConstF(invSqrt2)))))
	n2 := b.MulF(half, b.AddF(oneF, b.ErfF(b.MulF(d2, b.ConstF(invSqrt2)))))
	disc := b.ExpF(b.MulF(b.ConstF(-rate), t))
	kd := b.MulF(kk, disc)
	call := b.SubF(b.MulF(s, n1), b.MulF(kd, n2))
	put := b.SubF(b.MulF(kd, b.SubF(oneF, n2)), b.MulF(s, b.SubF(oneF, n1)))
	b.StoreF(callB, gid, call)
	b.StoreF(putB, gid, put)
	k := b.MustBuild()

	return &Benchmark{
		Name:      "black_scholes",
		Kernel:    k,
		CharItems: 1 << 24,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(306)
			sv := make([]float32, n)
			kv := make([]float32, n)
			tv := make([]float32, n)
			cv := make([]float32, n)
			pv := make([]float32, n)
			r.fill(sv, 10, 100)
			r.fill(kv, 10, 100)
			r.fill(tv, 0.25, 2)
			return &Instance{
				Items: n,
				Args: kernelir.Args{
					F32: map[string][]float32{"S": sv, "K": kv, "T": tv, "call": cv, "put": pv},
				},
				Verify: func() error {
					wantC := make([]float32, n)
					wantP := make([]float32, n)
					for i := 0; i < n; i++ {
						s, kk, t := float64(sv[i]), float64(kv[i]), float64(tv[i])
						sqT := math.Sqrt(t)
						sigSqT := sigma * sqT
						d1 := (math.Log(s/kk) + c1*t) / sigSqT
						d2 := d1 - sigSqT
						n1 := 0.5 * (1 + math.Erf(d1*invSqrt2))
						n2 := 0.5 * (1 + math.Erf(d2*invSqrt2))
						disc := math.Exp(-rate * t)
						kd := kk * disc
						wantC[i] = float32(s*n1 - kd*n2)
						wantP[i] = float32(kd*(1-n2) - s*(1-n1))
					}
					if err := verifyF32("black_scholes.call", cv, wantC); err != nil {
						return err
					}
					return verifyF32("black_scholes.put", pv, wantP)
				},
			}, nil
		},
	}
}

// mandelbrot iterates the clamped quadratic map for 48 steps per pixel.
func mandelbrot() *Benchmark {
	const iters = 48
	b := kernelir.NewBuilder("mandelbrot")
	out := b.BufferF32("out", kernelir.Write)
	wReg := b.ScalarI("w")
	fw := b.ScalarF("fw")
	fh := b.ScalarF("fh")
	b.TrafficFactor(1)
	gid := b.GlobalID()
	row := b.DivI(gid, wReg)
	col := b.RemI(gid, wReg)
	cx := b.AddF(b.ConstF(-2), b.MulF(b.ConstF(3), b.DivF(b.IntToFloat(col), fw)))
	cy := b.AddF(b.ConstF(-1.5), b.MulF(b.ConstF(3), b.DivF(b.IntToFloat(row), fh)))
	x := b.CopyF(b.ConstF(0))
	y := b.CopyF(b.ConstF(0))
	lo := b.ConstF(-2)
	hi := b.ConstF(2)
	b.Repeat(iters, func() {
		xx := b.MulF(x, x)
		yy := b.MulF(y, y)
		xy := b.MulF(x, y)
		nx := b.AddF(b.SubF(xx, yy), cx)
		ny := b.AddF(b.AddF(xy, xy), cy)
		b.MoveF(x, b.MaxF(lo, b.MinF(nx, hi)))
		b.MoveF(y, b.MaxF(lo, b.MinF(ny, hi)))
	})
	b.StoreF(out, gid, x)
	k := b.MustBuild()

	return &Benchmark{
		Name:      "mandelbrot",
		Kernel:    k,
		CharItems: 1 << 24,
		NewInstance: func(n int) (*Instance, error) {
			w := int(math.Sqrt(float64(n)))
			if w < 4 {
				w = 4
			}
			items := w * w
			ov := make([]float32, items)
			return &Instance{
				Items: items,
				Args: kernelir.Args{
					F32:     map[string][]float32{"out": ov},
					ScalarI: map[string]int64{"w": int64(w)},
					ScalarF: map[string]float64{"fw": float64(w), "fh": float64(w)},
				},
				Verify: func() error {
					want := make([]float32, items)
					for g := 0; g < items; g++ {
						row, col := g/w, g%w
						cx := -2 + 3*(float64(col)/float64(w))
						cy := -1.5 + 3*(float64(row)/float64(w))
						x, y := 0.0, 0.0
						for it := 0; it < iters; it++ {
							xx, yy, xy := x*x, y*y, x*y
							nx := xx - yy + cx
							ny := xy + xy + cy
							x = math.Max(-2, math.Min(nx, 2))
							y = math.Max(-2, math.Min(ny, 2))
						}
						want[g] = float32(x)
					}
					return verifyF32("mandelbrot", ov, want)
				},
			}, nil
		},
	}
}

// correlation computes per-chunk Pearson correlation of two series.
func correlation() *Benchmark {
	const chunk = 32
	b := kernelir.NewBuilder("correlation")
	xB := b.BufferF32("x", kernelir.Read)
	yB := b.BufferF32("y", kernelir.Read)
	oB := b.BufferF32("out", kernelir.Write)
	b.TrafficFactor(0.8)
	gid := b.GlobalID()
	one := b.ConstI(1)
	idx := b.MulI(gid, b.ConstI(chunk))
	sx := b.CopyF(b.ConstF(0))
	sy := b.CopyF(b.ConstF(0))
	sxx := b.CopyF(b.ConstF(0))
	syy := b.CopyF(b.ConstF(0))
	sxy := b.CopyF(b.ConstF(0))
	b.Repeat(chunk, func() {
		x := b.LoadF(xB, idx)
		y := b.LoadF(yB, idx)
		b.MoveF(sx, b.AddF(sx, x))
		b.MoveF(sy, b.AddF(sy, y))
		b.MoveF(sxx, b.AddF(sxx, b.MulF(x, x)))
		b.MoveF(syy, b.AddF(syy, b.MulF(y, y)))
		b.MoveF(sxy, b.AddF(sxy, b.MulF(x, y)))
		b.MoveI(idx, b.AddI(idx, one))
	})
	nF := b.ConstF(chunk)
	num := b.SubF(b.MulF(nF, sxy), b.MulF(sx, sy))
	vx := b.SubF(b.MulF(nF, sxx), b.MulF(sx, sx))
	vy := b.SubF(b.MulF(nF, syy), b.MulF(sy, sy))
	den := b.AddF(b.MulF(b.SqrtF(vx), b.SqrtF(vy)), b.ConstF(1e-9))
	b.StoreF(oB, gid, b.DivF(num, den))
	k := b.MustBuild()

	return &Benchmark{
		Name:      "correlation",
		Kernel:    k,
		CharItems: 1 << 22,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(307)
			xv := make([]float32, n*chunk)
			yv := make([]float32, n*chunk)
			ov := make([]float32, n)
			r.fill(xv, -1, 1)
			for i := range yv {
				yv[i] = float32(0.7*float64(xv[i]) + float64(r.f32(-0.3, 0.3)))
			}
			return &Instance{
				Items: n,
				Args:  kernelir.Args{F32: map[string][]float32{"x": xv, "y": yv, "out": ov}},
				Verify: func() error {
					want := make([]float32, n)
					for i := 0; i < n; i++ {
						var sx, sy, sxx, syy, sxy float64
						for j := 0; j < chunk; j++ {
							x := float64(xv[i*chunk+j])
							y := float64(yv[i*chunk+j])
							sx += x
							sy += y
							sxx += x * x
							syy += y * y
							sxy += x * y
						}
						num := chunk*sxy - sx*sy
						vx := chunk*sxx - sx*sx
						vy := chunk*syy - sy*sy
						want[i] = float32(num / (math.Sqrt(vx)*math.Sqrt(vy) + 1e-9))
					}
					return verifyF32("correlation", ov, want)
				},
			}, nil
		},
	}
}

// arith is the pure ALU microbenchmark of the suite: long dependent
// chains of mixed integer and float operations.
func arith() *Benchmark {
	const iters = 256
	b := kernelir.NewBuilder("arith")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	b.TrafficFactor(1)
	gid := b.GlobalID()
	x := b.LoadF(in, gid)
	xr := b.CopyF(x)
	iv := b.CopyI(gid)
	fc := b.ConstF(1.0001)
	fa := b.ConstF(0.0001)
	ic1 := b.ConstI(12345)
	ic3 := b.ConstI(3)
	ic7 := b.ConstI(7)
	b.Repeat(iters, func() {
		b.MoveF(xr, b.AddF(b.MulF(xr, fc), fa))
		b.MoveI(iv, b.AddI(b.MulI(b.XorI(iv, ic1), ic3), ic7))
	})
	mask := b.AndI(iv, b.ConstI(1023))
	b.StoreF(out, gid, b.AddF(xr, b.MulF(b.IntToFloat(mask), b.ConstF(1e-6))))
	k := b.MustBuild()

	return &Benchmark{
		Name:      "arith",
		Kernel:    k,
		CharItems: 1 << 24,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(308)
			iv := make([]float32, n)
			ov := make([]float32, n)
			r.fill(iv, 0, 1)
			return &Instance{
				Items: n,
				Args:  kernelir.Args{F32: map[string][]float32{"in": iv, "out": ov}},
				Verify: func() error {
					want := make([]float32, n)
					for g := 0; g < n; g++ {
						x := float64(iv[g])
						v := int64(g)
						for it := 0; it < iters; it++ {
							x = x*1.0001 + 0.0001
							v = (v^12345)*3 + 7
						}
						want[g] = float32(x + float64(v&1023)*1e-6)
					}
					return verifyF32("arith", ov, want)
				},
			}, nil
		},
	}
}
