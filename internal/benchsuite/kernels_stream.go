package benchsuite

import (
	"math"

	"synergy/internal/kernelir"
)

// Streaming and BLAS-style benchmarks: bandwidth-dominated kernels whose
// Pareto fronts are flat in speedup and deep in energy savings (the
// matmul/median shape of Figs. 2b, 7a and 8a).

func vecAdd() *Benchmark {
	b := kernelir.NewBuilder("vec_add")
	a := b.BufferF32("a", kernelir.Read)
	bb := b.BufferF32("b", kernelir.Read)
	c := b.BufferF32("c", kernelir.Write)
	b.TrafficFactor(1)
	gid := b.GlobalID()
	b.StoreF(c, gid, b.AddF(b.LoadF(a, gid), b.LoadF(bb, gid)))
	k := b.MustBuild()

	return &Benchmark{
		Name:      "vec_add",
		Kernel:    k,
		CharItems: 1 << 26,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(101)
			av := make([]float32, n)
			bv := make([]float32, n)
			cv := make([]float32, n)
			r.fill(av, -1, 1)
			r.fill(bv, -1, 1)
			return &Instance{
				Items: n,
				Args:  kernelir.Args{F32: map[string][]float32{"a": av, "b": bv, "c": cv}},
				Verify: func() error {
					want := make([]float32, n)
					for i := range want {
						want[i] = float32(float64(av[i]) + float64(bv[i]))
					}
					return verifyF32("vec_add", cv, want)
				},
			}, nil
		},
	}
}

func scalarProd() *Benchmark {
	const chunk = 8
	b := kernelir.NewBuilder("scalar_prod")
	a := b.BufferF32("a", kernelir.Read)
	bb := b.BufferF32("b", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	b.TrafficFactor(1)
	gid := b.GlobalID()
	one := b.ConstI(1)
	idx := b.MulI(gid, b.ConstI(chunk))
	acc := b.ConstF(0)
	b.Repeat(chunk, func() {
		prod := b.MulF(b.LoadF(a, idx), b.LoadF(bb, idx))
		b.MoveF(acc, b.AddF(acc, prod))
		b.MoveI(idx, b.AddI(idx, one))
	})
	b.StoreF(out, gid, acc)
	k := b.MustBuild()

	return &Benchmark{
		Name:      "scalar_prod",
		Kernel:    k,
		CharItems: 1 << 23,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(102)
			av := make([]float32, n*chunk)
			bv := make([]float32, n*chunk)
			ov := make([]float32, n)
			r.fill(av, -1, 1)
			r.fill(bv, -1, 1)
			return &Instance{
				Items: n,
				Args:  kernelir.Args{F32: map[string][]float32{"a": av, "b": bv, "out": ov}},
				Verify: func() error {
					want := make([]float32, n)
					for i := 0; i < n; i++ {
						acc := 0.0
						for j := 0; j < chunk; j++ {
							acc += float64(av[i*chunk+j]) * float64(bv[i*chunk+j])
						}
						want[i] = float32(acc)
					}
					return verifyF32("scalar_prod", ov, want)
				},
			}, nil
		},
	}
}

// matMul is a naive N×64 · 64×N matrix multiplication: untiled, so the
// strided B accesses keep it bandwidth-dominated (the paper's matmul
// saves ~33% energy with ~5% performance loss on the V100, Fig. 7a).
func matMul() *Benchmark {
	const kdim = 64
	b := kernelir.NewBuilder("matmul")
	aB := b.BufferF32("A", kernelir.Read)
	bB := b.BufferF32("B", kernelir.Read)
	cB := b.BufferF32("C", kernelir.Write)
	nReg := b.ScalarI("n")
	b.TrafficFactor(0.6)
	gid := b.GlobalID()
	one := b.ConstI(1)
	row := b.DivI(gid, nReg)
	col := b.RemI(gid, nReg)
	aIdx := b.MulI(row, b.ConstI(kdim))
	bIdx := b.CopyI(col)
	acc := b.ConstF(0)
	b.Repeat(kdim, func() {
		prod := b.MulF(b.LoadF(aB, aIdx), b.LoadF(bB, bIdx))
		b.MoveF(acc, b.AddF(acc, prod))
		b.MoveI(aIdx, b.AddI(aIdx, one))
		b.MoveI(bIdx, b.AddI(bIdx, nReg))
	})
	b.StoreF(cB, gid, acc)
	k := b.MustBuild()

	return &Benchmark{
		Name:      "matmul",
		Kernel:    k,
		CharItems: 1 << 24, // 4096 × 4096 output elements
		NewInstance: func(n int) (*Instance, error) {
			side := int(math.Sqrt(float64(n)))
			if side < 4 {
				side = 4
			}
			items := side * side
			r := newPrng(103)
			av := make([]float32, side*kdim)
			bv := make([]float32, kdim*side)
			cv := make([]float32, items)
			r.fill(av, -1, 1)
			r.fill(bv, -1, 1)
			return &Instance{
				Items: items,
				Args: kernelir.Args{
					F32:     map[string][]float32{"A": av, "B": bv, "C": cv},
					ScalarI: map[string]int64{"n": int64(side)},
				},
				Verify: func() error {
					want := make([]float32, items)
					for g := 0; g < items; g++ {
						row, col := g/side, g%side
						acc := 0.0
						for kk := 0; kk < kdim; kk++ {
							acc += float64(av[row*kdim+kk]) * float64(bv[kk*side+col])
						}
						want[g] = float32(acc)
					}
					return verifyF32("matmul", cv, want)
				},
			}, nil
		},
	}
}

func reduction() *Benchmark {
	const chunk = 16
	b := kernelir.NewBuilder("reduction")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	b.TrafficFactor(1)
	gid := b.GlobalID()
	one := b.ConstI(1)
	idx := b.MulI(gid, b.ConstI(chunk))
	acc := b.ConstF(0)
	b.Repeat(chunk, func() {
		b.MoveF(acc, b.AddF(acc, b.LoadF(in, idx)))
		b.MoveI(idx, b.AddI(idx, one))
	})
	b.StoreF(out, gid, acc)
	k := b.MustBuild()

	return &Benchmark{
		Name:      "reduction",
		Kernel:    k,
		CharItems: 1 << 23,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(104)
			iv := make([]float32, n*chunk)
			ov := make([]float32, n)
			r.fill(iv, 0, 1)
			return &Instance{
				Items: n,
				Args:  kernelir.Args{F32: map[string][]float32{"in": iv, "out": ov}},
				Verify: func() error {
					want := make([]float32, n)
					for i := 0; i < n; i++ {
						acc := 0.0
						for j := 0; j < chunk; j++ {
							acc += float64(iv[i*chunk+j])
						}
						want[i] = float32(acc)
					}
					return verifyF32("reduction", ov, want)
				},
			}, nil
		},
	}
}

// rowDotKernel builds the shared shape of mvt/atax: out[i] =
// scale · dot(A[i,·], x) over a fixed inner dimension.
func rowDotKernel(name string, kdim int, scaled bool, traffic float64) *kernelir.Kernel {
	b := kernelir.NewBuilder(name)
	aB := b.BufferF32("A", kernelir.Read)
	xB := b.BufferF32("x", kernelir.Read)
	yB := b.BufferF32("y", kernelir.Write)
	var alpha kernelir.FloatReg
	if scaled {
		alpha = b.ScalarF("alpha")
	}
	b.TrafficFactor(traffic)
	gid := b.GlobalID()
	one := b.ConstI(1)
	aIdx := b.MulI(gid, b.ConstI(int64(kdim)))
	xIdx := b.ConstI(0)
	acc := b.ConstF(0)
	b.Repeat(kdim, func() {
		prod := b.MulF(b.LoadF(aB, aIdx), b.LoadF(xB, xIdx))
		b.MoveF(acc, b.AddF(acc, prod))
		b.MoveI(aIdx, b.AddI(aIdx, one))
		b.MoveI(xIdx, b.AddI(xIdx, one))
	})
	if scaled {
		b.StoreF(yB, gid, b.MulF(alpha, acc))
	} else {
		b.StoreF(yB, gid, acc)
	}
	return b.MustBuild()
}

func rowDotInstance(name string, kdim int, scaled bool, seed uint64, k *kernelir.Kernel) func(int) (*Instance, error) {
	return func(n int) (*Instance, error) {
		r := newPrng(seed)
		av := make([]float32, n*kdim)
		xv := make([]float32, kdim)
		yv := make([]float32, n)
		r.fill(av, -1, 1)
		r.fill(xv, -1, 1)
		const alpha = 1.5
		args := kernelir.Args{F32: map[string][]float32{"A": av, "x": xv, "y": yv}}
		if scaled {
			args.ScalarF = map[string]float64{"alpha": alpha}
		}
		return &Instance{
			Items: n,
			Args:  args,
			Verify: func() error {
				want := make([]float32, n)
				for i := 0; i < n; i++ {
					acc := 0.0
					for j := 0; j < kdim; j++ {
						acc += float64(av[i*kdim+j]) * float64(xv[j])
					}
					if scaled {
						acc *= alpha
					}
					want[i] = float32(acc)
				}
				return verifyF32(name, yv, want)
			},
		}, nil
	}
}

func mvt() *Benchmark {
	k := rowDotKernel("mvt", 128, false, 0.55)
	return &Benchmark{
		Name: "mvt", Kernel: k, CharItems: 1 << 21,
		NewInstance: rowDotInstance("mvt", 128, false, 105, k),
	}
}

func atax() *Benchmark {
	k := rowDotKernel("atax", 96, true, 0.6)
	return &Benchmark{
		Name: "atax", Kernel: k, CharItems: 1 << 21,
		NewInstance: rowDotInstance("atax", 96, true, 106, k),
	}
}

// bicg computes s[j] = dot(A[·,j], r): column-major access, the worst
// coalescing case, so nearly every access reaches DRAM.
func bicg() *Benchmark {
	const rows = 64
	b := kernelir.NewBuilder("bicg")
	aB := b.BufferF32("A", kernelir.Read)
	rB := b.BufferF32("r", kernelir.Read)
	sB := b.BufferF32("s", kernelir.Write)
	nReg := b.ScalarI("n")
	b.TrafficFactor(0.9)
	gid := b.GlobalID()
	one := b.ConstI(1)
	aIdx := b.CopyI(gid)
	rIdx := b.ConstI(0)
	acc := b.ConstF(0)
	b.Repeat(rows, func() {
		prod := b.MulF(b.LoadF(aB, aIdx), b.LoadF(rB, rIdx))
		b.MoveF(acc, b.AddF(acc, prod))
		b.MoveI(aIdx, b.AddI(aIdx, nReg))
		b.MoveI(rIdx, b.AddI(rIdx, one))
	})
	b.StoreF(sB, gid, acc)
	k := b.MustBuild()

	return &Benchmark{
		Name:      "bicg",
		Kernel:    k,
		CharItems: 1 << 21,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(107)
			av := make([]float32, rows*n)
			rv := make([]float32, rows)
			sv := make([]float32, n)
			r.fill(av, -1, 1)
			r.fill(rv, -1, 1)
			return &Instance{
				Items: n,
				Args: kernelir.Args{
					F32:     map[string][]float32{"A": av, "r": rv, "s": sv},
					ScalarI: map[string]int64{"n": int64(n)},
				},
				Verify: func() error {
					want := make([]float32, n)
					for j := 0; j < n; j++ {
						acc := 0.0
						for i := 0; i < rows; i++ {
							acc += float64(av[i*n+j]) * float64(rv[i])
						}
						want[j] = float32(acc)
					}
					return verifyF32("bicg", sv, want)
				},
			}, nil
		},
	}
}

func gesummv() *Benchmark {
	const kdim = 64
	b := kernelir.NewBuilder("gesummv")
	aB := b.BufferF32("A", kernelir.Read)
	bB := b.BufferF32("B", kernelir.Read)
	xB := b.BufferF32("x", kernelir.Read)
	yB := b.BufferF32("y", kernelir.Write)
	alpha := b.ScalarF("alpha")
	beta := b.ScalarF("beta")
	b.TrafficFactor(0.7)
	gid := b.GlobalID()
	one := b.ConstI(1)
	rowIdx := b.MulI(gid, b.ConstI(kdim))
	xIdx := b.ConstI(0)
	accA := b.ConstF(0)
	accB := b.ConstF(0)
	b.Repeat(kdim, func() {
		xv := b.LoadF(xB, xIdx)
		b.MoveF(accA, b.AddF(accA, b.MulF(b.LoadF(aB, rowIdx), xv)))
		b.MoveF(accB, b.AddF(accB, b.MulF(b.LoadF(bB, rowIdx), xv)))
		b.MoveI(rowIdx, b.AddI(rowIdx, one))
		b.MoveI(xIdx, b.AddI(xIdx, one))
	})
	b.StoreF(yB, gid, b.AddF(b.MulF(alpha, accA), b.MulF(beta, accB)))
	k := b.MustBuild()

	return &Benchmark{
		Name:      "gesummv",
		Kernel:    k,
		CharItems: 1 << 21,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(108)
			av := make([]float32, n*kdim)
			bv := make([]float32, n*kdim)
			xv := make([]float32, kdim)
			yv := make([]float32, n)
			r.fill(av, -1, 1)
			r.fill(bv, -1, 1)
			r.fill(xv, -1, 1)
			const alphaV, betaV = 1.5, 1.2
			return &Instance{
				Items: n,
				Args: kernelir.Args{
					F32:     map[string][]float32{"A": av, "B": bv, "x": xv, "y": yv},
					ScalarF: map[string]float64{"alpha": alphaV, "beta": betaV},
				},
				Verify: func() error {
					want := make([]float32, n)
					for i := 0; i < n; i++ {
						accA, accB := 0.0, 0.0
						for j := 0; j < kdim; j++ {
							accA += float64(av[i*kdim+j]) * float64(xv[j])
							accB += float64(bv[i*kdim+j]) * float64(xv[j])
						}
						want[i] = float32(alphaV*accA + betaV*accB)
					}
					return verifyF32("gesummv", yv, want)
				},
			}, nil
		},
	}
}

func syr2k() *Benchmark {
	const kdim = 32
	b := kernelir.NewBuilder("syr2k")
	aB := b.BufferF32("A", kernelir.Read)
	bB := b.BufferF32("B", kernelir.Read)
	cIn := b.BufferF32("Cin", kernelir.Read)
	cOut := b.BufferF32("Cout", kernelir.Write)
	nReg := b.ScalarI("n")
	alpha := b.ScalarF("alpha")
	beta := b.ScalarF("beta")
	b.TrafficFactor(0.6)
	gid := b.GlobalID()
	one := b.ConstI(1)
	row := b.DivI(gid, nReg)
	col := b.RemI(gid, nReg)
	kc := b.ConstI(kdim)
	ai := b.MulI(row, kc)
	bj := b.MulI(col, kc)
	acc := b.ConstF(0)
	b.Repeat(kdim, func() {
		t1 := b.MulF(b.LoadF(aB, ai), b.LoadF(bB, bj))
		t2 := b.MulF(b.LoadF(bB, ai), b.LoadF(aB, bj))
		b.MoveF(acc, b.AddF(acc, b.AddF(t1, t2)))
		b.MoveI(ai, b.AddI(ai, one))
		b.MoveI(bj, b.AddI(bj, one))
	})
	b.StoreF(cOut, gid, b.AddF(b.MulF(beta, b.LoadF(cIn, gid)), b.MulF(alpha, acc)))
	k := b.MustBuild()

	return &Benchmark{
		Name:      "syr2k",
		Kernel:    k,
		CharItems: 1 << 22,
		NewInstance: func(n int) (*Instance, error) {
			side := int(math.Sqrt(float64(n)))
			if side < 4 {
				side = 4
			}
			items := side * side
			r := newPrng(109)
			av := make([]float32, side*kdim)
			bv := make([]float32, side*kdim)
			cin := make([]float32, items)
			cout := make([]float32, items)
			r.fill(av, -1, 1)
			r.fill(bv, -1, 1)
			r.fill(cin, -1, 1)
			const alphaV, betaV = 0.5, 2.0
			return &Instance{
				Items: items,
				Args: kernelir.Args{
					F32:     map[string][]float32{"A": av, "B": bv, "Cin": cin, "Cout": cout},
					ScalarI: map[string]int64{"n": int64(side)},
					ScalarF: map[string]float64{"alpha": alphaV, "beta": betaV},
				},
				Verify: func() error {
					want := make([]float32, items)
					for g := 0; g < items; g++ {
						i, j := g/side, g%side
						acc := 0.0
						for kk := 0; kk < kdim; kk++ {
							t1 := float64(av[i*kdim+kk]) * float64(bv[j*kdim+kk])
							t2 := float64(bv[i*kdim+kk]) * float64(av[j*kdim+kk])
							acc += t1 + t2
						}
						want[g] = float32(betaV*float64(cin[g]) + alphaV*acc)
					}
					return verifyF32("syr2k", cout, want)
				},
			}, nil
		},
	}
}
