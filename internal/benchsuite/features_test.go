package benchsuite

import (
	"testing"

	"synergy/internal/features"
)

// TestGoldenFeatureVectors locks the Table-1 feature vectors of the
// figure benchmarks: any change to these kernels' instruction mixes
// shifts the paper-facing characterisations and must be deliberate.
//
// Extraction measures the optimizer normal form (features.Extract runs
// kernelir/opt first), so these goldens reflect post-optimization
// counts: matmul's row-stride multiply strength-reduces to a shift
// (IntMul -> IntBw), and median loses one staging add plus the eight
// float adds of its dead sorting-network lanes.
func TestGoldenFeatureVectors(t *testing.T) {
	golden := map[string]features.Vector{
		"vec_add": {FloatAdd: 1, GlAccess: 3},
		"matmul": {
			IntAdd: 128, IntBw: 1, IntDiv: 2,
			FloatAdd: 64, FloatMul: 64, GlAccess: 129,
		},
		"median": {
			IntAdd: 8, FloatAdd: 30, GlAccess: 10,
		},
		"black_scholes": {
			FloatAdd: 8, FloatMul: 12, FloatDiv: 2, SF: 5, GlAccess: 5,
		},
		"lin_reg_coeff": {
			FloatAdd: 4 * 128, FloatMul: 3 * 128, GlAccess: 3,
		},
		"mandelbrot": {
			IntDiv: 2, FloatAdd: 2 + 48*8, FloatMul: 2 + 48*3, FloatDiv: 2, GlAccess: 1,
		},
	}
	for name, want := range golden {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got := features.MustExtract(b.Kernel)
		if got != want {
			t.Errorf("%s: features drifted:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestTrafficFactorsWithinBounds validates every benchmark's declared
// cache behaviour.
func TestTrafficFactorsWithinBounds(t *testing.T) {
	for _, b := range All() {
		tf := b.Kernel.TrafficFactor
		if tf <= 0 || tf > 1 {
			t.Errorf("%s: traffic factor %v outside (0, 1]", b.Name, tf)
		}
	}
	// Stencils must declare substantial reuse; streaming kernels none.
	reusing := map[string]bool{"sobel3": true, "sobel5": true, "sobel7": true, "median": true}
	for name := range reusing {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Kernel.TrafficFactor > 0.5 {
			t.Errorf("%s: stencil traffic factor %v suspiciously high", name, b.Kernel.TrafficFactor)
		}
	}
	for _, name := range []string{"vec_add", "reduction", "arith"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Kernel.TrafficFactor != 1 {
			t.Errorf("%s: streaming kernel declares reuse (%v)", name, b.Kernel.TrafficFactor)
		}
	}
}

// TestDisassemblyCoversSuite smoke-tests the disassembler over all 23
// kernels (each must render without unnamed opcodes).
func TestDisassemblyCoversSuite(t *testing.T) {
	for _, b := range All() {
		asm := b.Kernel.Disassemble()
		if asm == "" {
			t.Errorf("%s: empty disassembly", b.Name)
		}
		if i := indexOf(asm, "op("); i >= 0 {
			t.Errorf("%s: unnamed opcode in disassembly", b.Name)
		}
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
