package benchsuite

import (
	"fmt"
	"math"
	"sort"

	"synergy/internal/kernelir"
)

// Stencil benchmarks. Tiled/cached stencils reach DRAM for only a small
// fraction of their taps, so their traffic factors are low and their
// character is set by the per-pixel arithmetic: sobel (with gradient
// magnitude) is frequency-sensitive (the paper's Fig. 7b shows sobel3
// speedups from 0.73 to 1.15 across the Pareto front), median and
// gaussian blur lean memory-bound.

// sobelCoeffs returns the extended-Sobel Gx coefficients for an s×s
// stencil (Gy is the transpose).
func sobelCoeffs(s int) [][]float64 {
	c := s / 2
	w := make([][]float64, s)
	for i := range w {
		w[i] = make([]float64, s)
		for j := range w[i] {
			di, dj := float64(i-c), float64(j-c)
			if di == 0 && dj == 0 {
				continue
			}
			w[i][j] = dj / (di*di + dj*dj)
		}
	}
	return w
}

// sobel builds the s×s Sobel edge detector (s in {3, 5, 7}).
func sobel(s int) *Benchmark {
	name := fmt.Sprintf("sobel%d", s)
	coef := sobelCoeffs(s)
	c := s / 2

	b := kernelir.NewBuilder(name)
	img := b.BufferF32("img", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	wReg := b.ScalarI("w")
	hReg := b.ScalarI("h")
	// Tiled stencils reuse neighbours: DRAM traffic shrinks with the
	// window (≈ 2 compulsory accesses out of s²+1).
	b.TrafficFactor(2 / float64(s*s+1))
	gid := b.GlobalID()
	zero := b.ConstI(0)
	wm1 := b.SubI(wReg, b.ConstI(1))
	hm1 := b.SubI(hReg, b.ConstI(1))
	row := b.DivI(gid, wReg)
	col := b.RemI(gid, wReg)

	// Clamped row/col offsets, hoisted per axis.
	rows := make([]kernelir.IntReg, s)
	cols := make([]kernelir.IntReg, s)
	for d := 0; d < s; d++ {
		off := b.ConstI(int64(d - c))
		rows[d] = b.MulI(b.MaxI(zero, b.MinI(b.AddI(row, off), hm1)), wReg)
		cols[d] = b.MaxI(zero, b.MinI(b.AddI(col, off), wm1))
	}

	gx := b.ConstF(0)
	gy := b.ConstF(0)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			cx, cy := coef[i][j], coef[j][i]
			if cx == 0 && cy == 0 {
				continue
			}
			p := b.LoadF(img, b.AddI(rows[i], cols[j]))
			if cx != 0 {
				b.MoveF(gx, b.AddF(gx, b.MulF(b.ConstF(cx), p)))
			}
			if cy != 0 {
				b.MoveF(gy, b.AddF(gy, b.MulF(b.ConstF(cy), p)))
			}
		}
	}
	mag := b.SqrtF(b.AddF(b.MulF(gx, gx), b.MulF(gy, gy)))
	b.StoreF(out, gid, b.MinF(mag, b.ConstF(1)))
	k := b.MustBuild()

	return &Benchmark{
		Name:      name,
		Kernel:    k,
		CharItems: 1 << 24,
		NewInstance: func(n int) (*Instance, error) {
			w := int(math.Sqrt(float64(n)))
			if w < s {
				w = s
			}
			h := w
			items := w * h
			r := newPrng(uint64(200 + s))
			iv := make([]float32, items)
			ov := make([]float32, items)
			r.fill(iv, 0, 1)
			return &Instance{
				Items: items,
				Args: kernelir.Args{
					F32:     map[string][]float32{"img": iv, "out": ov},
					ScalarI: map[string]int64{"w": int64(w), "h": int64(h)},
				},
				Verify: func() error {
					want := make([]float32, items)
					for g := 0; g < items; g++ {
						row, col := g/w, g%w
						gx, gy := 0.0, 0.0
						for i := 0; i < s; i++ {
							for j := 0; j < s; j++ {
								cx, cy := coef[i][j], coef[j][i]
								if cx == 0 && cy == 0 {
									continue
								}
								rr := clamp(row+i-c, h)
								cc := clamp(col+j-c, w)
								p := float64(iv[rr*w+cc])
								gx += cx * p
								gy += cy * p
							}
						}
						want[g] = float32(math.Min(math.Sqrt(gx*gx+gy*gy), 1))
					}
					return verifyF32(name, ov, want)
				},
			}, nil
		},
	}
}

// paethNetwork is the classic 19-exchange median-of-9 network.
var paethNetwork = [19][2]int{
	{1, 2}, {4, 5}, {7, 8}, {0, 1}, {3, 4}, {6, 7}, {1, 2}, {4, 5},
	{7, 8}, {0, 3}, {5, 8}, {4, 7}, {3, 6}, {1, 4}, {2, 5}, {4, 7},
	{4, 2}, {6, 4}, {4, 2},
}

// median applies a 9-tap one-dimensional median filter (window clamped
// at the signal edges).
func median() *Benchmark {
	b := kernelir.NewBuilder("median")
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	b.TrafficFactor(0.45)
	gid := b.GlobalID()
	var p [9]kernelir.FloatReg
	for d := 0; d < 9; d++ {
		idx := b.AddI(gid, b.ConstI(int64(d-4)))
		p[d] = b.LoadF(in, idx) // interpreter clamps the index
	}
	for _, ce := range paethNetwork {
		i, j := ce[0], ce[1]
		lo := b.MinF(p[i], p[j])
		hi := b.MaxF(p[i], p[j])
		p[i], p[j] = lo, hi
	}
	b.StoreF(out, gid, p[4])
	k := b.MustBuild()

	return &Benchmark{
		Name:      "median",
		Kernel:    k,
		CharItems: 1 << 25,
		NewInstance: func(n int) (*Instance, error) {
			r := newPrng(210)
			iv := make([]float32, n)
			ov := make([]float32, n)
			r.fill(iv, 0, 1)
			return &Instance{
				Items: n,
				Args:  kernelir.Args{F32: map[string][]float32{"in": iv, "out": ov}},
				Verify: func() error {
					want := make([]float32, n)
					win := make([]float64, 9)
					for g := 0; g < n; g++ {
						for d := 0; d < 9; d++ {
							win[d] = float64(iv[clamp(g+d-4, n)])
						}
						sorted := append([]float64(nil), win...)
						sort.Float64s(sorted)
						want[g] = float32(sorted[4])
					}
					return verifyF32("median", ov, want)
				},
			}, nil
		},
	}
}

// gaussianBlur applies the separable-equivalent 3×3 binomial kernel.
func gaussianBlur() *Benchmark {
	weights := [3][3]float64{{1, 2, 1}, {2, 4, 2}, {1, 2, 1}}

	b := kernelir.NewBuilder("gaussian_blur")
	img := b.BufferF32("img", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	wReg := b.ScalarI("w")
	hReg := b.ScalarI("h")
	b.TrafficFactor(0.35)
	gid := b.GlobalID()
	zero := b.ConstI(0)
	wm1 := b.SubI(wReg, b.ConstI(1))
	hm1 := b.SubI(hReg, b.ConstI(1))
	row := b.DivI(gid, wReg)
	col := b.RemI(gid, wReg)
	rows := make([]kernelir.IntReg, 3)
	cols := make([]kernelir.IntReg, 3)
	for d := 0; d < 3; d++ {
		off := b.ConstI(int64(d - 1))
		rows[d] = b.MulI(b.MaxI(zero, b.MinI(b.AddI(row, off), hm1)), wReg)
		cols[d] = b.MaxI(zero, b.MinI(b.AddI(col, off), wm1))
	}
	acc := b.ConstF(0)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			p := b.LoadF(img, b.AddI(rows[i], cols[j]))
			b.MoveF(acc, b.AddF(acc, b.MulF(b.ConstF(weights[i][j]), p)))
		}
	}
	b.StoreF(out, gid, b.MulF(acc, b.ConstF(1.0/16)))
	k := b.MustBuild()

	return &Benchmark{
		Name:      "gaussian_blur",
		Kernel:    k,
		CharItems: 1 << 24,
		NewInstance: func(n int) (*Instance, error) {
			w := int(math.Sqrt(float64(n)))
			if w < 3 {
				w = 3
			}
			items := w * w
			r := newPrng(211)
			iv := make([]float32, items)
			ov := make([]float32, items)
			r.fill(iv, 0, 1)
			return &Instance{
				Items: items,
				Args: kernelir.Args{
					F32:     map[string][]float32{"img": iv, "out": ov},
					ScalarI: map[string]int64{"w": int64(w), "h": int64(w)},
				},
				Verify: func() error {
					want := make([]float32, items)
					for g := 0; g < items; g++ {
						row, col := g/w, g%w
						acc := 0.0
						for i := 0; i < 3; i++ {
							for j := 0; j < 3; j++ {
								rr := clamp(row+i-1, w)
								cc := clamp(col+j-1, w)
								acc += weights[i][j] * float64(iv[rr*w+cc])
							}
						}
						want[g] = float32(acc / 16)
					}
					return verifyF32("gaussian_blur", ov, want)
				},
			}, nil
		},
	}
}
