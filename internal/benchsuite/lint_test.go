package benchsuite

import (
	"fmt"
	"testing"

	"synergy/internal/hw"
	"synergy/internal/kernelir/analysis"
)

// TestSuiteLintsClean asserts every benchmark kernel passes the static
// analyzer with no error-severity findings on every builtin device, and
// pins the exact warning set: the only warnings in the whole suite are
// median's eight discarded sorting-network lanes (a partial sorting
// network computes more order statistics than the median needs; the spare
// lanes are genuine dead stores and deliberately kept — the kernel's
// feature vector is pinned by results goldens).
func TestSuiteLintsClean(t *testing.T) {
	t.Parallel()
	medianDead := map[string]bool{
		"46/f27": true, "49/f30": true, "52/f33": true, "54/f35": true,
		"57/f38": true, "59/f40": true, "62/f43": true, "65/f46": true,
	}
	for _, device := range hw.BuiltinNames() {
		spec, err := hw.SpecByName(device)
		if err != nil {
			t.Fatal(err)
		}
		for _, bm := range All() {
			r := analysis.Analyze(bm.Kernel, analysis.Options{Spec: spec})
			if !r.Clean() {
				t.Errorf("%s is not lint-clean on %s:\n%s", bm.Name, device, r.Render())
				continue
			}
			if bm.Name != "median" {
				if !r.Quiet() {
					t.Errorf("%s has unexpected warnings on %s:\n%s", bm.Name, device, r.Render())
				}
				continue
			}
			got := map[string]bool{}
			for _, d := range r.Diagnostics {
				if d.Severity != analysis.Warning {
					continue
				}
				if d.Pass != "dead-store" {
					t.Errorf("median: unexpected %s warning on %s: %s", d.Pass, device, d.Message)
					continue
				}
				var reg string
				if _, err := fmt.Sscanf(d.Message, "register %s", &reg); err != nil {
					t.Errorf("median: unparsable dead-store message: %q", d.Message)
					continue
				}
				got[fmt.Sprintf("%d/%s", d.PC, reg)] = true
			}
			if len(got) != len(medianDead) {
				t.Errorf("median dead stores on %s = %v, want %v", device, got, medianDead)
				continue
			}
			for key := range medianDead {
				if !got[key] {
					t.Errorf("median: missing expected dead store %s on %s", key, device)
				}
			}
		}
	}
}
