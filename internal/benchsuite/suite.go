// Package benchsuite implements the 23 SYCL benchmark applications the
// paper evaluates (§8.1): each benchmark is a kernelir kernel plus a
// host-side instance builder (deterministic input data) and an output
// verifier against a straight Go reference. The suite spans the
// compute-/memory-bound spectrum, which is what gives the per-kernel
// energy characterisations of Figs. 2, 7 and 8 their different shapes.
package benchsuite

import (
	"fmt"
	"sort"

	"synergy/internal/kernelir"

	// Importing compile installs the closure-threaded executor as the
	// process-wide kernelir.Runner, so suite kernels run compiled.
	_ "synergy/internal/kernelir/compile"
)

// Benchmark is one suite entry.
type Benchmark struct {
	// Name is the suite identifier (e.g. "sobel3", "black_scholes").
	Name string
	// Kernel is the device program.
	Kernel *kernelir.Kernel
	// CharItems is the launch size used for energy characterisation
	// sweeps (large; never functionally interpreted in full).
	CharItems int64
	// NewInstance builds a verifiable instance with roughly n
	// work-items (benchmarks may round n to their natural shape).
	NewInstance func(n int) (*Instance, error)
}

// Instance is a runnable, verifiable configuration of a benchmark.
type Instance struct {
	// Items is the exact launch size.
	Items int
	// Args binds the kernel parameters.
	Args kernelir.Args
	// Verify checks the outputs after execution.
	Verify func() error
}

// Run executes the instance directly through the interpreter (handy for
// tests that do not need a queue) and verifies the result.
func (in *Instance) Run(k *kernelir.Kernel) error {
	if err := kernelir.Execute(k, in.Args, in.Items); err != nil {
		return err
	}
	return in.Verify()
}

// All returns the full 23-benchmark suite, in a stable order.
func All() []*Benchmark {
	bs := []*Benchmark{
		vecAdd(), scalarProd(), matMul(), sobel(3), sobel(5), sobel(7),
		median(), gaussianBlur(), linRegCoeff(), linRegError(), kmeans(),
		molDyn(), nbody(), blackScholes(), mandelbrot(), reduction(),
		mvt(), atax(), bicg(), gesummv(), syr2k(), correlation(), arith(),
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
	return bs
}

// ByName returns one benchmark from the suite.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("benchsuite: unknown benchmark %q", name)
}

// Names lists the suite in order.
func Names() []string {
	bs := All()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

// --- deterministic input data -------------------------------------------

// prng is a tiny SplitMix64-based generator for reproducible inputs.
type prng struct{ s uint64 }

func newPrng(seed uint64) *prng { return &prng{s: seed} }

func (r *prng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f32 returns a float32 uniform in [lo, hi).
func (r *prng) f32(lo, hi float64) float32 {
	u := float64(r.next()>>11) / float64(1<<53)
	return float32(lo + u*(hi-lo))
}

func (r *prng) fill(buf []float32, lo, hi float64) {
	for i := range buf {
		buf[i] = r.f32(lo, hi)
	}
}

// --- verification helpers ------------------------------------------------

// almostEq compares with a small relative+absolute tolerance; references
// mirror kernel arithmetic, so differences should be rounding-level only.
func almostEq(got, want float32) bool {
	d := float64(got) - float64(want)
	if d < 0 {
		d = -d
	}
	mag := float64(want)
	if mag < 0 {
		mag = -mag
	}
	return d <= 1e-4*mag+1e-5
}

func verifyF32(name string, got, want []float32) error {
	if len(got) != len(want) {
		return fmt.Errorf("benchsuite: %s: output length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if !almostEq(got[i], want[i]) {
			return fmt.Errorf("benchsuite: %s: output[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
	return nil
}

func verifyI32(name string, got, want []int32) error {
	if len(got) != len(want) {
		return fmt.Errorf("benchsuite: %s: output length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("benchsuite: %s: output[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
	return nil
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
