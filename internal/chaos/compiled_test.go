package chaos

import (
	"testing"

	"synergy/internal/kernelir"
	"synergy/internal/kernelir/compile"
)

// TestSoakEpisodeIdenticalOnCompiledPath runs one chaos episode on the
// compiled executor and again on the interpreter: the canonical fault
// trace and the result fingerprint (energy bits, wall-time bits,
// degradations, requeues) must be byte-identical, and neither run may
// violate an invariant. The executor sits below every layer chaos
// stresses, so any divergence here is a compiler bug, not chaos
// nondeterminism. Not parallel — it swaps the process-wide Runner.
func TestSoakEpisodeIdenticalOnCompiledPath(t *testing.T) {
	episode := func(r kernelir.Runner) EpisodeReport {
		prev := kernelir.ActiveRunner()
		kernelir.SetRunner(r)
		defer kernelir.SetRunner(prev)
		rep, err := Soak(Config{Seed: 29, Episodes: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Episodes) != 1 {
			t.Fatalf("got %d episodes, want 1", len(rep.Episodes))
		}
		return rep.Episodes[0]
	}
	epC := episode(compile.Default())
	epI := episode(nil)
	for _, v := range append(epC.Violations, epI.Violations...) {
		t.Errorf("invariant violation: %s", v)
	}
	if epC.Trace != epI.Trace {
		t.Errorf("fault trace differs between compiled and interpreted episodes:\n--- compiled\n%s\n--- interpreted\n%s", epC.Trace, epI.Trace)
	}
	if epC.ResultKey != epI.ResultKey {
		t.Errorf("result key differs: compiled %q, interpreted %q", epC.ResultKey, epI.ResultKey)
	}
	if epC.Trace == "" && epC.Faults == 0 {
		t.Log("episode injected no faults; trace comparison is trivial for this seed")
	}
}
