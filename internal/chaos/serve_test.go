package chaos

import (
	"math/rand"
	"strings"
	"testing"
)

// TestServeSoakHoldsInvariants runs the full serve-chaos soak: every
// episode's scripted phase must replay byte-for-byte and every burst
// must satisfy the overload invariants.
func TestServeSoakHoldsInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("serve soak skipped in -short")
	}
	rep, err := ServeSoak(ServeConfig{Seed: 1, Episodes: 8, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations() {
		t.Errorf("%s", v)
	}
	if got := len(rep.Episodes); got != 8 {
		t.Fatalf("%d episodes ran, want 8", got)
	}
	if rep.Faults() == 0 {
		t.Error("no faults fired across the whole soak; the scenarios are not biting")
	}
	// The menu should get decent coverage across 8 seeded episodes.
	if got := len(rep.Archetypes()); got < 3 {
		t.Errorf("only %d distinct archetypes exercised: %v", got, rep.Archetypes())
	}
}

// TestServeSoakIsReproducible: the soak about the daemon's determinism
// must itself be deterministic — same seed, same report traces.
func TestServeSoakIsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("serve soak skipped in -short")
	}
	cfg := ServeConfig{Seed: 42, Episodes: 2}
	r1, err := ServeSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ServeSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Episodes {
		if r1.Episodes[i].Scenario != r2.Episodes[i].Scenario {
			t.Errorf("episode %d scenarios differ:\n%s\nvs\n%s",
				i, r1.Episodes[i].Scenario, r2.Episodes[i].Scenario)
		}
		if r1.Episodes[i].Trace != r2.Episodes[i].Trace {
			t.Errorf("episode %d traces differ across soaks", i)
		}
	}
}

// TestServeScenarioGeneration: serve scenarios are seed-deterministic
// and every line names a serve fault site.
func TestServeScenarioGeneration(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng1 := rand.New(rand.NewSource(seed))
		rng2 := rand.New(rand.NewSource(seed))
		n1, s1 := generateServeScenario(rng1)
		n2, s2 := generateServeScenario(rng2)
		if s1 != s2 {
			t.Fatalf("seed %d: scenarios differ:\n%s\nvs\n%s", seed, s1, s2)
		}
		if len(n1) == 0 || len(n1) != len(n2) {
			t.Fatalf("seed %d: archetype names %v vs %v", seed, n1, n2)
		}
		for _, line := range strings.Split(strings.TrimSpace(s1), "\n") {
			if !strings.HasPrefix(line, "serve.") {
				t.Errorf("seed %d: scenario line %q targets a non-serve site", seed, line)
			}
		}
	}
}
