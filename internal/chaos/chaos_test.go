package chaos

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"synergy/internal/telemetry"
)

// The soak tests count goroutines per episode, so none run in parallel.

// TestSoakEpisodesHoldInvariants is the headline chaos gate: 25 seeded
// episodes (each run twice for the determinism check) must pass every
// resilience invariant.
func TestSoakEpisodesHoldInvariants(t *testing.T) {
	rep, err := Soak(Config{Seed: 1, Episodes: 25, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations() {
		t.Error(v)
	}
	if len(rep.Episodes) != 25 {
		t.Fatalf("ran %d episodes, want 25", len(rep.Episodes))
	}
	if rep.Faults() == 0 {
		t.Fatal("no injected fault fired across the whole soak — the scenarios are inert")
	}
	// The fixed seed must exercise a broad slice of the archetype menu.
	if got := rep.Archetypes(); len(got) < 6 {
		t.Fatalf("soak exercised only %v, want at least 6 of %d archetypes", got, len(archetypes))
	}
}

// TestSoakIsReproducible: two soaks from the same seed produce
// byte-identical scenarios, traces and result keys.
func TestSoakIsReproducible(t *testing.T) {
	cfg := Config{Seed: 42, Episodes: 4}
	a, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Episodes {
		ea, eb := a.Episodes[i], b.Episodes[i]
		if ea.Scenario != eb.Scenario {
			t.Errorf("episode %d scenarios differ:\n%s\nvs\n%s", i, ea.Scenario, eb.Scenario)
		}
		if ea.Trace != eb.Trace {
			t.Errorf("episode %d traces differ", i)
		}
		if ea.ResultKey != eb.ResultKey {
			t.Errorf("episode %d result keys differ: %s vs %s", i, ea.ResultKey, eb.ResultKey)
		}
	}
}

// TestSoakTelemetryCounters: a soak-level registry receives episode,
// fault and violation counters that agree with the report.
func TestSoakTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	rep, err := Soak(Config{Seed: 5, Episodes: 3, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.CounterTotal("synergy_chaos_episodes_total"); got != int64(len(rep.Episodes)) {
		t.Errorf("episode counter = %d, report has %d episodes", got, len(rep.Episodes))
	}
	if got := snap.CounterTotal("synergy_chaos_faults_total"); got != int64(rep.Faults()) {
		t.Errorf("fault counter = %d, report counted %d", got, rep.Faults())
	}
	if got := snap.CounterTotal("synergy_chaos_violations_total"); got != int64(len(rep.Violations())) {
		t.Errorf("violation counter = %d, report has %d", got, len(rep.Violations()))
	}
}

// TestScenarioGenerationIsSeeded: the generator is a pure function of
// the rng stream, and distinct seeds explore distinct scenarios.
func TestScenarioGenerationIsSeeded(t *testing.T) {
	cfg := Config{}.withDefaults()
	_, s1 := generateScenario(rand.New(rand.NewSource(7)), cfg)
	_, s2 := generateScenario(rand.New(rand.NewSource(7)), cfg)
	if s1 != s2 {
		t.Fatalf("same seed generated different scenarios:\n%s\nvs\n%s", s1, s2)
	}
	distinct := map[string]bool{}
	for seed := int64(0); seed < 16; seed++ {
		_, s := generateScenario(rand.New(rand.NewSource(seed)), cfg)
		distinct[s] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("16 seeds produced only %d distinct scenarios", len(distinct))
	}
}

// TestNodeDeathEpisodeRequeues pins one archetype end to end: a node
// that dies at launch forces a requeue, the job still finishes and the
// trace names the node-fail site.
func TestNodeDeathEpisodeRequeues(t *testing.T) {
	cfg := Config{Seed: 1}.withDefaults()
	// Find a seed whose scenario is exactly a node death (menu search is
	// deterministic, so the pinned seed is stable).
	found := false
	for ep := 0; ep < 200 && !found; ep++ {
		seed := episodeSeed(11, ep)
		names, _ := generateScenario(rand.New(rand.NewSource(seed)), cfg)
		if len(names) == 1 && names[0] == "node-death" {
			rep, err := Soak(Config{Seed: 11 + int64(ep)*7919, Episodes: 1})
			if err != nil {
				t.Fatal(err)
			}
			epr := rep.Episodes[0]
			for _, v := range epr.Violations {
				t.Error(v)
			}
			if epr.Requeues != 1 {
				t.Errorf("requeues = %d, want 1", epr.Requeues)
			}
			if epr.JobErr != "" {
				t.Errorf("job failed despite requeue headroom: %s", epr.JobErr)
			}
			if !strings.Contains(epr.Trace, "slurm.node_fail") {
				t.Errorf("trace does not record the node failure:\n%s", epr.Trace)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no pure node-death scenario within 200 episode seeds")
	}
}

// TestSoakDeadlineDefaultIsSane guards the config plumbing.
func TestSoakDeadlineDefaultIsSane(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Deadline < time.Second || cfg.Episodes != 25 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if _, err := Soak(Config{Episodes: 1, JobNodes: 5, Nodes: 2}); err == nil {
		t.Fatal("oversized job accepted")
	}
}
