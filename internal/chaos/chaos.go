// Package chaos is the seeded chaos-soak harness: it generates
// randomized-but-reproducible fault scenarios (node death, clock-set
// denial storms, link jitter, straggler and dying ranks, epilogue
// crashes) and throws them at full multi-node SLURM+MPI+SYnergy runs,
// asserting the cluster resilience invariants after every episode.
//
// Every episode is derived from a single seed: the scenario script, the
// fault injector and the run itself are all deterministic, so a failing
// episode can be replayed bit-for-bit from its seed alone (the harness
// itself checks this by running every episode twice and comparing the
// canonical fault/breaker trace, the result key and the full telemetry
// snapshot — metrics exposition plus span log — byte for byte).
package chaos

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"synergy/internal/apps"
	"synergy/internal/fault"
	"synergy/internal/governor"
	"synergy/internal/hw"
	"synergy/internal/mpi"
	"synergy/internal/nvml"
	"synergy/internal/resilience"
	"synergy/internal/slurm"
	"synergy/internal/telemetry"
)

// Config parameterises a soak run.
type Config struct {
	// Seed derives every episode's scenario and injector seed.
	Seed int64
	// Episodes is the number of chaos episodes to run.
	Episodes int
	// Nodes is the cluster size; JobNodes of them are requested per job,
	// leaving headroom for requeues around dead nodes.
	Nodes    int
	JobNodes int
	// GPUsPerNode is the per-node GPU count (one MPI rank per GPU).
	GPUsPerNode int
	// Steps is the timestep count of the application run.
	Steps int
	// MaxRequeues bounds scheduler requeues after node failures.
	MaxRequeues int
	// Deadline is the real wall-clock budget per attempt: the no-hang
	// invariant. Virtual time is unrelated — a healthy episode finishes
	// in milliseconds of real time.
	Deadline time.Duration
	// Logf receives per-episode progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Telemetry optionally receives soak-level counters
	// (synergy_chaos_episodes_total, synergy_chaos_faults_total,
	// synergy_chaos_violations_total{invariant}). Per-attempt registries
	// are always private to the attempt — that is what the telemetry
	// determinism invariant compares.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Episodes <= 0 {
		c.Episodes = 25
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.JobNodes <= 0 {
		c.JobNodes = 2
	}
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = 2
	}
	if c.Steps <= 0 {
		c.Steps = 3
	}
	if c.MaxRequeues <= 0 {
		c.MaxRequeues = 2
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Violation is one failed invariant in one episode.
type Violation struct {
	Episode   int
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("episode %d: %s: %s", v.Episode, v.Invariant, v.Detail)
}

// EpisodeReport is the outcome of one episode (two identical attempts).
type EpisodeReport struct {
	Episode    int
	Seed       int64
	Archetypes []string
	Scenario   string
	// Faults is the number of injected faults that actually fired.
	Faults   int
	Requeues int
	// JobErr is the job's final error text ("" when it succeeded —
	// chaos jobs are allowed to fail, they are not allowed to hang,
	// leak, lie about energy or leave privileges raised).
	JobErr string
	// Trace is the canonical fault + breaker-transition trace.
	Trace string
	// ResultKey fingerprints the run outcome (energy bits, wall time
	// bits, degradation and requeue counts).
	ResultKey  string
	Violations []Violation
}

// Report aggregates a whole soak.
type Report struct {
	Config   Config
	Episodes []EpisodeReport
}

// Violations returns every invariant violation across all episodes.
func (r *Report) Violations() []Violation {
	var out []Violation
	for _, ep := range r.Episodes {
		out = append(out, ep.Violations...)
	}
	return out
}

// Archetypes returns the distinct fault archetypes exercised.
func (r *Report) Archetypes() []string {
	seen := map[string]bool{}
	var out []string
	for _, ep := range r.Episodes {
		for _, a := range ep.Archetypes {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// Faults returns the total number of injected faults that fired.
func (r *Report) Faults() int {
	n := 0
	for _, ep := range r.Episodes {
		n += ep.Faults
	}
	return n
}

// archetype is one named failure pattern the generator can pick.
type archetype struct {
	name string
	gen  func(rng *rand.Rand, cfg Config) string
}

// The archetype menu. Generators draw from rng in a fixed order, so a
// seed fully determines the scenario script.
var archetypes = []archetype{
	{"link-jitter", func(rng *rand.Rand, cfg Config) string {
		return fmt.Sprintf("mpi.send p=0.25 delay=%dus", 20+rng.Intn(60))
	}},
	{"straggler", func(rng *rand.Rand, cfg Config) string {
		ranks := cfg.JobNodes * cfg.GPUsPerNode
		return fmt.Sprintf("mpi.send:r%d delay=%dus", rng.Intn(ranks), 100+rng.Intn(300))
	}},
	{"rank-loss", func(rng *rand.Rand, cfg Config) string {
		// A sticky message-lost rule exhausts the sender's retransmit
		// budget: the rank dies mid-run, peers must deadline out.
		ranks := cfg.JobNodes * cfg.GPUsPerNode
		return fmt.Sprintf("mpi.send:r%d after=%d err=mpi.message_lost", rng.Intn(ranks), 2+rng.Intn(5))
	}},
	{"node-death", func(rng *rand.Rand, cfg Config) string {
		// One-shot node failure at job launch: the scheduler must
		// requeue around the dead node.
		return fmt.Sprintf("slurm.node_fail:node%d count=1", rng.Intn(cfg.JobNodes))
	}},
	{"denial-storm", func(rng *rand.Rand, cfg Config) string {
		return fmt.Sprintf("nvml.set_app_clocks count=%d err=nvml.not_permitted", 8+rng.Intn(12))
	}},
	{"flaky-driver", func(rng *rand.Rand, cfg Config) string {
		return fmt.Sprintf("nvml.set_app_clocks p=0.4 count=%d err=nvml.timeout", 5+rng.Intn(10))
	}},
	{"epilogue-crash", func(rng *rand.Rand, cfg Config) string {
		// Two failures fit inside the epilogue's per-step retry budget:
		// cleanup must still complete and close the privilege window.
		return "slurm.epilogue p=0.5 count=2"
	}},
	{"submit-jitter", func(rng *rand.Rand, cfg Config) string {
		// Latency on the device thread just before each kernel starts.
		return fmt.Sprintf("sycl.submit p=0.2 count=10 delay=%dus", 2+rng.Intn(8))
	}},
}

// generateScenario picks 1-3 archetypes and renders the scenario script.
func generateScenario(rng *rand.Rand, cfg Config) ([]string, string) {
	n := 1 + rng.Intn(3)
	picked := rng.Perm(len(archetypes))[:n]
	// Render in menu order for readable scripts; the choice of rules,
	// not their line order, is what the permutation randomises.
	inPick := map[int]bool{}
	for _, i := range picked {
		inPick[i] = true
	}
	var names, lines []string
	for i, a := range archetypes {
		if !inPick[i] {
			continue
		}
		names = append(names, a.name)
		lines = append(lines, a.gen(rng, cfg))
	}
	return names, strings.Join(lines, "\n") + "\n"
}

// Soak runs the configured number of chaos episodes and reports every
// invariant violation. The error return covers harness failures only
// (a violation is data, not an error).
func Soak(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.JobNodes > cfg.Nodes {
		return nil, fmt.Errorf("chaos: job wants %d of %d nodes", cfg.JobNodes, cfg.Nodes)
	}
	rep := &Report{Config: cfg}
	for ep := 0; ep < cfg.Episodes; ep++ {
		er, err := runEpisode(cfg, ep)
		if err != nil {
			return nil, err
		}
		rep.Episodes = append(rep.Episodes, er)
		cfg.Telemetry.Counter("synergy_chaos_episodes_total").Inc()
		cfg.Telemetry.Counter("synergy_chaos_faults_total").Add(int64(er.Faults))
		for _, v := range er.Violations {
			cfg.Telemetry.Counter("synergy_chaos_violations_total", "invariant", v.Invariant).Inc()
		}
		status := "ok"
		if len(er.Violations) > 0 {
			status = fmt.Sprintf("%d VIOLATIONS", len(er.Violations))
		} else if er.JobErr != "" {
			status = "ok (job failed cleanly)"
		}
		cfg.Logf("episode %2d seed=%-12d %-40s faults=%-3d requeues=%d %s",
			ep, er.Seed, strings.Join(er.Archetypes, "+"), er.Faults, er.Requeues, status)
	}
	return rep, nil
}

// episodeSeed spreads the soak seed across episodes.
func episodeSeed(seed int64, ep int) int64 { return seed + int64(ep)*7919 }

func runEpisode(cfg Config, ep int) (EpisodeReport, error) {
	seed := episodeSeed(cfg.Seed, ep)
	rng := rand.New(rand.NewSource(seed))
	names, script := generateScenario(rng, cfg)
	sc, err := fault.ParseScenario(fmt.Sprintf("ep%d", ep), script)
	if err != nil {
		return EpisodeReport{}, fmt.Errorf("chaos: episode %d scenario: %w", ep, err)
	}
	r := EpisodeReport{Episode: ep, Seed: seed, Archetypes: names, Scenario: script}

	base := runtime.NumGoroutine()
	// Invariant 2 (determinism): the same seed and scenario must yield a
	// byte-identical trace and result, so run every episode twice.
	a1 := runAttempt(cfg, seed, sc, &r, "run 1")
	a2 := runAttempt(cfg, seed, sc, &r, "run 2")
	if a1.ok && a2.ok {
		if a1.trace != a2.trace {
			r.addViolation(ep, "determinism", fmt.Sprintf(
				"fault/breaker traces differ across identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a1.trace, a2.trace))
		}
		if a1.resultKey != a2.resultKey {
			r.addViolation(ep, "determinism", fmt.Sprintf(
				"result keys differ: %s vs %s", a1.resultKey, a2.resultKey))
		}
		// Invariant 7 (telemetry determinism): each attempt carries its own
		// telemetry registry; the full snapshot — exposition text and span
		// log — must be byte-identical across the two runs.
		if a1.telemetry != a2.telemetry {
			r.addViolation(ep, "telemetry-determinism", fmt.Sprintf(
				"telemetry snapshots differ across identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a1.telemetry, a2.telemetry))
		}
	}
	r.Trace = a1.trace
	r.ResultKey = a1.resultKey
	r.Faults = a1.faults
	r.Requeues = a1.requeues
	r.JobErr = a1.jobErr

	// Invariant 5 (goroutine hygiene): both attempts fully drained.
	if n, ok := settle(base, 5*time.Second); !ok {
		r.addViolation(ep, "goroutine-hygiene", fmt.Sprintf(
			"%d goroutines before the episode, %d still running after", base, n))
	}
	return r, nil
}

func (r *EpisodeReport) addViolation(ep int, invariant, detail string) {
	r.Violations = append(r.Violations, Violation{Episode: ep, Invariant: invariant, Detail: detail})
}

type attemptResult struct {
	ok        bool
	trace     string
	resultKey string
	telemetry string
	faults    int
	requeues  int
	jobErr    string
}

// runAttempt builds a fresh cluster, runs the episode's job under the
// scenario and checks the per-attempt invariants (termination, energy
// conservation, retry bounds, privilege windows).
func runAttempt(cfg Config, seed int64, sc fault.Scenario, r *EpisodeReport, tag string) attemptResult {
	inj := fault.NewFromScenario(seed, sc)
	reg := resilience.NewRegistry(resilience.DefaultConfig())
	tel := telemetry.NewRegistry()
	reg.SetTelemetry(tel)
	spec := hw.V100()
	nodes := make([]*slurm.Node, cfg.Nodes)
	for i := range nodes {
		nodes[i] = slurm.NewNode(fmt.Sprintf("node%d", i), spec, cfg.GPUsPerNode, slurm.GresNVGpuFreq)
	}
	cluster := slurm.NewCluster(nodes...)
	cluster.RegisterPlugin(&slurm.NVGpuFreqPlugin{Controller: cluster})
	cluster.SetFaultInjector(inj)
	cluster.SetTelemetry(tel)

	app := apps.NewCloverLeaf()
	plan := apps.FreqPlan{}
	for _, k := range app.Kernels {
		plan[k.Name] = spec.MinCoreMHz()
	}
	var runRes *apps.RunResult
	job := &slurm.Job{
		Name:        fmt.Sprintf("chaos-ep%d", r.Episode),
		User:        "alice",
		NumNodes:    cfg.JobNodes,
		Exclusive:   true,
		Gres:        map[slurm.GRES]bool{slurm.GresNVGpuFreq: true},
		MaxRequeues: cfg.MaxRequeues,
		Run: func(alloc *slurm.Allocation) error {
			rc := apps.RunConfig{
				Spec:          spec,
				Nodes:         cfg.JobNodes,
				GPUsPerNode:   cfg.GPUsPerNode,
				LocalNx:       32,
				LocalNy:       32,
				Steps:         cfg.Steps,
				StateRows:     8,
				FunctionalCap: 128,
				Plan:          plan,
				Net:           mpi.EDRFabric(),
				Devices:       alloc.GPUs(),
				User:          "alice",
				Fault:         inj,
				Health:        reg,
				Telemetry:     tel,
			}
			res, err := apps.Run(app, rc)
			if err != nil {
				return err
			}
			runRes = res
			return nil
		},
	}
	h, err := cluster.SubmitAsync(job)
	if err != nil {
		r.addViolation(r.Episode, "terminates", fmt.Sprintf("%s: submit: %v", tag, err))
		return attemptResult{}
	}

	// Invariant 1 (termination): the job must finish within the real
	// wall-clock deadline even when ranks die or nodes disappear.
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
	jobRes, werr := h.WaitContext(ctx)
	cancel()
	if werr != nil {
		r.addViolation(r.Episode, "terminates", fmt.Sprintf(
			"%s: job not done within %v: %v", tag, cfg.Deadline, werr))
		// Grace drain so a hung episode does not poison the next ones;
		// if even that fails, further inspection is unsafe.
		grace, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
		jobRes, werr = h.WaitContext(grace)
		cancel()
		if werr != nil {
			return attemptResult{}
		}
	}
	requeues := h.Requeues()

	// Invariant 3 (energy conservation): the energy billed to the job,
	// across every requeue, never exceeds the energy the cluster's
	// devices actually dissipated, and is never negative.
	var totalJ float64
	for _, n := range cluster.Nodes() {
		for _, g := range n.GPUs {
			totalJ += g.EnergyBetween(0, g.Now())
		}
	}
	if jobRes.EnergyJ < -1e-9 || jobRes.EnergyJ > totalJ+1e-6 {
		r.addViolation(r.Episode, "energy-conservation", fmt.Sprintf(
			"%s: job billed %.6f J, cluster dissipated %.6f J", tag, jobRes.EnergyJ, totalJ))
	}

	// Invariant 4 (retry bounds): the governor never spends more vendor
	// calls per GPU than the retry policy allows per submission.
	pol := governor.DefaultRetryPolicy()
	bound := int64(pol.MaxAttempts) * int64(len(app.Kernels)) * int64(cfg.Steps) * int64(requeues+1)
	for _, n := range cluster.Nodes() {
		for i := range n.GPUs {
			site := nvml.SiteSetAppClocks + ":" + fmt.Sprintf("%s/gpu%d", n.Name, i)
			if got := inj.CallCount(site); got > bound {
				r.addViolation(r.Episode, "retry-bounds", fmt.Sprintf(
					"%s: %s consulted %d times, policy allows %d", tag, site, got, bound))
			}
		}
	}

	// Invariant 6 (privilege windows): once every node is back in
	// service, the clock-set API must be restricted again on every GPU —
	// no job may leave a privilege window open.
	cluster.SetFaultInjector(nil)
	for _, n := range cluster.Nodes() {
		if n.Down() {
			n.Revive()
		}
		lib, err := nvml.New(n.GPUs...)
		if err != nil {
			r.addViolation(r.Episode, "privilege-window", fmt.Sprintf("%s: %s: %v", tag, n.Name, err))
			continue
		}
		if err := lib.Init(); err != nil {
			r.addViolation(r.Episode, "privilege-window", fmt.Sprintf("%s: %s: %v", tag, n.Name, err))
			continue
		}
		for i := range n.GPUs {
			hd, err := lib.DeviceGetHandleByIndex(i)
			if err != nil {
				r.addViolation(r.Episode, "privilege-window", fmt.Sprintf("%s: %s/gpu%d: %v", tag, n.Name, i, err))
				continue
			}
			restricted, err := hd.GetAPIRestriction(nvml.APISetApplicationClocks)
			if err != nil {
				r.addViolation(r.Episode, "privilege-window", fmt.Sprintf("%s: %s/gpu%d: %v", tag, n.Name, i, err))
				continue
			}
			if !restricted {
				r.addViolation(r.Episode, "privilege-window", fmt.Sprintf(
					"%s: %s/gpu%d: clock-set API still unrestricted after the job", tag, n.Name, i))
			}
		}
	}

	return attemptResult{
		ok:        true,
		trace:     canonicalTrace(inj.Trace(), reg.Transitions()),
		resultKey: resultKey(jobRes, runRes, requeues),
		telemetry: telemetrySnapshot(tel),
		faults:    len(inj.Trace()),
		requeues:  requeues,
		jobErr:    errText(jobRes.Err),
	}
}

// telemetrySnapshot renders an attempt's registry in the canonical
// byte-comparable form: the deterministic exposition text followed by
// the canonical span log.
func telemetrySnapshot(tel *telemetry.Registry) string {
	var b strings.Builder
	if err := tel.WriteText(&b); err != nil {
		return "exposition error: " + err.Error()
	}
	for _, s := range tel.Spans() {
		fmt.Fprintf(&b, "span %d parent=%d track=%q name=%q kind=%q start=%.9f end=%.9f\n",
			s.ID, s.Parent, s.Track, s.Name, s.Kind, s.StartSec, s.EndSec)
	}
	return b.String()
}

// canonicalTrace renders fired faults and breaker transitions in a
// stable byte-comparable form.
func canonicalTrace(events []fault.Event, trs []resilience.Transition) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "fault %s call=%d rule=%q err=%q delay=%.9f\n",
			e.Site, e.Call, e.Rule, e.Err, e.DelaySec)
	}
	for _, t := range trs {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// resultKey fingerprints a run outcome bit-exactly (float fields go in
// as their IEEE-754 bit patterns).
func resultKey(jobRes *slurm.JobResult, runRes *apps.RunResult, requeues int) string {
	key := fmt.Sprintf("requeues=%d job_energy=%016x job_err=%q",
		requeues, math.Float64bits(jobRes.EnergyJ), errText(jobRes.Err))
	if runRes != nil {
		key += fmt.Sprintf(" time=%016x energy=%016x clock_sets=%d degradations=%d",
			math.Float64bits(runRes.TimeSec), math.Float64bits(runRes.EnergyJ),
			runRes.ClockSets, len(runRes.Degradations))
	}
	return key
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// settle waits for the goroutine count to return to the baseline.
func settle(base int, timeout time.Duration) (int, bool) {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return n, true
		}
		if time.Now().After(deadline) {
			return n, false
		}
		time.Sleep(2 * time.Millisecond)
	}
}
