package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"synergy/internal/benchsuite"
	"synergy/internal/fault"
	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/microbench"
	"synergy/internal/model"
	"synergy/internal/resilience"
	"synergy/internal/serve"
	"synergy/internal/sweep"
	"synergy/internal/telemetry"
)

// ServeConfig parameterises a serve-chaos soak: seeded overload and
// dependency-failure episodes thrown at the advice daemon.
type ServeConfig struct {
	// Seed derives every episode's scenario, injector seed and request
	// script.
	Seed int64
	// Episodes is the number of chaos episodes.
	Episodes int
	// Ops is the length of the scripted request sequence per attempt.
	Ops int
	// BurstClients and BurstPerClient size the concurrent overload
	// burst of each episode.
	BurstClients   int
	BurstPerClient int
	// MaxInFlight and MaxQueue bound the burst server's gate (the
	// scripted attempts use a fixed tiny gate of their own).
	MaxInFlight int
	MaxQueue    int
	// Logf receives per-episode progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Telemetry optionally receives soak-level counters (the same
	// families the cluster soak emits).
	Telemetry *telemetry.Registry
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Episodes <= 0 {
		c.Episodes = 10
	}
	if c.Ops <= 0 {
		c.Ops = 24
	}
	if c.BurstClients <= 0 {
		c.BurstClients = 12
	}
	if c.BurstPerClient <= 0 {
		c.BurstPerClient = 10
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// The serve-failure archetype menu, over the daemon's fault sites.
// Delays are real time: the sweep budget in the scripted attempts is
// 40ms, so a 150ms stall is a guaranteed, deterministic sweep timeout.
var serveArchetypes = []archetype{
	{"sweep-stall", func(rng *rand.Rand, _ Config) string {
		return "serve.sweep delay=150ms"
	}},
	{"sweep-flake", func(rng *rand.Rand, _ Config) string {
		return fmt.Sprintf("serve.sweep p=0.%d err=fault.injected", 4+rng.Intn(5))
	}},
	{"predict-blip", func(rng *rand.Rand, _ Config) string {
		return fmt.Sprintf("serve.predict p=0.3 count=%d err=fault.injected", 4+rng.Intn(6))
	}},
	{"extract-lag", func(rng *rand.Rand, _ Config) string {
		return fmt.Sprintf("serve.extract p=0.5 delay=%dms", 1+rng.Intn(3))
	}},
	{"reload-fault", func(rng *rand.Rand, _ Config) string {
		return "serve.reload count=1 err=fault.injected"
	}},
}

// generateServeScenario picks 1-2 serve archetypes, seed-deterministic.
func generateServeScenario(rng *rand.Rand) ([]string, string) {
	n := 1 + rng.Intn(2)
	picked := rng.Perm(len(serveArchetypes))[:n]
	inPick := map[int]bool{}
	for _, i := range picked {
		inPick[i] = true
	}
	var names, lines []string
	for i, a := range serveArchetypes {
		if !inPick[i] {
			continue
		}
		names = append(names, a.name)
		lines = append(lines, a.gen(rng, Config{}))
	}
	return names, strings.Join(lines, "\n") + "\n"
}

// serveFixture is the expensive, episode-invariant state of a soak:
// two distinct trained bundles for the same device (A/B reload
// targets, distinguishable by fingerprint) and the request corpus.
type serveFixture struct {
	bundleA, bundleB *model.Models
	jsonA, jsonB     []byte
	fpA, fpB         string
	featureReqs      []serve.Request // advise-by-features corpus
	gtReq            serve.Request   // advise-by-kir with ground truth
	gtKernel         *kernelir.Kernel
}

// newServeFixture trains the two bundles and prewarms the sweep
// memoizer for the ground-truth kernel, so a scripted attempt's sweep
// outcome depends only on injected faults, never on first-compute
// timing.
func newServeFixture() (*serveFixture, error) {
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		return nil, err
	}
	spec := hw.V100()
	f := &serveFixture{}
	for _, p := range []struct {
		stride int
		m      **model.Models
		js     *[]byte
		fp     *string
	}{
		{16, &f.bundleA, &f.jsonA, &f.fpA},
		{24, &f.bundleB, &f.jsonB, &f.fpB},
	} {
		ts, err := model.CollectTraining(spec, ks, p.stride)
		if err != nil {
			return nil, err
		}
		m, err := model.Train(spec, ts, model.AlgoForest)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := model.SaveModels(&buf, m); err != nil {
			return nil, err
		}
		fp, err := m.Fingerprint()
		if err != nil {
			return nil, err
		}
		*p.m, *p.js, *p.fp = m, buf.Bytes(), fp
	}
	if f.fpA == f.fpB {
		return nil, fmt.Errorf("chaos: reload bundles fingerprint equal; swaps would be unobservable")
	}

	targets := []string{"MIN_ENERGY", "MIN_EDP", "ES_25", "MAX_PERF"}
	for i, name := range []string{"black_scholes", "matmul", "vec_add", "median"} {
		b, err := benchsuite.ByName(name)
		if err != nil {
			return nil, err
		}
		v, err := kernelFeatures(b.Kernel)
		if err != nil {
			return nil, err
		}
		f.featureReqs = append(f.featureReqs, serve.Request{Target: targets[i%len(targets)], Features: v})
	}
	gtb, err := benchsuite.ByName("vec_add")
	if err != nil {
		return nil, err
	}
	f.gtKernel = gtb.Kernel
	f.gtReq = serve.Request{
		Target: "MIN_EDP", KIR: gtb.Kernel.Disassemble(), Items: 1 << 16, GroundTruth: true,
	}
	if _, err := sweep.GroundTruthContext(context.Background(), spec, f.gtKernel, 1<<16); err != nil {
		return nil, err
	}
	return f, nil
}

// scriptClock is the scripted breaker clock: strictly monotone, one
// fixed step per reading, so the breaker's transition timestamps are a
// pure function of the call sequence.
type scriptClock struct{ t float64 }

func (c *scriptClock) now() float64 { c.t += 0.05; return c.t }

// ServeSoak runs the serve-chaos soak. Each episode:
//
//  1. Determinism: a seed-derived request script (advise, ground-truth
//     advise, malformed input, pre-expired deadlines, A/B reloads) runs
//     twice against two identically configured fresh daemons with the
//     same fault scenario and a scripted breaker clock; the canonical
//     outcome trace — status, shed reason, degraded mode, bundle
//     fingerprint, advised frequency, fired faults, breaker transitions
//     — must be byte-identical.
//  2. Overload: a concurrent burst at ~2x the burst server's gate races
//     advise traffic against A/B reloads over real HTTP, asserting the
//     robustness invariants: every request reaches exactly one terminal
//     outcome and the daemon's accounting agrees, in-flight never
//     exceeds the gate, every answer is stamped by exactly one of the
//     two bundles, the post-drain daemon serves the final bundle, and
//     goroutines settle.
func ServeSoak(cfg ServeConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	fx, err := newServeFixture()
	if err != nil {
		return nil, err
	}
	soakCfg := Config{Seed: cfg.Seed, Episodes: cfg.Episodes}
	rep := &Report{Config: soakCfg}
	for ep := 0; ep < cfg.Episodes; ep++ {
		er, err := runServeEpisode(cfg, fx, ep)
		if err != nil {
			return nil, err
		}
		rep.Episodes = append(rep.Episodes, er)
		cfg.Telemetry.Counter("synergy_chaos_episodes_total").Inc()
		cfg.Telemetry.Counter("synergy_chaos_faults_total").Add(int64(er.Faults))
		for _, v := range er.Violations {
			cfg.Telemetry.Counter("synergy_chaos_violations_total", "invariant", v.Invariant).Inc()
		}
		status := "ok"
		if len(er.Violations) > 0 {
			status = fmt.Sprintf("%d VIOLATIONS", len(er.Violations))
		}
		cfg.Logf("episode %2d seed=%-12d %-28s faults=%-3d %s",
			ep, er.Seed, strings.Join(er.Archetypes, "+"), er.Faults, status)
	}
	return rep, nil
}

func runServeEpisode(cfg ServeConfig, fx *serveFixture, ep int) (EpisodeReport, error) {
	seed := episodeSeed(cfg.Seed, ep)
	rng := rand.New(rand.NewSource(seed))
	names, script := generateServeScenario(rng)
	sc, err := fault.ParseScenario(fmt.Sprintf("serve-ep%d", ep), script)
	if err != nil {
		return EpisodeReport{}, fmt.Errorf("chaos: serve episode %d scenario: %w", ep, err)
	}
	r := EpisodeReport{Episode: ep, Seed: seed, Archetypes: names, Scenario: script}
	ops := generateServeOps(rng, cfg.Ops, fx)

	base := runtime.NumGoroutine()

	// Invariant: determinism. Same seed, same script, same scenario ->
	// byte-identical outcome traces.
	t1, f1, err := runServeScript(fx, seed, sc, ops)
	if err != nil {
		return EpisodeReport{}, err
	}
	t2, _, err := runServeScript(fx, seed, sc, ops)
	if err != nil {
		return EpisodeReport{}, err
	}
	if t1 != t2 {
		r.addViolation(ep, "determinism", fmt.Sprintf(
			"serve traces differ across identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", t1, t2))
	}
	r.Trace = t1
	r.Faults = f1

	// Invariant: overload behavior under a real concurrent burst.
	runServeBurst(cfg, fx, seed, sc, ep, &r)

	// Invariant: goroutine hygiene — both phases fully drained.
	if n, ok := settle(base, 5*time.Second); !ok {
		r.addViolation(ep, "goroutine-hygiene", fmt.Sprintf(
			"%d goroutines before the episode, %d still running after", base, n))
	}
	return r, nil
}

// serveOp is one scripted request.
type serveOp struct {
	kind string // "advise", "gt", "bad", "expired", "reload"
	req  serve.Request
	toB  bool // reload direction
}

// generateServeOps renders the episode's request script. All draws
// come from rng in a fixed order: the seed fully determines the script.
func generateServeOps(rng *rand.Rand, n int, fx *serveFixture) []serveOp {
	ops := make([]serveOp, 0, n)
	toB := true
	for i := 0; i < n; i++ {
		switch p := rng.Intn(100); {
		case p < 40:
			ops = append(ops, serveOp{kind: "advise", req: fx.featureReqs[rng.Intn(len(fx.featureReqs))]})
		case p < 65:
			ops = append(ops, serveOp{kind: "gt", req: fx.gtReq})
		case p < 75:
			ops = append(ops, serveOp{kind: "bad", req: serve.Request{Target: "BOGUS"}})
		case p < 85:
			ops = append(ops, serveOp{kind: "expired", req: fx.featureReqs[rng.Intn(len(fx.featureReqs))]})
		default:
			ops = append(ops, serveOp{kind: "reload", toB: toB})
			toB = !toB
		}
	}
	return ops
}

// runServeScript plays the request script sequentially against a fresh
// daemon and renders the canonical outcome trace.
func runServeScript(fx *serveFixture, seed int64, sc fault.Scenario, ops []serveOp) (trace string, faults int, err error) {
	inj := fault.NewFromScenario(seed, sc)
	clk := &scriptClock{}
	s, err := serve.NewWithConfig(fx.bundleA, telemetry.NewRegistry(), serve.Config{
		MaxInFlight:  2,
		MaxQueue:     2,
		SweepTimeout: 40 * time.Millisecond,
		Breaker:      resilience.Config{FailureThreshold: 2, CooldownSec: 1.0, HalfOpenSuccesses: 1},
		Clock:        clk.now,
		Fault:        inj,
	})
	if err != nil {
		return "", 0, fmt.Errorf("chaos: building scripted daemon: %w", err)
	}
	var b strings.Builder
	for i, op := range ops {
		var body []byte
		path := "/v1/advise"
		switch op.kind {
		case "reload":
			path = "/v1/reload"
			js := fx.jsonA
			if op.toB {
				js = fx.jsonB
			}
			body, err = json.Marshal(serve.ReloadRequest{Bundle: js})
		default:
			body, err = json.Marshal(op.req)
		}
		if err != nil {
			return "", 0, err
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		if op.kind == "expired" {
			req.Header.Set(serve.DeadlineHeader, "1ns")
		}
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		out, _ := io.ReadAll(w.Result().Body)

		line := fmt.Sprintf("op %02d %-7s -> %d", i, op.kind, w.Code)
		switch {
		case w.Code == http.StatusOK && path == "/v1/advise":
			var resp serve.Response
			if err := json.Unmarshal(out, &resp); err != nil {
				return "", 0, err
			}
			line += fmt.Sprintf(" bundle=%s freq=%d actual=%d degraded=%q",
				resp.Bundle, resp.FreqMHz, resp.ActualFreqMHz, resp.Degraded)
		case w.Code == http.StatusOK:
			var rr map[string]string
			if err := json.Unmarshal(out, &rr); err != nil {
				return "", 0, err
			}
			line += fmt.Sprintf(" bundle=%s", rr["bundle"])
		default:
			var e map[string]string
			_ = json.Unmarshal(out, &e)
			line += fmt.Sprintf(" reason=%q", e["reason"])
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	// Fold in the fired faults and the breaker's transition log: the
	// full failure history must replay bit-for-bit, not just the
	// responses.
	b.WriteString(canonicalTrace(inj.Trace(), s.SweepBreaker().Inner().Transitions()))
	return b.String(), len(inj.Trace()), nil
}

// runServeBurst saturates a fresh daemon at ~2x its gate with advise
// traffic racing A/B reloads, then checks the overload invariants.
func runServeBurst(cfg ServeConfig, fx *serveFixture, seed int64, sc fault.Scenario, ep int, r *EpisodeReport) {
	inj := fault.NewFromScenario(seed, sc)
	reg := telemetry.NewRegistry()
	s, err := serve.NewWithConfig(fx.bundleA, reg, serve.Config{
		MaxInFlight:  cfg.MaxInFlight,
		MaxQueue:     cfg.MaxQueue,
		SweepTimeout: 40 * time.Millisecond,
		Fault:        inj,
	})
	if err != nil {
		r.addViolation(ep, "terminates", fmt.Sprintf("burst: building daemon: %v", err))
		return
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	bodies := make([][]byte, len(fx.featureReqs))
	for i, req := range fx.featureReqs {
		bodies[i], err = json.Marshal(req)
		if err != nil {
			r.addViolation(ep, "terminates", fmt.Sprintf("burst: %v", err))
			return
		}
	}

	var terminal, badStamp atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// One reloader flips bundles for the whole burst.
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := true
		for {
			select {
			case <-stop:
				return
			default:
			}
			js := fx.jsonA
			if next {
				js = fx.jsonB
			}
			next = !next
			body, _ := json.Marshal(serve.ReloadRequest{Bundle: js})
			resp, err := http.Post(ts.URL+"/v1/reload", "application/json", bytes.NewReader(body))
			if err != nil {
				continue
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	clientDone := make(chan struct{})
	var clientWG sync.WaitGroup
	for c := 0; c < cfg.BurstClients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			for i := 0; i < cfg.BurstPerClient; i++ {
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/advise",
					bytes.NewReader(bodies[(c+i)%len(bodies)]))
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set(serve.DeadlineHeader, "5s")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					continue // transport error: not a daemon outcome
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				terminal.Add(1)
				if resp.StatusCode == http.StatusOK {
					var rr serve.Response
					if json.Unmarshal(out, &rr) != nil || (rr.Bundle != fx.fpA && rr.Bundle != fx.fpB) {
						badStamp.Add(1)
					}
				}
			}
		}(c)
	}
	go func() { clientWG.Wait(); close(clientDone) }()
	<-clientDone
	close(stop)
	wg.Wait()

	// Invariant: exactly one terminal outcome per request — the daemon's
	// own accounting must cover every advise request the clients saw
	// answered, with no invented or lost outcomes.
	snap := reg.Snapshot()
	var acct int64
	for _, outcome := range []string{"ok", "shed", "deadline", "client-error", "error"} {
		acct += snap.CounterValue("serve_requests_total", "route", "advise", "outcome", outcome)
	}
	if acct != terminal.Load() {
		r.addViolation(ep, "exactly-one-outcome", fmt.Sprintf(
			"burst: clients saw %d terminal advise outcomes, daemon accounted %d", terminal.Load(), acct))
	}
	// Invariant: the admission gate held.
	if peak := s.InFlightPeak(); peak > cfg.MaxInFlight {
		r.addViolation(ep, "gate-bound", fmt.Sprintf(
			"burst: in-flight peak %d exceeded the gate of %d", peak, cfg.MaxInFlight))
	}
	// Invariant: reload atomicity — every answer carried exactly one of
	// the two bundle fingerprints.
	if n := badStamp.Load(); n > 0 {
		r.addViolation(ep, "reload-atomicity", fmt.Sprintf(
			"burst: %d responses stamped by neither bundle %s nor %s", n, fx.fpA, fx.fpB))
	}
	// Invariant: post-drain, a final reload wins and the daemon serves
	// it — no half-swapped state survives the churn.
	if err := s.Reload(fx.bundleB); err != nil {
		r.addViolation(ep, "reload-atomicity", fmt.Sprintf("burst: post-drain reload: %v", err))
		return
	}
	resp, err := http.Post(ts.URL+"/v1/advise", "application/json", bytes.NewReader(bodies[0]))
	if err != nil {
		r.addViolation(ep, "terminates", fmt.Sprintf("burst: post-drain advise: %v", err))
		return
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var rr serve.Response
	if resp.StatusCode != http.StatusOK || json.Unmarshal(out, &rr) != nil {
		r.addViolation(ep, "terminates", fmt.Sprintf("burst: post-drain advise: status %d (%s)", resp.StatusCode, out))
		return
	}
	if rr.Bundle != fx.fpB {
		r.addViolation(ep, "reload-atomicity", fmt.Sprintf(
			"burst: post-drain advise stamped %s, want final bundle %s", rr.Bundle, fx.fpB))
	}
}

// kernelFeatures extracts a kernel's features in wire-map form.
func kernelFeatures(k *kernelir.Kernel) (map[string]float64, error) {
	v, err := features.Extract(k)
	if err != nil {
		return nil, err
	}
	return v.ToMap(), nil
}
