package microbench

import (
	"testing"

	"synergy/internal/features"
	"synergy/internal/kernelir"
)

func TestDefaultSetBuildsAndValidates(t *testing.T) {
	cfgs := DefaultSet()
	if len(cfgs) < 40 {
		t.Fatalf("default set has %d configs, want a broad training suite (>=40)", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if seen[c.Name] {
			t.Fatalf("duplicate micro-benchmark %q", c.Name)
		}
		seen[c.Name] = true
		k, err := Build(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

func TestConfiguredOpsAppearInFeatures(t *testing.T) {
	k := MustBuild(Config{Name: "t", IntDiv: 32, SF: 16, Loads: 4, Stores: 2, Traffic: 1})
	v := features.MustExtract(k)
	if v.IntDiv < 32 {
		t.Errorf("int_div = %v, want >= 32", v.IntDiv)
	}
	if v.SF < 16 {
		t.Errorf("sf = %v, want >= 16", v.SF)
	}
	if v.GlAccess != 6 {
		t.Errorf("gl_access = %v, want 6 (4 loads + 2 stores)", v.GlAccess)
	}
}

func TestFeatureSpaceSpansAllClasses(t *testing.T) {
	var total features.Vector
	for _, c := range DefaultSet() {
		total = total.Add(features.MustExtract(MustBuild(c)))
	}
	for i, v := range total.Slice() {
		if v == 0 {
			t.Errorf("feature %s never exercised by the training set", features.Names[i])
		}
	}
}

func TestMicroBenchmarksExecuteFinite(t *testing.T) {
	for _, c := range DefaultSet() {
		k := MustBuild(c)
		n := 256
		in := make([]float32, n+64)
		out := make([]float32, n+64)
		for i := range in {
			in[i] = 0.5
		}
		args := kernelir.Args{F32: map[string][]float32{"in": in, "out": out}}
		if err := kernelir.Execute(k, args, n); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		for i := 0; i < n; i++ {
			v := out[i]
			if v != v || v > 1e30 || v < -1e30 { // NaN or blown up
				t.Fatalf("%s: out[%d] = %v not finite/stable", c.Name, i, v)
			}
		}
	}
}

func TestBuildRejectsMissingMemoryOps(t *testing.T) {
	if _, err := Build(Config{Name: "bad", FloatAdd: 8}); err == nil {
		t.Fatal("config without loads/stores accepted")
	}
}
