// Package microbench generates the synthetic training kernels of §6.1:
// instead of training on existing benchmarks, SYnergy builds its energy
// models from a set of micro-benchmarks that span the static-feature
// space — pure integer/float/division/special-function chains, pure
// streaming kernels, and mixes at graded arithmetic intensities.
package microbench

import (
	"fmt"

	"synergy/internal/kernelir"
)

// Config describes one micro-benchmark: per-work-item operation counts
// by feature class, global loads/stores, local accesses and the DRAM
// traffic factor.
type Config struct {
	Name     string
	IntAdd   int
	IntMul   int
	IntDiv   int
	IntBw    int
	FloatAdd int
	FloatMul int
	FloatDiv int
	SF       int
	Loads    int
	Stores   int
	Local    int
	Traffic  float64
}

// Build emits a kernel realising the configuration. The op chains are
// dependent (they feed accumulators that reach the output), so nothing
// is dead code, and all values stay finite.
func Build(c Config) (*kernelir.Kernel, error) {
	if c.Loads < 1 || c.Stores < 1 {
		return nil, fmt.Errorf("microbench: %s: need at least one load and one store", c.Name)
	}
	b := kernelir.NewBuilder(c.Name)
	in := b.BufferF32("in", kernelir.Read)
	out := b.BufferF32("out", kernelir.Write)
	if c.Traffic > 0 {
		b.TrafficFactor(c.Traffic)
	}
	if c.Local > 0 {
		b.Local(4)
	}
	gid := b.GlobalID()
	one := b.ConstI(1)

	// Loads: walk the input from gid.
	idx := b.CopyI(gid)
	facc := b.CopyF(b.ConstF(1))
	for i := 0; i < c.Loads; i++ {
		facc = b.AddF(facc, b.LoadF(in, idx))
		if i != c.Loads-1 {
			b.MoveI(idx, b.AddI(idx, one))
		}
	}

	iacc := b.CopyI(gid)
	fc1 := b.ConstF(1.0001)
	fc2 := b.ConstF(0.0001)
	ic3 := b.ConstI(3)
	icBig := b.ConstI(1 << 20)

	for i := 0; i < c.IntAdd; i++ {
		iacc = b.AddI(iacc, ic3)
	}
	for i := 0; i < c.IntMul; i++ {
		iacc = b.MulI(iacc, ic3)
	}
	for i := 0; i < c.IntDiv; i++ {
		iacc = b.DivI(b.AddI(iacc, icBig), ic3)
	}
	for i := 0; i < c.IntBw; i++ {
		iacc = b.XorI(iacc, icBig)
	}
	for i := 0; i < c.FloatAdd; i++ {
		facc = b.AddF(facc, fc2)
	}
	for i := 0; i < c.FloatMul; i++ {
		facc = b.MulF(facc, fc1)
	}
	for i := 0; i < c.FloatDiv; i++ {
		facc = b.DivF(facc, fc1)
	}
	for i := 0; i < c.SF; i++ {
		// sqrt keeps values in [1, ∞) stable: facc starts >= 1.
		facc = b.SqrtF(facc)
	}
	zero := b.ConstI(0)
	for i := 0; i < c.Local; i++ {
		if i%2 == 0 {
			b.StoreLocal(zero, facc)
		} else {
			facc = b.LoadLocal(zero)
		}
	}

	// Fold the integer accumulator into the result so it is live.
	mixed := b.AddF(facc, b.MulF(b.IntToFloat(b.AndI(iacc, b.ConstI(1023))), b.ConstF(1e-7)))
	sIdx := b.CopyI(gid)
	for i := 0; i < c.Stores; i++ {
		b.StoreF(out, sIdx, mixed)
		if i != c.Stores-1 {
			b.MoveI(sIdx, b.AddI(sIdx, one))
		}
	}
	return b.Build()
}

// MustBuild panics on configuration errors (configs are static data).
func MustBuild(c Config) *kernelir.Kernel {
	k, err := Build(c)
	if err != nil {
		panic(err)
	}
	return k
}

// DefaultSet returns the training suite: ~50 configurations covering
// each feature class at three intensities, streaming kernels at three
// traffic levels, an intensity × traffic mix grid, and local-memory
// variants.
func DefaultSet() []Config {
	var out []Config
	add := func(c Config) { out = append(out, c) }

	// Single-class compute chains at three intensities.
	classes := []struct {
		tag string
		set func(c *Config, n int)
	}{
		{"int_add", func(c *Config, n int) { c.IntAdd = n }},
		{"int_mul", func(c *Config, n int) { c.IntMul = n }},
		{"int_div", func(c *Config, n int) { c.IntDiv = n }},
		{"int_bw", func(c *Config, n int) { c.IntBw = n }},
		{"float_add", func(c *Config, n int) { c.FloatAdd = n }},
		{"float_mul", func(c *Config, n int) { c.FloatMul = n }},
		{"float_div", func(c *Config, n int) { c.FloatDiv = n }},
		{"sf", func(c *Config, n int) { c.SF = n }},
	}
	for _, cl := range classes {
		for _, n := range []int{16, 64, 256} {
			c := Config{Name: fmt.Sprintf("mb_%s_%d", cl.tag, n), Loads: 1, Stores: 1, Traffic: 1}
			cl.set(&c, n)
			add(c)
		}
	}

	// Pure streaming at three load counts and two traffic levels.
	for _, loads := range []int{4, 16, 48} {
		for _, tf := range []float64{1, 0.25} {
			add(Config{
				Name:  fmt.Sprintf("mb_stream_%d_t%02.0f", loads, tf*100),
				Loads: loads, Stores: 1, FloatAdd: 2, Traffic: tf,
			})
		}
	}

	// Intensity × memory mix grid.
	for _, flops := range []int{8, 32, 128} {
		for _, loads := range []int{2, 8, 24} {
			add(Config{
				Name:     fmt.Sprintf("mb_mix_f%d_l%d", flops, loads),
				FloatAdd: flops / 2, FloatMul: flops / 2,
				IntAdd: flops / 4,
				Loads:  loads, Stores: 1, Traffic: 1,
			})
		}
	}

	// Local-memory traffic.
	add(Config{Name: "mb_local_16", Loads: 2, Stores: 1, Local: 16, FloatAdd: 8, Traffic: 1})
	add(Config{Name: "mb_local_64", Loads: 2, Stores: 1, Local: 64, FloatAdd: 8, Traffic: 1})

	// Stencil-like shapes: many nominal accesses, strong reuse (the
	// sobel/median pattern).
	for _, taps := range []int{9, 25} {
		add(Config{
			Name:  fmt.Sprintf("mb_stencil_%d", taps),
			Loads: taps, Stores: 1, FloatAdd: 2 * taps, IntAdd: taps,
			Traffic: 2 / float64(taps+1),
		})
	}

	// Division/SF with memory pressure (cross terms).
	add(Config{Name: "mb_div_mem", IntDiv: 24, Loads: 16, Stores: 1, Traffic: 1})
	add(Config{Name: "mb_sf_mem", SF: 24, Loads: 16, Stores: 1, Traffic: 1})

	return out
}

// Kernels builds every configuration in the set.
func Kernels(cfgs []Config) ([]*kernelir.Kernel, error) {
	out := make([]*kernelir.Kernel, len(cfgs))
	for i, c := range cfgs {
		k, err := Build(c)
		if err != nil {
			return nil, err
		}
		out[i] = k
	}
	return out, nil
}
