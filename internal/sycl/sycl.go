// Package sycl is a SYCL-flavoured runtime over the simulated GPU
// substrate: devices, in-order queues, command groups, parallel_for
// kernel launches and events with execution-status and profiling
// queries. Kernels are kernelir programs; launching one both executes it
// (the interpreter computes real results on host memory) and advances
// the device's virtual timeline according to the hardware model.
//
// The SYnergy API (internal/core) wraps this queue exactly the way the
// paper's synergy::queue wraps sycl::queue.
package sycl

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"synergy/internal/fault"
	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/kernelir"

	// Importing compile installs the closure-threaded executor as the
	// process-wide kernelir.Runner, so queue submissions run compiled.
	_ "synergy/internal/kernelir/compile"
)

// ErrSubmitFailed reports a command group the device rejected at launch
// (the simulated analogue of a failed kernel submission).
var ErrSubmitFailed = errors.New("sycl: kernel submission failed")

// SiteSubmit is this package's fault-injection site, consulted on the
// device thread immediately before each kernel starts (qualified per
// device by the hw.Device label).
const SiteSubmit = "sycl.submit"

func init() {
	fault.RegisterError("sycl.submit_failed", ErrSubmitFailed)
}

// Device represents one compute device (a simulated GPU).
type Device struct {
	hw *hw.Device
}

// NewDevice creates a device from a hardware spec.
func NewDevice(spec *hw.Spec) *Device {
	return &Device{hw: hw.NewDevice(spec)}
}

// WrapDevice adopts an existing virtual device (used when the scheduler
// hands out devices it also manages through NVML/SMI).
func WrapDevice(d *hw.Device) *Device { return &Device{hw: d} }

// Name returns the device name.
func (d *Device) Name() string { return d.hw.Spec().Name }

// HW exposes the underlying virtual device.
func (d *Device) HW() *hw.Device { return d.hw }

// EventStatus mirrors SYCL's info::event_command_status.
type EventStatus int

const (
	// Submitted: the command group is enqueued but not yet running.
	Submitted EventStatus = iota
	// Running: the kernel is executing on the device.
	Running
	// Complete: execution finished (possibly with an error).
	Complete
)

// String returns the status name.
func (s EventStatus) String() string {
	switch s {
	case Submitted:
		return "submitted"
	case Running:
		return "running"
	default:
		return "complete"
	}
}

// Event tracks one submitted command group, with profiling information
// in device virtual time once complete.
type Event struct {
	mu     sync.Mutex
	status EventStatus
	rec    hw.KernelRecord
	err    error
	done   chan struct{}
}

// Status returns the current execution status.
func (e *Event) Status() EventStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.status
}

// Wait blocks until the command group completes and returns its error,
// like wait_and_throw.
func (e *Event) Wait() error {
	<-e.done
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Profiling returns the kernel record (start/end in device virtual time,
// energy, frequency). It blocks until completion.
func (e *Event) Profiling() (hw.KernelRecord, error) {
	<-e.done
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rec, e.err
}

func (e *Event) setRunning() {
	e.mu.Lock()
	e.status = Running
	e.mu.Unlock()
}

func (e *Event) finish(rec hw.KernelRecord, err error) {
	e.mu.Lock()
	e.status = Complete
	e.rec = rec
	e.err = err
	e.mu.Unlock()
	close(e.done)
}

// finishWith reports through the queue's async handler before finishing.
func (q *Queue) finishWith(ev *Event, rec hw.KernelRecord, err error) {
	if err != nil {
		q.mu.Lock()
		h := q.asyncHandler
		q.mu.Unlock()
		if h != nil {
			h(err)
		}
	}
	ev.finish(rec, err)
}

// Handler is the command-group handler: command groups call ParallelFor
// exactly once to describe the kernel launch, optionally declaring
// dependencies on earlier events first.
type Handler struct {
	kernel *kernelir.Kernel
	args   kernelir.Args
	items  int
	width  int // row width for 2-D ranges (0 = 1-D)
	calls  int
	deps   []*Event
}

// DependsOn declares that this command group must not start before the
// given events complete (sycl::handler::depends_on). Only meaningful on
// out-of-order queues; in-order queues already serialise.
func (h *Handler) DependsOn(evs ...*Event) {
	h.deps = append(h.deps, evs...)
}

// ParallelFor records a kernel launch over [0, items) work-items with
// the given argument bindings.
func (h *Handler) ParallelFor(items int, k *kernelir.Kernel, args kernelir.Args) {
	h.calls++
	h.kernel = k
	h.args = args
	h.items = items
}

// ParallelFor2D records a kernel launch over an nx × ny range
// (sycl::range<2>): GlobalID2 in the kernel yields (x, y) without any
// index arithmetic.
func (h *Handler) ParallelFor2D(nx, ny int, k *kernelir.Kernel, args kernelir.Args) {
	h.calls++
	h.kernel = k
	h.args = args
	h.items = nx * ny
	h.width = nx
}

// CommandGroup is the function a Submit executes to build the launch,
// as in sycl::queue::submit.
type CommandGroup func(h *Handler)

// Queue is an in-order device queue: submissions execute asynchronously
// with respect to the host, in submission order on the device.
type Queue struct {
	dev *Device
	// ConstructedAt is the device virtual time when the queue was
	// created (the start of the coarse-grained profiling window, §4.2).
	constructedAt float64

	mu            sync.Mutex
	last          chan struct{} // done channel of the most recent submission
	functionalCap int
	outOfOrder    bool
	pending       sync.WaitGroup
	asyncHandler  func(error)
}

// NewQueue creates an in-order queue on the device.
func NewQueue(dev *Device) *Queue {
	return &Queue{dev: dev, constructedAt: dev.hw.Now()}
}

// NewOutOfOrderQueue creates a queue whose submissions are ordered only
// by the dependencies declared with Handler.DependsOn — the default
// sycl::queue semantics. Kernels still serialise on the device's single
// execution engine, but independent command groups may start in any
// order.
func NewOutOfOrderQueue(dev *Device) *Queue {
	return &Queue{dev: dev, constructedAt: dev.hw.Now(), outOfOrder: true}
}

// Device returns the queue's device.
func (q *Queue) Device() *Device { return q.dev }

// SetFunctionalCap bounds how many work-items the interpreter actually
// computes per launch (0 = all, the default). The virtual-time/energy
// model always accounts for the full launch; when a launch exceeds the
// cap only the first cap work-items produce results on host memory.
//
// This is a simulator-only escape hatch: a virtual GPU is ~10⁴× faster
// than the host interpreter, so launches sized for realistic kernel
// durations cannot be fully interpreted. Tests that verify numerical
// output must use launches within the cap (or leave it at 0).
func (q *Queue) SetFunctionalCap(n int) {
	if n < 0 {
		panic("sycl: negative functional cap")
	}
	q.mu.Lock()
	q.functionalCap = n
	q.mu.Unlock()
}

// SetAsyncHandler installs a callback invoked (from the device thread)
// whenever a command group fails asynchronously — the sycl::queue
// async_handler. Event.Wait still returns the error as well.
func (q *Queue) SetAsyncHandler(h func(error)) {
	q.mu.Lock()
	q.asyncHandler = h
	q.mu.Unlock()
}

// ConstructedAt returns the device time at queue construction.
func (q *Queue) ConstructedAt() float64 { return q.constructedAt }

// Submit enqueues a command group and returns its event immediately.
func (q *Queue) Submit(cg CommandGroup) (*Event, error) {
	return q.SubmitPre(nil, cg)
}

// SubmitPre enqueues a command group with a pre-kernel action that runs
// on the device thread immediately before the kernel starts — the hook
// the SYnergy layer uses for per-kernel frequency scaling (§4.4: SYCL
// has no way to run instructions just before a kernel starts, so the
// frequency change is implemented in the command-group execution).
func (q *Queue) SubmitPre(pre func() error, cg CommandGroup) (*Event, error) {
	return q.SubmitObserved(pre, nil, cg)
}

// SubmitObserved is SubmitPre with a post-kernel observer: post runs on
// the device thread after the kernel (or its failure) and strictly
// before the event completes. Running before Event.Wait can return is
// what makes observer side effects deterministic: on an in-order queue
// the next submission's hooks cannot interleave with this one's, so a
// telemetry track appended to from the observer sees submissions in
// submission order. rec is the zero KernelRecord when the kernel never
// occupied the device (pre-action or injected submit failure).
func (q *Queue) SubmitObserved(pre func() error, post func(rec hw.KernelRecord, err error), cg CommandGroup) (*Event, error) {
	h := &Handler{}
	cg(h)
	if h.calls == 0 {
		return nil, errors.New("sycl: command group did not call ParallelFor")
	}
	if h.calls > 1 {
		return nil, errors.New("sycl: command group called ParallelFor more than once")
	}
	if h.items <= 0 {
		return nil, fmt.Errorf("sycl: kernel %q launched with %d work-items", h.kernel.Name, h.items)
	}
	wl, err := features.KernelWorkload(h.kernel, int64(h.items))
	if err != nil {
		return nil, err
	}

	ev := &Event{done: make(chan struct{})}
	q.mu.Lock()
	var prev chan struct{}
	if !q.outOfOrder {
		prev = q.last
		q.last = ev.done
	}
	execItems := h.items
	if q.functionalCap > 0 && execItems > q.functionalCap {
		execItems = q.functionalCap
	}
	q.pending.Add(1)
	q.mu.Unlock()

	deps := h.deps
	go func() {
		defer q.pending.Done()
		// Every exit path reports through the observer (still on the
		// device thread) before the event completes.
		done := func(rec hw.KernelRecord, err error) {
			if post != nil {
				post(rec, err)
			}
			q.finishWith(ev, rec, err)
		}
		if prev != nil {
			<-prev // in-order queue: wait for the previous command
		}
		for _, dep := range deps {
			if err := dep.Wait(); err != nil {
				done(hw.KernelRecord{}, fmt.Errorf("sycl: dependency of %q failed: %w", h.kernel.Name, err))
				return
			}
		}
		ev.setRunning()
		if pre != nil {
			if err := pre(); err != nil {
				done(hw.KernelRecord{}, err)
				return
			}
		}
		// Injected submit faults fire here, after the pre-action (the
		// frequency change) and before the kernel occupies the device.
		site := SiteSubmit + ":" + q.dev.hw.Label()
		if delay, err := q.dev.hw.FaultInjector().Check(site); delay > 0 || err != nil {
			q.dev.hw.AdvanceIdle(delay)
			if err != nil {
				done(hw.KernelRecord{}, fmt.Errorf("sycl: submitting %q: %w", h.kernel.Name, err))
				return
			}
		}
		// Advance the virtual timeline per the hardware model...
		rec, err := q.dev.hw.ExecuteKernel(wl)
		if err != nil {
			done(hw.KernelRecord{}, err)
			return
		}
		// ...and compute the actual results on host memory.
		if err := kernelir.ExecuteGrid(h.kernel, h.args, execItems, h.width); err != nil {
			done(rec, err)
			return
		}
		done(rec, nil)
	}()
	return ev, nil
}

// Probe dry-runs a command group to discover the kernel and launch size
// it would submit, without executing anything. The SYnergy layer uses
// this to run model inference (frequency prediction) before submission.
func Probe(cg CommandGroup) (*kernelir.Kernel, int, error) {
	h := &Handler{}
	cg(h)
	if h.calls != 1 {
		return nil, 0, errors.New("sycl: command group must call ParallelFor exactly once")
	}
	return h.kernel, h.items, nil
}

// Wait blocks until every submitted command group has completed.
func (q *Queue) Wait() {
	q.mu.Lock()
	last := q.last
	q.mu.Unlock()
	if last != nil {
		<-last
	}
	q.pending.Wait()
}

// WaitContext blocks until every submitted command group has completed
// or the context is canceled, whichever comes first. The device work
// itself is not interrupted — the simulated device always finishes a
// submitted kernel — so the watcher goroutine it spawns terminates once
// the queue drains regardless of the context's fate.
func (q *Queue) WaitContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sycl: waiting for queue: %w", err)
	}
	if ctx.Done() == nil {
		q.Wait()
		return nil
	}
	done := make(chan struct{})
	go func() {
		q.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("sycl: waiting for queue: %w", ctx.Err())
	}
}
