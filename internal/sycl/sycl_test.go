package sycl

import (
	"sync"
	"testing"

	"synergy/internal/hw"
	"synergy/internal/kernelir"
)

func saxpyKernel(t testing.TB) *kernelir.Kernel {
	t.Helper()
	b := kernelir.NewBuilder("saxpy")
	x := b.BufferF32("x", kernelir.Read)
	y := b.BufferF32("y", kernelir.Read)
	z := b.BufferF32("z", kernelir.Write)
	a := b.ScalarF("a")
	gid := b.GlobalID()
	xv := b.LoadF(x, gid)
	yv := b.LoadF(y, gid)
	b.StoreF(z, gid, b.AddF(b.MulF(a, xv), yv))
	return b.MustBuild()
}

func saxpyArgs(n int) (kernelir.Args, []float32) {
	x := make([]float32, n)
	y := make([]float32, n)
	z := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
		y[i] = 1
	}
	return kernelir.Args{
		F32:     map[string][]float32{"x": x, "y": y, "z": z},
		ScalarF: map[string]float64{"a": 2},
	}, z
}

func TestQueueExecutesKernelAndComputesResults(t *testing.T) {
	q := NewQueue(NewDevice(hw.V100()))
	k := saxpyKernel(t)
	args, z := saxpyArgs(1024)
	ev, err := q.Submit(func(h *Handler) { h.ParallelFor(1024, k, args) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range z {
		if z[i] != float32(2*i+1) {
			t.Fatalf("z[%d] = %v, want %v", i, z[i], 2*i+1)
		}
	}
	rec, err := ev.Profiling()
	if err != nil {
		t.Fatal(err)
	}
	if rec.End <= rec.Start || rec.EnergyJ <= 0 {
		t.Fatalf("bad profiling record: %+v", rec)
	}
	if rec.Name != "saxpy" {
		t.Fatalf("record name %q", rec.Name)
	}
}

func TestEventStatusTransitions(t *testing.T) {
	q := NewQueue(NewDevice(hw.V100()))
	k := saxpyKernel(t)
	args, _ := saxpyArgs(1 << 16)
	ev, err := q.Submit(func(h *Handler) { h.ParallelFor(1<<16, k, args) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	if ev.Status() != Complete {
		t.Fatalf("status after Wait = %v, want complete", ev.Status())
	}
}

func TestInOrderQueueSerializesKernels(t *testing.T) {
	q := NewQueue(NewDevice(hw.V100()))
	k := saxpyKernel(t)
	var events []*Event
	for i := 0; i < 8; i++ {
		args, _ := saxpyArgs(4096)
		ev, err := q.Submit(func(h *Handler) { h.ParallelFor(4096, k, args) })
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	q.Wait()
	prevEnd := 0.0
	for i, ev := range events {
		rec, err := ev.Profiling()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Start < prevEnd {
			t.Fatalf("kernel %d started at %v before previous ended at %v", i, rec.Start, prevEnd)
		}
		prevEnd = rec.End
	}
}

func TestSubmitPreRunsBeforeKernel(t *testing.T) {
	dev := NewDevice(hw.V100())
	q := NewQueue(dev)
	k := saxpyKernel(t)
	args, _ := saxpyArgs(1024)
	low := dev.HW().Spec().MinCoreMHz()
	ev, err := q.SubmitPre(
		func() error { return dev.HW().SetAppClock(low) },
		func(h *Handler) { h.ParallelFor(1024, k, args) },
	)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ev.Profiling()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CoreMHz != low {
		t.Fatalf("kernel ran at %d MHz, want pre-set %d", rec.CoreMHz, low)
	}
}

func TestSubmitRejectsEmptyCommandGroup(t *testing.T) {
	q := NewQueue(NewDevice(hw.V100()))
	if _, err := q.Submit(func(h *Handler) {}); err == nil {
		t.Fatal("empty command group accepted")
	}
}

func TestSubmitRejectsDoubleParallelFor(t *testing.T) {
	q := NewQueue(NewDevice(hw.V100()))
	k := saxpyKernel(t)
	args, _ := saxpyArgs(16)
	_, err := q.Submit(func(h *Handler) {
		h.ParallelFor(16, k, args)
		h.ParallelFor(16, k, args)
	})
	if err == nil {
		t.Fatal("double ParallelFor accepted")
	}
}

func TestSubmitRejectsNonPositiveRange(t *testing.T) {
	q := NewQueue(NewDevice(hw.V100()))
	k := saxpyKernel(t)
	args, _ := saxpyArgs(16)
	if _, err := q.Submit(func(h *Handler) { h.ParallelFor(0, k, args) }); err == nil {
		t.Fatal("zero-range launch accepted")
	}
}

func TestKernelErrorSurfacesThroughEvent(t *testing.T) {
	q := NewQueue(NewDevice(hw.V100()))
	k := saxpyKernel(t)
	// Missing buffer binding: interpreter must fail, event must carry it.
	ev, err := q.Submit(func(h *Handler) {
		h.ParallelFor(16, k, kernelir.Args{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err == nil {
		t.Fatal("missing bindings did not surface an error")
	}
}

func TestQueueWaitWithNoSubmissions(t *testing.T) {
	q := NewQueue(NewDevice(hw.V100()))
	q.Wait() // must not block or panic
}

func TestConcurrentSubmitters(t *testing.T) {
	q := NewQueue(NewDevice(hw.V100()))
	k := saxpyKernel(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				args, _ := saxpyArgs(512)
				ev, err := q.Submit(func(h *Handler) { h.ParallelFor(512, k, args) })
				if err != nil {
					t.Error(err)
					return
				}
				if err := ev.Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := q.Device().HW().KernelCount(); n != 40 {
		t.Fatalf("kernel count %d, want 40", n)
	}
}

func TestTwoQueuesShareOneDeviceTimeline(t *testing.T) {
	dev := NewDevice(hw.V100())
	q1 := NewQueue(dev)
	q2 := NewQueue(dev)
	k := saxpyKernel(t)
	args1, _ := saxpyArgs(2048)
	args2, _ := saxpyArgs(2048)
	ev1, err := q1.Submit(func(h *Handler) { h.ParallelFor(2048, k, args1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ev1.Wait(); err != nil {
		t.Fatal(err)
	}
	ev2, err := q2.Submit(func(h *Handler) { h.ParallelFor(2048, k, args2) })
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := ev2.Profiling()
	if err != nil {
		t.Fatal(err)
	}
	rec1, _ := ev1.Profiling()
	if rec2.Start < rec1.End {
		t.Fatal("kernels on two queues overlapped on one device")
	}
}

func TestOutOfOrderQueueDependencies(t *testing.T) {
	dev := NewDevice(hw.V100())
	q := NewOutOfOrderQueue(dev)
	k := saxpyKernel(t)
	args1, _ := saxpyArgs(4096)
	ev1, err := q.Submit(func(h *Handler) { h.ParallelFor(4096, k, args1) })
	if err != nil {
		t.Fatal(err)
	}
	args2, _ := saxpyArgs(4096)
	ev2, err := q.Submit(func(h *Handler) {
		h.DependsOn(ev1)
		h.ParallelFor(4096, k, args2)
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ev2.Profiling()
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := ev1.Profiling()
	if r2.Start < r1.End {
		t.Fatalf("dependent kernel started at %v before dependency ended at %v", r2.Start, r1.End)
	}
}

func TestOutOfOrderQueueIndependentSubmissionsComplete(t *testing.T) {
	dev := NewDevice(hw.V100())
	q := NewOutOfOrderQueue(dev)
	k := saxpyKernel(t)
	var events []*Event
	for i := 0; i < 12; i++ {
		args, _ := saxpyArgs(1024)
		ev, err := q.Submit(func(h *Handler) { h.ParallelFor(1024, k, args) })
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	q.Wait()
	for i, ev := range events {
		if ev.Status() != Complete {
			t.Fatalf("event %d not complete after Wait", i)
		}
		if err := ev.Wait(); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	if n := dev.HW().KernelCount(); n != 12 {
		t.Fatalf("kernel count %d, want 12", n)
	}
}

func TestDependencyFailurePropagates(t *testing.T) {
	dev := NewDevice(hw.V100())
	q := NewOutOfOrderQueue(dev)
	k := saxpyKernel(t)
	// First submission fails (missing bindings).
	ev1, err := q.Submit(func(h *Handler) { h.ParallelFor(16, k, kernelir.Args{}) })
	if err != nil {
		t.Fatal(err)
	}
	args, _ := saxpyArgs(16)
	ev2, err := q.Submit(func(h *Handler) {
		h.DependsOn(ev1)
		h.ParallelFor(16, k, args)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev2.Wait(); err == nil {
		t.Fatal("dependency failure did not propagate")
	}
}

func TestInOrderQueueIgnoresWaitRace(t *testing.T) {
	// Wait on an in-order queue returns only after the last submission.
	dev := NewDevice(hw.V100())
	q := NewQueue(dev)
	k := saxpyKernel(t)
	for i := 0; i < 5; i++ {
		args, _ := saxpyArgs(2048)
		if _, err := q.Submit(func(h *Handler) { h.ParallelFor(2048, k, args) }); err != nil {
			t.Fatal(err)
		}
	}
	q.Wait()
	if n := dev.HW().KernelCount(); n != 5 {
		t.Fatalf("kernel count %d after Wait, want 5", n)
	}
}

func TestParallelFor2D(t *testing.T) {
	dev := NewDevice(hw.V100())
	q := NewQueue(dev)
	b := kernelir.NewBuilder("tag2d")
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	_, y := b.GlobalID2()
	b.StoreF(out, gid, b.IntToFloat(y))
	k := b.MustBuild()

	const nx, ny = 16, 4
	buf := make([]float32, nx*ny)
	ev, err := q.Submit(func(h *Handler) {
		h.ParallelFor2D(nx, ny, k, kernelir.Args{F32: map[string][]float32{"out": buf}})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	for yy := 0; yy < ny; yy++ {
		for xx := 0; xx < nx; xx++ {
			if buf[yy*nx+xx] != float32(yy) {
				t.Fatalf("row %d col %d = %v", yy, xx, buf[yy*nx+xx])
			}
		}
	}
	rec, _ := ev.Profiling()
	if rec.Name != "tag2d" {
		t.Fatalf("record name %q", rec.Name)
	}
}

func TestAsyncHandlerReceivesErrors(t *testing.T) {
	dev := NewDevice(hw.V100())
	q := NewQueue(dev)
	errs := make(chan error, 4)
	q.SetAsyncHandler(func(err error) { errs <- err })
	k := saxpyKernel(t)
	// Failing submission (missing bindings).
	ev, err := q.Submit(func(h *Handler) { h.ParallelFor(16, k, kernelir.Args{}) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err == nil {
		t.Fatal("expected failure")
	}
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("handler received nil error")
		}
	default:
		t.Fatal("async handler not invoked")
	}
	// Successful submission does not invoke the handler.
	args, _ := saxpyArgs(64)
	ev, err = q.Submit(func(h *Handler) { h.ParallelFor(64, k, args) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-errs:
		t.Fatal("handler invoked on success")
	default:
	}
}
