package model

import (
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
)

// trainingSet collects a (cached) training set on the V100 model.
func trainingSet(t *testing.T, spec *hw.Spec) *TrainingSet {
	t.Helper()
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		t.Fatal(err)
	}
	ts, err := CollectTraining(spec, ks, 4)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestCollectTrainingShape(t *testing.T) {
	spec := hw.V100()
	ts := trainingSet(t, spec)
	nFreq := (len(spec.CoreFreqsMHz) + 3) / 4
	nKern := len(microbench.DefaultSet())
	if got, want := len(ts.Samples), nFreq*nKern; got != want {
		t.Fatalf("training set has %d samples, want %d (%d kernels x %d freqs)", got, want, nKern, nFreq)
	}
	for _, s := range ts.Samples {
		if s.TimeNs <= 0 || s.EnergyNanoJ <= 0 {
			t.Fatalf("sample %s@%d has non-positive measurements", s.Kernel, s.FreqMHz)
		}
		if s.EDP() <= 0 || s.ED2P() <= 0 {
			t.Fatalf("sample %s@%d has non-positive products", s.Kernel, s.FreqMHz)
		}
	}
}

func TestTrainAllAlgorithms(t *testing.T) {
	spec := hw.V100()
	ts := trainingSet(t, spec)
	for _, algo := range AllAlgos {
		m, err := Train(spec, ts, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		// Predictions must be finite over the whole curve for a
		// benchmark-like feature vector.
		bm, err := benchsuite.ByName("matmul")
		if err != nil {
			t.Fatal(err)
		}
		curve := m.PredictCurve(features.MustExtract(bm.Kernel))
		if len(curve) != len(spec.CoreFreqsMHz) {
			t.Fatalf("%s: curve has %d points", algo, len(curve))
		}
		for _, p := range curve {
			if p.TimeNs != p.TimeNs || p.EnergyNanoJ != p.EnergyNanoJ {
				t.Fatalf("%s: NaN prediction at %d MHz", algo, p.FreqMHz)
			}
		}
	}
}

func TestTrainRejectsUnknownAlgorithm(t *testing.T) {
	spec := hw.V100()
	ts := trainingSet(t, spec)
	if _, err := Train(spec, ts, "GradientBoost"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSearchFrequencyMaxPerf(t *testing.T) {
	// The time model must learn that higher clocks are faster: MAX_PERF
	// predictions land in the top of the table.
	spec := hw.V100()
	ts := trainingSet(t, spec)
	m, err := Train(spec, ts, AlgoLinear)
	if err != nil {
		t.Fatal(err)
	}
	// For a strongly compute-bound kernel (t ∝ 1/f) the linear model
	// must push MAX_PERF to the top of the table.
	bm, err := benchsuite.ByName("lin_reg_coeff")
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.SearchFrequency(features.MustExtract(bm.Kernel), metrics.MaxPerf)
	if err != nil {
		t.Fatal(err)
	}
	if f < spec.MaxCoreMHz()-200 {
		t.Errorf("lin_reg_coeff: MAX_PERF predicted %d MHz, want near %d", f, spec.MaxCoreMHz())
	}
	// For flatter kernels the frequency is less determined, but the
	// achieved time must be near-optimal — the paper's error metric
	// compares objective values at the predicted frequency (§8.3).
	errs, err := EvaluateModels(m, suiteCases(t), []metrics.Target{metrics.MaxPerf})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errs {
		if e.APE > 0.10 {
			t.Errorf("%s: MAX_PERF objective APE %.3f, want near-optimal time", e.Bench, e.APE)
		}
	}
}

func TestSearchFrequencyRejectsInvalidTarget(t *testing.T) {
	spec := hw.V100()
	ts := trainingSet(t, spec)
	m, err := Train(spec, ts, AlgoLinear)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SearchFrequency(features.Vector{}, metrics.Target{Kind: metrics.KindES, X: 0}); err == nil {
		t.Fatal("invalid target accepted")
	}
}

// TestForestPredictsEnergyOptimaAccurately is the headline quality bar:
// the Random Forest energy model must place MIN_ENERGY frequencies so
// that the achieved energy is within a few percent of the true optimum
// (Table 2 reports MAPE 0.066 for MIN_ENERGY with Random Forest).
func TestForestPredictsEnergyOptimaAccurately(t *testing.T) {
	spec := hw.V100()
	ts := trainingSet(t, spec)
	m, err := Train(spec, ts, AlgoForest)
	if err != nil {
		t.Fatal(err)
	}
	cases := suiteCases(t)
	errs, err := EvaluateModels(m, cases, []metrics.Target{metrics.MinEnergy})
	if err != nil {
		t.Fatal(err)
	}
	worst, sum := 0.0, 0.0
	for _, e := range errs {
		sum += e.APE
		if e.APE > worst {
			worst = e.APE
		}
	}
	mape := sum / float64(len(errs))
	if mape > 0.10 {
		t.Errorf("RandomForest MIN_ENERGY MAPE %.3f, want <= 0.10 (paper: 0.066)", mape)
	}
	if worst > 0.35 {
		t.Errorf("RandomForest MIN_ENERGY worst-case APE %.3f too high", worst)
	}
}

func suiteCases(t *testing.T) []BenchCase {
	t.Helper()
	var cases []BenchCase
	for _, b := range benchsuite.All() {
		cases = append(cases, BenchCase{Name: b.Name, Kernel: b.Kernel, Items: b.CharItems})
	}
	return cases
}

func TestBuildTable2Layout(t *testing.T) {
	spec := hw.V100()
	ts := trainingSet(t, spec)
	rows, raw, err := BuildTable2(spec, ts, suiteCases(t), metrics.StandardTargets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(metrics.StandardTargets) {
		t.Fatalf("%d rows, want %d", len(rows), len(metrics.StandardTargets))
	}
	for _, row := range rows {
		want := AlgosFor(row.Target)
		for _, algo := range want {
			if !row.Cells[algo].Computed {
				t.Errorf("%s: missing cell for %s", row.Target, algo)
			}
		}
		for algo := range row.Cells {
			found := false
			for _, w := range want {
				if w == algo {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: unexpected cell for %s (paper marks it '-')", row.Target, algo)
			}
		}
		if row.Best == "" {
			t.Errorf("%s: no best algorithm", row.Target)
		}
	}
	if len(raw) == 0 {
		t.Fatal("no raw Fig. 9 errors returned")
	}
}

func TestAlgosForFamilies(t *testing.T) {
	if got := AlgosFor(metrics.MaxPerf); len(got) != 3 || got[0] != AlgoLinear {
		t.Errorf("MAX_PERF algos = %v", got)
	}
	for _, tgt := range []metrics.Target{metrics.MinEnergy, metrics.MinEDP, metrics.MinED2P, metrics.ES(25)} {
		for _, a := range AlgosFor(tgt) {
			if a == AlgoLasso {
				t.Errorf("%s: Lasso should not be evaluated for energy-family targets", tgt)
			}
		}
	}
	for _, a := range AlgosFor(metrics.PL(50)) {
		if a == AlgoSVR {
			t.Errorf("PL_50: SVR should not be evaluated for time-family targets")
		}
	}
}

func TestGroundTruthSweepUnits(t *testing.T) {
	spec := hw.V100()
	bm, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	gt, err := GroundTruthSweep(spec, bm.Kernel, bm.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	base := gt.BaselinePoint()
	// Per-item time for a streaming kernel is well under a microsecond
	// and above a hundredth of a nanosecond.
	if base.TimeSec < 0.01 || base.TimeSec > 1000 {
		t.Fatalf("per-item time %v ns out of plausible range", base.TimeSec)
	}
}

func TestDefaultAdvisor(t *testing.T) {
	spec := hw.V100()
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		t.Fatal(err)
	}
	adv, err := DefaultAdvisor(spec, ks, 8)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := benchsuite.ByName("median")
	if err != nil {
		t.Fatal(err)
	}
	f, err := adv.AdviseCoreFreq(bm.Kernel, 1<<20, metrics.ES(50))
	if err != nil {
		t.Fatal(err)
	}
	if !spec.SupportsCoreFreq(f) {
		t.Fatalf("advised frequency %d not supported", f)
	}
	// ES_50 for a memory-leaning kernel must scale down from default.
	if f >= spec.DefaultCoreMHz {
		t.Errorf("ES_50 for median advised %d MHz, expected below the %d default", f, spec.DefaultCoreMHz)
	}
}

// TestAdvisorOnMI100 exercises the per-device deployment on the AMD
// backend: only 16 DPM states, no default clock (baseline = max).
func TestAdvisorOnMI100(t *testing.T) {
	spec := hw.MI100()
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		t.Fatal(err)
	}
	adv, err := DefaultAdvisor(spec, ks, 1) // 16 states: full sweep
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"median", "matmul", "vec_add"} {
		bm, err := benchsuite.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := adv.AdviseCoreFreq(bm.Kernel, int(bm.CharItems), metrics.ES(50))
		if err != nil {
			t.Fatal(err)
		}
		if !spec.SupportsCoreFreq(f) {
			t.Fatalf("%s: unsupported advice %d", name, f)
		}
		if f >= spec.MaxCoreMHz() {
			t.Errorf("%s: ES_50 advised the maximum frequency; expected down-scaling", name)
		}
		// Achieved energy at the advised frequency must beat baseline.
		gt, err := GroundTruthSweep(spec, bm.Kernel, bm.CharItems)
		if err != nil {
			t.Fatal(err)
		}
		p, ok := gt.PointAt(f)
		if !ok {
			t.Fatal("advice not in sweep")
		}
		base := gt.BaselinePoint()
		if p.EnergyJ >= base.EnergyJ {
			t.Errorf("%s: advised %d MHz saves no energy on MI100", name, f)
		}
	}
}
