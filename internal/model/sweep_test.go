package model

import (
	"strings"
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/sweep"
)

// TestGroundTruthSweepRejectsNonPositiveItems is the regression test
// for the silent ±Inf/NaN per-item normalisation: a non-positive launch
// size must surface a descriptive error, not poisoned metrics.
func TestGroundTruthSweepRejectsNonPositiveItems(t *testing.T) {
	spec := hw.V100()
	b, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	for _, items := range []int64{0, -1} {
		_, err := GroundTruthSweep(spec, b.Kernel, items)
		if err == nil {
			t.Fatalf("items=%d: expected error", items)
		}
		if !strings.Contains(err.Error(), "launch size must be positive") {
			t.Errorf("items=%d: undescriptive error %q", items, err)
		}
	}
}

// TestCollectTrainingMatchesGroundTruth proves the engine-backed
// training campaign subsamples the exact per-item measurements a direct
// ground-truth sweep yields: same frequencies, bit-identical ns/nJ.
func TestCollectTrainingMatchesGroundTruth(t *testing.T) {
	spec := hw.A100()
	b, err := benchsuite.ByName("matmul")
	if err != nil {
		t.Fatal(err)
	}
	const stride = 3
	ts, err := CollectTraining(spec, []*kernelir.Kernel{b.Kernel}, stride)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := sweep.GroundTruth(spec, b.Kernel, TrainingItems)
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i := 0; i < len(gt.Points); i += stride {
		want = append(want, i)
	}
	if len(ts.Samples) != len(want) {
		t.Fatalf("got %d samples, want %d", len(ts.Samples), len(want))
	}
	for si, pi := range want {
		s, p := ts.Samples[si], gt.Points[pi]
		if s.FreqMHz != p.FreqMHz || s.TimeNs != p.TimeSec || s.EnergyNanoJ != p.EnergyJ {
			t.Errorf("sample %d: (%d MHz, %g ns, %g nJ) != ground-truth point %d (%d MHz, %g, %g)",
				si, s.FreqMHz, s.TimeNs, s.EnergyNanoJ, pi, p.FreqMHz, p.TimeSec, p.EnergyJ)
		}
	}
}
