// Package model implements SYnergy's modelling methodology (§6): the
// training phase builds four single-target regressors — execution time,
// energy, EDP and ED2P — over (static feature vector, frequency) inputs
// gathered by sweeping micro-benchmarks across the device's frequency
// table; the prediction phase extracts the features of a new kernel,
// predicts all four metrics at every supported frequency and searches
// the predicted curves for the configuration that optimises the
// user-selected energy target.
package model

import (
	"fmt"
	"math"

	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
	"synergy/internal/ml"
	"synergy/internal/sweep"
)

// Sample is one training observation: a kernel's static features, a
// frequency, and the measured per-item metrics (normalised per work-item
// so launches of different sizes are comparable).
type Sample struct {
	Kernel   string
	Features features.Vector
	FreqMHz  int
	// TimeNs and EnergyNanoJ are per-work-item time and energy.
	TimeNs, EnergyNanoJ float64
}

// EDP returns the per-item energy-delay product.
func (s Sample) EDP() float64 { return s.EnergyNanoJ * s.TimeNs }

// ED2P returns the per-item energy-delay-squared product.
func (s Sample) ED2P() float64 { return s.EnergyNanoJ * s.TimeNs * s.TimeNs }

// TrainingSet is the table T = (k⃗, f, e, t, edp, ed2p) of §6.1.
type TrainingSet struct {
	Device  string
	Samples []Sample
}

// TrainingItems is the launch size used when measuring micro-benchmarks.
const TrainingItems = 1 << 22

// CollectTraining sweeps every kernel over the device's frequency table
// (subsampled by freqStride >= 1) and records per-item time and energy.
// This is the measurement campaign of §6.1 step ② — on the simulator it
// queries the device model directly, through the shared sweep engine:
// the kernels' full-resolution sweeps are computed concurrently (and
// memoized for everyone else), then subsampled by the stride.
func CollectTraining(spec *hw.Spec, kernels []*kernelir.Kernel, freqStride int) (*TrainingSet, error) {
	if freqStride < 1 {
		freqStride = 1
	}
	if err := sweep.Prefetch(spec, kernels, TrainingItems); err != nil {
		return nil, err
	}
	ts := &TrainingSet{Device: spec.Name}
	for _, k := range kernels {
		v, err := features.Extract(k)
		if err != nil {
			return nil, err
		}
		gt, err := sweep.GroundTruth(spec, k, TrainingItems)
		if err != nil {
			return nil, err
		}
		// Sweep points are in ascending frequency-table order and carry
		// per-item ns/nJ, exactly the sample units of T.
		for i := 0; i < len(gt.Points); i += freqStride {
			p := gt.Points[i]
			ts.Samples = append(ts.Samples, Sample{
				Kernel:      k.Name,
				Features:    v,
				FreqMHz:     p.FreqMHz,
				TimeNs:      p.TimeSec,
				EnergyNanoJ: p.EnergyJ,
			})
		}
	}
	if len(ts.Samples) == 0 {
		return nil, fmt.Errorf("model: empty training set")
	}
	return ts, nil
}

// Algorithm names accepted by NewRegressor.
const (
	AlgoLinear = "Linear"
	AlgoLasso  = "Lasso"
	AlgoForest = "RandomForest"
	AlgoSVR    = "SVR_RBF"
)

// TimeAlgos and EnergyAlgos list which algorithms the paper trains for
// the performance model and for the energy/EDP/ED2P models (§8.3).
var (
	TimeAlgos   = []string{AlgoLinear, AlgoLasso, AlgoForest}
	EnergyAlgos = []string{AlgoLinear, AlgoForest, AlgoSVR}
)

// NewRegressor instantiates a fresh regressor by algorithm name.
func NewRegressor(algo string) (ml.Regressor, error) {
	switch algo {
	case AlgoLinear:
		return &ml.Linear{}, nil
	case AlgoLasso:
		return &ml.Lasso{Alpha: 0.001}, nil
	case AlgoForest:
		return &ml.Forest{Trees: 80, Seed: 7}, nil
	case AlgoSVR:
		return &ml.SVR{C: 100, Gamma: 0.5}, nil
	default:
		return nil, fmt.Errorf("model: unknown algorithm %q", algo)
	}
}

// kernelScale is the per-work-item instruction count used to normalise
// targets: the models learn per-instruction time/energy as a function of
// the instruction *mix* and the frequency, which puts every kernel on a
// comparable magnitude. Target selection (argmin, ES/PL intervals) is
// invariant to this per-kernel positive rescaling.
func kernelScale(v features.Vector) float64 {
	s := v.Total()
	if s < 1 {
		s = 1
	}
	return s
}

// rowLen is the model-input width: the ten Table-1 features as mix
// fractions, frequency in GHz, its reciprocal, and the per-fraction /f
// interaction terms.
const rowLen = 2*10 + 2

// featuresRow builds the model input: the ten Table-1 features as mix
// fractions, the core frequency in GHz, its reciprocal, and the
// per-fraction /f interaction terms. The interactions encode the
// roofline structure (compute time ~mix/f, memory time ~mix), which is
// what lets the linear model be the strongest performance predictor
// (Table 2) while the energy targets — nonlinear in f through V(f)² —
// favour the forest.
func featuresRow(v features.Vector, freqMHz int) []float64 {
	row := make([]float64, rowLen)
	featuresRowInto(row, v, freqMHz)
	return row
}

// featuresRowInto fills a rowLen-sized scratch row in place — the
// allocation-free form the prediction hot path uses (a stack array
// instead of Vector.Slice, which allocates).
func featuresRowInto(row []float64, v features.Vector, freqMHz int) {
	ks := [10]float64{
		v.IntAdd, v.IntMul, v.IntDiv, v.IntBw,
		v.FloatAdd, v.FloatMul, v.FloatDiv, v.SF,
		v.GlAccess, v.LocAccess,
	}
	scale := 0.0
	for _, k := range ks {
		scale += k
	}
	if scale < 1 {
		scale = 1
	}
	fGHz := float64(freqMHz) / 1000
	for i, k := range ks {
		row[i] = k / scale
	}
	row[len(ks)] = fGHz
	row[len(ks)+1] = 1 / fGHz
	for i, k := range ks {
		row[len(ks)+2+i] = k / scale / fGHz
	}
}

// Models bundles the four single-target models of §6.1 step ③.
type Models struct {
	Spec   *hw.Spec
	Algo   string
	Time   ml.Regressor
	Energy ml.Regressor
	EDP    ml.Regressor
	ED2P   ml.Regressor
}

// Train fits the four models with the given algorithm on the set.
func Train(spec *hw.Spec, ts *TrainingSet, algo string) (*Models, error) {
	x := make([][]float64, len(ts.Samples))
	yT := make([]float64, len(ts.Samples))
	yE := make([]float64, len(ts.Samples))
	yEDP := make([]float64, len(ts.Samples))
	yED2P := make([]float64, len(ts.Samples))
	for i, s := range ts.Samples {
		x[i] = featuresRow(s.Features, s.FreqMHz)
		sc := kernelScale(s.Features)
		yT[i] = s.TimeNs / sc
		yE[i] = s.EnergyNanoJ / sc
		yEDP[i] = s.EDP() / (sc * sc)
		// ED2P spans orders of magnitude across kernels even after
		// per-instruction normalisation (the t² factor), so it is
		// fitted in log space: relative errors become uniform and the
		// frequency argmin — invariant under the monotone transform —
		// is located far more reliably.
		yED2P[i] = math.Log(s.ED2P() / (sc * sc * sc))
	}
	m := &Models{Spec: spec, Algo: algo}
	for _, tgt := range []struct {
		y   []float64
		dst *ml.Regressor
	}{
		{yT, &m.Time}, {yE, &m.Energy}, {yEDP, &m.EDP}, {yED2P, &m.ED2P},
	} {
		r, err := NewRegressor(algo)
		if err != nil {
			return nil, err
		}
		if err := r.Fit(x, tgt.y); err != nil {
			return nil, fmt.Errorf("model: fitting %s: %w", algo, err)
		}
		*tgt.dst = r
	}
	return m, nil
}

// PredictedPoint carries the four metric predictions at one frequency.
type PredictedPoint struct {
	FreqMHz                int
	TimeNs, EnergyNanoJ    float64
	EDPPred, ED2PPredicted float64
}

// Check verifies the bundle is able to serve predictions: the device
// spec is present and all four models are in a fitted state. A bundle
// that was never trained — or was loaded from a corrupt artifact — is
// refused with a descriptive error here instead of silently predicting
// garbage (an unfit forest, for instance, used to return a flat 0).
func (m *Models) Check() error {
	if m.Spec == nil {
		return fmt.Errorf("model: bundle has no device spec")
	}
	for _, part := range []struct {
		name string
		r    ml.Regressor
	}{
		{"time", m.Time}, {"energy", m.Energy}, {"EDP", m.EDP}, {"ED2P", m.ED2P},
	} {
		if part.r == nil {
			return fmt.Errorf("model: bundle for %s is missing the %s model", m.Spec.Name, part.name)
		}
		if err := ml.CheckFitted(part.r); err != nil {
			return fmt.Errorf("model: %s model for %s cannot predict: %w", part.name, m.Spec.Name, err)
		}
	}
	return nil
}

// PredictCurve evaluates the four models at every supported frequency
// for the kernel's feature vector (§6.2 steps ④–⑤).
func (m *Models) PredictCurve(v features.Vector) []PredictedPoint {
	c := m.predictor().Curve(v)
	out := make([]PredictedPoint, len(c))
	copy(out, c)
	return out
}

// SearchFrequency runs the frequency search of §6.2 step ⑥: it scans the
// predicted curves and applies the target definition. MIN_EDP and
// MIN_ED2P use their dedicated models; the remaining targets operate on
// the predicted time/energy curves through the metrics definitions.
func (m *Models) SearchFrequency(v features.Vector, target metrics.Target) (int, error) {
	p, err := m.NewPredictor()
	if err != nil {
		return 0, err
	}
	a, err := p.Advise(v, target)
	if err != nil {
		return 0, err
	}
	return a.FreqMHz, nil
}

func argminFreq(curve []PredictedPoint, f func(PredictedPoint) float64) int {
	best := curve[0].FreqMHz
	bestV := f(curve[0])
	for _, p := range curve[1:] {
		if v := f(p); v < bestV {
			best, bestV = p.FreqMHz, v
		}
	}
	return best
}

// Advisor adapts Models to the core.FrequencyAdvisor interface used by
// target-annotated queue submissions. Feature extraction happens here —
// in the real system it is the compiler pass output compiled into the
// binary.
type Advisor struct {
	Models *Models
}

// AdviseCoreFreq implements core.FrequencyAdvisor.
func (a *Advisor) AdviseCoreFreq(k *kernelir.Kernel, items int, target metrics.Target) (int, error) {
	v, err := features.Extract(k)
	if err != nil {
		return 0, err
	}
	return a.Models.SearchFrequency(v, target)
}

// DefaultAdvisor trains the paper's per-device deployment in one call:
// micro-benchmark training set, best-in-class algorithms (Random Forest
// — the Table-2 winner for the energy-family targets — for all four
// models by default).
func DefaultAdvisor(spec *hw.Spec, kernels []*kernelir.Kernel, freqStride int) (*Advisor, error) {
	ts, err := CollectTraining(spec, kernels, freqStride)
	if err != nil {
		return nil, err
	}
	m, err := Train(spec, ts, AlgoForest)
	if err != nil {
		return nil, err
	}
	return &Advisor{Models: m}, nil
}
