package model

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"synergy/internal/hw"
	"synergy/internal/ml"
)

// bundleState serialises the four trained models with their device and
// algorithm, so the §3.2 installation step (train once per device) can
// ship its output as a single JSON artifact.
type bundleState struct {
	Device string          `json:"device"`
	Algo   string          `json:"algo"`
	Time   json.RawMessage `json:"time"`
	Energy json.RawMessage `json:"energy"`
	EDP    json.RawMessage `json:"edp"`
	ED2P   json.RawMessage `json:"ed2p"`
}

// deviceKey maps a spec to the identifier used by hw.SpecByName.
func deviceKey(spec *hw.Spec) (string, error) {
	for key, s := range hw.BuiltinSpecs() {
		if s.Name == spec.Name {
			return key, nil
		}
	}
	return "", fmt.Errorf("model: device %q is not a builtin spec", spec.Name)
}

// SaveModels writes the trained bundle to w.
func SaveModels(w io.Writer, m *Models) error {
	key, err := deviceKey(m.Spec)
	if err != nil {
		return err
	}
	st := bundleState{Device: key, Algo: m.Algo}
	for _, part := range []struct {
		dst *json.RawMessage
		r   ml.Regressor
	}{
		{&st.Time, m.Time}, {&st.Energy, m.Energy}, {&st.EDP, m.EDP}, {&st.ED2P, m.ED2P},
	} {
		var buf bytes.Buffer
		if err := ml.SaveModel(&buf, part.r); err != nil {
			return err
		}
		*part.dst = json.RawMessage(buf.Bytes())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(st)
}

// LoadModels reads a bundle written by SaveModels.
func LoadModels(r io.Reader) (*Models, error) {
	var st bundleState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("model: decoding bundle: %w", err)
	}
	spec, err := hw.SpecByName(st.Device)
	if err != nil {
		return nil, err
	}
	m := &Models{Spec: spec, Algo: st.Algo}
	for _, part := range []struct {
		src json.RawMessage
		dst *ml.Regressor
	}{
		{st.Time, &m.Time}, {st.Energy, &m.Energy}, {st.EDP, &m.EDP}, {st.ED2P, &m.ED2P},
	} {
		if len(part.src) == 0 {
			return nil, fmt.Errorf("model: bundle missing a target model")
		}
		reg, err := ml.LoadModel(bytes.NewReader(part.src))
		if err != nil {
			return nil, err
		}
		*part.dst = reg
	}
	// Refuse bundles that decode but cannot predict (e.g. a forest with
	// no trees): serving zero-frequency advice from a corrupt bundle is
	// strictly worse than failing the load.
	if err := m.Check(); err != nil {
		return nil, err
	}
	return m, nil
}

// Fingerprint returns a short content fingerprint of the bundle: the
// truncated SHA-256 of its canonical SaveModels serialization. Two
// bundles fingerprint equal exactly when they would serve identical
// predictions, so the serve daemon can echo the fingerprint on every
// response and prove reload atomicity (no response computed from a mix
// of two bundles).
func (m *Models) Fingerprint() (string, error) {
	var buf bytes.Buffer
	if err := SaveModels(&buf, m); err != nil {
		return "", fmt.Errorf("model: fingerprinting bundle: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:6]), nil
}
