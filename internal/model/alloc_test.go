//go:build !race

package model

import (
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
)

// The whole-curve prediction — featuresRowInto per frequency plus the
// four batch model evaluations — is the serve daemon's hot path and
// must not allocate once the session scratch exists. (Skipped under
// -race, whose instrumentation allocates.)
func TestPredictorCurveZeroAlloc(t *testing.T) {
	m := forestBundle(t, hw.V100())
	p, err := m.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchsuite.ByName("matmul")
	if err != nil {
		t.Fatal(err)
	}
	v := bundleFeatures(t, b)
	p.Curve(v) // warm
	var sink float64
	allocs := testing.AllocsPerRun(200, func() {
		c := p.Curve(v)
		sink += c[0].EnergyNanoJ
	})
	if allocs != 0 {
		t.Errorf("Predictor.Curve allocates %v per run, want 0", allocs)
	}
	_ = sink
}
