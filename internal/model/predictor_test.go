package model

import (
	"math"
	"sync"
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/microbench"
	"synergy/internal/ml"
)

var (
	forestBundleMu sync.Mutex
	forestBundles  = map[string]*Models{}
)

// forestBundle trains a forest bundle on the device with a coarse
// training stride, once per device per test binary (forest fitting is
// the expensive part; the sweeps themselves are memoized
// full-resolution in the sweep engine).
func forestBundle(t testing.TB, spec *hw.Spec) *Models {
	t.Helper()
	forestBundleMu.Lock()
	defer forestBundleMu.Unlock()
	if m, ok := forestBundles[spec.Name]; ok {
		return m
	}
	ks, err := microbench.Kernels(microbench.DefaultSet())
	if err != nil {
		t.Fatal(err)
	}
	ts, err := CollectTraining(spec, ks, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(spec, ts, AlgoForest)
	if err != nil {
		t.Fatal(err)
	}
	forestBundles[spec.Name] = m
	return m
}

// The flattened forest is the production predictor; the pointer trees it
// was built from stay around as the differential oracle. Across every
// builtin device, every suite benchmark and every supported frequency,
// all four target models must agree bit-for-bit.
func TestFlattenedForestMatchesReferenceAcrossDevices(t *testing.T) {
	devices := hw.BuiltinSpecs()
	freqStep := 1
	if raceEnabled {
		// Race instrumentation makes the full 4-device x 23-benchmark x
		// full-frequency-table matrix prohibitively slow; bit-exactness
		// is established by the !race run, so keep a representative
		// slice alive under the detector.
		devices = map[string]*hw.Spec{"v100": hw.V100()}
		freqStep = 8
	}
	for name, spec := range devices {
		t.Run(name, func(t *testing.T) {
			m := forestBundle(t, spec)
			forests := map[string]*ml.Forest{
				"time": m.Time.(*ml.Forest), "energy": m.Energy.(*ml.Forest),
				"edp": m.EDP.(*ml.Forest), "ed2p": m.ED2P.(*ml.Forest),
			}
			for _, b := range benchsuite.All() {
				v := bundleFeatures(t, b)
				for i := 0; i < len(spec.CoreFreqsMHz); i += freqStep {
					f := spec.CoreFreqsMHz[i]
					row := featuresRow(v, f)
					for which, fr := range forests {
						got := fr.Predict(row)
						want := fr.PredictReference(row)
						if got != want {
							t.Fatalf("%s/%s@%dMHz %s model: flat %v != reference %v",
								name, b.Name, f, which, got, want)
						}
					}
				}
			}
		})
	}
}

func bundleFeatures(t *testing.T, b *benchsuite.Benchmark) features.Vector {
	t.Helper()
	v, err := features.Extract(b.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// Predictor.Curve reuses session scratch; it must agree bit-for-bit
// with the allocating PredictCurve it replaced.
func TestPredictorCurveMatchesPredictCurve(t *testing.T) {
	m := forestBundle(t, hw.V100())
	p, err := m.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"matmul", "black_scholes", "median"} {
		b, err := benchsuite.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		v := bundleFeatures(t, b)
		want := m.PredictCurve(v)
		got := p.Curve(v)
		if len(got) != len(want) {
			t.Fatalf("%s: %d points, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s point %d: %+v != %+v", name, i, got[i], want[i])
			}
		}
	}
}

func TestAdviseMatchesSearchFrequency(t *testing.T) {
	m := forestBundle(t, hw.V100())
	p, err := m.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchsuite.ByName("lin_reg_coeff")
	if err != nil {
		t.Fatal(err)
	}
	v := bundleFeatures(t, b)
	for _, tgt := range metrics.StandardTargets {
		a, err := p.Advise(v, tgt)
		if err != nil {
			t.Fatalf("%v: %v", tgt, err)
		}
		want, err := m.SearchFrequency(v, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if a.FreqMHz != want {
			t.Errorf("%v: Advise %d MHz, SearchFrequency %d MHz", tgt, a.FreqMHz, want)
		}
		if a.BaselineMHz != m.Spec.BaselineCoreMHz() {
			t.Errorf("%v: baseline %d", tgt, a.BaselineMHz)
		}
		if a.TimeNs <= 0 || a.EnergyNanoJ <= 0 {
			t.Errorf("%v: non-positive prediction %+v", tgt, a)
		}
		if math.IsNaN(a.ESPct) || math.IsNaN(a.PLPct) {
			t.Errorf("%v: NaN tradeoff %+v", tgt, a)
		}
	}
	if _, err := p.Advise(v, metrics.Target{Kind: metrics.KindES, X: -3}); err == nil {
		t.Error("invalid target accepted")
	}
}

// An untrained bundle must be refused with a descriptive error instead
// of advising 0 MHz from an unfit forest.
func TestNewPredictorRejectsUnfitBundle(t *testing.T) {
	m := &Models{Spec: hw.V100(), Algo: AlgoForest,
		Time: &ml.Forest{}, Energy: &ml.Forest{}, EDP: &ml.Forest{}, ED2P: &ml.Forest{}}
	if _, err := m.NewPredictor(); err == nil {
		t.Fatal("unfit bundle accepted")
	}
	if _, err := m.SearchFrequency(features.Vector{IntAdd: 1}, metrics.MinEnergy); err == nil {
		t.Fatal("SearchFrequency on unfit bundle succeeded")
	}
	if err := (&Models{}).Check(); err == nil {
		t.Fatal("bundle without spec accepted")
	}
}
