//go:build !race

package model

// raceEnabled reports whether the race detector is instrumenting this
// build; heavyweight bit-exactness tests slim their matrix under race.
const raceEnabled = false
