package model

import (
	"math"

	"synergy/internal/features"
	"synergy/internal/metrics"
	"synergy/internal/ml"
)

// Predictor is a reusable prediction session over one Models bundle:
// all scratch buffers (feature rows, per-model outputs, the predicted
// curve and the sweep points) are allocated once and reused, and the
// four models are driven through their batch path, so evaluating the
// whole frequency curve performs no per-call allocations. A Predictor
// is not safe for concurrent use — the serve daemon pools them.
type Predictor struct {
	m     *Models
	rows  [][]float64
	back  []float64
	yT    []float64
	yE    []float64
	yEDP  []float64
	yED2P []float64
	curve []PredictedPoint
	pts   []metrics.Point
}

// predictor builds the scratch without checking fitted state (the
// legacy PredictCurve path keeps its error-free signature).
func (m *Models) predictor() *Predictor {
	n := len(m.Spec.CoreFreqsMHz)
	p := &Predictor{
		m:     m,
		rows:  make([][]float64, n),
		back:  make([]float64, n*rowLen),
		yT:    make([]float64, n),
		yE:    make([]float64, n),
		yEDP:  make([]float64, n),
		yED2P: make([]float64, n),
		curve: make([]PredictedPoint, n),
		pts:   make([]metrics.Point, n),
	}
	for i := range p.rows {
		p.rows[i] = p.back[i*rowLen : (i+1)*rowLen : (i+1)*rowLen]
	}
	return p
}

// NewPredictor validates the bundle (Models.Check) and builds a
// prediction session for it.
func (m *Models) NewPredictor() (*Predictor, error) {
	if err := m.Check(); err != nil {
		return nil, err
	}
	return m.predictor(), nil
}

// Models returns the bundle the session predicts with.
func (p *Predictor) Models() *Models { return p.m }

// Curve evaluates the four models at every supported frequency. The
// returned slice is the session's internal buffer: it is valid until
// the next Curve or Advise call and must not be retained. The values
// are bit-identical to Models.PredictCurve.
func (p *Predictor) Curve(v features.Vector) []PredictedPoint {
	m := p.m
	sc := kernelScale(v)
	for i, f := range m.Spec.CoreFreqsMHz {
		featuresRowInto(p.rows[i], v, f)
	}
	ml.PredictAllInto(m.Time, p.yT, p.rows)
	ml.PredictAllInto(m.Energy, p.yE, p.rows)
	ml.PredictAllInto(m.EDP, p.yEDP, p.rows)
	ml.PredictAllInto(m.ED2P, p.yED2P, p.rows)
	for i, f := range m.Spec.CoreFreqsMHz {
		p.curve[i] = PredictedPoint{
			FreqMHz:       f,
			TimeNs:        p.yT[i] * sc,
			EnergyNanoJ:   p.yE[i] * sc,
			EDPPred:       p.yEDP[i] * sc * sc,
			ED2PPredicted: math.Exp(p.yED2P[i]) * sc * sc * sc,
		}
	}
	return p.curve
}

// Advice is one frequency recommendation: the chosen configuration and
// the model's view of what it buys, in the paper's ES/PL terms.
type Advice struct {
	// Target is the energy target the advice optimises.
	Target metrics.Target
	// FreqMHz is the recommended core frequency.
	FreqMHz int
	// BaselineMHz is the device's default core clock the ES/PL figures
	// are relative to.
	BaselineMHz int
	// TimeNs and EnergyNanoJ are the predicted per-work-item time and
	// energy at FreqMHz.
	TimeNs, EnergyNanoJ float64
	// ESPct and PLPct are the predicted energy saving and performance
	// loss at FreqMHz relative to the baseline configuration (percent,
	// from the predicted curve).
	ESPct, PLPct float64
}

// Advise runs the full §6.2 frequency search for one kernel and target
// and reports the predicted energy-saving / performance-loss tradeoff
// of the chosen configuration.
func (p *Predictor) Advise(v features.Vector, target metrics.Target) (Advice, error) {
	if err := target.Validate(); err != nil {
		return Advice{}, err
	}
	curve := p.Curve(v)
	for i, pt := range curve {
		t := pt.TimeNs
		e := pt.EnergyNanoJ
		// Predicted values can go slightly non-positive at the edges of
		// the training distribution; clamp for the sweep invariants.
		if t <= 0 {
			t = 1e-9
		}
		if e <= 0 {
			e = 1e-9
		}
		p.pts[i] = metrics.Point{FreqMHz: pt.FreqMHz, TimeSec: t, EnergyJ: e}
	}
	sweep, err := metrics.NewSweep(p.pts, p.m.Spec.BaselineCoreMHz())
	if err != nil {
		return Advice{}, err
	}
	var freq int
	switch target.Kind {
	case metrics.KindMinEDP:
		freq = argminFreq(curve, func(p PredictedPoint) float64 { return p.EDPPred })
	case metrics.KindMinED2P:
		freq = argminFreq(curve, func(p PredictedPoint) float64 { return p.ED2PPredicted })
	default:
		sel, err := sweep.Select(target)
		if err != nil {
			return Advice{}, err
		}
		freq = sel.FreqMHz
	}
	chosen, _ := sweep.PointAt(freq)
	a := Advice{
		Target:      target,
		FreqMHz:     freq,
		BaselineMHz: p.m.Spec.BaselineCoreMHz(),
		ESPct:       sweep.EnergySavingPct(chosen),
		PLPct:       sweep.PerfLossPct(chosen),
	}
	for _, pt := range curve {
		if pt.FreqMHz == freq {
			a.TimeNs, a.EnergyNanoJ = pt.TimeNs, pt.EnergyNanoJ
			break
		}
	}
	return a, nil
}
