package model

import (
	"bytes"
	"strings"
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/metrics"
)

func TestSaveLoadModelsRoundTrip(t *testing.T) {
	spec := hw.V100()
	ts := trainingSet(t, spec)
	for _, algo := range AllAlgos {
		m, err := Train(spec, ts, algo)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveModels(&buf, m); err != nil {
			t.Fatalf("%s: save: %v", algo, err)
		}
		loaded, err := LoadModels(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", algo, err)
		}
		if loaded.Algo != algo || loaded.Spec.Name != spec.Name {
			t.Fatalf("%s: bundle identity changed: %s on %s", algo, loaded.Algo, loaded.Spec.Name)
		}
		// Frequency decisions are identical after the round trip.
		bench, err := benchsuite.ByName("black_scholes")
		if err != nil {
			t.Fatal(err)
		}
		v := features.MustExtract(bench.Kernel)
		for _, tgt := range []metrics.Target{metrics.MinEDP, metrics.ES(50), metrics.PL(25)} {
			want, err := m.SearchFrequency(v, tgt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.SearchFrequency(v, tgt)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s/%s: decision changed %d -> %d MHz", algo, tgt, want, got)
			}
		}
	}
}

func TestLoadModelsRejectsGarbage(t *testing.T) {
	if _, err := LoadModels(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadModels(strings.NewReader(`{"device":"h100","algo":"Linear"}`)); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := LoadModels(strings.NewReader(`{"device":"v100","algo":"Linear"}`)); err == nil {
		t.Error("bundle without models accepted")
	}
}
