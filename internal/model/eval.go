package model

import (
	"fmt"
	"math"

	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
	"synergy/internal/ml"
	"synergy/internal/sweep"
)

// BenchCase is one evaluation subject: a benchmark kernel and its
// characterisation launch size.
type BenchCase struct {
	Name   string
	Kernel *kernelir.Kernel
	Items  int64
}

// GroundTruthSweep measures (through the device model) the per-item
// time/energy of the kernel at every supported frequency. Points carry
// per-item units: ns in TimeSec, nJ in EnergyJ — target selection is
// invariant to this uniform scaling.
//
// It routes through the shared sweep engine: the frequency table is
// evaluated on a worker pool and the result is memoized, so repeated
// requests for the same (spec, kernel, items) are served from cache.
// A non-positive launch size is rejected with a descriptive error
// instead of poisoning the sweep with ±Inf/NaN per-item points.
func GroundTruthSweep(spec *hw.Spec, k *kernelir.Kernel, items int64) (*metrics.Sweep, error) {
	return sweep.GroundTruth(spec, k, items)
}

// PredictionError is one Fig. 9 data point: for a benchmark, target and
// algorithm, the absolute percentage error between the objective value
// at the predicted frequency and at the actual optimal frequency — the
// error definition of §8.3 (both values come from the ground-truth
// sweep; what is predicted is the frequency).
type PredictionError struct {
	Bench      string
	Target     metrics.Target
	Algo       string
	PredFreq   int
	ActualFreq int
	APE        float64
	// ActualObj and PredObj are the objective values (per-item units).
	ActualObj, PredObj float64
}

// EvaluateModels computes prediction errors for every (benchmark,
// target) pair with one trained model bundle.
func EvaluateModels(m *Models, cases []BenchCase, targets []metrics.Target) ([]PredictionError, error) {
	// Warm the sweep engine across the cases: whole-sweep parallelism on
	// the first pass, pure cache hits when BuildTable2 re-evaluates the
	// same cases for each algorithm.
	if err := sweep.ForEach(len(cases), func(i int) error {
		_, err := sweep.GroundTruth(m.Spec, cases[i].Kernel, cases[i].Items)
		return err
	}); err != nil {
		return nil, err
	}
	var out []PredictionError
	for _, c := range cases {
		gt, err := GroundTruthSweep(m.Spec, c.Kernel, c.Items)
		if err != nil {
			return nil, err
		}
		v, err := features.Extract(c.Kernel)
		if err != nil {
			return nil, err
		}
		for _, tgt := range targets {
			actual, err := gt.Select(tgt)
			if err != nil {
				return nil, err
			}
			predFreq, err := m.SearchFrequency(v, tgt)
			if err != nil {
				return nil, err
			}
			predPoint, ok := gt.PointAt(predFreq)
			if !ok {
				return nil, fmt.Errorf("model: predicted frequency %d not in ground truth", predFreq)
			}
			actualObj := metrics.ObjectiveValue(tgt, actual)
			predObj := metrics.ObjectiveValue(tgt, predPoint)
			ape := 0.0
			if actualObj != 0 {
				ape = math.Abs(predObj-actualObj) / math.Abs(actualObj)
			}
			out = append(out, PredictionError{
				Bench: c.Name, Target: tgt, Algo: m.Algo,
				PredFreq: predFreq, ActualFreq: actual.FreqMHz,
				APE: ape, ActualObj: actualObj, PredObj: predObj,
			})
		}
	}
	return out, nil
}

// timeFamily reports whether a target is driven by the performance
// model (trained with Linear/Lasso/RandomForest per §8.3); the rest are
// driven by the energy-family models (Linear/RandomForest/SVR_RBF).
func timeFamily(t metrics.Target) bool {
	return t.Kind == metrics.KindMaxPerf || t.Kind == metrics.KindPL
}

// AlgosFor returns the algorithms the paper evaluates for a target.
func AlgosFor(t metrics.Target) []string {
	if timeFamily(t) {
		return TimeAlgos
	}
	return EnergyAlgos
}

// Cell is one Table-2 entry. Skipped counts benchmark cases whose
// actual objective value was zero: their percentage error is undefined,
// so they are excluded from the MAPE mean (ml.MAPE) instead of printing
// +Inf in the error tables.
type Cell struct {
	RMSE, MAPE float64
	Skipped    int
	Computed   bool
}

// Table2Row aggregates prediction errors per objective and algorithm,
// reproducing the layout of Table 2.
type Table2Row struct {
	Target metrics.Target
	Cells  map[string]Cell // algo -> errors
	Best   string          // algorithm with the lowest MAPE
}

// AllAlgos is the Table-2 column order.
var AllAlgos = []string{AlgoLinear, AlgoLasso, AlgoForest, AlgoSVR}

// BuildTable2 trains one model bundle per algorithm on the training set
// and aggregates per-objective RMSE and MAPE over the benchmark cases.
// It also returns the raw per-benchmark errors (the Fig. 9 data).
func BuildTable2(spec *hw.Spec, ts *TrainingSet, cases []BenchCase, targets []metrics.Target) ([]Table2Row, []PredictionError, error) {
	byAlgo := map[string][]PredictionError{}
	for _, algo := range AllAlgos {
		// Which targets does this algorithm participate in?
		var tgts []metrics.Target
		for _, t := range targets {
			for _, a := range AlgosFor(t) {
				if a == algo {
					tgts = append(tgts, t)
					break
				}
			}
		}
		if len(tgts) == 0 {
			continue
		}
		m, err := Train(spec, ts, algo)
		if err != nil {
			return nil, nil, err
		}
		errs, err := EvaluateModels(m, cases, tgts)
		if err != nil {
			return nil, nil, err
		}
		byAlgo[algo] = errs
	}

	rows, all := AggregateTable2(byAlgo, targets)
	return rows, all, nil
}

// AggregateTable2 folds per-benchmark prediction errors into Table-2
// rows. Error statistics go through ml.MAPE / ml.RMSE, so a benchmark
// whose actual objective value is zero is skipped (and counted in
// Cell.Skipped) rather than poisoning the whole mean with +Inf.
func AggregateTable2(byAlgo map[string][]PredictionError, targets []metrics.Target) ([]Table2Row, []PredictionError) {
	var rows []Table2Row
	var all []PredictionError
	for _, tgt := range targets {
		row := Table2Row{Target: tgt, Cells: map[string]Cell{}}
		bestMAPE := math.Inf(1)
		for _, algo := range AllAlgos {
			var actual, pred []float64
			for _, e := range byAlgo[algo] {
				if e.Target == tgt {
					actual = append(actual, e.ActualObj)
					pred = append(pred, e.PredObj)
					all = append(all, e)
				}
			}
			if len(actual) == 0 {
				continue
			}
			mape, skipped, err := ml.MAPE(actual, pred)
			if err != nil {
				// Every actual value was zero — no finite percentage
				// error exists; leave the cell uncomputed.
				row.Cells[algo] = Cell{Skipped: skipped}
				continue
			}
			rmse, err := ml.RMSE(actual, pred)
			if err != nil {
				row.Cells[algo] = Cell{Skipped: skipped}
				continue
			}
			row.Cells[algo] = Cell{RMSE: rmse, MAPE: mape, Skipped: skipped, Computed: true}
			if mape < bestMAPE {
				bestMAPE = mape
				row.Best = algo
			}
		}
		rows = append(rows, row)
	}
	return rows, all
}
