package features

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultCacheCap bounds the extraction memo, mirroring the sweep
// engine's and the compiled-program cache's LRU-cap pattern: real
// kernel populations are far below this; the cap exists so adversarial
// churn (fuzzers, per-call instrumented clones) cannot grow the cache
// without bound.
const DefaultCacheCap = 4096

// vecEntry is one memoized vector with its position in the LRU list.
type vecEntry struct {
	fp   string
	vec  Vector
	elem *list.Element
}

var (
	cacheMu      sync.Mutex
	cacheEntries = map[string]*vecEntry{}
	cacheOrder   = list.New() // front = most recently used; values are *vecEntry
	cacheCap     = DefaultCacheCap
	cacheHook    func(fingerprint string)

	extractions atomic.Int64
	cacheHits   atomic.Int64
)

// cacheGet returns the memoized vector for a fingerprint.
func cacheGet(fp string) (Vector, bool) {
	cacheMu.Lock()
	e, ok := cacheEntries[fp]
	if !ok {
		cacheMu.Unlock()
		return Vector{}, false
	}
	cacheOrder.MoveToFront(e.elem)
	v := e.vec
	cacheMu.Unlock()
	cacheHits.Add(1)
	return v, true
}

// cachePut memoizes a successful extraction. If another goroutine
// raced the same fingerprint in, the existing entry wins and neither
// the hook nor the extraction counter fires again — the hook observes
// at most one extraction per live fingerprint.
func cachePut(fp string, v Vector) {
	cacheMu.Lock()
	if _, ok := cacheEntries[fp]; ok {
		cacheMu.Unlock()
		return
	}
	e := &vecEntry{fp: fp, vec: v}
	e.elem = cacheOrder.PushFront(e)
	cacheEntries[fp] = e
	for cacheCap > 0 && len(cacheEntries) > cacheCap {
		back := cacheOrder.Back()
		victim := back.Value.(*vecEntry)
		cacheOrder.Remove(back)
		delete(cacheEntries, victim.fp)
	}
	hook := cacheHook
	cacheMu.Unlock()
	extractions.Add(1)
	if hook != nil {
		hook(fp)
	}
}

// SetHook registers fn to be called once per completed (and memoized)
// extraction with the kernel fingerprint, mirroring sweep.Engine's
// hook: tests use it to assert exactly-once extraction. nil removes it.
func SetHook(fn func(fingerprint string)) {
	cacheMu.Lock()
	cacheHook = fn
	cacheMu.Unlock()
}

// Extractions returns how many feature vectors have actually been
// computed (cache misses). Requests served from the memo do not count.
func Extractions() int64 { return extractions.Load() }

// CacheHits returns how many Extract calls were served from the memo.
func CacheHits() int64 { return cacheHits.Load() }

// CacheSize returns the number of memoized vectors.
func CacheSize() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return len(cacheEntries)
}

// ResetCache drops every memoized vector (test isolation).
func ResetCache() {
	cacheMu.Lock()
	cacheEntries = map[string]*vecEntry{}
	cacheOrder = list.New()
	cacheMu.Unlock()
}

// FromMap builds a Vector from canonical Table-1 feature names
// (features.Names); it rejects unknown names and negative counts. This
// is the serve daemon's JSON input format for pre-extracted kernels.
func FromMap(m map[string]float64) (Vector, error) {
	var v Vector
	fields := [...]*float64{
		&v.IntAdd, &v.IntMul, &v.IntDiv, &v.IntBw,
		&v.FloatAdd, &v.FloatMul, &v.FloatDiv, &v.SF,
		&v.GlAccess, &v.LocAccess,
	}
	for name, val := range m {
		idx := -1
		for i, n := range Names {
			if n == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return Vector{}, fmt.Errorf("features: unknown feature %q (want one of %v)", name, Names)
		}
		if val < 0 {
			return Vector{}, fmt.Errorf("features: feature %q must be non-negative, got %g", name, val)
		}
		*fields[idx] = val
	}
	return v, nil
}

// ToMap renders the vector under canonical names (the inverse of
// FromMap for all non-negative vectors).
func (v Vector) ToMap() map[string]float64 {
	s := v.Slice()
	m := make(map[string]float64, len(s))
	for i, n := range Names {
		m[n] = s[i]
	}
	return m
}
