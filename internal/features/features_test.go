package features

import (
	"math"
	"testing"
	"testing/quick"

	"synergy/internal/kernelir"
)

func buildSaxpy(t *testing.T) *kernelir.Kernel {
	t.Helper()
	b := kernelir.NewBuilder("saxpy")
	x := b.BufferF32("x", kernelir.Read)
	y := b.BufferF32("y", kernelir.Read)
	z := b.BufferF32("z", kernelir.Write)
	a := b.ScalarF("a")
	gid := b.GlobalID()
	xv := b.LoadF(x, gid)
	yv := b.LoadF(y, gid)
	prod := b.MulF(a, xv)
	sum := b.AddF(prod, yv)
	b.StoreF(z, gid, sum)
	return b.MustBuild()
}

func TestSaxpyFeatureCounts(t *testing.T) {
	v := MustExtract(buildSaxpy(t))
	want := Vector{FloatAdd: 1, FloatMul: 1, GlAccess: 3}
	if v != want {
		t.Fatalf("saxpy features = %+v, want %+v", v, want)
	}
}

func TestRepeatMultipliesCounts(t *testing.T) {
	b := kernelir.NewBuilder("rep")
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	acc := b.ConstF(0)
	one := b.ConstF(1)
	b.Repeat(10, func() {
		s := b.AddF(acc, one)
		b.MoveF(acc, s)
	})
	b.StoreF(out, gid, acc)
	v := MustExtract(b.MustBuild())
	if v.FloatAdd != 10 {
		t.Fatalf("float_add = %v, want 10 (repeat-weighted)", v.FloatAdd)
	}
	if v.GlAccess != 1 {
		t.Fatalf("gl_access = %v, want 1 (store outside loop)", v.GlAccess)
	}
}

func TestNestedRepeatMultipliesCounts(t *testing.T) {
	b := kernelir.NewBuilder("nested")
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	acc := b.ConstF(0)
	one := b.ConstF(1)
	b.Repeat(3, func() {
		s0 := b.MulF(acc, one) // 3x
		b.MoveF(acc, s0)
		b.Repeat(5, func() {
			s := b.AddF(acc, one) // 15x
			b.MoveF(acc, s)
		})
	})
	b.StoreF(out, gid, acc)
	v := MustExtract(b.MustBuild())
	if v.FloatMul != 3 {
		t.Fatalf("float_mul = %v, want 3", v.FloatMul)
	}
	if v.FloatAdd != 15 {
		t.Fatalf("float_add = %v, want 15", v.FloatAdd)
	}
}

func TestAllFeatureClassesCounted(t *testing.T) {
	b := kernelir.NewBuilder("all")
	fbuf := b.BufferF32("f", kernelir.ReadWrite)
	ibuf := b.BufferI32("i", kernelir.ReadWrite)
	b.Local(4)
	gid := b.GlobalID()
	c2 := b.ConstI(2)
	// int_add, int_mul, int_div, int_bw
	s := b.AddI(gid, c2)
	m := b.MulI(s, c2)
	d := b.DivI(m, c2)
	w := b.XorI(d, c2)
	// float classes
	fv := b.LoadF(fbuf, gid) // gl_access
	fa := b.AddF(fv, fv)
	fm := b.MulF(fa, fv)
	fd := b.DivF(fm, fa)
	sf := b.SqrtF(fd)
	// local
	zero := b.ConstI(0)
	b.StoreLocal(zero, sf)
	lv := b.LoadLocal(zero)
	b.StoreF(fbuf, gid, lv) // gl_access
	b.StoreI(ibuf, gid, w)  // gl_access
	v := MustExtract(b.MustBuild())
	want := Vector{
		IntAdd: 1, IntMul: 1, IntDiv: 1, IntBw: 1,
		FloatAdd: 1, FloatMul: 1, FloatDiv: 1, SF: 1,
		GlAccess: 3, LocAccess: 2,
	}
	if v != want {
		t.Fatalf("features = %+v, want %+v", v, want)
	}
}

func TestVectorSliceOrderMatchesNames(t *testing.T) {
	v := Vector{IntAdd: 1, IntMul: 2, IntDiv: 3, IntBw: 4, FloatAdd: 5,
		FloatMul: 6, FloatDiv: 7, SF: 8, GlAccess: 9, LocAccess: 10}
	s := v.Slice()
	if len(s) != len(Names) {
		t.Fatalf("slice length %d != names length %d", len(s), len(Names))
	}
	for i, x := range s {
		if x != float64(i+1) {
			t.Fatalf("slice[%d] = %v, want %d", i, x, i+1)
		}
	}
}

func TestVectorAddScaleProperties(t *testing.T) {
	f := func(a, b [10]float64, s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return true
		}
		va := fromSlice(a[:])
		vb := fromSlice(b[:])
		sum := va.Add(vb)
		for i, x := range sum.Slice() {
			if x != a[i]+b[i] {
				return false
			}
		}
		sc := va.Scale(s)
		for i, x := range sc.Slice() {
			if x != a[i]*s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fromSlice(s []float64) Vector {
	return Vector{
		IntAdd: s[0], IntMul: s[1], IntDiv: s[2], IntBw: s[3],
		FloatAdd: s[4], FloatMul: s[5], FloatDiv: s[6], SF: s[7],
		GlAccess: s[8], LocAccess: s[9],
	}
}

func TestWorkloadMapping(t *testing.T) {
	v := Vector{IntAdd: 2, IntMul: 3, IntBw: 1, IntDiv: 1, FloatAdd: 4,
		FloatMul: 5, FloatDiv: 2, SF: 1, GlAccess: 6, LocAccess: 8}
	w := Workload("k", v, 100)
	if w.Items != 100 || w.Name != "k" {
		t.Fatalf("bad identity fields: %+v", w)
	}
	if w.IntOps != 6 {
		t.Errorf("IntOps = %v, want 6 (add+mul+bw)", w.IntOps)
	}
	if w.FloatOps != 9 {
		t.Errorf("FloatOps = %v, want 9", w.FloatOps)
	}
	if w.DivOps != 3 {
		t.Errorf("DivOps = %v, want 3", w.DivOps)
	}
	if w.SFOps != 1 {
		t.Errorf("SFOps = %v, want 1", w.SFOps)
	}
	if w.GlobalBytes != 24 {
		t.Errorf("GlobalBytes = %v, want 24", w.GlobalBytes)
	}
	if w.LocalBytes != 32 {
		t.Errorf("LocalBytes = %v, want 32", w.LocalBytes)
	}
}

func TestKernelWorkload(t *testing.T) {
	w, err := KernelWorkload(buildSaxpy(t), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if w.GlobalBytes != 12 {
		t.Fatalf("saxpy GlobalBytes = %v, want 12 (3 accesses x 4 bytes)", w.GlobalBytes)
	}
	if w.FloatOps != 2 {
		t.Fatalf("saxpy FloatOps = %v, want 2", w.FloatOps)
	}
}

func TestVectorTotalAndString(t *testing.T) {
	v := Vector{IntAdd: 1, FloatMul: 2}
	if v.Total() != 3 {
		t.Fatalf("Total = %v, want 3", v.Total())
	}
	if s := v.String(); s == "" {
		t.Fatal("empty String()")
	}
}

// Extraction ignores free ops (moves, constants, conversions).
func TestFreeOpsNotCounted(t *testing.T) {
	b := kernelir.NewBuilder("free")
	out := b.BufferF32("out", kernelir.Write)
	gid := b.GlobalID()
	c := b.ConstF(3)
	d := b.ConstF(4)
	b.MoveF(c, d)
	i := b.FloatToInt(c)
	f := b.IntToFloat(i)
	b.MoveF(c, f)
	b.StoreF(out, gid, c)
	v := MustExtract(b.MustBuild())
	want := Vector{GlAccess: 1}
	if v != want {
		t.Fatalf("features = %+v, want only the store counted", v)
	}
}
