package features

import (
	"strings"
	"sync"
	"testing"

	"synergy/internal/kernelir"
)

// Extraction must run exactly once per kernel fingerprint: the second
// Extract is a memo hit that skips Validate and BuildLoopTree.
func TestExtractMemoizedExactlyOnce(t *testing.T) {
	k := buildSaxpy(t)
	fp := kernelir.Fingerprint(k)

	ResetCache()
	var mu sync.Mutex
	count := map[string]int{}
	SetHook(func(fp string) {
		mu.Lock()
		count[fp]++
		mu.Unlock()
	})
	defer SetHook(nil)

	first, err := Extract(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Extract(k)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("repeat %d: vector changed: %+v != %+v", i, again, first)
		}
	}
	if count[fp] != 1 {
		t.Fatalf("kernel extracted %d times, want exactly 1", count[fp])
	}

	// A content-identical kernel built separately shares the fingerprint
	// and therefore the memo entry.
	if _, err := Extract(buildSaxpy(t)); err != nil {
		t.Fatal(err)
	}
	if count[fp] != 1 {
		t.Fatalf("identical kernel re-extracted (count %d), want memo hit", count[fp])
	}
}

// Failed extractions must not be memoized; kernels here are built raw
// so Validate fails (register never written).
func TestExtractErrorNotMemoized(t *testing.T) {
	k := &kernelir.Kernel{Name: "broken", NumIntRegs: 1, NumFloatRegs: 1,
		Body: []kernelir.Instr{{Op: kernelir.OpStoreGF, A: 0, B: 0, C: 0}}}
	ResetCache()
	if _, err := Extract(k); err == nil {
		t.Fatal("invalid kernel extracted without error")
	}
	if CacheSize() != 0 {
		t.Fatalf("failed extraction memoized (cache size %d)", CacheSize())
	}
	if _, err := Extract(k); err == nil {
		t.Fatal("invalid kernel must keep failing")
	}
}

func TestFromMapRoundTrip(t *testing.T) {
	v := Vector{IntAdd: 3, FloatMul: 7, GlAccess: 2.5, SF: 1}
	got, err := FromMap(v.ToMap())
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("round trip %+v != %+v", got, v)
	}
	// Partial maps default missing classes to zero.
	got, err = FromMap(map[string]float64{"k_float_add": 4})
	if err != nil {
		t.Fatal(err)
	}
	if (got != Vector{FloatAdd: 4}) {
		t.Fatalf("partial map = %+v", got)
	}
	if _, err := FromMap(map[string]float64{"k_bogus": 1}); err == nil || !strings.Contains(err.Error(), "unknown feature") {
		t.Errorf("unknown feature accepted: %v", err)
	}
	if _, err := FromMap(map[string]float64{"k_sf": -1}); err == nil {
		t.Error("negative count accepted")
	}
}

// The LRU bound must hold under churn of unique fingerprints.
func TestExtractCacheBounded(t *testing.T) {
	ResetCache()
	// Temporarily shrink the cap.
	cacheMu.Lock()
	oldCap := cacheCap
	cacheCap = 8
	cacheMu.Unlock()
	defer func() {
		cacheMu.Lock()
		cacheCap = oldCap
		cacheMu.Unlock()
		ResetCache()
	}()
	for i := 0; i < 40; i++ {
		b := kernelir.NewBuilder("churn")
		out := b.BufferF32("out", kernelir.Write)
		gid := b.GlobalID()
		acc := b.ConstF(0)
		one := b.ConstF(1)
		b.Repeat(i+1, func() {
			s := b.AddF(acc, one)
			b.MoveF(acc, s)
		})
		b.StoreF(out, gid, acc)
		if _, err := Extract(b.MustBuild()); err != nil {
			t.Fatal(err)
		}
	}
	if n := CacheSize(); n > 8 {
		t.Fatalf("cache grew to %d entries, cap is 8", n)
	}
}
