// Package features implements the SYnergy compiler pass of §6.1: a
// static analysis over the kernel IR that extracts the ten-dimensional
// feature vector of Table 1. Repeat blocks multiply the counts of their
// bodies by the (static) trip count, so the extraction is exact for the
// whole per-work-item instruction stream.
package features

import (
	"context"
	"fmt"

	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/opt"
)

// Vector is the static code feature vector k⃗ of Table 1. Every element
// counts instructions of one class per work-item.
type Vector struct {
	IntAdd    float64 // integer additions and subtractions
	IntMul    float64 // integer multiplications
	IntDiv    float64 // integer divisions
	IntBw     float64 // integer bitwise operations
	FloatAdd  float64 // floating point additions and subtractions
	FloatMul  float64 // floating point multiplications
	FloatDiv  float64 // floating point divisions
	SF        float64 // special functions
	GlAccess  float64 // global memory accesses
	LocAccess float64 // local memory accesses
}

// Names lists the feature names in canonical (Table 1) order.
var Names = []string{
	"k_int_add", "k_int_mul", "k_int_div", "k_int_bw",
	"k_float_add", "k_float_mul", "k_float_div", "k_sf",
	"k_gl_access", "k_loc_access",
}

// Slice returns the vector in canonical order.
func (v Vector) Slice() []float64 {
	return []float64{
		v.IntAdd, v.IntMul, v.IntDiv, v.IntBw,
		v.FloatAdd, v.FloatMul, v.FloatDiv, v.SF,
		v.GlAccess, v.LocAccess,
	}
}

// Add returns v + w element-wise.
func (v Vector) Add(w Vector) Vector {
	return Vector{
		IntAdd: v.IntAdd + w.IntAdd, IntMul: v.IntMul + w.IntMul,
		IntDiv: v.IntDiv + w.IntDiv, IntBw: v.IntBw + w.IntBw,
		FloatAdd: v.FloatAdd + w.FloatAdd, FloatMul: v.FloatMul + w.FloatMul,
		FloatDiv: v.FloatDiv + w.FloatDiv, SF: v.SF + w.SF,
		GlAccess: v.GlAccess + w.GlAccess, LocAccess: v.LocAccess + w.LocAccess,
	}
}

// Scale returns v scaled by s element-wise.
func (v Vector) Scale(s float64) Vector {
	return Vector{
		IntAdd: v.IntAdd * s, IntMul: v.IntMul * s,
		IntDiv: v.IntDiv * s, IntBw: v.IntBw * s,
		FloatAdd: v.FloatAdd * s, FloatMul: v.FloatMul * s,
		FloatDiv: v.FloatDiv * s, SF: v.SF * s,
		GlAccess: v.GlAccess * s, LocAccess: v.LocAccess * s,
	}
}

// Total returns the total counted instructions per work-item.
func (v Vector) Total() float64 {
	t := 0.0
	for _, x := range v.Slice() {
		t += x
	}
	return t
}

// String formats the vector compactly.
func (v Vector) String() string {
	s := ""
	for i, x := range v.Slice() {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%g", Names[i], x)
	}
	return s
}

// classify maps one opcode to its feature class increment.
func classify(op kernelir.Op) (field int, counted bool) {
	switch op {
	case kernelir.OpAddI, kernelir.OpSubI, kernelir.OpMinI, kernelir.OpMaxI,
		kernelir.OpCmpLTI, kernelir.OpCmpEQI, kernelir.OpSelI:
		return 0, true
	case kernelir.OpMulI:
		return 1, true
	case kernelir.OpDivI, kernelir.OpRemI:
		return 2, true
	case kernelir.OpAndI, kernelir.OpOrI, kernelir.OpXorI, kernelir.OpShlI, kernelir.OpShrI:
		return 3, true
	case kernelir.OpAddF, kernelir.OpSubF, kernelir.OpMinF, kernelir.OpMaxF,
		kernelir.OpAbsF, kernelir.OpNegF, kernelir.OpCmpLTF, kernelir.OpSelF:
		return 4, true
	case kernelir.OpMulF:
		return 5, true
	case kernelir.OpDivF:
		return 6, true
	case kernelir.OpSqrtF, kernelir.OpExpF, kernelir.OpLogF, kernelir.OpSinF,
		kernelir.OpCosF, kernelir.OpPowF, kernelir.OpErfF:
		return 7, true
	case kernelir.OpLoadGF, kernelir.OpStoreGF, kernelir.OpLoadGI, kernelir.OpStoreGI:
		return 8, true
	case kernelir.OpLoadLF, kernelir.OpStoreLF:
		return 9, true
	default:
		return 0, false
	}
}

// Extract runs the static pass over the kernel and returns its feature
// vector. Counts inside Repeat blocks are multiplied by the trip counts
// of every enclosing block.
//
// The kernel is first brought into optimizer normal form (opt.Cached),
// so the vector describes the instructions a device would actually
// execute rather than folded constants, duplicate subexpressions and
// dead code the optimizer removes. Extraction is the single choke point
// for the feature view of a kernel — the sweep ground truth, the
// roofline classifier, the energy model and the serve daemon all see
// the same post-optimization counts. If the optimizer fails safe, the
// original body is measured (never an error: unoptimized counts are a
// valid over-approximation).
//
// Results are memoized under the ORIGINAL kernel's content fingerprint
// (the same identity the sweep engine keys on), so on the repeat path —
// the serve daemon's hot path — Extract is a map lookup that skips the
// optimizer, Validate and BuildLoopTree entirely and performs no
// allocations. Failed extractions are not memoized.
func Extract(k *kernelir.Kernel) (Vector, error) {
	return ExtractContext(context.Background(), k)
}

// ExtractContext is Extract with cancellation: a canceled context
// abandons a cache-miss extraction before the optimizer and the static
// pass run. Cache hits are served regardless of context state — they
// cost a map lookup, and returning memoized data is never wasted work.
// Failed and abandoned extractions are not memoized.
func ExtractContext(ctx context.Context, k *kernelir.Kernel) (Vector, error) {
	fp := kernelir.Fingerprint(k)
	if v, ok := cacheGet(fp); ok {
		return v, nil
	}
	if err := ctx.Err(); err != nil {
		return Vector{}, err
	}
	v, err := extract(opt.Cached(k))
	if err != nil {
		return Vector{}, err
	}
	cachePut(fp, v)
	return v, nil
}

// extract is the uncached static pass.
func extract(k *kernelir.Kernel) (Vector, error) {
	if err := k.Validate(); err != nil {
		return Vector{}, err
	}
	// Validate guarantees matched Repeat nesting, so the loop tree cannot
	// fail here. The tree's Walk supplies each instruction's per-item
	// execution count (the product of enclosing trip counts) — the same
	// normalization the interpreter and the static analyzer use.
	tree, err := kernelir.BuildLoopTree(k.Body)
	if err != nil {
		return Vector{}, err
	}
	counts := [10]float64{}
	tree.Walk(func(_ int, in kernelir.Instr, mult float64) {
		if f, ok := classify(in.Op); ok {
			counts[f] += mult
		}
	})
	return Vector{
		IntAdd: counts[0], IntMul: counts[1], IntDiv: counts[2], IntBw: counts[3],
		FloatAdd: counts[4], FloatMul: counts[5], FloatDiv: counts[6], SF: counts[7],
		GlAccess: counts[8], LocAccess: counts[9],
	}, nil
}

// MustExtract is Extract that panics on error (kernels are static data).
func MustExtract(k *kernelir.Kernel) Vector {
	v, err := Extract(k)
	if err != nil {
		panic(err)
	}
	return v
}

// Workload converts a feature vector into the hardware model's workload
// description for a launch of the given size. This is the bridge between
// the static compiler view and the device cost model: 4 bytes per global
// (and local) access, divisions and special functions kept as separate
// resource classes.
func Workload(name string, v Vector, items int64) hw.Workload {
	return hw.Workload{
		Name:        name,
		Items:       items,
		IntOps:      v.IntAdd + v.IntMul + v.IntBw,
		FloatOps:    v.FloatAdd + v.FloatMul,
		DivOps:      v.IntDiv + v.FloatDiv,
		SFOps:       v.SF,
		GlobalBytes: 4 * v.GlAccess,
		LocalBytes:  4 * v.LocAccess,
	}
}

// KernelWorkload extracts features and converts them in one step. The
// kernel's DRAM traffic factor (cache reuse, invisible to the static
// features) scales the ground-truth global traffic.
func KernelWorkload(k *kernelir.Kernel, items int64) (hw.Workload, error) {
	v, err := Extract(k)
	if err != nil {
		return hw.Workload{}, err
	}
	w := Workload(k.Name, v, items)
	if k.TrafficFactor > 0 {
		w.GlobalBytes *= k.TrafficFactor
	}
	return w, nil
}
