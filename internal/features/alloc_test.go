//go:build !race

package features

import "testing"

// The repeat path of Extract — fingerprint lookup plus memo hit — is on
// the serve daemon's hot path and must not allocate. (Skipped under
// -race, whose instrumentation allocates.)
func TestExtractCachedZeroAlloc(t *testing.T) {
	k := buildSaxpy(t)
	if _, err := Extract(k); err != nil { // warm fingerprint memo + vector memo
		t.Fatal(err)
	}
	var sink Vector
	allocs := testing.AllocsPerRun(1000, func() {
		v, err := Extract(k)
		if err != nil {
			t.Fatal(err)
		}
		sink = v
	})
	if allocs != 0 {
		t.Errorf("cached Extract allocates %v per run, want 0", allocs)
	}
	_ = sink
}
