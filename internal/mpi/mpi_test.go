package mpi

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorldValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewWorld(0, 4, EDRFabric()); err == nil {
		t.Error("zero-size world accepted")
	}
	if _, err := NewWorld(4, 0, EDRFabric()); err == nil {
		t.Error("zero ranks-per-node accepted")
	}
}

func TestSendRecvMovesData(t *testing.T) {
	t.Parallel()
	w, err := NewWorld(2, 4, EDRFabric())
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) error {
		if r.Rank() == 0 {
			return r.Send(1, 7, []float32{1, 2, 3})
		}
		buf := make([]float32, 3)
		if err := r.Recv(0, 7, buf); err != nil {
			return err
		}
		if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
			t.Errorf("received %v", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvSynchronisesClock(t *testing.T) {
	t.Parallel()
	w, err := NewWorld(2, 4, EDRFabric())
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) error {
		if r.Rank() == 0 {
			r.Advance(1.0) // slow sender
			return r.Send(1, 0, []float32{42})
		}
		buf := make([]float32, 1)
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		if r.Now() < 1.0 {
			t.Errorf("receiver clock %v, must be >= sender's 1.0", r.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(2, 4, EDRFabric())
	err := w.Run(func(r *Rank) error {
		if r.Rank() == 0 {
			if err := r.Send(5, 0, nil); err == nil {
				t.Error("send to invalid rank accepted")
			}
			if err := r.Send(0, 0, nil); err == nil {
				t.Error("self-send accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvSizeMismatch(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(2, 4, EDRFabric())
	err := w.Run(func(r *Rank) error {
		if r.Rank() == 0 {
			return r.Send(1, 0, []float32{1, 2})
		}
		buf := make([]float32, 3)
		if err := r.Recv(0, 0, buf); err == nil {
			t.Error("size mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronisesToSlowest(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(8, 4, EDRFabric())
	err := w.Run(func(r *Rank) error {
		r.Advance(float64(r.Rank()) * 0.1) // rank 7 is slowest: 0.7
		after, err := r.Barrier()
		if err != nil {
			return err
		}
		if after < 0.7 {
			t.Errorf("rank %d released at %v, want >= 0.7", r.Rank(), after)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReusable(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(4, 4, EDRFabric())
	err := w.Run(func(r *Rank) error {
		for i := 0; i < 20; i++ {
			r.Advance(0.001 * float64(r.Rank()+1))
			if _, err := r.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(6, 4, EDRFabric())
	var checks int32
	err := w.Run(func(r *Rank) error {
		data := []float64{float64(r.Rank()), 1}
		if err := r.AllreduceSum(data); err != nil {
			return err
		}
		// sum of 0..5 = 15; sum of ones = 6
		if data[0] != 15 || data[1] != 6 {
			t.Errorf("rank %d: allreduce = %v", r.Rank(), data)
		}
		atomic.AddInt32(&checks, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checks != 6 {
		t.Fatalf("only %d ranks checked", checks)
	}
}

func TestAllreduceRepeated(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(4, 4, EDRFabric())
	err := w.Run(func(r *Rank) error {
		for round := 1; round <= 5; round++ {
			data := []float64{float64(round)}
			if err := r.AllreduceSum(data); err != nil {
				return err
			}
			if data[0] != float64(4*round) {
				t.Errorf("round %d: got %v", round, data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvExchange(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(2, 4, EDRFabric())
	err := w.Run(func(r *Rank) error {
		partner := 1 - r.Rank()
		send := []float32{float32(r.Rank() + 10)}
		recv := make([]float32, 1)
		if err := r.SendRecv(partner, 3, send, recv); err != nil {
			return err
		}
		if recv[0] != float32(partner+10) {
			t.Errorf("rank %d: exchanged %v", r.Rank(), recv[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntraNodeTransfersAreCheaper(t *testing.T) {
	t.Parallel()
	nm := EDRFabric()
	intra := nm.transferTime(1<<20, true)
	inter := nm.transferTime(1<<20, false)
	if intra >= inter {
		t.Fatalf("intra-node %v not cheaper than inter-node %v", intra, inter)
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	t.Parallel()
	nm := EDRFabric()
	small := nm.transferTime(1<<10, false)
	big := nm.transferTime(1<<24, false)
	if big <= small {
		t.Fatal("transfer time does not grow with message size")
	}
	// Latency floor for tiny messages.
	if small < nm.LatencySec {
		t.Fatal("transfer below latency floor")
	}
}

func TestNodeAssignment(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(8, 4, EDRFabric())
	err := w.Run(func(r *Rank) error {
		want := r.Rank() / 4
		if r.Node() != want {
			t.Errorf("rank %d on node %d, want %d", r.Rank(), r.Node(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(3, 4, EDRFabric())
	err := w.Run(func(r *Rank) error {
		if r.Rank() == 1 {
			return errTest
		}
		return nil
	})
	// Run joins rank errors with errors.Join: match with errors.Is.
	if !errors.Is(err, errTest) {
		t.Fatalf("Run returned %v", err)
	}
}

// TestRunJoinsAllRankErrors: every failing rank's error is represented
// in the joined result, not just the first.
func TestRunJoinsAllRankErrors(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(4, 4, EDRFabric())
	errA := errors.New("rank 1 exploded")
	errB := errors.New("rank 3 exploded")
	err := w.Run(func(r *Rank) error {
		switch r.Rank() {
		case 1:
			return errA
		case 3:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error %v missing a rank error", err)
	}
}

// TestAllreduceLengthMismatchReturnsError: mismatched slice lengths are
// an error on the offending rank (not a panic), and its peers observe
// ErrDeadline rather than hanging.
func TestAllreduceLengthMismatchReturnsError(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(3, 4, EDRFabric())
	err := w.Run(func(r *Rank) error {
		n := 2
		if r.Rank() == 2 {
			n = 5 // disagrees with the others
		}
		return r.AllreduceSum(make([]float64, n))
	})
	if err == nil {
		t.Fatal("mismatched allreduce succeeded")
	}
	if !strings.Contains(err.Error(), "allreduce length") {
		t.Errorf("no length-mismatch diagnosis in %v", err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }

func TestAdvanceToNeverGoesBackwards(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(1, 1, EDRFabric())
	err := w.Run(func(r *Rank) error {
		r.Advance(5)
		r.AdvanceTo(3)
		if math.Abs(r.Now()-5) > 1e-12 {
			t.Errorf("clock moved backwards to %v", r.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(5, 4, EDRFabric())
	err := w.Run(func(r *Rank) error {
		data := make([]float32, 3)
		if r.Rank() == 2 {
			data[0], data[1], data[2] = 7, 8, 9
		}
		if err := r.Bcast(2, data); err != nil {
			return err
		}
		if data[0] != 7 || data[1] != 8 || data[2] != 9 {
			t.Errorf("rank %d received %v", r.Rank(), data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastRepeatedAndValidation(t *testing.T) {
	t.Parallel()
	w, _ := NewWorld(3, 4, EDRFabric())
	err := w.Run(func(r *Rank) error {
		for round := 0; round < 4; round++ {
			data := []float32{0}
			if r.Rank() == round%3 {
				data[0] = float32(100 + round)
			}
			if err := r.Bcast(round%3, data); err != nil {
				return err
			}
			if data[0] != float32(100+round) {
				t.Errorf("rank %d round %d: %v", r.Rank(), round, data[0])
			}
		}
		if err := r.Bcast(9, nil); err == nil {
			t.Error("invalid root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
