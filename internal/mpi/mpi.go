// Package mpi simulates the message-passing substrate of the multi-node
// evaluation (§8.4): ranks run as goroutines inside one process,
// point-to-point messages and collectives move real data, and a network
// model (per-message latency plus size/bandwidth, InfiniBand-EDR-like)
// advances each rank's virtual clock. Ranks synchronise their virtual
// clocks at communication points, which is how weak-scaling curves pick
// up communication overhead.
package mpi

import (
	"errors"
	"fmt"
	"sync"

	"synergy/internal/fault"
)

// ErrMessageLost reports a message dropped by the fabric on every
// retransmit attempt (injected faults exhausted the retry budget).
var ErrMessageLost = errors.New("mpi: message lost after retransmit attempts")

// Fault-injection sites exposed by this package (qualified per sending
// rank: "mpi.send:r3").
const SiteSend = "mpi.send"

// maxSendAttempts bounds the retransmit loop: a send whose every attempt
// is dropped fails with ErrMessageLost instead of retrying forever.
const maxSendAttempts = 4

func init() {
	fault.RegisterError("mpi.message_lost", ErrMessageLost)
}

// NetworkModel describes the interconnect cost model.
type NetworkModel struct {
	// LatencySec is the per-message latency (one hop; DragonFly+ keeps
	// this nearly diameter-independent).
	LatencySec float64
	// BandwidthBytes is the per-link bandwidth in bytes/second.
	BandwidthBytes float64
	// SameNodeFactor discounts intra-node transfers (NVLink/shared
	// memory): cost is multiplied by this factor when both ranks sit on
	// the same node.
	SameNodeFactor float64
}

// EDRFabric models a Mellanox InfiniBand EDR DragonFly+ network (the
// Marconi-100 interconnect).
func EDRFabric() NetworkModel {
	return NetworkModel{
		LatencySec:     1.5e-6,
		BandwidthBytes: 12.5e9, // 100 Gb/s
		SameNodeFactor: 0.25,
	}
}

// transferTime returns the virtual cost of moving n bytes.
func (nm NetworkModel) transferTime(bytes int, sameNode bool) float64 {
	t := nm.LatencySec + float64(bytes)/nm.BandwidthBytes
	if sameNode {
		t *= nm.SameNodeFactor
	}
	return t
}

// World is one simulated MPI job: a fixed set of ranks with mailboxes
// and a reusable clock-synchronising barrier.
type World struct {
	size         int
	net          NetworkModel
	ranksPerNode int

	mu    sync.Mutex
	boxes map[mailKey]chan message

	barMu         sync.Mutex
	barCond       *sync.Cond
	barCount      int
	barGen        int
	barMax        float64
	barReleaseMax float64

	reduceMu     sync.Mutex
	reduceAcc    []float64
	reduceResult []float64

	bcastMu   sync.Mutex
	bcastNext []float32 // staged by the root before the barrier
	bcastData []float32 // published inside the barrier

	injMu sync.Mutex
	inj   *fault.Injector
}

type mailKey struct {
	from, to, tag int
}

type message struct {
	data   []float32
	sentAt float64 // sender's virtual time when the send completed
}

// NewWorld creates a world with size ranks, ranksPerNode ranks packed
// per node (for intra/inter-node cost distinction).
func NewWorld(size, ranksPerNode int, net NetworkModel) (*World, error) {
	if size <= 0 {
		return nil, errors.New("mpi: world size must be positive")
	}
	if ranksPerNode <= 0 {
		return nil, errors.New("mpi: ranks per node must be positive")
	}
	w := &World{
		size:         size,
		net:          net,
		ranksPerNode: ranksPerNode,
		boxes:        map[mailKey]chan message{},
	}
	w.barCond = sync.NewCond(&w.barMu)
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetFaultInjector attaches a fault injector to the fabric: sends then
// consult the "mpi.send:r<rank>" site per transmission attempt. A nil
// injector detaches.
func (w *World) SetFaultInjector(in *fault.Injector) {
	w.injMu.Lock()
	defer w.injMu.Unlock()
	w.inj = in
}

func (w *World) injector() *fault.Injector {
	w.injMu.Lock()
	defer w.injMu.Unlock()
	return w.inj
}

// RetransmitTimeoutSec is the virtual time a sender waits before
// retransmitting a dropped message (a reliable-transport timeout, far
// above the fabric latency).
func (w *World) RetransmitTimeoutSec() float64 {
	return 1000 * w.net.LatencySec
}

// Run executes body on every rank concurrently and returns the first
// error (all ranks are joined before returning).
func (w *World) Run(body func(r *Rank) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for i := 0; i < w.size; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(&Rank{world: w, rank: rank})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *World) box(from, to, tag int) chan message {
	w.mu.Lock()
	defer w.mu.Unlock()
	k := mailKey{from, to, tag}
	b, ok := w.boxes[k]
	if !ok {
		b = make(chan message, 64)
		w.boxes[k] = b
	}
	return b
}

func (w *World) sameNode(a, b int) bool {
	return a/w.ranksPerNode == b/w.ranksPerNode
}

// Rank is the per-goroutine communicator handle. Each rank owns a
// virtual clock which the caller advances for local (compute) time and
// which communication operations advance and synchronise.
type Rank struct {
	world *World
	rank  int
	now   float64
}

// Rank returns this rank's index.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.size }

// Node returns the node index this rank is packed onto.
func (r *Rank) Node() int { return r.rank / r.world.ranksPerNode }

// Now returns this rank's virtual time.
func (r *Rank) Now() float64 { return r.now }

// AdvanceTo moves the rank's clock forward to t (no-op if in the past).
func (r *Rank) AdvanceTo(t float64) {
	if t > r.now {
		r.now = t
	}
}

// Advance moves the rank's clock forward by dt seconds of local work.
func (r *Rank) Advance(dt float64) {
	if dt < 0 {
		panic("mpi: negative advance")
	}
	r.now += dt
}

// Send delivers data to the destination rank under a tag. The send is
// buffered: it returns after the local injection cost.
func (r *Rank) Send(to, tag int, data []float32) error {
	if to < 0 || to >= r.world.size {
		return fmt.Errorf("mpi: rank %d: send to invalid rank %d", r.rank, to)
	}
	if to == r.rank {
		return fmt.Errorf("mpi: rank %d: self-send not supported", r.rank)
	}
	buf := make([]float32, len(data))
	copy(buf, data)
	w := r.world
	inj := w.injector()
	site := fmt.Sprintf("%s:r%d", SiteSend, r.rank)
	cost := w.net.transferTime(4*len(data), w.sameNode(r.rank, to))
	// Reliable transport with bounded retransmit: every attempt pays the
	// transfer cost plus any injected latency; a dropped attempt (an
	// injected error) additionally pays the retransmit timeout. When the
	// fault layer drops every attempt, the send fails.
	for attempt := 1; ; attempt++ {
		delay, err := inj.Check(site)
		r.now += cost + delay
		if err == nil {
			break
		}
		if attempt >= maxSendAttempts {
			return fmt.Errorf("mpi: rank %d: send to %d: %w (%d attempts, last: %v)",
				r.rank, to, ErrMessageLost, attempt, err)
		}
		r.now += w.RetransmitTimeoutSec()
	}
	w.box(r.rank, to, tag) <- message{data: buf, sentAt: r.now}
	return nil
}

// Recv blocks until a message with the tag arrives from the source rank,
// copies it into data (lengths must match), and synchronises the virtual
// clock: the message cannot be consumed before its send completed.
func (r *Rank) Recv(from, tag int, data []float32) error {
	if from < 0 || from >= r.world.size {
		return fmt.Errorf("mpi: rank %d: recv from invalid rank %d", r.rank, from)
	}
	msg := <-r.world.box(from, r.rank, tag)
	if len(msg.data) != len(data) {
		return fmt.Errorf("mpi: rank %d: recv size %d, message has %d", r.rank, len(data), len(msg.data))
	}
	copy(data, msg.data)
	r.AdvanceTo(msg.sentAt)
	return nil
}

// SendRecv exchanges equal-size buffers with a partner (the halo
// exchange primitive).
func (r *Rank) SendRecv(partner, tag int, send, recv []float32) error {
	if err := r.Send(partner, tag, send); err != nil {
		return err
	}
	return r.Recv(partner, tag, recv)
}

// Barrier synchronises all ranks' clocks to the maximum plus one fabric
// latency, and returns the released time.
func (r *Rank) Barrier() float64 {
	return r.world.rendezvous(r, nil, nil)
}

// AllreduceSum sums the slice element-wise across all ranks; every rank
// receives the result in place. Clocks synchronise to the maximum plus
// the cost of a log2(P)-deep reduction tree.
func (r *Rank) AllreduceSum(data []float64) {
	w := r.world
	w.reduceMu.Lock()
	if w.reduceAcc == nil {
		w.reduceAcc = make([]float64, len(data))
	}
	if len(w.reduceAcc) != len(data) {
		w.reduceMu.Unlock()
		panic("mpi: mismatched allreduce lengths")
	}
	for i, v := range data {
		w.reduceAcc[i] += v
	}
	w.reduceMu.Unlock()

	w.rendezvous(r, func() {
		w.reduceMu.Lock()
		w.reduceResult = w.reduceAcc
		w.reduceAcc = nil
		w.reduceMu.Unlock()
	}, func() {
		w.reduceMu.Lock()
		copy(data, w.reduceResult)
		w.reduceMu.Unlock()
	})

	depth := 0
	for p := 1; p < w.size; p *= 2 {
		depth++
	}
	r.Advance(float64(depth) * w.net.transferTime(8*len(data), false))
}

// rendezvous implements the reusable full-world barrier with
// virtual-clock max-synchronisation. last runs (under the barrier lock)
// when the final rank arrives; after runs on every rank once released.
func (w *World) rendezvous(r *Rank, last, after func()) float64 {
	w.barMu.Lock()
	w.barCount++
	if r.now > w.barMax {
		w.barMax = r.now
	}
	if w.barCount == w.size {
		if last != nil {
			last()
		}
		w.barCount = 0
		w.barGen++
		w.barReleaseMax = w.barMax
		w.barMax = 0
		w.barCond.Broadcast()
	} else {
		gen := w.barGen
		for w.barGen == gen {
			w.barCond.Wait()
		}
	}
	release := w.barReleaseMax
	w.barMu.Unlock()
	r.AdvanceTo(release + w.net.LatencySec)
	if after != nil {
		after()
	}
	return r.now
}

// Bcast distributes root's data to every rank in place; clocks
// synchronise to the maximum plus a log2(P)-deep tree cost.
func (r *Rank) Bcast(root int, data []float32) error {
	if root < 0 || root >= r.world.size {
		return fmt.Errorf("mpi: rank %d: bcast from invalid root %d", r.rank, root)
	}
	w := r.world
	if r.rank == root {
		w.bcastMu.Lock()
		buf := make([]float32, len(data))
		copy(buf, data)
		w.bcastNext = buf
		w.bcastMu.Unlock()
	}
	mismatch := false
	w.rendezvous(r, func() {
		// Publish under the barrier: every rank of the previous round
		// has already copied, and no rank of the next round can have
		// staged yet.
		w.bcastMu.Lock()
		w.bcastData = w.bcastNext
		w.bcastNext = nil
		w.bcastMu.Unlock()
	}, func() {
		w.bcastMu.Lock()
		if len(w.bcastData) != len(data) {
			mismatch = true
		} else if r.rank != root {
			copy(data, w.bcastData)
		}
		w.bcastMu.Unlock()
	})
	if mismatch {
		return fmt.Errorf("mpi: rank %d: bcast size mismatch", r.rank)
	}
	depth := 0
	for p := 1; p < w.size; p *= 2 {
		depth++
	}
	r.Advance(float64(depth) * w.net.transferTime(4*len(data), false))
	return nil
}
