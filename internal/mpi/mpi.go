// Package mpi simulates the message-passing substrate of the multi-node
// evaluation (§8.4): ranks run as goroutines inside one process,
// point-to-point messages and collectives move real data, and a network
// model (per-message latency plus size/bandwidth, InfiniBand-EDR-like)
// advances each rank's virtual clock. Ranks synchronise their virtual
// clocks at communication points, which is how weak-scaling curves pick
// up communication overhead.
//
// The fabric is deadline-aware: a rank that blocks on a peer which has
// left the job (its body returned, with or without an error) does not
// hang — it waits the reliable-transport retransmit timeout in virtual
// time and fails with ErrDeadline. Cancellation propagates through
// RunContext: every blocking operation also honours the run context.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"synergy/internal/fault"
	"synergy/internal/telemetry"
)

// ErrMessageLost reports a message dropped by the fabric on every
// retransmit attempt (injected faults exhausted the retry budget).
var ErrMessageLost = errors.New("mpi: message lost after retransmit attempts")

// ErrDeadline reports a blocking operation abandoned because the peer
// (or the rest of the world) left the job: the caller waited one
// retransmit timeout of virtual time and gave up instead of hanging.
var ErrDeadline = errors.New("mpi: deadline exceeded waiting for peer")

// Fault-injection sites exposed by this package (qualified per sending
// rank: "mpi.send:r3").
const SiteSend = "mpi.send"

// maxSendAttempts bounds the retransmit loop: a send whose every attempt
// is dropped fails with ErrMessageLost instead of retrying forever.
const maxSendAttempts = 4

func init() {
	fault.RegisterError("mpi.message_lost", ErrMessageLost)
	fault.RegisterError("mpi.deadline", ErrDeadline)
}

// NetworkModel describes the interconnect cost model.
type NetworkModel struct {
	// LatencySec is the per-message latency (one hop; DragonFly+ keeps
	// this nearly diameter-independent).
	LatencySec float64
	// BandwidthBytes is the per-link bandwidth in bytes/second.
	BandwidthBytes float64
	// SameNodeFactor discounts intra-node transfers (NVLink/shared
	// memory): cost is multiplied by this factor when both ranks sit on
	// the same node.
	SameNodeFactor float64
}

// EDRFabric models a Mellanox InfiniBand EDR DragonFly+ network (the
// Marconi-100 interconnect).
func EDRFabric() NetworkModel {
	return NetworkModel{
		LatencySec:     1.5e-6,
		BandwidthBytes: 12.5e9, // 100 Gb/s
		SameNodeFactor: 0.25,
	}
}

// transferTime returns the virtual cost of moving n bytes.
func (nm NetworkModel) transferTime(bytes int, sameNode bool) float64 {
	t := nm.LatencySec + float64(bytes)/nm.BandwidthBytes
	if sameNode {
		t *= nm.SameNodeFactor
	}
	return t
}

// barRelease is one barrier round: waiters block on ch, which closes
// when the last rank arrives (failed=false) or when a departure makes
// completion impossible (failed=true).
type barRelease struct {
	ch     chan struct{}
	max    float64
	failed bool
}

// World is one simulated MPI job: a fixed set of ranks with mailboxes
// and a reusable clock-synchronising barrier.
type World struct {
	size         int
	net          NetworkModel
	ranksPerNode int

	mu    sync.Mutex
	boxes map[mailKey]chan message

	barMu    sync.Mutex
	barCount int
	cur      *barRelease
	departed int             // ranks whose body has returned this run
	gone     []chan struct{} // gone[r] closes when rank r departs

	reduceMu     sync.Mutex
	reduceAcc    []float64
	reduceResult []float64

	bcastMu   sync.Mutex
	bcastNext []float32 // staged by the root before the barrier
	bcastData []float32 // published inside the barrier

	injMu sync.Mutex
	inj   *fault.Injector

	telMu sync.Mutex
	tel   *telemetry.Registry
}

type mailKey struct {
	from, to, tag int
}

type message struct {
	data   []float32
	sentAt float64 // sender's virtual time when the send completed
}

// NewWorld creates a world with size ranks, ranksPerNode ranks packed
// per node (for intra/inter-node cost distinction).
func NewWorld(size, ranksPerNode int, net NetworkModel) (*World, error) {
	if size <= 0 {
		return nil, errors.New("mpi: world size must be positive")
	}
	if ranksPerNode <= 0 {
		return nil, errors.New("mpi: ranks per node must be positive")
	}
	w := &World{
		size:         size,
		net:          net,
		ranksPerNode: ranksPerNode,
		boxes:        map[mailKey]chan message{},
	}
	w.gone = freshGone(size)
	return w, nil
}

func freshGone(size int) []chan struct{} {
	gone := make([]chan struct{}, size)
	for i := range gone {
		gone[i] = make(chan struct{})
	}
	return gone
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetFaultInjector attaches a fault injector to the fabric: sends then
// consult the "mpi.send:r<rank>" site per transmission attempt. A nil
// injector detaches.
func (w *World) SetFaultInjector(in *fault.Injector) {
	w.injMu.Lock()
	defer w.injMu.Unlock()
	w.inj = in
}

func (w *World) injector() *fault.Injector {
	w.injMu.Lock()
	defer w.injMu.Unlock()
	return w.inj
}

// SetTelemetry attaches a telemetry registry to the fabric: per-rank
// counters for sends, retransmits, lost messages, deadline failures,
// barriers and allreduces, plus a virtual-time send-latency histogram.
// Every series is labelled "r<rank>" and only written by that rank's
// goroutine, keeping the metrics deterministic. Nil detaches.
func (w *World) SetTelemetry(r *telemetry.Registry) {
	w.telMu.Lock()
	defer w.telMu.Unlock()
	w.tel = r
}

func (w *World) telemetry() *telemetry.Registry {
	w.telMu.Lock()
	defer w.telMu.Unlock()
	return w.tel
}

// label is the rank's telemetry label.
func (r *Rank) label() string { return fmt.Sprintf("r%d", r.rank) }

// RetransmitTimeoutSec is the virtual time a sender waits before
// retransmitting a dropped message (a reliable-transport timeout, far
// above the fabric latency). It is also the virtual time a blocked
// operation charges before failing with ErrDeadline when its peer has
// left the job.
func (w *World) RetransmitTimeoutSec() float64 {
	return 1000 * w.net.LatencySec
}

// resetRunState clears per-run communication state so a world can host
// consecutive runs (the chaos harness reuses worlds across episodes).
func (w *World) resetRunState() {
	w.mu.Lock()
	w.boxes = map[mailKey]chan message{}
	w.mu.Unlock()
	w.barMu.Lock()
	w.barCount = 0
	w.cur = nil
	w.departed = 0
	w.gone = freshGone(w.size)
	w.barMu.Unlock()
	w.reduceMu.Lock()
	w.reduceAcc = nil
	w.reduceResult = nil
	w.reduceMu.Unlock()
	w.bcastMu.Lock()
	w.bcastNext = nil
	w.bcastData = nil
	w.bcastMu.Unlock()
}

// Run executes body on every rank concurrently, joins all ranks, and
// returns every non-nil rank error combined with errors.Join (nil when
// all ranks succeed).
func (w *World) Run(body func(r *Rank) error) error {
	return w.RunContext(context.Background(), body)
}

// RunContext is Run with cancellation: the context is visible to every
// rank (Rank.Context) and unblocks the fabric's blocking operations —
// a canceled rank's pending Send/Recv/collective returns the context
// error instead of waiting for peers.
func (w *World) RunContext(ctx context.Context, body func(r *Rank) error) error {
	w.resetRunState()
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for i := 0; i < w.size; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer w.depart(rank)
			errs[rank] = body(&Rank{world: w, rank: rank, ctx: ctx})
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// depart marks a rank as having left the job (its body returned, with
// or without an error). Blocked peers observe the departure: a barrier
// that can no longer complete releases its waiters in a failed state.
func (w *World) depart(rank int) {
	w.barMu.Lock()
	w.departed++
	close(w.gone[rank])
	if w.cur != nil && w.barCount >= w.size-w.departed {
		rel := w.cur
		rel.failed = true
		w.barCount = 0
		w.cur = nil
		close(rel.ch)
	}
	w.barMu.Unlock()
}

// goneChan returns the channel that closes when the rank departs (nil —
// blocking forever in a select — for worlds built outside NewWorld).
func (w *World) goneChan(rank int) <-chan struct{} {
	w.barMu.Lock()
	defer w.barMu.Unlock()
	if rank < 0 || rank >= len(w.gone) {
		return nil
	}
	return w.gone[rank]
}

func (w *World) box(from, to, tag int) chan message {
	w.mu.Lock()
	defer w.mu.Unlock()
	k := mailKey{from, to, tag}
	b, ok := w.boxes[k]
	if !ok {
		b = make(chan message, 64)
		w.boxes[k] = b
	}
	return b
}

func (w *World) sameNode(a, b int) bool {
	return a/w.ranksPerNode == b/w.ranksPerNode
}

// Rank is the per-goroutine communicator handle. Each rank owns a
// virtual clock which the caller advances for local (compute) time and
// which communication operations advance and synchronise.
type Rank struct {
	world *World
	rank  int
	now   float64
	ctx   context.Context
}

// Rank returns this rank's index.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.size }

// Node returns the node index this rank is packed onto.
func (r *Rank) Node() int { return r.rank / r.world.ranksPerNode }

// Now returns this rank's virtual time.
func (r *Rank) Now() float64 { return r.now }

// Context returns the run context (context.Background for plain Run).
func (r *Rank) Context() context.Context {
	if r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// done returns the context's cancellation channel (nil, blocking
// forever in a select, when there is no cancelable context).
func (r *Rank) done() <-chan struct{} {
	if r.ctx == nil {
		return nil
	}
	return r.ctx.Done()
}

// AdvanceTo moves the rank's clock forward to t (no-op if in the past).
func (r *Rank) AdvanceTo(t float64) {
	if t > r.now {
		r.now = t
	}
}

// Advance moves the rank's clock forward by dt seconds of local work.
func (r *Rank) Advance(dt float64) {
	if dt < 0 {
		panic("mpi: negative advance")
	}
	r.now += dt
}

// deadlineErr charges the retransmit timeout to the rank's clock and
// builds the typed deadline error. Both failure paths (peer already
// departed; departure observed while waiting) share this, so the error
// text and the clock advance are identical regardless of real-time
// arrival order — a determinism requirement of the chaos harness.
func (r *Rank) deadlineErr(op string) error {
	r.Advance(r.world.RetransmitTimeoutSec())
	r.world.telemetry().Counter("synergy_mpi_deadlines_total", "rank", r.label()).Inc()
	return fmt.Errorf("mpi: rank %d: %s: %w", r.rank, op, ErrDeadline)
}

// Send delivers data to the destination rank under a tag. The send is
// buffered: it returns after the local injection cost. A send that
// blocks on a full mailbox whose owner has departed fails with
// ErrDeadline after one retransmit timeout of virtual time.
func (r *Rank) Send(to, tag int, data []float32) error {
	if to < 0 || to >= r.world.size {
		return fmt.Errorf("mpi: rank %d: send to invalid rank %d", r.rank, to)
	}
	if to == r.rank {
		return fmt.Errorf("mpi: rank %d: self-send not supported", r.rank)
	}
	buf := make([]float32, len(data))
	copy(buf, data)
	w := r.world
	inj := w.injector()
	tel := w.telemetry()
	lbl := r.label()
	site := fmt.Sprintf("%s:r%d", SiteSend, r.rank)
	cost := w.net.transferTime(4*len(data), w.sameNode(r.rank, to))
	t0 := r.now
	// delivered records a successful hand-off to the mailbox: the virtual
	// send latency (retransmits included) lands in the histogram at the
	// rank's own clock, so the series is single-writer and deterministic.
	delivered := func() error {
		tel.Counter("synergy_mpi_sends_total", "rank", lbl).Inc()
		tel.Histogram("synergy_mpi_send_seconds", telemetry.TimeBuckets, "rank", lbl).
			ObserveAt(r.now-t0, r.now)
		return nil
	}
	// Reliable transport with bounded retransmit: every attempt pays the
	// transfer cost plus any injected latency; a dropped attempt (an
	// injected error) additionally pays the retransmit timeout. When the
	// fault layer drops every attempt, the send fails.
	for attempt := 1; ; attempt++ {
		delay, err := inj.Check(site)
		r.now += cost + delay
		if err == nil {
			break
		}
		if attempt >= maxSendAttempts {
			tel.Counter("synergy_mpi_sends_lost_total", "rank", lbl).Inc()
			return fmt.Errorf("mpi: rank %d: send to %d: %w (%d attempts, last: %v)",
				r.rank, to, ErrMessageLost, attempt, err)
		}
		tel.Counter("synergy_mpi_send_retransmits_total", "rank", lbl).Inc()
		r.now += w.RetransmitTimeoutSec()
	}
	msg := message{data: buf, sentAt: r.now}
	box := w.box(r.rank, to, tag)
	// Fast path: buffered delivery. Blocking is rare (64-deep boxes) and
	// only sustained when the receiver is gone or the run is canceled.
	select {
	case box <- msg:
		return delivered()
	default:
	}
	select {
	case box <- msg:
		return delivered()
	case <-w.goneChan(to):
	case <-r.done():
		select {
		case box <- msg:
			return delivered()
		default:
			return fmt.Errorf("mpi: rank %d: send to %d canceled: %w", r.rank, to, r.ctx.Err())
		}
	}
	// The receiver departed. Drain-biased retry: if space opened
	// concurrently, delivery wins deterministically.
	select {
	case box <- msg:
		return delivered()
	default:
		return r.deadlineErr(fmt.Sprintf("send to %d", to))
	}
}

// Recv blocks until a message with the tag arrives from the source rank,
// copies it into data (lengths must match), and synchronises the virtual
// clock: the message cannot be consumed before its send completed. If
// the sender departs without a matching message in flight, Recv charges
// one retransmit timeout of virtual time and returns ErrDeadline
// instead of hanging.
func (r *Rank) Recv(from, tag int, data []float32) error {
	if from < 0 || from >= r.world.size {
		return fmt.Errorf("mpi: rank %d: recv from invalid rank %d", r.rank, from)
	}
	box := r.world.box(from, r.rank, tag)
	var msg message
	select {
	case msg = <-box:
	default:
		select {
		case msg = <-box:
		case <-r.world.goneChan(from):
			// The sender departed. Any message it sent before departing
			// happened-before the close of its gone channel, so one final
			// non-blocking drain deterministically finds it.
			select {
			case msg = <-box:
			default:
				return r.deadlineErr(fmt.Sprintf("recv from %d", from))
			}
		case <-r.done():
			select {
			case msg = <-box:
			default:
				return fmt.Errorf("mpi: rank %d: recv from %d canceled: %w", r.rank, from, r.ctx.Err())
			}
		}
	}
	if len(msg.data) != len(data) {
		return fmt.Errorf("mpi: rank %d: recv size %d, message has %d", r.rank, len(data), len(msg.data))
	}
	copy(data, msg.data)
	r.AdvanceTo(msg.sentAt)
	return nil
}

// SendRecv exchanges equal-size buffers with a partner (the halo
// exchange primitive).
func (r *Rank) SendRecv(partner, tag int, send, recv []float32) error {
	if err := r.Send(partner, tag, send); err != nil {
		return err
	}
	return r.Recv(partner, tag, recv)
}

// Barrier synchronises all ranks' clocks to the maximum plus one fabric
// latency, and returns the released time. If any rank has departed the
// barrier cannot complete: it charges one retransmit timeout and
// returns ErrDeadline.
func (r *Rank) Barrier() (float64, error) {
	t, err := r.world.rendezvous(r, nil, nil)
	if err == nil {
		r.world.telemetry().Counter("synergy_mpi_barriers_total", "rank", r.label()).Inc()
	}
	return t, err
}

// AllreduceSum sums the slice element-wise across all ranks; every rank
// receives the result in place. Clocks synchronise to the maximum plus
// the cost of a log2(P)-deep reduction tree. Mismatched slice lengths
// across ranks are an error (the offending rank fails; its peers then
// observe ErrDeadline at the rendezvous).
func (r *Rank) AllreduceSum(data []float64) error {
	w := r.world
	w.reduceMu.Lock()
	if w.reduceAcc == nil {
		w.reduceAcc = make([]float64, len(data))
	}
	if len(w.reduceAcc) != len(data) {
		n := len(w.reduceAcc)
		w.reduceMu.Unlock()
		return fmt.Errorf("mpi: rank %d: allreduce length %d, accumulator has %d", r.rank, len(data), n)
	}
	for i, v := range data {
		w.reduceAcc[i] += v
	}
	w.reduceMu.Unlock()

	_, err := w.rendezvous(r, func() {
		w.reduceMu.Lock()
		w.reduceResult = w.reduceAcc
		w.reduceAcc = nil
		w.reduceMu.Unlock()
	}, func() {
		w.reduceMu.Lock()
		copy(data, w.reduceResult)
		w.reduceMu.Unlock()
	})
	if err != nil {
		return err
	}

	depth := 0
	for p := 1; p < w.size; p *= 2 {
		depth++
	}
	r.Advance(float64(depth) * w.net.transferTime(8*len(data), false))
	w.telemetry().Counter("synergy_mpi_allreduces_total", "rank", r.label()).Inc()
	return nil
}

// rendezvous implements the reusable full-world barrier with
// virtual-clock max-synchronisation. last runs (under the barrier lock)
// when the final rank arrives; after runs on every rank once released.
//
// A rendezvous that can never complete — some rank already departed, or
// departs while others wait — fails on every participant with
// ErrDeadline after charging the retransmit timeout. Both orderings
// produce the identical clock advance and error, so the outcome is
// independent of real-time scheduling.
func (w *World) rendezvous(r *Rank, last, after func()) (float64, error) {
	w.barMu.Lock()
	if w.departed > 0 {
		w.barMu.Unlock()
		return r.now, r.deadlineErr("barrier")
	}
	if w.cur == nil {
		w.cur = &barRelease{ch: make(chan struct{})}
	}
	rel := w.cur
	w.barCount++
	if r.now > rel.max {
		rel.max = r.now
	}
	if w.barCount == w.size {
		if last != nil {
			last()
		}
		w.barCount = 0
		w.cur = nil
		close(rel.ch)
		w.barMu.Unlock()
	} else {
		w.barMu.Unlock()
		select {
		case <-rel.ch:
		case <-r.done():
			// Canceled while waiting: withdraw from the round if it has
			// not been released concurrently; otherwise honour the
			// release (deterministic tie-break toward completion).
			w.barMu.Lock()
			if w.cur == rel {
				w.barCount--
				w.barMu.Unlock()
				return r.now, fmt.Errorf("mpi: rank %d: barrier canceled: %w", r.rank, r.ctx.Err())
			}
			w.barMu.Unlock()
			<-rel.ch
		}
	}
	if rel.failed {
		return r.now, r.deadlineErr("barrier")
	}
	r.AdvanceTo(rel.max + w.net.LatencySec)
	if after != nil {
		after()
	}
	return r.now, nil
}

// Bcast distributes root's data to every rank in place; clocks
// synchronise to the maximum plus a log2(P)-deep tree cost.
func (r *Rank) Bcast(root int, data []float32) error {
	if root < 0 || root >= r.world.size {
		return fmt.Errorf("mpi: rank %d: bcast from invalid root %d", r.rank, root)
	}
	w := r.world
	if r.rank == root {
		w.bcastMu.Lock()
		buf := make([]float32, len(data))
		copy(buf, data)
		w.bcastNext = buf
		w.bcastMu.Unlock()
	}
	mismatch := false
	_, err := w.rendezvous(r, func() {
		// Publish under the barrier: every rank of the previous round
		// has already copied, and no rank of the next round can have
		// staged yet.
		w.bcastMu.Lock()
		w.bcastData = w.bcastNext
		w.bcastNext = nil
		w.bcastMu.Unlock()
	}, func() {
		w.bcastMu.Lock()
		if len(w.bcastData) != len(data) {
			mismatch = true
		} else if r.rank != root {
			copy(data, w.bcastData)
		}
		w.bcastMu.Unlock()
	})
	if err != nil {
		return err
	}
	if mismatch {
		return fmt.Errorf("mpi: rank %d: bcast size mismatch", r.rank)
	}
	depth := 0
	for p := 1; p < w.size; p *= 2 {
		depth++
	}
	r.Advance(float64(depth) * w.net.transferTime(4*len(data), false))
	return nil
}
