package mpi

import (
	"errors"
	"testing"

	"synergy/internal/fault"
)

func TestSendRetransmitsDroppedMessages(t *testing.T) {
	t.Parallel()
	w, err := NewWorld(2, 2, EDRFabric())
	if err != nil {
		t.Fatal(err)
	}
	// Drop rank 0's first two send attempts; the third succeeds.
	w.SetFaultInjector(fault.New(1, fault.Rule{
		Site: SiteSend + ":r0", Count: 2, Err: fault.ErrInjected,
	}))
	var sendTime, cleanTime float64
	err = w.Run(func(r *Rank) error {
		if r.Rank() == 0 {
			if err := r.Send(1, 0, []float32{1, 2, 3}); err != nil {
				return err
			}
			sendTime = r.Now()
			return nil
		}
		buf := make([]float32, 3)
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		if buf[2] != 3 {
			t.Errorf("payload corrupted after retransmit: %v", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A clean run of the same send, for comparison.
	w2, _ := NewWorld(2, 2, EDRFabric())
	err = w2.Run(func(r *Rank) error {
		if r.Rank() == 0 {
			if err := r.Send(1, 0, []float32{1, 2, 3}); err != nil {
				return err
			}
			cleanTime = r.Now()
			return nil
		}
		buf := make([]float32, 3)
		return r.Recv(0, 0, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := 2 * (w.RetransmitTimeoutSec() + w.net.transferTime(12, false))
	if got := sendTime - cleanTime; got < wantExtra*0.99 {
		t.Fatalf("retransmits cost %v, want >= %v (2 timeouts + 2 re-sends)", got, wantExtra)
	}
}

func TestSendFailsAfterBoundedAttempts(t *testing.T) {
	t.Parallel()
	w, err := NewWorld(2, 2, EDRFabric())
	if err != nil {
		t.Fatal(err)
	}
	w.SetFaultInjector(fault.New(1, fault.Rule{
		Site: SiteSend + ":r0", Err: fault.ErrInjected, // sticky: every attempt drops
	}))
	err = w.Run(func(r *Rank) error {
		if r.Rank() != 0 {
			return nil
		}
		err := r.Send(1, 0, []float32{1})
		if !errors.Is(err, ErrMessageLost) {
			t.Errorf("send on a dead link: err = %v, want ErrMessageLost", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly maxSendAttempts were made.
	inj := w.injector()
	if got := inj.CallCount(SiteSend + ":r0"); got != maxSendAttempts {
		t.Fatalf("attempts = %d, want %d", got, maxSendAttempts)
	}
}

func TestSendDelayInjectionAdvancesClock(t *testing.T) {
	t.Parallel()
	w, err := NewWorld(2, 2, EDRFabric())
	if err != nil {
		t.Fatal(err)
	}
	const lag = 0.5
	w.SetFaultInjector(fault.New(1, fault.Rule{
		Site: SiteSend + ":r0", Count: 1, DelaySec: lag,
	}))
	err = w.Run(func(r *Rank) error {
		if r.Rank() == 0 {
			if err := r.Send(1, 0, []float32{1}); err != nil {
				return err
			}
			if r.Now() < lag {
				t.Errorf("sender clock %v, want >= injected delay %v", r.Now(), lag)
			}
			return nil
		}
		buf := make([]float32, 1)
		if err := r.Recv(0, 0, buf); err != nil {
			return err
		}
		if r.Now() < lag {
			t.Errorf("receiver clock %v, want >= injected delay %v", r.Now(), lag)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageLostRegisteredForScenarios(t *testing.T) {
	t.Parallel()
	sc, err := fault.ParseScenario("link", "mpi.send:r1 err=mpi.message_lost")
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(sc.Rules[0].Err, ErrMessageLost) {
		t.Fatalf("scenario error = %v, want ErrMessageLost", sc.Rules[0].Err)
	}
}
