package mpi

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"synergy/internal/fault"
)

// settleGoroutines waits for the process goroutine count to fall back
// to the baseline (goleak-style before/after assertion). These tests
// deliberately do not run in parallel so the count is meaningful.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutines %d > baseline %d; stacks:\n%s", n, base, buf[:m])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRankDeathMidRecvReturnsDeadline is the headline regression test:
// a receiver whose peer dies before sending must not deadlock — it
// charges exactly one retransmit timeout of virtual time and returns
// the typed ErrDeadline.
func TestRankDeathMidRecvReturnsDeadline(t *testing.T) {
	w, err := NewWorld(2, 2, EDRFabric())
	if err != nil {
		t.Fatal(err)
	}
	errBoom := errors.New("rank 1 died")
	timeout := w.RetransmitTimeoutSec()
	var recvErr error
	var recvClock float64
	err = w.Run(func(r *Rank) error {
		if r.Rank() == 1 {
			return errBoom // dies without ever sending
		}
		recvErr = r.Recv(1, 0, make([]float32, 4))
		recvClock = r.Now()
		return recvErr
	})
	if !errors.Is(err, errBoom) {
		t.Errorf("joined error %v missing the dead rank's error", err)
	}
	if !errors.Is(recvErr, ErrDeadline) {
		t.Fatalf("recv from dead rank: err = %v, want ErrDeadline", recvErr)
	}
	// The wait is bounded by the retransmit timeout in virtual time —
	// not an unbounded hang, not a silent zero-cost failure.
	if recvClock < timeout || recvClock > timeout*1.001 {
		t.Errorf("recv abandoned at virtual time %v, want ~%v (one retransmit timeout)", recvClock, timeout)
	}
}

// TestRankDeathMidBarrierReleasesWaiters: a barrier that can never
// complete releases every waiter with ErrDeadline (and leaks nothing —
// checked by the goroutine baseline).
func TestRankDeathMidBarrierReleasesWaiters(t *testing.T) {
	base := runtime.NumGoroutine()
	w, _ := NewWorld(4, 4, EDRFabric())
	errBoom := errors.New("rank 3 died")
	err := w.Run(func(r *Rank) error {
		if r.Rank() == 3 {
			return errBoom
		}
		if _, err := r.Barrier(); !errors.Is(err, ErrDeadline) {
			t.Errorf("rank %d: barrier err = %v, want ErrDeadline", r.Rank(), err)
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Errorf("joined error %v missing the dead rank's error", err)
	}
	settleGoroutines(t, base)
}

// TestRankDeathMidAllreduceReleasesWaiters: same for the reduction.
func TestRankDeathMidAllreduceReleasesWaiters(t *testing.T) {
	base := runtime.NumGoroutine()
	w, _ := NewWorld(3, 4, EDRFabric())
	errBoom := errors.New("rank 0 died")
	err := w.Run(func(r *Rank) error {
		if r.Rank() == 0 {
			return errBoom
		}
		if err := r.AllreduceSum([]float64{1, 2}); !errors.Is(err, ErrDeadline) {
			t.Errorf("rank %d: allreduce err = %v, want ErrDeadline", r.Rank(), err)
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Errorf("joined error %v missing the dead rank's error", err)
	}
	settleGoroutines(t, base)
}

// TestCancelUnblocksBlockedRanks: canceling the run context releases
// ranks parked in Recv and in the barrier, the joined error carries the
// context error, and no rank goroutine leaks.
func TestCancelUnblocksBlockedRanks(t *testing.T) {
	base := runtime.NumGoroutine()
	w, _ := NewWorld(4, 4, EDRFabric())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := w.RunContext(ctx, func(r *Rank) error {
		if r.Rank() == 0 {
			// Blocks forever absent cancellation: rank 1 never sends.
			return r.Recv(1, 9, make([]float32, 1))
		}
		_, err := r.Barrier()
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
	settleGoroutines(t, base)
	cancel()
}

// TestDeadlineCascadeTerminates: one dead rank in a ring of SendRecv
// exchanges must cascade deadline errors around the ring instead of
// deadlocking anywhere.
func TestDeadlineCascadeTerminates(t *testing.T) {
	base := runtime.NumGoroutine()
	w, _ := NewWorld(6, 2, EDRFabric())
	errBoom := errors.New("rank 2 died")
	err := w.Run(func(r *Rank) error {
		if r.Rank() == 2 {
			return errBoom
		}
		right := (r.Rank() + 1) % r.Size()
		buf := make([]float32, 8)
		for step := 0; step < 3; step++ {
			if err := r.SendRecv(right, step, buf, buf); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, errBoom) || !errors.Is(err, ErrDeadline) {
		t.Fatalf("cascade error %v, want both the root cause and ErrDeadline", err)
	}
	settleGoroutines(t, base)
}

// TestDeadlineRegisteredForScenarios: the chaos layer references the
// typed deadline error by name in scenario files.
func TestDeadlineRegisteredForScenarios(t *testing.T) {
	t.Parallel()
	e, ok := fault.NamedError("mpi.deadline")
	if !ok {
		t.Fatal("mpi.deadline not registered")
	}
	if !errors.Is(e, ErrDeadline) {
		t.Fatalf("registered error = %v, want ErrDeadline", e)
	}
}
