package hw

import (
	"fmt"
	"strings"
)

// Budget is the Lumos HeterogSys-style system envelope a heterogeneous
// fleet lives under: a shared power budget and a die-area budget. A
// zero field means that axis is unconstrained.
type Budget struct {
	// PowerW caps the instantaneous fleet power draw: the running
	// device's board power plus the idle power of every other fleet
	// device must stay at or below it.
	PowerW float64
	// AreaMM2 caps the summed die area of the fleet's devices.
	AreaMM2 float64
}

// String renders the budget for diagnostics.
func (b Budget) String() string {
	switch {
	case b.PowerW > 0 && b.AreaMM2 > 0:
		return fmt.Sprintf("%.0f W / %.0f mm²", b.PowerW, b.AreaMM2)
	case b.PowerW > 0:
		return fmt.Sprintf("%.0f W", b.PowerW)
	case b.AreaMM2 > 0:
		return fmt.Sprintf("%.0f mm²", b.AreaMM2)
	default:
		return "unconstrained"
	}
}

// FleetDevice is one member of a fleet: a device spec under a stable
// short key (the command-line identifier for builtin specs).
type FleetDevice struct {
	Key  string
	Spec *Spec
}

// Fleet is a heterogeneous system in the Lumos HeterogSys shape: serial
// cores, throughput cores and accelerators composed under one shared
// area/power budget. Device order is significant — it is the
// deterministic tie-break order of the joint placement search
// (internal/placement), so two fleets with the same devices in a
// different order are different fleets.
type Fleet struct {
	Name    string
	Budget  Budget
	Devices []FleetDevice
}

// NewFleet assembles and validates a fleet.
func NewFleet(name string, budget Budget, devices ...FleetDevice) (*Fleet, error) {
	f := &Fleet{Name: name, Budget: budget, Devices: devices}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// FleetFromNames builds a fleet of builtin devices, keyed and ordered
// exactly as named (the order pins placement tie-breaking).
func FleetFromNames(names []string, budget Budget) (*Fleet, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("hw: fleet needs at least one device")
	}
	devices := make([]FleetDevice, 0, len(names))
	for _, n := range names {
		s, err := SpecByName(n)
		if err != nil {
			return nil, err
		}
		devices = append(devices, FleetDevice{Key: n, Spec: s})
	}
	return NewFleet(strings.Join(names, "+"), budget, devices...)
}

// Validate reports an error when the fleet is internally inconsistent:
// no devices, duplicate keys, an invalid member spec, a power budget
// below the fleet's idle floor (nothing could ever run), or summed die
// area exceeding the area budget.
func (f *Fleet) Validate() error {
	if len(f.Devices) == 0 {
		return fmt.Errorf("hw: fleet %q has no devices", f.Name)
	}
	seen := make(map[string]bool, len(f.Devices))
	for _, d := range f.Devices {
		if d.Key == "" {
			return fmt.Errorf("hw: fleet %q has a device with an empty key", f.Name)
		}
		if seen[d.Key] {
			return fmt.Errorf("hw: fleet %q has duplicate device key %q", f.Name, d.Key)
		}
		seen[d.Key] = true
		if d.Spec == nil {
			return fmt.Errorf("hw: fleet %q device %q has no spec", f.Name, d.Key)
		}
		if err := d.Spec.Validate(); err != nil {
			return fmt.Errorf("hw: fleet %q device %q: %w", f.Name, d.Key, err)
		}
	}
	if f.Budget.PowerW < 0 || f.Budget.AreaMM2 < 0 {
		return fmt.Errorf("hw: fleet %q has a negative budget", f.Name)
	}
	if f.Budget.PowerW > 0 {
		// The tightest possible draw is every device idle; a budget below
		// that can never host any placement.
		if idle := f.TotalIdleW(); f.Budget.PowerW < idle {
			return fmt.Errorf("hw: fleet %q power budget %.0f W below the %.0f W idle floor",
				f.Name, f.Budget.PowerW, idle)
		}
	}
	if f.Budget.AreaMM2 > 0 {
		if area := f.TotalAreaMM2(); area > f.Budget.AreaMM2 {
			return fmt.Errorf("hw: fleet %q die area %.0f mm² exceeds the %.0f mm² budget",
				f.Name, area, f.Budget.AreaMM2)
		}
	}
	return nil
}

// TotalIdleW is the fleet's idle power floor: every device powered but
// no kernel resident anywhere.
func (f *Fleet) TotalIdleW() float64 {
	var w float64
	for _, d := range f.Devices {
		w += d.Spec.IdlePowerW
	}
	return w
}

// TotalAreaMM2 is the summed die area of the fleet.
func (f *Fleet) TotalAreaMM2() float64 {
	var a float64
	for _, d := range f.Devices {
		a += d.Spec.AreaMM2
	}
	return a
}

// IdleOthersW is the idle power of every fleet device except device i.
func (f *Fleet) IdleOthersW(i int) float64 {
	var w float64
	for j, d := range f.Devices {
		if j != i {
			w += d.Spec.IdlePowerW
		}
	}
	return w
}

// FleetPowerW is the instantaneous fleet draw when device i runs a
// kernel at devicePowerW board power and every other device idles —
// the quantity the power budget constrains.
func (f *Fleet) FleetPowerW(i int, devicePowerW float64) float64 {
	return devicePowerW + f.IdleOthersW(i)
}

// Feasible reports whether running device i at devicePowerW board power
// fits the fleet power budget (a small relative epsilon absorbs the
// model's floating-point rounding; an unset budget admits everything).
func (f *Fleet) Feasible(i int, devicePowerW float64) bool {
	if f.Budget.PowerW <= 0 {
		return true
	}
	return f.FleetPowerW(i, devicePowerW) <= f.Budget.PowerW*(1+1e-12)
}

// DeviceByKey returns the index of the device under key, or -1.
func (f *Fleet) DeviceByKey(key string) int {
	for i, d := range f.Devices {
		if d.Key == key {
			return i
		}
	}
	return -1
}

// Classes returns the distinct device classes present in the fleet, in
// class order.
func (f *Fleet) Classes() []DeviceClass {
	present := [3]bool{}
	for _, d := range f.Devices {
		present[int(d.Spec.Class)] = true
	}
	var out []DeviceClass
	for c := ClassThroughput; c <= ClassAccelerator; c++ {
		if present[int(c)] {
			out = append(out, c)
		}
	}
	return out
}

// Share is one device class's slice of the fleet power budget.
type Share struct {
	Class  DeviceClass
	PowerW float64
}

// PartitionPower splits the fleet power budget across the device
// classes present in the fleet, proportionally to the given non-negative
// weights (Lumos splits its budget across serial cores, throughput
// cores and accelerators the same way). Conservation is exact by
// construction: the last share is the remainder against the running sum
// of the earlier ones, so SumShares always reconstructs Budget.PowerW
// exactly regardless of the weights — re-partitioning can move power
// between classes but never create or destroy it. Classes absent from
// the fleet take no share; at least one
// present class must have positive weight, and the budget must be set.
func (f *Fleet) PartitionPower(weights map[DeviceClass]float64) ([]Share, error) {
	if f.Budget.PowerW <= 0 {
		return nil, fmt.Errorf("hw: fleet %q has no power budget to partition", f.Name)
	}
	classes := f.Classes()
	var total float64
	for _, c := range classes {
		w := weights[c]
		if w < 0 {
			return nil, fmt.Errorf("hw: negative partition weight for %s class", c)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("hw: fleet %q partition weights are all zero", f.Name)
	}
	shares := make([]Share, len(classes))
	var used float64
	for i, c := range classes[:len(classes)-1] {
		p := f.Budget.PowerW * (weights[c] / total)
		shares[i] = Share{Class: c, PowerW: p}
		used += p
	}
	// The last share is the remainder against the left-to-right sum of
	// the earlier shares, so SumShares reconstructs the budget exactly.
	shares[len(classes)-1] = Share{
		Class:  classes[len(classes)-1],
		PowerW: f.Budget.PowerW - used,
	}
	return shares, nil
}

// SumShares adds shares in slice order — the accumulation order under
// which PartitionPower's conservation guarantee is exact.
func SumShares(shares []Share) float64 {
	var w float64
	for _, s := range shares {
		w += s.PowerW
	}
	return w
}
