package hw

import (
	"testing"
	"testing/quick"
)

// TestFig1FrequencyTables checks the device descriptors against the
// frequency availability the paper reports in Fig. 1.
func TestFig1FrequencyTables(t *testing.T) {
	t.Parallel()
	cases := []struct {
		spec               *Spec
		n, minF, maxF, mem int
	}{
		{V100(), 196, 135, 1530, 877},
		{A100(), 81, 210, 1410, 1215},
		{MI100(), 16, 300, 1502, 1200},
	}
	for _, c := range cases {
		if got := len(c.spec.CoreFreqsMHz); got != c.n {
			t.Errorf("%s: %d core frequencies, want %d", c.spec.Name, got, c.n)
		}
		if got := c.spec.MinCoreMHz(); got != c.minF {
			t.Errorf("%s: min core %d MHz, want %d", c.spec.Name, got, c.minF)
		}
		if got := c.spec.MaxCoreMHz(); got != c.maxF {
			t.Errorf("%s: max core %d MHz, want %d", c.spec.Name, got, c.maxF)
		}
		if got := c.spec.MemFreqMHz; got != c.mem {
			t.Errorf("%s: mem freq %d MHz, want %d", c.spec.Name, got, c.mem)
		}
	}
}

func TestV100DefaultClock(t *testing.T) {
	t.Parallel()
	s := V100()
	if s.DefaultCoreMHz < 1300 || s.DefaultCoreMHz > 1320 {
		t.Fatalf("V100 default clock %d MHz, want ~1312 (paper baseline)", s.DefaultCoreMHz)
	}
	if !s.SupportsCoreFreq(s.DefaultCoreMHz) {
		t.Fatalf("V100 default clock %d not in table", s.DefaultCoreMHz)
	}
}

func TestMI100HasNoDefaultClock(t *testing.T) {
	t.Parallel()
	s := MI100()
	if s.DefaultCoreMHz != 0 {
		t.Fatalf("MI100 must auto-scale (no default clock), got %d", s.DefaultCoreMHz)
	}
	if s.BaselineCoreMHz() != s.MaxCoreMHz() {
		t.Fatalf("MI100 baseline should be the max frequency, got %d", s.BaselineCoreMHz())
	}
}

func TestClockTablesStrictlyAscending(t *testing.T) {
	t.Parallel()
	for name, s := range BuiltinSpecs() {
		fs := s.CoreFreqsMHz
		for i := 1; i < len(fs); i++ {
			if fs[i] <= fs[i-1] {
				t.Fatalf("%s: table not ascending at %d: %d then %d", name, i, fs[i-1], fs[i])
			}
		}
	}
}

func TestSupportsCoreFreqMatchesLinearScan(t *testing.T) {
	t.Parallel()
	s := V100()
	member := make(map[int]bool, len(s.CoreFreqsMHz))
	for _, f := range s.CoreFreqsMHz {
		member[f] = true
	}
	f := func(mhz uint16) bool {
		return s.SupportsCoreFreq(int(mhz)) == member[int(mhz)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNearestCoreFreq(t *testing.T) {
	t.Parallel()
	s := MI100()
	if got := s.NearestCoreFreq(310); got != 300 {
		t.Errorf("nearest(310) = %d, want 300", got)
	}
	if got := s.NearestCoreFreq(1490); got != 1502 {
		t.Errorf("nearest(1490) = %d, want 1502", got)
	}
	// Ties prefer the lower frequency.
	if got := s.NearestCoreFreq(340); got != 300 {
		t.Errorf("nearest(340) = %d, want 300 (lower on tie)", got)
	}
}

func TestNearestCoreFreqAlwaysSupported(t *testing.T) {
	t.Parallel()
	s := A100()
	f := func(mhz uint16) bool {
		return s.SupportsCoreFreq(s.NearestCoreFreq(int(mhz)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	t.Parallel()
	good := V100()
	bad := *good
	bad.CoreFreqsMHz = nil
	if bad.Validate() == nil {
		t.Error("empty clock table accepted")
	}
	bad = *good
	bad.DefaultCoreMHz = 1311 // not in table
	if bad.Validate() == nil {
		t.Error("default clock outside table accepted")
	}
	bad = *good
	bad.TDPWatts = bad.IdlePowerW
	if bad.Validate() == nil {
		t.Error("TDP <= idle accepted")
	}
	bad = *good
	bad.BWKneeFrac = 1.5
	if bad.Validate() == nil {
		t.Error("knee fraction > 1 accepted")
	}
}

func TestSpecByName(t *testing.T) {
	t.Parallel()
	// Every catalog entry must resolve — the list is derived from
	// BuiltinSpecs so a new device can never be forgotten here.
	for _, name := range BuiltinNames() {
		if _, err := SpecByName(name); err != nil {
			t.Errorf("SpecByName(%q): %v", name, err)
		}
	}
	if _, err := SpecByName("gtx480"); err == nil {
		t.Error("SpecByName(gtx480) should fail")
	}
}

func TestVoltageRangeAndMonotonicity(t *testing.T) {
	t.Parallel()
	s := V100()
	prev := 0.0
	for _, f := range s.CoreFreqsMHz {
		v := s.Voltage(f)
		if v < s.VMinVolts-1e-9 || v > s.VMaxVolts+1e-9 {
			t.Fatalf("voltage %.3f at %d MHz outside [%.3f, %.3f]", v, f, s.VMinVolts, s.VMaxVolts)
		}
		if v < prev {
			t.Fatalf("voltage not monotone at %d MHz", f)
		}
		prev = v
	}
}
