package hw

import (
	"fmt"
	"math"
)

// Workload is the device-level description of one kernel launch: how much
// work each work-item performs, broken down by resource. The compiler
// pass (internal/features) produces these numbers from the kernel IR, so
// the simulated ground truth is a (noisy, non-linear) function of the
// same static features the machine-learning models observe.
type Workload struct {
	// Name identifies the kernel (used to seed deterministic noise).
	Name string
	// Items is the number of work-items launched.
	Items int64
	// IntOps counts simple integer operations per work-item
	// (add/sub/mul/bitwise).
	IntOps float64
	// FloatOps counts simple floating-point operations per work-item
	// (add/sub/mul).
	FloatOps float64
	// DivOps counts divisions per work-item (integer and float); these
	// occupy the pipeline for many cycles.
	DivOps float64
	// SFOps counts special-function operations (sqrt, exp, log, sin...).
	SFOps float64
	// GlobalBytes counts DRAM traffic per work-item, in bytes.
	GlobalBytes float64
	// LocalBytes counts on-chip scratch/shared-memory traffic per
	// work-item, in bytes.
	LocalBytes float64
}

// TotalOps returns the weighted per-item operation count used by the
// compute-throughput model. Divisions and special functions are weighted
// by their pipeline occupancy.
func (w Workload) TotalOps() float64 {
	return w.IntOps + w.FloatOps + divWeight*w.DivOps + sfWeight*w.SFOps + localWeight*w.LocalBytes/4
}

// Validate reports an error for physically meaningless workloads.
func (w Workload) Validate() error {
	if w.Items <= 0 {
		return fmt.Errorf("hw: workload %q has non-positive item count %d", w.Name, w.Items)
	}
	for _, v := range []float64{w.IntOps, w.FloatOps, w.DivOps, w.SFOps, w.GlobalBytes, w.LocalBytes} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("hw: workload %q has invalid per-item cost", w.Name)
		}
	}
	if w.TotalOps() == 0 && w.GlobalBytes == 0 {
		return fmt.Errorf("hw: workload %q performs no work", w.Name)
	}
	return nil
}

// Pipeline weights: a division occupies the ALU for ~dozens of cycles and
// a special function runs on the (narrower) SFU. Local accesses cost a
// fraction of an op per 4-byte word.
const (
	divWeight   = 14.0
	sfWeight    = 7.0
	localWeight = 0.55
	// smoothMaxP controls overlap between compute and memory phases:
	// t = (t_c^p + t_m^p)^(1/p) approaches max(t_c, t_m) as p grows.
	smoothMaxP = 4.0
	// ipcEff derates the ideal ops/cycle/lane throughput for issue
	// limits and divergence.
	ipcEff = 0.72
)

// SmoothMaxP exports the smooth-max exponent: with t = (tc^p + tm^p)^(1/p),
// the predicted log-log slope of time against frequency (above the
// bandwidth knee) is tc^p / (tc^p + tm^p), which the static roofline
// classifier and the sweep-based one both rely on.
const SmoothMaxP = smoothMaxP

// Measurement is the outcome of evaluating a workload at a frequency.
type Measurement struct {
	// TimeSec is the kernel execution time (launch overhead included).
	TimeSec float64
	// PowerW is the average board power while the kernel is resident.
	PowerW float64
	// EnergyJ = PowerW * TimeSec.
	EnergyJ float64
	// ComputeUtil and MemUtil are the model's internal utilisations
	// (exposed for tests and characterisation tooling).
	ComputeUtil, MemUtil float64
	// Throttled reports whether the TDP clamp engaged.
	Throttled bool
}

// Voltage returns the interpolated core voltage at coreMHz: linear in
// frequency, clamped below at the regulator's voltage floor.
func (s *Spec) Voltage(coreMHz int) float64 {
	fmin, fmax := float64(s.MinCoreMHz()), float64(s.MaxCoreMHz())
	f := float64(coreMHz)
	if floor := s.VFloorFrac * fmax; f < floor {
		f = floor
	}
	x := (f - fmin) / (fmax - fmin)
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return s.VMinVolts + (s.VMaxVolts-s.VMinVolts)*x
}

// effectiveBandwidth returns the DRAM bandwidth reachable at the given
// core frequency. Below the knee the core cannot keep enough requests in
// flight and bandwidth degrades sub-linearly.
func (s *Spec) effectiveBandwidth(coreMHz int) float64 {
	knee := s.BWKneeFrac * float64(s.MaxCoreMHz())
	f := float64(coreMHz)
	if f >= knee {
		return s.MemBWBytes
	}
	return s.MemBWBytes * math.Pow(f/knee, 0.82)
}

// PhaseTimes returns the two roofline phase times for workload w at core
// frequency coreMHz — the compute-pipeline time and the DRAM time for
// the whole launch, in seconds, before smooth-max combination, launch
// overhead, noise and power capping. Exposed so the static roofline
// classifier (internal/kernelir/analysis) labels kernels with exactly
// the arithmetic the ground-truth model uses; coreMHz is not checked
// against the frequency table.
func (s *Spec) PhaseTimes(w Workload, coreMHz int) (compute, memory float64) {
	fHz := float64(coreMHz) * 1e6
	opsPerSec := float64(s.SMs) * float64(s.LanesPerSM) * fHz * ipcEff
	items := float64(w.Items)
	return items * w.TotalOps() / opsPerSec, items * w.GlobalBytes / s.effectiveBandwidth(coreMHz)
}

// Evaluate runs the analytic model: execution time and average power for
// workload w at core frequency coreMHz. It is a pure function (plus the
// deterministic per-(kernel,frequency) noise), so it can serve both the
// virtual device and offline ground-truth computation in tests.
func (s *Spec) Evaluate(w Workload, coreMHz int) (Measurement, error) {
	if err := w.Validate(); err != nil {
		return Measurement{}, err
	}
	if !s.SupportsCoreFreq(coreMHz) {
		return Measurement{}, fmt.Errorf("hw: %s does not support core frequency %d MHz", s.Name, coreMHz)
	}

	items := float64(w.Items)
	tc, tm := s.PhaseTimes(w, coreMHz)

	// Smooth-max roofline: phases overlap, but the longer one dominates.
	var t float64
	switch {
	case tc == 0:
		t = tm
	case tm == 0:
		t = tc
	default:
		t = math.Pow(math.Pow(tc, smoothMaxP)+math.Pow(tm, smoothMaxP), 1/smoothMaxP)
	}
	uc, um := 0.0, 0.0
	if t > 0 {
		uc = tc / t
		um = tm / t
	}
	t += s.LaunchOverheadSec

	v := s.Voltage(coreMHz)
	fGHz := float64(coreMHz) / 1000
	activity := s.BaseActivity + (1-s.BaseActivity)*uc
	pCore := s.CoreDynCoeff * fGHz * v * v * activity
	bwUtil := 0.0
	if t > 0 {
		bwUtil = items * w.GlobalBytes / t / s.MemBWBytes
		if bwUtil > 1 {
			bwUtil = 1
		}
	}
	pMem := s.MemDynCoeff * bwUtil
	pLeak := s.LeakCoeff * v * v
	p := s.IdlePowerW + pCore + pMem + pLeak

	// Deterministic measurement noise (~±1.2% time, ±1.5% power).
	nt, np := noisePair(w.Name, coreMHz, w.Items)
	t *= 1 + 0.012*nt
	p *= 1 + 0.015*np

	throttled := false
	if p > s.TDPWatts {
		// Hardware power capping: the board throttles so the average
		// power equals the TDP; work completes proportionally slower.
		t *= p / s.TDPWatts
		p = s.TDPWatts
		throttled = true
	}

	return Measurement{
		TimeSec:     t,
		PowerW:      p,
		EnergyJ:     p * t,
		ComputeUtil: uc,
		MemUtil:     um,
		Throttled:   throttled,
	}, nil
}

// Sweep evaluates the workload at every supported core frequency and
// returns the measurements in frequency-table order.
func (s *Spec) Sweep(w Workload) ([]Measurement, error) {
	out := make([]Measurement, len(s.CoreFreqsMHz))
	for i, f := range s.CoreFreqsMHz {
		m, err := s.Evaluate(w, f)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}
