// Package hw provides the simulated GPU hardware substrate used by the
// SYnergy reproduction: device descriptors with realistic DVFS frequency
// tables (NVIDIA V100/A100, AMD MI100, as reported in Fig. 1 of the
// paper), an analytic roofline execution-time model, a CMOS-style power
// model, and a virtual-time device timeline that integrates energy.
//
// The paper evaluates on real GPUs; this package is the documented
// substitution (see DESIGN.md §1). All behaviour is deterministic.
package hw

import (
	"fmt"
	"sort"
	"strings"
)

// Vendor identifies the GPU vendor, which selects the management-library
// backend (NVML for NVIDIA, ROCm SMI for AMD).
type Vendor int

const (
	// NVIDIA devices are managed through the simulated NVML binding.
	NVIDIA Vendor = iota
	// AMD devices are managed through the simulated ROCm SMI binding.
	AMD
	// Intel CPUs are managed through the simulated RAPL/cpufreq binding
	// (§2.1: RAPL provides the CPU-side power interface).
	Intel
)

// String returns the vendor name.
func (v Vendor) String() string {
	switch v {
	case NVIDIA:
		return "NVIDIA"
	case AMD:
		return "AMD"
	case Intel:
		return "Intel"
	default:
		return fmt.Sprintf("Vendor(%d)", int(v))
	}
}

// DeviceClass is the Lumos HeterogSys role a device plays inside a
// heterogeneous fleet: latency-oriented serial cores (CPUs),
// throughput cores (GPUs), or fixed-function/reconfigurable
// accelerators. The fleet budget model (see Fleet) splits a shared
// power envelope across the classes.
type DeviceClass int

const (
	// ClassThroughput marks wide throughput devices (GPUs). It is the
	// zero value, so plain GPU specs need no explicit class.
	ClassThroughput DeviceClass = iota
	// ClassSerial marks latency-oriented serial-core devices (CPUs).
	ClassSerial
	// ClassAccelerator marks ASIC/FPGA-style accelerators.
	ClassAccelerator
)

// String returns the class name.
func (c DeviceClass) String() string {
	switch c {
	case ClassThroughput:
		return "throughput"
	case ClassSerial:
		return "serial"
	case ClassAccelerator:
		return "accelerator"
	default:
		return fmt.Sprintf("DeviceClass(%d)", int(c))
	}
}

// Spec describes a compute device: its DVFS capabilities and the
// parameters of the analytic performance/power model. All power figures
// are in watts, frequencies in MHz, bandwidth in bytes/second.
type Spec struct {
	Name   string
	Vendor Vendor

	// Class is the device's role in a heterogeneous fleet (GPUs are
	// throughput devices, CPUs serial, FPGAs/ASICs accelerators).
	Class DeviceClass

	// AreaMM2 is the die area in mm², the second axis of the Lumos-style
	// fleet budget (zero: unspecified, exempt from area accounting).
	AreaMM2 float64

	// MemFreqMHz is the (fixed) HBM memory frequency. The paper notes
	// that for HBM devices the memory frequency cannot be scaled.
	MemFreqMHz int

	// CoreFreqsMHz lists every supported core (SM) frequency in
	// ascending order, mirroring nvmlDeviceGetSupportedGraphicsClocks /
	// rocm_smi DPM states.
	CoreFreqsMHz []int

	// DefaultCoreMHz is the application clock the driver selects by
	// default. Zero means the device has no default configuration and
	// auto-scales with the workload (AMD MI100 behaviour, §2.1); the
	// effective performance baseline is then the maximum frequency.
	DefaultCoreMHz int

	// --- Performance model ---

	// SMs is the number of streaming multiprocessors (compute units).
	SMs int
	// LanesPerSM is the number of FP32 lanes per SM.
	LanesPerSM int
	// MemBWBytes is the peak DRAM bandwidth in bytes/second.
	MemBWBytes float64
	// BWKneeFrac is the fraction of the maximum core frequency above
	// which the device can saturate DRAM bandwidth. Below the knee,
	// effective bandwidth degrades (not enough in-flight requests).
	BWKneeFrac float64
	// LaunchOverheadSec is the fixed per-kernel launch latency.
	LaunchOverheadSec float64
	// ClockSetOverheadSec is the cost of one application-clock change
	// through the management library (the paper reports this becomes
	// significant as the number of submitted kernels grows, §4.4).
	ClockSetOverheadSec float64

	// --- Power model ---

	// IdlePowerW is the board power when no kernel is resident.
	IdlePowerW float64
	// TDPWatts is the board power limit; the model throttles above it.
	TDPWatts float64
	// VMinVolts / VMaxVolts give the core voltage at the minimum and
	// maximum core frequency; voltage is interpolated linearly.
	VMinVolts, VMaxVolts float64
	// VFloorFrac is the fraction of the maximum core frequency below
	// which the voltage regulator can no longer lower the voltage (the
	// near-threshold floor): frequencies below the floor run at the
	// floor voltage, so they cost the same energy per operation while
	// taking longer — the reason the lowest clocks are always
	// energy-inefficient (§2.2). Zero disables the floor.
	VFloorFrac float64
	// CoreDynCoeff scales dynamic core power: P = c * f[GHz] * V^2 * a.
	CoreDynCoeff float64
	// MemDynCoeff scales memory-subsystem power by bandwidth utilisation.
	MemDynCoeff float64
	// LeakCoeff scales leakage power by V^2.
	LeakCoeff float64
	// BaseActivity is the fraction of core dynamic power drawn even by
	// fully memory-bound kernels (instruction issue, LSU, caches).
	BaseActivity float64
}

// Validate reports an error when the spec is internally inconsistent.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("hw: spec has empty name")
	}
	if len(s.CoreFreqsMHz) == 0 {
		return fmt.Errorf("hw: spec %s has no core frequencies", s.Name)
	}
	for i := 1; i < len(s.CoreFreqsMHz); i++ {
		if s.CoreFreqsMHz[i] <= s.CoreFreqsMHz[i-1] {
			return fmt.Errorf("hw: spec %s core frequencies not strictly ascending at index %d", s.Name, i)
		}
	}
	if s.DefaultCoreMHz != 0 && !s.SupportsCoreFreq(s.DefaultCoreMHz) {
		return fmt.Errorf("hw: spec %s default core frequency %d MHz not in table", s.Name, s.DefaultCoreMHz)
	}
	if s.SMs <= 0 || s.LanesPerSM <= 0 || s.MemBWBytes <= 0 {
		return fmt.Errorf("hw: spec %s has non-positive performance parameters", s.Name)
	}
	if s.TDPWatts <= s.IdlePowerW {
		return fmt.Errorf("hw: spec %s TDP must exceed idle power", s.Name)
	}
	if s.VMinVolts <= 0 || s.VMaxVolts < s.VMinVolts {
		return fmt.Errorf("hw: spec %s has invalid voltage range", s.Name)
	}
	if s.BWKneeFrac <= 0 || s.BWKneeFrac >= 1 {
		return fmt.Errorf("hw: spec %s BWKneeFrac must be in (0,1)", s.Name)
	}
	if s.BaseActivity < 0 || s.BaseActivity > 1 {
		return fmt.Errorf("hw: spec %s BaseActivity must be in [0,1]", s.Name)
	}
	if s.VFloorFrac < 0 || s.VFloorFrac >= 1 {
		return fmt.Errorf("hw: spec %s VFloorFrac must be in [0,1)", s.Name)
	}
	if s.AreaMM2 < 0 {
		return fmt.Errorf("hw: spec %s has negative die area", s.Name)
	}
	switch s.Class {
	case ClassThroughput, ClassSerial, ClassAccelerator:
	default:
		return fmt.Errorf("hw: spec %s has unknown device class %d", s.Name, int(s.Class))
	}
	return nil
}

// MinCoreMHz returns the lowest supported core frequency.
func (s *Spec) MinCoreMHz() int { return s.CoreFreqsMHz[0] }

// MaxCoreMHz returns the highest supported core frequency.
func (s *Spec) MaxCoreMHz() int { return s.CoreFreqsMHz[len(s.CoreFreqsMHz)-1] }

// BaselineCoreMHz returns the frequency used as the evaluation baseline:
// the default application clock, or the maximum frequency for devices
// that auto-scale (no default configuration).
func (s *Spec) BaselineCoreMHz() int {
	if s.DefaultCoreMHz != 0 {
		return s.DefaultCoreMHz
	}
	return s.MaxCoreMHz()
}

// SupportsCoreFreq reports whether mhz is an entry of the clock table.
func (s *Spec) SupportsCoreFreq(mhz int) bool {
	lo, hi := 0, len(s.CoreFreqsMHz)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s.CoreFreqsMHz[mid] == mhz:
			return true
		case s.CoreFreqsMHz[mid] < mhz:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// NearestCoreFreq returns the supported frequency closest to mhz,
// preferring the lower one on ties (conservative for power).
func (s *Spec) NearestCoreFreq(mhz int) int {
	best := s.CoreFreqsMHz[0]
	bestD := abs(mhz - best)
	for _, f := range s.CoreFreqsMHz[1:] {
		if d := abs(mhz - f); d < bestD {
			best, bestD = f, d
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// nvidiaClockTable generates an NVML-style supported-clock list with n
// entries from min to max MHz. NVML tables use alternating ~7/8 MHz
// steps; the generator distributes the residue evenly and guarantees the
// exact endpoints and count.
func nvidiaClockTable(minMHz, maxMHz, n int) []int {
	if n < 2 {
		panic("hw: clock table needs at least two entries")
	}
	span := maxMHz - minMHz
	steps := n - 1
	base := span / steps
	extra := span - base*steps // number of steps that get +1 groups
	freqs := make([]int, 0, n)
	acc := minMHz
	freqs = append(freqs, acc)
	carried := 0
	for i := 0; i < steps; i++ {
		step := base
		carried += extra
		if carried >= steps {
			carried -= steps
			step++
		}
		acc += step
		freqs = append(freqs, acc)
	}
	if freqs[len(freqs)-1] != maxMHz {
		panic("hw: clock table generation failed to reach max frequency")
	}
	return freqs
}

// V100 returns the spec of an NVIDIA Tesla V100 SXM2 (16 GB):
// 196 core frequencies from 135 to 1530 MHz, HBM2 fixed at 877 MHz,
// default application clock 1312 MHz (the paper's baseline, Fig. 2).
func V100() *Spec {
	s := &Spec{
		Name:                "NVIDIA V100",
		Vendor:              NVIDIA,
		AreaMM2:             815,
		MemFreqMHz:          877,
		CoreFreqsMHz:        nvidiaClockTable(135, 1530, 196),
		DefaultCoreMHz:      0, // fixed below to an exact table entry
		SMs:                 80,
		LanesPerSM:          64,
		MemBWBytes:          900e9,
		BWKneeFrac:          0.55,
		LaunchOverheadSec:   8e-6,
		ClockSetOverheadSec: 1.5e-4,
		IdlePowerW:          32,
		TDPWatts:            300,
		VMinVolts:           0.712,
		VMaxVolts:           1.082,
		VFloorFrac:          0.50,
		CoreDynCoeff:        138,
		MemDynCoeff:         52,
		LeakCoeff:           21,
		BaseActivity:        0.34,
	}
	s.DefaultCoreMHz = s.NearestCoreFreq(1312)
	mustValidate(s)
	return s
}

// A100 returns the spec of an NVIDIA A100 SXM4 (40 GB): 81 core
// frequencies from 210 to 1410 MHz, HBM2e fixed at 1215 MHz.
func A100() *Spec {
	s := &Spec{
		Name:                "NVIDIA A100",
		Vendor:              NVIDIA,
		AreaMM2:             826,
		MemFreqMHz:          1215,
		CoreFreqsMHz:        nvidiaClockTable(210, 1410, 81),
		DefaultCoreMHz:      1410,
		SMs:                 108,
		LanesPerSM:          64,
		MemBWBytes:          1555e9,
		BWKneeFrac:          0.52,
		LaunchOverheadSec:   7e-6,
		ClockSetOverheadSec: 1.5e-4,
		IdlePowerW:          42,
		TDPWatts:            400,
		VMinVolts:           0.70,
		VMaxVolts:           1.06,
		VFloorFrac:          0.50,
		CoreDynCoeff:        212,
		MemDynCoeff:         68,
		LeakCoeff:           28,
		BaseActivity:        0.34,
	}
	mustValidate(s)
	return s
}

// MI100 returns the spec of an AMD Instinct MI100: 16 DPM core states
// from 300 to 1502 MHz, HBM2 fixed at 1200 MHz. The MI100 exposes no
// default application clock (DefaultCoreMHz == 0): the driver
// auto-scales with the workload, and the paper observes that this
// auto/default configuration always delivers the best performance.
func MI100() *Spec {
	s := &Spec{
		Name:       "AMD MI100",
		Vendor:     AMD,
		AreaMM2:    750,
		MemFreqMHz: 1200,
		CoreFreqsMHz: []int{
			300, 380, 460, 540, 620, 700, 780, 860,
			940, 1020, 1100, 1180, 1260, 1340, 1420, 1502,
		},
		DefaultCoreMHz:      0,
		SMs:                 120,
		LanesPerSM:          64,
		MemBWBytes:          1229e9,
		BWKneeFrac:          0.78,
		LaunchOverheadSec:   10e-6,
		ClockSetOverheadSec: 2e-4,
		IdlePowerW:          37,
		TDPWatts:            290,
		VMinVolts:           0.73,
		VMaxVolts:           1.05,
		VFloorFrac:          0.55,
		CoreDynCoeff:        128,
		MemDynCoeff:         48,
		LeakCoeff:           24,
		BaseActivity:        0.42,
	}
	mustValidate(s)
	return s
}

// Xeon8160 returns the spec of an Intel Xeon Platinum 8160 package: 26
// P-states from 1000 to 3500 MHz (turbo range), DDR4-2666 memory. The
// same roofline/DVFS model applies with CPU-scale parameters, which is
// what makes the SYnergy binding layer portable beyond GPUs (§2.1).
func Xeon8160() *Spec {
	freqs := make([]int, 0, 26)
	for f := 1000; f <= 3500; f += 100 {
		freqs = append(freqs, f)
	}
	s := &Spec{
		Name:                "Intel Xeon 8160",
		Vendor:              Intel,
		Class:               ClassSerial,
		AreaMM2:             694,
		MemFreqMHz:          2666,
		CoreFreqsMHz:        freqs,
		DefaultCoreMHz:      2100, // base clock (turbo governed separately)
		SMs:                 24,   // cores
		LanesPerSM:          16,   // AVX-512 fp32 lanes
		MemBWBytes:          128e9,
		BWKneeFrac:          0.35,
		LaunchOverheadSec:   2e-6,
		ClockSetOverheadSec: 5e-5, // cpufreq writes are cheap
		IdlePowerW:          35,
		TDPWatts:            150,
		VMinVolts:           0.70,
		VMaxVolts:           1.20,
		VFloorFrac:          0.35,
		CoreDynCoeff:        28,
		MemDynCoeff:         18,
		LeakCoeff:           14,
		BaseActivity:        0.30,
	}
	mustValidate(s)
	return s
}

// H100 returns the spec of an NVIDIA H100 SXM5 (80 GB), the newer GPU
// generation of the fleet model: 119 core frequencies from 210 to
// 1980 MHz, HBM3 fixed at 2619 MHz, default application clock at the
// maximum boost state.
func H100() *Spec {
	s := &Spec{
		Name:                "NVIDIA H100",
		Vendor:              NVIDIA,
		AreaMM2:             814,
		MemFreqMHz:          2619,
		CoreFreqsMHz:        nvidiaClockTable(210, 1980, 119),
		DefaultCoreMHz:      1980,
		SMs:                 132,
		LanesPerSM:          128,
		MemBWBytes:          3350e9,
		BWKneeFrac:          0.48,
		LaunchOverheadSec:   6e-6,
		ClockSetOverheadSec: 1.5e-4,
		IdlePowerW:          72,
		TDPWatts:            700,
		VMinVolts:           0.68,
		VMaxVolts:           1.05,
		VFloorFrac:          0.50,
		CoreDynCoeff:        230,
		MemDynCoeff:         95,
		LeakCoeff:           34,
		BaseActivity:        0.34,
	}
	mustValidate(s)
	return s
}

// Xeon8480 returns the spec of an Intel Xeon Platinum 8480+ (Sapphire
// Rapids) package: 31 P-states from 800 to 3800 MHz, DDR5-4800 memory.
// Together with the 8160 it anchors the bandwidth-bound CPU end of the
// CPU-vs-GPU portability scenarios (Reguly's SYCL study): per-core
// compute throughput grows while the memory system stays far from GPU
// bandwidth, so most streaming kernels are memory-bound on it.
func Xeon8480() *Spec {
	freqs := make([]int, 0, 31)
	for f := 800; f <= 3800; f += 100 {
		freqs = append(freqs, f)
	}
	s := &Spec{
		Name:                "Intel Xeon 8480+",
		Vendor:              Intel,
		Class:               ClassSerial,
		AreaMM2:             1510, // four compute tiles
		MemFreqMHz:          4800,
		CoreFreqsMHz:        freqs,
		DefaultCoreMHz:      2000, // base clock
		SMs:                 56,   // cores
		LanesPerSM:          16,   // AVX-512 fp32 lanes
		MemBWBytes:          307e9,
		BWKneeFrac:          0.30,
		LaunchOverheadSec:   2e-6,
		ClockSetOverheadSec: 5e-5,
		IdlePowerW:          60,
		TDPWatts:            350,
		VMinVolts:           0.65,
		VMaxVolts:           1.15,
		VFloorFrac:          0.32,
		CoreDynCoeff:        55,
		MemDynCoeff:         26,
		LeakCoeff:           22,
		BaseActivity:        0.30,
	}
	mustValidate(s)
	return s
}

// AlveoV80 returns the descriptor of an AMD (Xilinx) Alveo V80-class
// reconfigurable accelerator — the Lumos-style budgeted accelerator of
// the fleet model: a wide, slow dataflow array with a handful of fabric
// clock states, a narrow near-threshold voltage range and HBM2e. It has
// no default clock (the loaded bitstream's Fmax governs; the effective
// baseline is the top state), and it is the energy-efficiency end of
// the fleet: low clocks and voltages buy joules at the price of
// latency.
func AlveoV80() *Spec {
	s := &Spec{
		Name:       "AMD Alveo V80",
		Vendor:     AMD,
		Class:      ClassAccelerator,
		AreaMM2:    820,
		MemFreqMHz: 1600,
		CoreFreqsMHz: []int{
			200, 300, 400, 500, 600, 700, 800,
		},
		DefaultCoreMHz:      0,
		SMs:                 64, // dataflow regions
		LanesPerSM:          96, // DSP lanes per region
		MemBWBytes:          820e9,
		BWKneeFrac:          0.60,
		LaunchOverheadSec:   2e-5,
		ClockSetOverheadSec: 3e-4,
		IdlePowerW:          22,
		TDPWatts:            190,
		VMinVolts:           0.72,
		VMaxVolts:           0.88,
		VFloorFrac:          0.40,
		CoreDynCoeff:        55,
		MemDynCoeff:         22,
		LeakCoeff:           14,
		BaseActivity:        0.38,
	}
	mustValidate(s)
	return s
}

func mustValidate(s *Spec) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
}

// BuiltinSpecs returns the device catalog keyed by the short
// identifiers usable on command lines: the three devices the paper
// characterises in Fig. 1 plus the fleet-model additions (CPUs, the
// H100 generation and the Alveo accelerator).
func BuiltinSpecs() map[string]*Spec {
	return map[string]*Spec{
		"v100":     V100(),
		"a100":     A100(),
		"h100":     H100(),
		"mi100":    MI100(),
		"xeon":     Xeon8160(),
		"xeon8480": Xeon8480(),
		"alveo":    AlveoV80(),
	}
}

// BuiltinNames lists the catalog's short identifiers in sorted order.
// Command-line help and error messages derive from it, so adding a
// device to the catalog never leaves a stale hard-coded list behind.
func BuiltinNames() []string {
	m := BuiltinSpecs()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SpecByName returns a builtin spec by its short identifier.
func SpecByName(name string) (*Spec, error) {
	s, ok := BuiltinSpecs()[name]
	if !ok {
		return nil, fmt.Errorf("hw: unknown device %q (want one of %s)",
			name, strings.Join(BuiltinNames(), ", "))
	}
	return s, nil
}
