package hw

import (
	"fmt"
	"sort"
	"sync"

	"synergy/internal/fault"
	"synergy/internal/telemetry"
)

// Segment is one interval of the device timeline with constant power.
type Segment struct {
	Start, End float64 // seconds of virtual time
	PowerW     float64
	Label      string
}

// KernelRecord describes one executed kernel on the device timeline.
type KernelRecord struct {
	Name        string
	CoreMHz     int
	Start, End  float64
	EnergyJ     float64
	AvgPowerW   float64
	Measurement Measurement
}

// Device is a virtual GPU: it owns a virtual-time timeline on which
// kernels execute according to the analytic model, integrates board
// energy (busy and idle), and exposes the clock controls that the
// management-library bindings (internal/nvml, internal/rocmsmi) wrap.
//
// A Device is safe for concurrent use; operations are serialised, which
// mirrors a real GPU executing one compute kernel at a time per queue.
type Device struct {
	spec *Spec

	mu          sync.Mutex
	now         float64
	busy        []Segment // busy (non-idle-power) segments, ascending
	appClockMHz int       // 0 = auto (no application clock pinned)
	kernels     int64
	clockSets   int64
	driverFlags map[string]bool
	powerLimitW float64 // 0 = board default (TDP)
	label       string
	injector    *fault.Injector
	telemetry   *telemetry.Registry
}

// NewDevice creates a virtual device with the driver-default clocks.
func NewDevice(spec *Spec) *Device {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Device{spec: spec, appClockMHz: spec.DefaultCoreMHz}
}

// Spec returns the device descriptor.
func (d *Device) Spec() *Spec { return d.spec }

// SetLabel gives the device a stable identity ("node0/gpu1") used to
// qualify fault-injection sites; without one, sites fall back to the
// library-local device index, which is only unique within one node.
func (d *Device) SetLabel(s string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.label = s
}

// Label returns the device's identity label ("" when never set).
func (d *Device) Label() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.label
}

// SetFaultInjector attaches a fault injector to the device. Like driver
// flags, the attachment is device state: every management-library
// session (NVML, SMI) and runtime queue opened on the device consults
// it. A nil injector detaches.
func (d *Device) SetFaultInjector(in *fault.Injector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.injector = in
}

// FaultInjector returns the attached injector (nil when none; a nil
// injector's Check is a no-op, so callers need no guard).
func (d *Device) FaultInjector() *fault.Injector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.injector
}

// SetTelemetry attaches a telemetry registry to the device. Like the
// fault injector, the attachment is device state: the runtime queue and
// every management-library session opened on the device report into it
// without any signature changes along the way. A nil registry detaches.
func (d *Device) SetTelemetry(r *telemetry.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.telemetry = r
}

// Telemetry returns the attached registry (nil when none; every method
// on a nil registry is a no-op, so callers need no guard).
func (d *Device) Telemetry() *telemetry.Registry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.telemetry
}

// ResetDriverFlags clears all persistent driver state — what a node
// reboot does to API-restriction bits and similar driver-held flags.
func (d *Device) ResetDriverFlags() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.driverFlags = nil
}

// Now returns the current virtual time in seconds.
func (d *Device) Now() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.now
}

// AppClockMHz returns the pinned application clock, or 0 when the device
// auto-scales (no application clock set).
func (d *Device) AppClockMHz() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.appClockMHz
}

// KernelCount returns the number of kernels executed so far.
func (d *Device) KernelCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kernels
}

// ClockSetCount returns the number of application-clock changes so far.
func (d *Device) ClockSetCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clockSets
}

// SetDriverFlag stores a named piece of persistent driver state on the
// device (for example NVML API-restriction bits). Driver state survives
// across management-library sessions — the root cause of the
// "configuration left behind by the previous job" hazard that the SLURM
// plugin's epilogue must clean up (§7.1).
func (d *Device) SetDriverFlag(name string, v bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.driverFlags == nil {
		d.driverFlags = map[string]bool{}
	}
	d.driverFlags[name] = v
}

// DriverFlag reads a named driver flag (false when never set).
func (d *Device) DriverFlag(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.driverFlags[name]
}

// SetPowerLimit sets the board power-management limit in watts
// (0 restores the default, the TDP). Limits below a safe floor or above
// the TDP are rejected, mirroring nvmlDeviceSetPowerManagementLimit.
func (d *Device) SetPowerLimit(watts float64) error {
	if watts != 0 && (watts < d.spec.IdlePowerW*2 || watts > d.spec.TDPWatts) {
		return fmt.Errorf("hw: power limit %.0f W outside [%.0f, %.0f]",
			watts, d.spec.IdlePowerW*2, d.spec.TDPWatts)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.powerLimitW = watts
	return nil
}

// PowerLimit returns the active power limit in watts (the TDP when no
// explicit limit is set).
func (d *Device) PowerLimit() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.powerLimitLocked()
}

func (d *Device) powerLimitLocked() float64 {
	if d.powerLimitW > 0 {
		return d.powerLimitW
	}
	return d.spec.TDPWatts
}

// SetAppClock pins the application clock to mhz. The change costs
// ClockSetOverheadSec of idle time on the timeline — the overhead the
// paper measures growing with the number of submitted kernels (§4.4).
func (d *Device) SetAppClock(mhz int) error {
	if !d.spec.SupportsCoreFreq(mhz) {
		return fmt.Errorf("hw: %s does not support core frequency %d MHz", d.spec.Name, mhz)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.appClockMHz == mhz {
		return nil // drivers skip redundant sets
	}
	d.now += d.spec.ClockSetOverheadSec
	d.appClockMHz = mhz
	d.clockSets++
	return nil
}

// ResetAppClock restores the driver default (or auto for devices with no
// default), also costing one clock-set overhead if a change occurs.
func (d *Device) ResetAppClock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.appClockMHz != d.spec.DefaultCoreMHz {
		d.now += d.spec.ClockSetOverheadSec
		d.appClockMHz = d.spec.DefaultCoreMHz
		d.clockSets++
	}
}

// EffectiveCoreMHz is the frequency the next kernel will run at: the
// pinned application clock, or — in auto mode — the maximum boost state
// (the MI100 behaviour the paper describes: the driver scales to the
// workload, and compute kernels boost to the top DPM state).
func (d *Device) EffectiveCoreMHz() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.effectiveCoreLocked()
}

func (d *Device) effectiveCoreLocked() int {
	if d.appClockMHz != 0 {
		return d.appClockMHz
	}
	return d.spec.MaxCoreMHz()
}

// ExecuteKernel runs the workload at the effective clock, advancing the
// timeline and recording a busy segment.
func (d *Device) ExecuteKernel(w Workload) (KernelRecord, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	freq := d.effectiveCoreLocked()
	m, err := d.spec.Evaluate(w, freq)
	if err != nil {
		return KernelRecord{}, err
	}
	// Board power capping: when a power-management limit below the TDP
	// is active, the hardware throttles so average power meets the cap
	// and the kernel stretches proportionally (energy is conserved).
	if limit := d.powerLimitLocked(); m.PowerW > limit {
		m.TimeSec *= m.PowerW / limit
		m.PowerW = limit
		m.Throttled = true
	}
	start := d.now
	end := start + m.TimeSec
	d.busy = append(d.busy, Segment{Start: start, End: end, PowerW: m.PowerW, Label: w.Name})
	d.now = end
	d.kernels++
	return KernelRecord{
		Name:        w.Name,
		CoreMHz:     freq,
		Start:       start,
		End:         end,
		EnergyJ:     m.EnergyJ,
		AvgPowerW:   m.PowerW,
		Measurement: m,
	}, nil
}

// AdvanceIdle moves the timeline forward by dt seconds at idle power
// (host gaps, MPI communication, scheduler prologue work...).
func (d *Device) AdvanceIdle(dt float64) {
	if dt < 0 {
		panic("hw: negative idle advance")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now += dt
}

// PowerAt returns the instantaneous board power at virtual time t.
// Outside any busy segment the board draws idle power.
func (d *Device) PowerAt(t float64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.powerAtLocked(t)
}

func (d *Device) powerAtLocked(t float64) float64 {
	i := sort.Search(len(d.busy), func(i int) bool { return d.busy[i].End > t })
	if i < len(d.busy) && d.busy[i].Start <= t && t < d.busy[i].End {
		return d.busy[i].PowerW
	}
	return d.spec.IdlePowerW
}

// EnergyBetween integrates board power exactly over [t0, t1).
func (d *Device) EnergyBetween(t0, t1 float64) float64 {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.spec.IdlePowerW * (t1 - t0)
	i := sort.Search(len(d.busy), func(i int) bool { return d.busy[i].End > t0 })
	for ; i < len(d.busy) && d.busy[i].Start < t1; i++ {
		s := d.busy[i]
		lo, hi := s.Start, s.End
		if lo < t0 {
			lo = t0
		}
		if hi > t1 {
			hi = t1
		}
		if hi > lo {
			e += (s.PowerW - d.spec.IdlePowerW) * (hi - lo)
		}
	}
	return e
}

// SampledEnergyBetween estimates the energy over [t0, t1) the way the
// vendor libraries do it: the instantaneous power is polled on a fixed
// global grid with the given sampling period and integrated with a
// left-Riemann sum. For intervals shorter than the sampling period this
// estimate is badly wrong — the fine-grained-profiling limitation the
// paper discusses in §4.4.
func (d *Device) SampledEnergyBetween(t0, t1, period float64) float64 {
	if period <= 0 {
		panic("hw: sampling period must be positive")
	}
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// First sample tick at or after t0 on the global grid.
	k := float64(int64(t0 / period))
	if k*period < t0 {
		k++
	}
	e := 0.0
	for t := k * period; t < t1; t += period {
		e += d.powerAtLocked(t) * period
	}
	return e
}

// Segments returns a copy of the busy segments (for tooling and tests).
func (d *Device) Segments() []Segment {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Segment, len(d.busy))
	copy(out, d.busy)
	return out
}
