package hw

import (
	"math"
	"testing"
)

// Reference workloads spanning the compute/memory-bound spectrum.
func computeBoundWL() Workload {
	return Workload{Name: "cb", Items: 1 << 20, FloatOps: 2000, GlobalBytes: 8}
}

func memoryBoundWL() Workload {
	return Workload{Name: "mb", Items: 1 << 20, FloatOps: 40, GlobalBytes: 64}
}

func TestEvaluateDeterministic(t *testing.T) {
	t.Parallel()
	s := V100()
	w := computeBoundWL()
	a, err := s.Evaluate(w, s.DefaultCoreMHz)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Evaluate(w, s.DefaultCoreMHz)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Evaluate not deterministic: %+v vs %+v", a, b)
	}
}

func TestEvaluateEnergyIsPowerTimesTime(t *testing.T) {
	t.Parallel()
	s := V100()
	for _, w := range []Workload{computeBoundWL(), memoryBoundWL()} {
		for _, f := range []int{s.MinCoreMHz(), s.DefaultCoreMHz, s.MaxCoreMHz()} {
			m, err := s.Evaluate(w, f)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(m.EnergyJ-m.PowerW*m.TimeSec) > 1e-9*m.EnergyJ {
				t.Errorf("%s@%d: energy %.6g != P*t %.6g", w.Name, f, m.EnergyJ, m.PowerW*m.TimeSec)
			}
		}
	}
}

func TestEvaluateRejectsUnsupportedFrequency(t *testing.T) {
	t.Parallel()
	s := V100()
	if _, err := s.Evaluate(computeBoundWL(), 1311); err == nil {
		t.Fatal("unsupported frequency accepted")
	}
}

func TestEvaluateRejectsInvalidWorkload(t *testing.T) {
	t.Parallel()
	s := V100()
	if _, err := s.Evaluate(Workload{Name: "empty", Items: 0}, s.DefaultCoreMHz); err == nil {
		t.Error("zero-item workload accepted")
	}
	if _, err := s.Evaluate(Workload{Name: "neg", Items: 10, FloatOps: -1}, s.DefaultCoreMHz); err == nil {
		t.Error("negative op count accepted")
	}
	if _, err := s.Evaluate(Workload{Name: "nowork", Items: 10}, s.DefaultCoreMHz); err == nil {
		t.Error("no-work workload accepted")
	}
}

func TestPowerNeverExceedsTDP(t *testing.T) {
	t.Parallel()
	for _, s := range []*Spec{V100(), A100(), MI100()} {
		for _, w := range []Workload{computeBoundWL(), memoryBoundWL()} {
			ms, err := s.Sweep(w)
			if err != nil {
				t.Fatal(err)
			}
			for i, m := range ms {
				if m.PowerW > s.TDPWatts+1e-9 {
					t.Errorf("%s %s@%d MHz: power %.1f W exceeds TDP %.1f",
						s.Name, w.Name, s.CoreFreqsMHz[i], m.PowerW, s.TDPWatts)
				}
			}
		}
	}
}

func TestTimeDecreasesWithFrequency(t *testing.T) {
	t.Parallel()
	// Up to the ~1.2% noise, higher clocks are never slower.
	s := V100()
	w := computeBoundWL()
	ms, err := s.Sweep(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].TimeSec > ms[i-1].TimeSec*1.03 {
			t.Fatalf("time increased with frequency at %d MHz: %.6g -> %.6g",
				s.CoreFreqsMHz[i], ms[i-1].TimeSec, ms[i].TimeSec)
		}
	}
}

func TestComputeBoundScalesWithFrequency(t *testing.T) {
	t.Parallel()
	// For a compute-bound kernel, t(fmax)/t(fmin) ~ fmin/fmax.
	s := V100()
	w := computeBoundWL()
	lo, err := s.Evaluate(w, s.MinCoreMHz())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := s.Evaluate(w, s.MaxCoreMHz())
	if err != nil {
		t.Fatal(err)
	}
	ratio := lo.TimeSec / hi.TimeSec
	ideal := float64(s.MaxCoreMHz()) / float64(s.MinCoreMHz())
	if ratio < 0.75*ideal {
		t.Fatalf("compute-bound speedup %.2f far below frequency ratio %.2f", ratio, ideal)
	}
	if hi.ComputeUtil < 0.9 {
		t.Fatalf("compute-bound kernel has compute utilisation %.2f", hi.ComputeUtil)
	}
}

func TestMemoryBoundFlatAboveKnee(t *testing.T) {
	t.Parallel()
	// Above the bandwidth knee, time is nearly frequency-independent.
	s := V100()
	w := memoryBoundWL()
	knee := int(s.BWKneeFrac * float64(s.MaxCoreMHz()))
	fa := s.NearestCoreFreq(knee + 100)
	fb := s.MaxCoreMHz()
	a, err := s.Evaluate(w, fa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Evaluate(w, fb)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeSec > b.TimeSec*1.08 {
		t.Fatalf("memory-bound kernel slowed %.1f%% between %d and %d MHz; expected near-flat",
			100*(a.TimeSec/b.TimeSec-1), fa, fb)
	}
	if b.MemUtil < 0.9 {
		t.Fatalf("memory-bound kernel has memory utilisation %.2f", b.MemUtil)
	}
}

// TestFig2ComputeBoundEnergyShape pins the lin_reg-style behaviour of
// Fig. 2a: compute-bound kernels have little energy headroom (< ~12%)
// and the lowest frequencies are grossly energy-inefficient.
func TestFig2ComputeBoundEnergyShape(t *testing.T) {
	t.Parallel()
	s := V100()
	ms, err := s.Sweep(computeBoundWL())
	if err != nil {
		t.Fatal(err)
	}
	def, err := s.Evaluate(computeBoundWL(), s.DefaultCoreMHz)
	if err != nil {
		t.Fatal(err)
	}
	minE := math.Inf(1)
	for _, m := range ms {
		if m.EnergyJ < minE {
			minE = m.EnergyJ
		}
	}
	saving := 1 - minE/def.EnergyJ
	if saving > 0.15 {
		t.Errorf("compute-bound best saving %.1f%%, paper shape wants <~12%%", 100*saving)
	}
	if saving < 0.02 {
		t.Errorf("compute-bound best saving %.1f%%, expected a few percent headroom", 100*saving)
	}
	if ms[0].EnergyJ < def.EnergyJ*1.3 {
		t.Errorf("lowest frequency should be grossly inefficient: e(min)=%.3g vs e(def)=%.3g",
			ms[0].EnergyJ, def.EnergyJ)
	}
}

// TestFig2MemoryBoundEnergyShape pins the median-filter/matmul-style
// behaviour (Fig. 2b, Fig. 7a): memory-bound kernels can save >=20%
// energy while losing little performance.
func TestFig2MemoryBoundEnergyShape(t *testing.T) {
	t.Parallel()
	s := V100()
	w := memoryBoundWL()
	def, err := s.Evaluate(w, s.DefaultCoreMHz)
	if err != nil {
		t.Fatal(err)
	}
	bestSaving, lossAtBest := 0.0, 0.0
	for _, f := range s.CoreFreqsMHz {
		m, err := s.Evaluate(w, f)
		if err != nil {
			t.Fatal(err)
		}
		saving := 1 - m.EnergyJ/def.EnergyJ
		if saving > bestSaving {
			bestSaving = saving
			lossAtBest = m.TimeSec/def.TimeSec - 1
		}
	}
	if bestSaving < 0.20 {
		t.Errorf("memory-bound best saving %.1f%%, paper shape wants >=20%%", 100*bestSaving)
	}
	if lossAtBest > 0.30 {
		t.Errorf("perf loss at best saving %.1f%%, want moderate (<30%%)", 100*lossAtBest)
	}
}

// TestMI100DefaultIsBestPerformance pins the §8.2 observation: on the
// MI100 the (auto/max) default configuration always delivers the best
// performance.
func TestMI100DefaultIsBestPerformance(t *testing.T) {
	t.Parallel()
	s := MI100()
	for _, w := range []Workload{computeBoundWL(), memoryBoundWL()} {
		base, err := s.Evaluate(w, s.BaselineCoreMHz())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range s.CoreFreqsMHz {
			m, err := s.Evaluate(w, f)
			if err != nil {
				t.Fatal(err)
			}
			if m.TimeSec < base.TimeSec*0.97 {
				t.Errorf("%s: %d MHz beats the MI100 default by %.1f%%",
					w.Name, f, 100*(1-m.TimeSec/base.TimeSec))
			}
		}
	}
}

func TestThrottleEngagesOnlyNearTDP(t *testing.T) {
	t.Parallel()
	s := V100()
	w := computeBoundWL()
	m, err := s.Evaluate(w, s.MinCoreMHz())
	if err != nil {
		t.Fatal(err)
	}
	if m.Throttled {
		t.Error("throttled at minimum frequency")
	}
}

func TestSweepLengthMatchesTable(t *testing.T) {
	t.Parallel()
	s := A100()
	ms, err := s.Sweep(memoryBoundWL())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(s.CoreFreqsMHz) {
		t.Fatalf("sweep returned %d measurements for %d frequencies", len(ms), len(s.CoreFreqsMHz))
	}
}

func TestWorkloadTotalOpsWeighting(t *testing.T) {
	t.Parallel()
	w := Workload{Name: "w", Items: 1, IntOps: 1, FloatOps: 1, DivOps: 1, SFOps: 1, LocalBytes: 4}
	want := 1 + 1 + divWeight + sfWeight + localWeight
	if got := w.TotalOps(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TotalOps = %v, want %v", got, want)
	}
}
