package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeviceExecuteAdvancesTime(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	w := computeBoundWL()
	r, err := d.ExecuteKernel(w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != 0 || r.End <= r.Start {
		t.Fatalf("bad record interval [%v, %v]", r.Start, r.End)
	}
	if d.Now() != r.End {
		t.Fatalf("device time %v, want %v", d.Now(), r.End)
	}
	if d.KernelCount() != 1 {
		t.Fatalf("kernel count %d, want 1", d.KernelCount())
	}
}

func TestDeviceUsesAppClock(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	low := d.Spec().CoreFreqsMHz[10]
	if err := d.SetAppClock(low); err != nil {
		t.Fatal(err)
	}
	r, err := d.ExecuteKernel(computeBoundWL())
	if err != nil {
		t.Fatal(err)
	}
	if r.CoreMHz != low {
		t.Fatalf("kernel ran at %d MHz, want %d", r.CoreMHz, low)
	}
}

func TestDeviceAutoModeRunsAtMax(t *testing.T) {
	t.Parallel()
	d := NewDevice(MI100())
	if d.AppClockMHz() != 0 {
		t.Fatalf("MI100 should start in auto mode, got %d", d.AppClockMHz())
	}
	r, err := d.ExecuteKernel(memoryBoundWL())
	if err != nil {
		t.Fatal(err)
	}
	if r.CoreMHz != d.Spec().MaxCoreMHz() {
		t.Fatalf("auto mode ran at %d, want max %d", r.CoreMHz, d.Spec().MaxCoreMHz())
	}
}

func TestSetAppClockValidation(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	if err := d.SetAppClock(123); err == nil {
		t.Fatal("unsupported clock accepted")
	}
}

func TestSetAppClockOverheadAndRedundantSet(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	low := d.Spec().CoreFreqsMHz[0]
	if err := d.SetAppClock(low); err != nil {
		t.Fatal(err)
	}
	after := d.Now()
	if after != d.Spec().ClockSetOverheadSec {
		t.Fatalf("clock set cost %v, want %v", after, d.Spec().ClockSetOverheadSec)
	}
	// Redundant set is free (drivers skip it).
	if err := d.SetAppClock(low); err != nil {
		t.Fatal(err)
	}
	if d.Now() != after {
		t.Fatal("redundant clock set consumed time")
	}
	if d.ClockSetCount() != 1 {
		t.Fatalf("clock set count %d, want 1", d.ClockSetCount())
	}
}

func TestResetAppClockRestoresDefault(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	if err := d.SetAppClock(d.Spec().MinCoreMHz()); err != nil {
		t.Fatal(err)
	}
	d.ResetAppClock()
	if d.AppClockMHz() != d.Spec().DefaultCoreMHz {
		t.Fatalf("reset left clock at %d, want default %d", d.AppClockMHz(), d.Spec().DefaultCoreMHz)
	}
	// MI100 resets to auto.
	m := NewDevice(MI100())
	if err := m.SetAppClock(700); err != nil {
		t.Fatal(err)
	}
	m.ResetAppClock()
	if m.AppClockMHz() != 0 {
		t.Fatalf("MI100 reset left clock pinned at %d", m.AppClockMHz())
	}
}

func TestEnergyBetweenMatchesKernelEnergy(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	r, err := d.ExecuteKernel(memoryBoundWL())
	if err != nil {
		t.Fatal(err)
	}
	got := d.EnergyBetween(r.Start, r.End)
	if math.Abs(got-r.EnergyJ) > 1e-9*r.EnergyJ {
		t.Fatalf("EnergyBetween = %v, kernel energy = %v", got, r.EnergyJ)
	}
}

func TestEnergyIncludesIdlePower(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	d.AdvanceIdle(2.0)
	got := d.EnergyBetween(0, 2.0)
	want := 2.0 * d.Spec().IdlePowerW
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("idle energy %v, want %v", got, want)
	}
}

// Property: energy integration is additive over adjacent intervals.
func TestEnergyBetweenAdditivity(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	for i := 0; i < 5; i++ {
		if _, err := d.ExecuteKernel(memoryBoundWL()); err != nil {
			t.Fatal(err)
		}
		d.AdvanceIdle(0.001)
	}
	end := d.Now()
	f := func(aFrac, bFrac float64) bool {
		a := math.Abs(math.Mod(aFrac, 1)) * end
		b := math.Abs(math.Mod(bFrac, 1)) * end
		if a > b {
			a, b = b, a
		}
		mid := (a + b) / 2
		whole := d.EnergyBetween(a, b)
		parts := d.EnergyBetween(a, mid) + d.EnergyBetween(mid, b)
		return math.Abs(whole-parts) <= 1e-9*(1+math.Abs(whole))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampledEnergyConvergesForLongIntervals(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	// A long busy stretch: many memory-bound kernels back to back.
	for i := 0; i < 200; i++ {
		if _, err := d.ExecuteKernel(memoryBoundWL()); err != nil {
			t.Fatal(err)
		}
	}
	t0, t1 := 0.0, d.Now()
	if t1 < 0.01 {
		t.Fatalf("busy stretch too short (%vs) to test sampling", t1)
	}
	exact := d.EnergyBetween(t0, t1)
	sampled := d.SampledEnergyBetween(t0, t1, 0.0005)
	if rel := math.Abs(sampled-exact) / exact; rel > 0.05 {
		t.Fatalf("sampled energy off by %.1f%% on a long interval", 100*rel)
	}
}

// TestSampledEnergyInaccurateForShortKernels reproduces the §4.4
// limitation: kernels much shorter than the sampling period cannot be
// profiled accurately.
func TestSampledEnergyInaccurateForShortKernels(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	tiny := Workload{Name: "tiny", Items: 1 << 10, FloatOps: 10, GlobalBytes: 4}
	r, err := d.ExecuteKernel(tiny)
	if err != nil {
		t.Fatal(err)
	}
	period := 0.015 // 15 ms, per Burtscher et al. as cited by the paper
	if r.End-r.Start >= period {
		t.Fatalf("test workload not short enough: %vs", r.End-r.Start)
	}
	sampled := d.SampledEnergyBetween(r.Start, r.End, period)
	// With at most zero or one sample tick inside the kernel, the
	// estimate is either ~0 or wildly overscaled.
	if rel := math.Abs(sampled-r.EnergyJ) / r.EnergyJ; rel < 0.5 {
		t.Fatalf("short-kernel sampling unexpectedly accurate (%.1f%% error)", 100*rel)
	}
}

func TestPowerAtIdentifiesBusyAndIdle(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	r, err := d.ExecuteKernel(computeBoundWL())
	if err != nil {
		t.Fatal(err)
	}
	d.AdvanceIdle(1.0)
	mid := (r.Start + r.End) / 2
	if got := d.PowerAt(mid); got != r.AvgPowerW {
		t.Fatalf("PowerAt(busy) = %v, want %v", got, r.AvgPowerW)
	}
	if got := d.PowerAt(r.End + 0.5); got != d.Spec().IdlePowerW {
		t.Fatalf("PowerAt(idle) = %v, want idle %v", got, d.Spec().IdlePowerW)
	}
}

func TestAdvanceIdlePanicsOnNegative(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("negative idle advance did not panic")
		}
	}()
	NewDevice(V100()).AdvanceIdle(-1)
}

func TestDeviceConcurrentAccess(t *testing.T) {
	t.Parallel()
	d := NewDevice(V100())
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			var err error
			for i := 0; i < 50; i++ {
				if _, e := d.ExecuteKernel(memoryBoundWL()); e != nil {
					err = e
					break
				}
				d.EnergyBetween(0, d.Now())
			}
			done <- err
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if d.KernelCount() != 400 {
		t.Fatalf("kernel count %d, want 400", d.KernelCount())
	}
}
