package hw

import (
	"math/rand"
	"strings"
	"testing"
)

func testFleet(t *testing.T, budget Budget, names ...string) *Fleet {
	t.Helper()
	f, err := FleetFromNames(names, budget)
	if err != nil {
		t.Fatalf("FleetFromNames(%v): %v", names, err)
	}
	return f
}

func TestFleetFromNamesOrderAndKeys(t *testing.T) {
	t.Parallel()
	f := testFleet(t, Budget{}, "v100", "mi100", "xeon")
	if f.Name != "v100+mi100+xeon" {
		t.Errorf("fleet name %q", f.Name)
	}
	want := []string{"v100", "mi100", "xeon"}
	for i, k := range want {
		if f.Devices[i].Key != k {
			t.Errorf("device %d key %q, want %q (order must be preserved)", i, f.Devices[i].Key, k)
		}
		if f.DeviceByKey(k) != i {
			t.Errorf("DeviceByKey(%q) = %d, want %d", k, f.DeviceByKey(k), i)
		}
	}
	if f.DeviceByKey("h100") != -1 {
		t.Error("DeviceByKey for absent device should be -1")
	}
}

func TestFleetValidateRejections(t *testing.T) {
	t.Parallel()
	if _, err := FleetFromNames(nil, Budget{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := FleetFromNames([]string{"v100", "v100"}, Budget{}); err == nil {
		t.Error("duplicate device key accepted")
	}
	if _, err := FleetFromNames([]string{"v100", "nope"}, Budget{}); err == nil {
		t.Error("unknown device accepted")
	}
	// Power budget below the idle floor can never host anything.
	if _, err := FleetFromNames([]string{"v100", "mi100"}, Budget{PowerW: 30}); err == nil {
		t.Error("power budget below the idle floor accepted")
	}
	// Area budget smaller than the summed die area.
	if _, err := FleetFromNames([]string{"v100", "a100"}, Budget{AreaMM2: 1000}); err == nil {
		t.Error("area budget below the fleet die area accepted")
	}
	if _, err := NewFleet("bad", Budget{}, FleetDevice{Key: "", Spec: V100()}); err == nil {
		t.Error("empty device key accepted")
	}
	if _, err := NewFleet("bad", Budget{}, FleetDevice{Key: "v100"}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := NewFleet("bad", Budget{PowerW: -1}, FleetDevice{Key: "v100", Spec: V100()}); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestFleetPowerAccounting(t *testing.T) {
	t.Parallel()
	f := testFleet(t, Budget{PowerW: 330}, "v100", "mi100", "xeon")
	idle := V100().IdlePowerW + MI100().IdlePowerW + Xeon8160().IdlePowerW
	if got := f.TotalIdleW(); got != idle {
		t.Errorf("TotalIdleW = %v, want %v", got, idle)
	}
	if got := f.IdleOthersW(0); got != MI100().IdlePowerW+Xeon8160().IdlePowerW {
		t.Errorf("IdleOthersW(0) = %v", got)
	}
	if got := f.FleetPowerW(1, 200); got != 200+V100().IdlePowerW+Xeon8160().IdlePowerW {
		t.Errorf("FleetPowerW(1, 200) = %v", got)
	}
	// Feasibility against the budget: 330 - idleOthers(v100) = 258 W
	// headroom for the V100 board.
	if !f.Feasible(0, 250) {
		t.Error("250 W on v100 should fit the 330 W budget")
	}
	if f.Feasible(0, 280) {
		t.Error("280 W on v100 should exceed the 330 W budget")
	}
	unbounded := testFleet(t, Budget{}, "v100")
	if !unbounded.Feasible(0, 1e6) {
		t.Error("unset budget must admit everything")
	}
}

func TestFleetClasses(t *testing.T) {
	t.Parallel()
	f := testFleet(t, Budget{}, "alveo", "xeon", "v100")
	got := f.Classes()
	want := []DeviceClass{ClassThroughput, ClassSerial, ClassAccelerator}
	if len(got) != len(want) {
		t.Fatalf("Classes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Classes() = %v, want %v (class order)", got, want)
		}
	}
	gpuOnly := testFleet(t, Budget{}, "v100", "a100")
	if cs := gpuOnly.Classes(); len(cs) != 1 || cs[0] != ClassThroughput {
		t.Errorf("GPU-only fleet classes = %v", cs)
	}
}

// TestPartitionPowerConservation is the budget-split invariant: for any
// non-negative weights, re-partitioning moves power between classes but
// SumShares reconstructs the budget exactly.
func TestPartitionPowerConservation(t *testing.T) {
	t.Parallel()
	f := testFleet(t, Budget{PowerW: 800}, "v100", "xeon", "alveo")
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		w := map[DeviceClass]float64{
			ClassThroughput:  rng.Float64() * 10,
			ClassSerial:      rng.Float64() * 10,
			ClassAccelerator: rng.Float64() * 10,
		}
		if i%7 == 0 {
			w[ClassSerial] = 0 // zero-weight classes are legal
		}
		shares, err := f.PartitionPower(w)
		if err != nil {
			t.Fatalf("PartitionPower(%v): %v", w, err)
		}
		if len(shares) != 3 {
			t.Fatalf("want one share per present class, got %v", shares)
		}
		if got := SumShares(shares); got != f.Budget.PowerW {
			t.Fatalf("iteration %d: shares sum to %v, want exactly %v (weights %v)",
				i, got, f.Budget.PowerW, w)
		}
		for _, s := range shares {
			if s.PowerW < 0 {
				t.Fatalf("negative share %v under weights %v", s, w)
			}
		}
	}
}

func TestPartitionPowerErrors(t *testing.T) {
	t.Parallel()
	f := testFleet(t, Budget{}, "v100")
	if _, err := f.PartitionPower(map[DeviceClass]float64{ClassThroughput: 1}); err == nil {
		t.Error("partitioning an unset budget should fail")
	}
	g := testFleet(t, Budget{PowerW: 400}, "v100")
	if _, err := g.PartitionPower(map[DeviceClass]float64{ClassThroughput: -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := g.PartitionPower(map[DeviceClass]float64{ClassSerial: 5}); err == nil {
		t.Error("weights only on absent classes accepted")
	}
	// Weight on an absent class is ignored, not an error, as long as a
	// present class carries weight.
	shares, err := g.PartitionPower(map[DeviceClass]float64{ClassThroughput: 1, ClassAccelerator: 9})
	if err != nil {
		t.Fatalf("PartitionPower: %v", err)
	}
	if len(shares) != 1 || shares[0].Class != ClassThroughput || shares[0].PowerW != 400 {
		t.Errorf("single-class fleet shares = %v", shares)
	}
}

// TestDegeneratePartitionSingleClass pins the degenerate-fleet shape:
// with one class present the whole budget lands on it, whatever the
// weights.
func TestDegeneratePartitionSingleClass(t *testing.T) {
	t.Parallel()
	f := testFleet(t, Budget{PowerW: 512}, "v100", "a100", "mi100")
	for _, w := range []float64{0.001, 1, 1e9} {
		shares, err := f.PartitionPower(map[DeviceClass]float64{ClassThroughput: w})
		if err != nil {
			t.Fatal(err)
		}
		if len(shares) != 1 || shares[0].PowerW != 512 {
			t.Fatalf("weight %v: shares = %v, want the whole 512 W on throughput", w, shares)
		}
	}
}

func TestDeviceClassAndCatalog(t *testing.T) {
	t.Parallel()
	wantClass := map[string]DeviceClass{
		"v100": ClassThroughput, "a100": ClassThroughput, "h100": ClassThroughput,
		"mi100": ClassThroughput,
		"xeon":  ClassSerial, "xeon8480": ClassSerial,
		"alveo": ClassAccelerator,
	}
	names := BuiltinNames()
	if len(names) != len(wantClass) {
		t.Fatalf("BuiltinNames() = %v, want %d entries", names, len(wantClass))
	}
	for _, n := range names {
		s, err := SpecByName(n)
		if err != nil {
			t.Fatalf("SpecByName(%q): %v", n, err)
		}
		if s.Class != wantClass[n] {
			t.Errorf("%s class = %v, want %v", n, s.Class, wantClass[n])
		}
		if s.AreaMM2 <= 0 {
			t.Errorf("%s has no die area; the fleet area budget needs one", n)
		}
	}
	for c, want := range map[DeviceClass]string{
		ClassThroughput: "throughput", ClassSerial: "serial",
		ClassAccelerator: "accelerator", DeviceClass(9): "DeviceClass(9)",
	} {
		if c.String() != want {
			t.Errorf("DeviceClass(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestBudgetString(t *testing.T) {
	t.Parallel()
	cases := map[Budget]string{
		{}:                           "unconstrained",
		{PowerW: 330}:                "330 W",
		{AreaMM2: 2500}:              "2500 mm²",
		{PowerW: 330, AreaMM2: 2500}: "330 W / 2500 mm²",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", b, got, want)
		}
	}
}

// TestSpecByNameErrorNamesWholeCatalog is the regression test for the
// stale hard-coded device list the error message used to carry: every
// catalog entry must appear in it.
func TestSpecByNameErrorNamesWholeCatalog(t *testing.T) {
	t.Parallel()
	_, err := SpecByName("nope")
	if err == nil {
		t.Fatal("unknown device accepted")
	}
	for _, n := range BuiltinNames() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("SpecByName error %q does not mention catalog device %q", err, n)
		}
	}
}
