package hw

// Deterministic pseudo-noise: every (kernel, frequency, size) triple maps
// to a fixed pair of values in [-1, 1]. Runs are therefore exactly
// reproducible while still exhibiting measurement-like scatter, which
// keeps the machine-learning task honest.

// splitmix64 is the standard SplitMix64 mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	// FNV-1a 64-bit.
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// noisePair returns two deterministic values in [-1, 1] derived from the
// kernel name, core frequency and launch size.
func noisePair(name string, coreMHz int, items int64) (float64, float64) {
	seed := hashString(name) ^ splitmix64(uint64(coreMHz)) ^ splitmix64(uint64(items)*0x9e3779b9)
	a := splitmix64(seed)
	b := splitmix64(a)
	return unit(a), unit(b)
}

// unit maps a uint64 to [-1, 1].
func unit(x uint64) float64 {
	return float64(x>>11)/float64(1<<53)*2 - 1
}
