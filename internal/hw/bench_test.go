package hw

import "testing"

// Performance of the hot simulator paths: model evaluation dominates
// frequency sweeps (196 evaluations per kernel on the V100), and energy
// integration dominates profiling queries.

func BenchmarkEvaluate(b *testing.B) {
	spec := V100()
	w := Workload{Name: "bench", Items: 1 << 22, FloatOps: 120, GlobalBytes: 24}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Evaluate(w, spec.DefaultCoreMHz); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullFrequencySweep(b *testing.B) {
	spec := V100()
	w := Workload{Name: "bench", Items: 1 << 22, FloatOps: 120, GlobalBytes: 24}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Sweep(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnergyBetween(b *testing.B) {
	d := NewDevice(V100())
	w := Workload{Name: "bench", Items: 1 << 20, FloatOps: 60, GlobalBytes: 16}
	for i := 0; i < 1000; i++ {
		if _, err := d.ExecuteKernel(w); err != nil {
			b.Fatal(err)
		}
	}
	end := d.Now()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.EnergyBetween(0, end)
	}
}

func BenchmarkSampledEnergyBetween(b *testing.B) {
	d := NewDevice(V100())
	w := Workload{Name: "bench", Items: 1 << 24, FloatOps: 60, GlobalBytes: 64}
	for i := 0; i < 50; i++ {
		if _, err := d.ExecuteKernel(w); err != nil {
			b.Fatal(err)
		}
	}
	end := d.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SampledEnergyBetween(0, end, 0.015)
	}
}
