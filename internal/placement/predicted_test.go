package placement_test

import (
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
	"synergy/internal/model"
	"synergy/internal/placement"
	"synergy/internal/sweep"
)

// trainFleetPredictors fits a cheap Linear bundle per fleet device on a
// handful of suite kernels with a coarse frequency stride — enough to
// exercise the predicted grid path without the full paper training run.
func trainFleetPredictors(t testing.TB, f *hw.Fleet) []*model.Predictor {
	t.Helper()
	var kernels []*kernelir.Kernel
	for _, name := range []string{"vec_add", "matmul", "black_scholes", "nbody"} {
		bm, err := benchsuite.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, bm.Kernel)
	}
	preds := make([]*model.Predictor, len(f.Devices))
	for i, fd := range f.Devices {
		ts, err := model.CollectTraining(fd.Spec, kernels, 8)
		if err != nil {
			t.Fatalf("%s: CollectTraining: %v", fd.Key, err)
		}
		m, err := model.Train(fd.Spec, ts, model.AlgoLinear)
		if err != nil {
			t.Fatalf("%s: Train: %v", fd.Key, err)
		}
		p, err := m.NewPredictor()
		if err != nil {
			t.Fatalf("%s: NewPredictor: %v", fd.Key, err)
		}
		preds[i] = p
	}
	return preds
}

// TestBuildPredictedGridShape checks the predicted grid carries one
// candidate per (device, supported frequency), in device-major
// frequency-ascending order, with positive times/energies and coherent
// power accounting, and that every target selects successfully.
func TestBuildPredictedGridShape(t *testing.T) {
	t.Parallel()
	f := canonicalFleet(t)
	preds := trainFleetPredictors(t, f)
	bm, err := benchsuite.ByName("sobel3")
	if err != nil {
		t.Fatal(err)
	}
	v, err := features.Extract(bm.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	g, err := placement.BuildPredicted(f, preds, v)
	if err != nil {
		t.Fatal(err)
	}
	wantN := 0
	for _, fd := range f.Devices {
		wantN += len(fd.Spec.CoreFreqsMHz)
	}
	if len(g.Candidates) != wantN {
		t.Fatalf("%d candidates, want %d", len(g.Candidates), wantN)
	}
	prevDev, prevFreq := -1, 0
	for _, c := range g.Candidates {
		if c.DeviceIdx < prevDev {
			t.Fatal("candidates not device-major")
		}
		if c.DeviceIdx == prevDev && c.FreqMHz <= prevFreq {
			t.Fatalf("frequencies not ascending on device %s", c.Device)
		}
		prevDev, prevFreq = c.DeviceIdx, c.FreqMHz
		if c.TimeSec <= 0 || c.EnergyJ <= 0 {
			t.Fatalf("non-positive prediction survived clamping: %+v", c)
		}
		if want := c.EnergyJ / c.TimeSec; c.PowerW != want {
			t.Fatalf("power %v != E/t %v", c.PowerW, want)
		}
	}
	for _, target := range metrics.StandardTargets {
		p, err := g.Select(target)
		if err != nil {
			t.Fatalf("%v: %v", target, err)
		}
		if !p.Feasible || p.FleetPowerW > 330*(1+1e-12) {
			t.Errorf("%v: predicted placement violates the budget: %+v", target, p.Candidate)
		}
	}
}

// TestBuildPredictedErrors covers the misuse paths: predictor count
// mismatch, nil predictor, and a predictor bound to the wrong device.
func TestBuildPredictedErrors(t *testing.T) {
	t.Parallel()
	f := canonicalFleet(t)
	preds := trainFleetPredictors(t, f)
	bm, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	v, err := features.Extract(bm.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placement.BuildPredicted(nil, preds, v); err == nil {
		t.Error("nil fleet accepted")
	}
	if _, err := placement.BuildPredicted(f, preds[:2], v); err == nil {
		t.Error("predictor count mismatch accepted")
	}
	hole := []*model.Predictor{preds[0], nil, preds[2]}
	if _, err := placement.BuildPredicted(f, hole, v); err == nil {
		t.Error("nil predictor accepted")
	}
	swapped := []*model.Predictor{preds[1], preds[0], preds[2]}
	if _, err := placement.BuildPredicted(f, swapped, v); err == nil {
		t.Error("predictor bound to the wrong device accepted")
	}
	bad := &hw.Fleet{Name: "bad"}
	if _, err := placement.BuildPredicted(bad, nil, v); err == nil {
		t.Error("invalid fleet accepted")
	}
}

// TestBuildGroundTruthErrors covers the ground-truth misuse paths.
func TestBuildGroundTruthErrors(t *testing.T) {
	t.Parallel()
	f := canonicalFleet(t)
	bm, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placement.BuildGroundTruth(nil, f, bm.Kernel, bm.CharItems); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := placement.BuildGroundTruth(sweep.Shared(), nil, bm.Kernel, bm.CharItems); err == nil {
		t.Error("nil fleet accepted")
	}
	if _, err := placement.BuildGroundTruth(sweep.Shared(), f, nil, bm.CharItems); err == nil {
		t.Error("nil kernel accepted")
	}
	bad := &hw.Fleet{Name: "bad"}
	if _, err := placement.BuildGroundTruth(sweep.Shared(), bad, bm.Kernel, bm.CharItems); err == nil {
		t.Error("invalid fleet accepted")
	}
	g, err := placement.BuildGroundTruth(sweep.Shared(), f, bm.Kernel, bm.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Select(metrics.ES(-5)); err == nil {
		t.Error("invalid target accepted")
	}
	// Candidate product helpers.
	c := g.Candidates[0]
	if c.EDP() != c.EnergyJ*c.TimeSec || c.ED2P() != c.EnergyJ*c.TimeSec*c.TimeSec {
		t.Error("EDP/ED2P products wrong")
	}
}
