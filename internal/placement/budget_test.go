package placement_test

import (
	"math/rand"
	"sync"
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/placement"
	"synergy/internal/sweep"
)

// TestNoPlacementExceedsBudget is the fleet budget invariant: whatever
// the benchmark, target and (randomly drawn) budget, the chosen
// configuration's fleet power — board power of the hosting device plus
// idle draw of every other device — never exceeds the budget.
func TestNoPlacementExceedsBudget(t *testing.T) {
	t.Parallel()
	names := []string{"v100", "mi100", "xeon"}
	idleFloor := hw.V100().IdlePowerW + hw.MI100().IdlePowerW + hw.Xeon8160().IdlePowerW
	rng := rand.New(rand.NewSource(7))
	suite := benchsuite.All()
	for trial := 0; trial < 12; trial++ {
		// Budgets from barely above the idle floor to effectively open.
		budget := idleFloor + 5 + rng.Float64()*600
		f, err := hw.FleetFromNames(names, hw.Budget{PowerW: budget})
		if err != nil {
			t.Fatal(err)
		}
		bm := suite[rng.Intn(len(suite))]
		g, err := placement.BuildGroundTruth(sweep.Shared(), f, bm.Kernel, bm.CharItems)
		if err != nil {
			t.Fatalf("budget %.1f W, %s: %v", budget, bm.Name, err)
		}
		for _, target := range metrics.StandardTargets {
			p, err := g.Select(target)
			if err != nil {
				// A tight budget may leave no feasible baseline for ES/PL,
				// or no feasible configuration at all; both are legal
				// refusals, never silent violations.
				continue
			}
			if p.FleetPowerW > budget*(1+1e-12) {
				t.Errorf("budget %.3f W, %s %v: placed %s@%d at fleet power %.3f W",
					budget, bm.Name, target, p.Device, p.FreqMHz, p.FleetPowerW)
			}
			if !p.Feasible {
				t.Errorf("budget %.3f W, %s %v: returned infeasible candidate", budget, bm.Name, target)
			}
		}
	}
}

// TestDegenerateFleetMatchesSweepSelect is the reduction proof: a
// single-device fleet with no budget must make bit-identical decisions
// to the single-device selector metrics.Sweep.Select — same frequency,
// same time, same energy, for every suite benchmark and every standard
// target. The joint search strictly generalises the paper's per-device
// frequency search.
func TestDegenerateFleetMatchesSweepSelect(t *testing.T) {
	t.Parallel()
	for _, device := range []string{"v100", "mi100", "xeon8480", "alveo"} {
		device := device
		t.Run(device, func(t *testing.T) {
			t.Parallel()
			spec, err := hw.SpecByName(device)
			if err != nil {
				t.Fatal(err)
			}
			f, err := hw.FleetFromNames([]string{device}, hw.Budget{})
			if err != nil {
				t.Fatal(err)
			}
			for _, bm := range benchsuite.All() {
				sw, err := sweep.GroundTruth(spec, bm.Kernel, bm.CharItems)
				if err != nil {
					t.Fatalf("%s: %v", bm.Name, err)
				}
				g, err := placement.BuildGroundTruth(sweep.Shared(), f, bm.Kernel, bm.CharItems)
				if err != nil {
					t.Fatalf("%s: %v", bm.Name, err)
				}
				for _, target := range metrics.StandardTargets {
					want, err := sw.Select(target)
					if err != nil {
						t.Fatalf("%s %v: %v", bm.Name, target, err)
					}
					got, err := g.Select(target)
					if err != nil {
						t.Fatalf("%s %v: %v", bm.Name, target, err)
					}
					if got.FreqMHz != want.FreqMHz || got.TimeSec != want.TimeSec || got.EnergyJ != want.EnergyJ {
						t.Errorf("%s %v: fleet (%d MHz, %v, %v) != sweep (%d MHz, %v, %v)",
							bm.Name, target, got.FreqMHz, got.TimeSec, got.EnergyJ,
							want.FreqMHz, want.TimeSec, want.EnergyJ)
					}
					// ES/PL percentages must match the single-device figures.
					if es := sw.EnergySavingPct(want); got.ESPct != es {
						t.Errorf("%s %v: ESPct %v != sweep %v", bm.Name, target, got.ESPct, es)
					}
					if pl := sw.PerfLossPct(want); got.PLPct != pl {
						t.Errorf("%s %v: PLPct %v != sweep %v", bm.Name, target, got.PLPct, pl)
					}
				}
			}
		})
	}
}

// TestZeroAcceleratorFleetUnchangedByClassMix checks that for the pure
// argmin targets, removing an accelerator that did not win never
// perturbs the decision among the remaining devices (unconstrained
// budget, so idle-power accounting cannot shift feasibility). The
// relative targets ES_x/PL_x are deliberately excluded: their target
// interval is anchored to the fleet-wide minimum-energy configuration,
// so an accelerator that loses the placement can still legitimately
// move the threshold — that fleet-relativity is the point of the joint
// search, and the enumeration oracle pins its exact behaviour.
func TestZeroAcceleratorFleetUnchangedByClassMix(t *testing.T) {
	t.Parallel()
	full, err := hw.FleetFromNames([]string{"v100", "xeon", "alveo"}, hw.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	noAccel, err := hw.FleetFromNames([]string{"v100", "xeon"}, hw.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	argminTargets := []metrics.Target{
		metrics.MaxPerf, metrics.MinEnergy, metrics.MinEDP, metrics.MinED2P,
	}
	for _, bm := range benchsuite.All() {
		gFull, err := placement.BuildGroundTruth(sweep.Shared(), full, bm.Kernel, bm.CharItems)
		if err != nil {
			t.Fatal(err)
		}
		gNo, err := placement.BuildGroundTruth(sweep.Shared(), noAccel, bm.Kernel, bm.CharItems)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range argminTargets {
			pFull, err := gFull.Select(target)
			if err != nil {
				t.Fatalf("%s %v: %v", bm.Name, target, err)
			}
			if pFull.Device == "alveo" {
				continue // the accelerator won on merit; nothing to compare
			}
			pNo, err := gNo.Select(target)
			if err != nil {
				t.Fatalf("%s %v: %v", bm.Name, target, err)
			}
			if pNo.Device != pFull.Device || pNo.FreqMHz != pFull.FreqMHz {
				t.Errorf("%s %v: dropping the idle accelerator moved the placement %s@%d -> %s@%d",
					bm.Name, target, pFull.Device, pFull.FreqMHz, pNo.Device, pNo.FreqMHz)
			}
		}
	}
}

// TestTightBudgetForcesRefusalNotViolation: with a budget just above
// the idle floor no configuration can run, and Select must say so.
func TestTightBudgetForcesRefusalNotViolation(t *testing.T) {
	t.Parallel()
	idleFloor := hw.V100().IdlePowerW + hw.MI100().IdlePowerW + hw.Xeon8160().IdlePowerW
	f, err := hw.FleetFromNames([]string{"v100", "mi100", "xeon"}, hw.Budget{PowerW: idleFloor + 1})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := benchsuite.ByName("matmul")
	if err != nil {
		t.Fatal(err)
	}
	g, err := placement.BuildGroundTruth(sweep.Shared(), f, bm.Kernel, bm.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	if n := g.FeasibleCount(); n != 0 {
		t.Fatalf("expected no feasible configurations just above the idle floor, got %d", n)
	}
	if _, err := g.Select(metrics.MinEnergy); err == nil {
		t.Error("Select over an empty feasible set must fail")
	}
	if _, err := g.BaselineCandidate(); err == nil {
		t.Error("BaselineCandidate with no feasible baseline must fail")
	}
}

// TestConcurrentSelect exercises the placement search from many
// goroutines sharing one grid and the process-wide sweep engine — the
// workload of the CI race step.
func TestConcurrentSelect(t *testing.T) {
	t.Parallel()
	f := canonicalFleet(t)
	bm, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	g, err := placement.BuildGroundTruth(sweep.Shared(), f, bm.Kernel, bm.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := g.Select(metrics.ES(50))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, target := range metrics.StandardTargets {
				if _, err := g.Select(target); err != nil {
					t.Errorf("%v: %v", target, err)
				}
			}
			p, err := g.Select(metrics.ES(50))
			if err != nil {
				t.Error(err)
				return
			}
			if p.Device != ref.Device || p.FreqMHz != ref.FreqMHz {
				t.Errorf("concurrent Select diverged: %s@%d vs %s@%d",
					p.Device, p.FreqMHz, ref.Device, ref.FreqMHz)
			}
		}()
	}
	wg.Wait()
}
