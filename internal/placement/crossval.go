package placement

import (
	"fmt"
	"math"

	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/kernelir/analysis"
	"synergy/internal/sweep"
)

// Ridge-handling margins for the static-vs-sweep roofline cross-check.
// They are the calibrated constants of the differential acceptance test
// TestStaticRooflineMatchesSweep: off the roofline ridge
// (|alpha − 1/2| > RidgeMargin) the labels must agree outright; on the
// ridge the fitted slope carries the ground-truth model's measurement
// noise and only the alphas are required to stay within AlphaTol.
const (
	RidgeMargin = 0.06
	AlphaTol    = 0.25
)

// CrossCheck is the roofline agreement record for one fleet device: the
// static classifier's label for the kernel versus the label recovered
// from the dynamic frequency sweep the placement grid was built from.
type CrossCheck struct {
	Device      string         `json:"device"`
	StaticLabel analysis.Bound `json:"static_label"`
	StaticAlpha float64        `json:"static_alpha"`
	SweepLabel  analysis.Bound `json:"sweep_label"`
	SweepAlpha  float64        `json:"sweep_alpha"`
	// OnRidge reports that the kernel sits on the roofline ridge of this
	// device, where the label is decided by noise and only alpha
	// proximity is checked.
	OnRidge bool `json:"on_ridge"`
	// Agree is the per-device verdict: off-ridge label equality, or
	// on-ridge alpha agreement within AlphaTol.
	Agree bool `json:"agree"`
}

// CrossValidate checks the placement grid's ground truth against the
// static roofline classifier on every fleet device. A disagreement
// means either the device spec or the analytic classifier mis-models
// the kernel — the same signal the repo's differential acceptance test
// uses, made available at placement time so a fleet recommendation can
// carry (or fail on) its own evidence.
func CrossValidate(eng *sweep.Engine, fleet *hw.Fleet, k *kernelir.Kernel, items int64) ([]CrossCheck, error) {
	if eng == nil || fleet == nil || k == nil {
		return nil, fmt.Errorf("placement: nil engine, fleet or kernel")
	}
	if err := fleet.Validate(); err != nil {
		return nil, err
	}
	checks := make([]CrossCheck, 0, len(fleet.Devices))
	for _, fd := range fleet.Devices {
		static, err := analysis.StaticRoofline(k, fd.Spec)
		if err != nil {
			return nil, fmt.Errorf("placement: static roofline on %s: %w", fd.Key, err)
		}
		sw, err := eng.GroundTruth(fd.Spec, k, items)
		if err != nil {
			return nil, fmt.Errorf("placement: sweep on %s: %w", fd.Key, err)
		}
		dynLabel, dynAlpha := analysis.ClassifySweep(sw)
		c := CrossCheck{
			Device:      fd.Key,
			StaticLabel: static.Label,
			StaticAlpha: static.Alpha,
			SweepLabel:  dynLabel,
			SweepAlpha:  dynAlpha,
			OnRidge:     math.Abs(static.Alpha-0.5) <= RidgeMargin,
		}
		if c.OnRidge {
			c.Agree = math.Abs(static.Alpha-dynAlpha) <= AlphaTol
		} else {
			c.Agree = static.Label == dynLabel
		}
		checks = append(checks, c)
	}
	return checks, nil
}

// Disagreements filters a cross-check run down to the failing devices.
func Disagreements(checks []CrossCheck) []CrossCheck {
	var bad []CrossCheck
	for _, c := range checks {
		if !c.Agree {
			bad = append(bad, c)
		}
	}
	return bad
}
