// Package placement generalizes the SYnergy frequency search from
// "pick a frequency" to "pick a device AND a frequency": given a
// heterogeneous hw.Fleet (CPUs, GPU generations and accelerators under
// a shared power budget, in the Lumos HeterogSys shape), it builds the
// joint (device × frequency) candidate grid for one kernel — from the
// memoized sweep engine for ground truth, or from per-device
// model.Predictor sessions for predicted placement — filters it by the
// fleet power budget, and selects the energy-optimal configuration for
// any of the paper's targets (MAX_PERF, MIN_ENERGY, MIN_EDP, MIN_ED2P,
// ES_x, PL_x).
//
// The target semantics deliberately mirror internal/metrics bit for
// bit, with the fleet baseline (the best-performing feasible device at
// its default clock) standing in for the single device's default
// configuration. A single-device fleet with no budget therefore
// reduces exactly — bit-identically — to metrics.Sweep.Select on that
// device's sweep, which the degenerate-fleet tests pin, and the joint
// search is provably the argmin over the brute-forced grid, which the
// enumeration-oracle test pins.
package placement

import (
	"fmt"
	"math"

	"synergy/internal/features"
	"synergy/internal/hw"
	"synergy/internal/kernelir"
	"synergy/internal/metrics"
	"synergy/internal/model"
	"synergy/internal/sweep"
)

// Candidate is one (device, frequency) configuration of the joint grid.
type Candidate struct {
	// DeviceIdx indexes the fleet's device list; Device is that entry's
	// key. Candidates are ordered device-major (fleet order) with
	// frequencies ascending — the deterministic tie-break order.
	DeviceIdx int    `json:"device_idx"`
	Device    string `json:"device"`
	FreqMHz   int    `json:"freq_mhz"`
	// TimeSec and EnergyJ are per-item figures in the sweep engine's
	// units (ns and nJ per work-item); uniform per-item scaling leaves
	// every target selection invariant, and the same kernel at the same
	// launch size is directly comparable across devices.
	TimeSec float64 `json:"time"`
	EnergyJ float64 `json:"energy"`
	// PowerW is the hosting device's average board power at this
	// configuration; FleetPowerW adds the idle draw of every other
	// fleet device — the quantity the budget constrains.
	PowerW      float64 `json:"power_w"`
	FleetPowerW float64 `json:"fleet_power_w"`
	// Feasible reports whether FleetPowerW fits the fleet power budget.
	Feasible bool `json:"feasible"`
	// Baseline marks the device's default-clock configuration.
	Baseline bool `json:"baseline"`
}

// EDP returns energy × time.
func (c Candidate) EDP() float64 { return c.EnergyJ * c.TimeSec }

// ED2P returns energy × time².
func (c Candidate) ED2P() float64 { return c.EnergyJ * c.TimeSec * c.TimeSec }

// Grid is the joint (device × frequency) characterisation of one kernel
// on a fleet.
type Grid struct {
	Fleet  *hw.Fleet
	Kernel string
	// Candidates holds every (device, frequency) point, device-major in
	// fleet order, frequencies ascending within a device.
	Candidates []Candidate
	// baseline indexes the fleet baseline candidate (the best-performing
	// feasible device at its default clock), -1 when no device's
	// baseline configuration is feasible under the budget.
	baseline int
}

// BuildGroundTruth assembles the grid from ground-truth frequency
// sweeps of every fleet device, all served by the memoized sweep
// engine — repeated fleet placements of the same kernel cost one sweep
// per device process-wide.
func BuildGroundTruth(eng *sweep.Engine, fleet *hw.Fleet, k *kernelir.Kernel, items int64) (*Grid, error) {
	if eng == nil || fleet == nil || k == nil {
		return nil, fmt.Errorf("placement: nil engine, fleet or kernel")
	}
	if err := fleet.Validate(); err != nil {
		return nil, err
	}
	g := &Grid{Fleet: fleet, Kernel: k.Name}
	for di, fd := range fleet.Devices {
		sw, err := eng.GroundTruth(fd.Spec, k, items)
		if err != nil {
			return nil, fmt.Errorf("placement: device %s: %w", fd.Key, err)
		}
		base := fd.Spec.BaselineCoreMHz()
		for _, p := range sw.Points {
			g.add(di, fd, p.FreqMHz, p.TimeSec, p.EnergyJ, base)
		}
	}
	g.locateBaseline()
	return g, nil
}

// BuildPredicted assembles the grid from per-device prediction
// sessions: preds[i] must be a Predictor over fleet device i's spec.
// Predicted times/energies are clamped to a positive floor exactly as
// model.Predictor.Advise does, so the grid keeps the sweep invariants
// at the edges of the training distribution.
func BuildPredicted(fleet *hw.Fleet, preds []*model.Predictor, v features.Vector) (*Grid, error) {
	if fleet == nil {
		return nil, fmt.Errorf("placement: nil fleet")
	}
	if err := fleet.Validate(); err != nil {
		return nil, err
	}
	if len(preds) != len(fleet.Devices) {
		return nil, fmt.Errorf("placement: %d predictors for %d fleet devices", len(preds), len(fleet.Devices))
	}
	g := &Grid{Fleet: fleet, Kernel: "predicted"}
	for di, fd := range fleet.Devices {
		p := preds[di]
		if p == nil {
			return nil, fmt.Errorf("placement: nil predictor for device %s", fd.Key)
		}
		if got := p.Models().Spec.Name; got != fd.Spec.Name {
			return nil, fmt.Errorf("placement: predictor for %q bound to fleet device %s (%s)",
				got, fd.Key, fd.Spec.Name)
		}
		base := fd.Spec.BaselineCoreMHz()
		for _, pt := range p.Curve(v) {
			t, e := pt.TimeNs, pt.EnergyNanoJ
			if t <= 0 {
				t = 1e-9
			}
			if e <= 0 {
				e = 1e-9
			}
			g.add(di, fd, pt.FreqMHz, t, e, base)
		}
	}
	g.locateBaseline()
	return g, nil
}

// add appends one candidate with its power accounting.
func (g *Grid) add(di int, fd hw.FleetDevice, freqMHz int, timeSec, energyJ float64, baseMHz int) {
	pw := energyJ / timeSec // per-item scaling cancels: nJ/ns = W
	g.Candidates = append(g.Candidates, Candidate{
		DeviceIdx:   di,
		Device:      fd.Key,
		FreqMHz:     freqMHz,
		TimeSec:     timeSec,
		EnergyJ:     energyJ,
		PowerW:      pw,
		FleetPowerW: g.Fleet.FleetPowerW(di, pw),
		Feasible:    g.Fleet.Feasible(di, pw),
		Baseline:    freqMHz == baseMHz,
	})
}

// locateBaseline picks the fleet baseline: the best-performing feasible
// device at its default clock (what a performance-oriented scheduler
// would run with no energy awareness). Strict-< argmin over the
// device-major order keeps ties deterministic: earlier fleet device,
// then lower frequency.
func (g *Grid) locateBaseline() {
	g.baseline = -1
	for i, c := range g.Candidates {
		if !c.Baseline || !c.Feasible {
			continue
		}
		if g.baseline < 0 || c.TimeSec < g.Candidates[g.baseline].TimeSec {
			g.baseline = i
		}
	}
}

// BaselineCandidate returns the fleet baseline configuration the ES/PL
// figures are relative to, or an error when no device's default-clock
// configuration fits the power budget.
func (g *Grid) BaselineCandidate() (Candidate, error) {
	if g.baseline < 0 {
		return Candidate{}, fmt.Errorf(
			"placement: no device baseline configuration is feasible under the %s fleet power budget",
			g.Fleet.Budget)
	}
	return g.Candidates[g.baseline], nil
}

// FeasibleCount returns how many grid candidates fit the power budget.
func (g *Grid) FeasibleCount() int {
	n := 0
	for _, c := range g.Candidates {
		if c.Feasible {
			n++
		}
	}
	return n
}

// Placement is one joint (device, frequency) recommendation.
type Placement struct {
	Target metrics.Target `json:"-"`
	// TargetName is the paper notation of the target (for JSON output).
	TargetName string `json:"target"`
	Candidate
	// BaselineDevice/BaselineFreqMHz identify the fleet baseline the
	// ES/PL figures are relative to ("" when the budget leaves no
	// baseline feasible — possible only for targets that need none).
	BaselineDevice  string `json:"baseline_device,omitempty"`
	BaselineFreqMHz int    `json:"baseline_freq_mhz,omitempty"`
	// ESPct and PLPct are the energy saving and performance loss of the
	// chosen configuration relative to the fleet baseline, in percent
	// (zero when no baseline is feasible).
	ESPct float64 `json:"es_pct"`
	PLPct float64 `json:"pl_pct"`
}

// Select runs the joint placement search for one target. The result is
// exactly the argmin over the feasible (device × frequency) grid under
// the metrics-package target semantics, with deterministic tie-breaking
// (earlier fleet device, then lower frequency).
func (g *Grid) Select(t metrics.Target) (Placement, error) {
	if err := t.Validate(); err != nil {
		return Placement{}, err
	}
	feas := make([]int, 0, len(g.Candidates))
	for i, c := range g.Candidates {
		if c.Feasible {
			feas = append(feas, i)
		}
	}
	if len(feas) == 0 {
		return Placement{}, fmt.Errorf(
			"placement: no (device, frequency) configuration of fleet %s fits the %s power budget",
			g.Fleet.Name, g.Fleet.Budget)
	}

	var chosen int
	switch t.Kind {
	case metrics.KindMaxPerf:
		chosen = g.argmin(feas, Candidate.time)
	case metrics.KindMinEnergy:
		chosen = g.argmin(feas, Candidate.energy)
	case metrics.KindMinEDP:
		chosen = g.argmin(feas, Candidate.EDP)
	case metrics.KindMinED2P:
		chosen = g.argmin(feas, Candidate.ED2P)
	case metrics.KindES:
		i, err := g.selectES(feas, t.X)
		if err != nil {
			return Placement{}, err
		}
		chosen = i
	case metrics.KindPL:
		i, err := g.selectPL(feas, t.X)
		if err != nil {
			return Placement{}, err
		}
		chosen = i
	default:
		return Placement{}, fmt.Errorf("placement: unreachable target kind")
	}

	p := Placement{Target: t, TargetName: t.String(), Candidate: g.Candidates[chosen]}
	if g.baseline >= 0 {
		def := g.Candidates[g.baseline]
		p.BaselineDevice = def.Device
		p.BaselineFreqMHz = def.FreqMHz
		p.ESPct = 100 * (def.EnergyJ - p.EnergyJ) / def.EnergyJ
		if pl := 100 * (p.TimeSec - def.TimeSec) / def.TimeSec; pl > 0 {
			p.PLPct = pl
		}
	}
	return p, nil
}

func (c Candidate) time() float64   { return c.TimeSec }
func (c Candidate) energy() float64 { return c.EnergyJ }

// argmin returns the index (into Candidates) of the first strict
// minimum of f over idxs — idxs is in device-major grid order, so ties
// resolve to the earlier device, then the lower frequency, exactly as
// metrics.Sweep.argmin resolves them to the lower frequency.
func (g *Grid) argmin(idxs []int, f func(Candidate) float64) int {
	best := idxs[0]
	bestV := f(g.Candidates[best])
	for _, i := range idxs[1:] {
		if v := f(g.Candidates[i]); v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// selectES mirrors metrics.Sweep.selectES over the feasible joint grid:
// on the interval between the fleet baseline's energy and the minimum
// achievable energy, the target energy is e_def - x% of the potential
// saving; among configurations at or below it, pick the best-performing
// one. When no savings are possible the baseline is returned.
func (g *Grid) selectES(feas []int, x float64) (int, error) {
	if g.baseline < 0 {
		_, err := g.BaselineCandidate()
		return 0, err
	}
	def := g.Candidates[g.baseline]
	minE := g.argmin(feas, Candidate.energy)
	if g.Candidates[minE].EnergyJ >= def.EnergyJ {
		return g.baseline, nil
	}
	targetE := def.EnergyJ - x/100*(def.EnergyJ-g.Candidates[minE].EnergyJ)
	best := -1
	for _, i := range feas {
		c := g.Candidates[i]
		if c.EnergyJ <= targetE+1e-12*def.EnergyJ {
			if best < 0 || c.TimeSec < g.Candidates[best].TimeSec {
				best = i
			}
		}
	}
	if best < 0 {
		return minE, nil
	}
	return best, nil
}

// selectPL mirrors metrics.Sweep.selectPL over the feasible joint grid:
// the potential performance loss is the slowdown from the fleet
// baseline to the minimum-energy configuration; the target time is
// t_def + x% of that interval; among configurations at or below it,
// pick the most energy-efficient one.
func (g *Grid) selectPL(feas []int, x float64) (int, error) {
	if g.baseline < 0 {
		_, err := g.BaselineCandidate()
		return 0, err
	}
	def := g.Candidates[g.baseline]
	minE := g.argmin(feas, Candidate.energy)
	slow := g.Candidates[minE].TimeSec
	if slow < def.TimeSec {
		slow = def.TimeSec
	}
	targetT := def.TimeSec + x/100*(slow-def.TimeSec)
	best := -1
	bestE := math.Inf(1)
	for _, i := range feas {
		c := g.Candidates[i]
		if c.TimeSec <= targetT+1e-12*def.TimeSec {
			if best < 0 || c.EnergyJ < bestE {
				best, bestE = i, c.EnergyJ
			}
		}
	}
	if best < 0 {
		return g.baseline, nil
	}
	return best, nil
}
