package placement_test

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/metrics"
	"synergy/internal/placement"
	"synergy/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden files")

// canonicalFleet is the 3-device fleet the oracle and golden tests pin:
// one device per class — the H100 GPU, the Sapphire Rapids CPU and the
// Alveo dataflow accelerator — under a 330 W power budget tight enough
// that the GPU's high-frequency configurations are infeasible. On this
// fleet the placements are genuinely heterogeneous: the GPU wins the
// performance-weighted targets, the accelerator wins MIN_ENERGY, and
// the ES/PL targets split between them per benchmark.
func canonicalFleet(t testing.TB) *hw.Fleet {
	t.Helper()
	f, err := hw.FleetFromNames([]string{"h100", "xeon8480", "alveo"}, hw.Budget{PowerW: 330})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func buildGrid(t testing.TB, f *hw.Fleet, bm *benchsuite.Benchmark) *placement.Grid {
	t.Helper()
	g, err := placement.BuildGroundTruth(sweep.Shared(), f, bm.Kernel, bm.CharItems)
	if err != nil {
		t.Fatalf("%s: BuildGroundTruth: %v", bm.Name, err)
	}
	return g
}

// bruteForce is the enumeration oracle: an independent, straight-line
// re-implementation of every target definition as an explicit scan of
// the full (device × frequency) grid, with the paper's tie-break rule
// (earlier fleet device, then lower frequency — i.e. first strict
// minimum in grid order) spelled out longhand. It shares no selection
// code with the package under test.
func bruteForce(t *testing.T, g *placement.Grid, target metrics.Target) placement.Candidate {
	t.Helper()
	var feas []placement.Candidate
	for _, c := range g.Candidates {
		if c.Feasible {
			feas = append(feas, c)
		}
	}
	if len(feas) == 0 {
		t.Fatal("oracle: empty feasible set")
	}

	scanMin := func(obj func(placement.Candidate) float64) placement.Candidate {
		best := feas[0]
		for _, c := range feas[1:] {
			if obj(c) < obj(best) {
				best = c
			}
		}
		return best
	}
	timeOf := func(c placement.Candidate) float64 { return c.TimeSec }
	energyOf := func(c placement.Candidate) float64 { return c.EnergyJ }

	// Fleet baseline: fastest feasible default-clock configuration.
	var def placement.Candidate
	haveDef := false
	for _, c := range feas {
		if c.Baseline && (!haveDef || c.TimeSec < def.TimeSec) {
			def, haveDef = c, true
		}
	}

	switch target.Kind {
	case metrics.KindMaxPerf:
		return scanMin(timeOf)
	case metrics.KindMinEnergy:
		return scanMin(energyOf)
	case metrics.KindMinEDP:
		return scanMin(func(c placement.Candidate) float64 { return c.EnergyJ * c.TimeSec })
	case metrics.KindMinED2P:
		return scanMin(func(c placement.Candidate) float64 { return c.EnergyJ * c.TimeSec * c.TimeSec })
	case metrics.KindES:
		if !haveDef {
			t.Fatal("oracle: ES target with no feasible baseline")
		}
		minE := scanMin(energyOf)
		if minE.EnergyJ >= def.EnergyJ {
			return def
		}
		targetE := def.EnergyJ - target.X/100*(def.EnergyJ-minE.EnergyJ)
		best, found := placement.Candidate{TimeSec: math.Inf(1)}, false
		for _, c := range feas {
			if c.EnergyJ <= targetE+1e-12*def.EnergyJ && c.TimeSec < best.TimeSec {
				best, found = c, true
			}
		}
		if !found {
			return minE
		}
		return best
	case metrics.KindPL:
		if !haveDef {
			t.Fatal("oracle: PL target with no feasible baseline")
		}
		minE := scanMin(energyOf)
		slow := math.Max(minE.TimeSec, def.TimeSec)
		targetT := def.TimeSec + target.X/100*(slow-def.TimeSec)
		best, found := placement.Candidate{EnergyJ: math.Inf(1)}, false
		for _, c := range feas {
			if c.TimeSec <= targetT+1e-12*def.TimeSec && c.EnergyJ < best.EnergyJ {
				best, found = c, true
			}
		}
		if !found {
			return def
		}
		return best
	}
	t.Fatalf("oracle: unhandled target %v", target)
	return placement.Candidate{}
}

// TestPlacementMatchesEnumerationOracle proves optimality by
// enumeration: for every benchmark in the suite and every standard
// target, the joint placement search must return exactly the argmin the
// brute-forced (device × frequency) grid yields under the same power
// constraint — same device, same frequency, bit-identical time and
// energy.
func TestPlacementMatchesEnumerationOracle(t *testing.T) {
	t.Parallel()
	f := canonicalFleet(t)
	for _, bm := range benchsuite.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			g := buildGrid(t, f, bm)
			for _, target := range metrics.StandardTargets {
				want := bruteForce(t, g, target)
				got, err := g.Select(target)
				if err != nil {
					t.Fatalf("%v: %v", target, err)
				}
				if got.Device != want.Device || got.FreqMHz != want.FreqMHz {
					t.Errorf("%v: placement chose %s@%d, oracle %s@%d",
						target, got.Device, got.FreqMHz, want.Device, want.FreqMHz)
					continue
				}
				if got.TimeSec != want.TimeSec || got.EnergyJ != want.EnergyJ {
					t.Errorf("%v: %s@%d time/energy (%v, %v) differ from oracle (%v, %v)",
						target, got.Device, got.FreqMHz,
						got.TimeSec, got.EnergyJ, want.TimeSec, want.EnergyJ)
				}
			}
		})
	}
}

// TestPlacementGolden pins the deterministic tie-breaking: the full
// suite × standard-target placement table on the canonical fleet must
// reproduce the golden byte for byte. Regenerate with -update after an
// intentional model change.
func TestPlacementGolden(t *testing.T) {
	t.Parallel()
	f := canonicalFleet(t)
	var sb strings.Builder
	fmt.Fprintf(&sb, "# fleet %s budget %s\n", f.Name, f.Budget)
	for _, bm := range benchsuite.All() {
		g := buildGrid(t, f, bm)
		for _, target := range metrics.StandardTargets {
			p, err := g.Select(target)
			if err != nil {
				t.Fatalf("%s %v: %v", bm.Name, target, err)
			}
			fmt.Fprintf(&sb, "%s\t%s\t%s\t%d\n", bm.Name, target, p.Device, p.FreqMHz)
		}
	}
	got := sb.String()

	golden := filepath.Join("testdata", "placements.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("placement table drifted from golden %s (run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestPlacementUsesMultipleDevices is the sanity check that the joint
// search is genuinely heterogeneous on the canonical fleet: across the
// suite and the standard targets the placements must not all land on
// one device, and the perf- and energy-extreme targets must disagree on
// at least one benchmark.
func TestPlacementUsesMultipleDevices(t *testing.T) {
	t.Parallel()
	f := canonicalFleet(t)
	devices := map[string]int{}
	splits := 0
	for _, bm := range benchsuite.All() {
		g := buildGrid(t, f, bm)
		var perDev []string
		for _, target := range metrics.StandardTargets {
			p, err := g.Select(target)
			if err != nil {
				t.Fatalf("%s %v: %v", bm.Name, target, err)
			}
			devices[p.Device]++
			perDev = append(perDev, p.Device)
		}
		for _, d := range perDev[1:] {
			if d != perDev[0] {
				splits++
				break
			}
		}
	}
	if len(devices) < 2 {
		t.Errorf("placements all on one device: %v", devices)
	}
	if splits == 0 {
		t.Error("no benchmark splits its targets across devices; fleet is degenerate")
	}
}
