package placement_test

import (
	"math"
	"testing"

	"synergy/internal/benchsuite"
	"synergy/internal/hw"
	"synergy/internal/placement"
	"synergy/internal/sweep"
)

// TestCrossValidateAgreesOnSuite: the placement layer's roofline
// cross-check must agree for every benchmark on every device of the
// canonical fleet — the same bar the repo-wide differential test
// TestStaticRooflineMatchesSweep holds the full catalog to, reached
// through the placement API.
func TestCrossValidateAgreesOnSuite(t *testing.T) {
	t.Parallel()
	f := canonicalFleet(t)
	for _, bm := range benchsuite.All() {
		checks, err := placement.CrossValidate(sweep.Shared(), f, bm.Kernel, bm.CharItems)
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if len(checks) != len(f.Devices) {
			t.Fatalf("%s: %d checks for %d devices", bm.Name, len(checks), len(f.Devices))
		}
		for _, bad := range placement.Disagreements(checks) {
			t.Errorf("%s on %s: static %v (alpha %.3f) vs sweep %v (alpha %.3f), on-ridge=%v",
				bm.Name, bad.Device, bad.StaticLabel, bad.StaticAlpha,
				bad.SweepLabel, bad.SweepAlpha, bad.OnRidge)
		}
	}
}

// TestCrossCheckVerdictSemantics pins the ridge-handling rule on the
// record level: off-ridge verdicts compare labels, on-ridge verdicts
// compare alphas within AlphaTol.
func TestCrossCheckVerdictSemantics(t *testing.T) {
	t.Parallel()
	f := canonicalFleet(t)
	bm, err := benchsuite.ByName("black_scholes")
	if err != nil {
		t.Fatal(err)
	}
	checks, err := placement.CrossValidate(sweep.Shared(), f, bm.Kernel, bm.CharItems)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		wantRidge := math.Abs(c.StaticAlpha-0.5) <= placement.RidgeMargin
		if c.OnRidge != wantRidge {
			t.Errorf("%s: OnRidge=%v with static alpha %.3f", c.Device, c.OnRidge, c.StaticAlpha)
		}
		var want bool
		if c.OnRidge {
			want = math.Abs(c.StaticAlpha-c.SweepAlpha) <= placement.AlphaTol
		} else {
			want = c.StaticLabel == c.SweepLabel
		}
		if c.Agree != want {
			t.Errorf("%s: Agree=%v, want %v (%+v)", c.Device, c.Agree, want, c)
		}
	}
}

// TestDisagreementsFilter checks the filter on synthetic records.
func TestDisagreementsFilter(t *testing.T) {
	t.Parallel()
	in := []placement.CrossCheck{
		{Device: "a", Agree: true},
		{Device: "b", Agree: false},
		{Device: "c", Agree: true},
		{Device: "d", Agree: false},
	}
	bad := placement.Disagreements(in)
	if len(bad) != 2 || bad[0].Device != "b" || bad[1].Device != "d" {
		t.Errorf("Disagreements = %+v", bad)
	}
	if placement.Disagreements(nil) != nil {
		t.Error("Disagreements(nil) should be nil")
	}
}

func TestCrossValidateErrors(t *testing.T) {
	t.Parallel()
	f := canonicalFleet(t)
	bm, err := benchsuite.ByName("vec_add")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placement.CrossValidate(nil, f, bm.Kernel, bm.CharItems); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := placement.CrossValidate(sweep.Shared(), f, nil, bm.CharItems); err == nil {
		t.Error("nil kernel accepted")
	}
	bad := &hw.Fleet{Name: "bad"}
	if _, err := placement.CrossValidate(sweep.Shared(), bad, bm.Kernel, bm.CharItems); err == nil {
		t.Error("invalid fleet accepted")
	}
}
