package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"synergy/internal/hw"
)

func TestExportProducesValidChromeTrace(t *testing.T) {
	dev := hw.NewDevice(hw.V100())
	for i := 0; i < 3; i++ {
		if _, err := dev.ExecuteKernel(hw.Workload{
			Name: "k", Items: 1 << 20, FloatOps: 50, GlobalBytes: 16,
		}); err != nil {
			t.Fatal(err)
		}
		dev.AdvanceIdle(0.001)
	}

	var buf bytes.Buffer
	if err := Export(&buf, []Device{{Label: "gpu0", Dev: dev}}); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	kernels, counters, meta := 0, 0, 0
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "X":
			kernels++
			if e.Dur <= 0 {
				t.Errorf("kernel event with non-positive duration: %+v", e)
			}
			if _, ok := e.Args["powerW"]; !ok {
				t.Error("kernel event missing power annotation")
			}
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	if kernels != 3 {
		t.Errorf("%d kernel events, want 3", kernels)
	}
	if counters < 4 {
		t.Errorf("%d counter samples, want >= 4 (busy + idle)", counters)
	}
	if meta != 1 {
		t.Errorf("%d metadata events, want 1", meta)
	}
}

func TestExportMultipleDevicesAndEmpty(t *testing.T) {
	if err := Export(&bytes.Buffer{}, nil); err == nil {
		t.Error("empty export accepted")
	}
	a := hw.NewDevice(hw.V100())
	b := hw.NewDevice(hw.MI100())
	if _, err := a.ExecuteKernel(hw.Workload{Name: "x", Items: 100, FloatOps: 10, GlobalBytes: 4}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Export(&buf, []Device{{"a", a}, {"b", b}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"a"`)) || !bytes.Contains(buf.Bytes(), []byte(`"b"`)) {
		t.Error("device labels missing from trace")
	}
}
