// Package trace exports device timelines in the Chrome tracing format
// (chrome://tracing, Perfetto): one track per GPU with a complete event
// per kernel (name, frequency, energy) and a power counter track — a
// practical way to inspect what per-kernel frequency scaling did to a
// run. ExportWith additionally renders telemetry spans as a second
// process, so queue-wait, clock-set and execute phases of every kernel
// line up under the device timelines.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"synergy/internal/hw"
	"synergy/internal/telemetry"
)

// event is one Chrome trace event (the subset we emit).
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"` // "X" complete, "C" counter, "M" metadata
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Device pairs a label with a virtual device for export.
type Device struct {
	Label string
	Dev   *hw.Device
}

// Process IDs of the two exported processes: device timelines and
// telemetry span tracks.
const (
	devicePid = 1
	spanPid   = 2
)

// sortSegments orders a device timeline for export: by start time, then
// end time, then label. The full key makes the order a function of the
// segment multiset alone — equal-start segments (zero-duration markers)
// can never flip between exports, which an unstable sort keyed on the
// start time alone allowed.
func sortSegments(segs []hw.Segment) {
	sort.SliceStable(segs, func(i, j int) bool {
		if segs[i].Start != segs[j].Start {
			return segs[i].Start < segs[j].Start
		}
		if segs[i].End != segs[j].End {
			return segs[i].End < segs[j].End
		}
		return segs[i].Label < segs[j].Label
	})
}

// Export writes the Chrome-trace JSON for the devices' full timelines.
func Export(w io.Writer, devices []Device) error {
	return ExportWith(w, devices, nil)
}

// ExportWith is Export plus telemetry spans: the spans (as returned by
// telemetry.Registry.Spans or a Snapshot) are rendered as a second
// process with one thread per span track, named after the track. Span
// tracks appear in the spans' canonical order (lexicographic by track),
// so the output is byte-deterministic for a deterministic run. A nil or
// empty span slice makes this exactly Export.
func ExportWith(w io.Writer, devices []Device, spans []telemetry.Span) error {
	if len(devices) == 0 {
		return fmt.Errorf("trace: no devices to export")
	}
	var f traceFile
	f.DisplayTimeUnit = "ms"
	for tid, d := range devices {
		f.TraceEvents = append(f.TraceEvents, event{
			Name: "thread_name", Ph: "M", Pid: devicePid, Tid: tid,
			Args: map[string]any{"name": d.Label},
		})
		segs := d.Dev.Segments()
		sortSegments(segs)
		idle := d.Dev.Spec().IdlePowerW
		prevEnd := 0.0
		for _, s := range segs {
			// Idle gap counter sample.
			if s.Start > prevEnd {
				f.TraceEvents = append(f.TraceEvents, counter(tid, prevEnd, idle))
			}
			f.TraceEvents = append(f.TraceEvents, event{
				Name: s.Label, Ph: "X",
				Ts: s.Start * 1e6, Dur: (s.End - s.Start) * 1e6,
				Pid: devicePid, Tid: tid,
				Args: map[string]any{
					"powerW":  s.PowerW,
					"energyJ": s.PowerW * (s.End - s.Start),
				},
			})
			f.TraceEvents = append(f.TraceEvents, counter(tid, s.Start, s.PowerW))
			prevEnd = s.End
		}
		f.TraceEvents = append(f.TraceEvents, counter(tid, prevEnd, idle))
	}
	if len(spans) > 0 {
		// One span-process thread per track, in first-appearance order
		// (canonical spans arrive sorted by track already).
		tids := map[string]int{}
		for _, s := range spans {
			if _, ok := tids[s.Track]; ok {
				continue
			}
			tid := len(tids)
			tids[s.Track] = tid
			f.TraceEvents = append(f.TraceEvents, event{
				Name: "thread_name", Ph: "M", Pid: spanPid, Tid: tid,
				Args: map[string]any{"name": s.Track},
			})
		}
		for _, s := range spans {
			args := map[string]any{"id": s.ID}
			if s.Kind != "" {
				args["kind"] = s.Kind
			}
			if s.Parent != 0 {
				args["parent"] = s.Parent
			}
			f.TraceEvents = append(f.TraceEvents, event{
				Name: s.Name, Ph: "X",
				Ts: s.StartSec * 1e6, Dur: (s.EndSec - s.StartSec) * 1e6,
				Pid: spanPid, Tid: tids[s.Track],
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

func counter(tid int, t, powerW float64) event {
	return event{
		Name: "power", Ph: "C", Ts: t * 1e6, Pid: devicePid, Tid: tid,
		Args: map[string]any{"W": powerW},
	}
}
