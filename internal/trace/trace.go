// Package trace exports device timelines in the Chrome tracing format
// (chrome://tracing, Perfetto): one track per GPU with a complete event
// per kernel (name, frequency, energy) and a power counter track — a
// practical way to inspect what per-kernel frequency scaling did to a
// run.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"synergy/internal/hw"
)

// event is one Chrome trace event (the subset we emit).
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"` // "X" complete, "C" counter, "M" metadata
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Device pairs a label with a virtual device for export.
type Device struct {
	Label string
	Dev   *hw.Device
}

// Export writes the Chrome-trace JSON for the devices' full timelines.
func Export(w io.Writer, devices []Device) error {
	if len(devices) == 0 {
		return fmt.Errorf("trace: no devices to export")
	}
	var f traceFile
	f.DisplayTimeUnit = "ms"
	for tid, d := range devices {
		f.TraceEvents = append(f.TraceEvents, event{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": d.Label},
		})
		segs := d.Dev.Segments()
		sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
		idle := d.Dev.Spec().IdlePowerW
		prevEnd := 0.0
		for _, s := range segs {
			// Idle gap counter sample.
			if s.Start > prevEnd {
				f.TraceEvents = append(f.TraceEvents, counter(tid, prevEnd, idle))
			}
			f.TraceEvents = append(f.TraceEvents, event{
				Name: s.Label, Ph: "X",
				Ts: s.Start * 1e6, Dur: (s.End - s.Start) * 1e6,
				Pid: 1, Tid: tid,
				Args: map[string]any{
					"powerW":  s.PowerW,
					"energyJ": s.PowerW * (s.End - s.Start),
				},
			})
			f.TraceEvents = append(f.TraceEvents, counter(tid, s.Start, s.PowerW))
			prevEnd = s.End
		}
		f.TraceEvents = append(f.TraceEvents, counter(tid, prevEnd, idle))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

func counter(tid int, t, powerW float64) event {
	return event{
		Name: "power", Ph: "C", Ts: t * 1e6, Pid: 1, Tid: tid,
		Args: map[string]any{"W": powerW},
	}
}
