package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"synergy/internal/hw"
	"synergy/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestSortSegmentsDeterministic is the regression test for the export
// ordering instability: with equal start times (zero-duration markers
// next to a kernel segment) the old sort, keyed on the start time only,
// could emit any permutation of the tied segments depending on their
// input order. The full (Start, End, Label) key must map every input
// permutation of the same multiset to one output order.
func TestSortSegmentsDeterministic(t *testing.T) {
	base := []hw.Segment{
		{Start: 0, End: 0, PowerW: 1, Label: "marker-a"},
		{Start: 0, End: 0, PowerW: 2, Label: "marker-b"},
		{Start: 0, End: 1, PowerW: 3, Label: "kernel"},
		{Start: 1, End: 1, PowerW: 4, Label: "marker-c"},
		{Start: 1, End: 2, PowerW: 5, Label: "kernel"},
	}
	want := make([]hw.Segment, len(base))
	copy(want, base)
	sortSegments(want)

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		got := make([]hw.Segment, len(base))
		copy(got, base)
		rng.Shuffle(len(got), func(i, j int) { got[i], got[j] = got[j], got[i] })
		sortSegments(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: segment %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// traceDevice builds a small deterministic timeline: two kernels with an
// idle gap.
func traceDevice(t *testing.T) *hw.Device {
	t.Helper()
	dev := hw.NewDevice(hw.V100())
	dev.SetLabel("rank0")
	for _, name := range []string{"advec", "diffuse"} {
		if _, err := dev.ExecuteKernel(hw.Workload{
			Name: name, Items: 1 << 18, FloatOps: 40, GlobalBytes: 12,
		}); err != nil {
			t.Fatal(err)
		}
		dev.AdvanceIdle(0.0005)
	}
	return dev
}

// traceSpans builds a canonical span set with a parent/child pair on two
// tracks.
func traceSpans() []telemetry.Span {
	r := telemetry.NewRegistry()
	job := r.StartSpan("job", "mini-app", "job", 0, nil)
	k := r.StartSpan("rank0", "advec", "kernel", 0.0001, job)
	r.RecordSpan("rank0", "execute", "phase", 0.0002, 0.0008, k)
	k.End(0.0008)
	job.End(0.002)
	return r.Spans()
}

func TestExportWithSpansGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportWith(&buf, []Device{{Label: "rank0", Dev: traceDevice(t)}}, traceSpans()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output differs from golden file %s\ngot:\n%s\nwant:\n%s", path, buf.Bytes(), want)
	}
}

func TestExportWithSpansStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportWith(&buf, []Device{{Label: "rank0", Dev: traceDevice(t)}}, traceSpans()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	spanThreads := map[int]string{}
	spanEvents := 0
	for _, e := range parsed.TraceEvents {
		if e.Pid != spanPid {
			continue
		}
		switch e.Ph {
		case "M":
			spanThreads[e.Tid] = e.Args["name"].(string)
		case "X":
			spanEvents++
		}
	}
	if len(spanThreads) != 2 {
		t.Errorf("span process has %d threads, want 2 (job, rank0): %v", len(spanThreads), spanThreads)
	}
	if spanThreads[0] != "job" || spanThreads[1] != "rank0" {
		t.Errorf("span thread names = %v, want tid0=job tid1=rank0", spanThreads)
	}
	if spanEvents != 3 {
		t.Errorf("%d span events, want 3", spanEvents)
	}
}

func TestExportWithIsByteDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if err := ExportWith(&buf, []Device{{Label: "rank0", Dev: traceDevice(t)}}, traceSpans()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("two identical exports differ byte-wise")
	}
}
