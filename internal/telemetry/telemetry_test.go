package telemetry

import (
	"strings"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("synergy_things_total", "device", "rank0")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	if again := r.Counter("synergy_things_total", "device", "rank0"); again != c {
		t.Fatal("same (name, labels) did not return the same counter series")
	}
	// Label order must not matter: the rendered label set is canonical.
	a := r.Counter("synergy_multi_total", "b", "2", "a", "1")
	b := r.Counter("synergy_multi_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order created distinct series")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("series aliasing broken")
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	t.Parallel()
	defer expectPanic(t, "counter decrement")
	NewRegistry().Counter("c_total").Add(-1)
}

func TestGaugeBasics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	g := r.Gauge("synergy_level", "device", "rank0")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge value = %v, want 2", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("synergy_x")
	defer expectPanic(t, "registered as both")
	r.Gauge("synergy_x")
}

func TestLabelValidation(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	t.Run("odd", func(t *testing.T) {
		defer expectPanic(t, "key/value pairs")
		r.Counter("c_total", "device")
	})
	t.Run("dup key", func(t *testing.T) {
		defer expectPanic(t, "duplicate label key")
		r.Counter("c_total", "device", "a", "device", "b")
	})
	t.Run("empty key", func(t *testing.T) {
		defer expectPanic(t, "empty label key")
		r.Counter("c_total", "", "v")
	})
	t.Run("empty name", func(t *testing.T) {
		defer expectPanic(t, "empty metric name")
		r.Counter("")
	})
}

func TestLabelEscaping(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("weird_total", "path", `a\b"c`+"\n").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `weird_total{path="a\\b\"c\n"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition %q missing escaped line %q", b.String(), want)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	t.Parallel()
	var r *Registry
	r.SetWindow(1)
	r.Counter("c_total", "a", "b").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", TimeBuckets).ObserveAt(1, 2)
	h := r.StartSpan("t", "n", "k", 0, nil)
	h.End(1)
	r.RecordSpan("t", "n", "k", 0, 1, nil)
	if got := r.Counter("c_total").Value(); got != 0 {
		t.Fatalf("nil registry counter = %d", got)
	}
	if r.Spans() != nil {
		t.Fatal("nil registry returned spans")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry exposition wrote %q, err %v", b.String(), err)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Spans) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestEmptyRegistryExposition is the empty-registry edge case: a
// registry with no metrics writes nothing at all (no stray families).
func TestEmptyRegistryExposition(t *testing.T) {
	t.Parallel()
	var b strings.Builder
	if err := NewRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry wrote %q", b.String())
	}
}

func TestWriteTextDeterministicAcrossCalls(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	// Populate in an order unlike the expected output order.
	r.Gauge("z_gauge", "device", "b").Set(1)
	r.Counter("a_total", "device", "rank1").Add(2)
	r.Counter("a_total", "device", "rank0").Add(1)
	r.Histogram("m_seconds", []float64{1, 2}, "device", "rank0").Observe(1.5)
	var b1, b2 strings.Builder
	if err := r.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("two expositions of the same registry differ")
	}
	// Families sorted by name, series by label set.
	text := b1.String()
	iA := strings.Index(text, "# TYPE a_total counter")
	iM := strings.Index(text, "# TYPE m_seconds histogram")
	iZ := strings.Index(text, "# TYPE z_gauge gauge")
	if !(iA >= 0 && iA < iM && iM < iZ) {
		t.Fatalf("families out of order:\n%s", text)
	}
	if r0, r1 := strings.Index(text, `a_total{device="rank0"}`), strings.Index(text, `a_total{device="rank1"}`); !(r0 >= 0 && r0 < r1) {
		t.Fatalf("series out of order:\n%s", text)
	}
}

func TestSnapshotHelpers(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("jobs_total", "result", "completed").Add(3)
	r.Counter("jobs_total", "result", "failed").Add(2)
	r.Histogram("lat_seconds", []float64{1}, "device", "a").Observe(0.5)
	r.Histogram("lat_seconds", []float64{1}, "device", "b").Observe(2)
	s := r.Snapshot()
	if got := s.CounterValue("jobs_total", "result", "completed"); got != 3 {
		t.Fatalf("CounterValue = %d, want 3", got)
	}
	if got := s.CounterValue("jobs_total", "result", "missing"); got != 0 {
		t.Fatalf("absent series CounterValue = %d, want 0", got)
	}
	if got := s.CounterTotal("jobs_total"); got != 5 {
		t.Fatalf("CounterTotal = %d, want 5", got)
	}
	m, err := s.MergedHistogram("lat_seconds")
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 2 || m.Counts[0] != 1 || m.Counts[1] != 1 {
		t.Fatalf("merged histogram = %+v", m)
	}
	if _, err := s.MergedHistogram("no_such_family"); err == nil {
		t.Fatal("MergedHistogram on a missing family did not error")
	}
}

func TestSetWindowAffectsNewHistograms(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.SetWindow(0) // disable windowing
	h := r.Histogram("w_seconds", []float64{1})
	h.ObserveAt(0.5, 3)
	if v := h.Value(); len(v.Windows) != 0 || v.WindowSec != 0 {
		t.Fatalf("windowing not disabled: %+v", v)
	}
}

func expectPanic(t *testing.T, substr string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatalf("expected panic containing %q", substr)
	}
	if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
		t.Fatalf("panic %v does not contain %q", r, substr)
	}
}
