package telemetry

import "sort"

// span is the registry-internal span record.
type span struct {
	name, kind string
	parent     *SpanHandle
	start, end float64
	ended      bool
}

// SpanHandle identifies one started span. It is cheap to pass through
// instrumented layers; a nil handle is a valid no-op (End does nothing,
// children become roots).
type SpanHandle struct {
	r     *Registry
	track string
	idx   int
}

// StartSpan opens a span on a track at the given device virtual time.
// Tracks are serial: each one must only ever be appended to from one
// goroutine at a time (a device thread, a rank goroutine), which is what
// makes within-track span order — and therefore Snapshot output —
// deterministic. parent links the span into the job → rank → kernel →
// vendor-call hierarchy; cross-track parents are fine.
func (r *Registry) StartSpan(track, name, kind string, startSec float64, parent *SpanHandle) *SpanHandle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans[track] = append(r.spans[track], &span{name: name, kind: kind, parent: parent, start: startSec})
	return &SpanHandle{r: r, track: track, idx: len(r.spans[track]) - 1}
}

// End closes the span at the given device virtual time. Ending twice
// keeps the first end. Spans never ended are dropped from snapshots.
func (h *SpanHandle) End(endSec float64) {
	if h == nil {
		return
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	sp := h.r.spans[h.track][h.idx]
	if sp.ended {
		return
	}
	sp.ended = true
	sp.end = endSec
}

// RecordSpan opens and immediately closes a span — for instrumentation
// that observes an interval after the fact.
func (r *Registry) RecordSpan(track, name, kind string, startSec, endSec float64, parent *SpanHandle) *SpanHandle {
	h := r.StartSpan(track, name, kind, startSec, parent)
	h.End(endSec)
	return h
}

// Span is one completed span in a snapshot, with canonical IDs: tracks
// in lexicographic order, spans in append order, IDs numbered 1..N in
// that traversal. Parent is 0 for roots (and for parents that never
// ended).
type Span struct {
	ID       int     `json:"id"`
	Parent   int     `json:"parent,omitempty"`
	Track    string  `json:"track"`
	Name     string  `json:"name"`
	Kind     string  `json:"kind,omitempty"`
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
}

// Spans returns every completed span in canonical order with canonical
// IDs — byte-comparable across identical seeded runs.
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spansLocked()
}

func (r *Registry) spansLocked() []Span {
	tracks := make([]string, 0, len(r.spans))
	for t := range r.spans {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	ids := map[*span]int{}
	id := 0
	for _, t := range tracks {
		for _, sp := range r.spans[t] {
			if sp.ended {
				id++
				ids[sp] = id
			}
		}
	}
	var out []Span
	for _, t := range tracks {
		for _, sp := range r.spans[t] {
			if !sp.ended {
				continue
			}
			s := Span{ID: ids[sp], Track: t, Name: sp.name, Kind: sp.kind, StartSec: sp.start, EndSec: sp.end}
			if sp.parent != nil {
				s.Parent = ids[r.spans[sp.parent.track][sp.parent.idx]]
			}
			out = append(out, s)
		}
	}
	return out
}
