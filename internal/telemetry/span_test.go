package telemetry

import (
	"reflect"
	"testing"
)

func TestSpanHierarchyAndCanonicalIDs(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	job := r.StartSpan("job", "cloverleaf", "job", 0, nil)
	rank := r.StartSpan("rank0", "rank 0", "rank", 0, job)
	k1 := r.StartSpan("rank0", "ideal_gas", "kernel", 0.1, rank)
	k1.End(0.2)
	r.RecordSpan("rank0", "set_app_clocks", "vendor-call", 0.1, 0.12, k1)
	orphan := r.StartSpan("rank0", "never_ends", "kernel", 0.3, rank)
	_ = orphan
	rank.End(0.5)
	job.End(0.6)

	spans := r.Spans()
	// Canonical order: tracks lexicographically ("job" < "rank0"), spans
	// in append order within a track; the un-ended span is dropped.
	want := []Span{
		{ID: 1, Track: "job", Name: "cloverleaf", Kind: "job", StartSec: 0, EndSec: 0.6},
		{ID: 2, Parent: 1, Track: "rank0", Name: "rank 0", Kind: "rank", StartSec: 0, EndSec: 0.5},
		{ID: 3, Parent: 2, Track: "rank0", Name: "ideal_gas", Kind: "kernel", StartSec: 0.1, EndSec: 0.2},
		{ID: 4, Parent: 3, Track: "rank0", Name: "set_app_clocks", Kind: "vendor-call", StartSec: 0.1, EndSec: 0.12},
	}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("spans:\n%+v\nwant:\n%+v", spans, want)
	}
}

func TestSpanDoubleEndKeepsFirst(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.StartSpan("t", "x", "kernel", 1, nil)
	h.End(2)
	h.End(99)
	spans := r.Spans()
	if len(spans) != 1 || spans[0].EndSec != 2 {
		t.Fatalf("spans = %+v", spans)
	}
}

// A parent that never ended is dropped; its children become roots
// (Parent 0) rather than dangling references.
func TestSpanUnendedParentDropped(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	p := r.StartSpan("t", "parent", "rank", 0, nil)
	c := r.StartSpan("t", "child", "kernel", 1, p)
	c.End(2)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Name != "child" || spans[0].Parent != 0 {
		t.Fatalf("child span = %+v, want root", spans[0])
	}
}

func TestSpansInSnapshot(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.RecordSpan("t", "x", "kernel", 0, 1, nil)
	s := r.Snapshot()
	if len(s.Spans) != 1 || s.Spans[0].Name != "x" {
		t.Fatalf("snapshot spans = %+v", s.Spans)
	}
}
