package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every exposition shape:
// multi-series counters, a gauge, histograms with windows and overflow,
// escaped label values, and spans (excluded from the text exposition).
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.SetWindow(0.5)
	r.Counter("synergy_kernels_total", "device", "node0/gpu1").Add(24)
	r.Counter("synergy_kernels_total", "device", "node0/gpu0").Add(25)
	r.Counter("synergy_vendor_calls_total", "lib", "nvml", "call", "set_app_clocks", "device", "node0/gpu0").Add(3)
	r.Gauge("synergy_device_energy_joules", "device", "node0/gpu0").Set(1234.5625)
	h := r.Histogram("synergy_kernel_seconds", []float64{0.001, 0.01, 0.1}, "device", "node0/gpu0")
	h.ObserveAt(0.0005, 0.1)
	h.ObserveAt(0.05, 0.3)
	h.ObserveAt(2.5, 0.9) // overflow
	r.Counter("odd_chars_total", "path", `a"b\c`).Inc()
	job := r.StartSpan("job", "cloverleaf", "job", 0, nil)
	r.RecordSpan("node0/gpu0", "ideal_gas", "kernel", 0.1, 0.2, job)
	job.End(1)
	return r
}

func TestWriteTextGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "expo.golden"), b.Bytes())
}

// compareGolden asserts got matches the golden file, rewriting it under
// -update.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
