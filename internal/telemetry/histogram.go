package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Standard bucket bounds for the stack's two dominant units. Virtual
// kernel/queue latencies span microseconds to tens of seconds; energies
// span millijoules to tens of kilojoules.
var (
	TimeBuckets   = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}
	EnergyBuckets = []float64{1e-3, 1e-2, 0.1, 1, 10, 100, 1e3, 1e4}
)

// Histogram is a fixed-bucket histogram with an overflow bucket and
// optional aggregation into fixed windows of device virtual time.
// Bucket counts and the observation count are exact under concurrency;
// the sums are deterministic when each series has a single serial
// writer (the convention throughout this codebase).
type Histogram struct {
	name, labels string
	bounds       []float64
	windowSec    float64

	mu      sync.Mutex
	counts  []uint64 // len(bounds)+1; last is the overflow (+Inf) bucket
	sum     float64
	count   uint64
	windows map[int64]*windowCell
}

type windowCell struct {
	count uint64
	sum   float64
}

func newHistogram(name, labels string, bounds []float64, windowSec float64) *Histogram {
	return &Histogram{
		name:      name,
		labels:    labels,
		bounds:    bounds,
		windowSec: windowSec,
		counts:    make([]uint64, len(bounds)+1),
		windows:   map[int64]*windowCell{},
	}
}

// Observe records a value with no virtual timestamp (it joins no
// window, only the cumulative buckets).
func (h *Histogram) Observe(v float64) { h.observe(v, math.NaN()) }

// ObserveAt records a value observed at the given device virtual time;
// the observation also lands in the fixed virtual-time window containing
// atSec, keeping windowed series reproducible across identical seeds.
func (h *Histogram) ObserveAt(v, atSec float64) { h.observe(v, atSec) }

func (h *Histogram) observe(v, atSec float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// le semantics: v lands in the first bucket whose bound >= v; past
	// the last bound it lands in the overflow bucket.
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	h.sum += v
	h.count++
	if h.windowSec > 0 && !math.IsNaN(atSec) {
		idx := int64(math.Floor(atSec / h.windowSec))
		c := h.windows[idx]
		if c == nil {
			c = &windowCell{}
			h.windows[idx] = c
		}
		c.count++
		c.sum += v
	}
}

// Window is one virtual-time aggregation window of a histogram series.
type Window struct {
	StartSec float64 `json:"start_sec"`
	Count    uint64  `json:"count"`
	Sum      float64 `json:"sum"`
}

// HistogramSnapshot is a point-in-time copy of one histogram series.
// Counts are per-bucket (non-cumulative); the last entry is the
// overflow bucket. The zero value is a valid merge accumulator.
type HistogramSnapshot struct {
	Name      string    `json:"name"`
	Labels    string    `json:"labels,omitempty"`
	Bounds    []float64 `json:"bounds"`
	Counts    []uint64  `json:"counts"`
	Sum       float64   `json:"sum"`
	Count     uint64    `json:"count"`
	WindowSec float64   `json:"window_sec,omitempty"`
	Windows   []Window  `json:"windows,omitempty"`
}

// Value snapshots the series. Windows are sorted by start time.
func (h *Histogram) Value() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Name:      h.name,
		Labels:    h.labels,
		Bounds:    append([]float64(nil), h.bounds...),
		Counts:    append([]uint64(nil), h.counts...),
		Sum:       h.sum,
		Count:     h.count,
		WindowSec: h.windowSec,
	}
	for idx, c := range h.windows {
		s.Windows = append(s.Windows, Window{StartSec: float64(idx) * h.windowSec, Count: c.count, Sum: c.sum})
	}
	sort.Slice(s.Windows, func(i, j int) bool { return s.Windows[i].StartSec < s.Windows[j].StartSec })
	return s
}

// Merge folds another series of the same family into this snapshot:
// bucket-wise count addition, sum/count addition, window union. Merging
// into a zero-value accumulator adopts the other snapshot. Series with
// different bucket bounds or window widths do not merge.
func (h *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(h.Bounds) == 0 && h.Count == 0 {
		h.Bounds = append([]float64(nil), o.Bounds...)
		h.Counts = append([]uint64(nil), o.Counts...)
		h.Sum, h.Count, h.WindowSec = o.Sum, o.Count, o.WindowSec
		h.Windows = append([]Window(nil), o.Windows...)
		return nil
	}
	if !equalBounds(h.Bounds, o.Bounds) {
		return fmt.Errorf("telemetry: merging histograms with different buckets")
	}
	if h.WindowSec != o.WindowSec && len(h.Windows) > 0 && len(o.Windows) > 0 {
		return fmt.Errorf("telemetry: merging histograms with different window widths")
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
	h.Count += o.Count
	if len(o.Windows) > 0 {
		byStart := map[float64]*Window{}
		for i := range h.Windows {
			byStart[h.Windows[i].StartSec] = &h.Windows[i]
		}
		for _, w := range o.Windows {
			if mine, ok := byStart[w.StartSec]; ok {
				mine.Count += w.Count
				mine.Sum += w.Sum
			} else {
				h.Windows = append(h.Windows, w)
			}
		}
		sort.Slice(h.Windows, func(i, j int) bool { return h.Windows[i].StartSec < h.Windows[j].StartSec })
		if h.WindowSec == 0 {
			h.WindowSec = o.WindowSec
		}
	}
	return nil
}
