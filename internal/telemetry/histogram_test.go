package telemetry

import (
	"reflect"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries pins the le bucket semantics: a value
// lands in the first bucket whose upper bound is >= the value; values
// above the last bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	t.Parallel()
	bounds := []float64{1, 10, 100}
	cases := []struct {
		name   string
		value  float64
		bucket int // index into counts (len(bounds) = overflow)
	}{
		{"below first", 0.5, 0},
		{"exactly first bound", 1, 0},
		{"just above first bound", 1.0000001, 1},
		{"interior", 50, 2},
		{"exactly last bound", 100, 2},
		{"overflow", 100.5, 3},
		{"far overflow", 1e9, 3},
		{"negative", -3, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			h := NewRegistry().Histogram("b_seconds", bounds)
			h.Observe(tc.value)
			v := h.Value()
			want := make([]uint64, len(bounds)+1)
			want[tc.bucket] = 1
			if !reflect.DeepEqual(v.Counts, want) {
				t.Fatalf("Observe(%v): counts = %v, want %v", tc.value, v.Counts, want)
			}
			if v.Count != 1 || v.Sum != tc.value {
				t.Fatalf("Observe(%v): count=%d sum=%v", tc.value, v.Count, v.Sum)
			}
		})
	}
}

func TestHistogramWindows(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.SetWindow(0.5)
	h := r.Histogram("w_seconds", []float64{1})
	h.ObserveAt(0.125, 0.0) // window [0, 0.5)
	h.ObserveAt(0.25, 0.49) // same window
	h.ObserveAt(0.375, 1.3) // window [1.0, 1.5)
	h.Observe(9)            // no timestamp: cumulative only, no window
	v := h.Value()
	if v.Count != 4 {
		t.Fatalf("count = %d, want 4", v.Count)
	}
	want := []Window{
		{StartSec: 0, Count: 2, Sum: 0.375},
		{StartSec: 1, Count: 1, Sum: 0.375},
	}
	if !reflect.DeepEqual(v.Windows, want) {
		t.Fatalf("windows = %+v, want %+v", v.Windows, want)
	}
	if v.WindowSec != 0.5 {
		t.Fatalf("window width = %v", v.WindowSec)
	}
}

// TestHistogramMergePerDevice is the per-device merge satellite case:
// folding the per-device series of one family into a cluster aggregate.
func TestHistogramMergePerDevice(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.SetWindow(1)
	h0 := r.Histogram("k_seconds", []float64{1, 10}, "device", "rank0")
	h1 := r.Histogram("k_seconds", []float64{1, 10}, "device", "rank1")
	h0.ObserveAt(0.5, 0.2) // window 0
	h0.ObserveAt(20, 2.5)  // overflow, window 2
	h1.ObserveAt(5, 0.7)   // window 0
	var acc HistogramSnapshot
	if err := acc.Merge(h0.Value()); err != nil {
		t.Fatal(err)
	}
	if err := acc.Merge(h1.Value()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(acc.Counts, []uint64{1, 1, 1}) {
		t.Fatalf("merged counts = %v", acc.Counts)
	}
	if acc.Count != 3 || acc.Sum != 25.5 {
		t.Fatalf("merged count=%d sum=%v", acc.Count, acc.Sum)
	}
	wantWin := []Window{
		{StartSec: 0, Count: 2, Sum: 5.5},
		{StartSec: 2, Count: 1, Sum: 20},
	}
	if !reflect.DeepEqual(acc.Windows, wantWin) {
		t.Fatalf("merged windows = %+v, want %+v", acc.Windows, wantWin)
	}
	// The registry-level helper computes the same aggregate.
	m, err := r.Snapshot().MergedHistogram("k_seconds")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Counts, acc.Counts) || m.Count != acc.Count {
		t.Fatalf("MergedHistogram disagrees: %+v vs %+v", m, acc)
	}
}

func TestHistogramMergeRejectsMismatch(t *testing.T) {
	t.Parallel()
	a := NewRegistry().Histogram("a_seconds", []float64{1, 2}).Value()
	b := NewRegistry().Histogram("a_seconds", []float64{1, 3}).Value()
	if err := a.Merge(b); err == nil {
		t.Fatal("merge with different bounds did not error")
	}
	ra, rb := NewRegistry(), NewRegistry()
	ra.SetWindow(1)
	rb.SetWindow(2)
	ha := ra.Histogram("w_seconds", []float64{1})
	hb := rb.Histogram("w_seconds", []float64{1})
	ha.ObserveAt(0.5, 0.5)
	hb.ObserveAt(0.5, 0.5)
	va := ha.Value()
	if err := va.Merge(hb.Value()); err == nil {
		t.Fatal("merge with different window widths did not error")
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	t.Parallel()
	t.Run("empty", func(t *testing.T) {
		defer expectPanic(t, "no buckets")
		NewRegistry().Histogram("h_seconds", nil)
	})
	t.Run("not increasing", func(t *testing.T) {
		defer expectPanic(t, "strictly increasing")
		NewRegistry().Histogram("h_seconds", []float64{1, 1})
	})
	t.Run("re-registered different", func(t *testing.T) {
		r := NewRegistry()
		r.Histogram("h_seconds", []float64{1, 2})
		defer expectPanic(t, "different buckets")
		r.Histogram("h_seconds", []float64{1, 3}, "device", "x")
	})
}

// TestHistogramExposition pins the cumulative-bucket rendering: buckets
// accumulate, the +Inf bucket equals the observation count, and _sum /
// _count close the series.
func TestHistogramExposition(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.001, 0.1}, "device", "rank0")
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(7) // overflow
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{device="rank0",le="0.001"} 1`,
		`lat_seconds_bucket{device="rank0",le="0.1"} 3`,
		`lat_seconds_bucket{device="rank0",le="+Inf"} 4`,
		`lat_seconds_sum{device="rank0"} 7.1005`,
		`lat_seconds_count{device="rank0"} 4`,
	}, "\n") + "\n"
	if b.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}
