// Package telemetry is the unified observability layer for the
// simulated SYnergy stack: a concurrency-safe metrics registry
// (counters, gauges and fixed-bucket histograms) plus lightweight
// hierarchical spans (job → rank → kernel → vendor-call), threaded
// through core.Queue, governor, mpi.World, sweep.Engine, slurm and the
// nvml/rocmsmi vendor layers.
//
// # Determinism contract
//
// Telemetry in this codebase is not best-effort: it is part of the
// reproducibility surface the chaos harness asserts on. Three rules make
// identical seeds yield identical snapshots:
//
//   - Time is device *virtual* time, never the wall clock. Histogram
//     observations carry their virtual timestamp (ObserveAt) and are
//     aggregated into fixed windows of that timeline, so the windowed
//     series of two identical runs match exactly.
//   - Counter totals are exact (atomic integers), so goroutine
//     interleaving cannot change a final value, only the order in which
//     it was reached.
//   - Every span track and every histogram series has a single serial
//     writer (a device thread, a rank goroutine), with happens-before
//     edges through event waits — so within-track span order and
//     floating-point accumulation order are deterministic. Snapshot
//     renumbers span IDs canonically (tracks in lexicographic order,
//     spans in append order), so snapshots compare byte-for-byte.
//
// WriteText renders a Prometheus-style text exposition with fully
// deterministic ordering: families sorted by name, series sorted by
// rendered label string, buckets in ascending bound order.
//
// The zero registry pointer is valid everywhere: every method on a nil
// *Registry, *Counter, *Gauge, *Histogram or *SpanHandle is a no-op (or
// returns a zero value), so instrumented call sites need no guards —
// the same convention as fault.Injector.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultWindowSec is the default virtual-time histogram window width.
const DefaultWindowSec = 0.25

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds every metric family and span track of one run (or one
// soak). It is safe for concurrent use; a nil *Registry is a valid
// no-op sink.
type Registry struct {
	mu        sync.Mutex
	windowSec float64
	kinds     map[string]metricKind
	bounds    map[string][]float64 // histogram family -> bucket bounds
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	spans     map[string][]*span
}

// NewRegistry creates an empty registry with the default virtual-time
// histogram window.
func NewRegistry() *Registry {
	return &Registry{
		windowSec: DefaultWindowSec,
		kinds:     map[string]metricKind{},
		bounds:    map[string][]float64{},
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		hists:     map[string]*Histogram{},
		spans:     map[string][]*span{},
	}
}

// SetWindow sets the virtual-time window width (seconds) used by
// histograms created afterwards; sec <= 0 disables windowing. Call it
// before instrumentation starts — existing histograms keep the width
// they were created with.
func (r *Registry) SetWindow(sec float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.windowSec = sec
}

// labelString validates a variadic key/value list and renders it as the
// canonical exposition label set ("" for no labels). Labels are sorted
// by key, so {a,b} and {b,a} name the same series.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if labels[i] == "" {
			panic("telemetry: empty label key")
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			if pairs[i-1].k == p.k {
				panic(fmt.Sprintf("telemetry: duplicate label key %q", p.k))
			}
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// registerKind records the family's kind, panicking on a kind conflict —
// the same name cannot be a counter in one call site and a histogram in
// another.
func (r *Registry) registerKind(name string, k metricKind) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	if prev, ok := r.kinds[name]; ok && prev != k {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, prev, k))
	}
	r.kinds[name] = k
}

// Counter is a monotonically increasing integer metric. Totals are
// exact under concurrency.
type Counter struct {
	name, labels string
	v            atomic.Int64
}

// Counter returns (creating on first use) the counter series for the
// given name and label pairs ("k1", "v1", "k2", "v2", ...).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerKind(name, kindCounter)
	key := name + ls
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{name: name, labels: ls}
		r.counters[key] = c
	}
	return c
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (>= 0; counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic("telemetry: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can move both ways (device energy so
// far, current clock, queue depth).
type Gauge struct {
	name, labels string
	mu           sync.Mutex
	v            float64
}

// Gauge returns (creating on first use) the gauge series for the given
// name and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerKind(name, kindGauge)
	key := name + ls
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{name: name, labels: ls}
		r.gauges[key] = g
	}
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram returns (creating on first use) the histogram series for
// the given family, bucket bounds and label pairs. Bounds are upper
// bucket edges (le semantics), strictly increasing; every series of a
// family must use identical bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerKind(name, kindHistogram)
	fam, ok := r.bounds[name]
	if !ok {
		checkBounds(name, bounds)
		fam = append([]float64(nil), bounds...)
		r.bounds[name] = fam
	} else if !equalBounds(fam, bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q re-registered with different buckets", name))
	}
	key := name + ls
	h, ok := r.hists[key]
	if !ok {
		h = newHistogram(name, ls, fam, r.windowSec)
		r.hists[key] = h
	}
	return h
}

func checkBounds(name string, bounds []float64) {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q has no buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not strictly increasing", name))
		}
	}
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- snapshots and exposition ---

// CounterValue is one counter series in a snapshot.
type CounterValue struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// GaugeValue is one gauge series in a snapshot.
type GaugeValue struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Snapshot is a consistent, canonically ordered copy of the registry:
// series sorted by (name, labels), span IDs renumbered deterministically.
// Two identical seeded runs produce snapshots that compare equal — and
// marshal to identical JSON.
type Snapshot struct {
	Counters   []CounterValue      `json:"counters,omitempty"`
	Gauges     []GaugeValue        `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []Span              `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Labels: c.labels, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return s.Counters[i].Labels < s.Counters[j].Labels
	})
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool {
		if s.Gauges[i].Name != s.Gauges[j].Name {
			return s.Gauges[i].Name < s.Gauges[j].Name
		}
		return s.Gauges[i].Labels < s.Gauges[j].Labels
	})
	for _, h := range r.hists {
		s.Histograms = append(s.Histograms, h.Value())
	}
	sort.Slice(s.Histograms, func(i, j int) bool {
		if s.Histograms[i].Name != s.Histograms[j].Name {
			return s.Histograms[i].Name < s.Histograms[j].Name
		}
		return s.Histograms[i].Labels < s.Histograms[j].Labels
	})
	s.Spans = r.spansLocked()
	return s
}

// WriteText writes the registry's Prometheus-style text exposition with
// deterministic ordering. An empty registry writes nothing. Spans are
// not part of the exposition — they export through Snapshot and the
// Chrome trace.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.Snapshot().WriteText(w)
}

// WriteText renders the snapshot's metrics as Prometheus-style text.
func (s Snapshot) WriteText(w io.Writer) error {
	kinds := map[string]string{}
	lines := map[string][]string{}
	for _, c := range s.Counters {
		kinds[c.Name] = "counter"
		lines[c.Name] = append(lines[c.Name], fmt.Sprintf("%s%s %d", c.Name, c.Labels, c.Value))
	}
	for _, g := range s.Gauges {
		kinds[g.Name] = "gauge"
		lines[g.Name] = append(lines[g.Name], fmt.Sprintf("%s%s %s", g.Name, g.Labels, FormatFloat(g.Value)))
	}
	for _, h := range s.Histograms {
		kinds[h.Name] = "histogram"
		cum := uint64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			lines[h.Name] = append(lines[h.Name],
				fmt.Sprintf("%s_bucket%s %d", h.Name, withLE(h.Labels, FormatFloat(b)), cum))
		}
		cum += h.Counts[len(h.Bounds)]
		lines[h.Name] = append(lines[h.Name],
			fmt.Sprintf("%s_bucket%s %d", h.Name, withLE(h.Labels, "+Inf"), cum))
		lines[h.Name] = append(lines[h.Name],
			fmt.Sprintf("%s_sum%s %s", h.Name, h.Labels, FormatFloat(h.Sum)))
		lines[h.Name] = append(lines[h.Name],
			fmt.Sprintf("%s_count%s %d", h.Name, h.Labels, h.Count))
	}
	names := make([]string, 0, len(kinds))
	for n := range kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, kinds[n]); err != nil {
			return err
		}
		for _, l := range lines[n] {
			if _, err := io.WriteString(w, l+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// withLE appends the le bucket label to an already rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// FormatFloat renders a float the way the exposition does: shortest
// round-trip 'g' form, so identical values render identically.
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// CounterValue returns the snapshot value of one counter series
// (0 when absent).
func (s Snapshot) CounterValue(name string, labels ...string) int64 {
	ls := labelString(labels)
	for _, c := range s.Counters {
		if c.Name == name && c.Labels == ls {
			return c.Value
		}
	}
	return 0
}

// GaugeValue returns the snapshot value of one gauge series
// (0 when absent).
func (s Snapshot) GaugeValue(name string, labels ...string) float64 {
	ls := labelString(labels)
	for _, g := range s.Gauges {
		if g.Name == name && g.Labels == ls {
			return g.Value
		}
	}
	return 0
}

// CounterTotal sums a counter family across all label sets.
func (s Snapshot) CounterTotal(name string) int64 {
	var t int64
	for _, c := range s.Counters {
		if c.Name == name {
			t += c.Value
		}
	}
	return t
}

// MergedHistogram merges every series of a histogram family into one
// aggregate (per-device histograms into a cluster-wide one).
func (s Snapshot) MergedHistogram(name string) (HistogramSnapshot, error) {
	var out HistogramSnapshot
	found := false
	for _, h := range s.Histograms {
		if h.Name != name {
			continue
		}
		found = true
		if err := out.Merge(h); err != nil {
			return HistogramSnapshot{}, err
		}
	}
	if !found {
		return HistogramSnapshot{}, fmt.Errorf("telemetry: no histogram family %q", name)
	}
	out.Name = name
	out.Labels = ""
	return out, nil
}
