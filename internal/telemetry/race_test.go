package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryRaceExactTotals hammers one registry from N goroutines —
// shared counter series, per-goroutine series, histograms, gauges and
// per-goroutine span tracks — and asserts the final totals are *exact*:
// under -race this is the satellite proving the registry is safe AND
// lossless under contention, not merely crash-free.
func TestRegistryRaceExactTotals(t *testing.T) {
	t.Parallel()
	const (
		workers = 16
		iters   = 500
	)
	r := NewRegistry()
	r.SetWindow(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := fmt.Sprintf("g%02d", w)
			shared := r.Counter("race_shared_total")
			mine := r.Counter("race_per_worker_total", "worker", me)
			h := r.Histogram("race_seconds", []float64{0.5}, "worker", me)
			g := r.Gauge("race_last", "worker", me)
			for i := 0; i < iters; i++ {
				shared.Inc()
				mine.Inc()
				h.ObserveAt(float64(i%2), float64(i))
				g.Set(float64(i))
				sp := r.StartSpan("track/"+me, fmt.Sprintf("op%d", i), "kernel", float64(i), nil)
				sp.End(float64(i) + 0.5)
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("race_shared_total").Value(); got != workers*iters {
		t.Fatalf("shared counter = %d, want %d", got, workers*iters)
	}
	s := r.Snapshot()
	if got := s.CounterTotal("race_per_worker_total"); got != workers*iters {
		t.Fatalf("per-worker total = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		me := fmt.Sprintf("g%02d", w)
		if got := s.CounterValue("race_per_worker_total", "worker", me); got != iters {
			t.Fatalf("worker %s counter = %d, want %d", me, got, iters)
		}
	}
	m, err := s.MergedHistogram("race_seconds")
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", m.Count, workers*iters)
	}
	// Each worker alternates 0 and 1: exactly half per bucket.
	if m.Counts[0] != workers*iters/2 || m.Counts[1] != workers*iters/2 {
		t.Fatalf("histogram buckets = %v", m.Counts)
	}
	if got := len(s.Spans); got != workers*iters {
		t.Fatalf("spans = %d, want %d", got, workers*iters)
	}
}
