package slurm

import (
	"sync"
	"testing"

	"synergy/internal/hw"
	"synergy/internal/metrics"
)

// adviceCluster builds n 4-GPU V100 nodes with only the advice plugin.
func adviceCluster(t *testing.T, n int, budget float64) (*Cluster, *EnergyAdvicePlugin) {
	t.Helper()
	var nodes []*Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, NewNode(nodeName(i), hw.V100(), 4))
	}
	c := NewCluster(nodes...)
	p := &EnergyAdvicePlugin{ClusterBudgetW: budget}
	c.RegisterPlugin(p)
	return c, p
}

func TestNoAdviceUnderBudget(t *testing.T) {
	// One 4-GPU job demands 1200 W; a 2000 W budget leaves headroom.
	c, _ := adviceCluster(t, 1, 2000)
	res, err := c.Submit(&Job{
		Name: "roomy", User: "a", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error {
			if _, ok, err := AdvisedTarget(ctx); err != nil || ok {
				t.Errorf("unexpected advice under budget (ok=%v, err=%v)", ok, err)
			}
			return nil
		},
	})
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
}

func TestAdviceScalesWithPressure(t *testing.T) {
	// Budget 1000 W, demand 1200 W -> pressure 1.2 -> ES_25.
	c, p := adviceCluster(t, 1, 1000)
	res, err := c.Submit(&Job{
		Name: "tight", User: "a", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error {
			tgt, ok, err := AdvisedTarget(ctx)
			if err != nil {
				return err
			}
			if !ok || tgt != metrics.ES(25) {
				t.Errorf("advice = %v (ok=%v), want ES_25", tgt, ok)
			}
			return nil
		},
	})
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
	if p.Pressure() != 0 {
		t.Fatalf("pressure %v after job end, want 0", p.Pressure())
	}
}

func TestAdviceEscalatesWithConcurrentJobs(t *testing.T) {
	// Budget 1500 W. First job (1200 W) fits; the second pushes total
	// demand to 2400 W -> pressure 1.6 -> ES_50 for the newcomer.
	c, _ := adviceCluster(t, 2, 1500)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := c.Submit(&Job{
			Name: "first", User: "a", NumNodes: 1, Exclusive: true,
			Run: func(ctx *Allocation) error {
				close(started)
				<-block
				return nil
			},
		})
		if err != nil || res.Err != nil {
			t.Errorf("first: %v / %v", err, res.Err)
		}
	}()
	<-started
	res, err := c.Submit(&Job{
		Name: "second", User: "b", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error {
			tgt, ok, err := AdvisedTarget(ctx)
			if err != nil {
				return err
			}
			if !ok || tgt != metrics.ES(50) {
				t.Errorf("second job advice = %v (ok=%v), want ES_50", tgt, ok)
			}
			return nil
		},
	})
	if err != nil || res.Err != nil {
		t.Fatalf("second: %v / %v", err, res.Err)
	}
	close(block)
	wg.Wait()
}

func TestAdvisedTargetParsesHint(t *testing.T) {
	ctx := &Allocation{Hints: map[string]string{HintEnergyTarget: "PL_50"}}
	tgt, ok, err := AdvisedTarget(ctx)
	if err != nil || !ok || tgt != metrics.PL(50) {
		t.Fatalf("%v %v %v", tgt, ok, err)
	}
	ctx = &Allocation{Hints: map[string]string{HintEnergyTarget: "nonsense"}}
	if _, _, err := AdvisedTarget(ctx); err == nil {
		t.Fatal("bad hint accepted")
	}
	if _, ok, _ := AdvisedTarget(&Allocation{}); ok {
		t.Fatal("advice found in empty hints")
	}
}

func TestAdviceDisabledWithoutBudget(t *testing.T) {
	c, p := adviceCluster(t, 1, 0)
	res, err := c.Submit(&Job{
		Name: "j", User: "a", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error {
			if _, ok, _ := AdvisedTarget(ctx); ok {
				t.Error("advice with capping disabled")
			}
			return nil
		},
	})
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
	if p.Pressure() != 0 {
		t.Fatal("pressure nonzero when disabled")
	}
}
