package slurm

import (
	"strings"
	"sync"
	"testing"

	"synergy/internal/hw"
)

func newCapCluster(t *testing.T, nodes int, budget, floor float64) (*Cluster, *PowerCapPlugin) {
	t.Helper()
	var ns []*Node
	for i := 0; i < nodes; i++ {
		ns = append(ns, NewNode(nodeName(i), hw.V100(), 4))
	}
	c := NewCluster(ns...)
	p := &PowerCapPlugin{ClusterBudgetW: budget, FloorPerGPUW: floor}
	c.RegisterPlugin(p)
	return c, p
}

func TestPowerCapAppliedDuringJob(t *testing.T) {
	c, _ := newCapCluster(t, 1, 800, 100) // 800 W over 4 GPUs = 200 W each
	res, err := c.Submit(&Job{
		Name: "capped", User: "a", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error {
			for _, g := range ctx.GPUs() {
				if got := g.PowerLimit(); got != 200 {
					t.Errorf("GPU limit %v W during job, want 200", got)
				}
				// A hot kernel respects the cap and stretches.
				rec, err := g.ExecuteKernel(hw.Workload{
					Name: "hot", Items: 1 << 22, FloatOps: 4000, GlobalBytes: 8,
				})
				if err != nil {
					return err
				}
				if rec.AvgPowerW > 200+1e-9 {
					t.Errorf("kernel drew %v W above the 200 W cap", rec.AvgPowerW)
				}
				if !rec.Measurement.Throttled {
					t.Error("hot kernel not marked throttled under cap")
				}
			}
			return nil
		},
	})
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
}

func TestPowerCapRestoredAfterJob(t *testing.T) {
	c, p := newCapCluster(t, 1, 800, 100)
	node := c.Nodes()[0]
	res, err := c.Submit(&Job{
		Name: "j", User: "a", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error { return nil },
	})
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
	for _, g := range node.GPUs {
		if got := g.PowerLimit(); got != g.Spec().TDPWatts {
			t.Errorf("limit %v W after job, want TDP %v", got, g.Spec().TDPWatts)
		}
	}
	if p.Remaining() != 800 {
		t.Errorf("budget not returned: remaining %v", p.Remaining())
	}
}

func TestPowerCapBudgetSharedAcrossConcurrentJobs(t *testing.T) {
	c, p := newCapCluster(t, 2, 1600, 100)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := c.Submit(&Job{
			Name: "first", User: "a", NumNodes: 1, Exclusive: true,
			Run: func(ctx *Allocation) error {
				close(started)
				<-block
				return nil
			},
		})
		if err != nil || res.Err != nil {
			t.Errorf("first: %v / %v", err, res.Err)
		}
	}()
	<-started
	// First job holds 4 GPUs x 400 W = 1600 W... clamped to TDP 300 W
	// per GPU = 1200 W; 400 W remain.
	if rem := p.Remaining(); rem != 400 {
		t.Errorf("remaining %v W while first job runs, want 400", rem)
	}
	// Second job gets 400/4 = 100 W per GPU, exactly at the floor.
	res, err := c.Submit(&Job{
		Name: "second", User: "b", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error {
			for _, g := range ctx.GPUs() {
				if got := g.PowerLimit(); got != 100 {
					t.Errorf("second job GPU limit %v, want 100", got)
				}
			}
			return nil
		},
	})
	if err != nil || res.Err != nil {
		t.Fatalf("second: %v / %v", err, res.Err)
	}
	close(block)
	wg.Wait()
	if rem := p.Remaining(); rem != 1600 {
		t.Errorf("budget leaked: remaining %v after all jobs", rem)
	}
}

func TestPowerCapRejectsBelowFloor(t *testing.T) {
	c, _ := newCapCluster(t, 1, 300, 100) // 300/4 = 75 W < floor
	res, err := c.Submit(&Job{
		Name: "starved", User: "a", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "below floor") {
		t.Fatalf("job error = %v, want below-floor rejection", res.Err)
	}
	// Rejected job's GPUs keep default limits.
	for _, g := range c.Nodes()[0].GPUs {
		if got := g.PowerLimit(); got != g.Spec().TDPWatts {
			t.Errorf("rejected job changed a limit to %v", got)
		}
	}
}

func TestPowerCapDisabledIsNoOp(t *testing.T) {
	c, _ := newCapCluster(t, 1, 0, 0)
	res, err := c.Submit(&Job{
		Name: "free", User: "a", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error {
			for _, g := range ctx.GPUs() {
				if got := g.PowerLimit(); got != g.Spec().TDPWatts {
					t.Errorf("limit %v with capping disabled", got)
				}
			}
			return nil
		},
	})
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
}

func TestDevicePowerLimitValidation(t *testing.T) {
	d := hw.NewDevice(hw.V100())
	if err := d.SetPowerLimit(10); err == nil {
		t.Error("limit below floor accepted")
	}
	if err := d.SetPowerLimit(1000); err == nil {
		t.Error("limit above TDP accepted")
	}
	if err := d.SetPowerLimit(250); err != nil {
		t.Errorf("valid limit rejected: %v", err)
	}
	if err := d.SetPowerLimit(0); err != nil {
		t.Errorf("reset rejected: %v", err)
	}
	if got := d.PowerLimit(); got != d.Spec().TDPWatts {
		t.Errorf("after reset limit %v, want TDP", got)
	}
}

func TestCappedEnergyVsTime(t *testing.T) {
	// Capping a hot kernel conserves its energy (power x stretched time)
	// while increasing its runtime.
	spec := hw.V100()
	free := hw.NewDevice(spec)
	capped := hw.NewDevice(spec)
	if err := capped.SetPowerLimit(150); err != nil {
		t.Fatal(err)
	}
	w := hw.Workload{Name: "hot", Items: 1 << 22, FloatOps: 4000, GlobalBytes: 8}
	rf, err := free.ExecuteKernel(w)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := capped.ExecuteKernel(w)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Measurement.TimeSec <= rf.Measurement.TimeSec {
		t.Errorf("capped kernel not slower: %v vs %v", rc.Measurement.TimeSec, rf.Measurement.TimeSec)
	}
	if rc.AvgPowerW > 150+1e-9 {
		t.Errorf("capped power %v above limit", rc.AvgPowerW)
	}
}
