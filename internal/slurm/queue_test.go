package slurm

import (
	"testing"
	"time"
)

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSubmitAsyncRunsImmediatelyWhenFree(t *testing.T) {
	c := newV100Cluster(t, 2)
	h, err := c.SubmitAsync(&Job{
		Name: "quick", User: "a", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res)
	}
	if !h.Done() || !h.Started() {
		t.Fatal("handle state inconsistent after Wait")
	}
}

func TestSubmitAsyncQueuesWhenBusy(t *testing.T) {
	c := newV100Cluster(t, 1)
	release := make(chan struct{})
	running := make(chan struct{})
	first, err := c.SubmitAsync(&Job{
		Name: "holder", User: "a", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error {
			close(running)
			<-release
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	second, err := c.SubmitAsync(&Job{
		Name: "waiter", User: "b", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Started() {
		t.Fatal("second job started while the node is held")
	}
	if c.QueueLength() != 1 {
		t.Fatalf("queue length %d, want 1", c.QueueLength())
	}
	close(release)
	if res, err := first.Wait(); err != nil || res.Err != nil {
		t.Fatalf("first: %v / %v", err, res)
	}
	if res, err := second.Wait(); err != nil || res.Err != nil {
		t.Fatalf("second: %v / %v", err, res)
	}
	if c.QueueLength() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestBackfillSmallJobJumpsQueue(t *testing.T) {
	// 2 nodes. A holds one node; B needs both (stuck behind A); C needs
	// one and must backfill onto the free node while A runs.
	c := newV100Cluster(t, 2)
	release := make(chan struct{})
	running := make(chan struct{})
	a, err := c.SubmitAsync(&Job{
		Name: "A", User: "u", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error {
			close(running)
			<-release
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	b, err := c.SubmitAsync(&Job{
		Name: "B", User: "u", NumNodes: 2, Exclusive: true,
		Run: func(ctx *Allocation) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	cJob, err := c.SubmitAsync(&Job{
		Name: "C", User: "u", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// C backfills and finishes while A still runs and B stays pending.
	if res, err := cJob.Wait(); err != nil || res.Err != nil {
		t.Fatalf("C: %v / %v", err, res)
	}
	if b.Started() {
		t.Fatal("B started without enough nodes")
	}
	if a.Done() {
		t.Fatal("A finished prematurely")
	}
	close(release)
	if res, err := a.Wait(); err != nil || res.Err != nil {
		t.Fatalf("A: %v / %v", err, res)
	}
	if res, err := b.Wait(); err != nil || res.Err != nil {
		t.Fatalf("B: %v / %v", err, res)
	}
}

func TestSubmitAsyncValidation(t *testing.T) {
	c := newV100Cluster(t, 1)
	if _, err := c.SubmitAsync(&Job{Name: "noscript", NumNodes: 1}); err == nil {
		t.Error("job without script accepted")
	}
	if _, err := c.SubmitAsync(&Job{Name: "zero", Run: func(*Allocation) error { return nil }}); err == nil {
		t.Error("zero-node job accepted")
	}
	if _, err := c.SubmitAsync(&Job{
		Name: "huge", NumNodes: 9, Run: func(*Allocation) error { return nil },
	}); err == nil {
		t.Error("impossible job accepted into the queue")
	}
}

func TestAsyncJobsRunPluginsAndCleanUp(t *testing.T) {
	c := newV100Cluster(t, 1)
	node := c.Nodes()[0]
	h, err := c.SubmitAsync(&Job{
		Name: "scale", User: "alice", NumNodes: 1, Exclusive: true,
		Gres: map[GRES]bool{GresNVGpuFreq: true},
		Run:  gpuFreqJob(t, "alice", true),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res)
	}
	for _, g := range node.GPUs {
		if g.AppClockMHz() != g.Spec().DefaultCoreMHz {
			t.Fatalf("async job left clock at %d", g.AppClockMHz())
		}
	}
}

func TestManyAsyncJobsFIFOForEqualSizes(t *testing.T) {
	c := newV100Cluster(t, 1)
	var order []string
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	var handles []*JobHandle
	for _, name := range []string{"j1", "j2", "j3", "j4"} {
		name := name
		h, err := c.SubmitAsync(&Job{
			Name: name, User: "u", NumNodes: 1, Exclusive: true,
			Run: func(ctx *Allocation) error {
				<-mu
				order = append(order, name)
				mu <- struct{}{}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if res, err := h.Wait(); err != nil || res.Err != nil {
			t.Fatalf("%v / %v", err, res)
		}
	}
	// All equal-size jobs on one node run strictly in submission order.
	for i, want := range []string{"j1", "j2", "j3", "j4"} {
		if order[i] != want {
			t.Fatalf("execution order %v, want FIFO", order)
		}
	}
	waitUntil(t, "queue drained", func() bool { return c.QueueLength() == 0 })
}
