package slurm

import (
	"fmt"
	"sync"

	"synergy/internal/metrics"
)

// EnergyAdvicePlugin closes the loop between scheduler-level power
// management and SYnergy's per-kernel targets (an extension in the
// direction of the paper's conclusion: energy scalability managed from
// the job scheduler). It watches the same cluster power budget a
// PowerCapPlugin manages and, instead of (or in addition to) hard
// capping, *advises* each job of an energy target through the
// allocation's hints: plenty of headroom → no advice; moderate pressure
// → ES_25/ES_50; heavy pressure → ES_75. Applications that honour the
// hint shed watts by running each kernel at its target frequency —
// fine-grained, instead of the blunt board cap.
type EnergyAdvicePlugin struct {
	// ClusterBudgetW is the cluster-wide GPU power budget.
	ClusterBudgetW float64

	mu      sync.Mutex
	demandW map[string]float64 // jobID -> nominal (TDP) demand
}

// HintEnergyTarget is the allocation-hint key carrying the advice.
const HintEnergyTarget = "energy_target"

// Name implements Plugin.
func (p *EnergyAdvicePlugin) Name() string { return "energyadvice" }

// Prologue implements Plugin: it registers the job's nominal demand,
// computes the cluster pressure (total demand over budget) and writes
// the advised target into the allocation hints.
func (p *EnergyAdvicePlugin) Prologue(ctx *Allocation, node *Node) error {
	if p.ClusterBudgetW <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.demandW == nil {
		p.demandW = map[string]float64{}
	}
	if _, seen := p.demandW[ctx.JobID]; !seen {
		demand := 0.0
		for _, g := range ctx.GPUs() {
			demand += g.Spec().TDPWatts
		}
		p.demandW[ctx.JobID] = demand

		total := 0.0
		for _, d := range p.demandW {
			total += d
		}
		pressure := total / p.ClusterBudgetW
		var target string
		switch {
		case pressure <= 1:
			target = "" // headroom: run at the default configuration
		case pressure <= 1.25:
			target = metrics.ES(25).String()
		case pressure <= 1.6:
			target = metrics.ES(50).String()
		default:
			target = metrics.ES(75).String()
		}
		if target != "" {
			if ctx.Hints == nil {
				ctx.Hints = map[string]string{}
			}
			ctx.Hints[HintEnergyTarget] = target
		}
	}
	return nil
}

// Epilogue implements Plugin: the job's demand leaves the pressure pool.
func (p *EnergyAdvicePlugin) Epilogue(ctx *Allocation, node *Node) error {
	if p.ClusterBudgetW <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.demandW, ctx.JobID)
	return nil
}

// Pressure reports the current demand-to-budget ratio (for tooling).
func (p *EnergyAdvicePlugin) Pressure() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0.0
	for _, d := range p.demandW {
		total += d
	}
	if p.ClusterBudgetW <= 0 {
		return 0
	}
	return total / p.ClusterBudgetW
}

// AdvisedTarget parses the hint back into a target; ok is false when no
// advice was given.
func AdvisedTarget(ctx *Allocation) (metrics.Target, bool, error) {
	s, ok := ctx.Hints[HintEnergyTarget]
	if !ok || s == "" {
		return metrics.Target{}, false, nil
	}
	t, err := metrics.ParseTarget(s)
	if err != nil {
		return metrics.Target{}, false, fmt.Errorf("slurm: bad %s hint %q: %w", HintEnergyTarget, s, err)
	}
	return t, true, nil
}
