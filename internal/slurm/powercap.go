package slurm

import (
	"fmt"
	"sync"
)

// PowerCapPlugin implements the scheduler-level power management the
// paper describes in §2.3: SLURM takes a configured power cap for the
// system and distributes it across the nodes it controls. This plugin
// holds a cluster-wide GPU power budget; each job's prologue carves the
// job's share out of the remaining budget and programs the per-GPU
// limits, and the epilogue returns the share and restores the board
// defaults. It is deliberately coarse-grained — the contrast that
// motivates SYnergy's per-kernel approach.
type PowerCapPlugin struct {
	// ClusterBudgetW is the total GPU power budget across the cluster.
	// Zero disables capping.
	ClusterBudgetW float64
	// FloorPerGPUW is the minimum viable per-GPU cap; a job whose share
	// would fall below it is rejected by the prologue.
	FloorPerGPUW float64

	mu          sync.Mutex
	allocated   map[string]float64 // jobID -> granted total budget
	perJobShare map[string]float64 // jobID -> per-GPU cap
}

// Name implements Plugin.
func (p *PowerCapPlugin) Name() string { return "powercap" }

// Remaining returns the currently unallocated budget.
func (p *PowerCapPlugin) Remaining() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.remainingLocked()
}

func (p *PowerCapPlugin) remainingLocked() float64 {
	used := 0.0
	for _, w := range p.allocated {
		used += w
	}
	return p.ClusterBudgetW - used
}

// Prologue implements Plugin: on the job's first node it reserves the
// job's share of the remaining budget (an equal split across the job's
// GPUs, clamped to each board's TDP); on every node it programs the
// per-GPU power limits.
func (p *PowerCapPlugin) Prologue(ctx *Allocation, node *Node) error {
	if p.ClusterBudgetW <= 0 {
		return nil // capping disabled
	}
	p.mu.Lock()
	perGPU, reserved := p.perJobShare[ctx.JobID]
	if !reserved {
		gpus := ctx.GPUs()
		if len(gpus) == 0 {
			p.mu.Unlock()
			return nil
		}
		perGPU = p.remainingLocked() / float64(len(gpus))
		if perGPU < p.FloorPerGPUW {
			p.mu.Unlock()
			return fmt.Errorf("powercap: job %s share %.0f W/GPU below floor %.0f W",
				ctx.JobID, perGPU, p.FloorPerGPUW)
		}
		for _, g := range gpus {
			if tdp := g.Spec().TDPWatts; perGPU > tdp {
				perGPU = tdp
			}
		}
		if p.allocated == nil {
			p.allocated = map[string]float64{}
			p.perJobShare = map[string]float64{}
		}
		p.allocated[ctx.JobID] = perGPU * float64(len(gpus))
		p.perJobShare[ctx.JobID] = perGPU
	}
	p.mu.Unlock()

	for _, g := range node.GPUs {
		if err := g.SetPowerLimit(perGPU); err != nil {
			return fmt.Errorf("powercap: %s: %w", node.Name, err)
		}
	}
	return nil
}

// Epilogue implements Plugin: restores the board default limits and
// returns the job's budget.
func (p *PowerCapPlugin) Epilogue(ctx *Allocation, node *Node) error {
	if p.ClusterBudgetW <= 0 {
		return nil
	}
	for _, g := range node.GPUs {
		if err := g.SetPowerLimit(0); err != nil {
			return fmt.Errorf("powercap: %s: %w", node.Name, err)
		}
	}
	p.mu.Lock()
	delete(p.allocated, ctx.JobID)
	delete(p.perJobShare, ctx.JobID)
	p.mu.Unlock()
	return nil
}
