package slurm

import (
	"errors"
	"reflect"
	"testing"

	"synergy/internal/fault"
	"synergy/internal/hw"
	"synergy/internal/nvml"
	"synergy/internal/power"
)

// scaleJob submits the canonical frequency-scaling job of the §7 flow.
func scaleJob(t *testing.T) *Job {
	t.Helper()
	return &Job{
		Name: "scale", User: "alice", NumNodes: 1, Exclusive: true,
		Gres: map[GRES]bool{GresNVGpuFreq: true},
		Run:  gpuFreqJob(t, "alice", true),
	}
}

// assertNodeClean fails the test unless every GPU of the node is back at
// driver-default clocks with the privilege window closed.
func assertNodeClean(t *testing.T, node *Node) {
	t.Helper()
	for _, g := range node.GPUs {
		if g.AppClockMHz() != g.Spec().DefaultCoreMHz {
			t.Errorf("%s left at %d MHz (default %d)", g.Label(), g.AppClockMHz(), g.Spec().DefaultCoreMHz)
		}
		pm, err := power.NewManager(g, "bob", false)
		if err != nil {
			t.Fatal(err)
		}
		if err := pm.SetCoreFreq(g.Spec().MinCoreMHz()); err == nil {
			t.Errorf("%s: privilege leak — next user can scale clocks", g.Label())
		}
	}
}

// TestEpilogueAlwaysCleansUpUnderFaults is the tentpole robustness
// table: whatever transient faults fire — during the prologue, the job,
// the epilogue hooks, or the NVML cleanup calls themselves — a surviving
// node always comes back with default clocks and no privilege window.
func TestEpilogueAlwaysCleansUpUnderFaults(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		rules   []fault.Rule
		wantJob bool // job script expected to succeed
	}{
		{
			name:    "no faults",
			wantJob: true,
		},
		{
			name: "transient clock-reset faults mid-epilogue",
			rules: []fault.Rule{
				{Site: nvml.SiteResetAppClocks, Count: 2, Err: nvml.ErrTimeout},
			},
			wantJob: true,
		},
		{
			name: "transient restriction-restore faults mid-epilogue",
			// After=1 skips each GPU's prologue lift; the fault then hits
			// the epilogue's restore, twice, within the retry budget.
			rules: []fault.Rule{
				{Site: nvml.SiteSetAPIRestriction, After: 1, Count: 2, Err: nvml.ErrTimeout},
			},
			wantJob: true,
		},
		{
			name: "epilogue hook crashes twice",
			rules: []fault.Rule{
				{Site: SiteEpilogue, Count: 2, Err: fault.ErrInjected},
			},
			wantJob: true,
		},
		{
			name: "prologue hook crashes",
			// The job never starts, so no privileges were ever granted.
			rules: []fault.Rule{
				{Site: SitePrologue, Count: 1, Err: fault.ErrInjected},
			},
			wantJob: false,
		},
		{
			name: "prologue lift denied on second GPU",
			// The prologue rolls the first GPU back before failing.
			rules: []fault.Rule{
				{Site: nvml.SiteSetAPIRestriction + ":r0/gpu1", Count: 1, Err: nvml.ErrTimeout},
			},
			wantJob: false,
		},
		{
			name: "latency plus transient faults everywhere",
			rules: []fault.Rule{
				{Site: nvml.SiteSetAppClocks, DelaySec: 0.001},
				{Site: nvml.SiteResetAppClocks, Count: 1, Err: nvml.ErrTimeout},
				{Site: SiteEpilogue, Count: 1, Err: fault.ErrInjected},
			},
			wantJob: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			c := newV100Cluster(t, 1)
			c.SetFaultInjector(fault.New(11, tc.rules...))
			node := c.Nodes()[0]
			res, err := c.Submit(scaleJob(t))
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantJob && res.Err != nil {
				t.Fatalf("job failed under transient faults: %v", res.Err)
			}
			if !tc.wantJob && res.Err == nil {
				t.Fatal("job succeeded, want prologue failure")
			}
			assertNodeClean(t, node)
		})
	}
}

func TestPersistentEpilogueFaultIsReportedNotSwallowed(t *testing.T) {
	t.Parallel()
	// A sticky fault on the clock reset defeats the bounded retries: the
	// failure must surface in the job result, while the independent
	// privilege-restore step still completes.
	c := newV100Cluster(t, 1)
	c.SetFaultInjector(fault.New(3, fault.Rule{
		Site: nvml.SiteResetAppClocks, Err: nvml.ErrTimeout,
	}))
	node := c.Nodes()[0]
	res, err := c.Submit(scaleJob(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !errors.Is(res.Err, nvml.ErrTimeout) {
		t.Fatalf("persistent cleanup failure not reported: %v", res.Err)
	}
	for _, g := range node.GPUs {
		// Clocks could not be reset — but the privilege window must be
		// closed regardless.
		pm, err := power.NewManager(g, "bob", false)
		if err != nil {
			t.Fatal(err)
		}
		if err := pm.SetCoreFreq(g.Spec().MinCoreMHz()); err == nil {
			t.Errorf("%s: privilege leak despite failed clock reset", g.Label())
		}
	}
}

func TestNodeFailureRequeuesJobAndReviveCleansNode(t *testing.T) {
	t.Parallel()
	nodes := []*Node{
		NewNode("n0", hw.V100(), 2, GresNVGpuFreq),
		NewNode("n1", hw.V100(), 2, GresNVGpuFreq),
	}
	c := NewCluster(nodes...)
	c.RegisterPlugin(&NVGpuFreqPlugin{Controller: c})
	c.SetFaultInjector(fault.New(5, fault.Rule{
		Site: SiteNodeFail + ":n0", Count: 1, Err: ErrNodeFailed,
	}))
	job := &Job{
		Name: "resilient", User: "alice", NumNodes: 1, Exclusive: true,
		Gres: map[GRES]bool{GresNVGpuFreq: true}, MaxRequeues: 1,
		Run: gpuFreqJob(t, "alice", true),
	}
	h, err := c.SubmitAsync(job)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("requeued job failed: %v", res.Err)
	}
	if got := h.Requeues(); got != 1 {
		t.Fatalf("requeues = %d, want 1", got)
	}
	if !nodes[0].Down() {
		t.Fatal("failed node not marked down")
	}
	// The dead node may hold a leaked privilege window (its epilogue
	// could not run); a reboot must clear it.
	nodes[0].Revive()
	if nodes[0].Down() {
		t.Fatal("revived node still down")
	}
	assertNodeClean(t, nodes[0])
	assertNodeClean(t, nodes[1])
	// The revived node is allocatable again.
	if err := nodes[0].allocate("probe", true); err != nil {
		t.Fatalf("revived node not allocatable: %v", err)
	}
	nodes[0].release("probe")
}

func TestNodeFailureWithoutRequeueFailsJob(t *testing.T) {
	t.Parallel()
	c := newV100Cluster(t, 1)
	c.SetFaultInjector(fault.New(5, fault.Rule{
		Site: SiteNodeFail + ":r0", Count: 1, Err: ErrNodeFailed,
	}))
	res, err := c.Submit(scaleJob(t))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, ErrNodeFailed) {
		t.Fatalf("res.Err = %v, want ErrNodeFailed", res.Err)
	}
}

func TestIdenticalSeedReproducesIdenticalFailureTrace(t *testing.T) {
	t.Parallel()
	// The determinism contract, asserted end-to-end at the scheduler
	// level: the same scenario with the same seed yields the identical
	// failure trace on two independent runs of the same workload.
	scenario := func() []fault.Rule {
		return []fault.Rule{
			{Site: nvml.SiteSetAppClocks, Prob: 0.4, Err: nvml.ErrTimeout},
			{Site: nvml.SiteResetAppClocks, Count: 1, Err: nvml.ErrTimeout},
			{Site: SiteEpilogue, Prob: 0.5, Err: fault.ErrInjected},
		}
	}
	run := func() []fault.Event {
		c := newV100Cluster(t, 2)
		in := fault.New(1234, scenario()...)
		c.SetFaultInjector(in)
		for i := 0; i < 3; i++ {
			job := &Job{
				Name: "trace", User: "alice", NumNodes: 2, Exclusive: true,
				Gres: map[GRES]bool{GresNVGpuFreq: true},
				Run: func(ctx *Allocation) error {
					for _, g := range ctx.GPUs() {
						pm, err := power.NewManager(g, "alice", false)
						if err != nil {
							return err
						}
						_ = pm.SetCoreFreq(g.Spec().MinCoreMHz())
					}
					return nil
				},
			}
			if _, err := c.Submit(job); err != nil {
				t.Fatal(err)
			}
		}
		return in.Trace()
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("scenario produced no fault events — trace comparison is vacuous")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("identical seed diverged:\nrun 1: %+v\nrun 2: %+v", first, second)
	}
}
