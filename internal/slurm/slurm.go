// Package slurm simulates the job-scheduler layer of §7: a cluster of
// GPU nodes managed by a controller (slurmctld) that allocates nodes to
// jobs, tags capabilities through Generic RESources (GRES), and runs
// per-node prologue/epilogue plugin hooks around every job — including
// the paper's nvgpufreq plugin, which temporarily lowers the NVML
// privilege requirements for exclusive, GRES-tagged jobs and restores
// the node to a consistent performance state afterwards.
package slurm

import (
	"errors"
	"fmt"
	"sync"

	"synergy/internal/fault"
	"synergy/internal/hw"
	"synergy/internal/telemetry"
)

// ErrNodeFailed reports a node dying while a job held it.
var ErrNodeFailed = errors.New("slurm: node failed")

// Fault-injection sites exposed by this package, qualified per node
// ("slurm.node_fail:node1"). Prologue/epilogue sites fire once per
// (plugin, node) hook invocation; node_fail is consulted once per node
// as the job launches.
const (
	SitePrologue = "slurm.prologue"
	SiteEpilogue = "slurm.epilogue"
	SiteNodeFail = "slurm.node_fail"
)

func init() {
	fault.RegisterError("slurm.node_failed", ErrNodeFailed)
}

// GRES is a Generic RESource tag.
type GRES string

// GresNVGpuFreq is the tag enabling the frequency-scaling plugin on a
// node (and requesting it on a job).
const GresNVGpuFreq GRES = "nvgpufreq"

// Node is one cluster node with its GPUs and capability tags.
type Node struct {
	Name string
	GPUs []*hw.Device
	// Gres lists the node's capability tags.
	Gres map[GRES]bool
	// NVMLAvailable reports whether the NVML shared object can be
	// dlopen'd on this node (the plugin checks this).
	NVMLAvailable bool

	mu        sync.Mutex
	exclusive string         // job ID holding the node exclusively
	shared    map[string]int // job IDs sharing the node
	down      bool           // node failed; excluded from allocation
}

// NewNode builds a node with n GPUs of the given spec. NVML is marked
// available on NVIDIA nodes.
func NewNode(name string, spec *hw.Spec, nGPUs int, gres ...GRES) *Node {
	n := &Node{
		Name:          name,
		Gres:          map[GRES]bool{},
		NVMLAvailable: spec.Vendor == hw.NVIDIA,
		shared:        map[string]int{},
	}
	for i := 0; i < nGPUs; i++ {
		g := hw.NewDevice(spec)
		g.SetLabel(fmt.Sprintf("%s/gpu%d", name, i))
		n.GPUs = append(n.GPUs, g)
	}
	for _, g := range gres {
		n.Gres[g] = true
	}
	return n
}

// HasGres reports whether the node carries the tag.
func (n *Node) HasGres(g GRES) bool { return n.Gres[g] }

// Down reports whether the node is marked failed.
func (n *Node) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// MarkDown takes the node out of service (a crash: running jobs fail,
// future allocations skip it). Epilogues cannot run on a dead node; its
// driver state is only cleaned up by Revive.
func (n *Node) MarkDown() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = true
}

// Revive returns a failed node to service, as a reboot would: all
// allocations are cleared and every GPU comes back with driver-default
// clocks and cleared driver state (no privilege windows survive).
func (n *Node) Revive() {
	n.mu.Lock()
	n.down = false
	n.exclusive = ""
	n.shared = map[string]int{}
	n.mu.Unlock()
	for _, g := range n.GPUs {
		g.ResetAppClock()
		g.ResetDriverFlags()
	}
}

// allocate marks the node as used by the job; exclusive jobs require the
// node to be completely free, shared jobs only require no exclusive
// holder.
func (n *Node) allocate(jobID string, exclusive bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return fmt.Errorf("slurm: node %s is down", n.Name)
	}
	if n.exclusive != "" {
		return fmt.Errorf("slurm: node %s held exclusively by job %s", n.Name, n.exclusive)
	}
	if exclusive {
		if len(n.shared) > 0 {
			return fmt.Errorf("slurm: node %s has %d shared jobs", n.Name, len(n.shared))
		}
		n.exclusive = jobID
		return nil
	}
	n.shared[jobID]++
	return nil
}

func (n *Node) release(jobID string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.exclusive == jobID {
		n.exclusive = ""
		return
	}
	if n.shared[jobID] > 0 {
		n.shared[jobID]--
		if n.shared[jobID] == 0 {
			delete(n.shared, jobID)
		}
	}
}

// ExclusiveHolder returns the job holding the node exclusively ("" if
// none) — used by plugins to verify exclusivity.
func (n *Node) ExclusiveHolder() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.exclusive
}

// Job is one batch submission.
type Job struct {
	Name string
	User string
	// NumNodes is the requested node count.
	NumNodes int
	// Exclusive requests whole-node allocation (--exclusive).
	Exclusive bool
	// Gres lists requested resources (--gres=nvgpufreq).
	Gres map[GRES]bool
	// MaxRequeues lets the async scheduler resubmit the job this many
	// times when it fails with ErrNodeFailed (SLURM's --requeue).
	MaxRequeues int
	// Run is the job script; it receives the allocation.
	Run func(ctx *Allocation) error
}

// Allocation is what a running job sees.
type Allocation struct {
	JobID string
	Job   *Job
	Nodes []*Node
	// Hints carries advisory key/value pairs set by prologue plugins
	// (for example the EnergyAdvicePlugin's suggested energy target).
	Hints map[string]string
}

// GPUs returns every GPU of the allocation in node order.
func (a *Allocation) GPUs() []*hw.Device {
	var out []*hw.Device
	for _, n := range a.Nodes {
		out = append(out, n.GPUs...)
	}
	return out
}

// Plugin is a prologue/epilogue extension (SLURM SPANK-style hook).
type Plugin interface {
	Name() string
	// Prologue runs on each allocated node before the job starts.
	// Returning an error fails the job.
	Prologue(ctx *Allocation, node *Node) error
	// Epilogue runs on each allocated node after the job ends (also on
	// failure).
	Epilogue(ctx *Allocation, node *Node) error
}

// JobResult reports accounting for a finished job.
type JobResult struct {
	JobID string
	// EnergyJ is the total GPU energy consumed during the job (the
	// scheduler's energy-accounting view).
	EnergyJ float64
	// Err is the job script's error, if any.
	Err error
}

// Cluster is the controller (slurmctld) plus the node inventory.
type Cluster struct {
	mu      sync.Mutex
	nodes   []*Node
	plugins []Plugin
	nextID  int
	queue   []*JobHandle // pending asynchronous jobs, FIFO
	inj     *fault.Injector
	tel     *telemetry.Registry
}

func jobIDString(n int) string { return fmt.Sprintf("job-%d", n) }

// NewCluster creates a cluster over the nodes.
func NewCluster(nodes ...*Node) *Cluster {
	return &Cluster{nodes: nodes}
}

// SetFaultInjector attaches a fault injector to the cluster and, for
// convenience, to every GPU of every node (so one injector scripts
// scheduler-level faults and device-level vendor-library faults
// together). A nil injector detaches everywhere.
func (c *Cluster) SetFaultInjector(in *fault.Injector) {
	c.mu.Lock()
	nodes := make([]*Node, len(c.nodes))
	copy(nodes, c.nodes)
	c.inj = in
	c.mu.Unlock()
	for _, n := range nodes {
		for _, g := range n.GPUs {
			g.SetFaultInjector(in)
		}
	}
}

func (c *Cluster) injector() *fault.Injector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inj
}

// SetTelemetry attaches a telemetry registry to the cluster and, like
// SetFaultInjector, to every GPU of every node — so scheduler counters
// (jobs, requeues, node failures) and device-level metrics (kernels,
// clock sets, vendor calls) land in one registry. A nil registry
// detaches everywhere.
func (c *Cluster) SetTelemetry(r *telemetry.Registry) {
	c.mu.Lock()
	nodes := make([]*Node, len(c.nodes))
	copy(nodes, c.nodes)
	c.tel = r
	c.mu.Unlock()
	for _, n := range nodes {
		for _, g := range n.GPUs {
			g.SetTelemetry(r)
		}
	}
}

func (c *Cluster) telemetry() *telemetry.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tel
}

// RegisterPlugin appends a prologue/epilogue plugin.
func (c *Cluster) RegisterPlugin(p Plugin) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plugins = append(c.plugins, p)
}

// Nodes returns the node inventory.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// NodeInfo returns a node by name — the slurmctld lookup the plugin
// performs in its prologue.
func (c *Cluster) NodeInfo(name string) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.Name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("slurm: unknown node %q", name)
}

// Submit allocates nodes, runs prologues, the job script and epilogues,
// and returns accounting. It is synchronous (sbatch --wait); it fails
// immediately when the allocation cannot be satisfied right now — use
// SubmitAsync to queue instead.
func (c *Cluster) Submit(job *Job) (*JobResult, error) {
	if job.Run == nil {
		return nil, errors.New("slurm: job has no script")
	}
	if job.NumNodes <= 0 {
		return nil, errors.New("slurm: job requests no nodes")
	}
	c.mu.Lock()
	jobID, alloc, ok := c.tryAllocateLocked(job)
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("slurm: cannot allocate %d nodes for %s", job.NumNodes, job.Name)
	}
	return c.executeAllocated(job, jobID, alloc), nil
}

// executeAllocated runs prologues, the job script and epilogues on an
// already-made allocation, releases the nodes and returns accounting.
func (c *Cluster) executeAllocated(job *Job, jobID string, alloc []*Node) *JobResult {
	c.mu.Lock()
	plugins := make([]Plugin, len(c.plugins))
	copy(plugins, c.plugins)
	c.mu.Unlock()
	defer func() {
		for _, n := range alloc {
			n.release(jobID)
		}
	}()

	ctx := &Allocation{JobID: jobID, Job: job, Nodes: alloc}

	// Energy accounting window opens before the prologue.
	startE := make([]float64, 0, len(alloc)*4)
	for _, n := range alloc {
		for _, g := range n.GPUs {
			startE = append(startE, g.EnergyBetween(0, g.Now()))
		}
	}

	inj := c.injector()

	// Prologue chain; a failure aborts the job but still runs the
	// epilogues of the plugins that already ran, in reverse order.
	// Injected prologue faults model the hook process crashing.
	var ran []Plugin
	var prologErr error
	for _, p := range plugins {
		for _, n := range alloc {
			_, err := inj.Check(SitePrologue + ":" + n.Name)
			if err == nil {
				err = p.Prologue(ctx, n)
			}
			if err != nil {
				prologErr = fmt.Errorf("slurm: plugin %s prologue on %s: %w", p.Name(), n.Name, err)
				break
			}
		}
		if prologErr != nil {
			break
		}
		ran = append(ran, p)
	}

	// Node failure as the job launches: the node goes down, the job
	// fails, and only the surviving nodes see epilogues (a dead node's
	// cleanup happens at Revive, the reboot path).
	var jobErr error
	if prologErr == nil {
		for _, n := range alloc {
			if _, err := inj.Check(SiteNodeFail + ":" + n.Name); err != nil {
				n.MarkDown()
				c.telemetry().Counter("synergy_slurm_node_failures_total", "node", n.Name).Inc()
				jobErr = fmt.Errorf("slurm: node %s died during %s: %w", n.Name, jobID, ErrNodeFailed)
			}
		}
	}
	if prologErr == nil && jobErr == nil {
		jobErr = job.Run(ctx)
	} else if prologErr != nil {
		jobErr = prologErr
	}

	// Epilogues run on every surviving node regardless of how the job
	// ended; one hook failing (including injected epilogue faults) never
	// stops the remaining hooks or nodes. A crashed hook is re-launched
	// up to cleanupAttempts times (hooks are idempotent), so a transient
	// mid-epilogue fault cannot leave a reachable node dirty; only a
	// persistent failure is reported.
	for i := len(ran) - 1; i >= 0; i-- {
		for _, n := range alloc {
			if n.Down() {
				continue
			}
			var err error
			for attempt := 0; attempt < cleanupAttempts; attempt++ {
				_, err = inj.Check(SiteEpilogue + ":" + n.Name)
				if err == nil {
					err = ran[i].Epilogue(ctx, n)
				}
				if err == nil {
					break
				}
			}
			if err != nil && jobErr == nil {
				jobErr = fmt.Errorf("slurm: plugin %s epilogue on %s: %w", ran[i].Name(), n.Name, err)
			}
		}
	}

	res := &JobResult{JobID: jobID, Err: jobErr}
	i := 0
	for _, n := range alloc {
		for _, g := range n.GPUs {
			res.EnergyJ += g.EnergyBetween(0, g.Now()) - startE[i]
			i++
		}
	}
	outcome := "completed"
	if jobErr != nil {
		outcome = "failed"
	}
	c.telemetry().Counter("synergy_slurm_jobs_total", "result", outcome).Inc()
	return res
}
