// Package slurm simulates the job-scheduler layer of §7: a cluster of
// GPU nodes managed by a controller (slurmctld) that allocates nodes to
// jobs, tags capabilities through Generic RESources (GRES), and runs
// per-node prologue/epilogue plugin hooks around every job — including
// the paper's nvgpufreq plugin, which temporarily lowers the NVML
// privilege requirements for exclusive, GRES-tagged jobs and restores
// the node to a consistent performance state afterwards.
package slurm

import (
	"errors"
	"fmt"
	"sync"

	"synergy/internal/hw"
)

// GRES is a Generic RESource tag.
type GRES string

// GresNVGpuFreq is the tag enabling the frequency-scaling plugin on a
// node (and requesting it on a job).
const GresNVGpuFreq GRES = "nvgpufreq"

// Node is one cluster node with its GPUs and capability tags.
type Node struct {
	Name string
	GPUs []*hw.Device
	// Gres lists the node's capability tags.
	Gres map[GRES]bool
	// NVMLAvailable reports whether the NVML shared object can be
	// dlopen'd on this node (the plugin checks this).
	NVMLAvailable bool

	mu        sync.Mutex
	exclusive string         // job ID holding the node exclusively
	shared    map[string]int // job IDs sharing the node
}

// NewNode builds a node with n GPUs of the given spec. NVML is marked
// available on NVIDIA nodes.
func NewNode(name string, spec *hw.Spec, nGPUs int, gres ...GRES) *Node {
	n := &Node{
		Name:          name,
		Gres:          map[GRES]bool{},
		NVMLAvailable: spec.Vendor == hw.NVIDIA,
		shared:        map[string]int{},
	}
	for i := 0; i < nGPUs; i++ {
		n.GPUs = append(n.GPUs, hw.NewDevice(spec))
	}
	for _, g := range gres {
		n.Gres[g] = true
	}
	return n
}

// HasGres reports whether the node carries the tag.
func (n *Node) HasGres(g GRES) bool { return n.Gres[g] }

// allocate marks the node as used by the job; exclusive jobs require the
// node to be completely free, shared jobs only require no exclusive
// holder.
func (n *Node) allocate(jobID string, exclusive bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.exclusive != "" {
		return fmt.Errorf("slurm: node %s held exclusively by job %s", n.Name, n.exclusive)
	}
	if exclusive {
		if len(n.shared) > 0 {
			return fmt.Errorf("slurm: node %s has %d shared jobs", n.Name, len(n.shared))
		}
		n.exclusive = jobID
		return nil
	}
	n.shared[jobID]++
	return nil
}

func (n *Node) release(jobID string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.exclusive == jobID {
		n.exclusive = ""
		return
	}
	if n.shared[jobID] > 0 {
		n.shared[jobID]--
		if n.shared[jobID] == 0 {
			delete(n.shared, jobID)
		}
	}
}

// ExclusiveHolder returns the job holding the node exclusively ("" if
// none) — used by plugins to verify exclusivity.
func (n *Node) ExclusiveHolder() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.exclusive
}

// Job is one batch submission.
type Job struct {
	Name string
	User string
	// NumNodes is the requested node count.
	NumNodes int
	// Exclusive requests whole-node allocation (--exclusive).
	Exclusive bool
	// Gres lists requested resources (--gres=nvgpufreq).
	Gres map[GRES]bool
	// Run is the job script; it receives the allocation.
	Run func(ctx *Allocation) error
}

// Allocation is what a running job sees.
type Allocation struct {
	JobID string
	Job   *Job
	Nodes []*Node
	// Hints carries advisory key/value pairs set by prologue plugins
	// (for example the EnergyAdvicePlugin's suggested energy target).
	Hints map[string]string
}

// GPUs returns every GPU of the allocation in node order.
func (a *Allocation) GPUs() []*hw.Device {
	var out []*hw.Device
	for _, n := range a.Nodes {
		out = append(out, n.GPUs...)
	}
	return out
}

// Plugin is a prologue/epilogue extension (SLURM SPANK-style hook).
type Plugin interface {
	Name() string
	// Prologue runs on each allocated node before the job starts.
	// Returning an error fails the job.
	Prologue(ctx *Allocation, node *Node) error
	// Epilogue runs on each allocated node after the job ends (also on
	// failure).
	Epilogue(ctx *Allocation, node *Node) error
}

// JobResult reports accounting for a finished job.
type JobResult struct {
	JobID string
	// EnergyJ is the total GPU energy consumed during the job (the
	// scheduler's energy-accounting view).
	EnergyJ float64
	// Err is the job script's error, if any.
	Err error
}

// Cluster is the controller (slurmctld) plus the node inventory.
type Cluster struct {
	mu      sync.Mutex
	nodes   []*Node
	plugins []Plugin
	nextID  int
	queue   []*JobHandle // pending asynchronous jobs, FIFO
}

func jobIDString(n int) string { return fmt.Sprintf("job-%d", n) }

// NewCluster creates a cluster over the nodes.
func NewCluster(nodes ...*Node) *Cluster {
	return &Cluster{nodes: nodes}
}

// RegisterPlugin appends a prologue/epilogue plugin.
func (c *Cluster) RegisterPlugin(p Plugin) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plugins = append(c.plugins, p)
}

// Nodes returns the node inventory.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// NodeInfo returns a node by name — the slurmctld lookup the plugin
// performs in its prologue.
func (c *Cluster) NodeInfo(name string) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.Name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("slurm: unknown node %q", name)
}

// Submit allocates nodes, runs prologues, the job script and epilogues,
// and returns accounting. It is synchronous (sbatch --wait); it fails
// immediately when the allocation cannot be satisfied right now — use
// SubmitAsync to queue instead.
func (c *Cluster) Submit(job *Job) (*JobResult, error) {
	if job.Run == nil {
		return nil, errors.New("slurm: job has no script")
	}
	if job.NumNodes <= 0 {
		return nil, errors.New("slurm: job requests no nodes")
	}
	c.mu.Lock()
	jobID, alloc, ok := c.tryAllocateLocked(job)
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("slurm: cannot allocate %d nodes for %s", job.NumNodes, job.Name)
	}
	return c.executeAllocated(job, jobID, alloc), nil
}

// executeAllocated runs prologues, the job script and epilogues on an
// already-made allocation, releases the nodes and returns accounting.
func (c *Cluster) executeAllocated(job *Job, jobID string, alloc []*Node) *JobResult {
	c.mu.Lock()
	plugins := make([]Plugin, len(c.plugins))
	copy(plugins, c.plugins)
	c.mu.Unlock()
	defer func() {
		for _, n := range alloc {
			n.release(jobID)
		}
	}()

	ctx := &Allocation{JobID: jobID, Job: job, Nodes: alloc}

	// Energy accounting window opens before the prologue.
	startE := make([]float64, 0, len(alloc)*4)
	for _, n := range alloc {
		for _, g := range n.GPUs {
			startE = append(startE, g.EnergyBetween(0, g.Now()))
		}
	}

	// Prologue chain; a failure aborts the job but still runs the
	// epilogues of the plugins that already ran, in reverse order.
	var ran []Plugin
	var prologErr error
	for _, p := range plugins {
		for _, n := range alloc {
			if err := p.Prologue(ctx, n); err != nil {
				prologErr = fmt.Errorf("slurm: plugin %s prologue on %s: %w", p.Name(), n.Name, err)
				break
			}
		}
		if prologErr != nil {
			break
		}
		ran = append(ran, p)
	}

	var jobErr error
	if prologErr == nil {
		jobErr = job.Run(ctx)
	} else {
		jobErr = prologErr
	}

	for i := len(ran) - 1; i >= 0; i-- {
		for _, n := range alloc {
			if err := ran[i].Epilogue(ctx, n); err != nil && jobErr == nil {
				jobErr = fmt.Errorf("slurm: plugin %s epilogue on %s: %w", ran[i].Name(), n.Name, err)
			}
		}
	}

	res := &JobResult{JobID: jobID, Err: jobErr}
	i := 0
	for _, n := range alloc {
		for _, g := range n.GPUs {
			res.EnergyJ += g.EnergyBetween(0, g.Now()) - startE[i]
			i++
		}
	}
	return res
}
