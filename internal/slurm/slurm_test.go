package slurm

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"synergy/internal/hw"
	"synergy/internal/nvml"
	"synergy/internal/power"
)

// newV100Cluster builds a cluster of n 4-GPU V100 nodes with the
// nvgpufreq GRES and plugin installed.
func newV100Cluster(t *testing.T, n int) *Cluster {
	t.Helper()
	var nodes []*Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, NewNode(nodeName(i), hw.V100(), 4, GresNVGpuFreq))
	}
	c := NewCluster(nodes...)
	c.RegisterPlugin(&NVGpuFreqPlugin{Controller: c})
	return c
}

func nodeName(i int) string { return "r" + string(rune('0'+i)) }

// gpuFreqJob is a job script that scales every allocated GPU's clock as
// a regular user and reports whether each set succeeded.
func gpuFreqJob(t *testing.T, user string, wantOK bool) func(ctx *Allocation) error {
	return func(ctx *Allocation) error {
		for _, g := range ctx.GPUs() {
			pm, err := power.NewManager(g, user, false)
			if err != nil {
				return err
			}
			err = pm.SetCoreFreq(g.Spec().MinCoreMHz())
			if wantOK && err != nil {
				return err
			}
			if !wantOK && err == nil {
				return errors.New("frequency scaling unexpectedly allowed")
			}
		}
		return nil
	}
}

func TestExclusiveTaggedJobGetsFrequencyControl(t *testing.T) {
	c := newV100Cluster(t, 1)
	res, err := c.Submit(&Job{
		Name: "scale", User: "alice", NumNodes: 1, Exclusive: true,
		Gres: map[GRES]bool{GresNVGpuFreq: true},
		Run:  gpuFreqJob(t, "alice", true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
}

func TestEpilogueRestoresCleanState(t *testing.T) {
	c := newV100Cluster(t, 1)
	node := c.Nodes()[0]
	res, err := c.Submit(&Job{
		Name: "scale", User: "alice", NumNodes: 1, Exclusive: true,
		Gres: map[GRES]bool{GresNVGpuFreq: true},
		Run:  gpuFreqJob(t, "alice", true),
	})
	if err != nil || res.Err != nil {
		t.Fatalf("submit: %v / %v", err, res.Err)
	}
	for _, g := range node.GPUs {
		// Clocks restored to the driver default...
		if g.AppClockMHz() != g.Spec().DefaultCoreMHz {
			t.Errorf("GPU left at %d MHz after job (default %d)", g.AppClockMHz(), g.Spec().DefaultCoreMHz)
		}
		// ...and privileges removed: the next user cannot scale.
		pm, err := power.NewManager(g, "bob", false)
		if err != nil {
			t.Fatal(err)
		}
		if err := pm.SetCoreFreq(g.Spec().MinCoreMHz()); err == nil {
			t.Error("privilege leak: next user can scale clocks")
		}
	}
}

func TestCrashedJobStillCleanedUp(t *testing.T) {
	c := newV100Cluster(t, 1)
	node := c.Nodes()[0]
	boom := errors.New("segfault")
	res, err := c.Submit(&Job{
		Name: "crash", User: "alice", NumNodes: 1, Exclusive: true,
		Gres: map[GRES]bool{GresNVGpuFreq: true},
		Run: func(ctx *Allocation) error {
			pm, err := power.NewManager(ctx.GPUs()[0], "alice", false)
			if err != nil {
				return err
			}
			if err := pm.SetCoreFreq(ctx.GPUs()[0].Spec().MinCoreMHz()); err != nil {
				return err
			}
			return boom // job dies with the clock lowered
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, boom) {
		t.Fatalf("job error = %v, want crash", res.Err)
	}
	g := node.GPUs[0]
	if g.AppClockMHz() != g.Spec().DefaultCoreMHz {
		t.Fatalf("crashed job left clock at %d MHz", g.AppClockMHz())
	}
}

func TestNonExclusiveJobGetsNoPrivileges(t *testing.T) {
	c := newV100Cluster(t, 1)
	res, err := c.Submit(&Job{
		Name: "shared", User: "alice", NumNodes: 1, Exclusive: false,
		Gres: map[GRES]bool{GresNVGpuFreq: true},
		Run:  gpuFreqJob(t, "alice", false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
}

func TestUntaggedJobGetsNoPrivileges(t *testing.T) {
	c := newV100Cluster(t, 1)
	res, err := c.Submit(&Job{
		Name: "untagged", User: "alice", NumNodes: 1, Exclusive: true,
		Run: gpuFreqJob(t, "alice", false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
}

func TestUntaggedNodeGetsNoPrivileges(t *testing.T) {
	node := NewNode("plain", hw.V100(), 2) // no GRES tag
	c := NewCluster(node)
	c.RegisterPlugin(&NVGpuFreqPlugin{Controller: c})
	res, err := c.Submit(&Job{
		Name: "j", User: "alice", NumNodes: 1, Exclusive: true,
		Gres: map[GRES]bool{GresNVGpuFreq: true},
		Run:  gpuFreqJob(t, "alice", false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
}

func TestNVMLUnavailableNodeGetsNoPrivileges(t *testing.T) {
	node := NewNode("broken", hw.V100(), 2, GresNVGpuFreq)
	node.NVMLAvailable = false // dlopen fails
	c := NewCluster(node)
	c.RegisterPlugin(&NVGpuFreqPlugin{Controller: c})
	res, err := c.Submit(&Job{
		Name: "j", User: "alice", NumNodes: 1, Exclusive: true,
		Gres: map[GRES]bool{GresNVGpuFreq: true},
		Run:  gpuFreqJob(t, "alice", false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
}

func TestExclusiveAllocationConflicts(t *testing.T) {
	c := newV100Cluster(t, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Submit(&Job{
			Name: "holder", User: "a", NumNodes: 1, Exclusive: true,
			Run: func(ctx *Allocation) error {
				close(started)
				<-block
				return nil
			},
		})
		if err != nil {
			t.Errorf("holder: %v", err)
		}
	}()
	<-started
	// While the node is held exclusively, another job cannot allocate.
	if _, err := c.Submit(&Job{
		Name: "intruder", User: "b", NumNodes: 1, Exclusive: false,
		Run: func(ctx *Allocation) error { return nil },
	}); err == nil {
		t.Error("second job allocated an exclusively-held node")
	}
	close(block)
	wg.Wait()
}

func TestSharedAllocationCoexists(t *testing.T) {
	c := newV100Cluster(t, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Submit(&Job{
			Name: "s1", User: "a", NumNodes: 1,
			Run: func(ctx *Allocation) error {
				close(started)
				<-block
				return nil
			},
		}); err != nil {
			t.Errorf("s1: %v", err)
		}
	}()
	<-started
	if _, err := c.Submit(&Job{
		Name: "s2", User: "b", NumNodes: 1,
		Run: func(ctx *Allocation) error { return nil },
	}); err != nil {
		t.Errorf("shared jobs should coexist: %v", err)
	}
	close(block)
	wg.Wait()
}

func TestSubmitValidation(t *testing.T) {
	c := newV100Cluster(t, 1)
	if _, err := c.Submit(&Job{Name: "noscript", NumNodes: 1}); err == nil {
		t.Error("job without script accepted")
	}
	if _, err := c.Submit(&Job{Name: "nonodes", Run: func(*Allocation) error { return nil }}); err == nil {
		t.Error("job without nodes accepted")
	}
	if _, err := c.Submit(&Job{
		Name: "toobig", NumNodes: 5,
		Run: func(*Allocation) error { return nil },
	}); err == nil || !strings.Contains(err.Error(), "cannot allocate") {
		t.Errorf("oversized job: %v", err)
	}
}

func TestMultiNodeAllocation(t *testing.T) {
	c := newV100Cluster(t, 4)
	res, err := c.Submit(&Job{
		Name: "mpi", User: "alice", NumNodes: 4, Exclusive: true,
		Gres: map[GRES]bool{GresNVGpuFreq: true},
		Run: func(ctx *Allocation) error {
			if len(ctx.Nodes) != 4 {
				t.Errorf("allocated %d nodes", len(ctx.Nodes))
			}
			if len(ctx.GPUs()) != 16 {
				t.Errorf("allocated %d GPUs", len(ctx.GPUs()))
			}
			return nil
		},
	})
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
}

func TestEnergyAccounting(t *testing.T) {
	c := newV100Cluster(t, 1)
	res, err := c.Submit(&Job{
		Name: "burn", User: "alice", NumNodes: 1, Exclusive: true,
		Run: func(ctx *Allocation) error {
			for _, g := range ctx.GPUs() {
				g.AdvanceIdle(1.0) // 1 s of idle power per GPU
			}
			return nil
		},
	})
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
	want := 4 * hw.V100().IdlePowerW // 4 GPUs x 1 s
	if res.EnergyJ < want*0.9 || res.EnergyJ > want*1.1 {
		t.Fatalf("accounted %v J, want ~%v", res.EnergyJ, want)
	}
}

func TestRestrictionFlagDirectly(t *testing.T) {
	// The privilege window is visible through a fresh NVML session
	// during the job and gone after it.
	c := newV100Cluster(t, 1)
	node := c.Nodes()[0]
	res, err := c.Submit(&Job{
		Name: "check", User: "alice", NumNodes: 1, Exclusive: true,
		Gres: map[GRES]bool{GresNVGpuFreq: true},
		Run: func(ctx *Allocation) error {
			lib, err := nvml.New(ctx.GPUs()[0])
			if err != nil {
				return err
			}
			if err := lib.Init(); err != nil {
				return err
			}
			h, err := lib.DeviceGetHandleByIndex(0)
			if err != nil {
				return err
			}
			restricted, err := h.GetAPIRestriction(nvml.APISetApplicationClocks)
			if err != nil {
				return err
			}
			if restricted {
				return errors.New("restriction not lifted during job")
			}
			return nil
		},
	})
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
	lib, err := nvml.New(node.GPUs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Init(); err != nil {
		t.Fatal(err)
	}
	h, err := lib.DeviceGetHandleByIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := h.GetAPIRestriction(nvml.APISetApplicationClocks)
	if err != nil {
		t.Fatal(err)
	}
	if !restricted {
		t.Fatal("restriction not restored after job")
	}
}

func TestMI100NodesWorkWithoutPlugin(t *testing.T) {
	// AMD nodes: NVML unavailable, plugin terminates silently; the job
	// still runs.
	node := NewNode("amd0", hw.MI100(), 4, GresNVGpuFreq)
	if node.NVMLAvailable {
		t.Fatal("AMD node should not report NVML")
	}
	c := NewCluster(node)
	c.RegisterPlugin(&NVGpuFreqPlugin{Controller: c})
	res, err := c.Submit(&Job{
		Name: "amdjob", User: "alice", NumNodes: 1, Exclusive: true,
		Gres: map[GRES]bool{GresNVGpuFreq: true},
		Run:  func(ctx *Allocation) error { return nil },
	})
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
}
