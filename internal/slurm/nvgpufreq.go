package slurm

import (
	"fmt"

	"synergy/internal/hw"
	"synergy/internal/nvml"
)

// NVGpuFreqPlugin is the paper's nvgpufreq SLURM plugin (§7.2). In the
// prologue it performs the documented check chain — node info available,
// node tagged with the nvgpufreq GRES, NVML loadable, job tagged with
// the GRES, job exclusive on the node — and only if every check passes
// does it lower the NVML application-clock privilege requirement on the
// job's GPUs. The epilogue performs the full cleanup: application clocks
// reset to the driver default and privileged access removed, so the next
// job never inherits a degraded performance state (§7.1).
type NVGpuFreqPlugin struct {
	// Controller lets the plugin query slurmctld for node info.
	Controller *Cluster
}

// Name implements Plugin.
func (p *NVGpuFreqPlugin) Name() string { return "nvgpufreq" }

// applies runs the §7.2 prologue check chain. A 'false' outcome is not
// an error: the plugin simply "terminates its execution" without
// touching the node.
func (p *NVGpuFreqPlugin) applies(ctx *Allocation, node *Node) (bool, error) {
	if p.Controller == nil {
		return false, nil // cannot reach slurmctld: terminate
	}
	info, err := p.Controller.NodeInfo(node.Name)
	if err != nil {
		return false, nil // node info unavailable: terminate
	}
	if !info.HasGres(GresNVGpuFreq) {
		return false, nil // node not tagged
	}
	if !info.NVMLAvailable {
		return false, nil // dlopen(libnvidia-ml.so) failed
	}
	if !ctx.Job.Gres[GresNVGpuFreq] {
		return false, nil // job did not request the feature
	}
	if info.ExclusiveHolder() != ctx.JobID {
		return false, nil // job shares the node: no privileges
	}
	return true, nil
}

func withNVML(node *Node, f func(lib *nvml.Library, devs []*nvml.Device) error) error {
	var nvidia []*hw.Device
	for _, g := range node.GPUs {
		if g.Spec().Vendor == hw.NVIDIA {
			nvidia = append(nvidia, g)
		}
	}
	if len(nvidia) == 0 {
		return nil
	}
	lib, err := nvml.New(nvidia...)
	if err != nil {
		return err
	}
	if err := lib.Init(); err != nil {
		return err
	}
	defer func() { _ = lib.Shutdown() }()
	devs := make([]*nvml.Device, len(nvidia))
	for i := range nvidia {
		d, err := lib.DeviceGetHandleByIndex(i)
		if err != nil {
			return err
		}
		devs[i] = d
	}
	return f(lib, devs)
}

// cleanupAttempts bounds the per-step retry loops of the prologue
// rollback and the epilogue cleanup: a transient (injected) failure of
// one NVML call must not leave a node privileged or downclocked.
const cleanupAttempts = 3

// retryNVML retries one NVML cleanup step up to cleanupAttempts times.
func retryNVML(step func() error) error {
	var err error
	for attempt := 0; attempt < cleanupAttempts; attempt++ {
		if err = step(); err == nil {
			return nil
		}
	}
	return err
}

// Prologue implements Plugin. If lowering the restriction fails on any
// GPU, the ones already opened are re-restricted before the error is
// returned — a half-privileged node never reaches the job.
func (p *NVGpuFreqPlugin) Prologue(ctx *Allocation, node *Node) error {
	ok, err := p.applies(ctx, node)
	if err != nil || !ok {
		return err
	}
	return withNVML(node, func(lib *nvml.Library, devs []*nvml.Device) error {
		for i, d := range devs {
			if err := d.SetAPIRestriction(nvml.Root, nvml.APISetApplicationClocks, false); err != nil {
				for _, opened := range devs[:i] {
					_ = retryNVML(func() error {
						return opened.SetAPIRestriction(nvml.Root, nvml.APISetApplicationClocks, true)
					})
				}
				return fmt.Errorf("nvgpufreq: lowering restriction: %w", err)
			}
		}
		return nil
	})
}

// Epilogue implements Plugin: full cleanup regardless of how the job
// ended — restore default clocks and re-restrict the privileged APIs.
// Every cleanup step runs on every GPU even when earlier steps fail, and
// each step retries transient failures, so a fault mid-epilogue cannot
// leave privileges raised on a GPU that can still be reached; the first
// persistent error is still reported.
func (p *NVGpuFreqPlugin) Epilogue(ctx *Allocation, node *Node) error {
	ok, err := p.applies(ctx, node)
	if err != nil || !ok {
		return err
	}
	return withNVML(node, func(lib *nvml.Library, devs []*nvml.Device) error {
		var firstErr error
		for _, d := range devs {
			d := d
			if err := retryNVML(func() error { return d.ResetApplicationsClocks(nvml.Root) }); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("nvgpufreq: resetting clocks: %w", err)
			}
			if err := retryNVML(func() error {
				return d.SetAPIRestriction(nvml.Root, nvml.APISetApplicationClocks, true)
			}); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("nvgpufreq: restoring restriction: %w", err)
			}
		}
		return firstErr
	})
}
