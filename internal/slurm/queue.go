package slurm

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Requeues reports how many times the scheduler has requeued the job
// after a node failure.
func (h *JobHandle) Requeues() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.requeues
}

// Asynchronous job queue: SubmitAsync enqueues like sbatch does, a
// scheduler loop starts jobs as nodes free up — FIFO with opportunistic
// backfill (a job further down the queue may start early when it fits
// in nodes the queue head cannot use; without walltime estimates this is
// the eager variant of SLURM's backfill scheduler).

// JobHandle tracks an asynchronously submitted job.
type JobHandle struct {
	job  *Job
	done chan struct{}

	mu       sync.Mutex
	started  bool
	requeues int
	res      *JobResult
	err      error
}

// Wait blocks until the job finishes and returns its accounting.
func (h *JobHandle) Wait() (*JobResult, error) {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res, h.err
}

// WaitContext blocks until the job finishes or the context is canceled.
// The job itself keeps running (there is no preemption in the simulated
// scheduler); a deadline here bounds how long the caller is willing to
// watch — the chaos harness's no-hang invariant.
func (h *JobHandle) WaitContext(ctx context.Context) (*JobResult, error) {
	select {
	case <-h.done:
		return h.Wait()
	case <-ctx.Done():
		// Deterministic tie-break toward completion.
		select {
		case <-h.done:
			return h.Wait()
		default:
			return nil, fmt.Errorf("slurm: waiting for job: %w", ctx.Err())
		}
	}
}

// Started reports whether the scheduler has started the job.
func (h *JobHandle) Started() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.started
}

// Done reports whether the job has finished.
func (h *JobHandle) Done() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

// SubmitAsync enqueues the job and returns immediately; the scheduler
// starts it when nodes are available.
func (c *Cluster) SubmitAsync(job *Job) (*JobHandle, error) {
	if job.Run == nil {
		return nil, errors.New("slurm: job has no script")
	}
	if job.NumNodes <= 0 {
		return nil, errors.New("slurm: job requests no nodes")
	}
	h := &JobHandle{job: job, done: make(chan struct{})}
	c.mu.Lock()
	if job.NumNodes > len(c.nodes) {
		c.mu.Unlock()
		return nil, errors.New("slurm: job requests more nodes than the cluster has")
	}
	c.queue = append(c.queue, h)
	c.mu.Unlock()
	c.kickScheduler()
	return h, nil
}

// QueueLength reports the number of pending (not yet started) jobs.
func (c *Cluster) QueueLength() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// kickScheduler runs one scheduling pass: walk the pending queue in
// order, start every job that can be allocated right now. The head of
// the queue blocks only itself — later jobs may backfill.
func (c *Cluster) kickScheduler() {
	c.mu.Lock()
	defer c.mu.Unlock()
	remaining := c.queue[:0]
	for _, h := range c.queue {
		jobID, alloc, ok := c.tryAllocateLocked(h.job)
		if !ok {
			remaining = append(remaining, h)
			continue
		}
		h.mu.Lock()
		h.started = true
		h.mu.Unlock()
		go func(h *JobHandle, jobID string, alloc []*Node) {
			res := c.executeAllocated(h.job, jobID, alloc)
			// Node failures requeue the job (up to Job.MaxRequeues) rather
			// than failing it: the next pass allocates around down nodes.
			h.mu.Lock()
			requeue := res.Err != nil && errors.Is(res.Err, ErrNodeFailed) &&
				h.requeues < h.job.MaxRequeues
			if requeue {
				h.requeues++
				h.started = false
			} else {
				h.res = res
			}
			h.mu.Unlock()
			if requeue {
				c.telemetry().Counter("synergy_slurm_requeues_total").Inc()
				c.mu.Lock()
				c.queue = append(c.queue, h)
				c.mu.Unlock()
			} else {
				close(h.done)
			}
			c.kickScheduler() // freed nodes: schedule the next jobs
		}(h, jobID, alloc)
	}
	c.queue = remaining
}

// tryAllocateLocked attempts a first-fit allocation (caller holds c.mu).
func (c *Cluster) tryAllocateLocked(job *Job) (string, []*Node, bool) {
	var alloc []*Node
	c.nextID++
	jobID := jobIDString(c.nextID)
	for _, n := range c.nodes {
		if len(alloc) == job.NumNodes {
			break
		}
		if err := n.allocate(jobID, job.Exclusive); err == nil {
			alloc = append(alloc, n)
		}
	}
	if len(alloc) < job.NumNodes {
		for _, n := range alloc {
			n.release(jobID)
		}
		return "", nil, false
	}
	return jobID, alloc, true
}
