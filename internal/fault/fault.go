// Package fault is a seeded, deterministic fault-injection subsystem for
// the simulated stack. Every layer that can fail in production — the
// vendor management libraries (internal/nvml, internal/rocmsmi), the
// interconnect (internal/mpi), the scheduler (internal/slurm) and the
// SYCL runtime (internal/sycl) — exposes named injection sites and
// consults an attached Injector before performing the real operation.
//
// # Determinism contract
//
// Whether a rule fires on the n-th call at a site is a pure function of
// (seed, qualified site, call index, rule index): the decision is drawn
// from a counter-based hash, never from shared mutable RNG state. Call
// indices are counted per qualified site, and in this codebase each
// qualified site (a device, a rank, a node) is only ever exercised from
// one goroutine at a time, so two runs of the same workload with the
// same seed and scenario produce the identical failure trace regardless
// of goroutine interleaving. Trace returns events sorted by (site, call
// index) so traces compare with reflect.DeepEqual.
//
// # Sites
//
// A call site is "base" or "base:qualifier", e.g.
// "nvml.set_app_clocks:node0/gpu1". A rule whose Site has no qualifier
// matches every qualifier of that base site; a rule with a qualifier
// matches exactly. Rule state (the After/Count bookkeeping) is tracked
// per qualified site, which keeps one-shot faults deterministic: "count=1"
// means once per device/rank/node, not once globally.
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the generic injected failure, used when a scenario rule
// names no specific error.
var ErrInjected = errors.New("fault: injected failure")

// Rule configures one fault at one site.
type Rule struct {
	// Site is a base site ("nvml.set_app_clocks") matching every
	// qualifier, or an exact qualified site ("mpi.send:r3").
	Site string
	// Prob is the firing probability per eligible call. 0 means always
	// (the convenient zero value); values >= 1 also always fire.
	Prob float64
	// After skips the first After calls at each qualified site.
	After int
	// Count bounds firings per qualified site: 1 is a one-shot fault,
	// 0 is sticky (unlimited).
	Count int
	// Err is the injected error; nil makes the rule delay-only.
	Err error
	// DelaySec is injected virtual latency, applied whenever the rule
	// fires (alone or together with Err).
	DelaySec float64
}

// Event is one fired fault, as recorded in the trace.
type Event struct {
	// Site is the qualified call site.
	Site string
	// Call is the 1-based call index at the site when the fault fired.
	Call int64
	// Rule is the configured rule site that fired.
	Rule string
	// Err is the injected error text ("" for delay-only rules).
	Err string
	// DelaySec is the injected latency.
	DelaySec float64
}

// Scenario is a named, ordered set of rules (a failure script).
type Scenario struct {
	Name  string
	Rules []Rule
}

// Injector holds the active rules and the per-site call counters. The
// zero value of *Injector (nil) is a valid no-op injector: every layer
// calls Check through a possibly-nil pointer.
type Injector struct {
	seed int64

	mu     sync.Mutex
	rules  []Rule
	counts map[string]int64         // calls per qualified site
	fired  map[string]map[int]int64 // firings per qualified site, per rule
	trace  []Event
}

// New creates an injector with the given seed and initial rules.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{seed: seed}
	in.resetLocked()
	in.rules = append(in.rules, rules...)
	return in
}

// NewFromScenario creates an injector running a scenario script.
func NewFromScenario(seed int64, sc Scenario) *Injector {
	return New(seed, sc.Rules...)
}

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 { return in.seed }

// AddRule appends a rule.
func (in *Injector) AddRule(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, r)
}

// Apply appends every rule of the scenario.
func (in *Injector) Apply(sc Scenario) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, sc.Rules...)
}

func (in *Injector) resetLocked() {
	in.counts = map[string]int64{}
	in.fired = map[string]map[int]int64{}
	in.trace = nil
}

// Reset clears all call counters, rule state and the trace, keeping the
// rules — the next run replays the identical fault sequence.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.resetLocked()
}

// match reports whether a configured rule site matches a call site.
func match(rule, site string) bool {
	if rule == site {
		return true
	}
	if i := strings.IndexByte(site, ':'); i >= 0 {
		return rule == site[:i]
	}
	return false
}

// u01 draws the deterministic uniform variate for (site, call, rule).
func (in *Injector) u01(site string, call int64, rule int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(in.seed))
	h.Write([]byte(site))
	put(uint64(call))
	put(uint64(rule))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Check consults the rules for one call at the site. It returns the
// injected virtual latency (0 when none) and the injected error (nil
// when none); when several rules fire on the same call their delays
// accumulate and the first error wins. Check on a nil injector is a
// no-op, so call sites need no nil guard.
func (in *Injector) Check(site string) (delaySec float64, err error) {
	if in == nil {
		return 0, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.counts[site] + 1
	in.counts[site] = n
	for i := range in.rules {
		r := &in.rules[i]
		if !match(r.Site, site) {
			continue
		}
		if n <= int64(r.After) {
			continue
		}
		if r.Count > 0 && in.fired[site][i] >= int64(r.Count) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.u01(site, n, i) >= r.Prob {
			continue
		}
		if in.fired[site] == nil {
			in.fired[site] = map[int]int64{}
		}
		in.fired[site][i]++
		delaySec += r.DelaySec
		if err == nil {
			err = r.Err
		}
		errText := ""
		if r.Err != nil {
			errText = r.Err.Error()
		}
		in.trace = append(in.trace, Event{
			Site: site, Call: n, Rule: r.Site, Err: errText, DelaySec: r.DelaySec,
		})
	}
	return delaySec, err
}

// SleepContext sleeps an injected delay in *real* time, returning early
// with the context's error if it is canceled first. The cluster layers
// apply injected delays to their device's virtual timeline; layers that
// live on the wall clock (the serve daemon) burn the delay here so that
// injected latency can actually push a request past its deadline.
func SleepContext(ctx context.Context, sec float64) error {
	if sec <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(time.Duration(sec * float64(time.Second)))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CallCount returns the number of Check calls seen at the qualified site.
func (in *Injector) CallCount(site string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[site]
}

// Trace returns the fired faults sorted by (site, call index) — a stable
// order under goroutine interleaving, so identical seeds yield traces
// that compare equal with reflect.DeepEqual.
func (in *Injector) Trace() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	out := make([]Event, len(in.trace))
	copy(out, in.trace)
	in.mu.Unlock()
	// Stable: two rules firing on the same Check call tie on every key
	// below (Rule records the configured site, which may be identical);
	// their in-trace order is the deterministic rule-index order, which
	// an unstable sort would scramble.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		if out[i].Call != out[j].Call {
			return out[i].Call < out[j].Call
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// --- named-error registry ---
//
// Scenario scripts reference errors by name ("nvml.not_permitted");
// packages register their sentinel errors at init time so that injected
// errors satisfy errors.Is checks against the real sentinels.

var (
	regMu    sync.Mutex
	registry = map[string]error{"fault.injected": ErrInjected}
)

// RegisterError binds a scenario-script name to a sentinel error.
// Re-registering a name overwrites the previous binding.
func RegisterError(name string, err error) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = err
}

// NamedError looks a registered error up by name.
func NamedError(name string) (error, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	err, ok := registry[name]
	return err, ok
}

// ParseScenario parses a scenario script: one rule per line,
//
//	<site> [p=<0..1>] [after=<n>] [count=<n>] [delay=<duration>] [err=<name>]
//
// Blank lines and #-comments are skipped. err names must have been
// registered with RegisterError (every simulated layer registers its
// sentinels at init). A rule with neither err nor delay injects the
// generic ErrInjected.
func ParseScenario(name, text string) (Scenario, error) {
	sc := Scenario{Name: name}
	for lineNo, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		r := Rule{Site: fields[0]}
		explicit := false
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return Scenario{}, fmt.Errorf("fault: line %d: malformed field %q", lineNo+1, f)
			}
			switch k {
			case "p":
				p, err := strconv.ParseFloat(v, 64)
				if err != nil || p < 0 || p > 1 {
					return Scenario{}, fmt.Errorf("fault: line %d: bad probability %q", lineNo+1, v)
				}
				r.Prob = p
			case "after":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return Scenario{}, fmt.Errorf("fault: line %d: bad after %q", lineNo+1, v)
				}
				r.After = n
			case "count":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return Scenario{}, fmt.Errorf("fault: line %d: bad count %q", lineNo+1, v)
				}
				r.Count = n
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return Scenario{}, fmt.Errorf("fault: line %d: bad delay %q", lineNo+1, v)
				}
				r.DelaySec = d.Seconds()
				explicit = true
			case "err":
				e, ok := NamedError(v)
				if !ok {
					return Scenario{}, fmt.Errorf("fault: line %d: unregistered error %q", lineNo+1, v)
				}
				r.Err = e
				explicit = true
			default:
				return Scenario{}, fmt.Errorf("fault: line %d: unknown field %q", lineNo+1, k)
			}
		}
		if !explicit {
			r.Err = ErrInjected
		}
		sc.Rules = append(sc.Rules, r)
	}
	return sc, nil
}
