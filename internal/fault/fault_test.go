package fault

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	t.Parallel()
	var in *Injector
	d, err := in.Check("any.site")
	if d != 0 || err != nil {
		t.Fatalf("nil injector Check = (%v, %v), want (0, nil)", d, err)
	}
	if in.CallCount("any.site") != 0 {
		t.Fatal("nil injector counted a call")
	}
	if in.Trace() != nil {
		t.Fatal("nil injector has a trace")
	}
}

func TestStickyFault(t *testing.T) {
	t.Parallel()
	in := New(1, Rule{Site: "a.b", Err: ErrInjected})
	for i := 0; i < 5; i++ {
		if _, err := in.Check("a.b"); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i+1, err)
		}
	}
	if got := len(in.Trace()); got != 5 {
		t.Fatalf("trace has %d events, want 5", got)
	}
}

func TestOneShotFault(t *testing.T) {
	t.Parallel()
	in := New(1, Rule{Site: "a.b", Count: 1, Err: ErrInjected})
	if _, err := in.Check("a.b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first call: err = %v, want ErrInjected", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := in.Check("a.b"); err != nil {
			t.Fatalf("one-shot fired again: %v", err)
		}
	}
}

func TestOneShotIsPerQualifiedSite(t *testing.T) {
	t.Parallel()
	// A base-site one-shot fires once per device, not once globally.
	in := New(1, Rule{Site: "nvml.set", Count: 1, Err: ErrInjected})
	for _, site := range []string{"nvml.set:gpu0", "nvml.set:gpu1"} {
		if _, err := in.Check(site); !errors.Is(err, ErrInjected) {
			t.Fatalf("%s first call: err = %v, want ErrInjected", site, err)
		}
		if _, err := in.Check(site); err != nil {
			t.Fatalf("%s fired twice: %v", site, err)
		}
	}
}

func TestQualifiedRuleMatchesExactly(t *testing.T) {
	t.Parallel()
	in := New(1, Rule{Site: "mpi.send:r3", Err: ErrInjected})
	if _, err := in.Check("mpi.send:r2"); err != nil {
		t.Fatalf("rule for r3 fired on r2: %v", err)
	}
	if _, err := in.Check("mpi.send:r3"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rule for r3 did not fire on r3: %v", err)
	}
}

func TestAfterSkipsEarlyCalls(t *testing.T) {
	t.Parallel()
	in := New(1, Rule{Site: "a.b", After: 3, Err: ErrInjected})
	for i := 0; i < 3; i++ {
		if _, err := in.Check("a.b"); err != nil {
			t.Fatalf("call %d fired despite after=3: %v", i+1, err)
		}
	}
	if _, err := in.Check("a.b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("call 4: err = %v, want ErrInjected", err)
	}
}

func TestDelayOnlyRule(t *testing.T) {
	t.Parallel()
	in := New(1, Rule{Site: "a.b", DelaySec: 0.25})
	d, err := in.Check("a.b")
	if err != nil {
		t.Fatalf("delay-only rule injected error %v", err)
	}
	if d != 0.25 {
		t.Fatalf("delay = %v, want 0.25", d)
	}
	tr := in.Trace()
	if len(tr) != 1 || tr[0].Err != "" || tr[0].DelaySec != 0.25 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestMultipleRulesAccumulateDelayFirstErrorWins(t *testing.T) {
	t.Parallel()
	errA := errors.New("a")
	errB := errors.New("b")
	in := New(1,
		Rule{Site: "a.b", DelaySec: 0.1, Err: errA},
		Rule{Site: "a.b", DelaySec: 0.2, Err: errB},
	)
	d, err := in.Check("a.b")
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want first rule's error", err)
	}
	if math.Abs(d-0.3) > 1e-12 {
		t.Fatalf("delay = %v, want 0.3", d)
	}
}

func TestProbabilisticFiringIsDeterministicAndCalibrated(t *testing.T) {
	t.Parallel()
	const n = 2000
	run := func() []Event {
		in := New(42, Rule{Site: "a.b", Prob: 0.3, Err: ErrInjected})
		for i := 0; i < n; i++ {
			in.Check("a.b")
		}
		return in.Trace()
	}
	t1, t2 := run(), run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("identical seed produced different traces")
	}
	rate := float64(len(t1)) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("empirical rate %.3f far from p=0.3", rate)
	}
	// A different seed draws a different subsequence.
	in := New(43, Rule{Site: "a.b", Prob: 0.3, Err: ErrInjected})
	for i := 0; i < n; i++ {
		in.Check("a.b")
	}
	if reflect.DeepEqual(t1, in.Trace()) {
		t.Fatal("different seeds produced the identical trace")
	}
}

func TestResetReplaysIdenticalSequence(t *testing.T) {
	t.Parallel()
	in := New(7,
		Rule{Site: "a.b", Prob: 0.5, Err: ErrInjected},
		Rule{Site: "a.b", Count: 2, DelaySec: 0.01},
	)
	collect := func() []Event {
		for i := 0; i < 100; i++ {
			in.Check("a.b")
		}
		return in.Trace()
	}
	first := collect()
	in.Reset()
	second := collect()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("Reset did not replay the identical fault sequence")
	}
}

func TestNamedErrorRegistry(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("boom")
	RegisterError("test.boom", sentinel)
	got, ok := NamedError("test.boom")
	if !ok || !errors.Is(got, sentinel) {
		t.Fatalf("NamedError = (%v, %v)", got, ok)
	}
	if _, ok := NamedError("test.unknown"); ok {
		t.Fatal("unregistered name resolved")
	}
}

func TestParseScenario(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("parse sentinel")
	RegisterError("test.parse_sentinel", sentinel)
	sc, err := ParseScenario("s", `
# one-shot permission denial on gpu1
nvml.set:gpu1 count=1 err=test.parse_sentinel
mpi.send p=0.25 delay=10ms    # flaky link
slurm.node_fail:node2 after=2
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Site: "nvml.set:gpu1", Count: 1, Err: sentinel},
		{Site: "mpi.send", Prob: 0.25, DelaySec: (10 * time.Millisecond).Seconds()},
		{Site: "slurm.node_fail:node2", After: 2, Err: ErrInjected},
	}
	if !reflect.DeepEqual(sc.Rules, want) {
		t.Fatalf("rules = %+v\nwant    %+v", sc.Rules, want)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	t.Parallel()
	for _, text := range []string{
		"a.b p=1.5",
		"a.b after=-1",
		"a.b count=x",
		"a.b delay=banana",
		"a.b err=never.registered",
		"a.b frobnicate=1",
		"a.b p",
	} {
		if _, err := ParseScenario("bad", text); err == nil {
			t.Errorf("ParseScenario(%q) accepted malformed input", text)
		}
	}
}

func TestCallCount(t *testing.T) {
	t.Parallel()
	in := New(1)
	in.Check("a.b:x")
	in.Check("a.b:x")
	in.Check("a.b:y")
	if got := in.CallCount("a.b:x"); got != 2 {
		t.Fatalf("CallCount(a.b:x) = %d, want 2", got)
	}
	if got := in.CallCount("a.b:y"); got != 1 {
		t.Fatalf("CallCount(a.b:y) = %d, want 1", got)
	}
}

func TestTraceIsSortedUnderConcurrency(t *testing.T) {
	t.Parallel()
	// Different qualified sites hammered from different goroutines still
	// yield one canonical, comparable trace.
	run := func() []Event {
		in := New(99, Rule{Site: "mpi.send", Prob: 0.5, Err: ErrInjected})
		done := make(chan struct{})
		for r := 0; r < 4; r++ {
			site := "mpi.send:r" + string(rune('0'+r))
			go func(site string) {
				defer close_(done)
				for i := 0; i < 200; i++ {
					in.Check(site)
				}
			}(site)
		}
		for r := 0; r < 4; r++ {
			<-done
		}
		return in.Trace()
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("concurrent runs with the same seed diverged")
	}
}

// close_ sends one completion token (the channel is used as a counter).
func close_(ch chan struct{}) { ch <- struct{}{} }

// TestTraceOrderStableForTiedEvents: two rules configured on the same
// base site fire on the same call — the trace entries tie on every sort
// key (Rule records the configured site, identical here), so the sort
// must keep their deterministic rule-index order. An unstable sort
// makes byte-exact trace comparison across identical runs flaky.
func TestTraceOrderStableForTiedEvents(t *testing.T) {
	t.Parallel()
	errA, errB := errors.New("first rule"), errors.New("second rule")
	render := func() []Event {
		in := New(3,
			Rule{Site: "nvml.set_app_clocks", Err: errA},
			Rule{Site: "nvml.set_app_clocks", Err: errB},
		)
		for i := 0; i < 50; i++ {
			in.Check("nvml.set_app_clocks:gpu0")
			in.Check("nvml.set_app_clocks:gpu1")
		}
		return in.Trace()
	}
	first := render()
	for run := 0; run < 20; run++ {
		if got := render(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: tied trace events reordered:\n%v\nvs\n%v", run, got, first)
		}
	}
	for i := 0; i+1 < len(first); i += 2 {
		if first[i].Err != errA.Error() || first[i+1].Err != errB.Error() {
			t.Fatalf("event pair %d not in rule-index order: %v then %v", i, first[i].Err, first[i+1].Err)
		}
	}
}
