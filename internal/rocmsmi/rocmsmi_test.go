package rocmsmi

import (
	"errors"
	"testing"

	"synergy/internal/hw"
)

func newLib(t *testing.T) (*Library, *hw.Device) {
	t.Helper()
	dev := hw.NewDevice(hw.MI100())
	lib, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Init(); err != nil {
		t.Fatal(err)
	}
	return lib, dev
}

func TestNewRejectsNVIDIADevices(t *testing.T) {
	t.Parallel()
	if _, err := New(hw.NewDevice(hw.V100())); err == nil {
		t.Fatal("NVIDIA device accepted by ROCm SMI")
	}
}

func TestLifecycle(t *testing.T) {
	t.Parallel()
	dev := hw.NewDevice(hw.MI100())
	lib, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.NumDevices(); !errors.Is(err, ErrUninitialized) {
		t.Fatalf("pre-init: %v", err)
	}
	if err := lib.Init(); err != nil {
		t.Fatal(err)
	}
	n, err := lib.NumDevices()
	if err != nil || n != 1 {
		t.Fatalf("NumDevices = %d, %v", n, err)
	}
	if err := lib.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestClockLevels(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceByIndex(0)
	levels, err := h.ClockLevels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 16 {
		t.Fatalf("MI100 should expose 16 DPM levels, got %d", len(levels))
	}
	if levels[0] != 300 || levels[15] != 1502 {
		t.Fatalf("DPM range [%d, %d], want [300, 1502]", levels[0], levels[15])
	}
	mem, err := h.MemClockMHz()
	if err != nil || mem != 1200 {
		t.Fatalf("mem clock = %d, %v", mem, err)
	}
	_ = dev
}

func TestPerfLevelStartsAuto(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceByIndex(0)
	lvl, err := h.PerfLevel()
	if err != nil || lvl != PerfAuto {
		t.Fatalf("initial perf level = %v, %v; want auto (MI100 has no default clock)", lvl, err)
	}
	if dev.AppClockMHz() != 0 {
		t.Fatalf("device should start unpinned, got %d MHz", dev.AppClockMHz())
	}
}

func TestSetClockLevelPermissionsAndValidation(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceByIndex(0)
	user := User{Name: "bob"}

	if err := h.SetClockLevel(user, 3); !errors.Is(err, ErrNoPermission) {
		t.Fatalf("unprivileged set: %v", err)
	}
	if err := h.SetClockLevel(Root, 16); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("out-of-range level: %v", err)
	}
	if err := h.SetClockLevel(Root, 3); err != nil {
		t.Fatal(err)
	}
	if dev.AppClockMHz() != 540 {
		t.Fatalf("level 3 pinned %d MHz, want 540", dev.AppClockMHz())
	}
	lvl, _ := h.PerfLevel()
	if lvl != PerfManual {
		t.Fatalf("perf level = %v, want manual", lvl)
	}

	// The plugin's privilege window lets regular users set clocks.
	if err := h.SetUnrestricted(Root, true); err != nil {
		t.Fatal(err)
	}
	if err := h.SetClockLevel(user, 0); err != nil {
		t.Fatalf("user set after unrestrict: %v", err)
	}
	if err := h.SetUnrestricted(user, false); !errors.Is(err, ErrNoPermission) {
		t.Fatalf("user toggled restriction: %v", err)
	}
}

func TestSetPerfLevelAutoUnpins(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceByIndex(0)
	if err := h.SetClockLevel(Root, 5); err != nil {
		t.Fatal(err)
	}
	if err := h.SetPerfLevelAuto(Root); err != nil {
		t.Fatal(err)
	}
	if dev.AppClockMHz() != 0 {
		t.Fatalf("auto mode left clock pinned at %d", dev.AppClockMHz())
	}
	if mhz, _ := h.CurrentClockMHz(); mhz != 0 {
		t.Fatalf("CurrentClockMHz = %d in auto mode", mhz)
	}
}

func TestPowerAndEnergyReads(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceByIndex(0)
	p, err := h.PowerWatts()
	if err != nil {
		t.Fatal(err)
	}
	if p != dev.Spec().IdlePowerW {
		t.Fatalf("idle power %v, want %v", p, dev.Spec().IdlePowerW)
	}
	dev.AdvanceIdle(0.5)
	e, err := h.EnergyCountJoules()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * dev.Spec().IdlePowerW
	if e < 0.9*want || e > 1.1*want {
		t.Fatalf("energy count %v J, want ~%v", e, want)
	}
}

func TestPowerCapAPI(t *testing.T) {
	t.Parallel()
	lib, dev := newLib(t)
	h, _ := lib.DeviceByIndex(0)
	if err := h.SetPowerCap(User{Name: "u"}, 200); !errors.Is(err, ErrNoPermission) {
		t.Fatalf("unprivileged cap: %v", err)
	}
	if err := h.SetPowerCap(Root, 200); err != nil {
		t.Fatal(err)
	}
	w, err := h.PowerCap()
	if err != nil || w != 200 {
		t.Fatalf("cap = %v, %v; want 200", w, err)
	}
	if err := h.SetPowerCap(Root, 5000); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("cap above TDP: %v", err)
	}
	if err := h.SetPowerCap(Root, 0); err != nil {
		t.Fatal(err)
	}
	if got := dev.PowerLimit(); got != dev.Spec().TDPWatts {
		t.Fatalf("reset cap = %v, want TDP", got)
	}
}
